// Neural network layers with explicit forward/backward passes.
//
// No autograd: each layer caches what its backward pass needs and exposes
// gradient accumulation into Parameter::grad. This keeps the training stack
// small, deterministic, and finite-difference checkable (tests/nn_grad_test).
//
// Convention: batch-major tensors. Linear: [batch, features];
// Conv2d: [batch, channels, height, width].
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.h"
#include "util/rng.h"

namespace rlplan::nn {

/// Executor signature for fanning a batch dimension out over worker threads:
/// must call fn(i) exactly once for every i in [0, n) and return only when
/// all calls have finished (parallel::ThreadPool::parallel_for satisfies it).
using BatchParallelFor =
    std::function<void(std::size_t n, const std::function<void(std::size_t)>&)>;

/// Installs (or, with nullptr, removes) the process-wide batch executor used
/// by Linear/Conv2d forward passes when batch > 1. Rows of a batch are
/// arithmetically independent in these layers, so outputs are bit-identical
/// with or without an executor — this is a pure throughput knob. Backward
/// passes stay serial (parameter gradients accumulate across the batch).
/// Not thread-safe: install before training, from one thread — concurrent
/// RlPlanner/collector instances in one process must not overlap their
/// installations. parallel::ParallelRolloutCollector installs its pool for
/// its lifetime and restores the previous executor on destruction (LIFO
/// nesting is safe).
void set_batch_parallel_for(BatchParallelFor executor);

/// As set_batch_parallel_for, returning the previously installed executor so
/// callers can restore it (used by the collector for LIFO save/restore).
BatchParallelFor exchange_batch_parallel_for(BatchParallelFor executor);

/// Trainable tensor with its gradient accumulator.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;

  explicit Parameter(std::string n, std::vector<std::size_t> shape)
      : name(std::move(n)), value(shape), grad(shape) {}
};

class Module {
 public:
  virtual ~Module() = default;

  /// Computes outputs and caches activations for backward().
  virtual Tensor forward(const Tensor& x) = 0;

  /// Given dL/d(output), accumulates parameter grads and returns dL/d(input).
  /// Must be called after forward() with a matching batch.
  virtual Tensor backward(const Tensor& grad_out) = 0;

  virtual std::vector<Parameter*> parameters() { return {}; }

  void zero_grad();
};

/// y = x W^T + b, W: [out, in].
class Linear : public Module {
 public:
  Linear(std::size_t in_features, std::size_t out_features, Rng& rng,
         std::string name = "linear");

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }
  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  std::size_t in_, out_;
  Parameter weight_, bias_;
  Tensor cached_input_;
};

/// 2D convolution, square kernel, symmetric zero padding.
class Conv2d : public Module {
 public:
  Conv2d(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel, std::size_t stride, std::size_t padding,
         Rng& rng, std::string name = "conv");

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override { return {&weight_, &bias_}; }

  std::size_t out_size(std::size_t in_size) const {
    return (in_size + 2 * padding_ - kernel_) / stride_ + 1;
  }

 private:
  std::size_t in_ch_, out_ch_, kernel_, stride_, padding_;
  Parameter weight_, bias_;  // weight: [out_ch, in_ch, k, k]
  Tensor cached_input_;
};

class ReLU : public Module {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  Tensor cached_input_;
};

class Tanh : public Module {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  Tensor cached_output_;
};

/// Collapses [batch, ...] to [batch, features]. Shape-only; no copy math.
class Flatten : public Module {
 public:
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  std::vector<std::size_t> cached_shape_;
};

/// Owning chain of layers applied in order.
class Sequential : public Module {
 public:
  Sequential() = default;

  /// Appends a layer; returns a reference for inline composition.
  Sequential& add(std::unique_ptr<Module> layer);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Parameter*> parameters() override;

  std::size_t size() const { return layers_.size(); }

 private:
  std::vector<std::unique_ptr<Module>> layers_;
};

/// Kaiming-uniform initialization bound for a given fan-in.
float kaiming_bound(std::size_t fan_in);

}  // namespace rlplan::nn
