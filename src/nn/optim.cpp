#include "nn/optim.h"

#include <cmath>
#include <stdexcept>

#include "nn/serialize.h"

namespace rlplan::nn {

Adam::Adam(std::vector<Parameter*> params, AdamConfig config)
    : params_(std::move(params)), config_(config) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Parameter* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step() {
  ++t_;
  const float b1t = 1.0f - std::pow(config_.beta1, static_cast<float>(t_));
  const float b2t = 1.0f - std::pow(config_.beta2, static_cast<float>(t_));
  for (std::size_t k = 0; k < params_.size(); ++k) {
    Parameter& p = *params_[k];
    auto val = p.value.data();
    auto grad = p.grad.data();
    auto m = m_[k].data();
    auto v = v_[k].data();
    for (std::size_t i = 0; i < val.size(); ++i) {
      float g = grad[i];
      m[i] = config_.beta1 * m[i] + (1.0f - config_.beta1) * g;
      v[i] = config_.beta2 * v[i] + (1.0f - config_.beta2) * g * g;
      const float m_hat = m[i] / b1t;
      const float v_hat = v[i] / b2t;
      float update = m_hat / (std::sqrt(v_hat) + config_.eps);
      if (config_.weight_decay > 0.0f) {
        update += config_.weight_decay * val[i];
      }
      val[i] -= config_.lr * update;
    }
  }
}

void Adam::zero_grad() {
  for (Parameter* p : params_) p->grad.fill(0.0f);
}

void Adam::save_state(StateWriter& w, const std::string& prefix) const {
  w.u64(prefix + ".t", static_cast<std::uint64_t>(t_));
  w.u64(prefix + ".params", params_.size());
  for (std::size_t k = 0; k < params_.size(); ++k) {
    const std::string tag = prefix + "." + std::to_string(k);
    w.tensor(tag + ".m", m_[k]);
    w.tensor(tag + ".v", v_[k]);
  }
}

void Adam::load_state(StateReader& r, const std::string& prefix) {
  t_ = static_cast<long>(r.u64(prefix + ".t"));
  const std::uint64_t count = r.u64(prefix + ".params");
  if (count != params_.size()) {
    throw std::runtime_error("Adam::load_state: parameter count mismatch");
  }
  for (std::size_t k = 0; k < params_.size(); ++k) {
    const std::string tag = prefix + "." + std::to_string(k);
    r.tensor(tag + ".m", m_[k]);
    r.tensor(tag + ".v", v_[k]);
  }
}

double clip_grad_norm(const std::vector<Parameter*>& params, double max_norm) {
  double sq = 0.0;
  for (const Parameter* p : params) sq += p->grad.squared_norm();
  const double norm = std::sqrt(sq);
  if (norm > max_norm && norm > 0.0) {
    const float scale = static_cast<float>(max_norm / norm);
    for (Parameter* p : params) p->grad.scale_(scale);
  }
  return norm;
}

}  // namespace rlplan::nn
