// Binary checkpointing of module parameters.
//
// Format: magic "RLPNNv1\n", uint64 parameter count, then per parameter:
// uint64 name length + bytes, uint64 rank, uint64 dims..., float32 data.
// Loading verifies names and shapes against the destination parameter list,
// so a checkpoint can only be restored into an identically-built network.
#pragma once

#include <string>
#include <vector>

#include "nn/layers.h"

namespace rlplan::nn {

void save_parameters(const std::vector<Parameter*>& params,
                     const std::string& path);

/// Throws std::runtime_error on I/O failure or any name/shape mismatch.
void load_parameters(const std::vector<Parameter*>& params,
                     const std::string& path);

}  // namespace rlplan::nn
