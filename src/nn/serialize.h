// Binary checkpointing: v1 weight-only files and the v2 typed record stream.
//
// v1 ("RLPNNv1\n", save_parameters/load_parameters): uint64 parameter count,
// then per parameter uint64 name length + bytes, uint64 rank, uint64 dims...,
// float32 data. Loading verifies names and shapes against the destination
// parameter list, so a checkpoint can only be restored into an
// identically-built network. This remains the format behind
// PolicyValueNet::save/load.
//
// v2 ("RLPNNv2\n", StateWriter/StateReader): a self-describing stream of
// named, typed records used by full-state training checkpoints
// (rl/session.h). Each record is
//
//   uint64 name length | name bytes | uint8 kind | payload
//
// with kinds u64, f64 (raw IEEE-754 bits — floating-point state round-trips
// bit-exactly), f32, string, tensor (uint64 rank, dims..., float32 data) and
// u64vec (uint64 count, values; RNG state snapshots). Readers consume
// records in writer order and validate every name, kind, and tensor shape,
// so any reordering, truncation, or corruption fails loudly with a
// std::runtime_error naming the offending record. finish() writes/expects a
// terminal "end" record, which turns silent tail truncation into an error as
// well.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "nn/layers.h"

namespace rlplan::nn {

inline constexpr char kCheckpointMagicV1[] = "RLPNNv1\n";
inline constexpr char kCheckpointMagicV2[] = "RLPNNv2\n";
inline constexpr std::size_t kCheckpointMagicLen = 8;

void save_parameters(const std::vector<Parameter*>& params,
                     const std::string& path);

/// Throws std::runtime_error on I/O failure or any name/shape mismatch.
void load_parameters(const std::vector<Parameter*>& params,
                     const std::string& path);

// --- v2 typed record stream -------------------------------------------------

class StateWriter {
 public:
  /// Writes the v2 magic immediately. `os` must outlive the writer.
  explicit StateWriter(std::ostream& os);

  void u64(const std::string& name, std::uint64_t v);
  void f64(const std::string& name, double v);
  void f32(const std::string& name, float v);
  void str(const std::string& name, const std::string& v);
  void tensor(const std::string& name, const Tensor& t);
  void u64vec(const std::string& name, std::span<const std::uint64_t> v);

  /// Terminal "end" record + flush; throws std::runtime_error if any write
  /// failed. Must be the last call.
  void finish();

 private:
  void header(const std::string& name, std::uint8_t kind);
  std::ostream* os_;
};

class StateReader {
 public:
  /// Verifies the v2 magic immediately (throws std::runtime_error on
  /// mismatch). `is` must outlive the reader.
  explicit StateReader(std::istream& is);

  /// Each accessor consumes the next record and throws std::runtime_error
  /// when its name or kind does not match, or the stream ends early.
  std::uint64_t u64(const std::string& name);
  double f64(const std::string& name);
  float f32(const std::string& name);
  std::string str(const std::string& name);
  /// Shape of `out` must equal the stored shape.
  void tensor(const std::string& name, Tensor& out);
  std::vector<std::uint64_t> u64vec(const std::string& name);

  /// Consumes the terminal "end" record; throws if absent (truncated tail).
  void finish();

 private:
  void header(const std::string& name, std::uint8_t kind);
  std::istream* is_;
};

/// Writes "<prefix>.count" then one tensor record "<prefix>.<param name>" per
/// parameter. The reader-side twin validates count, names, and shapes
/// against the destination list (same contract as the v1 loader).
void write_parameter_tensors(StateWriter& w, const std::string& prefix,
                             const std::vector<Parameter*>& params);
void read_parameter_tensors(StateReader& r, const std::string& prefix,
                            const std::vector<Parameter*>& params);

/// Reads the leading magic of a checkpoint file and returns its version
/// (1 or 2). Throws std::runtime_error on I/O failure or unknown magic.
int checkpoint_file_version(const std::string& path);

}  // namespace rlplan::nn
