// Optimizers and gradient utilities.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "nn/layers.h"

namespace rlplan::nn {

class StateReader;
class StateWriter;

struct AdamConfig {
  float lr = 3e-4f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;  ///< decoupled (AdamW-style) when > 0
};

/// Adam over a fixed parameter set (Kingma & Ba, 2015). Parameter pointers
/// must stay valid for the optimizer's lifetime.
class Adam {
 public:
  Adam(std::vector<Parameter*> params, AdamConfig config = {});

  /// Applies one update from the accumulated gradients. Does NOT zero grads.
  void step();

  void zero_grad();
  void set_lr(float lr) { config_.lr = lr; }
  float lr() const { return config_.lr; }
  long step_count() const { return t_; }

  /// Full optimizer state (step count + first/second moments) as v2
  /// checkpoint records under `prefix`. Restoring into an optimizer built
  /// over the same parameter list resumes updates bit-exactly; shape
  /// mismatches throw std::runtime_error.
  void save_state(StateWriter& w, const std::string& prefix) const;
  void load_state(StateReader& r, const std::string& prefix);

  /// In-memory copy of the full optimizer state (step count + moments), for
  /// the PPO NaN-guard's restore-last-good path. Cheap next to an update
  /// pass: two tensor copies per parameter.
  struct Snapshot {
    long t = 0;
    std::vector<Tensor> m, v;
  };
  Snapshot snapshot() const { return {t_, m_, v_}; }
  /// Restores a snapshot taken from THIS optimizer (same parameter list).
  void restore(const Snapshot& s) {
    t_ = s.t;
    m_ = s.m;
    v_ = s.v;
  }

 private:
  std::vector<Parameter*> params_;
  AdamConfig config_;
  std::vector<Tensor> m_, v_;
  long t_ = 0;
};

/// Rescales all grads so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm.
double clip_grad_norm(const std::vector<Parameter*>& params, double max_norm);

}  // namespace rlplan::nn
