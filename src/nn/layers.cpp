#include "nn/layers.h"

#include <cmath>
#include <stdexcept>

namespace rlplan::nn {

void Module::zero_grad() {
  for (Parameter* p : parameters()) p->grad.fill(0.0f);
}

float kaiming_bound(std::size_t fan_in) {
  return std::sqrt(6.0f / static_cast<float>(fan_in > 0 ? fan_in : 1));
}

namespace {
void init_uniform(Tensor& t, float bound, Rng& rng) {
  for (std::size_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.uniform(-bound, bound));
  }
}

BatchParallelFor g_batch_parallel_for;

/// Runs fn over [0, n): through the installed executor when one is set and
/// the batch is big enough to amortize the dispatch, serially otherwise.
/// Templated so the serial path (notably batch-1 action forwards) never pays
/// for a std::function wrap; the type erasure happens only on dispatch.
template <typename Fn>
void for_each_batch_row(std::size_t n, Fn&& fn) {
  if (n > 1 && g_batch_parallel_for) {
    g_batch_parallel_for(n, std::function<void(std::size_t)>(fn));
    return;
  }
  for (std::size_t i = 0; i < n; ++i) fn(i);
}
}  // namespace

void set_batch_parallel_for(BatchParallelFor executor) {
  g_batch_parallel_for = std::move(executor);
}

BatchParallelFor exchange_batch_parallel_for(BatchParallelFor executor) {
  BatchParallelFor previous = std::move(g_batch_parallel_for);
  g_batch_parallel_for = std::move(executor);
  return previous;
}

// ---------------------------------------------------------------- Linear --

Linear::Linear(std::size_t in_features, std::size_t out_features, Rng& rng,
               std::string name)
    : in_(in_features),
      out_(out_features),
      weight_(name + ".weight", {out_features, in_features}),
      bias_(name + ".bias", {out_features}) {
  init_uniform(weight_.value, kaiming_bound(in_), rng);
  init_uniform(bias_.value, 1.0f / std::sqrt(static_cast<float>(in_)), rng);
}

Tensor Linear::forward(const Tensor& x) {
  if (x.rank() != 2 || x.dim(1) != in_) {
    throw std::invalid_argument("Linear::forward: expected [batch, " +
                                std::to_string(in_) + "]");
  }
  cached_input_ = x;
  const std::size_t batch = x.dim(0);
  Tensor y({batch, out_});
  const auto xd = x.data();
  const auto wd = weight_.value.data();
  const auto bd = bias_.value.data();
  // Register-blocked over 4 outputs: one load of xr[i] feeds 4 independent
  // FMA chains, hiding the add latency the single-accumulator loop is bound
  // by. Each output still accumulates sequentially over i in one float, so
  // results are bit-identical to the naive o-at-a-time loop (pinned by
  // nn_batch_test).
  for_each_batch_row(batch, [&](std::size_t b) {
    const float* xr = xd.data() + b * in_;
    float* yr = y.data().data() + b * out_;
    std::size_t o = 0;
    for (; o + 4 <= out_; o += 4) {
      const float* w0 = wd.data() + o * in_;
      const float* w1 = w0 + in_;
      const float* w2 = w1 + in_;
      const float* w3 = w2 + in_;
      float a0 = bd[o];
      float a1 = bd[o + 1];
      float a2 = bd[o + 2];
      float a3 = bd[o + 3];
      for (std::size_t i = 0; i < in_; ++i) {
        const float xi = xr[i];
        a0 += w0[i] * xi;
        a1 += w1[i] * xi;
        a2 += w2[i] * xi;
        a3 += w3[i] * xi;
      }
      yr[o] = a0;
      yr[o + 1] = a1;
      yr[o + 2] = a2;
      yr[o + 3] = a3;
    }
    for (; o < out_; ++o) {
      const float* wr = wd.data() + o * in_;
      float acc = bd[o];
      for (std::size_t i = 0; i < in_; ++i) acc += wr[i] * xr[i];
      yr[o] = acc;
    }
  });
  return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
  const std::size_t batch = cached_input_.dim(0);
  if (grad_out.rank() != 2 || grad_out.dim(0) != batch ||
      grad_out.dim(1) != out_) {
    throw std::invalid_argument("Linear::backward: grad shape mismatch");
  }
  Tensor dx({batch, in_});
  const auto xd = cached_input_.data();
  const auto gd = grad_out.data();
  const auto wd = weight_.value.data();
  auto dwd = weight_.grad.data();
  auto dbd = bias_.grad.data();
  auto dxd = dx.data();
  // Fused over 4 outputs so each xr[i] load and dxr[i] read-modify-write is
  // amortized across 4 gradient rows. Per element, dxr[i] still receives its
  // contributions in ascending-o order — the same order as the naive loop —
  // so gradients are bit-identical (pinned by nn_grad_test). Blocks holding
  // a zero gradient take the per-output path below to keep the g == 0 skip
  // semantics exactly (skipping avoids += 0.0f, which would flush -0.0f
  // accumulators to +0.0f).
  for (std::size_t b = 0; b < batch; ++b) {
    const float* xr = xd.data() + b * in_;
    const float* gr = gd.data() + b * out_;
    float* dxr = dxd.data() + b * in_;
    const auto one_output = [&](std::size_t o) {
      const float g = gr[o];
      if (g == 0.0f) return;
      const float* wr = wd.data() + o * in_;
      float* dwr = dwd.data() + o * in_;
      dbd[o] += g;
      for (std::size_t i = 0; i < in_; ++i) {
        dwr[i] += g * xr[i];
        dxr[i] += g * wr[i];
      }
    };
    std::size_t o = 0;
    for (; o + 4 <= out_; o += 4) {
      const float g0 = gr[o];
      const float g1 = gr[o + 1];
      const float g2 = gr[o + 2];
      const float g3 = gr[o + 3];
      if (g0 == 0.0f || g1 == 0.0f || g2 == 0.0f || g3 == 0.0f) {
        one_output(o);
        one_output(o + 1);
        one_output(o + 2);
        one_output(o + 3);
        continue;
      }
      const float* w0 = wd.data() + o * in_;
      const float* w1 = w0 + in_;
      const float* w2 = w1 + in_;
      const float* w3 = w2 + in_;
      float* dw0 = dwd.data() + o * in_;
      float* dw1 = dw0 + in_;
      float* dw2 = dw1 + in_;
      float* dw3 = dw2 + in_;
      dbd[o] += g0;
      dbd[o + 1] += g1;
      dbd[o + 2] += g2;
      dbd[o + 3] += g3;
      for (std::size_t i = 0; i < in_; ++i) {
        const float xi = xr[i];
        dw0[i] += g0 * xi;
        dw1[i] += g1 * xi;
        dw2[i] += g2 * xi;
        dw3[i] += g3 * xi;
        float acc = dxr[i];
        acc += g0 * w0[i];
        acc += g1 * w1[i];
        acc += g2 * w2[i];
        acc += g3 * w3[i];
        dxr[i] = acc;
      }
    }
    for (; o < out_; ++o) one_output(o);
  }
  return dx;
}

// ---------------------------------------------------------------- Conv2d --

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t stride, std::size_t padding,
               Rng& rng, std::string name)
    : in_ch_(in_channels),
      out_ch_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      weight_(name + ".weight", {out_channels, in_channels, kernel, kernel}),
      bias_(name + ".bias", {out_channels}) {
  if (kernel == 0 || stride == 0) {
    throw std::invalid_argument("Conv2d: kernel and stride must be >= 1");
  }
  const std::size_t fan_in = in_channels * kernel * kernel;
  init_uniform(weight_.value, kaiming_bound(fan_in), rng);
  init_uniform(bias_.value, 1.0f / std::sqrt(static_cast<float>(fan_in)), rng);
}

Tensor Conv2d::forward(const Tensor& x) {
  if (x.rank() != 4 || x.dim(1) != in_ch_) {
    throw std::invalid_argument("Conv2d::forward: expected [batch, " +
                                std::to_string(in_ch_) + ", H, W]");
  }
  cached_input_ = x;
  const std::size_t batch = x.dim(0);
  const std::size_t h = x.dim(2);
  const std::size_t w = x.dim(3);
  const std::size_t ho = out_size(h);
  const std::size_t wo = out_size(w);
  Tensor y({batch, out_ch_, ho, wo});

  for_each_batch_row(batch, [&](std::size_t b) {
    for (std::size_t oc = 0; oc < out_ch_; ++oc) {
      const float bias = bias_.value[oc];
      for (std::size_t oy = 0; oy < ho; ++oy) {
        for (std::size_t ox = 0; ox < wo; ++ox) {
          float acc = bias;
          for (std::size_t ic = 0; ic < in_ch_; ++ic) {
            for (std::size_t ky = 0; ky < kernel_; ++ky) {
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(oy * stride_ + ky) -
                  static_cast<std::ptrdiff_t>(padding_);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) continue;
              for (std::size_t kx = 0; kx < kernel_; ++kx) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(ox * stride_ + kx) -
                    static_cast<std::ptrdiff_t>(padding_);
                if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w)) continue;
                acc += weight_.value.at(oc, ic, ky, kx) *
                       x.at(b, ic, static_cast<std::size_t>(iy),
                            static_cast<std::size_t>(ix));
              }
            }
          }
          y.at(b, oc, oy, ox) = acc;
        }
      }
    }
  });
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  const Tensor& x = cached_input_;
  const std::size_t batch = x.dim(0);
  const std::size_t h = x.dim(2);
  const std::size_t w = x.dim(3);
  const std::size_t ho = out_size(h);
  const std::size_t wo = out_size(w);
  if (grad_out.rank() != 4 || grad_out.dim(0) != batch ||
      grad_out.dim(1) != out_ch_ || grad_out.dim(2) != ho ||
      grad_out.dim(3) != wo) {
    throw std::invalid_argument("Conv2d::backward: grad shape mismatch");
  }
  Tensor dx({batch, in_ch_, h, w});

  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t oc = 0; oc < out_ch_; ++oc) {
      for (std::size_t oy = 0; oy < ho; ++oy) {
        for (std::size_t ox = 0; ox < wo; ++ox) {
          const float g = grad_out.at(b, oc, oy, ox);
          if (g == 0.0f) continue;
          bias_.grad[oc] += g;
          for (std::size_t ic = 0; ic < in_ch_; ++ic) {
            for (std::size_t ky = 0; ky < kernel_; ++ky) {
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(oy * stride_ + ky) -
                  static_cast<std::ptrdiff_t>(padding_);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) continue;
              for (std::size_t kx = 0; kx < kernel_; ++kx) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(ox * stride_ + kx) -
                    static_cast<std::ptrdiff_t>(padding_);
                if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w)) continue;
                const auto uiy = static_cast<std::size_t>(iy);
                const auto uix = static_cast<std::size_t>(ix);
                weight_.grad.at(oc, ic, ky, kx) += g * x.at(b, ic, uiy, uix);
                dx.at(b, ic, uiy, uix) +=
                    g * weight_.value.at(oc, ic, ky, kx);
              }
            }
          }
        }
      }
    }
  }
  return dx;
}

// ------------------------------------------------------------ activations --

Tensor ReLU::forward(const Tensor& x) {
  cached_input_ = x;
  Tensor y = x;
  for (std::size_t i = 0; i < y.numel(); ++i) {
    if (y[i] < 0.0f) y[i] = 0.0f;
  }
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  if (!grad_out.same_shape(cached_input_)) {
    throw std::invalid_argument("ReLU::backward: grad shape mismatch");
  }
  Tensor dx = grad_out;
  for (std::size_t i = 0; i < dx.numel(); ++i) {
    if (cached_input_[i] <= 0.0f) dx[i] = 0.0f;
  }
  return dx;
}

Tensor Tanh::forward(const Tensor& x) {
  Tensor y = x;
  for (std::size_t i = 0; i < y.numel(); ++i) y[i] = std::tanh(y[i]);
  cached_output_ = y;
  return y;
}

Tensor Tanh::backward(const Tensor& grad_out) {
  if (!grad_out.same_shape(cached_output_)) {
    throw std::invalid_argument("Tanh::backward: grad shape mismatch");
  }
  Tensor dx = grad_out;
  for (std::size_t i = 0; i < dx.numel(); ++i) {
    const float y = cached_output_[i];
    dx[i] *= 1.0f - y * y;
  }
  return dx;
}

// ---------------------------------------------------------------- Flatten --

Tensor Flatten::forward(const Tensor& x) {
  if (x.rank() < 2) {
    throw std::invalid_argument("Flatten::forward: rank must be >= 2");
  }
  cached_shape_ = x.shape();
  Tensor y = x;
  // Inner size is the product of the non-batch dims, not numel()/dim(0):
  // the quotient form divides by zero on an empty batch.
  std::size_t inner = 1;
  for (std::size_t d = 1; d < x.rank(); ++d) inner *= x.dim(d);
  y.reshape({x.dim(0), inner});
  return y;
}

Tensor Flatten::backward(const Tensor& grad_out) {
  Tensor dx = grad_out;
  dx.reshape(cached_shape_);
  return dx;
}

// ------------------------------------------------------------- Sequential --

Sequential& Sequential::add(std::unique_ptr<Module> layer) {
  layers_.push_back(std::move(layer));
  return *this;
}

Tensor Sequential::forward(const Tensor& x) {
  Tensor h = x;
  for (auto& layer : layers_) h = layer->forward(h);
  return h;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

std::vector<Parameter*> Sequential::parameters() {
  std::vector<Parameter*> params;
  for (auto& layer : layers_) {
    for (Parameter* p : layer->parameters()) params.push_back(p);
  }
  return params;
}

}  // namespace rlplan::nn
