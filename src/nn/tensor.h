// Dense row-major float tensor (rank 0-4) — the numeric substrate of the
// from-scratch RL training stack.
//
// Deliberately minimal: fixed dtype (float), contiguous storage, explicit
// shapes. Layers implement their own forward/backward loops against raw
// spans; Tensor provides shape bookkeeping, element access, and a few
// whole-tensor helpers.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

namespace rlplan::nn {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<std::size_t> shape);
  Tensor(std::vector<std::size_t> shape, std::vector<float> data);

  static Tensor zeros(std::vector<std::size_t> shape) {
    return Tensor(std::move(shape));
  }
  static Tensor full(std::vector<std::size_t> shape, float value);

  const std::vector<std::size_t>& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t numel() const { return data_.size(); }
  std::size_t dim(std::size_t i) const { return shape_.at(i); }
  bool same_shape(const Tensor& o) const { return shape_ == o.shape_; }

  std::span<float> data() { return data_; }
  std::span<const float> data() const { return data_; }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  // Multi-dimensional accessors (debug-checked).
  float& at(std::size_t i) {
    assert(rank() == 1);
    return data_[i];
  }
  float& at(std::size_t i, std::size_t j) {
    assert(rank() == 2);
    return data_[i * shape_[1] + j];
  }
  float at(std::size_t i, std::size_t j) const {
    assert(rank() == 2);
    return data_[i * shape_[1] + j];
  }
  float& at(std::size_t i, std::size_t j, std::size_t k) {
    assert(rank() == 3);
    return data_[(i * shape_[1] + j) * shape_[2] + k];
  }
  float at(std::size_t i, std::size_t j, std::size_t k) const {
    assert(rank() == 3);
    return data_[(i * shape_[1] + j) * shape_[2] + k];
  }
  float& at(std::size_t i, std::size_t j, std::size_t k, std::size_t l) {
    assert(rank() == 4);
    return data_[((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l];
  }
  float at(std::size_t i, std::size_t j, std::size_t k, std::size_t l) const {
    assert(rank() == 4);
    return data_[((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l];
  }

  void fill(float v);
  /// Reinterprets the shape; total element count must match.
  void reshape(std::vector<std::size_t> new_shape);

  // Elementwise in-place helpers.
  Tensor& add_(const Tensor& o);
  Tensor& scale_(float s);

  double sum() const;
  /// Squared L2 norm of all elements.
  double squared_norm() const;

 private:
  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

/// Product of a shape vector's entries (empty shape = scalar = 1).
std::size_t shape_numel(const std::vector<std::size_t>& shape);

}  // namespace rlplan::nn
