#include "nn/serialize.h"

#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace rlplan::nn {

namespace {
constexpr char kMagic[] = "RLPNNv1\n";

void write_u64(std::ofstream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64(std::ifstream& is) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}
}  // namespace

void save_parameters(const std::vector<Parameter*>& params,
                     const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("save_parameters: cannot open " + path);
  os.write(kMagic, sizeof(kMagic) - 1);
  write_u64(os, params.size());
  for (const Parameter* p : params) {
    write_u64(os, p->name.size());
    os.write(p->name.data(), static_cast<std::streamsize>(p->name.size()));
    write_u64(os, p->value.rank());
    for (std::size_t d : p->value.shape()) write_u64(os, d);
    os.write(reinterpret_cast<const char*>(p->value.data().data()),
             static_cast<std::streamsize>(p->value.numel() * sizeof(float)));
  }
  if (!os) throw std::runtime_error("save_parameters: write failed: " + path);
}

void load_parameters(const std::vector<Parameter*>& params,
                     const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_parameters: cannot open " + path);
  char magic[sizeof(kMagic) - 1];
  is.read(magic, sizeof(magic));
  if (!is || std::string(magic, sizeof(magic)) != kMagic) {
    throw std::runtime_error("load_parameters: bad magic in " + path);
  }
  const std::uint64_t count = read_u64(is);
  if (count != params.size()) {
    throw std::runtime_error("load_parameters: parameter count mismatch");
  }
  for (Parameter* p : params) {
    const std::uint64_t name_len = read_u64(is);
    std::string name(name_len, '\0');
    is.read(name.data(), static_cast<std::streamsize>(name_len));
    if (name != p->name) {
      throw std::runtime_error("load_parameters: expected parameter '" +
                               p->name + "', found '" + name + "'");
    }
    const std::uint64_t rank = read_u64(is);
    std::vector<std::size_t> shape(rank);
    for (auto& d : shape) d = read_u64(is);
    if (shape != p->value.shape()) {
      throw std::runtime_error("load_parameters: shape mismatch for '" +
                               name + "'");
    }
    is.read(reinterpret_cast<char*>(p->value.data().data()),
            static_cast<std::streamsize>(p->value.numel() * sizeof(float)));
  }
  if (!is) throw std::runtime_error("load_parameters: truncated file " + path);
}

}  // namespace rlplan::nn
