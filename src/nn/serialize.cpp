#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace rlplan::nn {

namespace {

// v2 record kinds. Values are part of the on-disk format; never renumber.
enum Kind : std::uint8_t {
  kU64 = 1,
  kF64 = 2,
  kF32 = 3,
  kString = 4,
  kTensor = 5,
  kU64Vec = 6,
  kEnd = 7,
};

constexpr char kEndRecordName[] = "end";

void write_u64_raw(std::ostream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint64_t read_u64_raw(std::istream& is) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!is) throw std::runtime_error("checkpoint: truncated stream");
  return v;
}

void write_u64(std::ofstream& os, std::uint64_t v) { write_u64_raw(os, v); }

std::uint64_t read_u64(std::ifstream& is) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

const char* kind_name(std::uint8_t kind) {
  switch (kind) {
    case kU64: return "u64";
    case kF64: return "f64";
    case kF32: return "f32";
    case kString: return "string";
    case kTensor: return "tensor";
    case kU64Vec: return "u64vec";
    case kEnd: return "end";
    default: return "unknown";
  }
}

}  // namespace

void save_parameters(const std::vector<Parameter*>& params,
                     const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("save_parameters: cannot open " + path);
  os.write(kCheckpointMagicV1, kCheckpointMagicLen);
  write_u64(os, params.size());
  for (const Parameter* p : params) {
    write_u64(os, p->name.size());
    os.write(p->name.data(), static_cast<std::streamsize>(p->name.size()));
    write_u64(os, p->value.rank());
    for (std::size_t d : p->value.shape()) write_u64(os, d);
    os.write(reinterpret_cast<const char*>(p->value.data().data()),
             static_cast<std::streamsize>(p->value.numel() * sizeof(float)));
  }
  if (!os) throw std::runtime_error("save_parameters: write failed: " + path);
}

void load_parameters(const std::vector<Parameter*>& params,
                     const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_parameters: cannot open " + path);
  char magic[kCheckpointMagicLen];
  is.read(magic, sizeof(magic));
  if (!is || std::string(magic, sizeof(magic)) != kCheckpointMagicV1) {
    throw std::runtime_error("load_parameters: bad magic in " + path);
  }
  const std::uint64_t count = read_u64(is);
  if (count != params.size()) {
    throw std::runtime_error("load_parameters: parameter count mismatch");
  }
  for (Parameter* p : params) {
    const std::uint64_t name_len = read_u64(is);
    std::string name(name_len, '\0');
    is.read(name.data(), static_cast<std::streamsize>(name_len));
    if (name != p->name) {
      throw std::runtime_error("load_parameters: expected parameter '" +
                               p->name + "', found '" + name + "'");
    }
    const std::uint64_t rank = read_u64(is);
    std::vector<std::size_t> shape(rank);
    for (auto& d : shape) d = read_u64(is);
    if (shape != p->value.shape()) {
      throw std::runtime_error("load_parameters: shape mismatch for '" +
                               name + "'");
    }
    is.read(reinterpret_cast<char*>(p->value.data().data()),
            static_cast<std::streamsize>(p->value.numel() * sizeof(float)));
  }
  if (!is) throw std::runtime_error("load_parameters: truncated file " + path);
}

// --- StateWriter -------------------------------------------------------------

StateWriter::StateWriter(std::ostream& os) : os_(&os) {
  os_->write(kCheckpointMagicV2, kCheckpointMagicLen);
}

void StateWriter::header(const std::string& name, std::uint8_t kind) {
  write_u64_raw(*os_, name.size());
  os_->write(name.data(), static_cast<std::streamsize>(name.size()));
  os_->write(reinterpret_cast<const char*>(&kind), 1);
}

void StateWriter::u64(const std::string& name, std::uint64_t v) {
  header(name, kU64);
  write_u64_raw(*os_, v);
}

void StateWriter::f64(const std::string& name, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  header(name, kF64);
  write_u64_raw(*os_, bits);
}

void StateWriter::f32(const std::string& name, float v) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  header(name, kF32);
  os_->write(reinterpret_cast<const char*>(&bits), sizeof(bits));
}

void StateWriter::str(const std::string& name, const std::string& v) {
  header(name, kString);
  write_u64_raw(*os_, v.size());
  os_->write(v.data(), static_cast<std::streamsize>(v.size()));
}

void StateWriter::tensor(const std::string& name, const Tensor& t) {
  header(name, kTensor);
  write_u64_raw(*os_, t.rank());
  for (std::size_t d : t.shape()) write_u64_raw(*os_, d);
  os_->write(reinterpret_cast<const char*>(t.data().data()),
             static_cast<std::streamsize>(t.numel() * sizeof(float)));
}

void StateWriter::u64vec(const std::string& name,
                         std::span<const std::uint64_t> v) {
  header(name, kU64Vec);
  write_u64_raw(*os_, v.size());
  for (std::uint64_t x : v) write_u64_raw(*os_, x);
}

void StateWriter::finish() {
  header(kEndRecordName, kEnd);
  os_->flush();
  if (!*os_) throw std::runtime_error("checkpoint: write failed");
}

// --- StateReader -------------------------------------------------------------

StateReader::StateReader(std::istream& is) : is_(&is) {
  char magic[kCheckpointMagicLen];
  is_->read(magic, sizeof(magic));
  if (!*is_ || std::string(magic, sizeof(magic)) != kCheckpointMagicV2) {
    throw std::runtime_error("checkpoint: bad v2 magic");
  }
}

void StateReader::header(const std::string& name, std::uint8_t kind) {
  const std::uint64_t name_len = read_u64_raw(*is_);
  // A wildly large length means corruption; reject before allocating.
  if (name_len > 4096) {
    throw std::runtime_error("checkpoint: corrupt record name length while "
                             "reading '" + name + "'");
  }
  std::string found(name_len, '\0');
  is_->read(found.data(), static_cast<std::streamsize>(name_len));
  std::uint8_t found_kind = 0;
  is_->read(reinterpret_cast<char*>(&found_kind), 1);
  if (!*is_) {
    throw std::runtime_error("checkpoint: truncated while reading '" + name +
                             "'");
  }
  if (found != name || found_kind != kind) {
    throw std::runtime_error(
        "checkpoint: expected record '" + name + "' (" + kind_name(kind) +
        "), found '" + found + "' (" + kind_name(found_kind) + ")");
  }
}

std::uint64_t StateReader::u64(const std::string& name) {
  header(name, kU64);
  return read_u64_raw(*is_);
}

double StateReader::f64(const std::string& name) {
  header(name, kF64);
  const std::uint64_t bits = read_u64_raw(*is_);
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

float StateReader::f32(const std::string& name) {
  header(name, kF32);
  std::uint32_t bits = 0;
  is_->read(reinterpret_cast<char*>(&bits), sizeof(bits));
  if (!*is_) throw std::runtime_error("checkpoint: truncated stream");
  float v = 0.0f;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string StateReader::str(const std::string& name) {
  header(name, kString);
  const std::uint64_t len = read_u64_raw(*is_);
  if (len > (1ULL << 20)) {
    throw std::runtime_error("checkpoint: corrupt string length in '" + name +
                             "'");
  }
  std::string v(len, '\0');
  is_->read(v.data(), static_cast<std::streamsize>(len));
  if (!*is_) throw std::runtime_error("checkpoint: truncated stream");
  return v;
}

void StateReader::tensor(const std::string& name, Tensor& out) {
  header(name, kTensor);
  const std::uint64_t rank = read_u64_raw(*is_);
  // Cap before allocating, like the string/u64vec readers: a corrupt rank
  // must throw, not attempt a giant allocation.
  if (rank > 16) {
    throw std::runtime_error("checkpoint: corrupt tensor rank in '" + name +
                             "'");
  }
  std::vector<std::size_t> shape(rank);
  for (auto& d : shape) d = read_u64_raw(*is_);
  if (shape != out.shape()) {
    throw std::runtime_error("checkpoint: shape mismatch for tensor '" +
                             name + "'");
  }
  is_->read(reinterpret_cast<char*>(out.data().data()),
            static_cast<std::streamsize>(out.numel() * sizeof(float)));
  if (!*is_) {
    throw std::runtime_error("checkpoint: truncated tensor '" + name + "'");
  }
}

std::vector<std::uint64_t> StateReader::u64vec(const std::string& name) {
  header(name, kU64Vec);
  const std::uint64_t count = read_u64_raw(*is_);
  if (count > (1ULL << 20)) {
    throw std::runtime_error("checkpoint: corrupt u64vec length in '" + name +
                             "'");
  }
  std::vector<std::uint64_t> v(count);
  for (auto& x : v) x = read_u64_raw(*is_);
  return v;
}

void StateReader::finish() { header(kEndRecordName, kEnd); }

// --- Parameter-list helpers --------------------------------------------------

void write_parameter_tensors(StateWriter& w, const std::string& prefix,
                             const std::vector<Parameter*>& params) {
  w.u64(prefix + ".count", params.size());
  for (const Parameter* p : params) w.tensor(prefix + "." + p->name, p->value);
}

void read_parameter_tensors(StateReader& r, const std::string& prefix,
                            const std::vector<Parameter*>& params) {
  const std::uint64_t count = r.u64(prefix + ".count");
  if (count != params.size()) {
    throw std::runtime_error("checkpoint: parameter count mismatch for '" +
                             prefix + "'");
  }
  for (Parameter* p : params) r.tensor(prefix + "." + p->name, p->value);
}

int checkpoint_file_version(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw std::runtime_error("checkpoint: cannot open " + path);
  }
  char magic[kCheckpointMagicLen];
  is.read(magic, sizeof(magic));
  if (!is) throw std::runtime_error("checkpoint: truncated file " + path);
  const std::string m(magic, sizeof(magic));
  if (m == kCheckpointMagicV1) return 1;
  if (m == kCheckpointMagicV2) return 2;
  throw std::runtime_error("checkpoint: unrecognized magic in " + path);
}

}  // namespace rlplan::nn
