#include "nn/tensor.h"

#include <stdexcept>

namespace rlplan::nn {

std::size_t shape_numel(const std::vector<std::size_t>& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return n;
}

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0f) {}

Tensor::Tensor(std::vector<std::size_t> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  if (data_.size() != shape_numel(shape_)) {
    throw std::invalid_argument("Tensor: data size does not match shape");
  }
}

Tensor Tensor::full(std::vector<std::size_t> shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

void Tensor::fill(float v) {
  for (auto& x : data_) x = v;
}

void Tensor::reshape(std::vector<std::size_t> new_shape) {
  if (shape_numel(new_shape) != data_.size()) {
    throw std::invalid_argument("Tensor::reshape: element count mismatch");
  }
  shape_ = std::move(new_shape);
}

Tensor& Tensor::add_(const Tensor& o) {
  if (!same_shape(o)) {
    throw std::invalid_argument("Tensor::add_: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Tensor& Tensor::scale_(float s) {
  for (auto& x : data_) x *= s;
  return *this;
}

double Tensor::sum() const {
  double s = 0.0;
  for (float x : data_) s += x;
  return s;
}

double Tensor::squared_norm() const {
  double s = 0.0;
  for (float x : data_) s += static_cast<double>(x) * x;
  return s;
}

}  // namespace rlplan::nn
