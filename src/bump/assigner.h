// Microbump assignment and total-wirelength evaluation (TAP-2.5D style).
//
// After all chiplets are placed, every inter-chiplet net's wires are assigned
// to bump-site pairs on the two dies so that total Manhattan wirelength is
// minimized (greedy nearest-facing-site matching with capacity limits). This
// is the W entering the reward; the cheap center-to-center estimate
// (Floorplan::center_wirelength) is only an optimization-loop proxy.
#pragma once

#include <cstddef>
#include <vector>

#include "bump/bump_grid.h"
#include "core/chiplet.h"
#include "core/floorplan.h"

namespace rlplan::bump {

/// One wire's endpoints after assignment.
struct WireRoute {
  std::size_t net_index = 0;
  Point from;  ///< bump on chiplet net.a
  Point to;    ///< bump on chiplet net.b
  double length_mm = 0.0;  ///< Manhattan
};

struct WirelengthReport {
  double total_mm = 0.0;
  std::vector<double> per_net_mm;  ///< indexed like system.nets()
  long wires_assigned = 0;
  /// Wires that exceeded site capacity and were wrapped onto already-full
  /// sites (0 in a well-dimensioned configuration).
  long capacity_overflows = 0;
};

class BumpAssigner {
 public:
  explicit BumpAssigner(BumpGridConfig config = {});

  const BumpGridConfig& config() const { return config_; }

  /// Assigns every net of a *complete* floorplan and reports wirelength.
  /// Throws std::logic_error if any net endpoint is unplaced.
  WirelengthReport assign(const ChipletSystem& system,
                          const Floorplan& floorplan) const;

  /// As assign(), also returning per-wire routes (for visualization/tests).
  WirelengthReport assign_with_routes(const ChipletSystem& system,
                                      const Floorplan& floorplan,
                                      std::vector<WireRoute>& routes) const;

 private:
  BumpGridConfig config_;
};

}  // namespace rlplan::bump
