#include "bump/assigner.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace rlplan::bump {

BumpAssigner::BumpAssigner(BumpGridConfig config) : config_(config) {}

WirelengthReport BumpAssigner::assign(const ChipletSystem& system,
                                      const Floorplan& floorplan) const {
  std::vector<WireRoute> routes;
  return assign_with_routes(system, floorplan, routes);
}

WirelengthReport BumpAssigner::assign_with_routes(
    const ChipletSystem& system, const Floorplan& floorplan,
    std::vector<WireRoute>& routes) const {
  WirelengthReport report;
  report.per_net_mm.assign(system.nets().size(), 0.0);
  routes.clear();

  // Per-chiplet site lists; capacities are consumed across nets so heavily
  // connected dies genuinely compete for peripheral bumps.
  std::vector<std::vector<BumpSite>> sites(system.num_chiplets());
  for (std::size_t i = 0; i < system.num_chiplets(); ++i) {
    if (!floorplan.is_placed(i)) {
      throw std::logic_error("BumpAssigner: chiplet " + std::to_string(i) +
                             " is unplaced");
    }
    sites[i] = make_peripheral_sites(floorplan.rect_of(i), config_);
  }

  // Process nets in descending wire count (big buses claim the best-facing
  // bumps first, mirroring TAP-2.5D's prioritized assignment).
  std::vector<std::size_t> net_order(system.nets().size());
  std::iota(net_order.begin(), net_order.end(), 0u);
  std::stable_sort(net_order.begin(), net_order.end(),
                   [&](std::size_t x, std::size_t y) {
                     return system.nets()[x].wires > system.nets()[y].wires;
                   });

  for (const std::size_t net_idx : net_order) {
    const InterChipletNet& net = system.nets()[net_idx];
    auto& sa = sites[net.a];
    auto& sb = sites[net.b];
    const Point ca = floorplan.rect_of(net.a).center();
    const Point cb = floorplan.rect_of(net.b).center();

    // Order each die's sites by how well they face the partner die.
    std::vector<std::size_t> oa(sa.size()), ob(sb.size());
    std::iota(oa.begin(), oa.end(), 0u);
    std::iota(ob.begin(), ob.end(), 0u);
    std::stable_sort(oa.begin(), oa.end(), [&](std::size_t x, std::size_t y) {
      return manhattan(sa[x].position, cb) < manhattan(sa[y].position, cb);
    });
    std::stable_sort(ob.begin(), ob.end(), [&](std::size_t x, std::size_t y) {
      return manhattan(sb[x].position, ca) < manhattan(sb[y].position, ca);
    });

    // Walk both ordered lists in lockstep, consuming capacity.
    std::size_t ia = 0, ib = 0;
    for (int wire = 0; wire < net.wires; ++wire) {
      while (ia < oa.size() && sa[oa[ia]].capacity <= 0) ++ia;
      while (ib < ob.size() && sb[ob[ib]].capacity <= 0) ++ib;
      std::size_t site_a, site_b;
      if (ia < oa.size()) {
        site_a = oa[ia];
        --sa[site_a].capacity;
      } else {
        // Capacity exhausted: wrap around the best-facing sites.
        site_a = oa[static_cast<std::size_t>(wire) % oa.size()];
        ++report.capacity_overflows;
      }
      if (ib < ob.size()) {
        site_b = ob[ib];
        --sb[site_b].capacity;
      } else {
        site_b = ob[static_cast<std::size_t>(wire) % ob.size()];
        ++report.capacity_overflows;
      }
      const double len =
          manhattan(sa[site_a].position, sb[site_b].position);
      report.per_net_mm[net_idx] += len;
      report.total_mm += len;
      ++report.wires_assigned;
      routes.push_back(
          {net_idx, sa[site_a].position, sb[site_b].position, len});
    }
  }
  return report;
}

}  // namespace rlplan::bump
