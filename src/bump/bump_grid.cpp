#include "bump/bump_grid.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rlplan::bump {

namespace {

/// Evenly spaced points along a segment from a to b (inclusive endpoints),
/// at most `max_points`, at least 1.
void emit_segment(const Point& a, const Point& b, double pitch,
                  std::vector<Point>& out) {
  const double len = euclidean(a, b);
  const auto n = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::floor(len / pitch)) + 1);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = n == 1 ? 0.0 : static_cast<double>(i) / double(n - 1);
    out.push_back({a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t});
  }
}

}  // namespace

std::vector<BumpSite> make_peripheral_sites(const Rect& footprint,
                                            const BumpGridConfig& config) {
  if (config.pitch_mm <= 0.0) {
    throw std::invalid_argument("BumpGridConfig: pitch must be positive");
  }
  if (config.rings < 1) {
    throw std::invalid_argument("BumpGridConfig: rings must be >= 1");
  }
  if (config.wires_per_site < 1) {
    throw std::invalid_argument("BumpGridConfig: wires_per_site must be >= 1");
  }

  std::vector<BumpSite> sites;
  for (int ring = 0; ring < config.rings; ++ring) {
    const double inset =
        config.edge_margin_mm + static_cast<double>(ring) * config.pitch_mm;
    const Rect r = footprint.inflated(-inset);
    if (r.w <= 0.0 || r.h <= 0.0) break;  // die too small for further rings

    std::vector<Point> ring_points;
    const Point ll{r.x, r.y};
    const Point lr{r.right(), r.y};
    const Point ur{r.right(), r.top()};
    const Point ul{r.x, r.top()};
    // CCW: bottom, right, top, left. Drop each segment's final point to
    // avoid duplicating corners.
    std::vector<Point> seg;
    for (const auto& [a, b] :
         {std::pair{ll, lr}, {lr, ur}, {ur, ul}, {ul, ll}}) {
      seg.clear();
      emit_segment(a, b, config.pitch_mm, seg);
      if (seg.size() > 1) seg.pop_back();
      ring_points.insert(ring_points.end(), seg.begin(), seg.end());
    }
    for (const auto& p : ring_points) {
      sites.push_back({p, config.wires_per_site});
    }
  }
  if (sites.empty()) {
    // Degenerate tiny die: one site at the center.
    sites.push_back({footprint.center(), config.wires_per_site});
  }
  return sites;
}

long total_capacity(const std::vector<BumpSite>& sites) {
  long cap = 0;
  for (const auto& s : sites) cap += s.capacity;
  return cap;
}

}  // namespace rlplan::bump
