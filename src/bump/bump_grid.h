// Microbump candidate sites on a chiplet.
//
// Inter-chiplet wires terminate on microbumps in a band along the die
// periphery (interior bumps carry power/ground and are not available for
// signals). Sites are generated ring by ring inward from the die edge at a
// fixed pitch; each site accepts a bounded number of signal wires
// (representing a small cluster of physical bumps at the site).
#pragma once

#include <cstddef>
#include <vector>

#include "core/geometry.h"

namespace rlplan::bump {

struct BumpGridConfig {
  double pitch_mm = 1.0;     ///< spacing between adjacent sites along a ring
  int rings = 2;             ///< number of peripheral rings
  double edge_margin_mm = 0.25;  ///< inset of the outermost ring from the edge
  int wires_per_site = 16;   ///< signal-wire capacity of one site
};

/// One candidate bump site with remaining capacity.
struct BumpSite {
  Point position;  ///< absolute interposer coordinates, mm
  int capacity = 0;
};

/// Generates peripheral bump sites for a placed die footprint. Sites are
/// ordered ring-outermost-first, counter-clockwise from the lower-left
/// corner; order is deterministic.
std::vector<BumpSite> make_peripheral_sites(const Rect& footprint,
                                            const BumpGridConfig& config);

/// Total signal capacity of a site list.
long total_capacity(const std::vector<BumpSite>& sites);

}  // namespace rlplan::bump
