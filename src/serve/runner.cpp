#include "serve/runner.h"

#include <memory>
#include <span>
#include <utility>

#include "bump/assigner.h"
#include "core/reward.h"
#include "obs/trace.h"
#include "rl/planner.h"  // first_fit_floorplan fallback
#include "rl/session.h"
#include "sa/tap25d.h"
#include "thermal/evaluator.h"
#include "thermal/grid_solver.h"
#include "thermal/incremental.h"
#include "util/log.h"
#include "util/timer.h"

namespace rlplan::serve {

namespace {

/// Forwarding decorator accumulating wall time spent inside the wrapped
/// evaluator — the honest "fast-model share" denominator for regress's
/// breakdown table (one steady_clock pair per query, ~40 ns against µs-scale
/// evals). Single-lane use only (one scenario leg); clone() stays
/// unavailable, which is fine because both legs run their optimizers
/// serially within a lane.
class TimedEvaluator final : public thermal::ThermalEvaluator {
 public:
  explicit TimedEvaluator(std::unique_ptr<thermal::ThermalEvaluator> inner)
      : inner_(std::move(inner)) {}

  double max_temperature(const ChipletSystem& system,
                         const Floorplan& floorplan) override {
    const Timer t;
    const double v = inner_->max_temperature(system, floorplan);
    seconds_ += t.seconds();
    return v;
  }
  std::vector<double> max_temperature_batch(
      const ChipletSystem& system, std::span<const Floorplan> floorplans,
      parallel::ThreadPool* pool = nullptr) override {
    const Timer t;
    auto v = inner_->max_temperature_batch(system, floorplans, pool);
    seconds_ += t.seconds();
    return v;
  }
  long num_evaluations() const override { return inner_->num_evaluations(); }
  std::string name() const override { return inner_->name(); }

  bool supports_incremental() const override {
    return inner_->supports_incremental();
  }
  void notify_reset(const ChipletSystem& system) override {
    inner_->notify_reset(system);
  }
  void notify_place(const ChipletSystem& system, std::size_t i,
                    const Placement& p) override {
    const Timer t;
    inner_->notify_place(system, i, p);
    seconds_ += t.seconds();
  }
  void notify_remove(std::size_t i) override { inner_->notify_remove(i); }
  void commit() override { inner_->commit(); }
  void rollback() override { inner_->rollback(); }
  double incremental_max_temperature(const ChipletSystem& system,
                                     const Floorplan& floorplan) override {
    const Timer t;
    const double v = inner_->incremental_max_temperature(system, floorplan);
    seconds_ += t.seconds();
    return v;
  }

  double seconds() const { return seconds_; }

 private:
  std::unique_ptr<thermal::ThermalEvaluator> inner_;
  double seconds_ = 0.0;
};

LegResult run_sa_leg(const systems::Scenario& scenario,
                     const ChipletSystem& system,
                     const thermal::FastThermalModel& model,
                     const thermal::LayerStack& stack,
                     const thermal::GridDims& truth_dims,
                     std::size_t sa_population,
                     const robust::RunControl& control) {
  sa::Tap25dConfig tc;
  tc.anneal.max_evaluations = scenario.budget.sa_evaluations;
  tc.anneal.moves_per_temperature = scenario.budget.sa_moves_per_temperature;
  tc.anneal.cooling = scenario.budget.sa_cooling;
  tc.anneal.t_final = 1e-5;
  tc.anneal.control = control;
  tc.seed = scenario.seed;
  // Population mode batches inside a scenario; caller-level parallelism
  // already saturates the pool, so the batch itself stays on this lane.
  tc.population = sa_population;
  tc.batch_threads = 0;
  sa::Tap25dPlanner planner(tc);
  TimedEvaluator evaluator(
      std::make_unique<thermal::IncrementalFastModelEvaluator>(model));
  const RewardCalculator rc;
  const bump::BumpAssigner assigner;

  const Timer timer;
  const sa::Tap25dResult result = planner.plan(system, evaluator, rc,
                                               assigner);
  LegResult leg;
  leg.ran = true;
  leg.seconds = timer.seconds();
  leg.fast_seconds = evaluator.seconds();
  leg.stop_reason = result.stats.stop_reason;
  leg.legal = result.best.is_complete() && result.best.is_legal();
  leg.work = result.stats.evaluations;
  leg.throughput = result.evaluations_per_second();
  leg.wirelength_mm = assigner.assign(system, result.best).total_mm;
  thermal::GridThermalSolver truth(stack, {.dims = truth_dims});
  const Timer truth_timer;
  leg.temp_c = truth.solve(system, result.best).max_temp_c;
  leg.truth_seconds = truth_timer.seconds();
  leg.reward = rc.reward(leg.wirelength_mm, leg.temp_c);
  leg.best = result.best;
  return leg;
}

struct RlLegOutcome {
  LegResult leg;
  bool warm_loaded = false;
  bool warm_saved = false;
};

RlLegOutcome run_rl_leg(const systems::Scenario& scenario,
                        const ChipletSystem& system,
                        const thermal::FastThermalModel& model,
                        const thermal::LayerStack& stack,
                        const thermal::GridDims& truth_dims,
                        const robust::RunControl& control, bool warm_start,
                        WarmStartCache& warm) {
  // The RL leg drives the TrainingSession engine directly (the same engine
  // behind RlPlanner and tools/train.cpp): one single-scenario session over
  // the shared fast model, budgeted epochs, final greedy decode, then
  // ground-truth scoring of the best floorplan.
  rl::TrainingSessionConfig sc;
  sc.env.grid = scenario.budget.rl_grid;
  sc.net.grid = scenario.budget.rl_grid;
  sc.ppo.episodes_per_update = scenario.budget.rl_episodes_per_update;
  sc.seed = scenario.seed;
  sc.control = control;
  std::vector<rl::SessionTask> tasks;
  auto timed = std::make_unique<TimedEvaluator>(
      std::make_unique<thermal::IncrementalFastModelEvaluator>(model));
  const TimedEvaluator* timed_view = timed.get();  // session owns it
  tasks.push_back({scenario.name, &system, std::move(timed)});
  rl::TrainingSession session(sc, std::move(tasks));

  RlLegOutcome out;
  const std::string family = scenario_family_key(scenario);
  if (warm_start && warm.enabled()) {
    // Weights-only fine-tuning load. A missing or shape-incompatible
    // checkpoint is a miss, never an error: the job simply runs cold.
    if (const auto path = warm.lookup(family)) {
      try {
        session.load_checkpoint(*path, /*warm_start=*/true);
        out.warm_loaded = true;
        warm.note_hit();
        RLPLAN_COUNTER_INC("serve.warm.hit");
      } catch (const std::exception& e) {
        warm.note_miss();
        RLPLAN_COUNTER_INC("serve.warm.miss");
        RLPLAN_WARN << "warm checkpoint " << *path << " rejected: "
                    << e.what();
      }
    } else {
      warm.note_miss();
      RLPLAN_COUNTER_INC("serve.warm.miss");
    }
  }

  const Timer timer;
  LegResult& leg = out.leg;
  for (int epoch = 0; epoch < scenario.budget.rl_epochs; ++epoch) {
    const rl::TrainStats stats = session.train_epoch();
    if (stats.update_skipped) ++leg.skipped_updates;
    if (stats.stop_reason != robust::StopReason::kNone) {
      leg.stop_reason = stats.stop_reason;  // best-so-far from here on
      break;
    }
  }
  session.greedy_episode(0);  // final greedy decode, as RlPlanner does
  leg.ran = true;
  leg.seconds = timer.seconds();
  leg.fast_seconds = timed_view->seconds();
  leg.work = session.total_env_steps();
  leg.throughput =
      leg.seconds > 0.0 ? static_cast<double>(leg.work) / leg.seconds : 0.0;

  if (warm_start && warm.enabled() &&
      leg.stop_reason == robust::StopReason::kNone) {
    // Publish the trained policy for the next job of this family. The save
    // is atomic write-then-rename, so a concurrent reader of the old file
    // is never torn; losing a race to another job of the same family just
    // means the other job's equally fresh weights win.
    try {
      session.save_checkpoint(warm.store_path(family));
      out.warm_saved = true;
      warm.note_store();
      RLPLAN_COUNTER_INC("serve.warm.store");
    } catch (const std::exception& e) {
      RLPLAN_WARN << "warm checkpoint publish failed: " << e.what();
    }
  }

  // Degrade gracefully when the short budget never completed an episode —
  // the first-fit fallback RlPlanner applies (scores will still be gated).
  std::optional<Floorplan> best;
  if (session.has_best(0)) {
    best = session.best_floorplan(0);
  } else {
    try {
      best = rl::first_fit_floorplan(system, sc.env);
    } catch (const std::exception&) {
      return out;  // nothing fits: leg stays illegal
    }
  }
  leg.legal = best->is_complete() && best->is_legal();
  const bump::BumpAssigner assigner;
  leg.wirelength_mm = assigner.assign(system, *best).total_mm;
  thermal::GridThermalSolver truth(stack, {.dims = truth_dims});
  const Timer truth_timer;
  leg.temp_c = truth.solve(system, *best).max_temp_c;
  leg.truth_seconds = truth_timer.seconds();
  leg.reward = RewardCalculator{}.reward(leg.wirelength_mm, leg.temp_c);
  leg.best = std::move(best);
  return out;
}

/// Re-scores every leg's best floorplan on the fast model through one
/// batched SoA call — the surrogate-vs-truth fidelity column of the report.
double score_legs_fast(const ChipletSystem& system,
                       const thermal::FastThermalModel& model,
                       std::vector<LegResult*> legs) {
  std::vector<Floorplan> candidates;
  std::vector<LegResult*> owners;
  for (LegResult* leg : legs) {
    if (leg->ran && leg->best.has_value()) {
      candidates.push_back(*leg->best);
      owners.push_back(leg);
    }
  }
  if (candidates.empty()) return 0.0;
  const Timer timer;
  const auto results = model.evaluate_batch(
      system, std::span<const Floorplan>(candidates));
  for (std::size_t i = 0; i < owners.size(); ++i) {
    owners[i]->fast_temp_c = results[i].max_temp_c;
  }
  return timer.seconds();
}

void report_phase(const RunOptions& opts, const char* phase) {
  if (opts.progress) opts.progress(phase);
}

}  // namespace

thermal::CharacterizationConfig RunnerConfig::coarse_characterization() {
  thermal::CharacterizationConfig cc;
  cc.solver.dims = {24, 24};
  cc.auto_axis_points = 5;
  cc.position_points = 5;
  return cc;
}

ScenarioRunner::ScenarioRunner(const thermal::LayerStack& stack,
                               RunnerConfig config)
    : config_(std::move(config)),
      models_(stack, config_.characterization),
      warm_(config_.warm_dir) {}

ScenarioRunResult ScenarioRunner::run(const systems::Scenario& scenario,
                                      const RunOptions& opts) {
  RLPLAN_TRACE_SPAN("serve.run");
  ScenarioRunResult r;
  r.name = scenario.name;
  try {
    const ChipletSystem system = scenario.build_system();
    r.chiplets = system.num_chiplets();
    report_phase(opts, "model");
    const thermal::FastThermalModel& model = models_.get(
        system.interposer_width(), system.interposer_height());
    // One wall-clock budget covers both optimizer legs (a slow SA leg leaves
    // correspondingly less time for the RL leg). The clock starts after the
    // shared characterization, which amortizes across jobs and must not eat
    // the first job's budget.
    robust::RunControl control;
    control.cancel = opts.cancel;
    if (opts.deadline_s > 0.0) {
      control.deadline = robust::Deadline::after_seconds(opts.deadline_s);
    }
    if (scenario.budget.run_sa) {
      report_phase(opts, "sa");
      r.sa = run_sa_leg(scenario, system, model, models_.stack(),
                        config_.truth_dims, config_.sa_population, control);
    }
    if (scenario.budget.run_rl) {
      report_phase(opts, "rl");
      RlLegOutcome rl = run_rl_leg(scenario, system, model, models_.stack(),
                                   config_.truth_dims, control,
                                   opts.warm_start, warm_);
      r.rl = std::move(rl.leg);
      r.warm_loaded = rl.warm_loaded;
      r.warm_saved = rl.warm_saved;
    }
    report_phase(opts, "score");
    r.fast_score_seconds = score_legs_fast(system, model, {&r.sa, &r.rl});
  } catch (const std::exception& e) {
    r.error = e.what();
  }
  return r;
}

util::JsonValue leg_to_json(const LegResult& leg) {
  util::JsonValue j = util::JsonValue::make_object();
  j.set("legal", leg.legal);
  j.set("temp_c", leg.temp_c);
  j.set("fast_temp_c", leg.fast_temp_c);
  j.set("wirelength_mm", leg.wirelength_mm);
  j.set("reward", leg.reward);
  j.set("work", leg.work);
  j.set("per_sec", leg.throughput);
  j.set("seconds", leg.seconds);
  j.set("truth_seconds", leg.truth_seconds);
  j.set("fast_model_seconds", leg.fast_seconds);
  // Degraded-only fields, mirroring train's JSONL: fault-free streams stay
  // byte-identical across builds.
  if (leg.degraded()) {
    j.set("degraded", true);
    j.set("stop_reason", std::string(robust::to_string(leg.stop_reason)));
    if (leg.skipped_updates > 0) j.set("skipped_updates", leg.skipped_updates);
  }
  return j;
}

util::JsonValue run_result_to_json(const ScenarioRunResult& r) {
  util::JsonValue j = util::JsonValue::make_object();
  j.set("name", r.name);
  j.set("chiplets", r.chiplets);
  if (!r.error.empty()) j.set("error", r.error);
  if (r.sa.ran) j.set("sa", leg_to_json(r.sa));
  if (r.rl.ran) j.set("rl", leg_to_json(r.rl));
  j.set("fast_score_seconds", r.fast_score_seconds);
  if (r.warm_loaded) j.set("warm_loaded", true);
  if (r.warm_saved) j.set("warm_saved", true);
  return j;
}

}  // namespace rlplan::serve
