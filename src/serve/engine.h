// ServeEngine — the daemon's job scheduler.
//
// Owns one ScenarioRunner (and through it the cross-request caches) plus a
// priority job queue drained by lanes of the existing src/parallel
// ThreadPool. The pool has no task-submission API — its one primitive is
// parallel_for — so the engine claims its lanes with a single long-lived
// parallel_for(workers, worker_loop) issued from a dispatcher thread: each
// index is taken by a distinct lane (a lane that pops an index stays inside
// worker_loop until shutdown, so it cannot steal a second one), and every
// lane loops pop-job/run-job until shutdown. This keeps the daemon on the
// same pool machinery the rest of the system uses — ThreadPool::stats(),
// the pool obs gauges, and the pool_dispatch fault site all see serve
// traffic.
//
// Job lifecycle: queued -> running -> done | failed | cancelled.
//  * Priorities: higher runs first; FIFO (submission order) within a
//    priority.
//  * Cancellation is cooperative and two-phase: a queued job is marked and
//    skipped when popped (it never runs); a running job's CancelToken makes
//    the optimizer legs return best-so-far with degraded/stop_reason tags
//    (the PR 7 machinery), and the job lands in kCancelled with that partial
//    result attached.
//  * Per-job deadline (optional) starts when the job starts running, after
//    any shared characterization — RunOptions semantics.
//
// All engine state is guarded by one mutex + condvar pair; the expensive
// work (the runner) executes outside the lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <condition_variable>
#include <mutex>

#include "serve/runner.h"
#include "systems/scenario.h"
#include "util/json.h"

namespace rlplan::parallel {
class ThreadPool;
}

namespace rlplan::serve {

enum class JobState { kQueued, kRunning, kDone, kFailed, kCancelled };
const char* to_string(JobState state);

struct SubmitOptions {
  int priority = 0;        ///< higher runs first; FIFO within a priority
  bool warm_start = false; ///< opt into the family warm-start cache
  double deadline_s = 0.0; ///< per-job wall budget once running (0 = none)
};

/// Snapshot of one job, safe to read after the job is gone from the queue.
struct JobInfo {
  std::uint64_t id = 0;
  std::string name;               ///< scenario name
  JobState state = JobState::kQueued;
  int priority = 0;
  std::string phase;              ///< last progress phase while running
  std::uint64_t progress_seq = 0; ///< bumps on every phase change
  double queued_seconds = 0.0;    ///< submit -> start (or now)
  double run_seconds = 0.0;       ///< start -> finish (or now)
  std::string error;              ///< terminal failure (kFailed)
};

struct EngineStats {
  std::size_t queue_depth = 0;
  std::size_t running = 0;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;  ///< kDone
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  CharacterizationCacheStats cache;
  WarmStartCacheStats warm;
  /// Submit -> finish latency over every terminal job, seconds.
  double latency_p50_s = 0.0;
  double latency_p99_s = 0.0;
};

struct ServeEngineConfig {
  /// Concurrent job lanes (the pool is sized workers - 1: the dispatcher
  /// thread participates as a lane, matching parallel_for semantics).
  /// 0 = hardware concurrency.
  std::size_t workers = 0;
  RunnerConfig runner{};
};

class ServeEngine {
 public:
  /// Builds the runner (copying the stack) and starts the worker lanes.
  ServeEngine(const thermal::LayerStack& stack, ServeEngineConfig config);
  ~ServeEngine();  ///< implies shutdown()

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// Enqueues a validated scenario; returns the job id (monotonic from 1).
  /// Throws std::runtime_error after shutdown.
  std::uint64_t submit(systems::Scenario scenario, SubmitOptions opts = {});

  /// Requests cancellation. Queued jobs become kCancelled immediately;
  /// running jobs stop cooperatively and land in kCancelled with their
  /// best-so-far result. Returns false for unknown ids; true otherwise
  /// (including jobs already terminal — cancel is idempotent).
  bool cancel(std::uint64_t id);

  /// Snapshot of one job; nullopt for unknown ids.
  std::optional<JobInfo> info(std::uint64_t id) const;

  /// Blocks until the job is terminal (or the engine shuts down), invoking
  /// `on_progress` from the waiting thread whenever the job's progress
  /// sequence advances. Returns the final snapshot; nullopt for unknown ids.
  std::optional<JobInfo> wait(
      std::uint64_t id,
      const std::function<void(const JobInfo&)>& on_progress = {});

  /// Full result payload (run_result_to_json) for terminal jobs; nullopt
  /// while queued/running or for unknown ids. Cancelled-while-queued jobs
  /// report an empty result object (they never ran).
  std::optional<util::JsonValue> result_json(std::uint64_t id) const;

  EngineStats stats() const;
  ScenarioRunner& runner() { return runner_; }

  /// Number of job lanes actually running.
  std::size_t workers() const { return workers_; }

  /// Protocol-level shutdown request flag (the transport owner polls it).
  void request_shutdown();
  bool shutdown_requested() const;

  /// Stops accepting work, cancels every queued and running job, and joins
  /// the lanes. Idempotent.
  void shutdown();

 private:
  struct Job;

  void worker_loop();
  JobInfo snapshot_locked(const Job& job) const;
  void run_job(Job& job);

  ServeEngineConfig config_;
  ScenarioRunner runner_;
  std::size_t workers_ = 1;
  std::unique_ptr<parallel::ThreadPool> pool_;
  std::thread dispatcher_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   ///< workers wait for jobs
  std::condition_variable done_cv_;   ///< wait()ers wait for transitions
  // Ready queue: ids ordered by (-priority, submit seq). A deque scan on
  // pop keeps the structure trivially correct under mid-queue cancellation;
  // queue depths are operator-scale (hundreds), not millions.
  std::deque<std::uint64_t> queue_;
  std::map<std::uint64_t, std::unique_ptr<Job>> jobs_;
  std::uint64_t next_id_ = 1;
  std::uint64_t submitted_ = 0, completed_ = 0, failed_ = 0, cancelled_ = 0;
  std::vector<double> latencies_s_;
  bool shutdown_ = false;
  std::atomic<bool> shutdown_requested_{false};
};

}  // namespace rlplan::serve
