// JSONL request protocol — the daemon's wire surface, transport-free.
//
// One request per line, one JSON object per response line; "result" requests
// may stream progress-event lines before the final response. Keeping the
// handler independent of sockets means the protocol tests drive it with
// plain strings (no ports, no timing) and the TCP server (serve/server.h)
// stays a dumb line pump.
//
// Requests ({"op": ...}):
//   submit   {op, scenario:{...}, priority?, warm_start?, deadline_s?}
//            -> {ok:true, op:"submit", id, name}
//            The scenario object uses the exact schema of scenario files
//            (systems/scenario.h scenario_from_json).
//   status   {op, id} -> {ok:true, op:"status", job:{...}}
//   cancel   {op, id} -> {ok:true, op:"cancel", id, known:bool}
//   result   {op, id, wait?:bool=true, progress?:bool=false}
//            -> with wait: blocks until terminal; progress:true first
//               streams {ok:true, event:"progress", id, phase, state} lines.
//            -> {ok:true, op:"result", job:{...}, result:{...}}
//               (result payload = run_result_to_json; {} for jobs cancelled
//               before running). Without wait, a non-terminal job answers
//               {ok:false, error:"job N not finished"}.
//   stats    {op} -> {ok:true, op:"stats", stats:{...}}
//   shutdown {op} -> {ok:true, op:"shutdown"} and the connection closes;
//            the transport owner observes ServeEngine::shutdown_requested().
//
// Every error is {ok:false, error:"..."} — malformed JSON, unknown op,
// unknown id, bad scenario. Errors never kill the connection; only
// "shutdown" (or the client hanging up) does.
#pragma once

#include <cstddef>
#include <functional>
#include <string>

#include "serve/engine.h"
#include "util/json.h"

namespace rlplan::serve {

/// Hard cap on one request line, enforced by the server's framing layer
/// before parsing (a peer streaming an unbounded line must not OOM the
/// daemon). Scenario JSON is the largest legitimate payload; 1 MiB is ~100x
/// the biggest suite scenario.
inline constexpr std::size_t kMaxLineBytes = 1 << 20;

util::JsonValue job_info_to_json(const JobInfo& info);
util::JsonValue engine_stats_to_json(const EngineStats& stats);

/// Stateless per-connection request interpreter over a shared engine.
class RequestHandler {
 public:
  explicit RequestHandler(ServeEngine& engine) : engine_(engine) {}

  /// Handles one request line, emitting response line(s) — WITHOUT trailing
  /// newline — through `sink`. Returns false when the connection should
  /// close (a "shutdown" request); true to keep serving. Never throws.
  bool handle_line(const std::string& line,
                   const std::function<void(const std::string&)>& sink);

 private:
  ServeEngine& engine_;
};

}  // namespace rlplan::serve
