#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace rlplan::serve {

namespace {
[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}
}  // namespace

Client::~Client() { close(); }

void Client::connect(const std::string& host, std::uint16_t port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close();
    throw std::runtime_error("bad address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int saved = errno;
    close();
    errno = saved;
    throw_errno("connect " + host + ":" + std::to_string(port));
  }
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

void Client::send_line(const std::string& line) {
  if (fd_ < 0) throw std::runtime_error("client not connected");
  std::string framed = line;
  framed.push_back('\n');
  std::size_t off = 0;
  while (off < framed.size()) {
    const ssize_t sent =
        ::send(fd_, framed.data() + off, framed.size() - off, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    off += static_cast<std::size_t>(sent);
  }
}

std::optional<std::string> Client::read_line() {
  if (fd_ < 0) throw std::runtime_error("client not connected");
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) throw_errno("recv");
    if (n == 0) return std::nullopt;  // EOF
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

util::JsonValue Client::request(
    const util::JsonValue& req,
    const std::function<void(const util::JsonValue&)>& on_progress) {
  send_line(req.dump());
  for (;;) {
    const std::optional<std::string> line = read_line();
    if (!line) throw std::runtime_error("server closed the connection");
    util::JsonValue response = util::parse_json(*line);
    if (response.string_or("event", "") == "progress") {
      if (on_progress) on_progress(response);
      continue;
    }
    return response;
  }
}

std::uint64_t Client::submit(const util::JsonValue& scenario_json,
                             int priority, bool warm_start,
                             double deadline_s) {
  util::JsonValue req = util::JsonValue::make_object();
  req.set("op", "submit");
  req.set("scenario", scenario_json);
  if (priority != 0) req.set("priority", priority);
  if (warm_start) req.set("warm_start", true);
  if (deadline_s > 0) req.set("deadline_s", deadline_s);
  const util::JsonValue response = request(req);
  if (!response.bool_or("ok", false)) {
    throw std::runtime_error("submit rejected: " +
                             response.string_or("error", "unknown error"));
  }
  return static_cast<std::uint64_t>(response.number_or("id", 0.0));
}

util::JsonValue Client::wait_result(
    std::uint64_t id,
    const std::function<void(const util::JsonValue&)>& on_progress) {
  util::JsonValue req = util::JsonValue::make_object();
  req.set("op", "result");
  req.set("id", id);
  req.set("wait", true);
  if (on_progress) req.set("progress", true);
  return request(req, on_progress);
}

util::JsonValue Client::status(std::uint64_t id) {
  util::JsonValue req = util::JsonValue::make_object();
  req.set("op", "status");
  req.set("id", id);
  return request(req);
}

util::JsonValue Client::cancel(std::uint64_t id) {
  util::JsonValue req = util::JsonValue::make_object();
  req.set("op", "cancel");
  req.set("id", id);
  return request(req);
}

util::JsonValue Client::stats() {
  util::JsonValue req = util::JsonValue::make_object();
  req.set("op", "stats");
  return request(req);
}

util::JsonValue Client::shutdown() {
  util::JsonValue req = util::JsonValue::make_object();
  req.set("op", "shutdown");
  return request(req);
}

}  // namespace rlplan::serve
