// Minimal blocking JSONL client for the serve daemon.
//
// Wraps one TCP connection: send a request object, read response lines,
// skipping (or collecting) streamed progress events until the final
// response. This is the in-tree consumer of the protocol — the load bench
// and the socket-level tests drive the daemon exactly the way an external
// client would, over a real socket.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "util/json.h"

namespace rlplan::serve {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to host:port; throws std::runtime_error on failure.
  void connect(const std::string& host, std::uint16_t port);
  bool connected() const { return fd_ >= 0; }
  void close();

  /// Sends one raw line (newline appended) — escape hatch for tests that
  /// need to send malformed or oversized payloads.
  void send_line(const std::string& line);

  /// Reads one response line (without the newline); nullopt on EOF.
  std::optional<std::string> read_line();

  /// Sends a request object and returns the next non-progress response.
  /// Progress-event lines ({"event":"progress",...}) are passed to
  /// `on_progress` when given, silently skipped otherwise. Throws on EOF.
  util::JsonValue request(
      const util::JsonValue& req,
      const std::function<void(const util::JsonValue&)>& on_progress = {});

  // --- Typed helpers over request() ----------------------------------------

  /// Submits a scenario (already in scenario-JSON form); returns the job id.
  /// Throws std::runtime_error when the daemon answers ok:false.
  std::uint64_t submit(const util::JsonValue& scenario_json, int priority = 0,
                       bool warm_start = false, double deadline_s = 0.0);

  /// Blocks until the job is terminal; returns the full result response
  /// ({"ok":true,"op":"result","job":...,"result":...}).
  util::JsonValue wait_result(
      std::uint64_t id,
      const std::function<void(const util::JsonValue&)>& on_progress = {});

  util::JsonValue status(std::uint64_t id);
  util::JsonValue cancel(std::uint64_t id);
  util::JsonValue stats();
  util::JsonValue shutdown();

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes received past the last returned line
};

}  // namespace rlplan::serve
