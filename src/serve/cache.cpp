#include "serve/cache.h"

#include <cstring>
#include <filesystem>

#include "obs/metrics.h"
#include "util/log.h"
#include "util/timer.h"

namespace rlplan::serve {

namespace {

// FNV-1a, 64-bit. A streaming digest over the exact bit patterns of the
// inputs: doubles hash by their IEEE-754 image (so 0.0 != -0.0, which is
// fine — equal *constructions* produce equal keys, and nothing constructs
// negative zeros), strings by their bytes plus a terminator so adjacent
// fields cannot alias ("ab"+"c" vs "a"+"bc").
struct Fnv1a {
  std::uint64_t state = 0xcbf29ce484222325ULL;

  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      state ^= p[i];
      state *= 0x100000001b3ULL;
    }
  }
  void f64(double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    bytes(&bits, sizeof(bits));
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof(v)); }
  void boolean(bool v) { u64(v ? 1 : 0); }
  void str(const std::string& s) {
    bytes(s.data(), s.size());
    const unsigned char terminator = 0xff;
    bytes(&terminator, 1);
  }
};

void hash_material(Fnv1a& h, const thermal::Material& m) {
  h.str(m.name);
  h.f64(m.conductivity);
}

}  // namespace

std::uint64_t layer_stack_hash(const thermal::LayerStack& stack) {
  Fnv1a h;
  h.u64(stack.num_layers());
  for (const thermal::Layer& layer : stack.layers()) {
    h.str(layer.name);
    h.f64(layer.thickness);
    hash_material(h, layer.material);
    h.boolean(layer.is_chiplet_layer);
  }
  hash_material(h, stack.fill_material());
  h.f64(stack.h_top());
  h.f64(stack.h_bottom());
  h.f64(stack.ambient_c());
  return h.state;
}

std::uint64_t characterization_key(std::uint64_t stack_hash,
                                   const thermal::CharacterizationConfig& cc,
                                   double interposer_w_mm,
                                   double interposer_h_mm) {
  Fnv1a h;
  h.u64(stack_hash);
  h.u64(cc.solver.dims.rows);
  h.u64(cc.solver.dims.cols);
  for (const double w : cc.widths_mm) h.f64(w);
  h.u64(cc.widths_mm.size());
  for (const double hh : cc.heights_mm) h.f64(hh);
  h.u64(cc.heights_mm.size());
  h.f64(cc.min_die_mm);
  h.f64(cc.max_die_mm);
  h.u64(cc.auto_axis_points);
  h.boolean(cc.geometric_axes);
  h.f64(cc.reference_power_w);
  h.f64(cc.mutual_source_mm);
  h.f64(cc.mutual_bin_mm);
  h.u64(cc.mutual_source_positions);
  h.u64(static_cast<std::uint64_t>(cc.kernel_deconvolution_iters));
  h.u64(cc.position_points);
  h.f64(cc.position_ref_die_mm);
  h.u64(static_cast<std::uint64_t>(cc.model_config.source_subsamples));
  h.u64(static_cast<std::uint64_t>(cc.model_config.receiver_probes));
  h.boolean(cc.model_config.correct_mutual);
  h.boolean(cc.model_config.use_images);
  h.f64(cc.model_config.image_reflectivity);
  h.f64(interposer_w_mm);
  h.f64(interposer_h_mm);
  return h.state;
}

CharacterizationCache::CharacterizationCache(
    thermal::LayerStack stack, thermal::CharacterizationConfig config)
    : stack_(std::move(stack)), config_(std::move(config)) {
  stack_hash_ = layer_stack_hash(stack_);
}

const thermal::FastThermalModel& CharacterizationCache::get(
    double interposer_w_mm, double interposer_h_mm) {
  const std::uint64_t key = characterization_key(
      stack_hash_, config_, interposer_w_mm, interposer_h_mm);
  Entry* entry;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    entry = &entries_[key];
  }
  bool characterized = false;
  std::call_once(entry->once, [&] {
    const Timer timer;
    thermal::ThermalCharacterizer charac(stack_, config_);
    entry->model.emplace(charac.characterize(interposer_w_mm,
                                             interposer_h_mm));
    characterized = true;
    const double seconds = timer.seconds();
    characterize_ns_.fetch_add(static_cast<std::uint64_t>(seconds * 1e9),
                               std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    RLPLAN_COUNTER_INC("serve.cache.miss");
    RLPLAN_INFO << "characterized " << interposer_w_mm << "x"
                << interposer_h_mm << " mm (" << seconds << " s, key "
                << key << ")";
  });
  if (!characterized) {
    // Includes threads that waited on another thread's in-flight
    // characterization: the work was shared, which is the cache's point.
    hits_.fetch_add(1, std::memory_order_relaxed);
    RLPLAN_COUNTER_INC("serve.cache.hit");
  }
  return *entry->model;
}

std::size_t CharacterizationCache::entries() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

CharacterizationCacheStats CharacterizationCache::stats() const {
  CharacterizationCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.characterize_seconds =
      static_cast<double>(characterize_ns_.load(std::memory_order_relaxed)) *
      1e-9;
  return s;
}

std::string scenario_family_key(const systems::Scenario& scenario) {
  std::string key;
  if (scenario.family.has_value()) {
    // Same topology + die count + interposer: instances differ only in the
    // family seed, exactly the population a shared policy generalizes over.
    key = std::string("family-") + to_string(scenario.family->topology) +
          "-" + std::to_string(scenario.family->chiplets) + "x" +
          std::to_string(static_cast<long>(scenario.family->interposer_w_mm));
  } else if (!scenario.builtin.empty()) {
    key = "builtin-" + scenario.builtin;
  } else {
    key = "inline-" + scenario.name;
  }
  key += "-g" + std::to_string(scenario.budget.rl_grid);
  for (char& c : key) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' ||
                    c == '-';
    if (!ok) c = '_';
  }
  return key;
}

WarmStartCache::WarmStartCache(std::string dir) : dir_(std::move(dir)) {}

std::optional<std::string> WarmStartCache::lookup(
    const std::string& family_key) {
  if (!enabled()) return std::nullopt;
  const std::string path = dir_ + "/" + family_key + ".ckpt";
  std::error_code ec;
  if (!std::filesystem::exists(path, ec) || ec) return std::nullopt;
  return path;
}

std::string WarmStartCache::store_path(const std::string& family_key) {
  if (!enabled()) return {};
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);  // best effort; save reports
  return dir_ + "/" + family_key + ".ckpt";
}

WarmStartCacheStats WarmStartCache::stats() const {
  WarmStartCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.stores = stores_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace rlplan::serve
