// Shared scenario execution core — ONE implementation behind the regress CLI
// and the serve daemon.
//
// tools/regress.cpp used to own the run-one-scenario pipeline (characterized
// fast model -> SA leg -> RL leg -> ground-truth scoring -> batched fast
// re-score). The daemon must produce results *bit-identical* to a direct
// regress run of the same scenario+seed — the serve-smoke CI gate diffs the
// two — and the only robust way to guarantee that is for both to call the
// same code. So the pipeline lives here: regress keeps envelope gating and
// report shaping, serve adds scheduling and caching, and both delegate the
// actual optimization to ScenarioRunner::run().
//
// Determinism contract: a run is a pure function of (scenario, layer stack,
// RunnerConfig, warm-start input). Every optimizer seed derives from the
// scenario; SA and RL legs run serially on the calling thread; the batched
// fast re-score runs pool-free. Timing fields (seconds, throughput) are the
// only nondeterministic outputs. Cancellation/deadline only ever *shorten*
// the same deterministic sequence (legs return best-so-far tagged with a
// StopReason), and warm starts are opt-in precisely because they change
// results.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/floorplan.h"
#include "robust/robust.h"
#include "serve/cache.h"
#include "systems/scenario.h"
#include "thermal/grid_model.h"
#include "util/json.h"

namespace rlplan::serve {

/// One optimizer leg's scored outcome.
struct LegResult {
  bool ran = false;
  bool legal = false;
  double temp_c = 0.0;          ///< ground-truth peak temperature
  double fast_temp_c = 0.0;     ///< fast-model peak (batched SoA scoring)
  double wirelength_mm = 0.0;   ///< microbump wirelength
  double reward = 0.0;
  double throughput = 0.0;      ///< SA: evals/s, RL: env steps/s
  long work = 0;                ///< SA: evaluations, RL: env steps
  double seconds = 0.0;         ///< optimizer wall time (excludes scoring)
  double truth_seconds = 0.0;   ///< ground-truth grid solve of the result
  double fast_seconds = 0.0;    ///< fast-model time inside the optimizer
  /// kNone unless a deadline/cancel cut the optimizer short; the scores
  /// above are then best-so-far and the JSON row carries a "degraded" tag.
  robust::StopReason stop_reason = robust::StopReason::kNone;
  /// RL only: PPO updates rolled back by the NaN guard (chaos or real).
  int skipped_updates = 0;
  std::optional<Floorplan> best;  ///< the floorplan behind the scores

  /// Degraded legs report best-so-far; envelope gates treat their breaches
  /// as waived because the budget or a fault cut them short.
  bool degraded() const {
    return stop_reason != robust::StopReason::kNone || skipped_updates > 0;
  }
};

/// One scenario's complete outcome (both legs + the fidelity re-score).
struct ScenarioRunResult {
  std::string name;
  std::size_t chiplets = 0;
  double fast_score_seconds = 0.0;  ///< one batched SoA re-score of the bests
  LegResult sa;
  LegResult rl;
  std::string error;        ///< non-empty = the scenario crashed
  bool warm_loaded = false; ///< RL leg started from a cached family checkpoint
  bool warm_saved = false;  ///< RL leg published its checkpoint to the cache

  bool degraded() const { return sa.degraded() || rl.degraded(); }
};

struct RunnerConfig {
  /// Characterization knobs. The defaults are the regression harness's
  /// deliberately coarse settings (consistency run-to-run matters,
  /// sub-Kelvin absolute accuracy does not) and are part of the
  /// served-vs-inline parity contract: change them and cached models — and
  /// therefore results — change for every consumer at once.
  thermal::CharacterizationConfig characterization = coarse_characterization();
  /// Ground-truth scoring resolution.
  thermal::GridDims truth_dims{32, 32};
  /// SA population mode (1 = classic incremental-protocol anneal).
  std::size_t sa_population = 1;
  /// Warm-start checkpoint directory; empty disables the warm cache.
  std::string warm_dir;

  static thermal::CharacterizationConfig coarse_characterization();
};

/// Per-run options (everything that may differ between two jobs over one
/// runner).
struct RunOptions {
  /// Wall-clock budget covering both optimizer legs, started *after* the
  /// shared characterization (which amortizes across jobs and must not eat
  /// the first job's budget). 0 = unlimited.
  double deadline_s = 0.0;
  /// Cooperative cancellation (a daemon job's cancel token). Inert default.
  robust::CancelToken cancel{};
  /// Load the scenario family's cached policy checkpoint before the RL leg
  /// and publish the trained result after it. Off by default: warm-started
  /// results are NOT bit-identical to a cold run of the same seed.
  bool warm_start = false;
  /// Phase callback ("model", "sa", "rl", "score") for progress streaming.
  /// Must not throw; called from the running thread.
  std::function<void(const char* phase)> progress{};
};

/// The shared execution engine: owns the cross-request characterization
/// cache and the warm-start checkpoint cache, and runs scenarios against
/// them. Thread-safe: concurrent run() calls share the caches and nothing
/// else (each call's optimizers, evaluator copies, and truth solver are
/// call-local).
class ScenarioRunner {
 public:
  explicit ScenarioRunner(const thermal::LayerStack& stack,
                          RunnerConfig config = {});

  /// Executes one scenario end to end. Never throws: failures land in
  /// ScenarioRunResult::error (matching regress's per-scenario isolation).
  ScenarioRunResult run(const systems::Scenario& scenario,
                        const RunOptions& opts = {});

  const RunnerConfig& config() const { return config_; }
  CharacterizationCache& model_cache() { return models_; }
  const CharacterizationCache& model_cache() const { return models_; }
  WarmStartCache& warm_cache() { return warm_; }
  const WarmStartCache& warm_cache() const { return warm_; }

 private:
  RunnerConfig config_;
  CharacterizationCache models_;
  WarmStartCache warm_;
};

/// JSON row for one leg — the exact field set BENCH_regress.json has always
/// carried (degraded-only fields appear only on degraded legs, so fault-free
/// reports stay byte-identical across builds).
util::JsonValue leg_to_json(const LegResult& leg);

/// JSON object for a whole run: name, chiplets, legs, fidelity re-score
/// seconds, error/warm flags. The serve protocol's "result" payload and the
/// serve-smoke parity diff both consume this.
util::JsonValue run_result_to_json(const ScenarioRunResult& result);

}  // namespace rlplan::serve
