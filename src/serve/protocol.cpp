#include "serve/protocol.h"

#include <exception>

#include "robust/robust.h"

namespace rlplan::serve {

namespace {

std::string error_line(const std::string& message) {
  util::JsonValue out = util::JsonValue::make_object();
  out.set("ok", false);
  out.set("error", message);
  return out.dump();
}

std::uint64_t parse_id(const util::JsonValue& request) {
  const double raw = request.number_or("id", -1.0);
  if (raw < 0) throw util::JsonError("request needs a non-negative \"id\"");
  return static_cast<std::uint64_t>(raw);
}

std::string unknown_job(std::uint64_t id) {
  return "unknown job id " + std::to_string(id);
}

}  // namespace

util::JsonValue job_info_to_json(const JobInfo& info) {
  util::JsonValue out = util::JsonValue::make_object();
  out.set("id", info.id);
  out.set("name", info.name);
  out.set("state", to_string(info.state));
  out.set("priority", info.priority);
  if (!info.phase.empty()) out.set("phase", info.phase);
  out.set("queued_seconds", info.queued_seconds);
  out.set("run_seconds", info.run_seconds);
  if (!info.error.empty()) out.set("error", info.error);
  return out;
}

util::JsonValue engine_stats_to_json(const EngineStats& stats) {
  util::JsonValue out = util::JsonValue::make_object();
  out.set("queue_depth", stats.queue_depth);
  out.set("running", stats.running);
  out.set("submitted", stats.submitted);
  out.set("completed", stats.completed);
  out.set("failed", stats.failed);
  out.set("cancelled", stats.cancelled);

  util::JsonValue cache = util::JsonValue::make_object();
  cache.set("hits", stats.cache.hits);
  cache.set("misses", stats.cache.misses);
  cache.set("hit_rate", stats.cache.hit_rate());
  cache.set("characterize_seconds", stats.cache.characterize_seconds);
  out.set("model_cache", std::move(cache));

  util::JsonValue warm = util::JsonValue::make_object();
  warm.set("hits", stats.warm.hits);
  warm.set("misses", stats.warm.misses);
  warm.set("stores", stats.warm.stores);
  out.set("warm_cache", std::move(warm));

  out.set("latency_p50_s", stats.latency_p50_s);
  out.set("latency_p99_s", stats.latency_p99_s);
  return out;
}

bool RequestHandler::handle_line(
    const std::string& line,
    const std::function<void(const std::string&)>& sink) {
  util::JsonValue request;
  std::string op;
  try {
    request = util::parse_json(line);
    op = request.string_or("op", "");
    if (op.empty()) throw util::JsonError("request needs an \"op\" string");
  } catch (const std::exception& e) {
    sink(error_line(std::string("bad request: ") + e.what()));
    return true;
  }

  try {
    if (op == "submit") {
      const util::JsonValue* scenario_json = request.find("scenario");
      if (scenario_json == nullptr) {
        sink(error_line("submit needs a \"scenario\" object"));
        return true;
      }
      systems::Scenario scenario = systems::scenario_from_json(*scenario_json);
      SubmitOptions opts;
      opts.priority = static_cast<int>(request.number_or("priority", 0.0));
      opts.warm_start = request.bool_or("warm_start", false);
      opts.deadline_s = request.number_or("deadline_s", 0.0);
      const std::string name = scenario.name;
      const std::uint64_t id = engine_.submit(std::move(scenario), opts);
      util::JsonValue out = util::JsonValue::make_object();
      out.set("ok", true);
      out.set("op", "submit");
      out.set("id", id);
      out.set("name", name);
      sink(out.dump());
      return true;
    }

    if (op == "status") {
      const std::uint64_t id = parse_id(request);
      const std::optional<JobInfo> info = engine_.info(id);
      if (!info) {
        sink(error_line(unknown_job(id)));
        return true;
      }
      util::JsonValue out = util::JsonValue::make_object();
      out.set("ok", true);
      out.set("op", "status");
      out.set("job", job_info_to_json(*info));
      sink(out.dump());
      return true;
    }

    if (op == "cancel") {
      const std::uint64_t id = parse_id(request);
      const bool known = engine_.cancel(id);
      util::JsonValue out = util::JsonValue::make_object();
      out.set("ok", true);
      out.set("op", "cancel");
      out.set("id", id);
      out.set("known", known);
      sink(out.dump());
      return true;
    }

    if (op == "result") {
      const std::uint64_t id = parse_id(request);
      const bool wait = request.bool_or("wait", true);
      const bool stream_progress = request.bool_or("progress", false);
      std::optional<JobInfo> info;
      if (wait) {
        info = engine_.wait(
            id, stream_progress
                    ? std::function<void(const JobInfo&)>(
                          [&](const JobInfo& snap) {
                            util::JsonValue event =
                                util::JsonValue::make_object();
                            event.set("ok", true);
                            event.set("event", "progress");
                            event.set("id", snap.id);
                            event.set("phase", snap.phase);
                            event.set("state", to_string(snap.state));
                            sink(event.dump());
                          })
                    : std::function<void(const JobInfo&)>{});
      } else {
        info = engine_.info(id);
      }
      if (!info) {
        sink(error_line(unknown_job(id)));
        return true;
      }
      const std::optional<util::JsonValue> payload = engine_.result_json(id);
      if (!payload) {
        sink(error_line("job " + std::to_string(id) + " not finished"));
        return true;
      }
      util::JsonValue out = util::JsonValue::make_object();
      out.set("ok", true);
      out.set("op", "result");
      out.set("job", job_info_to_json(*info));
      out.set("result", *payload);
      sink(out.dump());
      return true;
    }

    if (op == "stats") {
      util::JsonValue out = util::JsonValue::make_object();
      out.set("ok", true);
      out.set("op", "stats");
      out.set("stats", engine_stats_to_json(engine_.stats()));
      sink(out.dump());
      return true;
    }

    if (op == "shutdown") {
      engine_.request_shutdown();
      util::JsonValue out = util::JsonValue::make_object();
      out.set("ok", true);
      out.set("op", "shutdown");
      sink(out.dump());
      return false;  // close this connection; the server owner tears down
    }

    sink(error_line("unknown op \"" + op + "\""));
    return true;
  } catch (const std::exception& e) {
    sink(error_line(std::string(op) + " failed: " + e.what()));
    return true;
  }
}

}  // namespace rlplan::serve
