// JSONL-over-TCP transport for the serve daemon.
//
// A deliberately thin layer: accept connections on a loopback (by default)
// socket, split the byte stream into newline-framed request lines under the
// kMaxLineBytes cap, and feed each line to a per-connection RequestHandler.
// All protocol intelligence lives in serve/protocol.*; all scheduling lives
// in serve/engine.*.
//
// Threading: one accept thread plus one thread per live connection (the
// daemon's concurrency ceiling is the engine's worker lanes, not connection
// count — a connection thread spends its life blocked on read() or inside
// ServeEngine::wait()). stop() shuts the listen socket and every live
// connection down, then joins all threads; it is idempotent and safe to call
// from a signal-driven path.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.h"

namespace rlplan::serve {

struct ServerConfig {
  std::string host = "127.0.0.1";  ///< bind address (loopback by default)
  std::uint16_t port = 0;          ///< 0 = ephemeral (read back via port())
};

class JsonlServer {
 public:
  JsonlServer(ServeEngine& engine, ServerConfig config = {});
  ~JsonlServer();  ///< implies stop()

  JsonlServer(const JsonlServer&) = delete;
  JsonlServer& operator=(const JsonlServer&) = delete;

  /// Binds, listens, and starts the accept thread. Throws std::runtime_error
  /// (with errno text) on bind/listen failure.
  void start();

  /// The bound port — the ephemeral port when config.port was 0. Valid after
  /// start().
  std::uint16_t port() const { return port_; }

  /// Closes the listen socket, hangs up every live connection, joins all
  /// threads. Idempotent.
  void stop();

  std::size_t connections_served() const {
    return connections_served_.load(std::memory_order_relaxed);
  }

 private:
  void accept_loop();
  void connection_loop(int fd);

  ServeEngine& engine_;
  ServerConfig config_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> connections_served_{0};

  std::mutex conn_mutex_;
  std::vector<int> conn_fds_;            ///< live connection sockets
  std::vector<std::thread> conn_threads_;
};

}  // namespace rlplan::serve
