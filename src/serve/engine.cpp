#include "serve/engine.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "obs/metrics.h"
#include "parallel/thread_pool.h"
#include "util/log.h"
#include "util/stats.h"

namespace rlplan::serve {

namespace {
using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}
}  // namespace

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "?";
}

struct ServeEngine::Job {
  std::uint64_t id = 0;
  systems::Scenario scenario;
  SubmitOptions opts;
  JobState state = JobState::kQueued;
  robust::CancelToken token = robust::CancelToken::create();
  bool cancel_requested = false;
  bool ran = false;  ///< reached kRunning at least once
  std::string phase;
  std::uint64_t progress_seq = 0;
  Clock::time_point submit_tp{};
  Clock::time_point start_tp{};
  Clock::time_point finish_tp{};
  ScenarioRunResult result;
  bool has_result = false;
};

ServeEngine::ServeEngine(const thermal::LayerStack& stack,
                         ServeEngineConfig config)
    : config_(std::move(config)), runner_(stack, config_.runner) {
  workers_ = config_.workers > 0 ? config_.workers
                                 : parallel::ThreadPool::hardware_threads();
  // The dispatcher thread is lane 0 of parallel_for, so the pool supplies
  // the remaining workers_ - 1 lanes (a pool of size 0 is the documented
  // inline path: one worker == the dispatcher itself).
  pool_ = std::make_unique<parallel::ThreadPool>(workers_ - 1);
  dispatcher_ = std::thread([this] {
    // One long-lived parallel_for claims every lane for the job queue. Each
    // of the `workers_` indices is taken by a distinct lane: a lane that
    // pops an index blocks inside worker_loop() until shutdown, so it can
    // never fetch a second index while the queue is live.
    pool_->parallel_for(workers_, [this](std::size_t) { worker_loop(); });
  });
}

ServeEngine::~ServeEngine() { shutdown(); }

std::uint64_t ServeEngine::submit(systems::Scenario scenario,
                                  SubmitOptions opts) {
  scenario.validate();
  std::unique_lock<std::mutex> lock(mutex_);
  if (shutdown_) throw std::runtime_error("engine is shut down");
  const std::uint64_t id = next_id_++;
  auto job = std::make_unique<Job>();
  job->id = id;
  job->scenario = std::move(scenario);
  job->opts = opts;
  job->submit_tp = Clock::now();
  jobs_.emplace(id, std::move(job));
  queue_.push_back(id);
  ++submitted_;
  RLPLAN_COUNTER_INC("serve.jobs.submitted");
  RLPLAN_GAUGE_SET("serve.queue_depth", queue_.size());
  lock.unlock();
  work_cv_.notify_one();
  return id;
}

bool ServeEngine::cancel(std::uint64_t id) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  Job& job = *it->second;
  job.cancel_requested = true;
  job.token.cancel();
  if (job.state == JobState::kQueued) {
    // Never ran: terminal immediately; the queue entry is skipped when a
    // worker pops it.
    job.state = JobState::kCancelled;
    job.finish_tp = Clock::now();
    ++cancelled_;
    RLPLAN_COUNTER_INC("serve.jobs.cancelled");
    lock.unlock();
    done_cv_.notify_all();
  }
  return true;
}

JobInfo ServeEngine::snapshot_locked(const Job& job) const {
  JobInfo info;
  info.id = job.id;
  info.name = job.scenario.name;
  info.state = job.state;
  info.priority = job.opts.priority;
  info.phase = job.phase;
  info.progress_seq = job.progress_seq;
  info.error = job.result.error;
  const Clock::time_point now = Clock::now();
  switch (job.state) {
    case JobState::kQueued:
      info.queued_seconds = seconds_between(job.submit_tp, now);
      break;
    case JobState::kRunning:
      info.queued_seconds = seconds_between(job.submit_tp, job.start_tp);
      info.run_seconds = seconds_between(job.start_tp, now);
      break;
    default:
      info.queued_seconds = seconds_between(
          job.submit_tp, job.ran ? job.start_tp : job.finish_tp);
      info.run_seconds =
          job.ran ? seconds_between(job.start_tp, job.finish_tp) : 0.0;
  }
  return info;
}

std::optional<JobInfo> ServeEngine::info(std::uint64_t id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return snapshot_locked(*it->second);
}

std::optional<JobInfo> ServeEngine::wait(
    std::uint64_t id, const std::function<void(const JobInfo&)>& on_progress) {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  Job& job = *it->second;
  std::uint64_t seen_seq = job.progress_seq;
  for (;;) {
    const bool terminal = job.state != JobState::kQueued &&
                          job.state != JobState::kRunning;
    if (terminal || shutdown_) return snapshot_locked(job);
    if (job.progress_seq != seen_seq) {
      // Consume the progress edge even without a callback — leaving it
      // unconsumed keeps the cv predicate permanently true and this loop
      // would spin holding the mutex, starving the worker's own progress
      // updates.
      seen_seq = job.progress_seq;
      if (on_progress) {
        const JobInfo snap = snapshot_locked(job);
        // Callback outside the lock: it writes to a socket and must not be
        // able to deadlock against engine state.
        lock.unlock();
        on_progress(snap);
        lock.lock();
      }
      continue;  // re-check: the job may have finished meanwhile
    }
    done_cv_.wait(lock, [&] {
      return shutdown_ || job.progress_seq != seen_seq ||
             (job.state != JobState::kQueued &&
              job.state != JobState::kRunning);
    });
  }
}

std::optional<util::JsonValue> ServeEngine::result_json(
    std::uint64_t id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  const Job& job = *it->second;
  if (job.state == JobState::kQueued || job.state == JobState::kRunning) {
    return std::nullopt;
  }
  if (!job.has_result) {
    // Cancelled while queued (or shut down before running): no run payload.
    return util::JsonValue::make_object();
  }
  return run_result_to_json(job.result);
}

EngineStats ServeEngine::stats() const {
  EngineStats s;
  std::vector<double> latencies;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    s.queue_depth = queue_.size();
    for (const auto& [id, job] : jobs_) {
      if (job->state == JobState::kRunning) ++s.running;
    }
    s.submitted = submitted_;
    s.completed = completed_;
    s.failed = failed_;
    s.cancelled = cancelled_;
    latencies = latencies_s_;
  }
  s.cache = runner_.model_cache().stats();
  s.warm = runner_.warm_cache().stats();
  if (!latencies.empty()) {
    s.latency_p50_s = quantile(latencies, 0.5);
    s.latency_p99_s = quantile(latencies, 0.99);
  }
  return s;
}

void ServeEngine::request_shutdown() {
  shutdown_requested_.store(true, std::memory_order_relaxed);
}

bool ServeEngine::shutdown_requested() const {
  return shutdown_requested_.load(std::memory_order_relaxed);
}

void ServeEngine::shutdown() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (shutdown_) {
      lock.unlock();
    } else {
      shutdown_ = true;
      for (auto& [id, job] : jobs_) {
        job->cancel_requested = true;
        job->token.cancel();
        if (job->state == JobState::kQueued) {
          job->state = JobState::kCancelled;
          job->finish_tp = Clock::now();
          ++cancelled_;
        }
      }
      queue_.clear();
      lock.unlock();
      work_cv_.notify_all();
      done_cv_.notify_all();
    }
  }
  if (dispatcher_.joinable()) dispatcher_.join();
}

void ServeEngine::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
    if (shutdown_) return;
    // Pop the highest-priority, earliest-submitted ready job. Linear scan:
    // queue depths are operator-scale and the scan runs under the same lock
    // a heap would need anyway.
    auto best = queue_.begin();
    for (auto it = std::next(best); it != queue_.end(); ++it) {
      if (jobs_.at(*it)->opts.priority > jobs_.at(*best)->opts.priority) {
        best = it;
      }
    }
    const std::uint64_t id = *best;
    queue_.erase(best);
    RLPLAN_GAUGE_SET("serve.queue_depth", queue_.size());
    Job& job = *jobs_.at(id);
    if (job.state != JobState::kQueued) continue;  // cancelled while queued
    job.state = JobState::kRunning;
    job.ran = true;
    job.start_tp = Clock::now();
    run_job(job);  // unlocks while running, relocks before returning
  }
}

void ServeEngine::run_job(Job& job) {
  // Called with mutex_ held on job entry; returns with it held.
  RunOptions opts;
  opts.deadline_s = job.opts.deadline_s;
  opts.cancel = job.token;
  opts.warm_start = job.opts.warm_start;
  opts.progress = [this, &job](const char* phase) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      job.phase = phase;
      ++job.progress_seq;
    }
    done_cv_.notify_all();
  };
  const systems::Scenario scenario = job.scenario;  // run outside the lock

  mutex_.unlock();
  ScenarioRunResult result = runner_.run(scenario, opts);
  mutex_.lock();

  job.result = std::move(result);
  job.has_result = true;
  job.finish_tp = Clock::now();
  if (job.cancel_requested) {
    job.state = JobState::kCancelled;
    ++cancelled_;
    RLPLAN_COUNTER_INC("serve.jobs.cancelled");
  } else if (!job.result.error.empty()) {
    job.state = JobState::kFailed;
    ++failed_;
    RLPLAN_COUNTER_INC("serve.jobs.failed");
  } else {
    job.state = JobState::kDone;
    ++completed_;
    RLPLAN_COUNTER_INC("serve.jobs.completed");
  }
  const double latency = seconds_between(job.submit_tp, job.finish_tp);
  latencies_s_.push_back(latency);
  RLPLAN_HISTOGRAM_OBSERVE("serve.job_latency_us", latency * 1e6);
  done_cv_.notify_all();
}

}  // namespace rlplan::serve
