// Cross-request caches — the daemon's throughput unlock.
//
// A floorplanning job's dominant fixed cost is thermal characterization:
// dozens of ground-truth grid solves that depend only on the (layer stack,
// characterization config, interposer footprint) triple, not on the job's
// netlist, budgets, or seed. A CLI invocation pays it every time; a resident
// daemon pays it once per distinct triple and serves every later job from
// the cache. The cached FastThermalModel already holds its
// resampled_uniform() mutual table (built at model construction), so the
// resample cost is amortized by the same entry.
//
// Keying: layer_stack_hash() folds every physical field of the stack
// (layers, materials, fill, boundary coefficients, ambient) into an FNV-1a
// digest; characterization_key() extends it with the characterization knobs
// and the footprint. Equal inputs produce equal keys by construction
// (tests/serve_test.cpp pins this, including sensitivity: perturbing any
// single field must change the key). Keys are 64-bit digests, so distinct
// inputs colliding is possible in principle but negligible in practice
// (~2^-64 per pair); a collision would silently serve a mis-characterized
// model, which is the accepted trade for not storing full key material.
//
// The second cache is the warm-start checkpoint store: RL legs of the same
// scenario *family* (same topology/size/grid — the shape the policy net must
// match) can reuse the previous job's trained weights instead of starting
// from random init. Opt-in per job (warm-started results are deliberately
// NOT bit-identical to a cold run, so parity-sensitive callers leave it
// off). Checkpoints live as RLPNNv2 files under a caller-owned directory;
// writes go through the session's atomic write-then-rename saver, so
// concurrent jobs of one family race benignly (readers see a complete old
// or new file, never a torn one).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "systems/scenario.h"
#include "thermal/characterize.h"
#include "thermal/fast_model.h"
#include "thermal/layer_stack.h"

namespace rlplan::serve {

/// FNV-1a digest of every physically meaningful field of the stack: layer
/// order, names, thicknesses, material names/conductivities, chiplet-layer
/// flag, fill material, h_top/h_bottom, ambient. Two stacks that solve
/// identically hash identically; any field perturbation changes the digest.
std::uint64_t layer_stack_hash(const thermal::LayerStack& stack);

/// Full characterization cache key: the stack digest extended with the
/// characterization knobs that shape the tables (solver dims, axes, probe
/// counts, model config) and the interposer footprint.
std::uint64_t characterization_key(std::uint64_t stack_hash,
                                   const thermal::CharacterizationConfig& cc,
                                   double interposer_w_mm,
                                   double interposer_h_mm);

struct CharacterizationCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;  ///< each miss ran one full characterization
  double characterize_seconds = 0.0;  ///< total time spent on misses
  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// Thread-safe characterized-model cache. The map mutex is held only for
/// entry lookup; characterization itself runs under a per-entry once_flag,
/// so distinct footprints characterize concurrently and only same-key
/// requests wait (map nodes are address-stable, so returned references stay
/// valid for the cache's lifetime).
class CharacterizationCache {
 public:
  /// The stack is copied: a daemon's cache must not dangle on caller state.
  CharacterizationCache(thermal::LayerStack stack,
                        thermal::CharacterizationConfig config);

  /// The model for one interposer footprint; characterizes on first use.
  /// Safe to call concurrently. The reference lives as long as the cache.
  const thermal::FastThermalModel& get(double interposer_w_mm,
                                       double interposer_h_mm);

  const thermal::LayerStack& stack() const { return stack_; }
  const thermal::CharacterizationConfig& config() const { return config_; }
  std::uint64_t stack_hash() const { return stack_hash_; }
  std::size_t entries() const;
  CharacterizationCacheStats stats() const;

 private:
  struct Entry {
    std::once_flag once;
    std::optional<thermal::FastThermalModel> model;
  };

  thermal::LayerStack stack_;
  thermal::CharacterizationConfig config_;
  std::uint64_t stack_hash_ = 0;
  mutable std::mutex mutex_;
  std::map<std::uint64_t, Entry> entries_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> characterize_ns_{0};
};

/// Warm-start family of a scenario: the coordinates that must match for a
/// checkpoint's policy net to be loadable AND for its weights to plausibly
/// transfer — problem shape (family topology + die count, or the
/// builtin/inline instance name) and the policy grid. Filesystem-safe
/// ([A-Za-z0-9_.-] only).
std::string scenario_family_key(const systems::Scenario& scenario);

struct WarmStartCacheStats {
  std::uint64_t hits = 0;    ///< lookups that found a loadable checkpoint
  std::uint64_t misses = 0;  ///< no checkpoint yet (or load failed)
  std::uint64_t stores = 0;  ///< checkpoints published after RL legs
};

/// Per-family checkpoint store backed by `dir` (created on first store).
/// Disabled when constructed with an empty dir: lookups miss, stores no-op.
class WarmStartCache {
 public:
  explicit WarmStartCache(std::string dir);

  bool enabled() const { return !dir_.empty(); }

  /// Path of the family's checkpoint when one exists on disk.
  std::optional<std::string> lookup(const std::string& family_key);

  /// Path a freshly trained family checkpoint should be saved to (the saver
  /// must write atomically; rl::TrainingSession::save_checkpoint does).
  /// Empty when the cache is disabled.
  std::string store_path(const std::string& family_key);

  /// Bookkeeping hooks: the runner reports what actually happened (a lookup
  /// hit that fails checkpoint validation is a miss, not a hit).
  void note_hit() { ++hits_; }
  void note_miss() { ++misses_; }
  void note_store() { ++stores_; }

  WarmStartCacheStats stats() const;

 private:
  std::string dir_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> stores_{0};
};

}  // namespace rlplan::serve
