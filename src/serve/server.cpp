#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "obs/metrics.h"
#include "util/log.h"

namespace rlplan::serve {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// Writes the whole buffer, retrying partial writes. MSG_NOSIGNAL: a peer
/// that hung up must surface as an error return, not SIGPIPE.
bool send_all(int fd, const char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t sent = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(sent);
  }
  return true;
}

bool send_line(int fd, const std::string& line) {
  std::string framed = line;
  framed.push_back('\n');
  return send_all(fd, framed.data(), framed.size());
}

}  // namespace

JsonlServer::JsonlServer(ServeEngine& engine, ServerConfig config)
    : engine_(engine), config_(std::move(config)) {}

JsonlServer::~JsonlServer() { stop(); }

void JsonlServer::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("bad bind address: " + config_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    throw_errno("bind " + config_.host + ":" + std::to_string(config_.port));
  }
  if (::listen(listen_fd_, 64) < 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    throw_errno("listen");
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) <
      0) {
    throw_errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);
  RLPLAN_INFO << "serve: listening on " << config_.host << ":" << port_;

  accept_thread_ = std::thread([this] { accept_loop(); });
}

void JsonlServer::stop() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  if (listen_fd_ >= 0) {
    // shutdown() wakes the blocked accept() (EINVAL on Linux); the fd stays
    // open until the accept thread joins so its number cannot be recycled
    // under a still-running accept() call.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  {
    const std::lock_guard<std::mutex> lock(conn_mutex_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Connection threads are only ever joined here: finished ones join
  // instantly, live ones were just woken by the shutdown() above. (Thread
  // objects accumulate until stop() — fine for a daemon whose connection
  // count is client-scale, and it keeps every join on one path.)
  std::vector<std::thread> threads;
  {
    const std::lock_guard<std::mutex> lock(conn_mutex_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

void JsonlServer::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // stop() shut the listen socket down (or a transient accept failure
      // raced with teardown) — either way, no more connections.
      if (stopping_.load(std::memory_order_relaxed)) return;
      if (errno == ECONNABORTED) continue;
      RLPLAN_WARN << "serve: accept failed: " << std::strerror(errno);
      return;
    }
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      return;
    }
    connections_served_.fetch_add(1, std::memory_order_relaxed);
    RLPLAN_COUNTER_INC("serve.connections");
    const std::lock_guard<std::mutex> lock(conn_mutex_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { connection_loop(fd); });
  }
}

void JsonlServer::connection_loop(int fd) {
  RequestHandler handler(engine_);
  const auto sink = [fd](const std::string& line) { send_line(fd, line); };

  std::string buffer;
  char chunk[4096];
  bool keep_alive = true;
  bool overflowed = false;
  while (keep_alive && !overflowed) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // peer hung up, or stop() shut us down
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.size() > kMaxLineBytes) {
        send_line(fd, "{\"ok\":false,\"error\":\"request line exceeds " +
                          std::to_string(kMaxLineBytes) + " bytes\"}");
        overflowed = true;
        break;
      }
      if (line.empty()) continue;  // blank keep-alive lines are fine
      if (!handler.handle_line(line, sink)) {
        keep_alive = false;
        break;
      }
    }
    buffer.erase(0, start);
    if (buffer.size() > kMaxLineBytes) {
      // An unterminated line already past the cap: reject before buffering
      // more — this is the OOM guard, not a formality.
      send_line(fd, "{\"ok\":false,\"error\":\"request line exceeds " +
                        std::to_string(kMaxLineBytes) + " bytes\"}");
      overflowed = true;
    }
  }

  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
  const std::lock_guard<std::mutex> lock(conn_mutex_);
  conn_fds_.erase(std::remove(conn_fds_.begin(), conn_fds_.end(), fd),
                  conn_fds_.end());
}

}  // namespace rlplan::serve
