// Vectorized floorplanning environment: N independent FloorplanEnv replicas.
//
// Each replica owns (a) a private clone of the thermal evaluator — so the
// episode-end reward evaluation, the expensive part of a step, can run on any
// worker thread with zero synchronization, and incremental evaluators
// (thermal/incremental.h) keep fully independent per-replica coupling caches
// fed by each env's notify_place stream — and (b) a private action-sampling
// RNG whose seed is derived deterministically from the VecEnv seed and the
// replica index. Because every replica's state is fully self-contained,
// trajectories are bit-identical to running the same N environments
// sequentially with the same derived seeds, for ANY num_threads setting
// (tests/vec_env_test.cpp asserts exactly this).
//
// The system, reward calculator, assigner, and env config are shared by value
// or const reference across replicas; only the evaluator and RNG are
// per-replica mutable state.
#pragma once

#include <cstdint>
#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "bump/assigner.h"
#include "core/chiplet.h"
#include "core/reward.h"
#include "rl/env.h"
#include "thermal/evaluator.h"
#include "util/rng.h"

namespace rlplan::parallel {

class ThreadPool;

class VecEnv {
 public:
  /// Sanity cap on num_envs (each replica owns an evaluator clone; far more
  /// replicas than cores is never useful and usually signals an integer
  /// conversion bug at the call site).
  static constexpr std::size_t kMaxEnvs = 4096;

  /// Builds `num_envs` replicas over `system`. `prototype` is cloned once per
  /// replica (it is not retained); `system` must outlive the VecEnv. Throws
  /// std::invalid_argument when num_envs == 0 or the prototype evaluator
  /// does not support cloning.
  VecEnv(const ChipletSystem& system,
         const thermal::ThermalEvaluator& prototype,
         RewardCalculator reward_calc, bump::BumpAssigner assigner,
         rl::EnvConfig env_config, std::size_t num_envs, std::uint64_t seed);

  std::size_t size() const { return envs_.size(); }
  std::uint64_t seed() const { return seed_; }

  rl::FloorplanEnv& env(std::size_t i) { return *envs_.at(i); }
  const rl::FloorplanEnv& env(std::size_t i) const { return *envs_.at(i); }

  /// Per-replica action-sampling stream (seeded with derive_seed(seed, i)).
  Rng& rng(std::size_t i) { return rngs_.at(i); }
  const Rng& rng(std::size_t i) const { return rngs_.at(i); }

  thermal::ThermalEvaluator& evaluator(std::size_t i) {
    return *evaluators_.at(i);
  }

  /// Sum of thermal evaluations across all replica evaluators.
  long total_evaluations() const;

  /// Scores complete candidate floorplans with the replicas' shared reward
  /// pipeline — microbump wirelength, reward weights — and ONE batched
  /// thermal call (replica 0's evaluator; the SoA batch kernel for
  /// fast-model evaluators, optionally fanned over `pool`). Per-candidate
  /// metrics equal env(i).evaluate_floorplan(fp) for any replica i. Throws
  /// std::logic_error on an incomplete floorplan.
  std::vector<rl::EpisodeMetrics> score_floorplans(
      std::span<const Floorplan> floorplans, ThreadPool* pool = nullptr);

  /// Terminal metrics of every replica's CURRENT floorplan through one
  /// batched thermal call — the batched analogue of reading
  /// env(i).last_metrics() after each episode. Replicas whose floorplan is
  /// incomplete (mid-episode or dead-ended) get a default-constructed entry
  /// (valid == false).
  std::vector<rl::EpisodeMetrics> score_replicas(ThreadPool* pool = nullptr);

  /// Seed of replica i: the (i+1)-th output of a SplitMix64 stream over the
  /// base seed. Stable across releases — the determinism tests and any
  /// recorded trajectories depend on it.
  static std::uint64_t derive_seed(std::uint64_t base, std::size_t index);

 private:
  std::uint64_t seed_;
  const ChipletSystem* system_ = nullptr;
  RewardCalculator reward_calc_;
  bump::BumpAssigner assigner_;
  std::vector<std::unique_ptr<thermal::ThermalEvaluator>> evaluators_;
  std::vector<std::unique_ptr<rl::FloorplanEnv>> envs_;
  std::vector<Rng> rngs_;
};

}  // namespace rlplan::parallel
