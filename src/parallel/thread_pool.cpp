#include "parallel/thread_pool.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"
#include "robust/fault.h"

namespace rlplan::parallel {

namespace {
std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads <= 1) return;  // inline mode
  workers_.reserve(threads - 1);  // the caller thread is the remaining lane
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) w.join();
}

std::size_t ThreadPool::hardware_threads() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

void ThreadPool::run_indices() {
  const std::uint64_t t0 = now_ns();
  std::uint64_t executed = 0;
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n_) break;
    (*fn_)(i);
    ++executed;
  }
  busy_ns_.fetch_add(now_ns() - t0, std::memory_order_relaxed);
  tasks_.fetch_add(executed, std::memory_order_relaxed);
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      const std::uint64_t wait_t0 = now_ns();
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation;
      });
      idle_ns_.fetch_add(now_ns() - wait_t0, std::memory_order_relaxed);
      if (stop_) return;
      seen_generation = generation_;
    }
    run_indices();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--remaining_workers_ == 0) done_.notify_one();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  calls_.fetch_add(1, std::memory_order_relaxed);
  std::size_t peak = peak_depth_.load(std::memory_order_relaxed);
  while (n > peak && !peak_depth_.compare_exchange_weak(
                         peak, n, std::memory_order_relaxed)) {
  }
  RLPLAN_GAUGE_SET("pool.queue_depth", n);
  RLPLAN_COUNTER_ADD("pool.tasks", n);
  const std::uint64_t call_t0 = now_ns();
  // Chaos site "pool_dispatch": a worker-dispatch fault degrades to inline
  // execution on the caller. Results are bit-identical (fn(i) writes only
  // slot i), so this is the pool's graceful-degradation path.
  const bool dispatch_fault = robust::fault_point("pool_dispatch");
  if (dispatch_fault) RLPLAN_COUNTER_INC("pool.dispatch_degraded");
  if (workers_.empty() || n == 1 || dispatch_fault) {
    const std::uint64_t t0 = call_t0;
    for (std::size_t i = 0; i < n; ++i) fn(i);
    const std::uint64_t dt = now_ns() - t0;
    busy_ns_.fetch_add(dt, std::memory_order_relaxed);
    tasks_.fetch_add(n, std::memory_order_relaxed);
    RLPLAN_HISTOGRAM_OBSERVE("pool.parallel_for_us",
                             static_cast<double>(dt) / 1e3);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fn_ = &fn;
    n_ = n;
    next_.store(0, std::memory_order_relaxed);
    remaining_workers_ = workers_.size();
    ++generation_;
  }
  wake_.notify_all();
  run_indices();  // the caller is a lane too
  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock, [&] { return remaining_workers_ == 0; });
  fn_ = nullptr;
  RLPLAN_HISTOGRAM_OBSERVE("pool.parallel_for_us",
                           static_cast<double>(now_ns() - call_t0) / 1e3);
}

ThreadPoolStats ThreadPool::stats() const {
  ThreadPoolStats s;
  s.parallel_for_calls = calls_.load(std::memory_order_relaxed);
  s.tasks_executed = tasks_.load(std::memory_order_relaxed);
  s.peak_queue_depth = peak_depth_.load(std::memory_order_relaxed);
  s.busy_seconds =
      static_cast<double>(busy_ns_.load(std::memory_order_relaxed)) / 1e9;
  s.idle_seconds =
      static_cast<double>(idle_ns_.load(std::memory_order_relaxed)) / 1e9;
  return s;
}

}  // namespace rlplan::parallel
