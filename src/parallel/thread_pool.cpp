#include "parallel/thread_pool.h"

#include <algorithm>

namespace rlplan::parallel {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads <= 1) return;  // inline mode
  workers_.reserve(threads - 1);  // the caller thread is the remaining lane
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) w.join();
}

std::size_t ThreadPool::hardware_threads() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

void ThreadPool::run_indices() {
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n_) return;
    (*fn_)(i);
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] {
        return stop_ || generation_ != seen_generation;
      });
      if (stop_) return;
      seen_generation = generation_;
    }
    run_indices();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--remaining_workers_ == 0) done_.notify_one();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fn_ = &fn;
    n_ = n;
    next_.store(0, std::memory_order_relaxed);
    remaining_workers_ = workers_.size();
    ++generation_;
  }
  wake_.notify_all();
  run_indices();  // the caller is a lane too
  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock, [&] { return remaining_workers_ == 0; });
  fn_ = nullptr;
}

}  // namespace rlplan::parallel
