// Fixed-size worker pool with a lock-cheap parallel_for.
//
// Design goals, in order: determinism, low per-call overhead, simplicity.
// There is no work-stealing deque and no per-task future allocation — the
// only primitive is parallel_for(n, fn), which wakes the workers once per
// call and then distributes indices through a single atomic counter. Workers
// take the mutex only to sleep/wake between calls; inside a call the hot
// path is one fetch_add per index.
//
// parallel_for(0-based index) may run fn concurrently from multiple threads;
// fn must only touch per-index state. Results are independent of the thread
// schedule as long as fn(i) writes only to slot i — this is what makes
// VecEnv rollouts bit-reproducible across num_threads settings.
//
// A pool of size 0 or 1 runs everything inline on the caller thread (no
// worker threads are spawned), so `num_threads = 1` is exactly the serial
// code path.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rlplan::parallel {

/// Lifetime totals for one pool; see ThreadPool::stats(). Counters are exact
/// (every index is executed exactly once, so `tasks_executed` across a burst
/// of parallel_for(n) calls is the sum of the n's). busy/idle seconds
/// overlap across lanes: with W workers plus the caller, a fully utilized
/// pool accrues ~(W+1)× wall time of busy_seconds.
struct ThreadPoolStats {
  std::uint64_t parallel_for_calls = 0;
  std::uint64_t tasks_executed = 0;
  std::size_t peak_queue_depth = 0;  ///< largest single-call n
  double busy_seconds = 0.0;  ///< summed time lanes spent inside fn loops
  double idle_seconds = 0.0;  ///< summed time workers slept between calls
};

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 or 1 means "inline" (no threads).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker count (0 = inline execution).
  std::size_t size() const { return workers_.size(); }

  /// Calls fn(i) for every i in [0, n), possibly concurrently. Blocks until
  /// all n calls have returned. The caller thread participates, so the pool
  /// contributes size()+1 lanes of execution. Exceptions thrown by fn
  /// terminate (fn is expected to be noexcept in spirit; environment errors
  /// are programming errors on this path).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// std::thread::hardware_concurrency with a floor of 1.
  static std::size_t hardware_threads();

  /// Snapshot of lifetime totals (safe to call concurrently with
  /// parallel_for; counters may lag an in-flight call). Also feeds the obs
  /// gauges ("pool.queue_depth", "pool.tasks", "pool.parallel_for_us") when
  /// metrics are enabled.
  ThreadPoolStats stats() const;

 private:
  void worker_loop();
  void run_indices();

  std::vector<std::thread> workers_;

  // Lifetime accounting (relaxed atomics; single u64 adds per call/lane).
  std::atomic<std::uint64_t> calls_{0};
  std::atomic<std::uint64_t> tasks_{0};
  std::atomic<std::size_t> peak_depth_{0};
  std::atomic<std::uint64_t> busy_ns_{0};
  std::atomic<std::uint64_t> idle_ns_{0};

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;

  // State of the in-flight parallel_for (guarded by mutex_ for the
  // sleep/wake transitions; next_ is the lock-free hot path).
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t n_ = 0;
  std::atomic<std::size_t> next_{0};
  std::size_t remaining_workers_ = 0;  ///< workers still inside run_indices()
  std::uint64_t generation_ = 0;       ///< bumped per parallel_for call
  bool stop_ = false;
};

}  // namespace rlplan::parallel
