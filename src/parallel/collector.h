// Parallel rollout collection: batched policy forwards over a VecEnv.
//
// One collect() call gathers at least `min_episodes` complete placement
// episodes under the current policy:
//
//   while any replica is live:
//     1. gather the [B, C, G, G] observations of the B live replicas
//     2. ONE batched PolicyValueNet forward (batch-parallelized over rows
//        through the thread pool — see nn::set_batch_parallel_for)
//     3. per replica: masked-categorical sample with the replica's own RNG
//     4. step all B replicas concurrently via ThreadPool::parallel_for —
//        this parallelizes the episode-end reward evaluation (microbump
//        assignment + thermal model), the most expensive part of a step
//     5. finished replicas flush their episode into the shared buffer
//        (episode-aligned: an episode's transitions are contiguous and
//        terminated by episode_end, exactly what GAE expects), then reset
//        for another episode or go idle once the quota is met
//
// Everything outside steps 2/4 runs on the caller thread in replica order,
// so the produced rollout is a deterministic function of (policy weights,
// VecEnv seed, num_envs) — independent of num_threads and thread timing.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "nn/layers.h"
#include "parallel/thread_pool.h"
#include "parallel/vec_env.h"
#include "rl/env.h"
#include "rl/policy_net.h"
#include "rl/rollout.h"

namespace rlplan::parallel {

/// Aggregate statistics of one collect() call.
struct CollectorStats {
  std::size_t steps = 0;      ///< transitions appended to the buffer
  std::size_t episodes = 0;   ///< completed episodes (>= min_episodes)
  std::size_t dead_ends = 0;  ///< episodes that ended with no feasible action
  double reward_sum = 0.0;    ///< sum of terminal extrinsic rewards
  double reward_best = 0.0;   ///< best terminal reward (valid iff episodes>0)
};

class ParallelRolloutCollector {
 public:
  /// Invoked on the caller thread, in deterministic replica order, right
  /// after replica `env_index` finishes an episode and before it resets;
  /// `venv.env(env_index)` still holds the terminal floorplan/metrics.
  using EpisodeCallback =
      std::function<void(std::size_t env_index, const rl::StepOutcome&)>;

  /// `venv` and `pool` must outlive the collector.
  ParallelRolloutCollector(VecEnv& venv, ThreadPool& pool);
  ~ParallelRolloutCollector();

  ParallelRolloutCollector(const ParallelRolloutCollector&) = delete;
  ParallelRolloutCollector& operator=(const ParallelRolloutCollector&) =
      delete;

  VecEnv& venv() { return *venv_; }
  ThreadPool& pool() { return *pool_; }

  /// Collects exactly min_episodes complete episodes (at most venv().size()
  /// run concurrently; replicas go idle once the quota of started episodes
  /// is met) and appends their transitions to `out`.
  CollectorStats collect(rl::PolicyValueNet& net, std::size_t min_episodes,
                         rl::RolloutBuffer& out,
                         const EpisodeCallback& on_episode_end = {});

 private:
  VecEnv* venv_;
  ThreadPool* pool_;
  /// Batch executor that was installed before this collector took over;
  /// restored by the destructor.
  nn::BatchParallelFor previous_executor_;

  // Per-replica scratch, reused across collect() calls.
  std::vector<std::vector<rl::Transition>> pending_;
  std::vector<std::uint8_t> live_;
  std::vector<std::size_t> live_index_;
  std::vector<std::size_t> actions_;
  std::vector<rl::StepOutcome> outcomes_;
};

}  // namespace rlplan::parallel
