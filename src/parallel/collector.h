// Rollout collection: batched policy forwards over environment replicas.
//
// collect_episodes() is the ONE experience-collection pipeline of the
// training stack — the serial single-environment loop is simply the
// one-slot, no-pool case. One call gathers at least `min_episodes` complete
// placement episodes under the current policy:
//
//   while any slot is live:
//     1. gather the [B, C, G, G] observations of the B live slots
//     2. ONE batched PolicyValueNet forward (batch-parallelized over rows
//        through the thread pool when one is installed — see
//        nn::set_batch_parallel_for)
//     3. per slot: masked-categorical sample with the slot's own RNG stream
//     4. step all B slots — concurrently via ThreadPool::parallel_for when a
//        pool is given (parallelizing the episode-end reward evaluation:
//        microbump assignment + thermal model, the most expensive part of a
//        step), serially on the caller thread otherwise
//     5. finished slots flush their episode into the shared buffer
//        (episode-aligned: an episode's transitions are contiguous and
//        terminated by episode_end, exactly what GAE expects), then reset
//        for another episode or go idle once the quota is met
//
// Everything outside steps 2/4 runs on the caller thread in slot order, so
// the produced rollout is a deterministic function of (policy weights, slot
// RNG states, slot count) — independent of the pool's thread count and of
// thread timing. With one slot the pipeline degenerates to the classic
// sample-step loop: episodes run one after another through batch-1 forwards.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "nn/layers.h"
#include "parallel/thread_pool.h"
#include "parallel/vec_env.h"
#include "rl/env.h"
#include "rl/policy_net.h"
#include "rl/rollout.h"
#include "robust/robust.h"

namespace rlplan::parallel {

/// Aggregate statistics of one collect() call.
struct CollectorStats {
  std::size_t steps = 0;      ///< transitions appended to the buffer
  std::size_t episodes = 0;   ///< completed episodes (>= min_episodes,
                              ///< unless the run was stopped early)
  std::size_t dead_ends = 0;  ///< episodes that ended with no feasible action
  double reward_sum = 0.0;    ///< sum of terminal extrinsic rewards
  double reward_best = 0.0;   ///< best terminal reward (valid iff episodes>0)
  /// kNone when the quota was met; otherwise the control stopped collection
  /// at a batch boundary — only the episodes completed by then are in the
  /// buffer (a deterministic prefix of the uncancelled run's episodes).
  robust::StopReason stop_reason = robust::StopReason::kNone;

  bool degraded() const { return stop_reason != robust::StopReason::kNone; }
};

/// One environment replica plus its private action-sampling stream.
struct EnvSlot {
  rl::FloorplanEnv* env = nullptr;
  Rng* rng = nullptr;
};

/// Invoked on the caller thread, in deterministic slot order, right after
/// slot `env_index` finishes an episode and before it resets;
/// `slots[env_index].env` still holds the terminal floorplan/metrics.
using EpisodeCallback =
    std::function<void(std::size_t env_index, const rl::StepOutcome&)>;

/// The unified collection pipeline documented above. Steps are fanned over
/// `pool` when non-null, run serially otherwise; either way the result is
/// identical. All slots must share one grid/action space. Appends the
/// collected transitions to `out` and returns the aggregate statistics.
CollectorStats collect_episodes(std::span<const EnvSlot> slots,
                                rl::PolicyValueNet& net,
                                std::size_t min_episodes,
                                rl::RolloutBuffer& out, ThreadPool* pool,
                                const EpisodeCallback& on_episode_end = {},
                                const robust::RunControl& control = {});

/// Convenience wrapper binding collect_episodes() to a VecEnv's replicas and
/// RNG streams. While alive, it also installs the pool as the nn batch
/// executor so every forward (rollout batches here, PPO minibatches in the
/// trainer) fans its batch rows out over the pool's workers.
class ParallelRolloutCollector {
 public:
  /// `venv` and `pool` must outlive the collector.
  ParallelRolloutCollector(VecEnv& venv, ThreadPool& pool);
  ~ParallelRolloutCollector();

  ParallelRolloutCollector(const ParallelRolloutCollector&) = delete;
  ParallelRolloutCollector& operator=(const ParallelRolloutCollector&) =
      delete;

  VecEnv& venv() { return *venv_; }
  ThreadPool& pool() { return *pool_; }

  /// Collects exactly min_episodes complete episodes (at most venv().size()
  /// run concurrently; replicas go idle once the quota of started episodes
  /// is met) and appends their transitions to `out`.
  CollectorStats collect(rl::PolicyValueNet& net, std::size_t min_episodes,
                         rl::RolloutBuffer& out,
                         const EpisodeCallback& on_episode_end = {},
                         const robust::RunControl& control = {});

 private:
  VecEnv* venv_;
  ThreadPool* pool_;
  /// Batch executor that was installed before this collector took over;
  /// restored by the destructor.
  nn::BatchParallelFor previous_executor_;
};

}  // namespace rlplan::parallel
