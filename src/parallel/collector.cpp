#include "parallel/collector.h"

#include <algorithm>
#include <limits>

#include "nn/layers.h"
#include "obs/metrics.h"
#include "rl/distribution.h"

namespace rlplan::parallel {

CollectorStats collect_episodes(std::span<const EnvSlot> slots,
                                rl::PolicyValueNet& net,
                                std::size_t min_episodes,
                                rl::RolloutBuffer& out, ThreadPool* pool,
                                const EpisodeCallback& on_episode_end,
                                const robust::RunControl& control) {
  CollectorStats stats;
  if (min_episodes == 0 || slots.empty()) return stats;
  const bool controlled = control.active();

  const std::size_t n = slots.size();
  const std::size_t c = rl::FloorplanEnv::kChannels;
  const std::size_t g = slots[0].env->grid();
  const std::size_t num_actions = slots[0].env->num_actions();

  // Per-slot episode-in-flight transitions plus live flags.
  std::vector<std::vector<rl::Transition>> pending(n);
  std::vector<std::uint8_t> live(n, 0);
  std::vector<std::size_t> live_index;
  std::vector<std::size_t> actions;
  std::vector<rl::StepOutcome> outcomes;

  std::size_t episodes_started = 0;
  for (std::size_t e = 0; e < n && episodes_started < min_episodes; ++e) {
    slots[e].env->reset();
    live[e] = 1;
    ++episodes_started;
  }

  double reward_best = -std::numeric_limits<double>::infinity();
  for (;;) {
    // Collection-batch granularity stop: episodes completed so far are
    // already flushed to `out`; in-flight partial episodes are dropped (the
    // buffer stays episode-aligned).
    if (controlled && control.stop_requested()) {
      stats.stop_reason = control.stop_reason();
      RLPLAN_COUNTER_INC("robust.degraded");
      break;
    }
    live_index.clear();
    for (std::size_t e = 0; e < n; ++e) {
      if (live[e]) live_index.push_back(e);
    }
    const std::size_t batch = live_index.size();
    if (batch == 0) break;

    // 1. Gather live observations into one [B, C, G, G] batch.
    nn::Tensor states({batch, c, g, g});
    const std::size_t stride = c * g * g;
    for (std::size_t j = 0; j < batch; ++j) {
      const auto obs = slots[live_index[j]].env->observation().data();
      std::copy(obs.begin(), obs.end(),
                states.data().begin() +
                    static_cast<std::ptrdiff_t>(j * stride));
    }

    // 2. One batched forward for every live slot.
    rl::PolicyValueNet::Output fwd = net.forward(states);

    // 3. Sample one masked action per slot with its own RNG stream.
    actions.resize(batch);
    outcomes.assign(batch, rl::StepOutcome{});
    for (std::size_t j = 0; j < batch; ++j) {
      const std::size_t e = live_index[j];
      rl::FloorplanEnv& env = *slots[e].env;
      const std::span<const float> logits_row(
          fwd.logits.data().data() + j * num_actions, num_actions);
      const rl::MaskedCategorical dist(logits_row, env.action_mask());
      const std::size_t action = dist.sample(*slots[e].rng);
      actions[j] = action;

      rl::Transition tr;
      tr.state = env.observation();
      tr.mask = env.action_mask();
      tr.action = action;
      tr.log_prob = dist.log_prob(action);
      tr.value = fwd.value.at(j, 0);
      pending[e].push_back(std::move(tr));
    }

    // 4. Step every live slot. Each slot only touches its own env (+ cloned
    //    evaluator), so pooled stepping is schedule-independent.
    if (pool != nullptr) {
      pool->parallel_for(batch, [&](std::size_t j) {
        outcomes[j] = slots[live_index[j]].env->step(actions[j]);
      });
    } else {
      for (std::size_t j = 0; j < batch; ++j) {
        outcomes[j] = slots[live_index[j]].env->step(actions[j]);
      }
    }

    // 5. Record outcomes and recycle finished slots, in slot order.
    for (std::size_t j = 0; j < batch; ++j) {
      const std::size_t e = live_index[j];
      const rl::StepOutcome& outcome = outcomes[j];
      rl::Transition& tr = pending[e].back();
      tr.reward_ext = static_cast<float>(outcome.reward);
      tr.episode_end = outcome.done;
      ++stats.steps;
      if (!outcome.done) continue;

      ++stats.episodes;
      if (outcome.dead_end) ++stats.dead_ends;
      stats.reward_sum += outcome.reward;
      reward_best = std::max(reward_best, outcome.reward);
      if (on_episode_end) on_episode_end(e, outcome);

      for (auto& t : pending[e]) out.push(std::move(t));
      pending[e].clear();

      if (episodes_started < min_episodes) {
        slots[e].env->reset();
        ++episodes_started;
      } else {
        live[e] = 0;
      }
    }
  }
  stats.reward_best = stats.episodes > 0 ? reward_best : 0.0;
  return stats;
}

ParallelRolloutCollector::ParallelRolloutCollector(VecEnv& venv,
                                                   ThreadPool& pool)
    : venv_(&venv), pool_(&pool) {
  // While a collector is alive, every nn forward (rollout batches here, PPO
  // minibatches in the trainer) fans its batch rows out over the pool.
  // Row-wise arithmetic is untouched, so results stay bit-identical. The
  // previous executor is restored on destruction, so nested collectors are
  // safe as long as their lifetimes are LIFO.
  previous_executor_ = nn::exchange_batch_parallel_for(
      [p = pool_](std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
        p->parallel_for(count, fn);
      });
}

ParallelRolloutCollector::~ParallelRolloutCollector() {
  nn::set_batch_parallel_for(std::move(previous_executor_));
}

CollectorStats ParallelRolloutCollector::collect(
    rl::PolicyValueNet& net, std::size_t min_episodes, rl::RolloutBuffer& out,
    const EpisodeCallback& on_episode_end, const robust::RunControl& control) {
  std::vector<EnvSlot> slots;
  slots.reserve(venv_->size());
  for (std::size_t e = 0; e < venv_->size(); ++e) {
    slots.push_back({&venv_->env(e), &venv_->rng(e)});
  }
  return collect_episodes(slots, net, min_episodes, out, pool_,
                          on_episode_end, control);
}

}  // namespace rlplan::parallel
