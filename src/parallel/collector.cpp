#include "parallel/collector.h"

#include <algorithm>
#include <limits>

#include "nn/layers.h"
#include "rl/distribution.h"

namespace rlplan::parallel {

ParallelRolloutCollector::ParallelRolloutCollector(VecEnv& venv,
                                                   ThreadPool& pool)
    : venv_(&venv), pool_(&pool) {
  const std::size_t n = venv.size();
  pending_.resize(n);
  live_.assign(n, 0);
  // While a collector is alive, every nn forward (rollout batches here, PPO
  // minibatches in the trainer) fans its batch rows out over the pool.
  // Row-wise arithmetic is untouched, so results stay bit-identical. The
  // previous executor is restored on destruction, so nested collectors are
  // safe as long as their lifetimes are LIFO.
  previous_executor_ = nn::exchange_batch_parallel_for(
      [p = pool_](std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
        p->parallel_for(count, fn);
      });
}

ParallelRolloutCollector::~ParallelRolloutCollector() {
  nn::set_batch_parallel_for(std::move(previous_executor_));
}

CollectorStats ParallelRolloutCollector::collect(
    rl::PolicyValueNet& net, std::size_t min_episodes, rl::RolloutBuffer& out,
    const EpisodeCallback& on_episode_end) {
  CollectorStats stats;
  if (min_episodes == 0) return stats;

  const std::size_t n = venv_->size();
  const std::size_t c = rl::FloorplanEnv::kChannels;
  const std::size_t g = venv_->env(0).grid();
  const std::size_t num_actions = venv_->env(0).num_actions();

  std::fill(live_.begin(), live_.end(), 0);
  for (auto& p : pending_) p.clear();

  std::size_t episodes_started = 0;
  for (std::size_t e = 0; e < n && episodes_started < min_episodes; ++e) {
    venv_->env(e).reset();
    live_[e] = 1;
    ++episodes_started;
  }

  double reward_best = -std::numeric_limits<double>::infinity();
  for (;;) {
    live_index_.clear();
    for (std::size_t e = 0; e < n; ++e) {
      if (live_[e]) live_index_.push_back(e);
    }
    const std::size_t batch = live_index_.size();
    if (batch == 0) break;

    // 1. Gather live observations into one [B, C, G, G] batch.
    nn::Tensor states({batch, c, g, g});
    const std::size_t stride = c * g * g;
    for (std::size_t j = 0; j < batch; ++j) {
      const auto obs = venv_->env(live_index_[j]).observation().data();
      std::copy(obs.begin(), obs.end(),
                states.data().begin() + static_cast<std::ptrdiff_t>(j * stride));
    }

    // 2. One batched forward for every live replica.
    rl::PolicyValueNet::Output fwd = net.forward(states);

    // 3. Sample one masked action per replica with its own RNG stream.
    actions_.resize(batch);
    outcomes_.assign(batch, rl::StepOutcome{});
    for (std::size_t j = 0; j < batch; ++j) {
      const std::size_t e = live_index_[j];
      rl::FloorplanEnv& env = venv_->env(e);
      const std::span<const float> logits_row(
          fwd.logits.data().data() + j * num_actions, num_actions);
      const rl::MaskedCategorical dist(logits_row, env.action_mask());
      const std::size_t action = dist.sample(venv_->rng(e));
      actions_[j] = action;

      rl::Transition tr;
      tr.state = env.observation();
      tr.mask = env.action_mask();
      tr.action = action;
      tr.log_prob = dist.log_prob(action);
      tr.value = fwd.value.at(j, 0);
      pending_[e].push_back(std::move(tr));
    }

    // 4. Step every live replica concurrently. Each replica only touches its
    //    own env + cloned evaluator, so the result is schedule-independent.
    pool_->parallel_for(batch, [&](std::size_t j) {
      outcomes_[j] = venv_->env(live_index_[j]).step(actions_[j]);
    });

    // 5. Record outcomes and recycle finished replicas, in replica order.
    for (std::size_t j = 0; j < batch; ++j) {
      const std::size_t e = live_index_[j];
      const rl::StepOutcome& outcome = outcomes_[j];
      rl::Transition& tr = pending_[e].back();
      tr.reward_ext = static_cast<float>(outcome.reward);
      tr.episode_end = outcome.done;
      ++stats.steps;
      if (!outcome.done) continue;

      ++stats.episodes;
      if (outcome.dead_end) ++stats.dead_ends;
      stats.reward_sum += outcome.reward;
      reward_best = std::max(reward_best, outcome.reward);
      if (on_episode_end) on_episode_end(e, outcome);

      for (auto& t : pending_[e]) out.push(std::move(t));
      pending_[e].clear();

      if (episodes_started < min_episodes) {
        venv_->env(e).reset();
        ++episodes_started;
      } else {
        live_[e] = 0;
      }
    }
  }
  stats.reward_best = stats.episodes > 0 ? reward_best : 0.0;
  return stats;
}

}  // namespace rlplan::parallel
