#include "parallel/vec_env.h"

#include <stdexcept>

namespace rlplan::parallel {

VecEnv::VecEnv(const ChipletSystem& system,
               const thermal::ThermalEvaluator& prototype,
               RewardCalculator reward_calc, bump::BumpAssigner assigner,
               rl::EnvConfig env_config, std::size_t num_envs,
               std::uint64_t seed)
    : seed_(seed) {
  // The upper bound catches size_t underflow from negative inputs before it
  // reaches vector::reserve as an opaque length_error.
  if (num_envs == 0 || num_envs > kMaxEnvs) {
    throw std::invalid_argument("VecEnv: num_envs must be in [1, " +
                                std::to_string(kMaxEnvs) + "]");
  }
  evaluators_.reserve(num_envs);
  envs_.reserve(num_envs);
  rngs_.reserve(num_envs);
  for (std::size_t i = 0; i < num_envs; ++i) {
    auto evaluator = prototype.clone();
    if (!evaluator) {
      throw std::invalid_argument("VecEnv: evaluator '" + prototype.name() +
                                  "' does not support clone()");
    }
    evaluators_.push_back(std::move(evaluator));
    envs_.push_back(std::make_unique<rl::FloorplanEnv>(
        system, *evaluators_.back(), reward_calc, assigner, env_config));
    rngs_.emplace_back(derive_seed(seed, i));
  }
}

long VecEnv::total_evaluations() const {
  long total = 0;
  for (const auto& e : evaluators_) total += e->num_evaluations();
  return total;
}

std::uint64_t VecEnv::derive_seed(std::uint64_t base, std::size_t index) {
  SplitMix64 sm(base);
  std::uint64_t s = 0;
  for (std::size_t i = 0; i <= index; ++i) s = sm.next();
  return s;
}

}  // namespace rlplan::parallel
