#include "parallel/vec_env.h"

#include <stdexcept>

namespace rlplan::parallel {

VecEnv::VecEnv(const ChipletSystem& system,
               const thermal::ThermalEvaluator& prototype,
               RewardCalculator reward_calc, bump::BumpAssigner assigner,
               rl::EnvConfig env_config, std::size_t num_envs,
               std::uint64_t seed)
    : seed_(seed),
      system_(&system),
      reward_calc_(reward_calc),
      assigner_(assigner) {
  // The upper bound catches size_t underflow from negative inputs before it
  // reaches vector::reserve as an opaque length_error.
  if (num_envs == 0 || num_envs > kMaxEnvs) {
    throw std::invalid_argument("VecEnv: num_envs must be in [1, " +
                                std::to_string(kMaxEnvs) + "]");
  }
  evaluators_.reserve(num_envs);
  envs_.reserve(num_envs);
  rngs_.reserve(num_envs);
  for (std::size_t i = 0; i < num_envs; ++i) {
    auto evaluator = prototype.clone();
    if (!evaluator) {
      throw std::invalid_argument("VecEnv: evaluator '" + prototype.name() +
                                  "' does not support clone()");
    }
    evaluators_.push_back(std::move(evaluator));
    envs_.push_back(std::make_unique<rl::FloorplanEnv>(
        system, *evaluators_.back(), reward_calc, assigner, env_config));
    rngs_.emplace_back(derive_seed(seed, i));
  }
}

long VecEnv::total_evaluations() const {
  long total = 0;
  for (const auto& e : evaluators_) total += e->num_evaluations();
  return total;
}

std::vector<rl::EpisodeMetrics> VecEnv::score_floorplans(
    std::span<const Floorplan> floorplans, ThreadPool* pool) {
  for (const Floorplan& fp : floorplans) {
    if (!fp.is_complete()) {
      throw std::logic_error("VecEnv::score_floorplans: incomplete floorplan");
    }
  }
  const auto temps =
      evaluators_.front()->max_temperature_batch(*system_, floorplans, pool);
  std::vector<rl::EpisodeMetrics> metrics(floorplans.size());
  for (std::size_t i = 0; i < floorplans.size(); ++i) {
    rl::EpisodeMetrics& m = metrics[i];
    m.valid = true;
    m.wirelength_mm = assigner_.assign(*system_, floorplans[i]).total_mm;
    m.temperature_c = temps[i];
    m.reward = reward_calc_.reward(m.wirelength_mm, m.temperature_c);
  }
  return metrics;
}

std::vector<rl::EpisodeMetrics> VecEnv::score_replicas(ThreadPool* pool) {
  // Gather the complete floorplans, batch-score them once, then scatter the
  // metrics back to their replica slots.
  std::vector<Floorplan> complete;
  std::vector<std::size_t> owner;
  complete.reserve(envs_.size());
  owner.reserve(envs_.size());
  for (std::size_t i = 0; i < envs_.size(); ++i) {
    if (envs_[i]->floorplan().is_complete()) {
      complete.push_back(envs_[i]->floorplan());
      owner.push_back(i);
    }
  }
  std::vector<rl::EpisodeMetrics> metrics(envs_.size());
  if (complete.empty()) return metrics;
  const auto scored =
      score_floorplans(std::span<const Floorplan>(complete), pool);
  for (std::size_t k = 0; k < owner.size(); ++k) {
    metrics[owner[k]] = scored[k];
  }
  return metrics;
}

std::uint64_t VecEnv::derive_seed(std::uint64_t base, std::size_t index) {
  return derive_substream_seed(base, index);
}

}  // namespace rlplan::parallel
