#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace rlplan {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nt = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  mean_ = (na * mean_ + nb * other.mean_) / nt;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

ErrorMetrics ErrorMetrics::compute(std::span<const double> pred,
                                   std::span<const double> ref,
                                   double mape_eps) {
  assert(pred.size() == ref.size());
  ErrorMetrics m;
  m.n = pred.size();
  if (m.n == 0) return m;

  double se = 0.0;
  double ae = 0.0;
  double ape = 0.0;
  std::size_t ape_n = 0;
  for (std::size_t i = 0; i < m.n; ++i) {
    const double e = pred[i] - ref[i];
    se += e * e;
    ae += std::abs(e);
    if (std::abs(ref[i]) > mape_eps) {
      ape += std::abs(e / ref[i]);
      ++ape_n;
    }
  }
  const auto n = static_cast<double>(m.n);
  m.mse = se / n;
  m.rmse = std::sqrt(m.mse);
  m.mae = ae / n;
  m.mape = ape_n > 0 ? 100.0 * ape / static_cast<double>(ape_n) : 0.0;
  return m;
}

double quantile(std::span<const double> values, double q) {
  if (values.empty()) {
    throw std::invalid_argument("quantile: empty sample");
  }
  if (!(q >= 0.0 && q <= 1.0)) {
    throw std::invalid_argument("quantile: q must be in [0, 1]");
  }
  std::vector<double> sorted(values.begin(), values.end());
  for (double v : sorted) {
    if (std::isnan(v)) {
      throw std::invalid_argument("quantile: NaN sample");
    }
  }
  std::sort(sorted.begin(), sorted.end());
  const double h = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(h));
  const auto hi = static_cast<std::size_t>(std::ceil(h));
  const double frac = h - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

Summary summarize(std::span<const double> values) {
  Summary s;
  s.p50 = quantile(values, 0.50);  // validates input (empty / NaN) first
  s.p90 = quantile(values, 0.90);
  s.p99 = quantile(values, 0.99);
  RunningStats rs;
  for (double v : values) rs.add(v);
  s.n = rs.count();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = rs.min();
  s.max = rs.max();
  return s;
}

double histogram_quantile(std::span<const double> upper_bounds,
                          std::span<const std::uint64_t> counts, double q) {
  if (!(q >= 0.0 && q <= 1.0)) {
    throw std::invalid_argument("histogram_quantile: q must be in [0, 1]");
  }
  if (upper_bounds.empty() || counts.size() != upper_bounds.size() + 1) {
    throw std::invalid_argument(
        "histogram_quantile: counts must have upper_bounds.size() + 1 "
        "entries");
  }
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;

  const double rank = q * static_cast<double>(total);
  double cum = 0.0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    const auto in_bucket = static_cast<double>(counts[b]);
    if (cum + in_bucket < rank && b + 1 < counts.size()) {
      cum += in_bucket;
      continue;
    }
    if (b == upper_bounds.size()) return upper_bounds.back();  // overflow
    const double lo = b == 0 ? std::min(0.0, upper_bounds[0]) :
                               upper_bounds[b - 1];
    const double hi = upper_bounds[b];
    if (in_bucket == 0.0) return lo;
    return lo + (hi - lo) * std::clamp((rank - cum) / in_bucket, 0.0, 1.0);
  }
  return upper_bounds.back();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(hi > lo);
  assert(bins > 0);
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(
      std::floor(t * static_cast<double>(counts_.size())));
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_low(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_high(std::size_t i) const { return bin_low(i + 1); }

}  // namespace rlplan
