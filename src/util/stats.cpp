#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace rlplan {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nt = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  mean_ = (na * mean_ + nb * other.mean_) / nt;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

ErrorMetrics ErrorMetrics::compute(std::span<const double> pred,
                                   std::span<const double> ref,
                                   double mape_eps) {
  assert(pred.size() == ref.size());
  ErrorMetrics m;
  m.n = pred.size();
  if (m.n == 0) return m;

  double se = 0.0;
  double ae = 0.0;
  double ape = 0.0;
  std::size_t ape_n = 0;
  for (std::size_t i = 0; i < m.n; ++i) {
    const double e = pred[i] - ref[i];
    se += e * e;
    ae += std::abs(e);
    if (std::abs(ref[i]) > mape_eps) {
      ape += std::abs(e / ref[i]);
      ++ape_n;
    }
  }
  const auto n = static_cast<double>(m.n);
  m.mse = se / n;
  m.rmse = std::sqrt(m.mse);
  m.mae = ae / n;
  m.mape = ape_n > 0 ? 100.0 * ape / static_cast<double>(ape_n) : 0.0;
  return m;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(hi > lo);
  assert(bins > 0);
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(
      std::floor(t * static_cast<double>(counts_.size())));
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_low(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_high(std::size_t i) const { return bin_low(i + 1); }

}  // namespace rlplan
