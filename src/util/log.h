// Lightweight leveled logging to stderr.
//
// Deliberately minimal: no global mutable configuration beyond the level,
// no allocation on the filtered-out path, printf-style formatting avoided in
// favour of ostream composition at call sites via the RLPLAN_LOG macro.
#pragma once

#include <sstream>
#include <string>

namespace rlplan {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold. Messages below this level are dropped.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Emits one formatted line to stderr (thread-safe at line granularity).
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, os_.str()); }
  std::ostringstream& stream() { return os_; }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace rlplan

#define RLPLAN_LOG(level)                      \
  if (::rlplan::log_level() > (level)) {       \
  } else                                       \
    ::rlplan::detail::LogStream(level).stream()

#define RLPLAN_DEBUG RLPLAN_LOG(::rlplan::LogLevel::kDebug)
#define RLPLAN_INFO RLPLAN_LOG(::rlplan::LogLevel::kInfo)
#define RLPLAN_WARN RLPLAN_LOG(::rlplan::LogLevel::kWarn)
#define RLPLAN_ERROR RLPLAN_LOG(::rlplan::LogLevel::kError)
