// Lightweight leveled logging to stderr.
//
// Deliberately minimal: no global mutable configuration beyond the level,
// no allocation on the filtered-out path, printf-style formatting avoided in
// favour of ostream composition at call sites via the RLPLAN_LOG macro.
#pragma once

#include <sstream>
#include <string>

namespace rlplan {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold. Messages below this level are dropped.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Emits one formatted line to stderr (thread-safe at line granularity).
void log_line(LogLevel level, const std::string& message);

/// When enabled, every line carries a monotonic timestamp (seconds since the
/// first prefixed line, microsecond resolution) and the calling thread's id:
/// "[rlplan INFO 12.345678 t03] msg". Off by default — tools that interleave
/// multi-threaded phases (train, regress) switch it on so log lines can be
/// correlated with trace spans.
void set_log_prefix(bool enabled);
bool log_prefix_enabled();

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, os_.str()); }
  std::ostringstream& stream() { return os_; }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace rlplan

// The if-init binding evaluates `level` exactly once, so call sites may pass
// an expression with side effects (or a function call) safely; the dangling-
// else shape keeps the macro usable as a statement inside unbraced ifs.
#define RLPLAN_LOG(level)                                             \
  if (const ::rlplan::LogLevel rlplan_log_level_ = (level);           \
      ::rlplan::log_level() > rlplan_log_level_) {                    \
  } else                                                              \
    ::rlplan::detail::LogStream(rlplan_log_level_).stream()

#define RLPLAN_DEBUG RLPLAN_LOG(::rlplan::LogLevel::kDebug)
#define RLPLAN_INFO RLPLAN_LOG(::rlplan::LogLevel::kInfo)
#define RLPLAN_WARN RLPLAN_LOG(::rlplan::LogLevel::kWarn)
#define RLPLAN_ERROR RLPLAN_LOG(::rlplan::LogLevel::kError)
