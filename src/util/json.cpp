#include "util/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/fs.h"

namespace rlplan::util {

namespace {

const char* type_name(JsonValue::Type t) {
  switch (t) {
    case JsonValue::Type::kNull: return "null";
    case JsonValue::Type::kBool: return "bool";
    case JsonValue::Type::kNumber: return "number";
    case JsonValue::Type::kString: return "string";
    case JsonValue::Type::kArray: return "array";
    case JsonValue::Type::kObject: return "object";
  }
  return "?";
}

[[noreturn]] void type_error(const char* want, JsonValue::Type got) {
  throw JsonError(std::string("JSON type error: expected ") + want +
                  ", got " + type_name(got));
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw JsonError("JSON parse error at line " + std::to_string(line) +
                    ", column " + std::to_string(col) + ": " + what);
  }

  bool at_end() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skip_whitespace() {
    while (!at_end()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  void expect(char c) {
    if (at_end() || peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    // Recursion guard: arrays/objects recurse through here, so absurdly
    // nested input must become a JsonError, not a stack overflow.
    if (depth_ >= kMaxDepth) fail("nesting deeper than 256 levels");
    ++depth_;
    JsonValue v = parse_value_inner();
    --depth_;
    return v;
  }

  JsonValue parse_value_inner() {
    skip_whitespace();
    if (at_end()) fail("unexpected end of input");
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue();
        fail("invalid literal");
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        fail("unexpected character");
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue::Object members;
    skip_whitespace();
    if (!at_end() && peek() == '}') {
      ++pos_;
      return JsonValue(std::move(members));
    }
    for (;;) {
      skip_whitespace();
      if (at_end() || peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      if (at_end()) fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue(std::move(members));
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue::Array items;
    skip_whitespace();
    if (!at_end() && peek() == ']') {
      ++pos_;
      return JsonValue(std::move(items));
    }
    for (;;) {
      items.push_back(parse_value());
      skip_whitespace();
      if (at_end()) fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue(std::move(items));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (at_end()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (at_end()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = parse_hex4();
          // Surrogate pair -> one code point.
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (!consume_literal("\\u")) fail("unpaired surrogate");
            const unsigned lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid low surrogate");
            code = 0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
          }
          append_utf8(out, code);
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') {
        code += static_cast<unsigned>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        code += static_cast<unsigned>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        code += static_cast<unsigned>(h - 'A' + 10);
      } else {
        fail("invalid hex digit in \\u escape");
      }
    }
    return code;
  }

  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') ++pos_;
    if (at_end() || peek() < '0' || peek() > '9') fail("invalid number");
    // Leading zero must not be followed by more digits (JSON grammar).
    if (peek() == '0') {
      ++pos_;
      if (!at_end() && peek() >= '0' && peek() <= '9') {
        fail("number with leading zero");
      }
    } else {
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!at_end() && peek() == '.') {
      ++pos_;
      if (at_end() || peek() < '0' || peek() > '9') {
        fail("expected digit after decimal point");
      }
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos_;
      if (at_end() || peek() < '0' || peek() > '9') {
        fail("expected digit in exponent");
      }
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(v)) {
      fail("number out of range");
    }
    return JsonValue(v);
  }

  static constexpr int kMaxDepth = 256;

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_number(std::string& out, double v) {
  // Integral values within the exactly-representable range print as
  // integers; everything else uses %.17g trimmed through a re-parse check.
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    out += buf;
    return;
  }
  char buf[40];
  for (const int prec : {15, 16, 17}) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  out += buf;
}

}  // namespace

bool JsonValue::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

double JsonValue::as_number() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return string_;
}

const JsonValue::Array& JsonValue::as_array() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return array_;
}

const JsonValue::Object& JsonValue::as_object() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return object_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  if (type_ != Type::kObject) type_error("object", type_);
  if (const JsonValue* v = find(key)) return *v;
  throw JsonError("JSON object has no member \"" + key + "\"");
}

JsonValue& JsonValue::set(const std::string& key, JsonValue value) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) type_error("object", type_);
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  object_.emplace_back(key, std::move(value));
  return *this;
}

JsonValue& JsonValue::push_back(JsonValue value) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) type_error("array", type_);
  array_.push_back(std::move(value));
  return *this;
}

double JsonValue::number_or(const std::string& key, double fallback) const {
  const JsonValue* v = find(key);
  return v ? v->as_number() : fallback;
}

bool JsonValue::bool_or(const std::string& key, bool fallback) const {
  const JsonValue* v = find(key);
  return v ? v->as_bool() : fallback;
}

std::string JsonValue::string_or(const std::string& key,
                                 const std::string& fallback) const {
  const JsonValue* v = find(key);
  return v ? v->as_string() : fallback;
}

bool JsonValue::operator==(const JsonValue& o) const {
  if (type_ != o.type_) return false;
  switch (type_) {
    case Type::kNull: return true;
    case Type::kBool: return bool_ == o.bool_;
    case Type::kNumber: return number_ == o.number_;
    case Type::kString: return string_ == o.string_;
    case Type::kArray: return array_ == o.array_;
    case Type::kObject: return object_ == o.object_;
  }
  return false;
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  const auto newline_pad = [&](int d) {
    if (indent <= 0) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: append_number(out, number_); break;
    case Type::kString: append_escaped(out, string_); break;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out.push_back(',');
        newline_pad(depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      newline_pad(depth);
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out.push_back(',');
        newline_pad(depth + 1);
        append_escaped(out, object_[i].first);
        out.push_back(':');
        if (indent > 0) out.push_back(' ');
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      newline_pad(depth);
      out.push_back('}');
      break;
    }
  }
}

JsonValue parse_json(const std::string& text) {
  return Parser(text).parse_document();
}

JsonValue parse_json_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw JsonError(path + ": cannot open file");
  std::ostringstream ss;
  ss << is.rdbuf();
  try {
    return parse_json(ss.str());
  } catch (const JsonError& e) {
    throw JsonError(path + ": " + e.what());
  }
}

void write_json_file(const std::string& path, const JsonValue& value,
                     int indent) {
  // Atomic write-then-rename: a crash (or injected fault) mid-write can
  // never leave a truncated JSON artifact behind.
  atomic_write_file(path, value.dump(indent) + '\n');
}

}  // namespace rlplan::util
