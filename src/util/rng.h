// Deterministic, seedable pseudo-random number generation.
//
// Every stochastic component in RLPlanner (environment resets, PPO sampling,
// SA move proposals, synthetic system generation, weight initialization)
// takes an explicit 64-bit seed and owns its own generator, so experiments
// are reproducible and independent streams never interleave.
//
// ## Seed derivation (the training stack's single-seed contract)
//
// One master seed S — RlPlannerConfig::seed / TrainingSessionConfig::seed
// (PpoConfig::seed when a PpoTrainer is built standalone) — derives EVERY
// stream the training engine consumes. The derivation is part of the
// checkpoint/determinism contract and must stay stable across releases:
//
//   stream                        | seed                                | used by
//   ------------------------------+-------------------------------------+---------
//   net init + PPO update shuffle | S (Rng(S) directly; weight init     | PpoCore
//   + RND init & predictor shuffle|   draws first, then minibatch and   |
//                                 |   RND shuffles continue the stream) |
//   action sampling, env replica i| derive_substream_seed(S_t, i)       | VecEnv /
//   of curriculum task t (serial  |   (the (i+1)-th SplitMix64 value)   | PpoTrainer
//   collection == i = 0)          |                                     |
//   curriculum scenario picks     | derive_named_stream_seed(S,         | Training-
//                                 |   substream::kCurriculum)           | Session
//
// where S_t is the per-task base seed: S_0 = S — so single-scenario
// sessions, RlPlanner, and a standalone PpoTrainer all sample identical
// streams for one seed — and S_t = derive_named_stream_seed(S,
// substream::kTaskBase + t) for t > 0, so curriculum tasks never replay
// each other's action sequences.
//
// Env-replica indices occupy [0, parallel::VecEnv::kMaxEnvs); the named
// substream constants below start far above that range so no reserved stream
// can collide with a replica stream. Generators also expose their raw state
// (Rng::state / set_state) so full-state checkpoints (nn/serialize.h,
// RLPNNv2) resume every stream bit-exactly.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

namespace rlplan {

/// SplitMix64: used to expand a single user seed into stream state.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** — fast, high-quality 64-bit PRNG (Blackman & Vigna).
/// Satisfies UniformRandomBitGenerator so it can also feed <random>
/// distributions, but the members below avoid libstdc++ distribution
/// implementation differences for full cross-platform determinism.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x2b5ad5b8c2d8e7f1ULL) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Unbiased via rejection.
  std::uint64_t uniform_int(std::uint64_t n) {
    if (n == 0) return 0;
    const std::uint64_t threshold = (0 - n) % n;  // 2^64 mod n
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    uniform_int(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box–Muller (no cached spare: keeps state trivial).
  double normal() {
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// Bernoulli trial with probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Derive an independent child stream (for per-component seeding).
  Rng split() { return Rng(next() ^ 0x9e3779b97f4a7c15ULL); }

  /// Raw generator state, for full-state checkpointing. A generator restored
  /// with set_state() produces the exact output sequence of the snapshotted
  /// one.
  std::array<std::uint64_t, 4> state() const {
    return {s_[0], s_[1], s_[2], s_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& s) {
    for (std::size_t i = 0; i < 4; ++i) s_[i] = s[i];
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

/// Seed of sub-stream `index` of `base`: the (index+1)-th output of a
/// SplitMix64 stream over `base`. Used for *small, dense* index ranges —
/// environment replicas, [0, parallel::VecEnv::kMaxEnvs) — where the
/// O(index) walk is a handful of iterations. parallel::VecEnv::derive_seed
/// delegates here, and the serial trainer's action stream is sub-stream 0,
/// so `num_envs == 1` samples from exactly the stream replica 0 would use.
/// Stable across releases: checkpoints and recorded trajectories depend on
/// it.
inline std::uint64_t derive_substream_seed(std::uint64_t base,
                                           std::uint64_t index) {
  SplitMix64 sm(base);
  std::uint64_t s = 0;
  for (std::uint64_t i = 0; i <= index; ++i) s = sm.next();
  return s;
}

/// O(1) derivation for *named* streams (substream:: tags below): one
/// SplitMix64 output over the golden-ratio-scrambled tag folded into the
/// base. Tags must be nonzero — tag 0 would collapse onto replica stream 0.
/// Stable across releases, like derive_substream_seed.
inline std::uint64_t derive_named_stream_seed(std::uint64_t base,
                                              std::uint64_t tag) {
  SplitMix64 sm(base ^ (tag * 0x9e3779b97f4a7c15ULL));
  return sm.next();
}

/// Reserved named-stream tags (all nonzero; see derive_named_stream_seed).
namespace substream {
constexpr std::uint64_t kCurriculum = 1;  ///< scenario sampling
/// Per-task seed bases: curriculum task t > 0 uses tag kTaskBase + t.
constexpr std::uint64_t kTaskBase = 2;
}  // namespace substream

}  // namespace rlplan
