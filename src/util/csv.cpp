#include "util/csv.h"

#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace rlplan {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
}

std::string CsvWriter::escape(std::string_view cell) {
  const bool needs_quote =
      cell.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quote) return std::string(cell);
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row_numeric(const std::vector<double>& cells,
                                  int precision) {
  std::vector<std::string> str_cells;
  str_cells.reserve(cells.size());
  for (double v : cells) {
    std::ostringstream os;
    os << std::setprecision(precision) << v;
    str_cells.push_back(os.str());
  }
  write_row(str_cells);
}

}  // namespace rlplan
