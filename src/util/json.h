// Minimal JSON value model, parser, and writer.
//
// The scenario subsystem (systems/scenario.h) and the regression harness
// (tools/regress.cpp) exchange declarative problem descriptions and
// machine-readable benchmark results as JSON. The container ships no JSON
// dependency, so this is a small self-contained implementation covering the
// full JSON grammar (RFC 8259): objects, arrays, strings with escapes,
// doubles, booleans, null. Parsing errors throw JsonError with a 1-based
// line:column position; numbers are always stored as double (adequate for
// every quantity this library serializes).
//
// Object member order is preserved (vector of pairs, not a map), so a
// parse -> write round trip is stable and diffs of regenerated scenario
// files stay readable.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace rlplan::util {

class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() : type_(Type::kNull) {}
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}              // NOLINT
  JsonValue(double d) : type_(Type::kNumber), number_(d) {}        // NOLINT
  JsonValue(int i) : type_(Type::kNumber), number_(i) {}           // NOLINT
  JsonValue(long i)                                                // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(i)) {}
  JsonValue(std::size_t i)                                         // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(i)) {}
  JsonValue(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT
  JsonValue(const char* s) : type_(Type::kString), string_(s) {}   // NOLINT
  JsonValue(Array a) : type_(Type::kArray), array_(std::move(a)) {}  // NOLINT
  JsonValue(Object o) : type_(Type::kObject), object_(std::move(o)) {}  // NOLINT

  static JsonValue make_object() { return JsonValue(Object{}); }
  static JsonValue make_array() { return JsonValue(Array{}); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw JsonError naming the expected type on mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  // --- Object helpers -------------------------------------------------------

  /// Pointer to the member value, or nullptr when absent (object only).
  const JsonValue* find(const std::string& key) const;
  bool has(const std::string& key) const { return find(key) != nullptr; }

  /// Member value; throws JsonError when absent or not an object.
  const JsonValue& at(const std::string& key) const;

  /// Inserts or replaces a member (turns a null value into an object).
  JsonValue& set(const std::string& key, JsonValue value);

  /// Appends to an array (turns a null value into an array).
  JsonValue& push_back(JsonValue value);

  /// Convenience typed lookups with defaults (object only).
  double number_or(const std::string& key, double fallback) const;
  bool bool_or(const std::string& key, bool fallback) const;
  std::string string_or(const std::string& key,
                        const std::string& fallback) const;

  bool operator==(const JsonValue& o) const;

  /// Serialize. `indent` > 0 pretty-prints with that many spaces per level;
  /// 0 emits the compact single-line form. Numbers use shortest round-trip
  /// formatting; integral values print without a decimal point.
  std::string dump(int indent = 0) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parses a complete JSON document (trailing non-whitespace is an error).
/// Throws JsonError with "line L, column C" context on malformed input.
JsonValue parse_json(const std::string& text);

/// Reads and parses a file; throws JsonError (prefixed with the path) on
/// missing/unreadable files and parse errors.
JsonValue parse_json_file(const std::string& path);

/// Writes `value.dump(indent)` plus a trailing newline; throws JsonError on
/// I/O failure.
void write_json_file(const std::string& path, const JsonValue& value,
                     int indent = 2);

}  // namespace rlplan::util
