#include "util/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace rlplan {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::atomic<bool> g_prefix{false};
std::mutex g_mutex;

// Small sequential ids beat std::this_thread::get_id() for readability and
// match the tids the trace exporter assigns (both number threads in first-
// use order).
int local_thread_id() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

double monotonic_seconds() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration<double>(Clock::now() - epoch).count();
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void set_log_prefix(bool enabled) {
  // Pin the timestamp epoch now, not inside the first prefixed log_line():
  // a daemon enables the prefix on its main thread before spawning the
  // accept/worker threads, and eager initialization here means those threads
  // never race to define the epoch — and timestamps measure "since enable",
  // not "since whichever log call happened to come first".
  if (enabled) monotonic_seconds();
  g_prefix.store(enabled, std::memory_order_relaxed);
}

bool log_prefix_enabled() {
  return g_prefix.load(std::memory_order_relaxed);
}

void log_line(LogLevel level, const std::string& message) {
  if (level < log_level()) return;
  if (log_prefix_enabled()) {
    const double t = monotonic_seconds();
    const int tid = local_thread_id();
    const std::lock_guard<std::mutex> lock(g_mutex);
    std::fprintf(stderr, "[rlplan %s %.6f t%02d] %s\n", level_name(level), t,
                 tid, message.c_str());
    return;
  }
  const std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[rlplan %s] %s\n", level_name(level), message.c_str());
}

}  // namespace rlplan
