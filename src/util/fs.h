// Crash-safe artifact output.
#pragma once

#include <string>

namespace rlplan::util {

/// Atomically replaces `path` with `contents`: writes `<path>.tmp`, flushes,
/// then renames over the target, so readers never observe a truncated file —
/// a crash mid-write leaves the old artifact (or nothing) in place. Every
/// JSON/JSONL artifact writer (util::write_json_file, obs exports, bench
/// reports) routes through here.
///
/// Transient failures — including the "artifact_write" fault-injection site —
/// are retried internally with bounded exponential backoff; once attempts are
/// exhausted the last robust::TransientIoError propagates.
void atomic_write_file(const std::string& path, const std::string& contents);

}  // namespace rlplan::util
