#include "util/simd.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace rlplan::util {

const char* simd_level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kNeon:
      return "neon";
    case SimdLevel::kScalar:
      break;
  }
  return "scalar";
}

bool parse_simd_level(const char* s, SimdLevel& out) {
  if (s == nullptr) return false;
  if (std::strcmp(s, "scalar") == 0) {
    out = SimdLevel::kScalar;
    return true;
  }
  if (std::strcmp(s, "avx2") == 0) {
    out = SimdLevel::kAvx2;
    return true;
  }
  if (std::strcmp(s, "neon") == 0) {
    out = SimdLevel::kNeon;
    return true;
  }
  if (std::strcmp(s, "auto") == 0) {
    out = detected_simd_level();
    return true;
  }
  return false;
}

SimdLevel detected_simd_level() {
#if defined(__aarch64__)
  // Advanced SIMD is part of the AArch64 base architecture.
  return SimdLevel::kNeon;
#elif (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")
             ? SimdLevel::kAvx2
             : SimdLevel::kScalar;
#else
  return SimdLevel::kScalar;
#endif
}

SimdLevel active_simd_level() {
  static const SimdLevel level = [] {
    if (const char* env = std::getenv("RLPLANNER_SIMD")) {
      SimdLevel parsed;
      if (parse_simd_level(env, parsed)) return parsed;
      std::fprintf(stderr,
                   "[simd] unknown RLPLANNER_SIMD=%s (want scalar/avx2/neon/"
                   "auto); using detection\n",
                   env);
    }
    return detected_simd_level();
  }();
  return level;
}

}  // namespace rlplan::util
