// Streaming statistics and error metrics.
//
// RunningStats implements Welford's online algorithm; ErrorMetrics computes
// the four regression metrics the paper reports in Table II (MSE, RMSE, MAE,
// MAPE) between a prediction series and a ground-truth series.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace rlplan {

/// Numerically stable streaming mean / variance / extrema (Welford).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Regression error metrics between prediction and reference series.
/// Matches the metric set of Table II of the RLPlanner paper.
struct ErrorMetrics {
  double mse = 0.0;   ///< mean squared error
  double rmse = 0.0;  ///< root mean squared error
  double mae = 0.0;   ///< mean absolute error
  double mape = 0.0;  ///< mean absolute percentage error, in percent
  std::size_t n = 0;

  /// Computes all four metrics. Reference entries with |ref| < eps are
  /// skipped for MAPE only (to avoid division blow-up), mirroring common
  /// practice. Requires pred.size() == ref.size().
  static ErrorMetrics compute(std::span<const double> pred,
                              std::span<const double> ref,
                              double mape_eps = 1e-9);
};

/// Exact sample quantile with linear interpolation (type R-7, the numpy /
/// Excel default): h = (n-1)q, result = v[floor(h)] + frac(h) *
/// (v[ceil(h)] - v[floor(h)]) over the sorted samples. Exact for small N;
/// a single element is every quantile of itself. Throws std::invalid_argument
/// on an empty input, q outside [0, 1], or any NaN sample (NaN has no order,
/// so a quantile over it is meaningless).
double quantile(std::span<const double> values, double q);

/// One-call descriptive summary of a sample (quantiles via quantile()).
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Summary of `values`; same preconditions as quantile() (throws on empty
/// input or NaN samples).
Summary summarize(std::span<const double> values);

/// Quantile estimate from fixed-bucket histogram counts (the obs metrics
/// export). `counts` has upper_bounds.size() + 1 entries, the last being the
/// +inf overflow bucket. Interpolates linearly inside the selected bucket
/// (lower edge of the first bucket is min(0, upper_bounds[0])); ranks landing
/// in the overflow bucket return upper_bounds.back(), the largest finite
/// statement the histogram can make. Returns 0 when all counts are zero;
/// throws std::invalid_argument on q outside [0, 1] or a size mismatch.
double histogram_quantile(std::span<const double> upper_bounds,
                          std::span<const std::uint64_t> counts, double q);

/// Simple fixed-width histogram over [lo, hi); out-of-range samples clamp
/// into the first/last bin. Used by characterization diagnostics.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_low(std::size_t i) const;
  double bin_high(std::size_t i) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace rlplan
