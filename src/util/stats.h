// Streaming statistics and error metrics.
//
// RunningStats implements Welford's online algorithm; ErrorMetrics computes
// the four regression metrics the paper reports in Table II (MSE, RMSE, MAE,
// MAPE) between a prediction series and a ground-truth series.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace rlplan {

/// Numerically stable streaming mean / variance / extrema (Welford).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Regression error metrics between prediction and reference series.
/// Matches the metric set of Table II of the RLPlanner paper.
struct ErrorMetrics {
  double mse = 0.0;   ///< mean squared error
  double rmse = 0.0;  ///< root mean squared error
  double mae = 0.0;   ///< mean absolute error
  double mape = 0.0;  ///< mean absolute percentage error, in percent
  std::size_t n = 0;

  /// Computes all four metrics. Reference entries with |ref| < eps are
  /// skipped for MAPE only (to avoid division blow-up), mirroring common
  /// practice. Requires pred.size() == ref.size().
  static ErrorMetrics compute(std::span<const double> pred,
                              std::span<const double> ref,
                              double mape_eps = 1e-9);
};

/// Simple fixed-width histogram over [lo, hi); out-of-range samples clamp
/// into the first/last bin. Used by characterization diagnostics.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_low(std::size_t i) const;
  double bin_high(std::size_t i) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace rlplan
