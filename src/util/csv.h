// Minimal CSV emission for bench harness outputs.
#pragma once

#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace rlplan {

/// Writes rows of mixed string/numeric cells to a CSV file. Cells containing
/// commas, quotes, or newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Opens `path` for writing (truncates). Throws std::runtime_error on
  /// failure.
  explicit CsvWriter(const std::string& path);

  void write_row(const std::vector<std::string>& cells);

  /// Convenience: formats doubles with `precision` significant digits.
  void write_row_numeric(const std::vector<double>& cells, int precision = 8);

  static std::string escape(std::string_view cell);

 private:
  std::ofstream out_;
};

}  // namespace rlplan
