#include "util/fs.h"

#include <cstdio>

#include "robust/fault.h"
#include "robust/robust.h"

namespace rlplan::util {

void atomic_write_file(const std::string& path, const std::string& contents) {
  const std::string tmp = path + ".tmp";
  robust::retry_with_backoff(
      [&] {
        if (robust::fault_point("artifact_write")) {
          throw robust::TransientIoError(path +
                                         ": injected artifact_write fault");
        }
        std::FILE* f = std::fopen(tmp.c_str(), "wb");
        if (f == nullptr) {
          throw robust::TransientIoError(tmp + ": cannot open for writing");
        }
        const std::size_t written =
            contents.empty() ? 0
                             : std::fwrite(contents.data(), 1,
                                           contents.size(), f);
        const bool flushed = std::fflush(f) == 0;
        std::fclose(f);
        if (written != contents.size() || !flushed) {
          std::remove(tmp.c_str());
          throw robust::TransientIoError(tmp + ": write failed");
        }
        if (std::rename(tmp.c_str(), path.c_str()) != 0) {
          std::remove(tmp.c_str());
          throw robust::TransientIoError(path + ": rename failed");
        }
      },
      {}, "artifact_write");
}

}  // namespace rlplan::util
