// Runtime SIMD dispatch for the explicitly vectorized hot kernels.
//
// The repo builds portable binaries (no -march=native): baseline codegen is
// SSE2 on x86-64 and plain NEON-less scalar elsewhere. Kernels that want
// wider vectors (the SoA thermal passes, thermal/soa_kernels_*.cpp) are
// compiled in dedicated translation units with per-file ISA flags and picked
// at runtime through this layer, so one binary runs everywhere and uses the
// widest implementation the host supports.
//
// Selection order:
//   1. RLPLANNER_SIMD env var, when set: "scalar" disables every explicit
//      kernel (the always-available reference path), "avx2"/"neon" request a
//      specific level, "auto" (or unset) defers to detection. Requesting a
//      level the host or the build cannot provide falls back to scalar —
//      never to a different SIMD level — so a forced leg tests exactly what
//      it names.
//   2. CPU detection: __builtin_cpu_supports("avx2") on x86-64; NEON is
//      architecturally guaranteed on AArch64.
//
// The choice is made once, at first query, and cached for the process (the
// env var is read at that point). Consumers that want per-instance control
// for differential testing bypass the cache: SoaSnapshot::set_simd_level for
// the batch sweep kernels, IncrementalThermalState::set_simd_level for the
// fused pair-row kernels behind the incremental single-move path.
#pragma once

namespace rlplan::util {

enum class SimdLevel {
  kScalar = 0,  ///< no explicit kernels; portable reference code
  kAvx2 = 1,    ///< x86-64 AVX2 + FMA
  kNeon = 2,    ///< AArch64 Advanced SIMD
};

/// Human-readable level name ("scalar", "avx2", "neon") — the string
/// published into bench JSON and accepted by RLPLANNER_SIMD.
const char* simd_level_name(SimdLevel level);

/// Parses a RLPLANNER_SIMD value ("scalar"/"avx2"/"neon"/"auto").
/// Returns true and writes `out` on success ("auto" maps to the detected
/// level); returns false on an unrecognized string.
bool parse_simd_level(const char* s, SimdLevel& out);

/// Widest level the running CPU supports (env var ignored).
SimdLevel detected_simd_level();

/// The process-wide dispatch choice: RLPLANNER_SIMD when set (unknown values
/// warn once and fall back to detection), detected_simd_level() otherwise.
/// Cached after the first call.
SimdLevel active_simd_level();

}  // namespace rlplan::util
