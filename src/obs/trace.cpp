#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/metrics.h"
#include "util/fs.h"
#include "util/json.h"
#include "util/stats.h"

namespace rlplan::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

void set_trace_enabled(bool enabled) {
  detail::g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

void set_enabled(bool enabled) {
  set_trace_enabled(enabled);
  set_metrics_enabled(enabled);
}

namespace {

// Every field is an atomic written by the owning thread with relaxed order
// and read by the exporter; the slot may be concurrently overwritten on ring
// wrap during export, which at worst yields one torn *event* (not torn
// memory) in a diagnostic stream.
struct EventSlot {
  std::atomic<const char*> name{nullptr};
  std::atomic<std::uint64_t> begin_ns{0};
  std::atomic<std::uint64_t> end_ns{0};
  std::atomic<std::int64_t> arg{kNoArg};
};

struct TraceRing {
  explicit TraceRing(std::size_t cap, int tid_)
      : slots(new EventSlot[cap]), capacity(cap), tid(tid_) {}

  std::unique_ptr<EventSlot[]> slots;
  std::size_t capacity;
  int tid;
  // Total events ever pushed; head % capacity is the next write slot.
  std::atomic<std::uint64_t> head{0};
};

struct TraceState {
  std::mutex mutex;
  std::vector<std::unique_ptr<TraceRing>> rings;
  std::size_t ring_capacity = 1 << 16;
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
};

TraceState& state() {
  // Leaked: threads may record spans during static destruction.
  static TraceState* s = new TraceState();
  return *s;
}

TraceRing& local_ring() {
  thread_local TraceRing* cached = nullptr;
  if (cached == nullptr) {
    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    const int tid = static_cast<int>(s.rings.size()) + 1;
    s.rings.push_back(std::make_unique<TraceRing>(s.ring_capacity, tid));
    cached = s.rings.back().get();
  }
  return *cached;
}

struct CollectedEvent {
  const char* name;
  std::uint64_t begin_ns;
  std::uint64_t end_ns;
  std::int64_t arg;
  int tid;
};

std::vector<CollectedEvent> collect_events() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  std::vector<CollectedEvent> out;
  for (const auto& ring : s.rings) {
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t n = std::min<std::uint64_t>(head, ring->capacity);
    for (std::uint64_t i = head - n; i < head; ++i) {
      const EventSlot& slot = ring->slots[i % ring->capacity];
      const char* name = slot.name.load(std::memory_order_relaxed);
      if (name == nullptr) continue;
      out.push_back({name, slot.begin_ns.load(std::memory_order_relaxed),
                     slot.end_ns.load(std::memory_order_relaxed),
                     slot.arg.load(std::memory_order_relaxed), ring->tid});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const CollectedEvent& a, const CollectedEvent& b) {
              if (a.begin_ns != b.begin_ns) return a.begin_ns < b.begin_ns;
              return a.end_ns > b.end_ns;  // parents before children
            });
  return out;
}

std::string g_trace_out_path;    // set by RLPLANNER_TRACE_OUT
std::string g_metrics_out_path;  // set by RLPLANNER_METRICS_OUT

void at_exit_export() {
  if (!g_trace_out_path.empty()) {
    try {
      write_chrome_trace(g_trace_out_path);
    } catch (...) {
    }
  }
  if (!g_metrics_out_path.empty()) {
    try {
      MetricsRegistry::instance().write_jsonl(g_metrics_out_path);
    } catch (...) {
    }
  }
}

bool env_truthy(const char* value) {
  return value != nullptr && value[0] != '\0' &&
         !(value[0] == '0' && value[1] == '\0');
}

struct EnvInit {
  EnvInit() {
    state();  // pin the epoch before any span
    bool enable = env_truthy(std::getenv("RLPLANNER_TRACE"));
    if (const char* out = std::getenv("RLPLANNER_TRACE_OUT");
        out != nullptr && out[0] != '\0') {
      g_trace_out_path = out;
      enable = true;
    }
    if (const char* out = std::getenv("RLPLANNER_METRICS_OUT");
        out != nullptr && out[0] != '\0') {
      g_metrics_out_path = out;
      enable = true;
    }
    if (enable) set_enabled(true);
    if (!g_trace_out_path.empty() || !g_metrics_out_path.empty()) {
      std::atexit(&at_exit_export);
    }
  }
};
const EnvInit g_env_init;

}  // namespace

namespace detail {

std::uint64_t trace_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - state().epoch)
          .count());
}

void record_span(const char* name, std::uint64_t begin_ns,
                 std::uint64_t end_ns, std::int64_t arg) {
  TraceRing& ring = local_ring();
  const std::uint64_t head = ring.head.load(std::memory_order_relaxed);
  EventSlot& slot = ring.slots[head % ring.capacity];
  slot.name.store(name, std::memory_order_relaxed);
  slot.begin_ns.store(begin_ns, std::memory_order_relaxed);
  slot.end_ns.store(end_ns, std::memory_order_relaxed);
  slot.arg.store(arg, std::memory_order_relaxed);
  ring.head.store(head + 1, std::memory_order_release);
}

}  // namespace detail

TraceStats trace_stats() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  TraceStats stats;
  stats.threads = s.rings.size();
  for (const auto& ring : s.rings) {
    const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
    stats.recorded += std::min<std::uint64_t>(head, ring->capacity);
    stats.dropped += head > ring->capacity ? head - ring->capacity : 0;
  }
  return stats;
}

void reset_trace() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  for (const auto& ring : s.rings) {
    // Clear names first so a concurrent exporter skips stale slots.
    for (std::size_t i = 0; i < ring->capacity; ++i) {
      ring->slots[i].name.store(nullptr, std::memory_order_relaxed);
    }
    ring->head.store(0, std::memory_order_release);
  }
}

void set_trace_ring_capacity(std::size_t events) {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.ring_capacity = std::max<std::size_t>(events, 16);
}

util::JsonValue chrome_trace_json() {
  const std::vector<CollectedEvent> events = collect_events();
  util::JsonValue trace_events = util::JsonValue::make_array();
  for (const CollectedEvent& e : events) {
    util::JsonValue row = util::JsonValue::make_object();
    row.set("name", e.name);
    // Family prefix ("thermal.evaluate" -> "thermal") doubles as the Chrome
    // category so families can be toggled in the viewer.
    const std::string name(e.name);
    const std::size_t dot = name.find('.');
    row.set("cat", dot == std::string::npos ? name : name.substr(0, dot));
    row.set("ph", "X");
    row.set("ts", static_cast<double>(e.begin_ns) / 1e3);
    row.set("dur", static_cast<double>(e.end_ns - e.begin_ns) / 1e3);
    row.set("pid", 1);
    row.set("tid", e.tid);
    if (e.arg != kNoArg) {
      util::JsonValue args = util::JsonValue::make_object();
      args.set("v", static_cast<double>(e.arg));
      row.set("args", std::move(args));
    }
    trace_events.push_back(std::move(row));
  }
  util::JsonValue root = util::JsonValue::make_object();
  root.set("displayTimeUnit", "ms");
  root.set("traceEvents", std::move(trace_events));
  return root;
}

void write_chrome_trace(const std::string& path) {
  util::write_json_file(path, chrome_trace_json(), 0);
}

util::JsonValue trace_summary_json() {
  const std::vector<CollectedEvent> events = collect_events();
  std::map<std::string, RunningStats> by_name;
  for (const CollectedEvent& e : events) {
    by_name[e.name].add(static_cast<double>(e.end_ns - e.begin_ns) / 1e3);
  }
  util::JsonValue arr = util::JsonValue::make_array();
  for (const auto& [name, stats] : by_name) {
    util::JsonValue row = util::JsonValue::make_object();
    row.set("name", name);
    row.set("count", static_cast<double>(stats.count()));
    row.set("total_ms", stats.sum() / 1e3);
    row.set("mean_us", stats.mean());
    row.set("min_us", stats.min());
    row.set("max_us", stats.max());
    arr.push_back(std::move(row));
  }
  return arr;
}

void write_trace_summary(const std::string& path) {
  const util::JsonValue arr = trace_summary_json();
  std::string text;
  for (const util::JsonValue& row : arr.as_array()) {
    text += row.dump(0);
    text += '\n';
  }
  util::atomic_write_file(path, text);
}

}  // namespace rlplan::obs
