#include "obs/metrics.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <limits>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "util/fs.h"
#include "util/json.h"
#include "util/stats.h"

namespace rlplan::obs {

namespace detail {
std::atomic<bool> g_metrics_enabled{false};
}  // namespace detail

void set_metrics_enabled(bool enabled) {
  detail::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

namespace {

constexpr std::size_t kMaxMetrics = MetricsRegistry::kMaxMetrics;

// Per-thread histogram state. Allocated lazily on a thread's first observe()
// of that histogram; every slot is single-writer (the owning thread), so
// relaxed load+store suffices, while the snapshot reader sees a consistent-
// enough view for monotonic counters.
struct HistShard {
  explicit HistShard(std::size_t num_buckets) : buckets(num_buckets) {}

  std::vector<std::atomic<std::uint64_t>> buckets;  // upper_bounds + overflow
  std::atomic<std::uint64_t> n{0};
  std::atomic<double> sum{0.0};
  std::atomic<double> min{std::numeric_limits<double>::infinity()};
  std::atomic<double> max{-std::numeric_limits<double>::infinity()};

  void reset() {
    for (auto& b : buckets) b.store(0, std::memory_order_relaxed);
    n.store(0, std::memory_order_relaxed);
    sum.store(0.0, std::memory_order_relaxed);
    min.store(std::numeric_limits<double>::infinity(),
              std::memory_order_relaxed);
    max.store(-std::numeric_limits<double>::infinity(),
              std::memory_order_relaxed);
  }
};

// One thread's slice of every counter plus its lazily-created histogram
// shards. Fixed-size arrays: registering a metric never reallocates storage
// another thread is writing through.
struct Shard {
  std::array<std::atomic<std::uint64_t>, kMaxMetrics> counters{};
  std::array<std::atomic<HistShard*>, kMaxMetrics> hists{};

  ~Shard() {
    for (auto& h : hists) delete h.load(std::memory_order_relaxed);
  }
};

struct MetricDef {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::vector<double> upper_bounds;  // histograms only
};

}  // namespace

struct MetricsRegistry::Impl {
  mutable std::mutex mutex;
  std::array<MetricDef, kMaxMetrics> defs;
  std::size_t num_defs = 0;
  // Shards are owned here and outlive their threads (merged even after the
  // thread exits). The thread_local cache below avoids the mutex on every
  // increment.
  std::vector<std::unique_ptr<Shard>> shards;
  std::array<std::atomic<std::int64_t>, kMaxMetrics> gauge_value{};
  std::array<std::atomic<std::int64_t>, kMaxMetrics> gauge_peak{};

  Shard& local_shard() {
    thread_local Shard* cached = nullptr;
    if (cached == nullptr) {
      std::lock_guard<std::mutex> lock(mutex);
      shards.push_back(std::make_unique<Shard>());
      cached = shards.back().get();
    }
    return *cached;
  }

  std::uint32_t register_metric(std::string_view name, MetricKind kind,
                                std::span<const double> upper_bounds) {
    std::lock_guard<std::mutex> lock(mutex);
    for (std::size_t i = 0; i < num_defs; ++i) {
      if (defs[i].name == name) {
        if (defs[i].kind != kind) {
          throw std::logic_error("obs metric '" + std::string(name) +
                                 "' registered with conflicting kinds");
        }
        return static_cast<std::uint32_t>(i);
      }
    }
    if (num_defs >= kMaxMetrics) {
      throw std::length_error("obs metrics registry full (kMaxMetrics)");
    }
    MetricDef& def = defs[num_defs];
    def.name = std::string(name);
    def.kind = kind;
    if (kind == MetricKind::kHistogram) {
      if (upper_bounds.empty()) upper_bounds = default_time_buckets_us();
      for (std::size_t i = 1; i < upper_bounds.size(); ++i) {
        if (!(upper_bounds[i] > upper_bounds[i - 1])) {
          throw std::invalid_argument(
              "obs histogram bounds must be strictly increasing");
        }
      }
      def.upper_bounds.assign(upper_bounds.begin(), upper_bounds.end());
    }
    return static_cast<std::uint32_t>(num_defs++);
  }

  HistShard& hist_shard(std::uint32_t id) {
    Shard& shard = local_shard();
    HistShard* h = shard.hists[id].load(std::memory_order_acquire);
    if (h == nullptr) {
      std::size_t num_buckets = 0;
      {
        std::lock_guard<std::mutex> lock(mutex);
        num_buckets = defs[id].upper_bounds.size() + 1;
      }
      h = new HistShard(num_buckets);
      shard.hists[id].store(h, std::memory_order_release);
    }
    return *h;
  }
};

MetricsRegistry::MetricsRegistry() : impl_(new Impl) {}

MetricsRegistry& MetricsRegistry::instance() {
  // Leaked on purpose: worker threads may touch their shards during static
  // destruction, so the registry must never be torn down.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter MetricsRegistry::counter(std::string_view name) {
  return Counter(impl_->register_metric(name, MetricKind::kCounter, {}));
}

Gauge MetricsRegistry::gauge(std::string_view name) {
  return Gauge(impl_->register_metric(name, MetricKind::kGauge, {}));
}

HistogramMetric MetricsRegistry::histogram(
    std::string_view name, std::span<const double> upper_bounds) {
  return HistogramMetric(
      impl_->register_metric(name, MetricKind::kHistogram, upper_bounds));
}

namespace detail {

void counter_add(std::uint32_t id, std::uint64_t delta) {
  auto& slot = MetricsRegistry::instance().impl_->local_shard().counters[id];
  slot.store(slot.load(std::memory_order_relaxed) + delta,
             std::memory_order_relaxed);
}

void gauge_set(std::uint32_t id, std::int64_t value) {
  MetricsRegistry::Impl& impl = *MetricsRegistry::instance().impl_;
  impl.gauge_value[id].store(value, std::memory_order_relaxed);
  std::int64_t peak = impl.gauge_peak[id].load(std::memory_order_relaxed);
  while (value > peak && !impl.gauge_peak[id].compare_exchange_weak(
                             peak, value, std::memory_order_relaxed)) {
  }
}

void gauge_add(std::uint32_t id, std::int64_t delta) {
  MetricsRegistry::Impl& impl = *MetricsRegistry::instance().impl_;
  const std::int64_t value =
      impl.gauge_value[id].fetch_add(delta, std::memory_order_relaxed) + delta;
  std::int64_t peak = impl.gauge_peak[id].load(std::memory_order_relaxed);
  while (value > peak && !impl.gauge_peak[id].compare_exchange_weak(
                             peak, value, std::memory_order_relaxed)) {
  }
}

void histogram_observe(std::uint32_t id, double value) {
  MetricsRegistry::Impl& impl = *MetricsRegistry::instance().impl_;
  HistShard& h = impl.hist_shard(id);
  // Bucket layout is immutable after registration, so reading the bounds
  // without the mutex is safe; linear scan beats binary search at these
  // sizes (<= ~24 bounds).
  const std::vector<double>& bounds = impl.defs[id].upper_bounds;
  std::size_t b = 0;
  while (b < bounds.size() && value > bounds[b]) ++b;
  auto relaxed_bump = [](std::atomic<std::uint64_t>& slot,
                         std::uint64_t delta) {
    slot.store(slot.load(std::memory_order_relaxed) + delta,
               std::memory_order_relaxed);
  };
  relaxed_bump(h.buckets[b], 1);
  relaxed_bump(h.n, 1);
  h.sum.store(h.sum.load(std::memory_order_relaxed) + value,
              std::memory_order_relaxed);
  if (value < h.min.load(std::memory_order_relaxed)) {
    h.min.store(value, std::memory_order_relaxed);
  }
  if (value > h.max.load(std::memory_order_relaxed)) {
    h.max.store(value, std::memory_order_relaxed);
  }
}

}  // namespace detail

std::vector<MetricValue> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<MetricValue> out;
  out.reserve(impl_->num_defs);
  for (std::size_t i = 0; i < impl_->num_defs; ++i) {
    const MetricDef& def = impl_->defs[i];
    MetricValue v;
    v.name = def.name;
    v.kind = def.kind;
    switch (def.kind) {
      case MetricKind::kCounter:
        for (const auto& shard : impl_->shards) {
          v.count += shard->counters[i].load(std::memory_order_relaxed);
        }
        break;
      case MetricKind::kGauge:
        v.value = impl_->gauge_value[i].load(std::memory_order_relaxed);
        v.peak = impl_->gauge_peak[i].load(std::memory_order_relaxed);
        break;
      case MetricKind::kHistogram: {
        v.upper_bounds = def.upper_bounds;
        v.buckets.assign(def.upper_bounds.size() + 1, 0);
        v.min = std::numeric_limits<double>::infinity();
        v.max = -std::numeric_limits<double>::infinity();
        for (const auto& shard : impl_->shards) {
          const HistShard* h = shard->hists[i].load(std::memory_order_acquire);
          if (h == nullptr) continue;
          for (std::size_t b = 0; b < v.buckets.size(); ++b) {
            v.buckets[b] += h->buckets[b].load(std::memory_order_relaxed);
          }
          v.samples += h->n.load(std::memory_order_relaxed);
          v.sum += h->sum.load(std::memory_order_relaxed);
          v.min = std::min(v.min, h->min.load(std::memory_order_relaxed));
          v.max = std::max(v.max, h->max.load(std::memory_order_relaxed));
        }
        if (v.samples == 0) {
          v.min = 0.0;
          v.max = 0.0;
        } else {
          v.p50 = histogram_quantile(v.upper_bounds, v.buckets, 0.50);
          v.p90 = histogram_quantile(v.upper_bounds, v.buckets, 0.90);
          v.p99 = histogram_quantile(v.upper_bounds, v.buckets, 0.99);
        }
        break;
      }
    }
    out.push_back(std::move(v));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricValue& a, const MetricValue& b) {
              return a.name < b.name;
            });
  return out;
}

util::JsonValue MetricsRegistry::snapshot_json() const {
  util::JsonValue arr = util::JsonValue::make_array();
  for (const MetricValue& v : snapshot()) {
    util::JsonValue row = util::JsonValue::make_object();
    row.set("name", v.name);
    switch (v.kind) {
      case MetricKind::kCounter:
        row.set("kind", "counter");
        row.set("count", static_cast<double>(v.count));
        break;
      case MetricKind::kGauge:
        row.set("kind", "gauge");
        row.set("value", static_cast<double>(v.value));
        row.set("peak", static_cast<double>(v.peak));
        break;
      case MetricKind::kHistogram: {
        row.set("kind", "histogram");
        row.set("samples", static_cast<double>(v.samples));
        row.set("sum", v.sum);
        row.set("min", v.min);
        row.set("max", v.max);
        row.set("p50", v.p50);
        row.set("p90", v.p90);
        row.set("p99", v.p99);
        util::JsonValue bounds = util::JsonValue::make_array();
        for (double ub : v.upper_bounds) bounds.push_back(ub);
        row.set("upper_bounds", std::move(bounds));
        util::JsonValue buckets = util::JsonValue::make_array();
        for (std::uint64_t c : v.buckets) {
          buckets.push_back(static_cast<double>(c));
        }
        row.set("buckets", std::move(buckets));
        break;
      }
    }
    arr.push_back(std::move(row));
  }
  return arr;
}

void MetricsRegistry::write_jsonl(const std::string& path) const {
  const util::JsonValue arr = snapshot_json();
  std::string text;
  for (const util::JsonValue& row : arr.as_array()) {
    text += row.dump(0);
    text += '\n';
  }
  util::atomic_write_file(path, text);
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (const auto& shard : impl_->shards) {
    for (auto& c : shard->counters) c.store(0, std::memory_order_relaxed);
    for (auto& hp : shard->hists) {
      if (HistShard* h = hp.load(std::memory_order_relaxed)) h->reset();
    }
  }
  for (auto& g : impl_->gauge_value) g.store(0, std::memory_order_relaxed);
  for (auto& g : impl_->gauge_peak) g.store(0, std::memory_order_relaxed);
}

std::span<const double> default_time_buckets_us() {
  // 1 µs, 2 µs, ... ×2 up to ~8.4 s.
  static const std::vector<double> buckets = [] {
    std::vector<double> b;
    double ub = 1.0;
    for (int i = 0; i < 24; ++i) {
      b.push_back(ub);
      ub *= 2.0;
    }
    return b;
  }();
  return buckets;
}

}  // namespace rlplan::obs
