// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms.
//
// Hot-path writes are uncontended: every thread gets its own shard of
// single-writer atomic slots (relaxed load + store, no RMW, no false sharing
// with other threads' shards), merged only when snapshot() runs. A disabled
// registry costs one relaxed atomic load per macro hit — the instrumentation
// in the thermal/SA/RL hot loops stays in place permanently and is switched
// on per run (RLPLANNER_TRACE=1, --metrics/--trace tool flags, or
// set_metrics_enabled(true)).
//
// Telemetry is a side channel by contract: nothing in this header feeds back
// into optimizer decisions, so enabling it can never change deterministic
// outputs (the differential suites run with tracing on to enforce this).
//
// Naming convention: lowercase dotted paths, "<family>.<detail>", where the
// family is the subsystem ("thermal", "sa", "rl", "pool", "bench"). Handles
// are cheap value types; the macros below cache the registration in a
// function-local static so steady-state cost is the enabled check plus one
// shard increment (~1 ns).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace rlplan::util {
class JsonValue;
}

namespace rlplan::obs {

namespace detail {
extern std::atomic<bool> g_metrics_enabled;
void counter_add(std::uint32_t id, std::uint64_t delta);
void gauge_set(std::uint32_t id, std::int64_t value);
void gauge_add(std::uint32_t id, std::int64_t delta);
void histogram_observe(std::uint32_t id, double value);
}  // namespace detail

/// Single relaxed load; the only cost instrumentation pays when telemetry is
/// off.
inline bool metrics_enabled() {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}
void set_metrics_enabled(bool enabled);

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Monotonic event count (merged by summing thread shards).
class Counter {
 public:
  void add(std::uint64_t delta = 1) const { detail::counter_add(id_, delta); }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::uint32_t id) : id_(id) {}
  std::uint32_t id_;
};

/// Last-value metric with a tracked peak (set/add are global atomics — gauges
/// record occasional state like queue depth, not per-event hot-path counts).
class Gauge {
 public:
  void set(std::int64_t value) const { detail::gauge_set(id_, value); }
  void add(std::int64_t delta) const { detail::gauge_add(id_, delta); }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::uint32_t id) : id_(id) {}
  std::uint32_t id_;
};

/// Fixed upper-bound buckets plus an implicit +inf overflow bucket; per-thread
/// bucket arrays are allocated lazily on a thread's first observe().
class HistogramMetric {
 public:
  void observe(double value) const { detail::histogram_observe(id_, value); }

 private:
  friend class MetricsRegistry;
  explicit HistogramMetric(std::uint32_t id) : id_(id) {}
  std::uint32_t id_;
};

/// Merged view of one metric at snapshot time.
struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  // Counter.
  std::uint64_t count = 0;
  // Gauge.
  std::int64_t value = 0;
  std::int64_t peak = 0;
  // Histogram. `buckets` has upper_bounds.size() + 1 entries (last = +inf
  // overflow); quantiles interpolate within buckets (util/stats.h
  // histogram_quantile), so they are estimates bounded by bucket width.
  std::uint64_t samples = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::vector<double> upper_bounds;
  std::vector<std::uint64_t> buckets;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

class MetricsRegistry {
 public:
  /// Process singleton; never destroyed (worker threads may still hold shard
  /// pointers during static teardown).
  static MetricsRegistry& instance();

  /// Registration is idempotent by name; kind mismatches throw. The registry
  /// holds a fixed table of kMaxMetrics definitions so shard slots never
  /// reallocate under concurrent writers.
  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  /// `upper_bounds` must be strictly increasing; empty means "use the default
  /// exponential microsecond buckets" (default_time_buckets_us()).
  HistogramMetric histogram(std::string_view name,
                            std::span<const double> upper_bounds = {});

  /// Merges every thread shard. Sorted by name; metrics that were never
  /// touched still appear (zero-valued).
  std::vector<MetricValue> snapshot() const;

  /// One JSON object per metric, in snapshot() order.
  util::JsonValue snapshot_json() const;

  /// JSONL: snapshot_json() with one compact object per line.
  void write_jsonl(const std::string& path) const;

  /// Zeros every shard/gauge (definitions survive). Test/bench support only —
  /// not synchronized against concurrent writers.
  void reset();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static constexpr std::size_t kMaxMetrics = 192;

 private:
  MetricsRegistry();
  ~MetricsRegistry() = delete;

  struct Impl;
  Impl* impl_;
  friend void detail::counter_add(std::uint32_t, std::uint64_t);
  friend void detail::gauge_set(std::uint32_t, std::int64_t);
  friend void detail::gauge_add(std::uint32_t, std::int64_t);
  friend void detail::histogram_observe(std::uint32_t, double);
};

/// Exponential 1 µs .. ~8.4 s upper bounds (24 buckets, ×2 steps) — the
/// default latency histogram layout.
std::span<const double> default_time_buckets_us();

}  // namespace rlplan::obs

// Hot-path macros: one relaxed enabled check, then a function-local static
// handle (registered on first enabled hit). `name` must be a string literal
// or otherwise stable; the registration is cached per call site.
#define RLPLAN_COUNTER_ADD(name, delta)                                    \
  do {                                                                     \
    if (::rlplan::obs::metrics_enabled()) {                                \
      static const ::rlplan::obs::Counter rlplan_obs_counter_ =            \
          ::rlplan::obs::MetricsRegistry::instance().counter(name);        \
      rlplan_obs_counter_.add(static_cast<std::uint64_t>(delta));          \
    }                                                                      \
  } while (0)

#define RLPLAN_COUNTER_INC(name) RLPLAN_COUNTER_ADD(name, 1)

#define RLPLAN_GAUGE_SET(name, value)                                      \
  do {                                                                     \
    if (::rlplan::obs::metrics_enabled()) {                                \
      static const ::rlplan::obs::Gauge rlplan_obs_gauge_ =                \
          ::rlplan::obs::MetricsRegistry::instance().gauge(name);          \
      rlplan_obs_gauge_.set(static_cast<std::int64_t>(value));             \
    }                                                                      \
  } while (0)

#define RLPLAN_HISTOGRAM_OBSERVE(name, value)                              \
  do {                                                                     \
    if (::rlplan::obs::metrics_enabled()) {                                \
      static const ::rlplan::obs::HistogramMetric rlplan_obs_hist_ =       \
          ::rlplan::obs::MetricsRegistry::instance().histogram(name);      \
      rlplan_obs_hist_.observe(static_cast<double>(value));                \
    }                                                                      \
  } while (0)
