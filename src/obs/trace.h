// Scoped trace spans on per-thread ring buffers, exported as Chrome
// trace_event JSON.
//
//   void FastThermalModel::evaluate(...) {
//     RLPLAN_TRACE_SPAN("thermal.evaluate");
//     ...
//   }
//
// The RAII span records begin/end timestamps (steady_clock nanoseconds
// relative to a process-wide epoch) into a fixed-capacity ring owned by the
// current thread — no locks, no allocation on the hot path, and a single
// relaxed atomic load when tracing is disabled. When a ring wraps, the oldest
// events are overwritten and counted as dropped (trace_stats()).
//
// Span names must be string literals (or otherwise outlive the process): the
// ring stores the pointer, not a copy. Naming follows the metrics convention:
// "<family>.<detail>" with family in {"thermal", "sa", "rl", "pool", ...}.
//
// Export targets:
//   * write_chrome_trace(path)  — chrome://tracing / Perfetto "traceEvents"
//     JSON ("X" complete events, ts/dur in microseconds).
//   * write_trace_summary(path) — JSONL, one aggregated row per span name
//     (count, total/mean/min/max duration).
//   * tools/trace_report        — offline self-time/total-time profile.
//
// Environment hooks (read once at static-init time, so existing binaries can
// be traced without new flags):
//   RLPLANNER_TRACE=1            enable tracing + metrics for the process.
//   RLPLANNER_TRACE_OUT=f.json   enable and write a Chrome trace at exit.
//   RLPLANNER_METRICS_OUT=f.jsonl enable and write a metrics JSONL at exit.
//
// Determinism contract: spans only read clocks and write telemetry buffers;
// they never feed back into any computation, so enabling tracing cannot
// change optimizer outputs (CI runs the differential suites with
// RLPLANNER_TRACE=1 to keep this true).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>

namespace rlplan::util {
class JsonValue;
}

namespace rlplan::obs {

namespace detail {
extern std::atomic<bool> g_trace_enabled;
std::uint64_t trace_now_ns();
void record_span(const char* name, std::uint64_t begin_ns,
                 std::uint64_t end_ns, std::int64_t arg);
}  // namespace detail

inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}
void set_trace_enabled(bool enabled);

/// Convenience: flips tracing AND metrics together (the usual way telemetry
/// is switched on by tool flags).
void set_enabled(bool enabled);

/// Sentinel for "span has no argument tag".
inline constexpr std::int64_t kNoArg =
    std::numeric_limits<std::int64_t>::min();

/// RAII span. Cost when disabled: one relaxed load. Cost when enabled: two
/// steady_clock reads plus one ring-slot write (~50 ns).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, std::int64_t arg = kNoArg) {
    if (!trace_enabled()) return;
    name_ = name;
    arg_ = arg;
    begin_ns_ = detail::trace_now_ns();
  }
  ~TraceSpan() {
    if (name_ != nullptr) {
      detail::record_span(name_, begin_ns_, detail::trace_now_ns(), arg_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;  // nullptr => tracing was off at entry
  std::uint64_t begin_ns_ = 0;
  std::int64_t arg_ = 0;
};

struct TraceStats {
  std::uint64_t recorded = 0;  // spans currently held in rings
  std::uint64_t dropped = 0;   // overwritten by ring wrap-around
  std::size_t threads = 0;     // rings (threads that recorded >= 1 span)
};
TraceStats trace_stats();

/// Drops all buffered events (ring capacity and thread registrations stay).
void reset_trace();

/// Per-thread ring capacity in events; applies to rings created afterwards.
/// Default 65536 (~3 MB/thread).
void set_trace_ring_capacity(std::size_t events);

/// {"traceEvents": [...]} with "X" (complete) events — load in
/// chrome://tracing or https://ui.perfetto.dev. Events carry pid 1 and a
/// small sequential tid per recording thread.
util::JsonValue chrome_trace_json();
void write_chrome_trace(const std::string& path);

/// Aggregated per-name rows: name, count, total_ms, mean_us, min_us, max_us.
util::JsonValue trace_summary_json();
/// JSONL form of trace_summary_json() (one compact object per line).
void write_trace_summary(const std::string& path);

}  // namespace rlplan::obs

#define RLPLAN_TRACE_CONCAT2(a, b) a##b
#define RLPLAN_TRACE_CONCAT(a, b) RLPLAN_TRACE_CONCAT2(a, b)

/// RLPLAN_TRACE_SPAN("family.name") or RLPLAN_TRACE_SPAN("family.name", arg)
/// where arg is an int64 tag exported as args.v in the Chrome trace.
#define RLPLAN_TRACE_SPAN(...)                                       \
  const ::rlplan::obs::TraceSpan RLPLAN_TRACE_CONCAT(                \
      rlplan_trace_span_, __COUNTER__) {                             \
    __VA_ARGS__                                                      \
  }
