// TAP-2.5D baseline: thermally-aware simulated-annealing chiplet placement
// (Ma et al., DATE 2021) — the comparison method of Tables I and III.
//
// State: a complete legal floorplan. Moves: displace one die (range shrinks
// as temperature falls), swap two dies, rotate one die; illegal proposals are
// rejected pre-evaluation. Cost: the negated RLPlanner reward (identical
// objective), with the thermal term supplied by an injected evaluator — the
// grid solver reproduces TAP-2.5D(HotSpot), the fast model reproduces
// TAP-2.5D(Fast Thermal Model).
#pragma once

#include <cstdint>

#include "bump/assigner.h"
#include "core/chiplet.h"
#include "core/floorplan.h"
#include "core/reward.h"
#include "sa/annealer.h"
#include "thermal/evaluator.h"

namespace rlplan::sa {

struct Tap25dConfig {
  AnnealOptions anneal{};
  /// Move mix (normalized internally).
  double p_displace = 0.6;
  double p_swap = 0.25;
  double p_rotate = 0.15;
  /// Displacement range as a fraction of interposer extent at T0, shrinking
  /// linearly (in cooling-level count) to the final fraction.
  double displace_frac_initial = 0.35;
  double displace_frac_final = 0.02;
  double spacing_mm = 0.0;
  std::uint64_t seed = 1;
};

struct Tap25dResult {
  Floorplan best;
  double reward = 0.0;
  double wirelength_mm = 0.0;
  double temperature_c = 0.0;  ///< from the *injected* evaluator
  AnnealStats stats{};

  explicit Tap25dResult(Floorplan fp) : best(std::move(fp)) {}

  /// Cost-evaluation throughput of the anneal — the number the regression
  /// suite's `min_sa_evals_per_sec` floors gate on.
  double evaluations_per_second() const {
    return stats.seconds > 0.0
               ? static_cast<double>(stats.evaluations) / stats.seconds
               : 0.0;
  }
};

class Tap25dPlanner {
 public:
  explicit Tap25dPlanner(Tap25dConfig config = {});

  const Tap25dConfig& config() const { return config_; }

  /// Anneals from a first-fit initial placement. `evaluator` supplies the
  /// thermal term; wall/evaluation budgets come from config().anneal.
  Tap25dResult plan(const ChipletSystem& system,
                    thermal::ThermalEvaluator& evaluator,
                    RewardCalculator reward_calc = RewardCalculator{},
                    bump::BumpAssigner assigner = bump::BumpAssigner{});

 private:
  Tap25dConfig config_;
};

}  // namespace rlplan::sa
