// TAP-2.5D baseline: thermally-aware simulated-annealing chiplet placement
// (Ma et al., DATE 2021) — the comparison method of Tables I and III.
//
// State: a complete legal floorplan. Moves: displace one die (range shrinks
// as temperature falls), swap two dies, rotate one die; illegal proposals are
// rejected pre-evaluation. Cost: the negated RLPlanner reward (identical
// objective), with the thermal term supplied by an injected evaluator — the
// grid solver reproduces TAP-2.5D(HotSpot), the fast model reproduces
// TAP-2.5D(Fast Thermal Model).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "bump/assigner.h"
#include "core/chiplet.h"
#include "core/floorplan.h"
#include "core/reward.h"
#include "sa/annealer.h"
#include "thermal/evaluator.h"

namespace rlplan::sa {

struct Tap25dConfig {
  AnnealOptions anneal{};
  /// Move mix (normalized internally).
  double p_displace = 0.6;
  double p_swap = 0.25;
  double p_rotate = 0.15;
  /// Displacement range as a fraction of interposer extent at T0, shrinking
  /// linearly (in cooling-level count) to the final fraction.
  double displace_frac_initial = 0.35;
  double displace_frac_final = 0.02;
  double spacing_mm = 0.0;
  std::uint64_t seed = 1;
  /// Candidates proposed and scored per Metropolis round. 1 (default) is the
  /// classic single-proposal anneal driven through the incremental thermal
  /// protocol. K > 1 switches to population mode: each round draws up to K
  /// legal perturbations of the current state, scores all of them through
  /// ONE ThermalEvaluator::max_temperature_batch() call (the SoA batch
  /// kernel on fast-model evaluators), and applies Metropolis acceptance to
  /// the best candidate. Each scored candidate counts against
  /// anneal.max_evaluations.
  std::size_t population = 1;
  /// Worker threads for the batched thermal scoring when population > 1
  /// (0 = score the batch on the calling thread). Results are identical for
  /// every thread count.
  std::size_t batch_threads = 0;
};

struct Tap25dResult {
  Floorplan best;
  double reward = 0.0;
  double wirelength_mm = 0.0;
  double temperature_c = 0.0;  ///< from the *injected* evaluator
  AnnealStats stats{};

  explicit Tap25dResult(Floorplan fp) : best(std::move(fp)) {}

  /// Cost-evaluation throughput of the anneal — the number the regression
  /// suite's `min_sa_evals_per_sec` floors gate on.
  double evaluations_per_second() const {
    return stats.seconds > 0.0
               ? static_cast<double>(stats.evaluations) / stats.seconds
               : 0.0;
  }
};

class Tap25dPlanner {
 public:
  explicit Tap25dPlanner(Tap25dConfig config = {});

  const Tap25dConfig& config() const { return config_; }

  /// Anneals from a first-fit initial placement. `evaluator` supplies the
  /// thermal term; wall/evaluation budgets come from config().anneal.
  /// config().population selects between the classic single-proposal anneal
  /// (1, driven through the incremental thermal protocol) and the
  /// batch-scored population mode (> 1).
  Tap25dResult plan(const ChipletSystem& system,
                    thermal::ThermalEvaluator& evaluator,
                    RewardCalculator reward_calc = RewardCalculator{},
                    bump::BumpAssigner assigner = bump::BumpAssigner{});

 private:
  /// Population-mode anneal: K proposals per Metropolis round, scored with
  /// one ThermalEvaluator::max_temperature_batch() call per round.
  Floorplan anneal_population(
      const ChipletSystem& system, thermal::ThermalEvaluator& evaluator,
      const RewardCalculator& reward_calc, const bump::BumpAssigner& assigner,
      Floorplan initial,
      std::function<std::optional<Floorplan>(const Floorplan&, Rng&)> propose,
      Rng& rng, AnnealStats& stats) const;

  Tap25dConfig config_;
};

}  // namespace rlplan::sa
