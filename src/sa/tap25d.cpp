#include "sa/tap25d.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "rl/planner.h"
#include "util/log.h"
#include "util/timer.h"

namespace rlplan::sa {

namespace {

/// The TAP-2.5D move kernel (displace / swap / rotate with an annealed
/// displacement range), shared by the classic single-proposal anneal and the
/// population mode so both explore the identical move distribution.
class MoveProposer {
 public:
  MoveProposer(const Tap25dConfig& config, const ChipletSystem& system)
      : config_(config),
        iw_(system.interposer_width()),
        ih_(system.interposer_height()),
        n_(system.num_chiplets()) {
    const double p_total =
        config.p_displace + config.p_swap + config.p_rotate;
    p_disp_ = config.p_displace / p_total;
    p_swap_ = p_disp_ + config.p_swap / p_total;
    // Estimated number of cooling levels for range interpolation.
    const double t0 =
        config.anneal.t_initial > 0 ? config.anneal.t_initial : 1.0;
    const double span = std::log(
        std::max(t0 / std::max(config.anneal.t_final, 1e-12), 1.000001));
    level_estimate_ = std::max<long>(
        1, static_cast<long>(span / -std::log(config.anneal.cooling)));
  }

  std::optional<Floorplan> operator()(const Floorplan& state, Rng& r) {
    ++proposal_counter_;
    // Population mode draws `population` proposals per Metropolis round, so
    // the displacement-range schedule must pace itself against the total
    // proposal budget (levels * moves * population), not the classic
    // one-proposal-per-round count — otherwise the range would collapse to
    // displace_frac_final after 1/population of the run.
    const double progress = std::min(
        1.0, static_cast<double>(proposal_counter_) /
                 (static_cast<double>(level_estimate_) *
                  config_.anneal.moves_per_temperature *
                  static_cast<double>(config_.population)));
    const double frac =
        config_.displace_frac_initial +
        (config_.displace_frac_final - config_.displace_frac_initial) *
            progress;

    Floorplan next = state;
    const double u = r.uniform();
    if (u < p_disp_ || n_ < 2) {
      // Displace one die by a bounded random offset.
      const std::size_t i = r.uniform_int(std::uint64_t{n_});
      const auto& pl = *state.placement(i);
      const double dx = r.uniform(-frac * iw_, frac * iw_);
      const double dy = r.uniform(-frac * ih_, frac * ih_);
      const Rect fp = state.rect_of(i);
      const Point pos{std::clamp(pl.position.x + dx, 0.0, iw_ - fp.w),
                      std::clamp(pl.position.y + dy, 0.0, ih_ - fp.h)};
      if (!next.can_place(i, pos, pl.rotated, config_.spacing_mm)) {
        return std::nullopt;
      }
      next.place(i, pos, pl.rotated);
    } else if (u < p_swap_) {
      // Swap the positions of two dies (keeping orientations).
      const std::size_t i = r.uniform_int(std::uint64_t{n_});
      std::size_t j = r.uniform_int(std::uint64_t{n_ - 1});
      if (j >= i) ++j;
      const Placement pi = *state.placement(i);
      const Placement pj = *state.placement(j);
      next.unplace(i);
      next.unplace(j);
      if (!next.can_place(i, pj.position, pi.rotated, config_.spacing_mm)) {
        return std::nullopt;
      }
      next.place(i, pj.position, pi.rotated);
      if (!next.can_place(j, pi.position, pj.rotated, config_.spacing_mm)) {
        return std::nullopt;
      }
      next.place(j, pi.position, pj.rotated);
      if (!next.system().interposer_rect().contains(next.rect_of(i)) ||
          !next.system().interposer_rect().contains(next.rect_of(j))) {
        return std::nullopt;
      }
    } else {
      // Rotate one die in place (90 degrees about its lower-left corner).
      const std::size_t i = r.uniform_int(std::uint64_t{n_});
      const auto& pl = *state.placement(i);
      next.unplace(i);
      if (!next.can_place(i, pl.position, !pl.rotated, config_.spacing_mm)) {
        return std::nullopt;
      }
      next.place(i, pl.position, !pl.rotated);
    }
    return next;
  }

 private:
  const Tap25dConfig& config_;
  double iw_;
  double ih_;
  std::size_t n_;
  double p_disp_ = 0.0;
  double p_swap_ = 0.0;
  long level_estimate_ = 1;
  long proposal_counter_ = 0;
};

}  // namespace

Tap25dPlanner::Tap25dPlanner(Tap25dConfig config) : config_(config) {
  const double p_total =
      config_.p_displace + config_.p_swap + config_.p_rotate;
  if (p_total <= 0.0) {
    throw std::invalid_argument("Tap25dConfig: move probabilities sum to 0");
  }
  if (config_.population == 0) {
    throw std::invalid_argument("Tap25dConfig: population must be >= 1");
  }
}

Tap25dResult Tap25dPlanner::plan(const ChipletSystem& system,
                                 thermal::ThermalEvaluator& evaluator,
                                 RewardCalculator reward_calc,
                                 bump::BumpAssigner assigner) {
  RLPLAN_TRACE_SPAN("sa.plan",
                    static_cast<std::int64_t>(system.num_chiplets()));
  system.validate();
  Rng rng(config_.seed);

  // Initial state: deterministic first-fit on a fine grid.
  rl::EnvConfig ff_config;
  ff_config.grid = 64;
  ff_config.spacing_mm = config_.spacing_mm;
  Floorplan initial = rl::first_fit_floorplan(system, ff_config);

  MoveProposer proposer(config_, system);
  Tap25dResult result(initial);

  if (config_.population > 1) {
    result.best = anneal_population(system, evaluator, reward_calc, assigner,
                                    std::move(initial), proposer, rng,
                                    result.stats);
  } else {
    const auto propose = [&proposer](const Floorplan& state,
                                     Rng& r) -> std::optional<Floorplan> {
      RLPLAN_COUNTER_INC("sa.proposals");
      return proposer(state, r);
    };
    // Drive the thermal term through the incremental protocol: the evaluator
    // diffs each candidate against its last synced state (one or two dies
    // per SA move), so an incremental evaluator pays O(n) kernel work per
    // proposal instead of a full O(n^2) re-evaluation. The accept/reject
    // hooks commit or roll back the mirrored mutations. Plain evaluators
    // fall back to a full evaluation and ignore the hooks, preserving the
    // legacy behaviour.
    const auto cost = [&](const Floorplan& state) -> double {
      const double wl = assigner.assign(system, state).total_mm;
      const double temp = evaluator.incremental_max_temperature(system, state);
      return reward_calc.cost(wl, temp);
    };
    AnnealHooks hooks;
    hooks.on_accept = [&evaluator] {
      RLPLAN_COUNTER_INC("sa.accepted");
      evaluator.commit();
    };
    hooks.on_reject = [&evaluator] {
      RLPLAN_COUNTER_INC("sa.rejected");
      evaluator.rollback();
    };
    result.best = anneal<Floorplan>(std::move(initial), cost, propose,
                                    config_.anneal, rng, result.stats, hooks);
  }

  result.wirelength_mm = assigner.assign(system, result.best).total_mm;
  result.temperature_c = evaluator.max_temperature(system, result.best);
  result.reward =
      reward_calc.reward(result.wirelength_mm, result.temperature_c);
  RLPLAN_INFO << "TAP-2.5D(" << evaluator.name() << "): reward "
              << result.reward << " after " << result.stats.evaluations
              << " evaluations";
  return result;
}

Floorplan Tap25dPlanner::anneal_population(
    const ChipletSystem& system, thermal::ThermalEvaluator& evaluator,
    const RewardCalculator& reward_calc, const bump::BumpAssigner& assigner,
    Floorplan initial, std::function<std::optional<Floorplan>(
                           const Floorplan&, Rng&)> propose,
    Rng& rng, AnnealStats& stats) const {
  const Timer timer;
  const AnnealOptions& options = config_.anneal;
  const bool controlled = options.control.active();
  const std::size_t k = config_.population;
  parallel::ThreadPool pool(config_.batch_threads);

  // All candidates of a round go through one batched thermal call; the
  // wirelength term stays on the calling thread (microbump assignment is
  // cheap next to the thermal kernel). Results are independent of
  // batch_threads because max_temperature_batch is index-aligned.
  std::vector<Floorplan> candidates;
  candidates.reserve(k);
  const auto score_batch = [&](std::vector<double>& costs) {
    const auto temps = evaluator.max_temperature_batch(
        system, std::span<const Floorplan>(candidates), &pool);
    costs.resize(candidates.size());
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      const double wl = assigner.assign(system, candidates[c]).total_mm;
      costs[c] = reward_calc.cost(wl, temps[c]);
    }
    stats.evaluations += static_cast<long>(candidates.size());
  };

  Floorplan current = initial;
  double current_cost;
  {
    const double wl = assigner.assign(system, current).total_mm;
    const double temp = evaluator.max_temperature(system, current);
    current_cost = reward_calc.cost(wl, temp);
    ++stats.evaluations;
  }
  Floorplan best = current;
  double best_cost = current_cost;
  std::vector<double> costs;

  // Auto-calibrate T0 from one batched round of probes (mean |delta|),
  // mirroring anneal<>'s calibration semantics: probes never advance the
  // current state but may improve the best.
  double t = options.t_initial;
  if (t <= 0.0) {
    candidates.clear();
    for (int i = 0;
         i < options.calibration_samples * 4 &&
         candidates.size() < static_cast<std::size_t>(
                                 options.calibration_samples);
         ++i) {
      auto cand = propose(current, rng);
      if (cand) candidates.push_back(std::move(*cand));
    }
    if (!candidates.empty()) {
      score_batch(costs);
      double delta_sum = 0.0;
      for (std::size_t c = 0; c < candidates.size(); ++c) {
        delta_sum += std::abs(costs[c] - current_cost);
        if (costs[c] < best_cost) {
          best = candidates[c];
          best_cost = costs[c];
        }
      }
      t = std::max(delta_sum / static_cast<double>(candidates.size()), 1e-6);
    } else {
      t = 1.0;
    }
  }

  std::int64_t level = 0;
  while (t > options.t_final) {
    RLPLAN_TRACE_SPAN("sa.level", level++);
    for (int m = 0; m < options.moves_per_temperature; ++m) {
      if (stats.evaluations >= options.max_evaluations) break;
      if (options.time_budget_s > 0.0 &&
          timer.seconds() >= options.time_budget_s) {
        break;
      }
      if (controlled && options.control.stop_requested()) break;
      // One round = K proposals scored in a single batched thermal call; the
      // span covers proposal generation + scoring + the Metropolis step.
      RLPLAN_TRACE_SPAN("sa.round", static_cast<std::int64_t>(k));
      candidates.clear();
      for (std::size_t c = 0; c < k; ++c) {
        ++stats.proposals;
        RLPLAN_COUNTER_INC("sa.proposals");
        auto cand = propose(current, rng);
        if (cand) candidates.push_back(std::move(*cand));
      }
      if (candidates.empty()) continue;
      score_batch(costs);
      std::size_t arg_best = 0;
      for (std::size_t c = 1; c < candidates.size(); ++c) {
        if (costs[c] < costs[arg_best]) arg_best = c;
      }
      // Every scored candidate is a complete legal floorplan; keep the best
      // even when the Metropolis step below rejects it.
      if (costs[arg_best] < best_cost) {
        best = candidates[arg_best];
        best_cost = costs[arg_best];
      }
      const double delta = costs[arg_best] - current_cost;
      if (delta <= 0.0 || rng.uniform() < std::exp(-delta / t)) {
        current = std::move(candidates[arg_best]);
        current_cost = costs[arg_best];
        ++stats.accepted;
        RLPLAN_COUNTER_INC("sa.accepted");
      } else {
        RLPLAN_COUNTER_INC("sa.rejected");
      }
    }
    stats.best_cost_history.push_back(best_cost);
    if (stats.evaluations >= options.max_evaluations) break;
    if (options.time_budget_s > 0.0 &&
        timer.seconds() >= options.time_budget_s) {
      break;
    }
    if (controlled && options.control.stop_requested()) break;
    t *= options.cooling;
  }

  if (controlled) {
    stats.stop_reason = options.control.stop_reason();
    if (stats.degraded()) RLPLAN_COUNTER_INC("robust.degraded");
  }
  stats.final_temperature = t;
  stats.seconds = timer.seconds();
  return best;
}

}  // namespace rlplan::sa
