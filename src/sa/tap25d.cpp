#include "sa/tap25d.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "rl/planner.h"
#include "util/log.h"

namespace rlplan::sa {

Tap25dPlanner::Tap25dPlanner(Tap25dConfig config) : config_(config) {
  const double p_total =
      config_.p_displace + config_.p_swap + config_.p_rotate;
  if (p_total <= 0.0) {
    throw std::invalid_argument("Tap25dConfig: move probabilities sum to 0");
  }
}

Tap25dResult Tap25dPlanner::plan(const ChipletSystem& system,
                                 thermal::ThermalEvaluator& evaluator,
                                 RewardCalculator reward_calc,
                                 bump::BumpAssigner assigner) {
  system.validate();
  Rng rng(config_.seed);

  // Initial state: deterministic first-fit on a fine grid.
  rl::EnvConfig ff_config;
  ff_config.grid = 64;
  ff_config.spacing_mm = config_.spacing_mm;
  Floorplan initial = rl::first_fit_floorplan(system, ff_config);

  const double p_total =
      config_.p_displace + config_.p_swap + config_.p_rotate;
  const double p_disp = config_.p_displace / p_total;
  const double p_swap = p_disp + config_.p_swap / p_total;

  // Displacement range anneals with the cooling-level count.
  const double iw = system.interposer_width();
  const double ih = system.interposer_height();
  const std::size_t n = system.num_chiplets();
  long level_estimate = 1;
  {
    // Estimated number of cooling levels for range interpolation.
    const double t0 = config_.anneal.t_initial > 0 ? config_.anneal.t_initial
                                                   : 1.0;
    const double span = std::log(std::max(
        t0 / std::max(config_.anneal.t_final, 1e-12), 1.000001));
    level_estimate = std::max<long>(
        1, static_cast<long>(span / -std::log(config_.anneal.cooling)));
  }
  long proposal_counter = 0;

  const auto propose = [&](const Floorplan& state,
                           Rng& r) -> std::optional<Floorplan> {
    ++proposal_counter;
    const double progress = std::min(
        1.0, static_cast<double>(proposal_counter) /
                 (static_cast<double>(level_estimate) *
                  config_.anneal.moves_per_temperature));
    const double frac =
        config_.displace_frac_initial +
        (config_.displace_frac_final - config_.displace_frac_initial) *
            progress;

    Floorplan next = state;
    const double u = r.uniform();
    if (u < p_disp || n < 2) {
      // Displace one die by a bounded random offset.
      const std::size_t i = r.uniform_int(std::uint64_t{n});
      const auto& pl = *state.placement(i);
      const double dx = r.uniform(-frac * iw, frac * iw);
      const double dy = r.uniform(-frac * ih, frac * ih);
      const Rect fp = state.rect_of(i);
      const Point pos{
          std::clamp(pl.position.x + dx, 0.0, iw - fp.w),
          std::clamp(pl.position.y + dy, 0.0, ih - fp.h)};
      if (!next.can_place(i, pos, pl.rotated, config_.spacing_mm)) {
        return std::nullopt;
      }
      next.place(i, pos, pl.rotated);
    } else if (u < p_swap) {
      // Swap the positions of two dies (keeping orientations).
      const std::size_t i = r.uniform_int(std::uint64_t{n});
      std::size_t j = r.uniform_int(std::uint64_t{n - 1});
      if (j >= i) ++j;
      const Placement pi = *state.placement(i);
      const Placement pj = *state.placement(j);
      next.unplace(i);
      next.unplace(j);
      if (!next.can_place(i, pj.position, pi.rotated, config_.spacing_mm)) {
        return std::nullopt;
      }
      next.place(i, pj.position, pi.rotated);
      if (!next.can_place(j, pi.position, pj.rotated, config_.spacing_mm)) {
        return std::nullopt;
      }
      next.place(j, pi.position, pj.rotated);
      if (!next.system().interposer_rect().contains(next.rect_of(i)) ||
          !next.system().interposer_rect().contains(next.rect_of(j))) {
        return std::nullopt;
      }
    } else {
      // Rotate one die in place (90 degrees about its lower-left corner).
      const std::size_t i = r.uniform_int(std::uint64_t{n});
      const auto& pl = *state.placement(i);
      next.unplace(i);
      if (!next.can_place(i, pl.position, !pl.rotated, config_.spacing_mm)) {
        return std::nullopt;
      }
      next.place(i, pl.position, !pl.rotated);
    }
    return next;
  };

  // Drive the thermal term through the incremental protocol: the evaluator
  // diffs each candidate against its last synced state (one or two dies per
  // SA move), so an incremental evaluator pays O(n) kernel work per proposal
  // instead of a full O(n^2) re-evaluation. The accept/reject hooks commit or
  // roll back the mirrored mutations. Plain evaluators fall back to a full
  // evaluation and ignore the hooks, preserving the legacy behaviour.
  const auto cost = [&](const Floorplan& state) -> double {
    const double wl = assigner.assign(system, state).total_mm;
    const double temp = evaluator.incremental_max_temperature(system, state);
    return reward_calc.cost(wl, temp);
  };
  AnnealHooks hooks;
  hooks.on_accept = [&evaluator] { evaluator.commit(); };
  hooks.on_reject = [&evaluator] { evaluator.rollback(); };

  Tap25dResult result(initial);
  result.best = anneal<Floorplan>(std::move(initial), cost, propose,
                                  config_.anneal, rng, result.stats, hooks);

  result.wirelength_mm = assigner.assign(system, result.best).total_mm;
  result.temperature_c = evaluator.max_temperature(system, result.best);
  result.reward =
      reward_calc.reward(result.wirelength_mm, result.temperature_c);
  RLPLAN_INFO << "TAP-2.5D(" << evaluator.name() << "): reward "
              << result.reward << " after " << result.stats.evaluations
              << " evaluations";
  return result;
}

}  // namespace rlplan::sa
