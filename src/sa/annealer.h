// Generic simulated-annealing engine.
//
// Template core shared by the TAP-2.5D baseline and reusable for other
// combinatorial substrates; tested independently on analytic toy problems.
// Geometric cooling with Metropolis acceptance; the proposal function may
// decline to produce a move (returns std::nullopt), which costs an iteration
// but no evaluation — matching how floorplan moves that violate legality are
// rejected before the expensive thermal call.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "robust/robust.h"
#include "util/rng.h"
#include "util/timer.h"

namespace rlplan::sa {

struct AnnealOptions {
  /// Initial temperature; <= 0 requests auto-calibration from the first
  /// `calibration_samples` accepted proposals (T0 = mean |delta cost|).
  double t_initial = -1.0;
  int calibration_samples = 20;
  double t_final = 1e-4;
  double cooling = 0.95;          ///< geometric factor per temperature level
  int moves_per_temperature = 40;
  long max_evaluations = 100000;  ///< hard cap on cost-function calls
  double time_budget_s = 0.0;     ///< 0 = unlimited
  /// Cooperative deadline/cancellation, polled once per move alongside the
  /// budget checks (inert by default: one branch per poll). Stopping returns
  /// the best state found so far and records the reason in AnnealStats.
  robust::RunControl control{};
};

struct AnnealStats {
  long evaluations = 0;
  long proposals = 0;
  long accepted = 0;
  double seconds = 0.0;
  double final_temperature = 0.0;
  std::vector<double> best_cost_history;  ///< best-so-far after each level
  /// kNone when the run finished within its own budgets; kCancelled/kDeadline
  /// when AnnealOptions::control stopped it early (result is best-so-far).
  robust::StopReason stop_reason = robust::StopReason::kNone;

  bool degraded() const { return stop_reason != robust::StopReason::kNone; }
};

/// Transaction callbacks around each evaluated proposal, so a cost function
/// with incremental internal state (e.g. an incremental thermal evaluator
/// that mirrored the candidate's mutations) learns the verdict: on_accept
/// fires when the candidate becomes the current state (and once for the
/// initial evaluation), on_reject when it is discarded — including the
/// calibration probes, which never advance the current state. Either
/// callback may be empty.
struct AnnealHooks {
  std::function<void()> on_accept;
  std::function<void()> on_reject;
};

/// Minimizes `cost` over states proposed by `propose`. Returns the best
/// state encountered; statistics in `stats`.
template <typename State>
State anneal(State initial,
             const std::function<double(const State&)>& cost,
             const std::function<std::optional<State>(const State&, Rng&)>&
                 propose,
             const AnnealOptions& options, Rng& rng, AnnealStats& stats,
             const AnnealHooks& hooks = {}) {
  const Timer timer;
  const bool controlled = options.control.active();
  State current = initial;
  double current_cost = cost(current);
  ++stats.evaluations;
  if (hooks.on_accept) hooks.on_accept();
  State best = current;
  double best_cost = current_cost;

  // Auto-calibrate T0 from the magnitude of initial cost deltas.
  double t = options.t_initial;
  if (t <= 0.0) {
    double delta_sum = 0.0;
    int samples = 0;
    for (int i = 0; i < options.calibration_samples * 4 &&
                    samples < options.calibration_samples;
         ++i) {
      if (controlled && options.control.stop_requested()) break;
      auto cand = propose(current, rng);
      if (!cand) continue;
      const double c = cost(*cand);
      ++stats.evaluations;
      if (hooks.on_reject) hooks.on_reject();  // probes never advance current
      delta_sum += std::abs(c - current_cost);
      ++samples;
      if (c < best_cost) {
        best = *cand;
        best_cost = c;
      }
    }
    t = samples > 0 ? std::max(delta_sum / samples, 1e-6) : 1.0;
  }

  std::int64_t anneal_level = 0;
  while (t > options.t_final) {
    // One span per temperature level (not per move: classic-mode moves are
    // ~µs and would be dominated by the span cost itself).
    RLPLAN_TRACE_SPAN("sa.level", anneal_level++);
    for (int m = 0; m < options.moves_per_temperature; ++m) {
      if (stats.evaluations >= options.max_evaluations) break;
      if (options.time_budget_s > 0.0 &&
          timer.seconds() >= options.time_budget_s) {
        break;
      }
      if (controlled && options.control.stop_requested()) break;
      ++stats.proposals;
      auto cand = propose(current, rng);
      if (!cand) continue;
      const double cand_cost = cost(*cand);
      ++stats.evaluations;
      const double delta = cand_cost - current_cost;
      if (delta <= 0.0 || rng.uniform() < std::exp(-delta / t)) {
        current = std::move(*cand);
        current_cost = cand_cost;
        ++stats.accepted;
        if (hooks.on_accept) hooks.on_accept();
        if (current_cost < best_cost) {
          best = current;
          best_cost = current_cost;
        }
      } else if (hooks.on_reject) {
        hooks.on_reject();
      }
    }
    stats.best_cost_history.push_back(best_cost);
    if (stats.evaluations >= options.max_evaluations) break;
    if (options.time_budget_s > 0.0 &&
        timer.seconds() >= options.time_budget_s) {
      break;
    }
    if (controlled && options.control.stop_requested()) break;
    t *= options.cooling;
  }

  if (controlled) {
    stats.stop_reason = options.control.stop_reason();
    if (stats.degraded()) RLPLAN_COUNTER_INC("robust.degraded");
  }
  stats.final_temperature = t;
  stats.seconds = timer.seconds();
  return best;
}

}  // namespace rlplan::sa
