#include "thermal/grid_solver.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "robust/fault.h"
#include "util/log.h"
#include "util/timer.h"

namespace rlplan::thermal {

ThermalField::ThermalField(std::size_t layers, GridDims dims,
                           std::vector<double> temps_c)
    : layers_(layers), dims_(dims), temps_c_(std::move(temps_c)) {}

double ThermalField::layer_max(std::size_t layer) const {
  double m = temps_c_.at(layer * dims_.cells());
  for (std::size_t i = 0; i < dims_.cells(); ++i) {
    m = std::max(m, temps_c_[layer * dims_.cells() + i]);
  }
  return m;
}

GridThermalSolver::GridThermalSolver(const LayerStack& stack,
                                     GridSolverConfig config)
    : stack_(&stack), config_(config) {
  stack.validate();
}

ThermalResult GridThermalSolver::solve(const ChipletSystem& system,
                                       const Floorplan& floorplan) {
  return solve_impl(system, floorplan, nullptr);
}

ThermalResult GridThermalSolver::solve_with_field(const ChipletSystem& system,
                                                  const Floorplan& floorplan,
                                                  ThermalField& field_out) {
  return solve_impl(system, floorplan, &field_out);
}

ThermalResult GridThermalSolver::solve_impl(const ChipletSystem& system,
                                            const Floorplan& floorplan,
                                            ThermalField* field_out) {
  const Timer timer;
  ThermalGridModel model(*stack_, system, config_.dims);
  const SparseMatrix g = model.build_conductance(floorplan);
  const std::vector<double> p = model.build_power(floorplan);

  std::vector<double> dt(model.num_nodes(), 0.0);
  if (config_.warm_start && last_solution_.size() == dt.size()) {
    dt = last_solution_;
  }

  ThermalResult result;
  result.cg = conjugate_gradient(g, p, dt, config_.cg);
  ++num_solves_;
  if (robust::fault_point("solver_diverge")) result.cg.converged = false;
  if (!result.cg.converged) {
    // Graceful degradation: retry once from a cold start (the warm-start
    // iterate may be the problem) with a 4x iteration budget, and report the
    // residual instead of silently returning a garbage field. The fault site
    // above only flips the flag, so under injection this path re-derives the
    // same converged solution from zero.
    RLPLAN_COUNTER_INC("thermal.cg_fallbacks");
    std::fill(dt.begin(), dt.end(), 0.0);
    CgOptions fallback = config_.cg;
    fallback.max_iterations *= 4;
    result.cg = conjugate_gradient(g, p, dt, fallback);
    ++num_solves_;
    ++result.fallback_resolves;
    if (!result.cg.converged) {
      result.degraded = true;
      RLPLAN_COUNTER_INC("robust.degraded");
      RLPLAN_WARN << "grid solver: CG failed to converge after fallback "
                  << "(relative residual " << result.cg.relative_residual
                  << " after " << result.cg.iterations << " iterations)";
    }
  }
  if (config_.warm_start) last_solution_ = dt;

  const double ambient = stack_->ambient_c();
  std::vector<double> temps_c(dt.size());
  for (std::size_t i = 0; i < dt.size(); ++i) temps_c[i] = ambient + dt[i];

  const ThermalField field(stack_->num_layers(), config_.dims,
                           std::move(temps_c));
  const std::size_t chiplet_layer = stack_->chiplet_layer_index();
  result.chiplet_temp_c =
      chiplet_peak_temps(field, model, system, floorplan, chiplet_layer);

  result.max_temp_c = ambient;
  for (double t : result.chiplet_temp_c) {
    result.max_temp_c = std::max(result.max_temp_c, t);
  }
  result.solve_seconds = timer.seconds();
  if (field_out != nullptr) *field_out = field;
  return result;
}

std::vector<double> chiplet_peak_temps(const ThermalField& field,
                                       const ThermalGridModel& model,
                                       const ChipletSystem& system,
                                       const Floorplan& floorplan,
                                       std::size_t chiplet_layer) {
  const GridDims dims = model.dims();
  std::vector<double> temps(system.num_chiplets(),
                            field.raw().empty() ? 0.0 : 0.0);
  for (std::size_t i = 0; i < system.num_chiplets(); ++i) {
    if (!floorplan.is_placed(i)) {
      temps[i] = field.at(chiplet_layer, 0, 0);  // ~ambient baseline
      continue;
    }
    const Rect r = floorplan.rect_of(i);
    double peak = -1e300;
    bool found = false;
    for (std::size_t row = 0; row < dims.rows; ++row) {
      for (std::size_t col = 0; col < dims.cols; ++col) {
        if (model.coverage_fraction(row, col, r) < 0.5) continue;
        peak = std::max(peak, field.at(chiplet_layer, row, col));
        found = true;
      }
    }
    if (!found) {
      // Footprint smaller than one cell: take the cell containing the center.
      const Point c = r.center();
      const double cw =
          system.interposer_width() / static_cast<double>(dims.cols);
      const double ch =
          system.interposer_height() / static_cast<double>(dims.rows);
      const auto col = static_cast<std::size_t>(std::clamp(
          std::floor(c.x / cw), 0.0, static_cast<double>(dims.cols - 1)));
      const auto row = static_cast<std::size_t>(std::clamp(
          std::floor(c.y / ch), 0.0, static_cast<double>(dims.rows - 1)));
      peak = field.at(chiplet_layer, row, col);
    }
    temps[i] = peak;
  }
  return temps;
}

}  // namespace rlplan::thermal
