#include "thermal/sparse.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace rlplan::thermal {

void SparseMatrix::add(std::size_t r, std::size_t c, double v) {
  if (finalized_) {
    throw std::logic_error("SparseMatrix::add after finalize");
  }
  assert(r < n_ && c < n_);
  trip_row_.push_back(r);
  trip_col_.push_back(c);
  trip_val_.push_back(v);
}

void SparseMatrix::stamp_conductance(std::size_t a, std::size_t b, double g) {
  add(a, a, g);
  add(b, b, g);
  add(a, b, -g);
  add(b, a, -g);
}

void SparseMatrix::finalize() {
  if (finalized_) return;

  // Sort triplets by (row, col), then merge duplicates into CSR arrays.
  std::vector<std::size_t> order(trip_row_.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [this](std::size_t i, std::size_t j) {
    if (trip_row_[i] != trip_row_[j]) return trip_row_[i] < trip_row_[j];
    return trip_col_[i] < trip_col_[j];
  });

  col_idx_.clear();
  values_.clear();
  col_idx_.reserve(trip_row_.size());
  values_.reserve(trip_row_.size());
  std::vector<std::size_t> entry_row;
  entry_row.reserve(trip_row_.size());

  for (const std::size_t i : order) {
    const std::size_t r = trip_row_[i];
    const std::size_t c = trip_col_[i];
    if (!entry_row.empty() && entry_row.back() == r && col_idx_.back() == c) {
      values_.back() += trip_val_[i];
    } else {
      entry_row.push_back(r);
      col_idx_.push_back(c);
      values_.push_back(trip_val_[i]);
    }
  }

  row_ptr_.assign(n_ + 1, 0);
  for (const std::size_t r : entry_row) ++row_ptr_[r + 1];
  for (std::size_t r = 0; r < n_; ++r) row_ptr_[r + 1] += row_ptr_[r];

  trip_row_.clear();
  trip_row_.shrink_to_fit();
  trip_col_.clear();
  trip_col_.shrink_to_fit();
  trip_val_.clear();
  trip_val_.shrink_to_fit();
  finalized_ = true;
}

void SparseMatrix::multiply(std::span<const double> x,
                            std::span<double> y) const {
  assert(finalized_);
  assert(x.size() == n_ && y.size() == n_);
  for (std::size_t r = 0; r < n_; ++r) {
    double acc = 0.0;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      acc += values_[k] * x[col_idx_[k]];
    }
    y[r] = acc;
  }
}

std::vector<double> SparseMatrix::diagonal() const {
  assert(finalized_);
  std::vector<double> d(n_, 0.0);
  for (std::size_t r = 0; r < n_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      if (col_idx_[k] == r) {
        d[r] = values_[k];
        break;
      }
    }
  }
  return d;
}

double SparseMatrix::at(std::size_t r, std::size_t c) const {
  assert(finalized_);
  const auto begin = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r]);
  const auto end = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r + 1]);
  const auto it = std::lower_bound(begin, end, c);
  if (it == end || *it != c) return 0.0;
  return values_[static_cast<std::size_t>(it - col_idx_.begin())];
}

double SparseMatrix::symmetry_error() const {
  assert(finalized_);
  double worst = 0.0;
  for (std::size_t r = 0; r < n_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const std::size_t c = col_idx_[k];
      worst = std::max(worst, std::abs(values_[k] - at(c, r)));
    }
  }
  return worst;
}

}  // namespace rlplan::thermal
