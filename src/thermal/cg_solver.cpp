#include "thermal/cg_solver.h"

#include <cassert>
#include <cmath>

namespace rlplan::thermal {

namespace {
double dot(std::span<const double> a, std::span<const double> b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}
}  // namespace

CgResult conjugate_gradient(const SparseMatrix& a, std::span<const double> b,
                            std::span<double> x, const CgOptions& options) {
  const std::size_t n = a.rows();
  assert(b.size() == n && x.size() == n);

  const std::vector<double> diag = a.diagonal();
  std::vector<double> inv_diag(n);
  for (std::size_t i = 0; i < n; ++i) {
    inv_diag[i] = diag[i] != 0.0 ? 1.0 / diag[i] : 1.0;
  }

  std::vector<double> r(n), z(n), p(n), ap(n);
  a.multiply(x, ap);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - ap[i];

  const double b_norm = std::sqrt(dot(b, b));
  const double stop = options.tolerance * (b_norm > 0.0 ? b_norm : 1.0);

  CgResult result;
  double r_norm = std::sqrt(dot(r, r));
  if (r_norm <= stop) {
    result.converged = true;
    result.relative_residual = b_norm > 0.0 ? r_norm / b_norm : 0.0;
    return result;
  }

  for (std::size_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
  p = z;
  double rz = dot(r, z);

  for (std::size_t iter = 1; iter <= options.max_iterations; ++iter) {
    a.multiply(p, ap);
    const double p_ap = dot(p, ap);
    if (p_ap <= 0.0) break;  // loss of positive-definiteness (numerical)
    const double alpha = rz / p_ap;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    r_norm = std::sqrt(dot(r, r));
    result.iterations = iter;
    if (r_norm <= stop) {
      result.converged = true;
      break;
    }
    for (std::size_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
    const double rz_next = dot(r, z);
    const double beta = rz_next / rz;
    rz = rz_next;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }

  result.relative_residual = b_norm > 0.0 ? r_norm / b_norm : r_norm;
  return result;
}

}  // namespace rlplan::thermal
