#include "thermal/incremental.h"

#include <algorithm>
#include <span>
#include <stdexcept>

#include "obs/metrics.h"

namespace rlplan::thermal {

IncrementalThermalState::IncrementalThermalState(const FastThermalModel& model,
                                                 const ChipletSystem& system)
    : model_(&model), system_(&system) {
  if (model.empty()) {
    throw std::invalid_argument(
        "IncrementalThermalState: model has no tables");
  }
  const std::size_t n = system.num_chiplets();
  if (n > kMaxChiplets) {
    throw std::invalid_argument(
        "IncrementalThermalState: system exceeds kMaxChiplets");
  }
  probe_count_ = static_cast<std::size_t>(model.probe_count());
  dies_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    dies_[i].power = system.chiplet(i).power;
  }
  pair_.assign(n * n * probe_count_, 0.0);
}

void IncrementalThermalState::apply_place(std::size_t i, const Placement& p) {
  DieCache& die = dies_[i];
  if (!die.placement) ++num_placed_;
  die.placement = p;
  const Chiplet& chip = system_->chiplet(i);
  const double w = p.rotated ? chip.height : chip.width;
  const double h = p.rotated ? chip.width : chip.height;
  die.rect = Rect{p.position.x, p.position.y, w, h};
  model_->receiver_probes(die.rect, die.probes, die.shapes);
  die.self_rise = model_->self_rise(chip, die.rect);
  die.corr = model_->center_correction(die.rect.center());
  if (die.power > 0.0) model_->source_points(die.rect, die.subs);

  // Refresh the couplings involving die i, in both directions.
  for (std::size_t j = 0; j < dies_.size(); ++j) {
    if (j == i || !dies_[j].placement) continue;
    const DieCache& other = dies_[j];
    if (other.power > 0.0) {
      // Source j -> receiver i.
      const double corr = model_->pair_correction(other.corr, die.corr);
      double* row = pair_row(i, j);
      for (std::size_t p_idx = 0; p_idx < probe_count_; ++p_idx) {
        row[p_idx] = model_->source_contribution(
            std::span<const Point>(other.subs), other.power,
            die.probes[p_idx], corr);
      }
      ++pair_updates_;
    }
    if (die.power > 0.0) {
      // Source i -> receiver j.
      const double corr = model_->pair_correction(die.corr, other.corr);
      double* row = pair_row(j, i);
      for (std::size_t p_idx = 0; p_idx < probe_count_; ++p_idx) {
        row[p_idx] = model_->source_contribution(
            std::span<const Point>(die.subs), die.power, other.probes[p_idx],
            corr);
      }
      ++pair_updates_;
    }
  }
}

void IncrementalThermalState::apply_remove(std::size_t i) {
  if (dies_[i].placement) {
    dies_[i].placement.reset();
    --num_placed_;
  }
  // Cached couplings and geometry stay behind: they are only read for placed
  // dies, and re-placing i recomputes them.
}

void IncrementalThermalState::place(std::size_t i, const Placement& p) {
  if (i >= dies_.size()) {
    throw std::out_of_range("IncrementalThermalState: chiplet index");
  }
  if (dies_[i].placement == p) return;
  JournalEntry entry;
  entry.die = i;
  entry.prev_cache = dies_[i];
  // Placing overwrites the die's couplings with every placed peer; snapshot
  // them so undo() is a copy, not a kernel recomputation. Unconditional even
  // for a first-time place: an earlier remove(i) in the same transaction
  // still needs the pre-place rows back when it is undone.
  for (std::size_t j = 0; j < dies_.size(); ++j) {
    if (j == i || !dies_[j].placement) continue;
    entry.peers.push_back(j);
    const double* ij = pair_row(i, j);
    const double* ji = pair_row(j, i);
    entry.saved_rows.insert(entry.saved_rows.end(), ij, ij + probe_count_);
    entry.saved_rows.insert(entry.saved_rows.end(), ji, ji + probe_count_);
  }
  journal_.push_back(std::move(entry));
  apply_place(i, p);
}

void IncrementalThermalState::remove(std::size_t i) {
  if (i >= dies_.size()) {
    throw std::out_of_range("IncrementalThermalState: chiplet index");
  }
  if (!dies_[i].placement) return;
  // Removal leaves every pair row untouched (and nothing writes rows of an
  // unplaced die), so the cache snapshot alone restores it.
  JournalEntry entry;
  entry.die = i;
  entry.prev_cache = dies_[i];
  journal_.push_back(std::move(entry));
  apply_remove(i);
}

void IncrementalThermalState::clear() {
  for (std::size_t i = 0; i < dies_.size(); ++i) remove(i);
}

void IncrementalThermalState::sync(const Floorplan& fp) {
  if (fp.num_chiplets() != dies_.size()) {
    throw std::invalid_argument(
        "IncrementalThermalState: floorplan/system size mismatch");
  }
  for (std::size_t i = 0; i < dies_.size(); ++i) {
    const auto& target = fp.placement(i);
    if (target == dies_[i].placement) continue;
    if (target) {
      place(i, *target);
    } else {
      remove(i);
    }
  }
}

void IncrementalThermalState::undo() {
  // Restore snapshots newest-first: at each step the placed set equals what
  // it was right after the corresponding forward mutation, so the journaled
  // peer rows land exactly where apply_place() overwrote them.
  while (!journal_.empty()) {
    JournalEntry entry = std::move(journal_.back());
    journal_.pop_back();
    const bool placed_now = dies_[entry.die].placement.has_value();
    const bool placed_before = entry.prev_cache.placement.has_value();
    if (placed_now && !placed_before) --num_placed_;
    if (!placed_now && placed_before) ++num_placed_;
    dies_[entry.die] = std::move(entry.prev_cache);
    const double* saved = entry.saved_rows.data();
    for (const std::size_t j : entry.peers) {
      std::copy(saved, saved + probe_count_, pair_row(entry.die, j));
      saved += probe_count_;
      std::copy(saved, saved + probe_count_, pair_row(j, entry.die));
      saved += probe_count_;
    }
  }
}

double IncrementalThermalState::receiver_peak_rise(std::size_t i) const {
  const DieCache& die = dies_[i];
  double worst = 0.0;
  for (std::size_t p_idx = 0; p_idx < probe_count_; ++p_idx) {
    double mutual = 0.0;
    // Source-index order matches the batch evaluator's inner loop, so the
    // accumulated sum is the identical sequence of additions.
    for (std::size_t j = 0; j < dies_.size(); ++j) {
      if (j == i || !dies_[j].placement || dies_[j].power <= 0.0) continue;
      mutual += pair_row(i, j)[p_idx];
    }
    worst = std::max(worst, die.self_rise * die.shapes[p_idx] + mutual);
  }
  return worst;
}

double IncrementalThermalState::max_temperature_c() const {
  double max_temp = model_->ambient_c();
  for (std::size_t i = 0; i < dies_.size(); ++i) {
    if (!dies_[i].placement) continue;
    max_temp =
        std::max(max_temp, model_->ambient_c() + receiver_peak_rise(i));
  }
  return max_temp;
}

double IncrementalThermalState::chiplet_temperature_c(std::size_t i) const {
  if (!dies_.at(i).placement) return model_->ambient_c();
  return model_->ambient_c() + receiver_peak_rise(i);
}

void IncrementalThermalState::temperatures(std::vector<double>& out) const {
  out.assign(dies_.size(), model_->ambient_c());
  for (std::size_t i = 0; i < dies_.size(); ++i) {
    if (dies_[i].placement) {
      out[i] = model_->ambient_c() + receiver_peak_rise(i);
    }
  }
}

// ---------------------------------------------------------------------------

double IncrementalFastModelEvaluator::fingerprint(
    const ChipletSystem& system) {
  // Cheap content hash so a *different* system recycled at the same address
  // (common in test loops) forces a session rebuild instead of silently
  // reading stale per-die caches.
  double fp = static_cast<double>(system.num_chiplets()) +
              1e-3 * system.interposer_width() +
              1e-6 * system.interposer_height();
  for (const Chiplet& c : system.chiplets()) {
    fp = fp * 1.0000001 + c.width * 0.13 + c.height * 0.29 + c.power * 0.57;
  }
  return fp;
}

bool IncrementalFastModelEvaluator::ensure_session(
    const ChipletSystem& system) {
  if (system.num_chiplets() > IncrementalThermalState::kMaxChiplets) {
    return false;
  }
  const double fp = fingerprint(system);
  if (!state_ || session_system_ != &system || session_fingerprint_ != fp) {
    state_.emplace(model_, system);
    session_system_ = &system;
    session_fingerprint_ = fp;
  }
  return true;
}

void IncrementalFastModelEvaluator::notify_reset(const ChipletSystem& system) {
  if (!ensure_session(system)) return;
  state_->commit();
  state_->clear();
  state_->commit();
}

void IncrementalFastModelEvaluator::notify_place(const ChipletSystem& system,
                                                 std::size_t i,
                                                 const Placement& p) {
  if (!ensure_session(system)) return;
  state_->place(i, p);
}

void IncrementalFastModelEvaluator::notify_remove(std::size_t i) {
  if (state_) state_->remove(i);
}

void IncrementalFastModelEvaluator::commit() {
  // Counters only on the incremental protocol: a query costs ~1 µs, so a
  // trace span (~50 ns) would breach the <2% overhead budget; the SA/RL
  // layers above carry the spans.
  RLPLAN_COUNTER_INC("thermal.incremental.commits");
  if (state_) state_->commit();
}

void IncrementalFastModelEvaluator::rollback() {
  RLPLAN_COUNTER_INC("thermal.incremental.rollbacks");
  if (state_) state_->undo();
}

double IncrementalFastModelEvaluator::incremental_max_temperature(
    const ChipletSystem& system, const Floorplan& floorplan) {
  if (!ensure_session(system)) {
    // Oversized system: dense pair cache not worth it, batch evaluate.
    RLPLAN_COUNTER_INC("thermal.incremental.fallback_full_evals");
    return max_temperature(system, floorplan);
  }
  RLPLAN_COUNTER_INC("thermal.incremental.queries");
  state_->sync(floorplan);
  if (obs::metrics_enabled()) {
    // Cache effectiveness: rows actually recomputed since the last query vs
    // n per query for a full rebuild.
    const long updates = state_->pair_updates();
    // A session rebuild resets the state's counter; restart the baseline.
    RLPLAN_COUNTER_ADD(
        "thermal.incremental.pair_updates",
        updates >= last_pair_updates_ ? updates - last_pair_updates_ : updates);
    last_pair_updates_ = updates;
  }
  ++count_;
  ++incremental_queries_;
  return state_->max_temperature_c();
}

}  // namespace rlplan::thermal
