#include "thermal/incremental.h"

#include <algorithm>
#include <span>
#include <stdexcept>

#include "obs/metrics.h"
#include "thermal/soa_kernels.h"

namespace rlplan::thermal {

util::SimdLevel IncrementalThermalState::dispatch_level() {
  return soa_dispatch_level();
}

util::SimdLevel IncrementalThermalState::set_simd_level(
    util::SimdLevel level) {
  // Non-uniform mutual tables (hand-built; the model resamples its own at
  // construction) have no LUT coordinate transform — they always take the
  // exact scalar path.
  ops_ = k_.uniform ? soa_kernel_ops(level) : nullptr;
  simd_level_ = ops_ != nullptr ? level : util::SimdLevel::kScalar;
  set_patched_query(ops_ != nullptr);
  return simd_level_;
}

void IncrementalThermalState::set_patched_query(bool on) {
  patched_query_ = on;
  // Any materialized sums may not match the new mode's row provenance;
  // rebuild lazily at the next query.
  sums_valid_ = false;
  patch_epoch_ = 0;
}

IncrementalThermalState::IncrementalThermalState(const FastThermalModel& model,
                                                 const ChipletSystem& system)
    : model_(&model), system_(&system) {
  if (model.empty()) {
    throw std::invalid_argument(
        "IncrementalThermalState: model has no tables");
  }
  const std::size_t n = system.num_chiplets();
  if (n > kMaxChiplets) {
    throw std::invalid_argument(
        "IncrementalThermalState: system exceeds kMaxChiplets");
  }
  k_.bind(model);
  probe_count_ = k_.pc;
  dies_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    dies_[i].power = system.chiplet(i).power;
  }
  pair_.assign(n * n * probe_count_, 0.0);
  probe_x_.assign(n * probe_count_, 0.0);
  probe_y_.assign(n * probe_count_, 0.0);
  src_x_.assign(n * k_.ss * k_.img, 0.0);
  src_y_.assign(n * k_.ss * k_.img, 0.0);
  src_scale_.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    src_scale_[i] = dies_[i].power / static_cast<double>(k_.ss);
  }
  mutual_sum_.assign(n * probe_count_, 0.0);
  set_simd_level(util::active_simd_level());
}

void IncrementalThermalState::refresh_die_blocks(std::size_t i) {
  const DieCache& die = dies_[i];
  double* px = probe_x_.data() + i * probe_count_;
  double* py = probe_y_.data() + i * probe_count_;
  for (std::size_t p = 0; p < die.probes.size(); ++p) {
    px[p] = die.probes[p].x;
    py[p] = die.probes[p].y;
  }
  if (die.power <= 0.0) return;
  const std::size_t pts = k_.ss * k_.img;
  double* xs = src_x_.data() + i * pts;
  double* ys = src_y_.data() + i * pts;
  for (const Point& s : die.subs) {
    k_.expand_source_point(s, xs, ys);
    xs += k_.img;
    ys += k_.img;
  }
}

void IncrementalThermalState::compute_pair_row_kernel(std::size_t receiver,
                                                      std::size_t source) {
  const std::size_t pts = k_.ss * k_.img;
  const double* px = probe_x_.data() + receiver * probe_count_;
  const double* py = probe_y_.data() + receiver * probe_count_;
  const double* sx = src_x_.data() + source * pts;
  const double* sy = src_y_.data() + source * pts;
  double* row = pair_row(receiver, source);
  if (!k_.use_images) {
    ops_->pair_raw(px, py, probe_count_, sx, sy, pts, k_.mutual.front,
                   k_.mutual.back, k_.mutual.inv_step, k_.coord_cap,
                   k_.lut_raw.data(), row);
  } else if (k_.unit_weights) {
    ops_->pair_unit(px, py, probe_count_, sx, sy, pts, k_.mutual.front,
                    k_.mutual.back, k_.mutual.inv_step, k_.coord_cap,
                    k_.lut_img.data(), row);
  } else {
    ops_->pair_weighted(px, py, probe_count_, sx, sy, pts, k_.mutual.front,
                        k_.mutual.back, k_.mutual.inv_step, k_.coord_cap,
                        k_.lut_img.data(), k_.w_flat.data(), row);
  }
  // Same multiply order as source_contribution(): kernel subtotal plus the
  // per-sub-source floor, times power / ss, times the pair correction. Only
  // the floor association and within-block lane order differ from the
  // scalar path — the documented ulp-level envelope.
  const double corr =
      model_->pair_correction(dies_[source].corr, dies_[receiver].corr);
  const double floor_per_src = static_cast<double>(k_.ss) * k_.floor;
  const double scale = src_scale_[source];
  for (std::size_t p = 0; p < probe_count_; ++p) {
    double m = k_.use_images ? floor_per_src + row[p] : row[p];
    m *= scale;
    m *= corr;
    row[p] = m;
  }
}

void IncrementalThermalState::patch_source_terms(std::size_t i, double sign) {
  // sign is exactly +-1.0: sign * row is the value or its negation bit-for-
  // bit, so add/subtract patches are exact inverses of each other.
  for (std::size_t j = 0; j < dies_.size(); ++j) {
    if (j == i || !dies_[j].placement) continue;
    const double* row = pair_row(j, i);
    double* sum = mutual_sum_.data() + j * probe_count_;
    for (std::size_t p = 0; p < probe_count_; ++p) {
      sum[p] += sign * row[p];
    }
  }
}

void IncrementalThermalState::rebuild_receiver_sum(std::size_t i) const {
  double* sum = mutual_sum_.data() + i * probe_count_;
  std::fill(sum, sum + probe_count_, 0.0);
  // Ascending source order, like receiver_peak_rise(): per probe the adds
  // happen in the identical sequence, so the rebuilt sums are deterministic
  // and independent of mutation history.
  for (std::size_t j = 0; j < dies_.size(); ++j) {
    if (j == i || !dies_[j].placement || dies_[j].power <= 0.0) continue;
    const double* row = pair_row(i, j);
    for (std::size_t p = 0; p < probe_count_; ++p) {
      sum[p] += row[p];
    }
  }
}

void IncrementalThermalState::ensure_sums() const {
  // Patching drifts from the fresh ascending re-summation by ~1 ulp of the
  // sum magnitude per move; a full deterministic re-reduce on the first
  // query and every kResumInterval patches bounds it to ~1e-13 C.
  if (sums_valid_ && patch_epoch_ < kResumInterval) return;
  for (std::size_t i = 0; i < dies_.size(); ++i) {
    if (dies_[i].placement) rebuild_receiver_sum(i);
  }
  sums_valid_ = true;
  patch_epoch_ = 0;
  ++sum_resums_;
}

void IncrementalThermalState::apply_place(std::size_t i, const Placement& p) {
  DieCache& die = dies_[i];
  // A move invalidates i's source terms inside every other placed
  // receiver's partial sums; subtract the cached rows before they are
  // overwritten below.
  if (sums_active() && die.placement && die.power > 0.0) {
    patch_source_terms(i, -1.0);
  }
  if (!die.placement) ++num_placed_;
  die.placement = p;
  const Chiplet& chip = system_->chiplet(i);
  const double w = p.rotated ? chip.height : chip.width;
  const double h = p.rotated ? chip.width : chip.height;
  die.rect = Rect{p.position.x, p.position.y, w, h};
  model_->receiver_probes(die.rect, die.probes, die.shapes);
  die.self_rise = model_->self_rise(chip, die.rect);
  die.corr = model_->center_correction(die.rect.center());
  if (die.power > 0.0) model_->source_points(die.rect, die.subs);
  refresh_die_blocks(i);

  // Refresh the couplings involving die i, in both directions: one
  // kernel-row recompute per direction per placed peer (pair_updates_
  // counts rows, never per-probe work, in both tiers).
  for (std::size_t j = 0; j < dies_.size(); ++j) {
    if (j == i || !dies_[j].placement) continue;
    const DieCache& other = dies_[j];
    if (other.power > 0.0) {
      // Source j -> receiver i.
      if (ops_ != nullptr) {
        compute_pair_row_kernel(i, j);
      } else {
        const double corr = model_->pair_correction(other.corr, die.corr);
        double* row = pair_row(i, j);
        for (std::size_t p_idx = 0; p_idx < probe_count_; ++p_idx) {
          row[p_idx] = model_->source_contribution(
              std::span<const Point>(other.subs), other.power,
              die.probes[p_idx], corr);
        }
      }
      ++pair_updates_;
    }
    if (die.power > 0.0) {
      // Source i -> receiver j.
      if (ops_ != nullptr) {
        compute_pair_row_kernel(j, i);
      } else {
        const double corr = model_->pair_correction(die.corr, other.corr);
        double* row = pair_row(j, i);
        for (std::size_t p_idx = 0; p_idx < probe_count_; ++p_idx) {
          row[p_idx] = model_->source_contribution(
              std::span<const Point>(die.subs), die.power, other.probes[p_idx],
              corr);
        }
      }
      ++pair_updates_;
    }
  }

  if (sums_active()) {
    // Patch i's new source terms into the peers' sums and re-sum i's own
    // row fresh (its receiver terms all changed anyway).
    if (die.power > 0.0) patch_source_terms(i, 1.0);
    rebuild_receiver_sum(i);
    ++patch_epoch_;
    ++sum_patches_;
  }
}

void IncrementalThermalState::apply_remove(std::size_t i) {
  if (dies_[i].placement) {
    if (sums_active() && dies_[i].power > 0.0) patch_source_terms(i, -1.0);
    dies_[i].placement.reset();
    --num_placed_;
    if (sums_active()) {
      ++patch_epoch_;
      ++sum_patches_;
    }
  }
  // Cached couplings and geometry stay behind: they are only read for placed
  // dies, and re-placing i recomputes them.
}

void IncrementalThermalState::place(std::size_t i, const Placement& p) {
  if (i >= dies_.size()) {
    throw std::out_of_range("IncrementalThermalState: chiplet index");
  }
  if (dies_[i].placement == p) return;
  JournalEntry entry;
  entry.die = i;
  entry.prev_cache = dies_[i];
  // Placing overwrites the die's couplings with every placed peer; snapshot
  // them so undo() is a copy, not a kernel recomputation. Unconditional even
  // for a first-time place: an earlier remove(i) in the same transaction
  // still needs the pre-place rows back when it is undone.
  for (std::size_t j = 0; j < dies_.size(); ++j) {
    if (j == i || !dies_[j].placement) continue;
    entry.peers.push_back(j);
    const double* ij = pair_row(i, j);
    const double* ji = pair_row(j, i);
    entry.saved_rows.insert(entry.saved_rows.end(), ij, ij + probe_count_);
    entry.saved_rows.insert(entry.saved_rows.end(), ji, ji + probe_count_);
  }
  entry.sums_were_valid = sums_active();
  entry.prev_patch_epoch = patch_epoch_;
  if (entry.sums_were_valid) entry.prev_sums = mutual_sum_;
  journal_.push_back(std::move(entry));
  apply_place(i, p);
}

void IncrementalThermalState::remove(std::size_t i) {
  if (i >= dies_.size()) {
    throw std::out_of_range("IncrementalThermalState: chiplet index");
  }
  if (!dies_[i].placement) return;
  // Removal leaves every pair row untouched (and nothing writes rows of an
  // unplaced die), so the cache snapshot alone restores it.
  JournalEntry entry;
  entry.die = i;
  entry.prev_cache = dies_[i];
  entry.sums_were_valid = sums_active();
  entry.prev_patch_epoch = patch_epoch_;
  if (entry.sums_were_valid) entry.prev_sums = mutual_sum_;
  journal_.push_back(std::move(entry));
  apply_remove(i);
}

void IncrementalThermalState::clear() {
  for (std::size_t i = 0; i < dies_.size(); ++i) remove(i);
}

void IncrementalThermalState::sync(const Floorplan& fp) {
  if (fp.num_chiplets() != dies_.size()) {
    throw std::invalid_argument(
        "IncrementalThermalState: floorplan/system size mismatch");
  }
  for (std::size_t i = 0; i < dies_.size(); ++i) {
    const auto& target = fp.placement(i);
    if (target == dies_[i].placement) continue;
    if (target) {
      place(i, *target);
    } else {
      remove(i);
    }
  }
}

void IncrementalThermalState::undo() {
  // Restore snapshots newest-first: at each step the placed set equals what
  // it was right after the corresponding forward mutation, so the journaled
  // peer rows land exactly where apply_place() overwrote them.
  while (!journal_.empty()) {
    JournalEntry entry = std::move(journal_.back());
    journal_.pop_back();
    const bool placed_now = dies_[entry.die].placement.has_value();
    const bool placed_before = entry.prev_cache.placement.has_value();
    if (placed_now && !placed_before) --num_placed_;
    if (!placed_now && placed_before) ++num_placed_;
    dies_[entry.die] = std::move(entry.prev_cache);
    const double* saved = entry.saved_rows.data();
    for (const std::size_t j : entry.peers) {
      std::copy(saved, saved + probe_count_, pair_row(entry.die, j));
      saved += probe_count_;
      std::copy(saved, saved + probe_count_, pair_row(j, entry.die));
      saved += probe_count_;
    }
    // The SoA blocks mirror the DieCache; blocks of unplaced dies are never
    // read, so restoring them can wait for a future re-place.
    if (dies_[entry.die].placement) refresh_die_blocks(entry.die);
    // Partial sums restore verbatim (bit-exact rollback); the oldest entry
    // wins, which is the state right before the whole transaction.
    if (entry.sums_were_valid) {
      mutual_sum_ = std::move(entry.prev_sums);
      patch_epoch_ = entry.prev_patch_epoch;
      sums_valid_ = true;
    } else {
      sums_valid_ = false;
      patch_epoch_ = 0;
    }
  }
}

double IncrementalThermalState::receiver_peak_rise(std::size_t i) const {
  const DieCache& die = dies_[i];
  double worst = 0.0;
  for (std::size_t p_idx = 0; p_idx < probe_count_; ++p_idx) {
    double mutual = 0.0;
    // Source-index order matches the batch evaluator's inner loop, so the
    // accumulated sum is the identical sequence of additions.
    for (std::size_t j = 0; j < dies_.size(); ++j) {
      if (j == i || !dies_[j].placement || dies_[j].power <= 0.0) continue;
      mutual += pair_row(i, j)[p_idx];
    }
    worst = std::max(worst, die.self_rise * die.shapes[p_idx] + mutual);
  }
  return worst;
}

double IncrementalThermalState::receiver_peak_rise_cached(
    std::size_t i) const {
  const DieCache& die = dies_[i];
  const double* sum = mutual_sum_.data() + i * probe_count_;
  double worst = 0.0;
  for (std::size_t p_idx = 0; p_idx < probe_count_; ++p_idx) {
    worst = std::max(worst, die.self_rise * die.shapes[p_idx] + sum[p_idx]);
  }
  return worst;
}

double IncrementalThermalState::max_temperature_c() const {
  double max_temp = model_->ambient_c();
  if (patched_query_) {
    ensure_sums();
    for (std::size_t i = 0; i < dies_.size(); ++i) {
      if (!dies_[i].placement) continue;
      max_temp = std::max(
          max_temp, model_->ambient_c() + receiver_peak_rise_cached(i));
    }
    return max_temp;
  }
  for (std::size_t i = 0; i < dies_.size(); ++i) {
    if (!dies_[i].placement) continue;
    max_temp =
        std::max(max_temp, model_->ambient_c() + receiver_peak_rise(i));
  }
  return max_temp;
}

double IncrementalThermalState::chiplet_temperature_c(std::size_t i) const {
  if (!dies_.at(i).placement) return model_->ambient_c();
  if (patched_query_) {
    ensure_sums();
    return model_->ambient_c() + receiver_peak_rise_cached(i);
  }
  return model_->ambient_c() + receiver_peak_rise(i);
}

void IncrementalThermalState::temperatures(std::vector<double>& out) const {
  out.assign(dies_.size(), model_->ambient_c());
  if (patched_query_) ensure_sums();
  for (std::size_t i = 0; i < dies_.size(); ++i) {
    if (!dies_[i].placement) continue;
    out[i] = model_->ambient_c() + (patched_query_
                                        ? receiver_peak_rise_cached(i)
                                        : receiver_peak_rise(i));
  }
}

// ---------------------------------------------------------------------------

double IncrementalFastModelEvaluator::fingerprint(
    const ChipletSystem& system) {
  // Cheap content hash so a *different* system recycled at the same address
  // (common in test loops) forces a session rebuild instead of silently
  // reading stale per-die caches.
  double fp = static_cast<double>(system.num_chiplets()) +
              1e-3 * system.interposer_width() +
              1e-6 * system.interposer_height();
  for (const Chiplet& c : system.chiplets()) {
    fp = fp * 1.0000001 + c.width * 0.13 + c.height * 0.29 + c.power * 0.57;
  }
  return fp;
}

bool IncrementalFastModelEvaluator::ensure_session(
    const ChipletSystem& system) {
  if (system.num_chiplets() > IncrementalThermalState::kMaxChiplets) {
    return false;
  }
  const double fp = fingerprint(system);
  if (!state_ || session_system_ != &system || session_fingerprint_ != fp) {
    state_.emplace(model_, system);
    if (forced_level_) state_->set_simd_level(*forced_level_);
    session_system_ = &system;
    session_fingerprint_ = fp;
  }
  return true;
}

void IncrementalFastModelEvaluator::set_simd_level(util::SimdLevel level) {
  forced_level_ = level;
  if (state_) state_->set_simd_level(level);
}

void IncrementalFastModelEvaluator::notify_reset(const ChipletSystem& system) {
  if (!ensure_session(system)) return;
  state_->commit();
  state_->clear();
  state_->commit();
}

void IncrementalFastModelEvaluator::notify_place(const ChipletSystem& system,
                                                 std::size_t i,
                                                 const Placement& p) {
  if (!ensure_session(system)) return;
  state_->place(i, p);
}

void IncrementalFastModelEvaluator::notify_remove(std::size_t i) {
  if (state_) state_->remove(i);
}

void IncrementalFastModelEvaluator::commit() {
  // Counters only on the incremental protocol: a query costs ~1 µs, so a
  // trace span (~50 ns) would breach the <2% overhead budget; the SA/RL
  // layers above carry the spans.
  RLPLAN_COUNTER_INC("thermal.incremental.commits");
  if (state_) state_->commit();
}

void IncrementalFastModelEvaluator::rollback() {
  RLPLAN_COUNTER_INC("thermal.incremental.rollbacks");
  if (state_) state_->undo();
}

double IncrementalFastModelEvaluator::incremental_max_temperature(
    const ChipletSystem& system, const Floorplan& floorplan) {
  if (!ensure_session(system)) {
    // Oversized system: dense pair cache not worth it, batch evaluate.
    RLPLAN_COUNTER_INC("thermal.incremental.fallback_full_evals");
    return max_temperature(system, floorplan);
  }
  RLPLAN_COUNTER_INC("thermal.incremental.queries");
  state_->sync(floorplan);
  if (obs::metrics_enabled()) {
    // Cache effectiveness: coupling ROWS actually recomputed since the last
    // query (kernel-row granularity in both tiers) vs n per query for a
    // full rebuild, plus partial-sum patches on the dispatched query path.
    const long updates = state_->pair_updates();
    // A session rebuild resets the state's counters; restart the baselines.
    RLPLAN_COUNTER_ADD(
        "thermal.incremental.pair_updates",
        updates >= last_pair_updates_ ? updates - last_pair_updates_ : updates);
    last_pair_updates_ = updates;
    const long patches = state_->sum_patches();
    RLPLAN_COUNTER_ADD(
        "thermal.incremental.sum_patches",
        patches >= last_sum_patches_ ? patches - last_sum_patches_ : patches);
    last_sum_patches_ = patches;
  }
  ++count_;
  ++incremental_queries_;
  return state_->max_temperature_c();
}

}  // namespace rlplan::thermal
