// Symmetric sparse matrix in CSR form for the thermal conductance system.
//
// The grid thermal model produces a weighted graph Laplacian plus positive
// diagonal boundary terms — symmetric positive definite — assembled here from
// triplets and consumed by the conjugate-gradient solver.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace rlplan::thermal {

/// Compressed sparse row matrix. Built once from accumulated triplets;
/// duplicate (row, col) entries are summed during finalization.
class SparseMatrix {
 public:
  explicit SparseMatrix(std::size_t n = 0) : n_(n) {}

  std::size_t rows() const { return n_; }
  std::size_t nnz() const { return values_.size(); }
  bool finalized() const { return finalized_; }

  /// Accumulate A[r][c] += v. Only valid before finalize().
  void add(std::size_t r, std::size_t c, double v);

  /// Convenience for conductance stamping: adds the 2x2 block
  ///   [ g -g; -g  g ] at (a, b) — one conductance between nodes a and b.
  void stamp_conductance(std::size_t a, std::size_t b, double g);

  /// Adds g to the diagonal (boundary conductance to ambient).
  void stamp_ground(std::size_t a, double g) { add(a, a, g); }

  /// Sorts, merges duplicates, builds CSR. Idempotent.
  void finalize();

  /// y = A x. Requires finalize(). x.size() == y.size() == rows().
  void multiply(std::span<const double> x, std::span<double> y) const;

  /// Diagonal vector (for Jacobi preconditioning). Requires finalize().
  std::vector<double> diagonal() const;

  /// Entry lookup (O(log nnz_row)); 0 when absent. Requires finalize().
  double at(std::size_t r, std::size_t c) const;

  /// Max |A[r][c] - A[c][r]| over stored entries — symmetry diagnostic.
  double symmetry_error() const;

 private:
  std::size_t n_ = 0;
  bool finalized_ = false;
  // triplet storage before finalize
  std::vector<std::size_t> trip_row_, trip_col_;
  std::vector<double> trip_val_;
  // CSR storage after finalize
  std::vector<std::size_t> row_ptr_, col_idx_;
  std::vector<double> values_;
};

}  // namespace rlplan::thermal
