#include "thermal/resistance_table.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "obs/trace.h"

namespace rlplan::thermal {

namespace table_detail {

void check_axis(const std::vector<double>& axis, const std::string& name) {
  if (axis.size() < 2) {
    throw std::invalid_argument("resistance table axis '" + name +
                                "' needs >= 2 entries");
  }
  for (std::size_t i = 1; i < axis.size(); ++i) {
    if (axis[i] <= axis[i - 1]) {
      throw std::invalid_argument("resistance table axis '" + name +
                                  "' must be strictly increasing");
    }
  }
}

std::size_t segment_index(const std::vector<double>& axis, double x) {
  if (x <= axis.front()) return 0;
  if (x >= axis.back()) return axis.size() - 2;
  const auto it = std::upper_bound(axis.begin(), axis.end(), x);
  return static_cast<std::size_t>(it - axis.begin()) - 1;
}

double uniform_inv_step(const std::vector<double>& axis) {
  const double step = (axis.back() - axis.front()) /
                      static_cast<double>(axis.size() - 1);
  if (!(step > 0.0)) return 0.0;
  // Tolerate only rounding-level deviation: a wrong segment pick near a knot
  // then costs O(tolerance * slope), far below every consumer's precision.
  const double tol = 1e-12 * step;
  for (std::size_t i = 1; i < axis.size(); ++i) {
    if (std::abs((axis[i] - axis[i - 1]) - step) > tol) return 0.0;
  }
  return 1.0 / step;
}

std::size_t segment_index_fast(const std::vector<double>& axis,
                               double inv_step, double x) {
  if (inv_step > 0.0) {
    const double t = (x - axis.front()) * inv_step;
    const auto i = static_cast<std::size_t>(std::max(t, 0.0));
    return std::min(i, axis.size() - 2);
  }
  return segment_index(axis, x);
}

}  // namespace table_detail

SelfResistanceTable::SelfResistanceTable(
    std::vector<double> widths, std::vector<double> heights,
    std::vector<std::vector<double>> values)
    : widths_(std::move(widths)),
      heights_(std::move(heights)),
      values_(std::move(values)) {
  table_detail::check_axis(widths_, "widths");
  table_detail::check_axis(heights_, "heights");
  if (values_.size() != widths_.size()) {
    throw std::invalid_argument("self table: values rows != widths");
  }
  for (const auto& row : values_) {
    if (row.size() != heights_.size()) {
      throw std::invalid_argument("self table: values cols != heights");
    }
  }
  width_inv_step_ = table_detail::uniform_inv_step(widths_);
  height_inv_step_ = table_detail::uniform_inv_step(heights_);
}

double SelfResistanceTable::lookup(double width_mm, double height_mm) const {
  if (empty()) {
    throw std::logic_error("SelfResistanceTable: lookup on empty table");
  }
  const double w = std::clamp(width_mm, widths_.front(), widths_.back());
  const double h = std::clamp(height_mm, heights_.front(), heights_.back());
  const std::size_t i =
      table_detail::segment_index_fast(widths_, width_inv_step_, w);
  const std::size_t j =
      table_detail::segment_index_fast(heights_, height_inv_step_, h);
  const double tw = (w - widths_[i]) / (widths_[i + 1] - widths_[i]);
  const double th = (h - heights_[j]) / (heights_[j + 1] - heights_[j]);
  const double v00 = values_[i][j];
  const double v10 = values_[i + 1][j];
  const double v01 = values_[i][j + 1];
  const double v11 = values_[i + 1][j + 1];
  return (1.0 - tw) * (1.0 - th) * v00 + tw * (1.0 - th) * v10 +
         (1.0 - tw) * th * v01 + tw * th * v11;
}

void SelfResistanceTable::save(std::ostream& os) const {
  os << "self_resistance_table v1\n";
  os << widths_.size() << ' ' << heights_.size() << '\n';
  os.precision(17);
  for (double w : widths_) os << w << ' ';
  os << '\n';
  for (double h : heights_) os << h << ' ';
  os << '\n';
  for (const auto& row : values_) {
    for (double v : row) os << v << ' ';
    os << '\n';
  }
}

SelfResistanceTable SelfResistanceTable::load(std::istream& is) {
  std::string tag, version;
  is >> tag >> version;
  if (tag != "self_resistance_table" || version != "v1") {
    throw std::runtime_error("SelfResistanceTable: bad header");
  }
  std::size_t nw = 0, nh = 0;
  is >> nw >> nh;
  std::vector<double> widths(nw), heights(nh);
  for (auto& w : widths) is >> w;
  for (auto& h : heights) is >> h;
  std::vector<std::vector<double>> values(nw, std::vector<double>(nh));
  for (auto& row : values) {
    for (auto& v : row) is >> v;
  }
  if (!is) throw std::runtime_error("SelfResistanceTable: truncated data");
  return SelfResistanceTable(std::move(widths), std::move(heights),
                             std::move(values));
}

MutualResistanceTable::MutualResistanceTable(std::vector<double> distances_mm,
                                             std::vector<double> values)
    : distances_(std::move(distances_mm)), values_(std::move(values)) {
  table_detail::check_axis(distances_, "distances");
  if (values_.size() != distances_.size()) {
    throw std::invalid_argument("mutual table: values size != distances");
  }
  inv_step_ = table_detail::uniform_inv_step(distances_);
}

double MutualResistanceTable::lookup(double distance_mm) const {
  if (empty()) {
    throw std::logic_error("MutualResistanceTable: lookup on empty table");
  }
  const double d =
      std::clamp(distance_mm, distances_.front(), distances_.back());
  const std::size_t i =
      table_detail::segment_index_fast(distances_, inv_step_, d);
  const double t = (d - distances_[i]) / (distances_[i + 1] - distances_[i]);
  return (1.0 - t) * values_[i] + t * values_[i + 1];
}

MutualResistanceTable MutualResistanceTable::resampled_uniform(
    std::size_t max_points) const {
  if (empty()) {
    throw std::logic_error("MutualResistanceTable: resample of empty table");
  }
  if (is_uniform()) return *this;
  RLPLAN_TRACE_SPAN("thermal.resample_uniform");
  double min_gap = distances_.back() - distances_.front();
  for (std::size_t i = 1; i < distances_.size(); ++i) {
    min_gap = std::min(min_gap, distances_[i] - distances_[i - 1]);
  }
  const double span = distances_.back() - distances_.front();
  auto n = static_cast<std::size_t>(std::llround(span / min_gap)) + 1;
  n = std::clamp<std::size_t>(n, distances_.size(), max_points);
  const double step = span / static_cast<double>(n - 1);
  std::vector<double> distances(n);
  std::vector<double> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double d = i + 1 == n
                         ? distances_.back()
                         : distances_.front() + static_cast<double>(i) * step;
    distances[i] = d;
    values[i] = lookup(d);
  }
  return MutualResistanceTable(std::move(distances), std::move(values));
}

void MutualResistanceTable::save(std::ostream& os) const {
  os << "mutual_resistance_table v1\n";
  os << distances_.size() << '\n';
  os.precision(17);
  for (double d : distances_) os << d << ' ';
  os << '\n';
  for (double v : values_) os << v << ' ';
  os << '\n';
}

MutualResistanceTable MutualResistanceTable::load(std::istream& is) {
  std::string tag, version;
  is >> tag >> version;
  if (tag != "mutual_resistance_table" || version != "v1") {
    throw std::runtime_error("MutualResistanceTable: bad header");
  }
  std::size_t n = 0;
  is >> n;
  std::vector<double> distances(n), values(n);
  for (auto& d : distances) is >> d;
  for (auto& v : values) is >> v;
  if (!is) throw std::runtime_error("MutualResistanceTable: truncated data");
  return MutualResistanceTable(std::move(distances), std::move(values));
}

}  // namespace rlplan::thermal
