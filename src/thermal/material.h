// Thermal material properties.
//
// Conductivities follow HotSpot 6.0 defaults and common packaging literature.
// Only steady-state analysis is performed, so heat capacity is omitted.
#pragma once

#include <string>

namespace rlplan::thermal {

/// Homogeneous isotropic material (steady-state: conductivity only).
struct Material {
  std::string name;
  double conductivity = 0.0;  ///< W / (m K)
};

/// Bulk silicon (die body). HotSpot default k = 100 W/mK at ~85C.
inline Material silicon() { return {"silicon", 100.0}; }

/// Capillary underfill / epoxy molding between dies on the chiplet layer.
inline Material underfill() { return {"underfill", 0.9}; }

/// Thermal interface material between die backside and heat spreader.
inline Material tim() { return {"TIM", 4.0}; }

/// Copper heat spreader.
inline Material copper() { return {"copper", 400.0}; }

/// Aluminum heat-sink base plate.
inline Material aluminum() { return {"aluminum", 205.0}; }

/// Silicon interposer (TSV-perforated; effective k slightly below bulk).
inline Material interposer_silicon() { return {"interposer-Si", 90.0}; }

}  // namespace rlplan::thermal
