// Grid discretization of the 2.5D package into a thermal RC network.
//
// Mirrors the HotSpot grid model [Huang et al., TVLSI'06]: every layer of the
// stack is discretized into rows x cols cells over the interposer footprint;
// adjacent cells exchange heat through lateral conductances, stacked cells
// through vertical conductances, and boundary cells leak to ambient through
// convection terms. Steady state: solve G * dT = P, temperatures relative to
// ambient.
//
// The chiplet layer is laterally heterogeneous: a cell's conductivity blends
// die material and fill material by footprint coverage fraction, which is
// what makes the problem placement-dependent (and the fast model an
// approximation).
#pragma once

#include <cstddef>
#include <vector>

#include "core/chiplet.h"
#include "core/floorplan.h"
#include "thermal/layer_stack.h"
#include "thermal/sparse.h"

namespace rlplan::thermal {

struct GridDims {
  std::size_t rows = 48;
  std::size_t cols = 48;

  std::size_t cells() const { return rows * cols; }
};

/// Assembles the conductance matrix and power vector for one placement.
class ThermalGridModel {
 public:
  /// `stack` and `system` must outlive the model.
  ThermalGridModel(const LayerStack& stack, const ChipletSystem& system,
                   GridDims dims);

  GridDims dims() const { return dims_; }
  std::size_t num_layers() const { return stack_->num_layers(); }
  std::size_t num_nodes() const { return num_layers() * dims_.cells(); }

  /// Node index of cell (row, col) in layer `layer`.
  std::size_t node(std::size_t layer, std::size_t row, std::size_t col) const {
    return layer * dims_.cells() + row * dims_.cols + col;
  }

  /// Cell pitch in metres.
  double dx() const { return dx_; }
  double dy() const { return dy_; }

  /// Geometric center of cell (row, col) in millimetres (floorplan units).
  Point cell_center_mm(std::size_t row, std::size_t col) const;

  /// Fraction of cell (row, col) covered by `footprint` (mm rect), in [0,1].
  double coverage_fraction(std::size_t row, std::size_t col,
                           const Rect& footprint_mm) const;

  /// Builds the finalized conductance matrix for the given placement.
  /// Unplaced chiplets contribute neither conductivity nor power.
  SparseMatrix build_conductance(const Floorplan& floorplan) const;

  /// Power injection vector (W per node) in the chiplet layer.
  std::vector<double> build_power(const Floorplan& floorplan) const;

  /// Effective conductivity of each chiplet-layer cell for the placement
  /// (coverage-weighted blend of die and fill conductivity). Exposed for
  /// tests and diagnostics.
  std::vector<double> chiplet_layer_conductivity(
      const Floorplan& floorplan) const;

 private:
  const LayerStack* stack_;
  const ChipletSystem* system_;
  GridDims dims_;
  double dx_ = 0.0;  // m
  double dy_ = 0.0;  // m
  double cell_area_ = 0.0;  // m^2
};

}  // namespace rlplan::thermal
