#include "thermal/fast_model.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>

#include "util/timer.h"

namespace rlplan::thermal {

FastThermalModel::FastThermalModel(SelfResistanceTable self_table,
                                   MutualResistanceTable mutual_table,
                                   double ambient_c, FastModelConfig config)
    : self_table_(std::move(self_table)),
      mutual_table_(std::move(mutual_table)),
      ambient_c_(ambient_c),
      config_(config) {
  if (config_.source_subsamples < 1) {
    throw std::invalid_argument("FastModelConfig: source_subsamples >= 1");
  }
}

double FastThermalModel::decay_kernel(double distance_mm) const {
  return std::max(mutual_table_.lookup(distance_mm) - uniform_floor_, 0.0);
}

double FastThermalModel::image_kernel(const Point& src,
                                      const Point& probe) const {
  // Direct term plus first-order reflections: 4 side mirrors and 4 corner
  // double-mirrors of the source about the package edges. The convective
  // boundary is not a perfect adiabatic mirror, so reflections are damped.
  const double kReflectivity = config_.image_reflectivity;
  const double w = package_w_mm_;
  const double h = package_h_mm_;
  double k = decay_kernel(euclidean(src, probe));
  const double mx[2] = {-src.x, 2.0 * w - src.x};        // mirror in x
  const double my[2] = {-src.y, 2.0 * h - src.y};        // mirror in y
  for (double ix : mx) {
    k += kReflectivity * decay_kernel(euclidean({ix, src.y}, probe));
  }
  for (double iy : my) {
    k += kReflectivity * decay_kernel(euclidean({src.x, iy}, probe));
  }
  for (double ix : mx) {
    for (double iy : my) {
      k += kReflectivity * kReflectivity *
           decay_kernel(euclidean({ix, iy}, probe));
    }
  }
  return uniform_floor_ + k;
}

namespace {

/// Point-sample positions of an n x n sub-source grid over a footprint.
void subsource_points(const Rect& src, int n, std::vector<Point>& out) {
  out.clear();
  if (n == 1) {
    out.push_back(src.center());
    return;
  }
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      out.push_back({src.x + (i + 0.5) * src.w / n,
                     src.y + (j + 0.5) * src.h / n});
    }
  }
}

}  // namespace

FastThermalResult FastThermalModel::evaluate(const ChipletSystem& system,
                                             const Floorplan& floorplan) const {
  if (empty()) {
    throw std::logic_error("FastThermalModel: evaluate on empty model");
  }
  const Timer timer;
  FastThermalResult result;
  result.chiplet_temp_c.assign(system.num_chiplets(), ambient_c_);

  const auto rects = floorplan.placed_rects();
  for (std::size_t i = 0; i < system.num_chiplets(); ++i) {
    if (!rects[i]) continue;
    const Chiplet& chip = system.chiplet(i);
    const Rect& ri = *rects[i];
    // Orientation-aware lookup: the characterizer fills the full (w, h) grid,
    // so rotated placements read the correct entry on rectangular interposers.
    double r_self = self_table_.lookup(ri.w, ri.h);
    const Point ci = ri.center();
    if (config_.use_images) {
      // Off-center self heating: the die couples to its own mirror images.
      // The centered characterization already contains the (negligible)
      // center-position images, so only the *excess* relative to the
      // centered position is added.
      const Point cc{package_w_mm_ / 2.0, package_h_mm_ / 2.0};
      const double self_images =
          image_kernel(ci, ci) - decay_kernel(0.0) - uniform_floor_;
      const double center_images =
          image_kernel(cc, cc) - decay_kernel(0.0) - uniform_floor_;
      r_self += self_images - center_images;
    } else if (!position_correction_.empty()) {
      r_self *= position_correction_.lookup(ci.x, ci.y);
    }
    const double self_rise = r_self * chip.power;
    const double c_dst = position_correction_.empty()
                             ? 1.0
                             : position_correction_.lookup(ci.x, ci.y);

    // Probe the total field at an n x n grid inside the footprint; the
    // die's peak cell is wherever self heating plus neighbour coupling is
    // strongest. The self term droops toward the die corners by the
    // characterized ratio d(w, h).
    const int np = std::max(config_.receiver_probes, 1);
    const double droop =
        self_droop_.empty() ? 1.0 : self_droop_.lookup(ri.w, ri.h);
    std::vector<Point> subsources;
    double worst = 0.0;
    for (int pi = 0; pi < np; ++pi) {
      for (int pj = 0; pj < np; ++pj) {
        const Point probe =
            np == 1 ? ci
                    : Point{ri.x + (pi + 0.5) * ri.w / np,
                            ri.y + (pj + 0.5) * ri.h / np};
        // Normalized square radius in [0, 1]: 0 at center, 1 at corners.
        const double rx = (probe.x - ci.x) / (ri.w / 2.0);
        const double ry = (probe.y - ci.y) / (ri.h / 2.0);
        const double rho2 = std::min(1.0, (rx * rx + ry * ry) / 2.0);
        const double shape = 1.0 - (1.0 - droop) * rho2;

        double mutual = 0.0;
        for (std::size_t j = 0; j < system.num_chiplets(); ++j) {
          if (j == i || !rects[j]) continue;
          const double power = system.chiplet(j).power;
          if (power <= 0.0) continue;
          subsource_points(*rects[j], config_.source_subsamples, subsources);
          double m = 0.0;
          for (const Point& s : subsources) {
            m += config_.use_images
                     ? image_kernel(s, probe)
                     : mutual_table_.lookup(euclidean(s, probe));
          }
          m *= power / static_cast<double>(subsources.size());
          if (config_.correct_mutual && !position_correction_.empty()) {
            const Point sc = rects[j]->center();
            const double c_src = position_correction_.lookup(sc.x, sc.y);
            m *= std::sqrt(c_src * c_dst);
          }
          mutual += m;
        }
        worst = std::max(worst, self_rise * shape + mutual);
      }
    }
    result.chiplet_temp_c[i] = ambient_c_ + worst;
  }

  result.max_temp_c = ambient_c_;
  for (double t : result.chiplet_temp_c) {
    result.max_temp_c = std::max(result.max_temp_c, t);
  }
  result.eval_seconds = timer.seconds();
  return result;
}

double FastThermalModel::chiplet_temperature(const ChipletSystem& system,
                                             const Floorplan& floorplan,
                                             std::size_t chiplet) const {
  return evaluate(system, floorplan).chiplet_temp_c.at(chiplet);
}

void FastThermalModel::save(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("FastThermalModel: cannot open " + path);
  os << "fast_thermal_model v2\n";
  os.precision(17);
  os << ambient_c_ << ' ' << config_.source_subsamples << ' '
     << config_.receiver_probes << ' ' << (config_.correct_mutual ? 1 : 0)
     << ' ' << (config_.use_images ? 1 : 0) << ' '
     << config_.image_reflectivity << ' ' << package_w_mm_ << ' '
     << package_h_mm_ << ' ' << uniform_floor_ << ' '
     << (position_correction_.empty() ? 0 : 1) << ' '
     << (self_droop_.empty() ? 0 : 1) << '\n';
  self_table_.save(os);
  mutual_table_.save(os);
  if (!position_correction_.empty()) position_correction_.save(os);
  if (!self_droop_.empty()) self_droop_.save(os);
}

FastThermalModel FastThermalModel::load(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("FastThermalModel: cannot open " + path);
  std::string tag, version;
  is >> tag >> version;
  if (tag != "fast_thermal_model" || version != "v2") {
    throw std::runtime_error("FastThermalModel: bad header in " + path);
  }
  double ambient = 0.0;
  int correct_mutual = 0;
  int use_images = 0;
  int has_correction = 0;
  int has_droop = 0;
  double pkg_w = 0.0, pkg_h = 0.0, floor = 0.0;
  FastModelConfig config;
  is >> ambient >> config.source_subsamples >> config.receiver_probes >>
      correct_mutual >> use_images >> config.image_reflectivity >> pkg_w >>
      pkg_h >> floor >> has_correction >> has_droop;
  config.correct_mutual = correct_mutual != 0;
  config.use_images = use_images != 0;
  auto self = SelfResistanceTable::load(is);
  auto mutual = MutualResistanceTable::load(is);
  FastThermalModel model(std::move(self), std::move(mutual), ambient, config);
  model.set_image_params(pkg_w, pkg_h, floor);
  if (has_correction != 0) {
    model.set_position_correction(BilinearTable2D::load(is));
  }
  if (has_droop != 0) {
    model.set_self_droop(BilinearTable2D::load(is));
  }
  return model;
}

}  // namespace rlplan::thermal
