#include "thermal/fast_model.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace rlplan::thermal {

FastThermalModel::FastThermalModel(SelfResistanceTable self_table,
                                   MutualResistanceTable mutual_table,
                                   double ambient_c, FastModelConfig config)
    : self_table_(std::move(self_table)),
      mutual_table_(std::move(mutual_table)),
      ambient_c_(ambient_c),
      config_(config) {
  if (config_.source_subsamples < 1) {
    throw std::invalid_argument("FastModelConfig: source_subsamples >= 1");
  }
  // The mutual kernel is THE hot lookup (probes x subsources x 9 images per
  // die pair): resample non-uniform distance axes once here so every later
  // lookup resolves its segment with O(1) arithmetic instead of a binary
  // search. Exact for characterized tables (equal-width distance bins, gaps
  // integer multiples of the bin); for arbitrary hand-built tables whose
  // knots don't align with the uniform grid — or with more than the
  // resample's point cap — this is a piecewise-linear approximation.
  if (!mutual_table_.empty() && !mutual_table_.is_uniform()) {
    mutual_table_ = mutual_table_.resampled_uniform();
  }
}

double FastThermalModel::decay_kernel(double distance_mm) const {
  return std::max(mutual_table_.lookup(distance_mm) - uniform_floor_, 0.0);
}

double FastThermalModel::image_kernel(const Point& src,
                                      const Point& probe) const {
  // Direct term plus first-order reflections: 4 side mirrors and 4 corner
  // double-mirrors of the source about the package edges. The convective
  // boundary is not a perfect adiabatic mirror, so reflections are damped.
  const double kReflectivity = config_.image_reflectivity;
  const double w = package_w_mm_;
  const double h = package_h_mm_;
  double k = decay_kernel(kernel_distance(src.x - probe.x, src.y - probe.y));
  const double mx[2] = {-src.x, 2.0 * w - src.x};        // mirror in x
  const double my[2] = {-src.y, 2.0 * h - src.y};        // mirror in y
  for (double ix : mx) {
    k += kReflectivity *
         decay_kernel(kernel_distance(ix - probe.x, src.y - probe.y));
  }
  for (double iy : my) {
    k += kReflectivity *
         decay_kernel(kernel_distance(src.x - probe.x, iy - probe.y));
  }
  for (double ix : mx) {
    for (double iy : my) {
      k += kReflectivity * kReflectivity *
           decay_kernel(kernel_distance(ix - probe.x, iy - probe.y));
    }
  }
  return uniform_floor_ + k;
}

int FastThermalModel::probe_count() const {
  const int np = std::max(config_.receiver_probes, 1);
  return np * np;
}

void FastThermalModel::source_points(const Rect& footprint,
                                     std::vector<Point>& out) const {
  const int n = config_.source_subsamples;
  out.clear();
  if (n == 1) {
    out.push_back(footprint.center());
    return;
  }
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      out.push_back({footprint.x + (i + 0.5) * footprint.w / n,
                     footprint.y + (j + 0.5) * footprint.h / n});
    }
  }
}

void FastThermalModel::receiver_probes(const Rect& footprint,
                                       std::vector<Point>& probes,
                                       std::vector<double>& shapes) const {
  const int np = std::max(config_.receiver_probes, 1);
  const Point ci = footprint.center();
  const double droop =
      self_droop_.empty() ? 1.0 : self_droop_.lookup(footprint.w, footprint.h);
  probes.clear();
  shapes.clear();
  for (int pi = 0; pi < np; ++pi) {
    for (int pj = 0; pj < np; ++pj) {
      const Point probe =
          np == 1 ? ci
                  : Point{footprint.x + (pi + 0.5) * footprint.w / np,
                          footprint.y + (pj + 0.5) * footprint.h / np};
      // Normalized square radius in [0, 1]: 0 at center, 1 at corners.
      const double rx = (probe.x - ci.x) / (footprint.w / 2.0);
      const double ry = (probe.y - ci.y) / (footprint.h / 2.0);
      const double rho2 = std::min(1.0, (rx * rx + ry * ry) / 2.0);
      probes.push_back(probe);
      shapes.push_back(1.0 - (1.0 - droop) * rho2);
    }
  }
}

double FastThermalModel::self_rise(const Chiplet& chip,
                                   const Rect& footprint) const {
  // Orientation-aware lookup: the characterizer fills the full (w, h) grid,
  // so rotated placements read the correct entry on rectangular interposers.
  double r_self = self_table_.lookup(footprint.w, footprint.h);
  const Point ci = footprint.center();
  if (config_.use_images) {
    // Off-center self heating: the die couples to its own mirror images.
    // The centered characterization already contains the (negligible)
    // center-position images, so only the *excess* relative to the
    // centered position is added.
    const Point cc{package_w_mm_ / 2.0, package_h_mm_ / 2.0};
    const double self_images =
        image_kernel(ci, ci) - decay_kernel(0.0) - uniform_floor_;
    const double center_images =
        image_kernel(cc, cc) - decay_kernel(0.0) - uniform_floor_;
    r_self += self_images - center_images;
  } else if (!position_correction_.empty()) {
    r_self *= position_correction_.lookup(ci.x, ci.y);
  }
  return r_self * chip.power;
}

double FastThermalModel::center_correction(const Point& center) const {
  return position_correction_.empty()
             ? 1.0
             : position_correction_.lookup(center.x, center.y);
}

double FastThermalModel::pair_correction(double src_corr,
                                         double dst_corr) const {
  if (config_.correct_mutual && !position_correction_.empty()) {
    return std::sqrt(src_corr * dst_corr);
  }
  return 1.0;
}

double FastThermalModel::source_contribution(std::span<const Point> subsources,
                                             double power_w,
                                             const Point& probe,
                                             double correction) const {
  double m = 0.0;
  for (const Point& s : subsources) {
    m += config_.use_images
             ? image_kernel(s, probe)
             : mutual_table_.lookup(
                   kernel_distance(s.x - probe.x, s.y - probe.y));
  }
  m *= power_w / static_cast<double>(subsources.size());
  // Multiplying by an exact 1.0 is the identity, so the disabled-correction
  // case stays bit-identical to skipping the multiply.
  m *= correction;
  return m;
}

void FastThermalModel::gather_sources(
    const ChipletSystem& system,
    const std::vector<std::optional<Rect>>& rects) const {
  const auto n = system.num_chiplets();
  const auto ss = static_cast<std::size_t>(config_.source_subsamples) *
                  static_cast<std::size_t>(config_.source_subsamples);
  subs_scratch_.resize(n * ss);
  corr_scratch_.assign(n, 1.0);
  std::vector<Point> pts;
  pts.reserve(ss);
  for (std::size_t j = 0; j < n; ++j) {
    if (!rects[j] || system.chiplet(j).power <= 0.0) continue;
    source_points(*rects[j], pts);
    std::copy(pts.begin(), pts.end(), subs_scratch_.begin() + j * ss);
    corr_scratch_[j] = center_correction(rects[j]->center());
  }
}

double FastThermalModel::receiver_peak_rise(
    const ChipletSystem& system,
    const std::vector<std::optional<Rect>>& rects, std::size_t i) const {
  const Chiplet& chip = system.chiplet(i);
  const Rect& ri = *rects[i];
  const double self = self_rise(chip, ri);
  const double c_dst = center_correction(ri.center());
  receiver_probes(ri, probes_scratch_, shapes_scratch_);

  const auto ss = static_cast<std::size_t>(config_.source_subsamples) *
                  static_cast<std::size_t>(config_.source_subsamples);
  double worst = 0.0;
  for (std::size_t p = 0; p < probes_scratch_.size(); ++p) {
    const Point& probe = probes_scratch_[p];
    double mutual = 0.0;
    for (std::size_t j = 0; j < system.num_chiplets(); ++j) {
      if (j == i || !rects[j]) continue;
      const double power = system.chiplet(j).power;
      if (power <= 0.0) continue;
      mutual += source_contribution(
          std::span<const Point>(subs_scratch_.data() + j * ss, ss), power,
          probe, pair_correction(corr_scratch_[j], c_dst));
    }
    worst = std::max(worst, self * shapes_scratch_[p] + mutual);
  }
  return worst;
}

FastThermalResult FastThermalModel::evaluate(const ChipletSystem& system,
                                             const Floorplan& floorplan) const {
  if (empty()) {
    throw std::logic_error("FastThermalModel: evaluate on empty model");
  }
  RLPLAN_TRACE_SPAN("thermal.evaluate");
  RLPLAN_COUNTER_INC("thermal.evaluate.calls");
  const Timer timer;
  FastThermalResult result;
  result.chiplet_temp_c.assign(system.num_chiplets(), ambient_c_);

  rects_scratch_ = floorplan.placed_rects();
  // Sub-source points and correction factors are per-source quantities:
  // compute them once per call, not once per (receiver, probe, source).
  gather_sources(system, rects_scratch_);
  for (std::size_t i = 0; i < system.num_chiplets(); ++i) {
    if (!rects_scratch_[i]) continue;
    result.chiplet_temp_c[i] =
        ambient_c_ + receiver_peak_rise(system, rects_scratch_, i);
  }

  result.max_temp_c = ambient_c_;
  for (double t : result.chiplet_temp_c) {
    result.max_temp_c = std::max(result.max_temp_c, t);
  }
  result.eval_seconds = timer.seconds();
  return result;
}

double FastThermalModel::chiplet_temperature(const ChipletSystem& system,
                                             const Floorplan& floorplan,
                                             std::size_t chiplet) const {
  if (empty()) {
    throw std::logic_error("FastThermalModel: evaluate on empty model");
  }
  if (chiplet >= system.num_chiplets()) {
    throw std::out_of_range("chiplet_temperature: index out of range");
  }
  if (!floorplan.is_placed(chiplet)) return ambient_c_;
  rects_scratch_ = floorplan.placed_rects();
  gather_sources(system, rects_scratch_);
  return ambient_c_ + receiver_peak_rise(system, rects_scratch_, chiplet);
}

void FastThermalModel::save(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("FastThermalModel: cannot open " + path);
  os << "fast_thermal_model v2\n";
  os.precision(17);
  os << ambient_c_ << ' ' << config_.source_subsamples << ' '
     << config_.receiver_probes << ' ' << (config_.correct_mutual ? 1 : 0)
     << ' ' << (config_.use_images ? 1 : 0) << ' '
     << config_.image_reflectivity << ' ' << package_w_mm_ << ' '
     << package_h_mm_ << ' ' << uniform_floor_ << ' '
     << (position_correction_.empty() ? 0 : 1) << ' '
     << (self_droop_.empty() ? 0 : 1) << '\n';
  self_table_.save(os);
  mutual_table_.save(os);
  if (!position_correction_.empty()) position_correction_.save(os);
  if (!self_droop_.empty()) self_droop_.save(os);
}

FastThermalModel FastThermalModel::load(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("FastThermalModel: cannot open " + path);
  std::string tag, version;
  is >> tag >> version;
  if (tag != "fast_thermal_model" || version != "v2") {
    throw std::runtime_error("FastThermalModel: bad header in " + path);
  }
  double ambient = 0.0;
  int correct_mutual = 0;
  int use_images = 0;
  int has_correction = 0;
  int has_droop = 0;
  double pkg_w = 0.0, pkg_h = 0.0, floor = 0.0;
  FastModelConfig config;
  is >> ambient >> config.source_subsamples >> config.receiver_probes >>
      correct_mutual >> use_images >> config.image_reflectivity >> pkg_w >>
      pkg_h >> floor >> has_correction >> has_droop;
  config.correct_mutual = correct_mutual != 0;
  config.use_images = use_images != 0;
  auto self = SelfResistanceTable::load(is);
  auto mutual = MutualResistanceTable::load(is);
  FastThermalModel model(std::move(self), std::move(mutual), ambient, config);
  model.set_image_params(pkg_w, pkg_h, floor);
  if (has_correction != 0) {
    model.set_position_correction(BilinearTable2D::load(is));
  }
  if (has_droop != 0) {
    model.set_self_droop(BilinearTable2D::load(is));
  }
  return model;
}

}  // namespace rlplan::thermal
