// Structure-of-arrays snapshot + tiled kernel for batched fast-model
// evaluation.
//
// FastThermalModel::evaluate() walks pointer-chased per-chiplet structures
// (std::optional<Rect> placements, per-call std::vector scratch, cross-TU
// table lookups) one pair at a time. That is fine for one query, but
// whole-floorplan evaluation is the cost driver for SA multi-start rounds,
// PPO batch scoring, and the regression suite. SoaSnapshot flattens one
// system's evaluation state into contiguous arrays:
//
//   * per die: probe points, self-heating shape factors, self rise,
//     position-correction factor (refreshed in place per floorplan);
//   * per active source (placed, power > 0): the sub-source grid expanded
//     through the method-of-images mirrors, packed as flat x/y arrays with a
//     shared 9-entry weight vector [1, r, r, r, r, r^2, r^2, r^2, r^2].
//
// The kernel then runs two tiled passes per receiver probe: a sweep turning
// every source-point distance into a clamped table coordinate (sqrt,
// min/max, one multiply — no branches, no indexed loads), and an
// accumulation pass that resolves the interpolation from a precomputed
// base/diff lookup table and sums contributions per source in exactly the
// order evaluate() uses. The kernel exists twice: portable scalar reference
// loops keep the passes separate (pass 1 auto-vectorizes; pass 2 is a
// scalar gather), while the explicit AVX2/NEON kernels
// (thermal/soa_kernels_*.cpp) fuse both passes into one sweep per source
// block — the index/fraction intermediates never round-trip through memory
// — selected at runtime via util/simd. RLPLANNER_SIMD=scalar forces the
// reference path, and set_simd_level() overrides per snapshot for
// differential testing. SIMD results stay within the 1e-9 C envelope of the
// scalar path (per-source subtotals reduce lanes in a fixed tree instead of
// left-to-right).
//
// Numerical contract (asserted by tests/soa_kernel_test.cpp): the
// accumulation order is identical to evaluate()'s, so no error grows with
// the die count. For the production case — a uniform-step mutual table,
// which FastThermalModel guarantees by resampling at construction — the
// interpolation uses the fraction form base[i] + frac * (v[i+1] - v[i])
// instead of evaluate()'s division form, which differs by at most a couple
// of ulp per term (~1e-12 C on the summed temperatures; the suite gates at
// 1e-9 C, the repo-wide equivalence bar). Non-uniform tables take a
// fallback pass that replicates evaluate()'s arithmetic operation for
// operation and is bit-identical.
//
// Lifecycle: bind once per (model, system) — sizes and powers are fixed —
// then refresh() per candidate floorplan and evaluate(). One snapshot per
// thread; FastThermalModel::evaluate_batch() owns a snapshot per worker lane
// and fans candidate chunks over the shared ThreadPool.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/chiplet.h"
#include "core/floorplan.h"
#include "thermal/fast_model.h"
#include "util/simd.h"

namespace rlplan::thermal {

struct SoaKernelOps;

/// Half-open candidate range [first, second) owned by lane `c` when `b`
/// candidates split across `lanes` lanes: sizes differ by at most one, lane
/// ranges tile [0, b) exactly, and no intermediate product can overflow
/// (unlike the naive b * c / lanes split, which overflows std::size_t for
/// b > SIZE_MAX / lanes). Requires lanes >= 1 and c <= lanes.
inline std::pair<std::size_t, std::size_t> batch_lane_range(std::size_t b,
                                                            std::size_t lanes,
                                                            std::size_t c) {
  const std::size_t quotient = b / lanes;
  const std::size_t remainder = b % lanes;
  const std::size_t lo = c * quotient + (c < remainder ? c : remainder);
  return {lo, c < lanes ? lo + quotient + (c < remainder ? 1 : 0) : lo};
}

/// Bind-time model constants shared by every SoA kernel consumer —
/// SoaSnapshot's batch sweeps and IncrementalThermalState's pair-row path:
/// image weights, the interleaved (base, diff) interpolation LUTs, the
/// capped coordinate transform, and the flat per-point weight vector. Built
/// once per model; everything here is placement-independent.
struct SoaModelConsts {
  std::size_t pc = 0;          ///< receiver probes per die
  std::size_t ss = 1;          ///< sub-sources per die
  std::size_t img = 1;         ///< image points per sub-source (9 or 1)
  bool use_images = false;
  bool unit_weights = false;   ///< use_images with reflectivity exactly 1.0
  bool correct_pairs = false;  ///< correct_mutual with a table installed
  bool uniform = false;        ///< uniform-step mutual table (the production
                               ///< case; guaranteed after model resampling)
  double floor = 0.0;          ///< uniform rise floor (K/W)
  double ambient_c = 0.0;
  double pkg_w = 0.0;          ///< package extents, for the image mirrors
  double pkg_h = 0.0;
  double img_w[9] = {1.0};     ///< per-image weights (direct, sides, corners)
  /// img_w tiled ss times: the flat per-point weight vector the SIMD
  /// weighted passes consume (empty when images are off).
  std::vector<double> w_flat;
  MutualResistanceTable::View mutual{};
  // Uniform-table interpolation LUTs, interleaved as (base, diff) pairs per
  // segment so one lookup touches one cache line: base is the value at the
  // left knot (with the decay floor pre-subtracted in the images variant),
  // diff the value change across the segment.
  std::vector<double> lut_img;  // {values[i] - floor, values[i+1]-values[i]}
  std::vector<double> lut_raw;  // {values[i], values[i+1]-values[i]}
  double coord_cap = 0.0;  ///< largest table coordinate (just under nk-1)

  /// Binds to `model` (which must outlive any use of the views). Throws
  /// std::invalid_argument when the model is empty or its mutual table has
  /// fewer than 2 knots.
  void bind(const FastThermalModel& model);

  /// Expands one sub-source into its `img` coordinate pairs (xs/ys) in
  /// FastThermalModel::image_kernel()'s emission order — the mirror
  /// expressions match image_kernel's mx/my arrays bit-for-bit. Without
  /// images this writes the point itself.
  void expand_source_point(const Point& s, double* xs, double* ys) const;
};

class SoaSnapshot {
 public:
  SoaSnapshot() = default;
  /// Binds to `model` and `system` (both must outlive the snapshot, at
  /// stable addresses). Throws std::invalid_argument on an empty model.
  SoaSnapshot(const FastThermalModel& model, const ChipletSystem& system);

  bool bound() const { return model_ != nullptr; }
  const FastThermalModel& model() const { return *model_; }
  const ChipletSystem& system() const { return *system_; }
  std::size_t num_chiplets() const { return n_; }

  /// Rebuilds the per-floorplan arrays (placements, probe grids, self terms,
  /// image-expanded sub-sources) in place — no allocation after the first
  /// refresh of the largest placement. `floorplan` must be over the bound
  /// system.
  void refresh(const Floorplan& floorplan);

  /// Temperatures of the refreshed placement, matching
  /// FastThermalModel::evaluate() on the same floorplan under the numerical
  /// contract above: within 1e-9 C for uniform mutual tables (the production
  /// case), bit-identical on the non-uniform fallback. eval_seconds is left
  /// 0 for the caller to stamp.
  void evaluate(FastThermalResult& out) const;

  /// Number of active sources (placed dies with power > 0) in the last
  /// refresh.
  std::size_t num_sources() const { return src_die_.size(); }

  /// The SIMD level this snapshot's uniform-table kernel actually runs at.
  /// New snapshots start at dispatch_level(); kScalar means the reference
  /// loops (always the case for non-uniform tables, whatever this reports).
  util::SimdLevel simd_level() const { return simd_level_; }

  /// Overrides the kernel selection for this snapshot (differential tests,
  /// forced-scalar benches). Levels whose kernels are not compiled in or not
  /// supported by the host fall back to kScalar — never to a different SIMD
  /// level. Returns the level actually installed.
  util::SimdLevel set_simd_level(util::SimdLevel level);

  /// Process-wide default kernel level: util::active_simd_level() with
  /// unavailable levels collapsed to kScalar (what benches publish).
  static util::SimdLevel dispatch_level();

 private:
  const FastThermalModel* model_ = nullptr;
  const ChipletSystem* system_ = nullptr;

  // Bind-time constants.
  std::size_t n_ = 0;   ///< chiplets in the system
  SoaModelConsts k_{};  ///< shared model constants (LUTs, weights, cap)

  // Per-die state, refreshed per floorplan.
  std::vector<std::uint8_t> placed_;  // n
  std::vector<double> self_rise_;     // n
  std::vector<double> corr_;          // n
  std::vector<double> probe_x_;       // n * pc
  std::vector<double> probe_y_;       // n * pc
  std::vector<double> shape_;         // n * pc
  // Active sources, packed ascending by die index.
  std::vector<std::size_t> src_die_;  // die index per active source
  std::vector<double> src_scale_;     // power / ss per active source
  std::vector<double> src_corr_;      // correction factor per active source
  std::vector<double> src_x_;         // num_sources * ss * img
  std::vector<double> src_y_;         // num_sources * ss * img

  // Kernel scratch.
  mutable std::vector<double> coord_;      // one table-coordinate tile/probe
  mutable std::vector<int> idx_;           // truncated segment index per point
  mutable std::vector<double> frac_;       // coordinate fraction per point
  mutable std::vector<double> pair_corr_;  // per-source factor for a receiver
  mutable std::vector<double> sub_;        // per-source pass-2 subtotals
  std::vector<Point> probes_scratch_;
  std::vector<double> shapes_scratch_;
  std::vector<Point> subs_scratch_;

  // Dispatched kernels (nullptr = scalar reference path) and the level they
  // correspond to; see soa_kernels.h.
  const SoaKernelOps* ops_ = nullptr;
  util::SimdLevel simd_level_ = util::SimdLevel::kScalar;

  /// Peak rise of receiver i via the fraction-form LUT (uniform tables),
  /// scalar reference loops.
  double receiver_rise_uniform(std::size_t i) const;
  /// As receiver_rise_uniform, through the dispatched SIMD kernels (ops_).
  /// Within 1e-9 C of the scalar path (soa_kernels.h numerical contract).
  double receiver_rise_uniform_simd(std::size_t i) const;
  /// Peak rise of receiver i replicating evaluate()'s arithmetic exactly
  /// (fallback for non-uniform mutual tables).
  double receiver_rise_exact(std::size_t i) const;
};

}  // namespace rlplan::thermal
