// Structure-of-arrays snapshot + tiled kernel for batched fast-model
// evaluation.
//
// FastThermalModel::evaluate() walks pointer-chased per-chiplet structures
// (std::optional<Rect> placements, per-call std::vector scratch, cross-TU
// table lookups) one pair at a time. That is fine for one query, but
// whole-floorplan evaluation is the cost driver for SA multi-start rounds,
// PPO batch scoring, and the regression suite. SoaSnapshot flattens one
// system's evaluation state into contiguous arrays:
//
//   * per die: probe points, self-heating shape factors, self rise,
//     position-correction factor (refreshed in place per floorplan);
//   * per active source (placed, power > 0): the sub-source grid expanded
//     through the method-of-images mirrors, packed as flat x/y arrays with a
//     shared 9-entry weight vector [1, r, r, r, r, r^2, r^2, r^2, r^2].
//
// The kernel then runs two tiled passes per receiver probe: a vectorizable
// sweep turning every source-point distance into a clamped table coordinate
// (sqrt, min/max, one multiply — no branches, no indexed loads), and a
// scalar accumulation pass that resolves the interpolation from a
// precomputed base/diff lookup table and sums contributions in exactly the
// order evaluate() uses.
//
// Numerical contract (asserted by tests/soa_kernel_test.cpp): the
// accumulation order is identical to evaluate()'s, so no error grows with
// the die count. For the production case — a uniform-step mutual table,
// which FastThermalModel guarantees by resampling at construction — the
// interpolation uses the fraction form base[i] + frac * (v[i+1] - v[i])
// instead of evaluate()'s division form, which differs by at most a couple
// of ulp per term (~1e-12 C on the summed temperatures; the suite gates at
// 1e-9 C, the repo-wide equivalence bar). Non-uniform tables take a
// fallback pass that replicates evaluate()'s arithmetic operation for
// operation and is bit-identical.
//
// Lifecycle: bind once per (model, system) — sizes and powers are fixed —
// then refresh() per candidate floorplan and evaluate(). One snapshot per
// thread; FastThermalModel::evaluate_batch() owns a snapshot per worker lane
// and fans candidate chunks over the shared ThreadPool.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/chiplet.h"
#include "core/floorplan.h"
#include "thermal/fast_model.h"

namespace rlplan::thermal {

class SoaSnapshot {
 public:
  SoaSnapshot() = default;
  /// Binds to `model` and `system` (both must outlive the snapshot, at
  /// stable addresses). Throws std::invalid_argument on an empty model.
  SoaSnapshot(const FastThermalModel& model, const ChipletSystem& system);

  bool bound() const { return model_ != nullptr; }
  const FastThermalModel& model() const { return *model_; }
  const ChipletSystem& system() const { return *system_; }
  std::size_t num_chiplets() const { return n_; }

  /// Rebuilds the per-floorplan arrays (placements, probe grids, self terms,
  /// image-expanded sub-sources) in place — no allocation after the first
  /// refresh of the largest placement. `floorplan` must be over the bound
  /// system.
  void refresh(const Floorplan& floorplan);

  /// Temperatures of the refreshed placement, matching
  /// FastThermalModel::evaluate() on the same floorplan under the numerical
  /// contract above: within 1e-9 C for uniform mutual tables (the production
  /// case), bit-identical on the non-uniform fallback. eval_seconds is left
  /// 0 for the caller to stamp.
  void evaluate(FastThermalResult& out) const;

  /// Number of active sources (placed dies with power > 0) in the last
  /// refresh.
  std::size_t num_sources() const { return src_die_.size(); }

 private:
  const FastThermalModel* model_ = nullptr;
  const ChipletSystem* system_ = nullptr;

  // Bind-time constants.
  std::size_t n_ = 0;        ///< chiplets in the system
  std::size_t pc_ = 0;       ///< receiver probes per die
  std::size_t ss_ = 0;       ///< sub-sources per die
  std::size_t img_ = 1;      ///< image points per sub-source (9 or 1)
  bool use_images_ = false;
  bool correct_pairs_ = false;  ///< correct_mutual with a table installed
  double floor_ = 0.0;          ///< uniform rise floor (K/W)
  double ambient_c_ = 0.0;
  double img_w_[9] = {1.0};  ///< per-image weights (direct, sides, corners)
  MutualResistanceTable::View mutual_{};
  // Uniform-table interpolation LUTs, interleaved as (base, diff) pairs per
  // segment so one lookup touches one cache line: base is the value at the
  // left knot (with the decay floor pre-subtracted in the images variant),
  // diff the value change across the segment.
  std::vector<double> lut_img_;  // {values[i] - floor, values[i+1]-values[i]}
  std::vector<double> lut_raw_;  // {values[i], values[i+1]-values[i]}
  double coord_cap_ = 0.0;  ///< largest table coordinate (just under nk-1)

  // Per-die state, refreshed per floorplan.
  std::vector<std::uint8_t> placed_;  // n
  std::vector<double> self_rise_;     // n
  std::vector<double> corr_;          // n
  std::vector<double> probe_x_;       // n * pc
  std::vector<double> probe_y_;       // n * pc
  std::vector<double> shape_;         // n * pc
  // Active sources, packed ascending by die index.
  std::vector<std::size_t> src_die_;  // die index per active source
  std::vector<double> src_scale_;     // power / ss per active source
  std::vector<double> src_corr_;      // correction factor per active source
  std::vector<double> src_x_;         // num_sources * ss * img
  std::vector<double> src_y_;         // num_sources * ss * img

  // Kernel scratch.
  mutable std::vector<double> coord_;      // one table-coordinate tile/probe
  mutable std::vector<int> idx_;           // truncated segment index per point
  mutable std::vector<double> frac_;       // coordinate fraction per point
  mutable std::vector<double> pair_corr_;  // per-source factor for a receiver
  std::vector<Point> probes_scratch_;
  std::vector<double> shapes_scratch_;
  std::vector<Point> subs_scratch_;

  /// Peak rise of receiver i via the fraction-form LUT (uniform tables).
  double receiver_rise_uniform(std::size_t i) const;
  /// Peak rise of receiver i replicating evaluate()'s arithmetic exactly
  /// (fallback for non-uniform mutual tables).
  double receiver_rise_exact(std::size_t i) const;
};

}  // namespace rlplan::thermal
