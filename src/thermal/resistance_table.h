// Thermal resistance lookup tables (the paper's Section II-C data
// structures).
//
// SelfResistanceTable: 2D table R_self(width, height) in K/W — the peak
// temperature rise of a die per watt of its own power, characterized with the
// die centered on the interposer.
//
// MutualResistanceTable: 1D table R_mutual(distance) in K/W — temperature
// rise at an observation point per watt dissipated by a reference source at
// the given center-to-center distance.
//
// Both interpolate (bilinear / linear) and clamp outside the characterized
// range. Tables serialize to a small text format so characterization can be
// cached across runs.
//
// Lookup cost: axes whose knots are uniformly spaced (within rounding) are
// detected at construction and indexed in O(1) by arithmetic; non-uniform
// axes fall back to binary search. MutualResistanceTable::resampled_uniform()
// converts an arbitrary table into a uniform-step one so hot paths (the fast
// thermal model's kernel, evaluated millions of times per optimization run)
// never touch the binary-search path.
#pragma once

#include <algorithm>
#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace rlplan::thermal {

/// 2D bilinear-interpolated table over (width, height) in mm.
class SelfResistanceTable {
 public:
  SelfResistanceTable() = default;
  /// `values[i][j]` is R_self at (widths[i], heights[j]). Axes must be
  /// strictly increasing with >= 2 entries each. Throws on malformed input.
  SelfResistanceTable(std::vector<double> widths, std::vector<double> heights,
                      std::vector<std::vector<double>> values);

  bool empty() const { return widths_.empty(); }
  const std::vector<double>& widths() const { return widths_; }
  const std::vector<double>& heights() const { return heights_; }
  double value_at(std::size_t i, std::size_t j) const {
    return values_.at(i).at(j);
  }

  /// R_self(w, h) in K/W, bilinear, clamped to table boundary.
  double lookup(double width_mm, double height_mm) const;

  void save(std::ostream& os) const;
  static SelfResistanceTable load(std::istream& is);

 private:
  std::vector<double> widths_;
  std::vector<double> heights_;
  std::vector<std::vector<double>> values_;  // [width index][height index]
  // Reciprocal knot spacing per axis when uniform; 0 = binary-search fallback.
  double width_inv_step_ = 0.0;
  double height_inv_step_ = 0.0;
};

/// 1D linear-interpolated table over center-to-center distance in mm.
class MutualResistanceTable {
 public:
  /// Flat read-only view for hot kernels (the SoA batch evaluator) that
  /// inline the interpolation instead of paying a cross-TU call per point.
  /// lookup() here is arithmetic-for-arithmetic the same as
  /// MutualResistanceTable::lookup(), so results are bit-equal; the view is
  /// invalidated by destroying or mutating the owning table.
  struct View {
    const double* knots = nullptr;
    const double* values = nullptr;
    std::size_t size = 0;
    double front = 0.0;
    double back = 0.0;
    double inv_step = 0.0;  ///< reciprocal knot spacing when uniform, else 0

    double lookup(double distance_mm) const {
      const double d = std::clamp(distance_mm, front, back);
      std::size_t i;
      if (inv_step > 0.0) {
        const double t = (d - front) * inv_step;
        i = std::min(static_cast<std::size_t>(std::max(t, 0.0)), size - 2);
      } else if (d <= knots[0]) {
        i = 0;
      } else if (d >= knots[size - 1]) {
        i = size - 2;
      } else {
        i = static_cast<std::size_t>(
                std::upper_bound(knots, knots + size, d) - knots) -
            1;
      }
      const double t = (d - knots[i]) / (knots[i + 1] - knots[i]);
      return (1.0 - t) * values[i] + t * values[i + 1];
    }
  };

  MutualResistanceTable() = default;
  /// Distances strictly increasing, >= 2 entries. Throws on malformed input.
  MutualResistanceTable(std::vector<double> distances_mm,
                        std::vector<double> values);

  bool empty() const { return distances_.empty(); }
  const std::vector<double>& distances() const { return distances_; }
  const std::vector<double>& values() const { return values_; }

  /// R_mutual(d) in K/W, linear, clamped at both ends.
  double lookup(double distance_mm) const;

  /// True when the distance knots are uniformly spaced (within rounding), so
  /// lookup() resolves its segment in O(1) instead of a binary search.
  bool is_uniform() const { return inv_step_ > 0.0; }

  /// Zero-copy view over this table's knots/values for inlined hot-loop
  /// interpolation. Precondition: !empty().
  View view() const {
    return {distances_.data(), values_.data(), distances_.size(),
            distances_.front(), distances_.back(), inv_step_};
  }

  /// Piecewise-linear resample onto a uniform-step grid spanning the same
  /// range. The step is the smallest original knot gap (capped at
  /// `max_points` samples); when every gap is an integer multiple of the
  /// smallest one — as the characterizer's distance-binned tables are — the
  /// resampled table represents the identical piecewise-linear function.
  MutualResistanceTable resampled_uniform(std::size_t max_points = 4096) const;

  void save(std::ostream& os) const;
  static MutualResistanceTable load(std::istream& is);

 private:
  std::vector<double> distances_;
  std::vector<double> values_;
  double inv_step_ = 0.0;  // reciprocal knot spacing when uniform, else 0
};

/// Generic 2D bilinear table alias: also used for the position-correction
/// factor C(cx, cy) that scales R_self for dies placed off-center (boundary
/// effects: the sink's lateral spreading length is ~20 mm, so edge dies
/// spread heat over a truncated region and run hotter).
using BilinearTable2D = SelfResistanceTable;

namespace table_detail {
/// Index i such that axis[i] <= x <= axis[i+1], clamped to valid segments.
std::size_t segment_index(const std::vector<double>& axis, double x);
/// Throws std::invalid_argument unless strictly increasing with >= 2 entries.
void check_axis(const std::vector<double>& axis, const std::string& name);
/// Reciprocal of the (uniform) knot spacing, or 0 when the axis is not
/// uniformly spaced within a small relative tolerance.
double uniform_inv_step(const std::vector<double>& axis);
/// segment_index specialised: O(1) arithmetic when inv_step > 0 (uniform
/// axis), binary search otherwise. `x` must already be clamped to the axis.
std::size_t segment_index_fast(const std::vector<double>& axis,
                               double inv_step, double x);
}  // namespace table_detail

}  // namespace rlplan::thermal
