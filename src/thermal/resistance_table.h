// Thermal resistance lookup tables (the paper's Section II-C data
// structures).
//
// SelfResistanceTable: 2D table R_self(width, height) in K/W — the peak
// temperature rise of a die per watt of its own power, characterized with the
// die centered on the interposer.
//
// MutualResistanceTable: 1D table R_mutual(distance) in K/W — temperature
// rise at an observation point per watt dissipated by a reference source at
// the given center-to-center distance.
//
// Both interpolate (bilinear / linear) and clamp outside the characterized
// range. Tables serialize to a small text format so characterization can be
// cached across runs.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rlplan::thermal {

/// 2D bilinear-interpolated table over (width, height) in mm.
class SelfResistanceTable {
 public:
  SelfResistanceTable() = default;
  /// `values[i][j]` is R_self at (widths[i], heights[j]). Axes must be
  /// strictly increasing with >= 2 entries each. Throws on malformed input.
  SelfResistanceTable(std::vector<double> widths, std::vector<double> heights,
                      std::vector<std::vector<double>> values);

  bool empty() const { return widths_.empty(); }
  const std::vector<double>& widths() const { return widths_; }
  const std::vector<double>& heights() const { return heights_; }
  double value_at(std::size_t i, std::size_t j) const {
    return values_.at(i).at(j);
  }

  /// R_self(w, h) in K/W, bilinear, clamped to table boundary.
  double lookup(double width_mm, double height_mm) const;

  void save(std::ostream& os) const;
  static SelfResistanceTable load(std::istream& is);

 private:
  std::vector<double> widths_;
  std::vector<double> heights_;
  std::vector<std::vector<double>> values_;  // [width index][height index]
};

/// 1D linear-interpolated table over center-to-center distance in mm.
class MutualResistanceTable {
 public:
  MutualResistanceTable() = default;
  /// Distances strictly increasing, >= 2 entries. Throws on malformed input.
  MutualResistanceTable(std::vector<double> distances_mm,
                        std::vector<double> values);

  bool empty() const { return distances_.empty(); }
  const std::vector<double>& distances() const { return distances_; }
  const std::vector<double>& values() const { return values_; }

  /// R_mutual(d) in K/W, linear, clamped at both ends.
  double lookup(double distance_mm) const;

  void save(std::ostream& os) const;
  static MutualResistanceTable load(std::istream& is);

 private:
  std::vector<double> distances_;
  std::vector<double> values_;
};

/// Generic 2D bilinear table alias: also used for the position-correction
/// factor C(cx, cy) that scales R_self for dies placed off-center (boundary
/// effects: the sink's lateral spreading length is ~20 mm, so edge dies
/// spread heat over a truncated region and run hotter).
using BilinearTable2D = SelfResistanceTable;

namespace table_detail {
/// Index i such that axis[i] <= x <= axis[i+1], clamped to valid segments.
std::size_t segment_index(const std::vector<double>& axis, double x);
/// Throws std::invalid_argument unless strictly increasing with >= 2 entries.
void check_axis(const std::vector<double>& axis, const std::string& name);
}  // namespace table_detail

}  // namespace rlplan::thermal
