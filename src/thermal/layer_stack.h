// Vertical layer stack of a 2.5D package.
//
// Layers are ordered bottom (interposer, index 0) to top (heat sink). Exactly
// one layer is the *chiplet layer*: laterally heterogeneous — silicon over
// die footprints, underfill elsewhere — and the layer where power enters.
// The top layer convects to ambient through an effective heat-transfer
// coefficient (lumping sink fins + airflow, as HotSpot's r_convec does).
//
// Heat also leaves weakly through the bottom (interposer -> package
// substrate -> board), modelled by a secondary coefficient.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "thermal/material.h"

namespace rlplan::thermal {

struct Layer {
  std::string name;
  double thickness = 0.0;  ///< m
  Material material;       ///< bulk material (chiplet layer: die material)
  bool is_chiplet_layer = false;
};

class LayerStack {
 public:
  LayerStack() = default;
  LayerStack(std::vector<Layer> layers, Material fill, double h_top,
             double h_bottom, double ambient_c);

  /// Default 2.5D flip-chip stack (bottom to top):
  ///   interposer Si 100um | chiplet layer Si/underfill 150um |
  ///   TIM 50um | Cu spreader 1mm | Al sink base 5mm, convective top.
  /// h_top is tuned so bundled benchmarks land in the paper's 75-95 degC
  /// operating window at realistic powers.
  static LayerStack default_2p5d();

  std::size_t num_layers() const { return layers_.size(); }
  const Layer& layer(std::size_t i) const { return layers_.at(i); }
  const std::vector<Layer>& layers() const { return layers_; }

  /// Index of the unique chiplet layer.
  std::size_t chiplet_layer_index() const;

  /// Fill material between dies on the chiplet layer.
  const Material& fill_material() const { return fill_; }

  /// Effective convection coefficient at the stack top, W / (m^2 K).
  double h_top() const { return h_top_; }
  /// Secondary heat path through the package bottom, W / (m^2 K).
  double h_bottom() const { return h_bottom_; }
  /// Ambient temperature, degrees Celsius.
  double ambient_c() const { return ambient_c_; }

  void set_h_top(double h) { h_top_ = h; }
  void set_h_bottom(double h) { h_bottom_ = h; }
  void set_ambient_c(double t) { ambient_c_ = t; }

  /// Throws std::invalid_argument on malformed stacks (no layers, no or
  /// multiple chiplet layers, non-positive thickness/conductivity).
  void validate() const;

 private:
  std::vector<Layer> layers_;
  Material fill_ = underfill();
  double h_top_ = 0.0;
  double h_bottom_ = 0.0;
  double ambient_c_ = 45.0;
};

}  // namespace rlplan::thermal
