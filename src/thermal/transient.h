// Transient thermal analysis — an extension beyond the paper's steady-state
// evaluation (HotSpot's other operating mode).
//
// The grid RC network gains per-node heat capacities C (volumetric heat
// capacity x cell volume) and is integrated with unconditionally stable
// backward Euler:
//
//   (C/dt + G) T_{n+1} = (C/dt) T_n + P
//
// Each step is one SPD solve, warm-started from the previous step, so even
// fine time grids are cheap. Useful for power-step response ("how fast does
// a boosted GPU die approach its steady peak?") and thermal time-constant
// extraction, both of which the tests exercise.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "core/chiplet.h"
#include "core/floorplan.h"
#include "thermal/grid_solver.h"

namespace rlplan::thermal {

/// Volumetric heat capacities, J / (m^3 K). Indexed by material name with a
/// fallback default; kept separate from Material so steady-state users pay
/// nothing.
double volumetric_heat_capacity(const Material& material);

struct TransientConfig {
  GridDims dims{32, 32};
  CgOptions cg{};
  double dt_s = 1e-3;        ///< time step
  double duration_s = 0.1;   ///< total simulated time
  /// Optional per-step power schedule: power_scale(t) multiplies every
  /// chiplet's power at time t. Identity when empty.
  std::function<double(double)> power_scale{};
};

struct TransientSample {
  double time_s = 0.0;
  double max_temp_c = 0.0;
};

struct TransientResult {
  std::vector<TransientSample> trace;  ///< peak chiplet temp over time
  double final_max_temp_c = 0.0;
  std::vector<double> final_chiplet_temp_c;
  std::size_t steps = 0;
};

/// Integrates the placement's thermal response from ambient (or from
/// `initial_dt`, a delta-T field of matching size when provided).
TransientResult solve_transient(const LayerStack& stack,
                                const ChipletSystem& system,
                                const Floorplan& floorplan,
                                const TransientConfig& config,
                                const std::vector<double>* initial_dt = nullptr);

/// Time for the peak temperature to reach `fraction` (e.g. 0.632 = one time
/// constant) of its final rise, from a transient trace. Returns -1 when the
/// trace never reaches it.
double rise_time(const TransientResult& result, double fraction);

}  // namespace rlplan::thermal
