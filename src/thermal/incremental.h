// Incremental thermal evaluation engine (the reward hot path).
//
// FastThermalModel::evaluate() is a superposition: receiver i's temperature
// is its own self term plus the sum over every other placed die j of a
// pairwise coupling term that depends only on (i's probe points, j's
// sub-sources, both powers). Both optimizers mutate one or two dies per step
// (the RL env places one chiplet per action; TAP-2.5D SA displaces/swaps/
// rotates), so almost every pairwise term of the previous evaluation is
// still valid.
//
// IncrementalThermalState caches exactly those terms: a dense pairwise
// coupling table pair[receiver][source][probe] plus per-die self terms and
// probe/sub-source geometry. Placing (or moving) one die recomputes only the
// O(n) coupling rows involving that die; removing a die or undoing a
// rejected SA move costs no kernel work at all.
//
// Two execution tiers, mirroring the batch SoA kernels (soa_kernels.h):
//
//  * Forced scalar (RLPLANNER_SIMD=scalar, unsupported hosts, or
//    set_simd_level(kScalar)): coupling rows come from the model's own
//    source_contribution() and a query re-sums the cached rows in the batch
//    evaluator's source order — incremental and batch results are BIT-EXACT
//    (each summed double is the very value evaluate() would produce).
//  * Dispatched (AVX2/NEON): rows come from the fused pair-row kernels fed
//    by persistent SoA per-die blocks (probe points and image-expanded
//    sub-source coordinates, bound once and refreshed in place per move),
//    and the max-temperature query is itself incremental — per-die row
//    partial sums are patched in place per move (subtract the old source
//    terms, add the new ones, re-sum only the moved die's own row) with
//    journaled snapshots so commit/rollback restores them bit-exactly, and
//    a deterministic full re-reduction every kResumInterval patches bounds
//    accumulation drift at the ulp level. Results stay within the repo-wide
//    1e-9 C envelope of the forced-scalar path, identical for every run and
//    thread count.
//
// IncrementalFastModelEvaluator adapts the state to the ThermalEvaluator
// incremental protocol (notify_place / notify_remove / commit / rollback)
// and is a drop-in replacement for FastModelEvaluator everywhere — including
// parallel::VecEnv, whose per-replica clones each get independent state.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/chiplet.h"
#include "core/floorplan.h"
#include "thermal/evaluator.h"
#include "thermal/fast_model.h"
#include "thermal/soa_snapshot.h"
#include "util/simd.h"

namespace rlplan::thermal {

struct SoaKernelOps;

class IncrementalThermalState {
 public:
  /// Dense pair-cache memory grows as n^2 * probes^2; beyond this many dies
  /// callers should prefer batch evaluation (IncrementalFastModelEvaluator
  /// falls back automatically).
  static constexpr std::size_t kMaxChiplets = 256;

  /// Patched partial sums accumulate one rounding step per move; a full
  /// deterministic re-reduction every this many patches keeps the drift at
  /// ~64 ulp of the sum magnitude (~1e-13 C), far inside the 1e-9 envelope.
  static constexpr int kResumInterval = 64;

  /// `model` and `system` must outlive the state. Starts with an empty
  /// placement. Throws std::invalid_argument when the system exceeds
  /// kMaxChiplets or the model is empty.
  IncrementalThermalState(const FastThermalModel& model,
                          const ChipletSystem& system);

  const ChipletSystem& system() const { return *system_; }
  const FastThermalModel& model() const { return *model_; }

  std::size_t num_placed() const { return num_placed_; }
  bool is_placed(std::size_t i) const { return dies_.at(i).placement.has_value(); }
  const std::optional<Placement>& placement(std::size_t i) const {
    return dies_.at(i).placement;
  }

  /// Places chiplet `i` (or moves it when already placed): recomputes the
  /// O(n) coupling rows involving i. Journaled: a move additionally
  /// snapshots the overwritten couplings (and, in patched-query mode, the
  /// partial-sum array) so undo() can restore them without kernel work.
  void place(std::size_t i, const Placement& p);
  /// Unplaces chiplet `i` (no kernel work). Journaled; no-op when unplaced.
  void remove(std::size_t i);
  /// Removes every placed chiplet (journaled like individual removes).
  void clear();
  /// Applies delta updates so the state matches `fp` (place/remove for each
  /// die whose placement differs). `fp` must be over the same system.
  void sync(const Floorplan& fp);

  /// Accepts all mutations since the last commit()/undo().
  void commit() { journal_.clear(); }
  /// Reverts all mutations since the last commit(), newest first, by
  /// restoring journaled snapshots — no kernel evaluations (the SA reject
  /// path costs pure memory copies). Partial sums are restored verbatim, so
  /// rollback is bit-exact in every mode.
  void undo();

  /// Peak temperature over placed dies (ambient when none placed). Equal to
  /// FastThermalModel::evaluate(...).max_temp_c on the synced placement in
  /// forced-scalar mode; within 1e-9 C of it when dispatched.
  double max_temperature_c() const;
  /// Temperature of one chiplet (ambient when unplaced) — one row of the
  /// batch result, under the same mode contract as max_temperature_c().
  double chiplet_temperature_c(std::size_t i) const;
  /// All chiplet temperatures, indexed like the system.
  void temperatures(std::vector<double>& out) const;

  /// Directed pair coupling ROWS recomputed so far — one unit per
  /// (receiver, source) kernel-row recompute regardless of kernel tier or
  /// probe count (perf accounting: a batch evaluation costs n*(n-1) of
  /// these, a single-die move costs 2*(n-1)).
  long pair_updates() const { return pair_updates_; }
  /// Patched-sum mutations applied (patched-query mode only).
  long sum_patches() const { return sum_patches_; }
  /// Full deterministic re-reductions of the partial sums (first query plus
  /// one per kResumInterval patches).
  long sum_resums() const { return sum_resums_; }

  /// The SIMD level the pair-row kernels actually run at. New states start
  /// at dispatch_level(); kScalar means the exact source_contribution()
  /// path.
  util::SimdLevel simd_level() const { return simd_level_; }

  /// Overrides the kernel selection (differential tests, forced-scalar
  /// benches). Levels whose kernels are not compiled in or not supported by
  /// the host fall back to kScalar — never to a different SIMD level. Also
  /// resets the query mode to the level's default (patched iff kernels are
  /// installed); call set_patched_query() after to override. Returns the
  /// level actually installed.
  util::SimdLevel set_simd_level(util::SimdLevel level);

  /// Process-wide default kernel level (util::active_simd_level() with
  /// unavailable levels collapsed to kScalar — what benches publish).
  static util::SimdLevel dispatch_level();

  /// Whether queries answer from the journaled partial sums (default when
  /// kernels are dispatched) instead of a full ascending re-summation (the
  /// bit-exact default for forced scalar).
  bool patched_query() const { return patched_query_; }
  /// Overrides the query mode — primarily so tests can exercise the
  /// journaled-sum machinery under scalar kernels (it is numerically
  /// independent of the kernel tier).
  void set_patched_query(bool on);

 private:
  struct DieCache {
    std::optional<Placement> placement;
    Rect rect{};
    double power = 0.0;      // from the system; fixed
    double self_rise = 0.0;  // R_self * power at the current placement
    double corr = 1.0;       // position-correction factor at the center
    std::vector<Point> probes;   // receiver probe points (probe_count())
    std::vector<double> shapes;  // per-probe self-heating shape factors
    std::vector<Point> subs;     // sub-source points (when power > 0)
  };

  struct JournalEntry {
    std::size_t die = 0;
    DieCache prev_cache;  // the die's full cache (incl. placement) before
    // Pair rows a move overwrote: for each peer j placed at mutation time,
    // the 2 * probe_count_ doubles of pair(die, j) followed by pair(j, die).
    // Empty for removes and first-time places (their undo needs no rows).
    std::vector<std::size_t> peers;
    std::vector<double> saved_rows;
    // Patched-query mode: verbatim snapshot of the partial-sum array before
    // the mutation (empty when sums were not materialized), restored on undo
    // so rollback is bit-exact by construction.
    std::vector<double> prev_sums;
    bool sums_were_valid = false;
    int prev_patch_epoch = 0;
  };

  // Mutation primitives without journaling.
  void apply_place(std::size_t i, const Placement& p);
  void apply_remove(std::size_t i);

  double* pair_row(std::size_t receiver, std::size_t source) {
    return pair_.data() + (receiver * dies_.size() + source) * probe_count_;
  }
  const double* pair_row(std::size_t receiver, std::size_t source) const {
    return pair_.data() + (receiver * dies_.size() + source) * probe_count_;
  }

  /// Refreshes die i's persistent SoA blocks (flat probe coordinates and
  /// image-expanded sub-source coordinates) from its DieCache. Cheap —
  /// O(probes + ss * img) stores, no kernel math.
  void refresh_die_blocks(std::size_t i);
  /// Computes pair_row(receiver, source) through the dispatched pair-row
  /// kernel from the persistent SoA blocks; matches source_contribution()'s
  /// multiply order, within the documented ulp envelope of it.
  void compute_pair_row_kernel(std::size_t receiver, std::size_t source);

  /// Peak rise of placed receiver `i`: max over probes of self * shape plus
  /// cached couplings summed in source-index order (matching the batch
  /// evaluator's accumulation order exactly).
  double receiver_peak_rise(std::size_t i) const;
  /// Peak rise of placed receiver `i` from the materialized partial sums.
  double receiver_peak_rise_cached(std::size_t i) const;

  bool sums_active() const { return patched_query_ && sums_valid_; }
  /// Adds (sign +1) or subtracts (sign -1) die i's cached source rows
  /// from every other placed receiver's partial sums.
  void patch_source_terms(std::size_t i, double sign);
  /// Fresh ascending re-summation of receiver i's own partial sums.
  void rebuild_receiver_sum(std::size_t i) const;
  /// Materializes (or periodically re-reduces) the partial sums at query
  /// time; deterministic — depends only on the cached rows.
  void ensure_sums() const;

  const FastThermalModel* model_ = nullptr;
  const ChipletSystem* system_ = nullptr;
  std::size_t probe_count_ = 0;
  std::size_t num_placed_ = 0;
  std::vector<DieCache> dies_;
  // pair_[(i * n + j) * probe_count_ + p]: rise at probe p of receiver i
  // caused by source j (power and pair correction folded in). Valid while
  // both dies keep the placement it was computed at.
  std::vector<double> pair_;
  std::vector<JournalEntry> journal_;
  long pair_updates_ = 0;
  long sum_patches_ = 0;
  mutable long sum_resums_ = 0;

  // Shared bind-time kernel constants plus the persistent SoA per-die blocks
  // feeding the pair-row kernels (refreshed in place per move; only read for
  // placed dies).
  SoaModelConsts k_{};
  std::vector<double> probe_x_;   // n * probe_count_
  std::vector<double> probe_y_;   // n * probe_count_
  std::vector<double> src_x_;     // n * ss * img
  std::vector<double> src_y_;     // n * ss * img
  std::vector<double> src_scale_; // n: power / ss (fixed per system)

  // Dispatched pair-row kernels (nullptr = exact scalar path) and level.
  const SoaKernelOps* ops_ = nullptr;
  util::SimdLevel simd_level_ = util::SimdLevel::kScalar;

  // Journaled per-die row partial sums: mutual_sum_[i * probe_count_ + p] is
  // the mutual term of receiver i at probe p, valid for placed dies while
  // sums_valid_. Mutable because queries materialize/re-reduce lazily.
  bool patched_query_ = false;
  mutable std::vector<double> mutual_sum_;  // n * probe_count_
  mutable bool sums_valid_ = false;
  mutable int patch_epoch_ = 0;  ///< patches since the last full re-reduce
};

/// Fast-model evaluator with the incremental protocol: behaves exactly like
/// FastModelEvaluator for batch queries, and answers
/// incremental_max_temperature() from an IncrementalThermalState kept in
/// sync with the caller's floorplan via diffing plus explicit notify_* calls.
class IncrementalFastModelEvaluator final : public ThermalEvaluator {
 public:
  explicit IncrementalFastModelEvaluator(FastThermalModel model)
      : model_(std::move(model)) {}

  double max_temperature(const ChipletSystem& system,
                         const Floorplan& floorplan) override {
    ++count_;
    ++full_evals_;
    return model_.evaluate(system, floorplan).max_temp_c;
  }
  /// Batched SoA scoring (does not disturb the incremental session state —
  /// the snapshot lanes are independent of the pair-coupling cache).
  std::vector<double> max_temperature_batch(
      const ChipletSystem& system, std::span<const Floorplan> floorplans,
      parallel::ThreadPool* pool = nullptr) override {
    count_ += static_cast<long>(floorplans.size());
    full_evals_ += static_cast<long>(floorplans.size());
    const auto results = model_.evaluate_batch(system, floorplans, pool);
    std::vector<double> out;
    out.reserve(results.size());
    for (const auto& r : results) out.push_back(r.max_temp_c);
    return out;
  }
  long num_evaluations() const override { return count_; }
  std::string name() const override { return "fast-model-incremental"; }

  /// Deep copy with fresh (empty) incremental state — what VecEnv clones for
  /// each replica. A pinned SIMD level carries over.
  std::unique_ptr<ThermalEvaluator> clone() const override {
    auto copy = std::make_unique<IncrementalFastModelEvaluator>(model_);
    copy->forced_level_ = forced_level_;
    return copy;
  }

  bool supports_incremental() const override { return true; }
  void notify_reset(const ChipletSystem& system) override;
  void notify_place(const ChipletSystem& system, std::size_t i,
                    const Placement& p) override;
  void notify_remove(std::size_t i) override;
  void commit() override;
  void rollback() override;
  double incremental_max_temperature(const ChipletSystem& system,
                                     const Floorplan& floorplan) override;

  const FastThermalModel& model() const { return model_; }
  /// Incremental-path queries answered so far.
  long incremental_queries() const { return incremental_queries_; }
  /// Full batch evaluations performed (fallbacks + max_temperature calls).
  long full_evaluations() const { return full_evals_; }
  const IncrementalThermalState* state() const {
    return state_ ? &*state_ : nullptr;
  }

  /// Pins the pair-row kernel level for this evaluator's states, current
  /// and future sessions (forced-scalar benches and differential tests;
  /// per-instance, unlike the process-wide RLPLANNER_SIMD override).
  void set_simd_level(util::SimdLevel level);

 private:
  /// (Re)binds the session to `system`, detecting both pointer changes and a
  /// different system recycled at the same address.
  bool ensure_session(const ChipletSystem& system);
  static double fingerprint(const ChipletSystem& system);

  FastThermalModel model_;
  std::optional<IncrementalThermalState> state_;
  std::optional<util::SimdLevel> forced_level_;
  const ChipletSystem* session_system_ = nullptr;
  double session_fingerprint_ = 0.0;
  long count_ = 0;
  long incremental_queries_ = 0;
  long full_evals_ = 0;
  long last_pair_updates_ = 0;  ///< obs cache-effectiveness delta baseline
  long last_sum_patches_ = 0;   ///< obs delta baseline for sum patches
};

}  // namespace rlplan::thermal
