// Incremental thermal evaluation engine (the reward hot path).
//
// FastThermalModel::evaluate() is a superposition: receiver i's temperature
// is its own self term plus the sum over every other placed die j of a
// pairwise coupling term that depends only on (i's probe points, j's
// sub-sources, both powers). Both optimizers mutate one or two dies per step
// (the RL env places one chiplet per action; TAP-2.5D SA displaces/swaps/
// rotates), so almost every pairwise term of the previous evaluation is
// still valid.
//
// IncrementalThermalState caches exactly those terms: a dense pairwise
// coupling table pair[receiver][source][probe] plus per-die self terms and
// probe/sub-source geometry. Placing (or moving) one die recomputes only the
// O(n) couplings involving that die; removing a die or undoing a rejected SA
// move costs no kernel work at all. A temperature query sums cached
// couplings in the same source order as the batch evaluator, so incremental
// and batch results agree exactly (each summed double is the very value
// evaluate() would have produced).
//
// IncrementalFastModelEvaluator adapts the state to the ThermalEvaluator
// incremental protocol (notify_place / notify_remove / commit / rollback)
// and is a drop-in replacement for FastModelEvaluator everywhere — including
// parallel::VecEnv, whose per-replica clones each get independent state.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/chiplet.h"
#include "core/floorplan.h"
#include "thermal/evaluator.h"
#include "thermal/fast_model.h"

namespace rlplan::thermal {

class IncrementalThermalState {
 public:
  /// Dense pair-cache memory grows as n^2 * probes^2; beyond this many dies
  /// callers should prefer batch evaluation (IncrementalFastModelEvaluator
  /// falls back automatically).
  static constexpr std::size_t kMaxChiplets = 256;

  /// `model` and `system` must outlive the state. Starts with an empty
  /// placement. Throws std::invalid_argument when the system exceeds
  /// kMaxChiplets or the model is empty.
  IncrementalThermalState(const FastThermalModel& model,
                          const ChipletSystem& system);

  const ChipletSystem& system() const { return *system_; }
  const FastThermalModel& model() const { return *model_; }

  std::size_t num_placed() const { return num_placed_; }
  bool is_placed(std::size_t i) const { return dies_.at(i).placement.has_value(); }
  const std::optional<Placement>& placement(std::size_t i) const {
    return dies_.at(i).placement;
  }

  /// Places chiplet `i` (or moves it when already placed): recomputes the
  /// O(n * probes^2 * subsources^2) couplings involving i. Journaled: a move
  /// additionally snapshots the overwritten couplings so undo() can restore
  /// them without kernel work.
  void place(std::size_t i, const Placement& p);
  /// Unplaces chiplet `i` (no kernel work). Journaled; no-op when unplaced.
  void remove(std::size_t i);
  /// Removes every placed chiplet (journaled like individual removes).
  void clear();
  /// Applies delta updates so the state matches `fp` (place/remove for each
  /// die whose placement differs). `fp` must be over the same system.
  void sync(const Floorplan& fp);

  /// Accepts all mutations since the last commit()/undo().
  void commit() { journal_.clear(); }
  /// Reverts all mutations since the last commit(), newest first, by
  /// restoring journaled snapshots — no kernel evaluations (the SA reject
  /// path costs pure memory copies).
  void undo();

  /// Peak temperature over placed dies (ambient when none placed), equal to
  /// FastThermalModel::evaluate(...).max_temp_c on the synced placement.
  double max_temperature_c() const;
  /// Temperature of one chiplet (ambient when unplaced) — one row of the
  /// batch result.
  double chiplet_temperature_c(std::size_t i) const;
  /// All chiplet temperatures, indexed like the system.
  void temperatures(std::vector<double>& out) const;

  /// Directed pair couplings recomputed so far (perf accounting: a batch
  /// evaluation costs n*(n-1) of these, a single-die move costs 2*(n-1)).
  long pair_updates() const { return pair_updates_; }

 private:
  struct DieCache {
    std::optional<Placement> placement;
    Rect rect{};
    double power = 0.0;      // from the system; fixed
    double self_rise = 0.0;  // R_self * power at the current placement
    double corr = 1.0;       // position-correction factor at the center
    std::vector<Point> probes;   // receiver probe points (probe_count())
    std::vector<double> shapes;  // per-probe self-heating shape factors
    std::vector<Point> subs;     // sub-source points (when power > 0)
  };

  struct JournalEntry {
    std::size_t die = 0;
    DieCache prev_cache;  // the die's full cache (incl. placement) before
    // Pair rows a move overwrote: for each peer j placed at mutation time,
    // the 2 * probe_count_ doubles of pair(die, j) followed by pair(j, die).
    // Empty for removes and first-time places (their undo needs no rows).
    std::vector<std::size_t> peers;
    std::vector<double> saved_rows;
  };

  // Mutation primitives without journaling.
  void apply_place(std::size_t i, const Placement& p);
  void apply_remove(std::size_t i);

  double* pair_row(std::size_t receiver, std::size_t source) {
    return pair_.data() + (receiver * dies_.size() + source) * probe_count_;
  }
  const double* pair_row(std::size_t receiver, std::size_t source) const {
    return pair_.data() + (receiver * dies_.size() + source) * probe_count_;
  }

  /// Peak rise of placed receiver `i`: max over probes of self * shape plus
  /// cached couplings summed in source-index order (matching the batch
  /// evaluator's accumulation order exactly).
  double receiver_peak_rise(std::size_t i) const;

  const FastThermalModel* model_ = nullptr;
  const ChipletSystem* system_ = nullptr;
  std::size_t probe_count_ = 0;
  std::size_t num_placed_ = 0;
  std::vector<DieCache> dies_;
  // pair_[(i * n + j) * probe_count_ + p]: rise at probe p of receiver i
  // caused by source j (power and pair correction folded in). Valid while
  // both dies keep the placement it was computed at.
  std::vector<double> pair_;
  std::vector<JournalEntry> journal_;
  long pair_updates_ = 0;
};

/// Fast-model evaluator with the incremental protocol: behaves exactly like
/// FastModelEvaluator for batch queries, and answers
/// incremental_max_temperature() from an IncrementalThermalState kept in
/// sync with the caller's floorplan via diffing plus explicit notify_* calls.
class IncrementalFastModelEvaluator final : public ThermalEvaluator {
 public:
  explicit IncrementalFastModelEvaluator(FastThermalModel model)
      : model_(std::move(model)) {}

  double max_temperature(const ChipletSystem& system,
                         const Floorplan& floorplan) override {
    ++count_;
    ++full_evals_;
    return model_.evaluate(system, floorplan).max_temp_c;
  }
  /// Batched SoA scoring (does not disturb the incremental session state —
  /// the snapshot lanes are independent of the pair-coupling cache).
  std::vector<double> max_temperature_batch(
      const ChipletSystem& system, std::span<const Floorplan> floorplans,
      parallel::ThreadPool* pool = nullptr) override {
    count_ += static_cast<long>(floorplans.size());
    full_evals_ += static_cast<long>(floorplans.size());
    const auto results = model_.evaluate_batch(system, floorplans, pool);
    std::vector<double> out;
    out.reserve(results.size());
    for (const auto& r : results) out.push_back(r.max_temp_c);
    return out;
  }
  long num_evaluations() const override { return count_; }
  std::string name() const override { return "fast-model-incremental"; }

  /// Deep copy with fresh (empty) incremental state — what VecEnv clones for
  /// each replica.
  std::unique_ptr<ThermalEvaluator> clone() const override {
    return std::make_unique<IncrementalFastModelEvaluator>(model_);
  }

  bool supports_incremental() const override { return true; }
  void notify_reset(const ChipletSystem& system) override;
  void notify_place(const ChipletSystem& system, std::size_t i,
                    const Placement& p) override;
  void notify_remove(std::size_t i) override;
  void commit() override;
  void rollback() override;
  double incremental_max_temperature(const ChipletSystem& system,
                                     const Floorplan& floorplan) override;

  const FastThermalModel& model() const { return model_; }
  /// Incremental-path queries answered so far.
  long incremental_queries() const { return incremental_queries_; }
  /// Full batch evaluations performed (fallbacks + max_temperature calls).
  long full_evaluations() const { return full_evals_; }
  const IncrementalThermalState* state() const {
    return state_ ? &*state_ : nullptr;
  }

 private:
  /// (Re)binds the session to `system`, detecting both pointer changes and a
  /// different system recycled at the same address.
  bool ensure_session(const ChipletSystem& system);
  static double fingerprint(const ChipletSystem& system);

  FastThermalModel model_;
  std::optional<IncrementalThermalState> state_;
  const ChipletSystem* session_system_ = nullptr;
  double session_fingerprint_ = 0.0;
  long count_ = 0;
  long incremental_queries_ = 0;
  long full_evals_ = 0;
  long last_pair_updates_ = 0;  ///< obs cache-effectiveness delta baseline
};

}  // namespace rlplan::thermal
