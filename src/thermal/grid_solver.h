// Steady-state thermal solver facade — the repository's "HotSpot".
//
// GridThermalSolver plays the role HotSpot 6.0 plays in the paper: the
// accurate-but-expensive ground truth that (a) the SA baseline queries in its
// inner loop and (b) the fast thermal model is characterized against.
#pragma once

#include <cstddef>
#include <vector>

#include "core/chiplet.h"
#include "core/floorplan.h"
#include "thermal/cg_solver.h"
#include "thermal/grid_model.h"
#include "thermal/layer_stack.h"

namespace rlplan::thermal {

/// Full temperature field over all layers (degrees Celsius, absolute).
class ThermalField {
 public:
  ThermalField() = default;
  ThermalField(std::size_t layers, GridDims dims, std::vector<double> temps_c);

  std::size_t layers() const { return layers_; }
  GridDims dims() const { return dims_; }

  double at(std::size_t layer, std::size_t row, std::size_t col) const {
    return temps_c_.at(layer * dims_.cells() + row * dims_.cols + col);
  }

  const std::vector<double>& raw() const { return temps_c_; }

  /// Maximum temperature within one layer.
  double layer_max(std::size_t layer) const;

 private:
  std::size_t layers_ = 0;
  GridDims dims_;
  std::vector<double> temps_c_;
};

/// Per-chiplet and system-level result of one steady-state solve.
struct ThermalResult {
  double max_temp_c = 0.0;  ///< peak chiplet temperature (the paper's T)
  std::vector<double> chiplet_temp_c;  ///< per-chiplet peak temperature
  CgResult cg;  ///< final solve (the fallback's, when one ran)
  double solve_seconds = 0.0;
  /// Count of fallback re-solves taken because the primary CG solve did not
  /// converge (real divergence or the "solver_diverge" chaos site): the
  /// solver retries once from a cold start with a 4x iteration budget.
  std::size_t fallback_resolves = 0;
  /// True only when the fallback *also* failed to converge — temperatures
  /// come from the lowest-residual iterate and result.cg.relative_residual
  /// reports how far off it is.
  bool degraded = false;
};

struct GridSolverConfig {
  GridDims dims{48, 48};
  CgOptions cg{};
  /// Reuse the previous temperature field as the CG starting point when the
  /// grid shape matches (big win inside SA loops with incremental moves).
  bool warm_start = true;
};

/// Thermal "ground truth". Not thread-safe (warm-start cache); use one
/// instance per thread.
class GridThermalSolver {
 public:
  /// `stack` must outlive the solver.
  explicit GridThermalSolver(const LayerStack& stack,
                             GridSolverConfig config = {});

  const LayerStack& stack() const { return *stack_; }
  const GridSolverConfig& config() const { return config_; }

  /// Solves the placement and reports per-chiplet peak temperatures.
  /// Unplaced chiplets get ambient temperature.
  ThermalResult solve(const ChipletSystem& system, const Floorplan& floorplan);

  /// As solve(), additionally returning the full field (characterization).
  ThermalResult solve_with_field(const ChipletSystem& system,
                                 const Floorplan& floorplan,
                                 ThermalField& field_out);

  /// Number of linear solves performed so far (budget accounting).
  long num_solves() const { return num_solves_; }

  void reset_warm_start() { last_solution_.clear(); }

 private:
  ThermalResult solve_impl(const ChipletSystem& system,
                           const Floorplan& floorplan,
                           ThermalField* field_out);

  const LayerStack* stack_;
  GridSolverConfig config_;
  std::vector<double> last_solution_;  // delta-T, warm start cache
  long num_solves_ = 0;
};

/// Extracts per-chiplet peak temperature (deg C) from a solved field:
/// max over chiplet-layer cells overlapping the footprint. Ambient for
/// unplaced chiplets.
std::vector<double> chiplet_peak_temps(const ThermalField& field,
                                       const ThermalGridModel& model,
                                       const ChipletSystem& system,
                                       const Floorplan& floorplan,
                                       std::size_t chiplet_layer);

}  // namespace rlplan::thermal
