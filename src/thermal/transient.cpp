#include "thermal/transient.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "thermal/grid_model.h"

namespace rlplan::thermal {

double volumetric_heat_capacity(const Material& material) {
  // J / (m^3 K), standard packaging values.
  if (material.name == "silicon" || material.name == "interposer-Si") {
    return 1.75e6;
  }
  if (material.name == "copper") return 3.45e6;
  if (material.name == "aluminum") return 2.42e6;
  if (material.name == "TIM") return 2.0e6;
  if (material.name == "underfill") return 1.7e6;
  return 1.8e6;  // generic filled polymer / composite fallback
}

namespace {

/// Jacobi-preconditioned CG on the capacity-augmented operator
/// (G + diag(C/dt)) x = b, matrix-free so the finalized conductance matrix
/// can be reused unchanged. Warm-starts on x.
void solve_augmented(const SparseMatrix& g,
                     const std::vector<double>& c_over_dt,
                     const std::vector<double>& inv_diag,
                     std::span<const double> b, std::vector<double>& x,
                     const CgOptions& options) {
  const std::size_t n = x.size();
  const auto apply = [&](std::span<const double> in, std::span<double> out) {
    g.multiply(in, out);
    for (std::size_t i = 0; i < n; ++i) out[i] += c_over_dt[i] * in[i];
  };

  std::vector<double> r(n), z(n), p(n), ap(n);
  apply(x, ap);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - ap[i];

  double b_norm = 0.0;
  for (double v : b) b_norm += v * v;
  b_norm = std::sqrt(b_norm);
  const double stop = options.tolerance * (b_norm > 0.0 ? b_norm : 1.0);

  double r_norm = 0.0;
  for (double v : r) r_norm += v * v;
  r_norm = std::sqrt(r_norm);
  if (r_norm <= stop) return;

  for (std::size_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
  p = z;
  double rz = 0.0;
  for (std::size_t i = 0; i < n; ++i) rz += r[i] * z[i];

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    apply(p, ap);
    double p_ap = 0.0;
    for (std::size_t i = 0; i < n; ++i) p_ap += p[i] * ap[i];
    if (p_ap <= 0.0) break;
    const double alpha = rz / p_ap;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    r_norm = 0.0;
    for (double v : r) r_norm += v * v;
    r_norm = std::sqrt(r_norm);
    if (r_norm <= stop) break;
    for (std::size_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
    double rz_next = 0.0;
    for (std::size_t i = 0; i < n; ++i) rz_next += r[i] * z[i];
    const double beta = rz_next / rz;
    rz = rz_next;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
}

/// Peak chiplet-layer temperature over die footprints for a delta-T field.
double peak_die_temp(const ThermalGridModel& model, const LayerStack& stack,
                     const ChipletSystem& system, const Floorplan& floorplan,
                     const std::vector<double>& dt_field) {
  const std::size_t layer = stack.chiplet_layer_index();
  const GridDims dims = model.dims();
  double peak = stack.ambient_c();
  for (std::size_t i = 0; i < system.num_chiplets(); ++i) {
    if (!floorplan.is_placed(i)) continue;
    const Rect rect = floorplan.rect_of(i);
    for (std::size_t row = 0; row < dims.rows; ++row) {
      for (std::size_t col = 0; col < dims.cols; ++col) {
        if (model.coverage_fraction(row, col, rect) < 0.5) continue;
        peak = std::max(
            peak, stack.ambient_c() + dt_field[model.node(layer, row, col)]);
      }
    }
  }
  return peak;
}

}  // namespace

TransientResult solve_transient(const LayerStack& stack,
                                const ChipletSystem& system,
                                const Floorplan& floorplan,
                                const TransientConfig& config,
                                const std::vector<double>* initial_dt) {
  if (config.dt_s <= 0.0 || config.duration_s <= 0.0) {
    throw std::invalid_argument(
        "solve_transient: dt and duration must be > 0");
  }
  stack.validate();
  ThermalGridModel model(stack, system, config.dims);
  const SparseMatrix g = model.build_conductance(floorplan);
  const std::vector<double> base_power = model.build_power(floorplan);

  // Per-node C/dt: volumetric capacity x cell volume / time step.
  std::vector<double> c_over_dt(model.num_nodes(), 0.0);
  const double cell_area = model.dx() * model.dy();
  for (std::size_t l = 0; l < stack.num_layers(); ++l) {
    const Layer& layer = stack.layer(l);
    const double cap =
        volumetric_heat_capacity(layer.material) * cell_area * layer.thickness;
    for (std::size_t cell = 0; cell < config.dims.cells(); ++cell) {
      c_over_dt[l * config.dims.cells() + cell] = cap / config.dt_s;
    }
  }
  std::vector<double> inv_diag(model.num_nodes());
  {
    const auto gd = g.diagonal();
    for (std::size_t i = 0; i < inv_diag.size(); ++i) {
      inv_diag[i] = 1.0 / (gd[i] + c_over_dt[i]);
    }
  }

  std::vector<double> dt_field(model.num_nodes(), 0.0);
  if (initial_dt != nullptr) {
    if (initial_dt->size() != dt_field.size()) {
      throw std::invalid_argument("solve_transient: initial field size");
    }
    dt_field = *initial_dt;
  }

  TransientResult result;
  result.trace.push_back(
      {0.0, peak_die_temp(model, stack, system, floorplan, dt_field)});

  const auto steps =
      static_cast<std::size_t>(std::ceil(config.duration_s / config.dt_s));
  std::vector<double> rhs(model.num_nodes());
  for (std::size_t s = 1; s <= steps; ++s) {
    const double t = static_cast<double>(s) * config.dt_s;
    const double scale = config.power_scale ? config.power_scale(t) : 1.0;
    for (std::size_t i = 0; i < rhs.size(); ++i) {
      rhs[i] = c_over_dt[i] * dt_field[i] + scale * base_power[i];
    }
    solve_augmented(g, c_over_dt, inv_diag, rhs, dt_field, config.cg);
    result.trace.push_back(
        {t, peak_die_temp(model, stack, system, floorplan, dt_field)});
    ++result.steps;
  }

  result.final_max_temp_c = result.trace.back().max_temp_c;
  result.final_chiplet_temp_c.assign(system.num_chiplets(),
                                     stack.ambient_c());
  const std::size_t layer = stack.chiplet_layer_index();
  for (std::size_t i = 0; i < system.num_chiplets(); ++i) {
    if (!floorplan.is_placed(i)) continue;
    const Rect rect = floorplan.rect_of(i);
    double peak = stack.ambient_c();
    for (std::size_t row = 0; row < config.dims.rows; ++row) {
      for (std::size_t col = 0; col < config.dims.cols; ++col) {
        if (model.coverage_fraction(row, col, rect) < 0.5) continue;
        peak = std::max(peak, stack.ambient_c() +
                                  dt_field[model.node(layer, row, col)]);
      }
    }
    result.final_chiplet_temp_c[i] = peak;
  }
  return result;
}

double rise_time(const TransientResult& result, double fraction) {
  if (result.trace.size() < 2) return -1.0;
  const double start = result.trace.front().max_temp_c;
  const double end = result.trace.back().max_temp_c;
  const double target = start + fraction * (end - start);
  for (const auto& sample : result.trace) {
    if (sample.max_temp_c >= target) return sample.time_s;
  }
  return -1.0;
}

}  // namespace rlplan::thermal
