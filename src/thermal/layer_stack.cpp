#include "thermal/layer_stack.h"

#include <stdexcept>

namespace rlplan::thermal {

LayerStack::LayerStack(std::vector<Layer> layers, Material fill, double h_top,
                       double h_bottom, double ambient_c)
    : layers_(std::move(layers)),
      fill_(std::move(fill)),
      h_top_(h_top),
      h_bottom_(h_bottom),
      ambient_c_(ambient_c) {}

LayerStack LayerStack::default_2p5d() {
  std::vector<Layer> layers = {
      {"interposer", 100e-6, interposer_silicon(), false},
      {"chiplets", 150e-6, silicon(), true},
      {"tim", 50e-6, tim(), false},
      {"spreader", 1e-3, copper(), false},
      {"sink", 5e-3, aluminum(), false},
  };
  // h_top ~ 2800 W/m^2K: strong forced-air sink over the package footprint.
  // h_bottom ~ 40 W/m^2K: weak leakage into the board.
  return LayerStack(std::move(layers), underfill(), 2800.0, 40.0, 45.0);
}

std::size_t LayerStack::chiplet_layer_index() const {
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (layers_[i].is_chiplet_layer) return i;
  }
  throw std::logic_error("LayerStack: no chiplet layer");
}

void LayerStack::validate() const {
  if (layers_.empty()) {
    throw std::invalid_argument("LayerStack: empty");
  }
  std::size_t chiplet_layers = 0;
  for (const auto& l : layers_) {
    if (l.thickness <= 0.0) {
      throw std::invalid_argument("Layer '" + l.name +
                                  "': non-positive thickness");
    }
    if (l.material.conductivity <= 0.0) {
      throw std::invalid_argument("Layer '" + l.name +
                                  "': non-positive conductivity");
    }
    if (l.is_chiplet_layer) ++chiplet_layers;
  }
  if (chiplet_layers != 1) {
    throw std::invalid_argument(
        "LayerStack: exactly one chiplet layer required");
  }
  if (fill_.conductivity <= 0.0) {
    throw std::invalid_argument("LayerStack: fill conductivity must be > 0");
  }
  if (h_top_ <= 0.0) {
    throw std::invalid_argument(
        "LayerStack: top convection coefficient must be > 0");
  }
  if (h_bottom_ < 0.0) {
    throw std::invalid_argument(
        "LayerStack: bottom coefficient must be >= 0");
  }
}

}  // namespace rlplan::thermal
