#include "thermal/soa_snapshot.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "thermal/soa_kernels.h"
#include "util/timer.h"

namespace rlplan::thermal {

util::SimdLevel SoaSnapshot::dispatch_level() { return soa_dispatch_level(); }

util::SimdLevel SoaSnapshot::set_simd_level(util::SimdLevel level) {
  ops_ = soa_kernel_ops(level);
  simd_level_ = ops_ != nullptr ? level : util::SimdLevel::kScalar;
  return simd_level_;
}

SoaSnapshot::SoaSnapshot(const FastThermalModel& model,
                         const ChipletSystem& system)
    : model_(&model), system_(&system) {
  if (model.empty()) {
    throw std::invalid_argument("SoaSnapshot: model has no tables");
  }
  n_ = system.num_chiplets();
  pc_ = static_cast<std::size_t>(model.probe_count());
  const auto sub = static_cast<std::size_t>(model.config().source_subsamples);
  ss_ = sub * sub;
  use_images_ = model.config().use_images;
  img_ = use_images_ ? 9 : 1;
  const double r = model.config().image_reflectivity;
  // Weight per image point, in the exact accumulation order of
  // FastThermalModel::image_kernel(): direct, 4 side mirrors, 4 corner
  // double-mirrors. r * r is precomputed because image_kernel's corner term
  // evaluates (reflectivity * reflectivity) first — same double either way.
  const double w9[9] = {1.0, r, r, r, r, r * r, r * r, r * r, r * r};
  std::copy(w9, w9 + 9, img_w_);
  correct_pairs_ =
      model.config().correct_mutual && model.has_position_correction();
  floor_ = model.uniform_floor();
  ambient_c_ = model.ambient_c();
  mutual_ = model.mutual_table().view();
  // MutualResistanceTable's own constructor enforces >= 2 knots, but the
  // cap/LUT math below underflows std::size_t (0 entries) or degenerates
  // (1 entry) if a malformed table ever slips through another path —
  // validate here, before any size - 1 arithmetic.
  if (mutual_.size < 2) {
    throw std::invalid_argument(
        "SoaSnapshot: mutual table needs >= 2 knots, got " +
        std::to_string(mutual_.size));
  }
  lut_img_.assign(2 * mutual_.size, 0.0);
  lut_raw_.assign(2 * mutual_.size, 0.0);
  for (std::size_t i = 0; i < mutual_.size; ++i) {
    const double diff =
        i + 1 < mutual_.size ? mutual_.values[i + 1] - mutual_.values[i] : 0.0;
    lut_raw_[2 * i] = mutual_.values[i];
    lut_raw_[2 * i + 1] = diff;
    lut_img_[2 * i] = mutual_.values[i] - floor_;
    lut_img_[2 * i + 1] = diff;
  }
  // Coordinates are capped in the double domain (instead of clamping the
  // integer index) so pass 1b stays branch-free: the cap is the largest
  // double below nk-1, making trunc() land on the last segment with a
  // fraction of ~1 — the same interpolated value to within an ulp.
  coord_cap_ = std::nextafter(static_cast<double>(mutual_.size - 1), 0.0);
  if (use_images_) {
    w_flat_.resize(ss_ * 9);
    for (std::size_t s = 0; s < ss_; ++s) {
      std::copy(img_w_, img_w_ + 9, w_flat_.data() + s * 9);
    }
  }
  set_simd_level(util::active_simd_level());

  placed_.assign(n_, 0);
  self_rise_.assign(n_, 0.0);
  corr_.assign(n_, 1.0);
  probe_x_.assign(n_ * pc_, 0.0);
  probe_y_.assign(n_ * pc_, 0.0);
  shape_.assign(n_ * pc_, 0.0);
  src_die_.reserve(n_);
  src_scale_.reserve(n_);
  src_corr_.reserve(n_);
  src_x_.reserve(n_ * ss_ * img_);
  src_y_.reserve(n_ * ss_ * img_);
  coord_.reserve(n_ * ss_ * img_);
  pair_corr_.reserve(n_);
}

void SoaSnapshot::refresh(const Floorplan& floorplan) {
  // Counter only: refresh runs per candidate (~µs); a span here would be
  // the dominant cost of the span itself at small die counts.
  RLPLAN_COUNTER_INC("thermal.soa.refreshes");
  if (!bound()) throw std::logic_error("SoaSnapshot: refresh while unbound");
  if (floorplan.num_chiplets() != n_) {
    throw std::invalid_argument(
        "SoaSnapshot: floorplan/system size mismatch");
  }
  const double pkg_w = model_->package_w_mm();
  const double pkg_h = model_->package_h_mm();
  src_die_.clear();
  src_scale_.clear();
  src_corr_.clear();
  src_x_.clear();
  src_y_.clear();
  for (std::size_t i = 0; i < n_; ++i) {
    placed_[i] = floorplan.is_placed(i) ? 1 : 0;
    if (!placed_[i]) continue;
    const Rect rect = floorplan.rect_of(i);
    // The per-die scalar terms go through the model's own building blocks,
    // so they are the very doubles evaluate() computes.
    model_->receiver_probes(rect, probes_scratch_, shapes_scratch_);
    for (std::size_t p = 0; p < pc_; ++p) {
      probe_x_[i * pc_ + p] = probes_scratch_[p].x;
      probe_y_[i * pc_ + p] = probes_scratch_[p].y;
      shape_[i * pc_ + p] = shapes_scratch_[p];
    }
    self_rise_[i] = model_->self_rise(system_->chiplet(i), rect);
    corr_[i] = model_->center_correction(rect.center());

    const double power = system_->chiplet(i).power;
    if (power <= 0.0) continue;
    src_die_.push_back(i);
    src_scale_.push_back(power / static_cast<double>(ss_));
    src_corr_.push_back(corr_[i]);
    model_->source_points(rect, subs_scratch_);
    for (const Point& s : subs_scratch_) {
      if (!use_images_) {
        src_x_.push_back(s.x);
        src_y_.push_back(s.y);
        continue;
      }
      // Mirror coordinates in image_kernel's emission order; the expressions
      // match image_kernel's mx/my arrays bit-for-bit.
      const double mx0 = -s.x;
      const double mx1 = 2.0 * pkg_w - s.x;
      const double my0 = -s.y;
      const double my1 = 2.0 * pkg_h - s.y;
      const double xs[9] = {s.x, mx0, mx1, s.x, s.x, mx0, mx0, mx1, mx1};
      const double ys[9] = {s.y, s.y, s.y, my0, my1, my0, my1, my0, my1};
      src_x_.insert(src_x_.end(), xs, xs + 9);
      src_y_.insert(src_y_.end(), ys, ys + 9);
    }
  }
}

double SoaSnapshot::receiver_rise_uniform(std::size_t i) const {
  const std::size_t n_src = src_die_.size();
  const std::size_t pts_per_src = ss_ * img_;
  const std::size_t total = n_src * pts_per_src;
  const double* sx = src_x_.data();
  const double* sy = src_y_.data();
  int* idx = idx_.data();
  double* frac = frac_.data();
  const double front = mutual_.front;
  const double back = mutual_.back;
  const double inv = mutual_.inv_step;
  const double cap = coord_cap_;
  const double* lut_img = lut_img_.data();
  const double* lut_raw = lut_raw_.data();
  const double floor = floor_;
  const double self = self_rise_[i];
  // Unit image weights (reflectivity 1.0, the adiabatic-rim default) take a
  // multiply-free inner loop; w * decay with w == 1.0 is the identity, so
  // both branches produce the same doubles.
  const bool unit_weights = use_images_ && img_w_[1] == 1.0;

  double worst = 0.0;
  for (std::size_t p = 0; p < pc_; ++p) {
    const double px = probe_x_[i * pc_ + p];
    const double py = probe_y_[i * pc_ + p];
    // Pass 1 — distance to capped table coordinate to segment index +
    // fraction, one fused sweep: contiguous loads, no branches, no indexed
    // access. The whole loop auto-vectorizes, sqrt and the packed
    // double<->int32 conversions included (which is why CMake builds this
    // file with -fno-math-errno).
    for (std::size_t k = 0; k < total; ++k) {
      const double d = kernel_distance(sx[k] - px, sy[k] - py);
      const double x = std::min(
          (std::min(std::max(d, front), back) - front) * inv, cap);
      const int ii = static_cast<int>(x);
      idx[k] = ii;
      frac[k] = x - static_cast<double>(ii);
    }
    // Pass 2 — gather + accumulate in evaluate()'s source order. The
    // interpolation reads the precomputed segment LUT: base + frac * diff
    // equals evaluate()'s division-form lerp to within ~2 ulp.
    double mutual = 0.0;
    for (std::size_t a = 0; a < n_src; ++a) {
      if (src_die_[a] == i) continue;
      const std::size_t base = a * pts_per_src;
      const int* ix = idx + base;
      const double* fr = frac + base;
      double m = 0.0;
      if (use_images_) {
        for (std::size_t s = 0; s < ss_; ++s) {
          double k = 0.0;
          if (unit_weights) {
            for (std::size_t t = 0; t < 9; ++t) {
              const double* seg = lut_img + 2 * ix[s * 9 + t];
              k += std::max(seg[0] + fr[s * 9 + t] * seg[1], 0.0);
            }
          } else {
            for (std::size_t t = 0; t < 9; ++t) {
              const double* seg = lut_img + 2 * ix[s * 9 + t];
              k += img_w_[t] *
                   std::max(seg[0] + fr[s * 9 + t] * seg[1], 0.0);
            }
          }
          m += floor + k;
        }
      } else {
        for (std::size_t s = 0; s < ss_; ++s) {
          const double* seg = lut_raw + 2 * ix[s];
          m += seg[0] + fr[s] * seg[1];
        }
      }
      m *= src_scale_[a];
      m *= pair_corr_[a];
      mutual += m;
    }
    worst = std::max(worst, self * shape_[i * pc_ + p] + mutual);
  }
  return worst;
}

double SoaSnapshot::receiver_rise_uniform_simd(std::size_t i) const {
  const std::size_t n_src = src_die_.size();
  const std::size_t pts_per_src = ss_ * img_;
  const double* sx = src_x_.data();
  const double* sy = src_y_.data();
  const double floor_per_src = static_cast<double>(ss_) * floor_;
  const double self = self_rise_[i];
  const SoaKernelOps& ops = *ops_;
  // Same unit-weight shortcut as the scalar kernel: reflectivity 1.0 makes
  // every image weight exactly 1, so the weighted pass reduces to the plain
  // clamped sum.
  const bool unit_weights = use_images_ && img_w_[1] == 1.0;
  double* sub = sub_.data();

  double worst = 0.0;
  for (std::size_t p = 0; p < pc_; ++p) {
    const double px = probe_x_[i * pc_ + p];
    const double py = probe_y_[i * pc_ + p];
    // One fused sweep per probe covers every source block: both conceptual
    // passes run in a single loop (the index/fraction intermediates of the
    // scalar kernel's two-pass form never round-trip through memory, which
    // at ~18-36-point blocks costs as much as the arithmetic), and the one
    // indirect call amortizes over the probe instead of per source.
    // Self-interaction blocks are computed too (their inputs are valid, the
    // result is discarded below) — that wastes 1/n_src of the sweep, far
    // less than a branchy kernel would cost.
    if (!use_images_) {
      ops.sweep_raw(sx, sy, px, py, mutual_.front, mutual_.back,
                    mutual_.inv_step, coord_cap_, lut_raw_.data(), pts_per_src,
                    n_src, sub);
    } else if (unit_weights) {
      ops.sweep_unit(sx, sy, px, py, mutual_.front, mutual_.back,
                     mutual_.inv_step, coord_cap_, lut_img_.data(),
                     pts_per_src, n_src, sub);
    } else {
      ops.sweep_weighted(sx, sy, px, py, mutual_.front, mutual_.back,
                         mutual_.inv_step, coord_cap_, lut_img_.data(),
                         w_flat_.data(), pts_per_src, n_src, sub);
    }
    // Sources combine in the scalar kernel's order (one subtotal per source,
    // scaled then summed ascending), so only the within-source lane order
    // differs from the reference — the documented few-ulp envelope.
    double mutual = 0.0;
    for (std::size_t a = 0; a < n_src; ++a) {
      if (src_die_[a] == i) continue;
      double m = use_images_ ? floor_per_src + sub[a] : sub[a];
      m *= src_scale_[a];
      m *= pair_corr_[a];
      mutual += m;
    }
    worst = std::max(worst, self * shape_[i * pc_ + p] + mutual);
  }
  return worst;
}

double SoaSnapshot::receiver_rise_exact(std::size_t i) const {
  const std::size_t n_src = src_die_.size();
  const std::size_t pts_per_src = ss_ * img_;
  const std::size_t total = n_src * pts_per_src;
  const double* sx = src_x_.data();
  const double* sy = src_y_.data();
  double* dist = coord_.data();
  const MutualResistanceTable::View mt = mutual_;
  const double floor = floor_;
  const double self = self_rise_[i];

  double worst = 0.0;
  for (std::size_t p = 0; p < pc_; ++p) {
    const double px = probe_x_[i * pc_ + p];
    const double py = probe_y_[i * pc_ + p];
    for (std::size_t k = 0; k < total; ++k) {
      dist[k] = kernel_distance(sx[k] - px, sy[k] - py);
    }
    double mutual = 0.0;
    for (std::size_t a = 0; a < n_src; ++a) {
      if (src_die_[a] == i) continue;
      const double* d = dist + a * pts_per_src;
      double m = 0.0;
      if (use_images_) {
        for (std::size_t s = 0; s < ss_; ++s) {
          double k = 0.0;
          for (std::size_t t = 0; t < 9; ++t) {
            k += img_w_[t] * std::max(mt.lookup(d[s * 9 + t]) - floor, 0.0);
          }
          m += floor + k;
        }
      } else {
        for (std::size_t s = 0; s < ss_; ++s) {
          m += mt.lookup(d[s]);
        }
      }
      m *= src_scale_[a];
      m *= pair_corr_[a];
      mutual += m;
    }
    worst = std::max(worst, self * shape_[i * pc_ + p] + mutual);
  }
  return worst;
}

void SoaSnapshot::evaluate(FastThermalResult& out) const {
  if (!bound()) throw std::logic_error("SoaSnapshot: evaluate while unbound");
  out.chiplet_temp_c.assign(n_, ambient_c_);
  out.eval_seconds = 0.0;

  const std::size_t n_src = src_die_.size();
  coord_.resize(n_src * ss_ * img_);
  idx_.resize(n_src * ss_ * img_);
  frac_.resize(n_src * ss_ * img_);
  pair_corr_.resize(n_src);
  sub_.resize(n_src);
  const bool uniform = mutual_.inv_step > 0.0 && mutual_.size >= 2;

  for (std::size_t i = 0; i < n_; ++i) {
    if (!placed_[i]) continue;
    const double c_dst = corr_[i];
    // Hoisted per receiver: the pair factor evaluate() recomputes per
    // (probe, source) is probe-independent, and multiplying by the same
    // double later yields the same product.
    for (std::size_t a = 0; a < n_src; ++a) {
      pair_corr_[a] = correct_pairs_ ? std::sqrt(src_corr_[a] * c_dst) : 1.0;
    }
    const double rise = !uniform            ? receiver_rise_exact(i)
                        : ops_ != nullptr   ? receiver_rise_uniform_simd(i)
                                            : receiver_rise_uniform(i);
    out.chiplet_temp_c[i] = ambient_c_ + rise;
  }

  out.max_temp_c = ambient_c_;
  for (double t : out.chiplet_temp_c) {
    out.max_temp_c = std::max(out.max_temp_c, t);
  }
}

std::vector<FastThermalResult> FastThermalModel::evaluate_batch(
    const ChipletSystem& system, std::span<const Floorplan> floorplans,
    parallel::ThreadPool* pool) const {
  if (empty()) {
    throw std::logic_error("FastThermalModel: evaluate_batch on empty model");
  }
  RLPLAN_TRACE_SPAN("thermal.evaluate_batch",
                    static_cast<std::int64_t>(floorplans.size()));
  RLPLAN_COUNTER_ADD("thermal.batch.candidates", floorplans.size());
  std::vector<FastThermalResult> results(floorplans.size());
  if (floorplans.empty()) return results;

  const auto run_chunk = [&](SoaSnapshot& snap, std::size_t lo,
                             std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const Timer timer;
      snap.refresh(floorplans[i]);
      snap.evaluate(results[i]);
      results[i].eval_seconds = timer.seconds();
    }
  };

  const std::size_t lanes =
      pool == nullptr ? 1 : std::min(pool->size() + 1, floorplans.size());
  if (lanes <= 1) {
    SoaSnapshot snapshot(*this, system);
    run_chunk(snapshot, 0, floorplans.size());
    return results;
  }
  // One snapshot per lane; lane c owns a contiguous candidate range so
  // results are index-aligned and identical for every thread count.
  // batch_lane_range never forms a b * lanes product, so the split stays
  // exact for any candidate count (the naive b*c/lanes formula overflows).
  std::vector<SoaSnapshot> snapshots(lanes, SoaSnapshot(*this, system));
  const std::size_t b = floorplans.size();
  pool->parallel_for(lanes, [&](std::size_t c) {
    const auto [lo, hi] = batch_lane_range(b, lanes, c);
    run_chunk(snapshots[c], lo, hi);
  });
  return results;
}

}  // namespace rlplan::thermal
