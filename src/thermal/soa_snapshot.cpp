#include "thermal/soa_snapshot.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"
#include "thermal/soa_kernels.h"
#include "util/timer.h"

namespace rlplan::thermal {

void SoaModelConsts::bind(const FastThermalModel& model) {
  if (model.empty()) {
    throw std::invalid_argument("SoaModelConsts: model has no tables");
  }
  pc = static_cast<std::size_t>(model.probe_count());
  const auto sub = static_cast<std::size_t>(model.config().source_subsamples);
  ss = sub * sub;
  use_images = model.config().use_images;
  img = use_images ? 9 : 1;
  const double r = model.config().image_reflectivity;
  // Weight per image point, in the exact accumulation order of
  // FastThermalModel::image_kernel(): direct, 4 side mirrors, 4 corner
  // double-mirrors. r * r is precomputed because image_kernel's corner term
  // evaluates (reflectivity * reflectivity) first — same double either way.
  const double w9[9] = {1.0, r, r, r, r, r * r, r * r, r * r, r * r};
  std::copy(w9, w9 + 9, img_w);
  // Unit image weights (reflectivity 1.0, the adiabatic-rim default) let the
  // kernels take a multiply-free accumulation; w * decay with w == 1.0 is
  // the identity, so both variants produce the same doubles.
  unit_weights = use_images && img_w[1] == 1.0;
  correct_pairs =
      model.config().correct_mutual && model.has_position_correction();
  floor = model.uniform_floor();
  ambient_c = model.ambient_c();
  pkg_w = model.package_w_mm();
  pkg_h = model.package_h_mm();
  mutual = model.mutual_table().view();
  // MutualResistanceTable's own constructor enforces >= 2 knots, but the
  // cap/LUT math below underflows std::size_t (0 entries) or degenerates
  // (1 entry) if a malformed table ever slips through another path —
  // validate here, before any size - 1 arithmetic.
  if (mutual.size < 2) {
    throw std::invalid_argument(
        "SoaModelConsts: mutual table needs >= 2 knots, got " +
        std::to_string(mutual.size));
  }
  uniform = mutual.inv_step > 0.0;
  lut_img.assign(2 * mutual.size, 0.0);
  lut_raw.assign(2 * mutual.size, 0.0);
  for (std::size_t i = 0; i < mutual.size; ++i) {
    const double diff =
        i + 1 < mutual.size ? mutual.values[i + 1] - mutual.values[i] : 0.0;
    lut_raw[2 * i] = mutual.values[i];
    lut_raw[2 * i + 1] = diff;
    lut_img[2 * i] = mutual.values[i] - floor;
    lut_img[2 * i + 1] = diff;
  }
  // Coordinates are capped in the double domain (instead of clamping the
  // integer index) so the coordinate pass stays branch-free: the cap is the
  // largest double below nk-1, making trunc() land on the last segment with
  // a fraction of ~1 — the same interpolated value to within an ulp.
  coord_cap = std::nextafter(static_cast<double>(mutual.size - 1), 0.0);
  w_flat.clear();
  if (use_images) {
    w_flat.resize(ss * 9);
    for (std::size_t s = 0; s < ss; ++s) {
      std::copy(img_w, img_w + 9, w_flat.data() + s * 9);
    }
  }
}

void SoaModelConsts::expand_source_point(const Point& s, double* xs,
                                         double* ys) const {
  if (!use_images) {
    xs[0] = s.x;
    ys[0] = s.y;
    return;
  }
  // Mirror coordinates in image_kernel's emission order; the expressions
  // match image_kernel's mx/my arrays bit-for-bit.
  const double mx0 = -s.x;
  const double mx1 = 2.0 * pkg_w - s.x;
  const double my0 = -s.y;
  const double my1 = 2.0 * pkg_h - s.y;
  const double exp_x[9] = {s.x, mx0, mx1, s.x, s.x, mx0, mx0, mx1, mx1};
  const double exp_y[9] = {s.y, s.y, s.y, my0, my1, my0, my1, my0, my1};
  std::copy(exp_x, exp_x + 9, xs);
  std::copy(exp_y, exp_y + 9, ys);
}

util::SimdLevel SoaSnapshot::dispatch_level() { return soa_dispatch_level(); }

util::SimdLevel SoaSnapshot::set_simd_level(util::SimdLevel level) {
  ops_ = soa_kernel_ops(level);
  simd_level_ = ops_ != nullptr ? level : util::SimdLevel::kScalar;
  return simd_level_;
}

SoaSnapshot::SoaSnapshot(const FastThermalModel& model,
                         const ChipletSystem& system)
    : model_(&model), system_(&system) {
  k_.bind(model);
  n_ = system.num_chiplets();
  set_simd_level(util::active_simd_level());

  placed_.assign(n_, 0);
  self_rise_.assign(n_, 0.0);
  corr_.assign(n_, 1.0);
  probe_x_.assign(n_ * k_.pc, 0.0);
  probe_y_.assign(n_ * k_.pc, 0.0);
  shape_.assign(n_ * k_.pc, 0.0);
  src_die_.reserve(n_);
  src_scale_.reserve(n_);
  src_corr_.reserve(n_);
  src_x_.reserve(n_ * k_.ss * k_.img);
  src_y_.reserve(n_ * k_.ss * k_.img);
  coord_.reserve(n_ * k_.ss * k_.img);
  pair_corr_.reserve(n_);
}

void SoaSnapshot::refresh(const Floorplan& floorplan) {
  // Counter only: refresh runs per candidate (~µs); a span here would be
  // the dominant cost of the span itself at small die counts.
  RLPLAN_COUNTER_INC("thermal.soa.refreshes");
  if (!bound()) throw std::logic_error("SoaSnapshot: refresh while unbound");
  if (floorplan.num_chiplets() != n_) {
    throw std::invalid_argument(
        "SoaSnapshot: floorplan/system size mismatch");
  }
  const std::size_t pc = k_.pc;
  src_die_.clear();
  src_scale_.clear();
  src_corr_.clear();
  src_x_.clear();
  src_y_.clear();
  for (std::size_t i = 0; i < n_; ++i) {
    placed_[i] = floorplan.is_placed(i) ? 1 : 0;
    if (!placed_[i]) continue;
    const Rect rect = floorplan.rect_of(i);
    // The per-die scalar terms go through the model's own building blocks,
    // so they are the very doubles evaluate() computes.
    model_->receiver_probes(rect, probes_scratch_, shapes_scratch_);
    for (std::size_t p = 0; p < pc; ++p) {
      probe_x_[i * pc + p] = probes_scratch_[p].x;
      probe_y_[i * pc + p] = probes_scratch_[p].y;
      shape_[i * pc + p] = shapes_scratch_[p];
    }
    self_rise_[i] = model_->self_rise(system_->chiplet(i), rect);
    corr_[i] = model_->center_correction(rect.center());

    const double power = system_->chiplet(i).power;
    if (power <= 0.0) continue;
    src_die_.push_back(i);
    src_scale_.push_back(power / static_cast<double>(k_.ss));
    src_corr_.push_back(corr_[i]);
    model_->source_points(rect, subs_scratch_);
    const std::size_t base = src_x_.size();
    src_x_.resize(base + subs_scratch_.size() * k_.img);
    src_y_.resize(base + subs_scratch_.size() * k_.img);
    double* xs = src_x_.data() + base;
    double* ys = src_y_.data() + base;
    for (const Point& s : subs_scratch_) {
      k_.expand_source_point(s, xs, ys);
      xs += k_.img;
      ys += k_.img;
    }
  }
}

double SoaSnapshot::receiver_rise_uniform(std::size_t i) const {
  const std::size_t n_src = src_die_.size();
  const std::size_t pts_per_src = k_.ss * k_.img;
  const std::size_t total = n_src * pts_per_src;
  const double* sx = src_x_.data();
  const double* sy = src_y_.data();
  int* idx = idx_.data();
  double* frac = frac_.data();
  const double front = k_.mutual.front;
  const double back = k_.mutual.back;
  const double inv = k_.mutual.inv_step;
  const double cap = k_.coord_cap;
  const double* lut_img = k_.lut_img.data();
  const double* lut_raw = k_.lut_raw.data();
  const double floor = k_.floor;
  const double self = self_rise_[i];
  const bool use_images = k_.use_images;
  const bool unit_weights = k_.unit_weights;
  const std::size_t ss = k_.ss;
  const std::size_t pc = k_.pc;

  double worst = 0.0;
  for (std::size_t p = 0; p < pc; ++p) {
    const double px = probe_x_[i * pc + p];
    const double py = probe_y_[i * pc + p];
    // Pass 1 — distance to capped table coordinate to segment index +
    // fraction, one fused sweep: contiguous loads, no branches, no indexed
    // access. The whole loop auto-vectorizes, sqrt and the packed
    // double<->int32 conversions included (which is why CMake builds this
    // file with -fno-math-errno).
    for (std::size_t k = 0; k < total; ++k) {
      const double d = kernel_distance(sx[k] - px, sy[k] - py);
      const double x = std::min(
          (std::min(std::max(d, front), back) - front) * inv, cap);
      const int ii = static_cast<int>(x);
      idx[k] = ii;
      frac[k] = x - static_cast<double>(ii);
    }
    // Pass 2 — gather + accumulate in evaluate()'s source order. The
    // interpolation reads the precomputed segment LUT: base + frac * diff
    // equals evaluate()'s division-form lerp to within ~2 ulp.
    double mutual = 0.0;
    for (std::size_t a = 0; a < n_src; ++a) {
      if (src_die_[a] == i) continue;
      const std::size_t base = a * pts_per_src;
      const int* ix = idx + base;
      const double* fr = frac + base;
      double m = 0.0;
      if (use_images) {
        for (std::size_t s = 0; s < ss; ++s) {
          double k = 0.0;
          if (unit_weights) {
            for (std::size_t t = 0; t < 9; ++t) {
              const double* seg = lut_img + 2 * ix[s * 9 + t];
              k += std::max(seg[0] + fr[s * 9 + t] * seg[1], 0.0);
            }
          } else {
            for (std::size_t t = 0; t < 9; ++t) {
              const double* seg = lut_img + 2 * ix[s * 9 + t];
              k += k_.img_w[t] *
                   std::max(seg[0] + fr[s * 9 + t] * seg[1], 0.0);
            }
          }
          m += floor + k;
        }
      } else {
        for (std::size_t s = 0; s < ss; ++s) {
          const double* seg = lut_raw + 2 * ix[s];
          m += seg[0] + fr[s] * seg[1];
        }
      }
      m *= src_scale_[a];
      m *= pair_corr_[a];
      mutual += m;
    }
    worst = std::max(worst, self * shape_[i * pc + p] + mutual);
  }
  return worst;
}

double SoaSnapshot::receiver_rise_uniform_simd(std::size_t i) const {
  const std::size_t n_src = src_die_.size();
  const std::size_t pts_per_src = k_.ss * k_.img;
  const double* sx = src_x_.data();
  const double* sy = src_y_.data();
  const double floor_per_src = static_cast<double>(k_.ss) * k_.floor;
  const double self = self_rise_[i];
  const SoaKernelOps& ops = *ops_;
  const bool use_images = k_.use_images;
  const std::size_t pc = k_.pc;
  double* sub = sub_.data();

  double worst = 0.0;
  for (std::size_t p = 0; p < pc; ++p) {
    const double px = probe_x_[i * pc + p];
    const double py = probe_y_[i * pc + p];
    // One fused sweep per probe covers every source block: both conceptual
    // passes run in a single loop (the index/fraction intermediates of the
    // scalar kernel's two-pass form never round-trip through memory, which
    // at ~18-36-point blocks costs as much as the arithmetic), and the one
    // indirect call amortizes over the probe instead of per source.
    // Self-interaction blocks are computed too (their inputs are valid, the
    // result is discarded below) — that wastes 1/n_src of the sweep, far
    // less than a branchy kernel would cost.
    if (!use_images) {
      ops.sweep_raw(sx, sy, px, py, k_.mutual.front, k_.mutual.back,
                    k_.mutual.inv_step, k_.coord_cap, k_.lut_raw.data(),
                    pts_per_src, n_src, sub);
    } else if (k_.unit_weights) {
      ops.sweep_unit(sx, sy, px, py, k_.mutual.front, k_.mutual.back,
                     k_.mutual.inv_step, k_.coord_cap, k_.lut_img.data(),
                     pts_per_src, n_src, sub);
    } else {
      ops.sweep_weighted(sx, sy, px, py, k_.mutual.front, k_.mutual.back,
                         k_.mutual.inv_step, k_.coord_cap, k_.lut_img.data(),
                         k_.w_flat.data(), pts_per_src, n_src, sub);
    }
    // Sources combine in the scalar kernel's order (one subtotal per source,
    // scaled then summed ascending), so only the within-source lane order
    // differs from the reference — the documented few-ulp envelope.
    double mutual = 0.0;
    for (std::size_t a = 0; a < n_src; ++a) {
      if (src_die_[a] == i) continue;
      double m = use_images ? floor_per_src + sub[a] : sub[a];
      m *= src_scale_[a];
      m *= pair_corr_[a];
      mutual += m;
    }
    worst = std::max(worst, self * shape_[i * pc + p] + mutual);
  }
  return worst;
}

double SoaSnapshot::receiver_rise_exact(std::size_t i) const {
  const std::size_t n_src = src_die_.size();
  const std::size_t pts_per_src = k_.ss * k_.img;
  const std::size_t total = n_src * pts_per_src;
  const double* sx = src_x_.data();
  const double* sy = src_y_.data();
  double* dist = coord_.data();
  const MutualResistanceTable::View mt = k_.mutual;
  const double floor = k_.floor;
  const double self = self_rise_[i];
  const bool use_images = k_.use_images;
  const std::size_t ss = k_.ss;
  const std::size_t pc = k_.pc;

  double worst = 0.0;
  for (std::size_t p = 0; p < pc; ++p) {
    const double px = probe_x_[i * pc + p];
    const double py = probe_y_[i * pc + p];
    for (std::size_t k = 0; k < total; ++k) {
      dist[k] = kernel_distance(sx[k] - px, sy[k] - py);
    }
    double mutual = 0.0;
    for (std::size_t a = 0; a < n_src; ++a) {
      if (src_die_[a] == i) continue;
      const double* d = dist + a * pts_per_src;
      double m = 0.0;
      if (use_images) {
        for (std::size_t s = 0; s < ss; ++s) {
          double k = 0.0;
          for (std::size_t t = 0; t < 9; ++t) {
            k += k_.img_w[t] * std::max(mt.lookup(d[s * 9 + t]) - floor, 0.0);
          }
          m += floor + k;
        }
      } else {
        for (std::size_t s = 0; s < ss; ++s) {
          m += mt.lookup(d[s]);
        }
      }
      m *= src_scale_[a];
      m *= pair_corr_[a];
      mutual += m;
    }
    worst = std::max(worst, self * shape_[i * pc + p] + mutual);
  }
  return worst;
}

void SoaSnapshot::evaluate(FastThermalResult& out) const {
  if (!bound()) throw std::logic_error("SoaSnapshot: evaluate while unbound");
  out.chiplet_temp_c.assign(n_, k_.ambient_c);
  out.eval_seconds = 0.0;

  const std::size_t n_src = src_die_.size();
  coord_.resize(n_src * k_.ss * k_.img);
  idx_.resize(n_src * k_.ss * k_.img);
  frac_.resize(n_src * k_.ss * k_.img);
  pair_corr_.resize(n_src);
  sub_.resize(n_src);

  for (std::size_t i = 0; i < n_; ++i) {
    if (!placed_[i]) continue;
    const double c_dst = corr_[i];
    // Hoisted per receiver: the pair factor evaluate() recomputes per
    // (probe, source) is probe-independent, and multiplying by the same
    // double later yields the same product.
    for (std::size_t a = 0; a < n_src; ++a) {
      pair_corr_[a] =
          k_.correct_pairs ? std::sqrt(src_corr_[a] * c_dst) : 1.0;
    }
    const double rise = !k_.uniform          ? receiver_rise_exact(i)
                        : ops_ != nullptr    ? receiver_rise_uniform_simd(i)
                                             : receiver_rise_uniform(i);
    out.chiplet_temp_c[i] = k_.ambient_c + rise;
  }

  out.max_temp_c = k_.ambient_c;
  for (double t : out.chiplet_temp_c) {
    out.max_temp_c = std::max(out.max_temp_c, t);
  }
}

std::vector<FastThermalResult> FastThermalModel::evaluate_batch(
    const ChipletSystem& system, std::span<const Floorplan> floorplans,
    parallel::ThreadPool* pool) const {
  if (empty()) {
    throw std::logic_error("FastThermalModel: evaluate_batch on empty model");
  }
  RLPLAN_TRACE_SPAN("thermal.evaluate_batch",
                    static_cast<std::int64_t>(floorplans.size()));
  RLPLAN_COUNTER_ADD("thermal.batch.candidates", floorplans.size());
  std::vector<FastThermalResult> results(floorplans.size());
  if (floorplans.empty()) return results;

  const auto run_chunk = [&](SoaSnapshot& snap, std::size_t lo,
                             std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const Timer timer;
      snap.refresh(floorplans[i]);
      snap.evaluate(results[i]);
      results[i].eval_seconds = timer.seconds();
    }
  };

  const std::size_t lanes =
      pool == nullptr ? 1 : std::min(pool->size() + 1, floorplans.size());
  if (lanes <= 1) {
    SoaSnapshot snapshot(*this, system);
    run_chunk(snapshot, 0, floorplans.size());
    return results;
  }
  // One snapshot per lane; lane c owns a contiguous candidate range so
  // results are index-aligned and identical for every thread count.
  // batch_lane_range never forms a b * lanes product, so the split stays
  // exact for any candidate count (the naive b*c/lanes formula overflows).
  std::vector<SoaSnapshot> snapshots(lanes, SoaSnapshot(*this, system));
  const std::size_t b = floorplans.size();
  pool->parallel_for(lanes, [&](std::size_t c) {
    const auto [lo, hi] = batch_lane_range(b, lanes, c);
    run_chunk(snapshots[c], lo, hi);
  });
  return results;
}

}  // namespace rlplan::thermal
