#include "thermal/characterize.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/trace.h"
#include "util/log.h"
#include "util/timer.h"

namespace rlplan::thermal {

namespace {
// Characterization has no usable best-so-far (a half-built table set cannot
// feed a FastThermalModel), so cooperative stops surface as CancelledError.
// Polled before every probe solve — the unit of work the ISSUE's
// "characterization granularity" refers to.
void check_control(const robust::RunControl& control) {
  if (control.active() && control.stop_requested()) {
    throw robust::CancelledError(
        std::string("thermal characterization stopped (") +
        robust::to_string(control.stop_reason()) + ")");
  }
}
}  // namespace

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  if (n < 2 || hi <= lo) {
    throw std::invalid_argument("linspace: need n >= 2 and hi > lo");
  }
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(n - 1);
  }
  return v;
}

std::vector<double> geomspace(double lo, double hi, std::size_t n) {
  if (lo <= 0.0) {
    throw std::invalid_argument("geomspace: lo must be positive");
  }
  std::vector<double> v = linspace(std::log(lo), std::log(hi), n);
  for (double& x : v) x = std::exp(x);
  v.front() = lo;  // cancel rounding at the endpoints
  v.back() = hi;
  return v;
}

ThermalCharacterizer::ThermalCharacterizer(const LayerStack& stack,
                                           CharacterizationConfig config)
    : stack_(&stack), config_(std::move(config)) {
  stack.validate();
  if (config_.reference_power_w <= 0.0) {
    throw std::invalid_argument("characterization: reference power must be > 0");
  }
}

FastThermalModel ThermalCharacterizer::characterize(
    double interposer_w_mm, double interposer_h_mm,
    const std::function<void(std::size_t, std::size_t)>& progress) {
  RLPLAN_TRACE_SPAN("thermal.characterize");
  const Timer timer;
  report_ = {};

  const auto make_axis = [this](double hi) {
    return config_.geometric_axes
               ? geomspace(config_.min_die_mm, hi, config_.auto_axis_points)
               : linspace(config_.min_die_mm, hi, config_.auto_axis_points);
  };
  std::vector<double> widths = config_.widths_mm;
  std::vector<double> heights = config_.heights_mm;
  if (widths.empty()) {
    widths = make_axis(std::min(config_.max_die_mm, interposer_w_mm * 0.8));
  }
  if (heights.empty()) {
    heights = make_axis(std::min(config_.max_die_mm, interposer_h_mm * 0.8));
  }

  const std::size_t position_probes =
      config_.position_points > 0
          ? config_.position_points * config_.position_points
          : 0;
  const std::size_t total =
      widths.size() * heights.size() + position_probes + 1;
  SelfResistanceTable self = [&] {
    RLPLAN_TRACE_SPAN("thermal.characterize.self_table");
    return build_self_table(interposer_w_mm, interposer_h_mm, widths, heights,
                            progress, total, 0);
  }();
  MutualResistanceTable mutual = [&] {
    RLPLAN_TRACE_SPAN("thermal.characterize.mutual_table");
    return build_mutual_table(interposer_w_mm, interposer_h_mm);
  }();

  // Package-level uniform rise floor for the image decomposition: the far
  // tail of the measured kernel.
  double floor = mutual.values().back();
  for (double v : mutual.values()) floor = std::min(floor, v);

  FastThermalModel model(std::move(self), std::move(mutual),
                         stack_->ambient_c(), config_.model_config);
  model.set_self_droop(droop_table_);
  model.set_image_params(interposer_w_mm, interposer_h_mm, floor);
  // The measured position-correction table is an alternative to the image
  // construction; only one boundary treatment should be active at a time.
  if (!config_.model_config.use_images && config_.position_points >= 2) {
    RLPLAN_TRACE_SPAN("thermal.characterize.position_table");
    model.set_position_correction(build_position_correction(
        interposer_w_mm, interposer_h_mm, progress, total));
  }
  if (progress) progress(total, total);

  report_.total_seconds = timer.seconds();
  RLPLAN_INFO << "characterized " << interposer_w_mm << "x" << interposer_h_mm
              << " mm interposer: " << report_.self_solves << " self + "
              << report_.mutual_solves << " mutual + "
              << report_.position_solves << " position solves in "
              << report_.total_seconds << " s";
  return model;
}

BilinearTable2D ThermalCharacterizer::build_position_correction(
    double iw, double ih,
    const std::function<void(std::size_t, std::size_t)>& progress,
    std::size_t total_probes) {
  const double s = config_.position_ref_die_mm;
  const std::size_t n = config_.position_points;

  // Centered reference rise (the table's denominator).
  const auto solve_at = [&](double cx, double cy) {
    check_control(config_.control);
    const ChipletSystem probe(
        "position-probe", iw, ih,
        {Chiplet{"ref", s, s, config_.reference_power_w}}, {});
    Floorplan fp(probe);
    fp.place(0, {cx - s / 2.0, cy - s / 2.0});
    GridThermalSolver solver(*stack_, config_.solver);
    ++report_.position_solves;
    return solver.solve(probe, fp).max_temp_c - stack_->ambient_c();
  };
  const double center_rise = solve_at(iw / 2.0, ih / 2.0);

  // Sweep die centers over the reachable area.
  const std::vector<double> xs = linspace(s / 2.0, iw - s / 2.0, n);
  const std::vector<double> ys = linspace(s / 2.0, ih - s / 2.0, n);
  std::vector<std::vector<double>> factors(n, std::vector<double>(n, 1.0));
  std::size_t done = report_.self_solves + 1;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      factors[i][j] = solve_at(xs[i], ys[j]) / center_rise;
      if (progress) progress(++done, total_probes);
    }
  }
  return BilinearTable2D(xs, ys, std::move(factors));
}

SelfResistanceTable ThermalCharacterizer::build_self_table(
    double iw, double ih, const std::vector<double>& widths,
    const std::vector<double>& heights,
    const std::function<void(std::size_t, std::size_t)>& progress,
    std::size_t total_probes, std::size_t probes_done) {
  std::vector<std::vector<double>> values(
      widths.size(), std::vector<double>(heights.size(), 0.0));

  std::vector<std::vector<double>> droops(
      widths.size(), std::vector<double>(heights.size(), 1.0));

  std::size_t done = probes_done;
  for (std::size_t i = 0; i < widths.size(); ++i) {
    for (std::size_t j = 0; j < heights.size(); ++j) {
      check_control(config_.control);
      const double w = widths[i];
      const double h = heights[j];
      const ChipletSystem probe(
          "self-probe", iw, ih,
          {Chiplet{"probe", w, h, config_.reference_power_w}}, {});
      probe.validate();
      Floorplan fp(probe);
      const Rect r{(iw - w) / 2.0, (ih - h) / 2.0, w, h};
      fp.place(0, r.origin());

      GridThermalSolver solver(*stack_, config_.solver);
      ThermalField field;
      const ThermalResult result = solver.solve_with_field(probe, fp, field);
      const double peak_rise = result.max_temp_c - stack_->ambient_c();
      values[i][j] = peak_rise / config_.reference_power_w;

      // Within-die droop: rise at the die corners relative to the peak.
      const std::size_t layer = stack_->chiplet_layer_index();
      ThermalGridModel model(*stack_, probe, config_.solver.dims);
      double corner_rise = 0.0;
      const GridDims dims = config_.solver.dims;
      const double cw = iw / static_cast<double>(dims.cols);
      const double ch = ih / static_cast<double>(dims.rows);
      for (const Point corner :
           {Point{r.x, r.y}, Point{r.right(), r.y}, Point{r.x, r.top()},
            Point{r.right(), r.top()}}) {
        const auto col = static_cast<std::size_t>(std::clamp(
            std::floor(corner.x / cw), 0.0, double(dims.cols - 1)));
        const auto row = static_cast<std::size_t>(std::clamp(
            std::floor(corner.y / ch), 0.0, double(dims.rows - 1)));
        corner_rise = std::max(
            corner_rise, field.at(layer, row, col) - stack_->ambient_c());
      }
      droops[i][j] =
          peak_rise > 0.0 ? std::clamp(corner_rise / peak_rise, 0.0, 1.0)
                          : 1.0;

      ++report_.self_solves;
      if (progress) progress(++done, total_probes);
    }
  }
  droop_table_ = BilinearTable2D(widths, heights, std::move(droops));
  return SelfResistanceTable(widths, heights, std::move(values));
}

MutualResistanceTable ThermalCharacterizer::build_mutual_table(double iw,
                                                               double ih) {
  const double s = config_.mutual_source_mm;
  const GridDims dims = config_.solver.dims;
  const double cw = iw / static_cast<double>(dims.cols);
  const double ch = ih / static_cast<double>(dims.rows);
  const double bin =
      config_.mutual_bin_mm > 0.0 ? config_.mutual_bin_mm : std::max(cw, ch);
  const double max_dist = std::hypot(iw, ih);
  const auto num_bins =
      static_cast<std::size_t>(std::ceil(max_dist / bin)) + 1;

  // Source positions: interposer center, plus quadrant offsets that fold
  // boundary effects into the distance average.
  std::vector<Point> sources{{iw / 2.0, ih / 2.0}};
  if (config_.mutual_source_positions >= 5) {
    sources.push_back({iw * 0.25, ih * 0.25});
    sources.push_back({iw * 0.75, ih * 0.25});
    sources.push_back({iw * 0.25, ih * 0.75});
    sources.push_back({iw * 0.75, ih * 0.75});
  }

  std::vector<double> sums(num_bins, 0.0);
  std::vector<std::size_t> counts(num_bins, 0);
  const std::size_t layer = stack_->chiplet_layer_index();

  for (const Point& src : sources) {
    check_control(config_.control);
    const ChipletSystem probe(
        "mutual-probe", iw, ih,
        {Chiplet{"source", s, s, config_.reference_power_w}}, {});
    probe.validate();
    Floorplan fp(probe);
    fp.place(0, {src.x - s / 2.0, src.y - s / 2.0});

    GridThermalSolver solver(*stack_, config_.solver);
    ThermalField field;
    solver.solve_with_field(probe, fp, field);
    ++report_.mutual_solves;

    // Bin the chiplet-layer rise-per-watt by distance from the source.
    ThermalGridModel model(*stack_, probe, dims);
    for (std::size_t r = 0; r < dims.rows; ++r) {
      for (std::size_t c = 0; c < dims.cols; ++c) {
        const Point p = model.cell_center_mm(r, c);
        const double d = euclidean(p, src);
        const auto b =
            std::min(static_cast<std::size_t>(d / bin), num_bins - 1);
        sums[b] += (field.at(layer, r, c) - stack_->ambient_c()) /
                   config_.reference_power_w;
        ++counts[b];
      }
    }
  }

  std::vector<double> distances;
  std::vector<double> values;
  std::vector<std::size_t> bin_of_value;
  for (std::size_t b = 0; b < num_bins; ++b) {
    if (counts[b] == 0) continue;
    distances.push_back((static_cast<double>(b) + 0.5) * bin);
    values.push_back(sums[b] / static_cast<double>(counts[b]));
    bin_of_value.push_back(b);
  }
  if (distances.size() < 2) {
    throw std::runtime_error(
        "mutual characterization produced fewer than 2 distance bins; "
        "increase grid resolution or reduce bin width");
  }

  // Image deconvolution (center-source kernels only): the raw annulus
  // averages include the probe's own boundary reflections; subtract the
  // reflections predicted by the current kernel estimate so the stored
  // kernel approaches the free-field response the image evaluation expects.
  if (config_.kernel_deconvolution_iters > 0 && sources.size() == 1 &&
      config_.model_config.use_images) {
    const Point src = sources.front();
    const double refl = config_.model_config.image_reflectivity;
    double floor = values.front();
    for (double v : values) floor = std::min(floor, v);

    std::vector<double> g(values.size());
    for (std::size_t k = 0; k < values.size(); ++k) {
      g[k] = std::max(values[k] - floor, 0.0);
    }
    const auto lookup_g = [&](double d) {
      // Piecewise-linear interpolation over the (distances, g) pairs.
      if (d <= distances.front()) return g.front();
      if (d >= distances.back()) return g.back();
      const std::size_t seg = table_detail::segment_index(distances, d);
      const double t =
          (d - distances[seg]) / (distances[seg + 1] - distances[seg]);
      return (1.0 - t) * g[seg] + t * g[seg + 1];
    };

    const double mx[2] = {-src.x, 2.0 * iw - src.x};
    const double my[2] = {-src.y, 2.0 * ih - src.y};
    const ChipletSystem probe_geom("geom", iw, ih,
                                   {Chiplet{"x", 1.0, 1.0, 0.0}}, {});
    ThermalGridModel model(*stack_, probe_geom, dims);
    for (int iter = 0; iter < config_.kernel_deconvolution_iters; ++iter) {
      // Predicted image contamination, annulus-averaged like the raw data.
      std::vector<double> img_sums(num_bins, 0.0);
      for (std::size_t r = 0; r < dims.rows; ++r) {
        for (std::size_t c = 0; c < dims.cols; ++c) {
          const Point p = model.cell_center_mm(r, c);
          const auto b = std::min(
              static_cast<std::size_t>(euclidean(p, src) / bin),
              num_bins - 1);
          double img = 0.0;
          for (double ix : mx) img += refl * lookup_g(euclidean({ix, src.y}, p));
          for (double iy : my) img += refl * lookup_g(euclidean({src.x, iy}, p));
          for (double ix : mx) {
            for (double iy : my) {
              img += refl * refl * lookup_g(euclidean({ix, iy}, p));
            }
          }
          img_sums[b] += img;
        }
      }
      for (std::size_t k = 0; k < values.size(); ++k) {
        const std::size_t b = bin_of_value[k];
        const double img_avg =
            counts[b] > 0 ? img_sums[b] / static_cast<double>(counts[b])
                          : 0.0;
        g[k] = std::max(values[k] - floor - img_avg, 0.0);
      }
    }
    for (std::size_t k = 0; k < values.size(); ++k) {
      values[k] = floor + g[k];
    }
  }

  return MutualResistanceTable(std::move(distances), std::move(values));
}

}  // namespace rlplan::thermal
