#include "thermal/grid_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace rlplan::thermal {

namespace {
constexpr double kMmToM = 1e-3;
}

ThermalGridModel::ThermalGridModel(const LayerStack& stack,
                                   const ChipletSystem& system, GridDims dims)
    : stack_(&stack), system_(&system), dims_(dims) {
  stack.validate();
  if (dims_.rows < 2 || dims_.cols < 2) {
    throw std::invalid_argument("ThermalGridModel: grid must be >= 2x2");
  }
  dx_ = system.interposer_width() * kMmToM / static_cast<double>(dims_.cols);
  dy_ = system.interposer_height() * kMmToM / static_cast<double>(dims_.rows);
  cell_area_ = dx_ * dy_;
}

Point ThermalGridModel::cell_center_mm(std::size_t row,
                                       std::size_t col) const {
  const double cw = system_->interposer_width() / static_cast<double>(dims_.cols);
  const double ch =
      system_->interposer_height() / static_cast<double>(dims_.rows);
  return {(static_cast<double>(col) + 0.5) * cw,
          (static_cast<double>(row) + 0.5) * ch};
}

double ThermalGridModel::coverage_fraction(std::size_t row, std::size_t col,
                                           const Rect& footprint_mm) const {
  const double cw = system_->interposer_width() / static_cast<double>(dims_.cols);
  const double ch =
      system_->interposer_height() / static_cast<double>(dims_.rows);
  const Rect cell{static_cast<double>(col) * cw, static_cast<double>(row) * ch,
                  cw, ch};
  return cell.intersection_area(footprint_mm) / cell.area();
}

std::vector<double> ThermalGridModel::chiplet_layer_conductivity(
    const Floorplan& floorplan) const {
  const double k_die = stack_->layer(stack_->chiplet_layer_index())
                           .material.conductivity;
  const double k_fill = stack_->fill_material().conductivity;
  std::vector<double> k(dims_.cells(), k_fill);

  const double cw = system_->interposer_width() / static_cast<double>(dims_.cols);
  const double ch =
      system_->interposer_height() / static_cast<double>(dims_.rows);

  for (std::size_t i = 0; i < system_->num_chiplets(); ++i) {
    if (!floorplan.is_placed(i)) continue;
    const Rect r = floorplan.rect_of(i);
    const auto c0 = static_cast<std::size_t>(
        std::clamp(std::floor(r.x / cw), 0.0, double(dims_.cols - 1)));
    const auto c1 = static_cast<std::size_t>(std::clamp(
        std::ceil(r.right() / cw), 0.0, double(dims_.cols)));
    const auto r0 = static_cast<std::size_t>(
        std::clamp(std::floor(r.y / ch), 0.0, double(dims_.rows - 1)));
    const auto r1 = static_cast<std::size_t>(std::clamp(
        std::ceil(r.top() / ch), 0.0, double(dims_.rows)));
    for (std::size_t row = r0; row < r1; ++row) {
      for (std::size_t col = c0; col < c1; ++col) {
        const double f = coverage_fraction(row, col, r);
        if (f <= 0.0) continue;
        const std::size_t idx = row * dims_.cols + col;
        // Blend toward die conductivity; overlapping chiplets (illegal but
        // representable) saturate at the die value.
        k[idx] = std::min(k_die, k[idx] + f * (k_die - k_fill));
      }
    }
  }
  return k;
}

SparseMatrix ThermalGridModel::build_conductance(
    const Floorplan& floorplan) const {
  const std::size_t n_layers = stack_->num_layers();
  const std::size_t cells = dims_.cells();
  SparseMatrix g(n_layers * cells);

  const std::size_t chiplet_layer = stack_->chiplet_layer_index();
  const std::vector<double> k_chiplet = chiplet_layer_conductivity(floorplan);

  // Per-layer, per-cell conductivity accessor.
  const auto cell_k = [&](std::size_t layer, std::size_t cell_idx) {
    if (layer == chiplet_layer) return k_chiplet[cell_idx];
    return stack_->layer(layer).material.conductivity;
  };

  for (std::size_t l = 0; l < n_layers; ++l) {
    const double t = stack_->layer(l).thickness;
    for (std::size_t r = 0; r < dims_.rows; ++r) {
      for (std::size_t c = 0; c < dims_.cols; ++c) {
        const std::size_t idx = r * dims_.cols + c;
        const double k_here = cell_k(l, idx);

        // Lateral east neighbour: two half-cell resistances in series.
        if (c + 1 < dims_.cols) {
          const double k_east = cell_k(l, idx + 1);
          const double r_half_here = (dx_ / 2.0) / (k_here * t * dy_);
          const double r_half_east = (dx_ / 2.0) / (k_east * t * dy_);
          g.stamp_conductance(node(l, r, c), node(l, r, c + 1),
                              1.0 / (r_half_here + r_half_east));
        }
        // Lateral north neighbour.
        if (r + 1 < dims_.rows) {
          const double k_north = cell_k(l, idx + dims_.cols);
          const double r_half_here = (dy_ / 2.0) / (k_here * t * dx_);
          const double r_half_north = (dy_ / 2.0) / (k_north * t * dx_);
          g.stamp_conductance(node(l, r, c), node(l, r + 1, c),
                              1.0 / (r_half_here + r_half_north));
        }
        // Vertical neighbour (layer above): half-thickness each side.
        if (l + 1 < n_layers) {
          const double t_up = stack_->layer(l + 1).thickness;
          const double k_up = cell_k(l + 1, idx);
          const double r_half_here = (t / 2.0) / (k_here * cell_area_);
          const double r_half_up = (t_up / 2.0) / (k_up * cell_area_);
          g.stamp_conductance(node(l, r, c), node(l + 1, r, c),
                              1.0 / (r_half_here + r_half_up));
        }
        // Boundary terms: top convection, bottom board leakage. Each is the
        // series of the half-cell vertical conduction and the surface film.
        if (l + 1 == n_layers) {
          const double r_half = (t / 2.0) / (k_here * cell_area_);
          const double r_film = 1.0 / (stack_->h_top() * cell_area_);
          g.stamp_ground(node(l, r, c), 1.0 / (r_half + r_film));
        }
        if (l == 0 && stack_->h_bottom() > 0.0) {
          const double r_half = (t / 2.0) / (k_here * cell_area_);
          const double r_film = 1.0 / (stack_->h_bottom() * cell_area_);
          g.stamp_ground(node(l, r, c), 1.0 / (r_half + r_film));
        }
      }
    }
  }

  g.finalize();
  return g;
}

std::vector<double> ThermalGridModel::build_power(
    const Floorplan& floorplan) const {
  std::vector<double> p(num_nodes(), 0.0);
  const std::size_t chiplet_layer = stack_->chiplet_layer_index();
  const double cw = system_->interposer_width() / static_cast<double>(dims_.cols);
  const double ch =
      system_->interposer_height() / static_cast<double>(dims_.rows);

  for (std::size_t i = 0; i < system_->num_chiplets(); ++i) {
    if (!floorplan.is_placed(i)) continue;
    const Chiplet& chip = system_->chiplet(i);
    if (chip.power <= 0.0) continue;
    const Rect r = floorplan.rect_of(i);
    const double cell_area_mm2 = cw * ch;

    const auto c0 = static_cast<std::size_t>(
        std::clamp(std::floor(r.x / cw), 0.0, double(dims_.cols - 1)));
    const auto c1 = static_cast<std::size_t>(
        std::clamp(std::ceil(r.right() / cw), 0.0, double(dims_.cols)));
    const auto r0 = static_cast<std::size_t>(
        std::clamp(std::floor(r.y / ch), 0.0, double(dims_.rows - 1)));
    const auto r1 = static_cast<std::size_t>(
        std::clamp(std::ceil(r.top() / ch), 0.0, double(dims_.rows)));

    std::vector<std::pair<std::size_t, double>> contributions;
    double injected = 0.0;
    for (std::size_t row = r0; row < r1; ++row) {
      for (std::size_t col = c0; col < c1; ++col) {
        const double f = coverage_fraction(row, col, r);
        if (f <= 0.0) continue;
        const double covered_mm2 = f * cell_area_mm2;
        const double watts = chip.power * covered_mm2 / r.area();
        contributions.emplace_back(node(chiplet_layer, row, col), watts);
        injected += watts;
      }
    }
    // Clipping at interposer edges can drop a sliver of footprint; rescale so
    // total injected power is exact (conservation matters for accuracy).
    const double scale =
        injected > 0.0 ? chip.power / injected : 0.0;
    for (const auto& [idx, watts] : contributions) {
      p[idx] += watts * scale;
    }
  }
  return p;
}

}  // namespace rlplan::thermal
