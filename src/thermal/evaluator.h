// Pluggable thermal-evaluation interface.
//
// Both optimizers (RLPlanner's reward calculator and the TAP-2.5D SA
// baseline) only need "peak temperature of this placement". Injecting either
// the ground-truth grid solver or the fast LTI model reproduces the paper's
// four method configurations (Table I / Table III) without code changes.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/chiplet.h"
#include "core/floorplan.h"
#include "thermal/fast_model.h"
#include "thermal/grid_solver.h"

namespace rlplan::parallel {
class ThreadPool;
}

namespace rlplan::thermal {

class ThermalEvaluator {
 public:
  virtual ~ThermalEvaluator() = default;

  /// Peak chiplet temperature (deg C) of the placement.
  virtual double max_temperature(const ChipletSystem& system,
                                 const Floorplan& floorplan) = 0;

  /// Peak temperatures of many candidate floorplans (all over `system`) in
  /// one call, index-aligned with `floorplans`. The default scores each
  /// candidate with max_temperature() serially and ignores `pool` (results
  /// exactly equal the per-candidate calls); fast-model evaluators override
  /// with the batched SoA kernel (thermal/soa_snapshot.h) fanned over the
  /// pool, which agrees with per-candidate max_temperature() to within
  /// 1e-9 C (soa_snapshot.h documents the contract) — never compare the two
  /// query styles with exact equality.
  virtual std::vector<double> max_temperature_batch(
      const ChipletSystem& system, std::span<const Floorplan> floorplans,
      parallel::ThreadPool* pool = nullptr) {
    (void)pool;
    std::vector<double> out;
    out.reserve(floorplans.size());
    for (const Floorplan& fp : floorplans) {
      out.push_back(max_temperature(system, fp));
    }
    return out;
  }

  /// Evaluations performed so far (budget accounting in benches).
  virtual long num_evaluations() const = 0;

  virtual std::string name() const = 0;

  /// Independent copy for per-thread use (parallel::VecEnv gives each worker
  /// environment its own evaluator so no synchronization is needed on the
  /// episode-end hot path). Returns nullptr when the evaluator cannot be
  /// cloned; callers requiring parallelism must reject that.
  virtual std::unique_ptr<ThermalEvaluator> clone() const { return nullptr; }

  // --- Optional incremental protocol ---------------------------------------
  // Optimizers that mutate one or two dies per step (the RL env's sequential
  // placement, TAP-2.5D SA moves) can keep the evaluator's internal state in
  // sync so a temperature query costs O(changed dies) kernel work instead of
  // a full O(n^2) re-evaluation. Every method defaults to "not incremental":
  // the notifications are no-ops and incremental_max_temperature() falls back
  // to a full max_temperature() evaluation, so callers may drive the protocol
  // unconditionally against any evaluator.

  /// True when this evaluator maintains incremental state.
  virtual bool supports_incremental() const { return false; }

  /// Starts (or restarts) an incremental session over `system` with an empty
  /// placement. `system` must outlive the session.
  virtual void notify_reset(const ChipletSystem& system) {
    (void)system;
  }

  /// Chiplet `i` was placed (or moved) at `p`.
  virtual void notify_place(const ChipletSystem& system, std::size_t i,
                            const Placement& p) {
    (void)system;
    (void)i;
    (void)p;
  }

  /// Chiplet `i` was unplaced.
  virtual void notify_remove(std::size_t i) { (void)i; }

  /// Accepts all mutations since the previous commit()/rollback() — they can
  /// no longer be undone.
  virtual void commit() {}

  /// Reverts all mutations since the previous commit() (the SA reject path).
  virtual void rollback() {}

  /// Peak temperature of `floorplan`, bringing the incremental state in sync
  /// first (delta updates for dies whose placement differs from the last
  /// synced state — explicit notify_* calls simply make this diff empty).
  /// Default: a plain full evaluation.
  virtual double incremental_max_temperature(const ChipletSystem& system,
                                             const Floorplan& floorplan) {
    return max_temperature(system, floorplan);
  }
};

/// Ground-truth adapter ("HotSpot" configuration).
class GridSolverEvaluator final : public ThermalEvaluator {
 public:
  /// `stack` must outlive the evaluator.
  explicit GridSolverEvaluator(const LayerStack& stack,
                               GridSolverConfig config = {})
      : solver_(stack, config) {}

  double max_temperature(const ChipletSystem& system,
                         const Floorplan& floorplan) override {
    return solver_.solve(system, floorplan).max_temp_c;
  }
  long num_evaluations() const override { return solver_.num_solves(); }
  std::string name() const override { return "grid-solver"; }

  /// Fresh solver over the same stack/config (solve counter starts at zero;
  /// the warm-start cache is per-instance, which is exactly why clones are
  /// needed per thread).
  std::unique_ptr<ThermalEvaluator> clone() const override {
    return std::make_unique<GridSolverEvaluator>(solver_.stack(),
                                                 solver_.config());
  }

  GridThermalSolver& solver() { return solver_; }

 private:
  GridThermalSolver solver_;
};

/// Fast-model adapter ("fast thermal model" configuration).
class FastModelEvaluator final : public ThermalEvaluator {
 public:
  explicit FastModelEvaluator(FastThermalModel model)
      : model_(std::move(model)) {}

  double max_temperature(const ChipletSystem& system,
                         const Floorplan& floorplan) override {
    ++count_;
    return model_.evaluate(system, floorplan).max_temp_c;
  }
  std::vector<double> max_temperature_batch(
      const ChipletSystem& system, std::span<const Floorplan> floorplans,
      parallel::ThreadPool* pool = nullptr) override {
    count_ += static_cast<long>(floorplans.size());
    const auto results = model_.evaluate_batch(system, floorplans, pool);
    std::vector<double> out;
    out.reserve(results.size());
    for (const auto& r : results) out.push_back(r.max_temp_c);
    return out;
  }
  long num_evaluations() const override { return count_; }
  std::string name() const override { return "fast-model"; }

  /// Deep copy (the model holds its tables by value).
  std::unique_ptr<ThermalEvaluator> clone() const override {
    return std::make_unique<FastModelEvaluator>(model_);
  }

  const FastThermalModel& model() const { return model_; }

 private:
  FastThermalModel model_;
  long count_ = 0;
};

}  // namespace rlplan::thermal
