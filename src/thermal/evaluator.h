// Pluggable thermal-evaluation interface.
//
// Both optimizers (RLPlanner's reward calculator and the TAP-2.5D SA
// baseline) only need "peak temperature of this placement". Injecting either
// the ground-truth grid solver or the fast LTI model reproduces the paper's
// four method configurations (Table I / Table III) without code changes.
#pragma once

#include <memory>
#include <string>

#include "core/chiplet.h"
#include "core/floorplan.h"
#include "thermal/fast_model.h"
#include "thermal/grid_solver.h"

namespace rlplan::thermal {

class ThermalEvaluator {
 public:
  virtual ~ThermalEvaluator() = default;

  /// Peak chiplet temperature (deg C) of the placement.
  virtual double max_temperature(const ChipletSystem& system,
                                 const Floorplan& floorplan) = 0;

  /// Evaluations performed so far (budget accounting in benches).
  virtual long num_evaluations() const = 0;

  virtual std::string name() const = 0;

  /// Independent copy for per-thread use (parallel::VecEnv gives each worker
  /// environment its own evaluator so no synchronization is needed on the
  /// episode-end hot path). Returns nullptr when the evaluator cannot be
  /// cloned; callers requiring parallelism must reject that.
  virtual std::unique_ptr<ThermalEvaluator> clone() const { return nullptr; }
};

/// Ground-truth adapter ("HotSpot" configuration).
class GridSolverEvaluator final : public ThermalEvaluator {
 public:
  /// `stack` must outlive the evaluator.
  explicit GridSolverEvaluator(const LayerStack& stack,
                               GridSolverConfig config = {})
      : solver_(stack, config) {}

  double max_temperature(const ChipletSystem& system,
                         const Floorplan& floorplan) override {
    return solver_.solve(system, floorplan).max_temp_c;
  }
  long num_evaluations() const override { return solver_.num_solves(); }
  std::string name() const override { return "grid-solver"; }

  /// Fresh solver over the same stack/config (solve counter starts at zero;
  /// the warm-start cache is per-instance, which is exactly why clones are
  /// needed per thread).
  std::unique_ptr<ThermalEvaluator> clone() const override {
    return std::make_unique<GridSolverEvaluator>(solver_.stack(),
                                                 solver_.config());
  }

  GridThermalSolver& solver() { return solver_; }

 private:
  GridThermalSolver solver_;
};

/// Fast-model adapter ("fast thermal model" configuration).
class FastModelEvaluator final : public ThermalEvaluator {
 public:
  explicit FastModelEvaluator(FastThermalModel model)
      : model_(std::move(model)) {}

  double max_temperature(const ChipletSystem& system,
                         const Floorplan& floorplan) override {
    ++count_;
    return model_.evaluate(system, floorplan).max_temp_c;
  }
  long num_evaluations() const override { return count_; }
  std::string name() const override { return "fast-model"; }

  /// Deep copy (the model holds its tables by value).
  std::unique_ptr<ThermalEvaluator> clone() const override {
    return std::make_unique<FastModelEvaluator>(model_);
  }

  const FastThermalModel& model() const { return model_; }

 private:
  FastThermalModel model_;
  long count_ = 0;
};

}  // namespace rlplan::thermal
