#include "thermal/soa_kernels.h"

namespace rlplan::thermal {

const SoaKernelOps* soa_kernel_ops(util::SimdLevel level) {
  switch (level) {
    case util::SimdLevel::kAvx2:
      // The AVX2 TU is compiled into every x86-64 binary; gate on the
      // runtime cpuid so forcing RLPLANNER_SIMD=avx2 on an SSE2-only host
      // degrades to scalar instead of faulting on the first vector op.
      return util::detected_simd_level() == util::SimdLevel::kAvx2
                 ? soa_kernel_ops_avx2()
                 : nullptr;
    case util::SimdLevel::kNeon:
      // NEON is baseline on AArch64 — the TU itself is the stub elsewhere.
      return soa_kernel_ops_neon();
    case util::SimdLevel::kScalar:
      break;
  }
  return nullptr;
}

util::SimdLevel soa_dispatch_level() {
  const util::SimdLevel level = util::active_simd_level();
  return soa_kernel_ops(level) != nullptr ? level : util::SimdLevel::kScalar;
}

}  // namespace rlplan::thermal
