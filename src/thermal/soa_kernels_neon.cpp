// AArch64 Advanced-SIMD implementation of the fused SoA kernel sweep (see
// soa_kernels.h for the dispatch scheme and numerical contract).
//
// NEON has no hardware gather, so the LUT stage loads each (base, diff)
// segment as one contiguous 128-bit vld1q and transposes pairs of segments
// into base/diff vectors; the coordinate stage is a straight 2-lane port of
// the AVX2 sweep. NEON is baseline on AArch64, so no per-file ISA flags are
// needed — the stub branch below only triggers on non-ARM builds of this TU.
#include "thermal/soa_kernels.h"

#if defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>

namespace rlplan::thermal {
namespace {

/// Broadcast sweep constants, hoisted once per probe by the sweep drivers.
struct SweepConsts {
  float64x2_t px, py, front, back, inv, cap;
  double s_px, s_py, s_front, s_back, s_inv, s_cap;
};

inline SweepConsts make_consts(double px, double py, double front, double back,
                               double inv_step, double cap) {
  return {vdupq_n_f64(px),   vdupq_n_f64(py),  vdupq_n_f64(front),
          vdupq_n_f64(back), vdupq_n_f64(inv_step),
          vdupq_n_f64(cap),  px,  py,  front, back, inv_step, cap};
}

/// Pass-1 math for two points: distance -> capped coordinate -> segment
/// indices + fraction vector.
inline void coord2(const double* sx, const double* sy, const SweepConsts& c,
                   int& i0, int& i1, float64x2_t& fr) {
  const float64x2_t dx = vsubq_f64(vld1q_f64(sx), c.px);
  const float64x2_t dy = vsubq_f64(vld1q_f64(sy), c.py);
  const float64x2_t d = vsqrtq_f64(vfmaq_f64(vmulq_f64(dy, dy), dx, dx));
  const float64x2_t clamped = vminq_f64(vmaxq_f64(d, c.front), c.back);
  const float64x2_t x =
      vminq_f64(vmulq_f64(vsubq_f64(clamped, c.front), c.inv), c.cap);
  const int64x2_t ii = vcvtq_s64_f64(x);  // truncates toward zero
  i0 = static_cast<int>(vgetq_lane_s64(ii, 0));
  i1 = static_cast<int>(vgetq_lane_s64(ii, 1));
  fr = vsubq_f64(x, vcvtq_f64_s64(ii));
}

/// Scalar fused tail for one point; mirrors the vector lanes' operations.
inline double point1(const double* sx, const double* sy, const SweepConsts& c,
                     const double* lut, double& fr) {
  const double dx = *sx - c.s_px;
  const double dy = *sy - c.s_py;
  const double d = __builtin_sqrt(__builtin_fma(dx, dx, dy * dy));
  const double clamped =
      d < c.s_front ? c.s_front : (d > c.s_back ? c.s_back : d);
  double x = (clamped - c.s_front) * c.s_inv;
  if (x > c.s_cap) x = c.s_cap;
  const int ii = static_cast<int>(x);
  fr = x - static_cast<double>(ii);
  const double* seg = lut + 2 * ii;
  return seg[0] + fr * seg[1];
}

double block_unit(const double* sx, const double* sy, const SweepConsts& c,
                  const double* lut, std::size_t n) {
  const float64x2_t zero = vdupq_n_f64(0.0);
  float64x2_t acc = zero;
  std::size_t k = 0;
  for (; k + 2 <= n; k += 2) {
    int i0, i1;
    float64x2_t fr;
    coord2(sx + k, sy + k, c, i0, i1, fr);
    const float64x2_t seg0 = vld1q_f64(lut + 2 * i0);
    const float64x2_t seg1 = vld1q_f64(lut + 2 * i1);
    const float64x2_t base = vtrn1q_f64(seg0, seg1);
    const float64x2_t diff = vtrn2q_f64(seg0, seg1);
    const float64x2_t v = vfmaq_f64(base, fr, diff);
    acc = vaddq_f64(acc, vmaxq_f64(v, zero));
  }
  double r = vgetq_lane_f64(acc, 0) + vgetq_lane_f64(acc, 1);
  for (; k < n; ++k) {
    double fr;
    const double v = point1(sx + k, sy + k, c, lut, fr);
    r += v > 0.0 ? v : 0.0;
  }
  return r;
}

double block_weighted(const double* sx, const double* sy, const SweepConsts& c,
                      const double* lut, const double* w, std::size_t n) {
  const float64x2_t zero = vdupq_n_f64(0.0);
  float64x2_t acc = zero;
  std::size_t k = 0;
  for (; k + 2 <= n; k += 2) {
    int i0, i1;
    float64x2_t fr;
    coord2(sx + k, sy + k, c, i0, i1, fr);
    const float64x2_t seg0 = vld1q_f64(lut + 2 * i0);
    const float64x2_t seg1 = vld1q_f64(lut + 2 * i1);
    const float64x2_t base = vtrn1q_f64(seg0, seg1);
    const float64x2_t diff = vtrn2q_f64(seg0, seg1);
    const float64x2_t v = vmaxq_f64(vfmaq_f64(base, fr, diff), zero);
    acc = vfmaq_f64(acc, vld1q_f64(w + k), v);
  }
  double r = vgetq_lane_f64(acc, 0) + vgetq_lane_f64(acc, 1);
  for (; k < n; ++k) {
    double fr;
    const double v = point1(sx + k, sy + k, c, lut, fr);
    r += w[k] * (v > 0.0 ? v : 0.0);
  }
  return r;
}

double block_raw(const double* sx, const double* sy, const SweepConsts& c,
                 const double* lut, std::size_t n) {
  float64x2_t acc = vdupq_n_f64(0.0);
  std::size_t k = 0;
  for (; k + 2 <= n; k += 2) {
    int i0, i1;
    float64x2_t fr;
    coord2(sx + k, sy + k, c, i0, i1, fr);
    const float64x2_t seg0 = vld1q_f64(lut + 2 * i0);
    const float64x2_t seg1 = vld1q_f64(lut + 2 * i1);
    const float64x2_t base = vtrn1q_f64(seg0, seg1);
    const float64x2_t diff = vtrn2q_f64(seg0, seg1);
    acc = vaddq_f64(acc, vfmaq_f64(base, fr, diff));
  }
  double r = vgetq_lane_f64(acc, 0) + vgetq_lane_f64(acc, 1);
  for (; k < n; ++k) {
    double fr;
    r += point1(sx + k, sy + k, c, lut, fr);
  }
  return r;
}

void sweep_unit_neon(const double* sx, const double* sy, double px, double py,
                     double front, double back, double inv_step, double cap,
                     const double* lut, std::size_t pts_per_src,
                     std::size_t n_src, double* subtotal) {
  const SweepConsts c = make_consts(px, py, front, back, inv_step, cap);
  for (std::size_t a = 0; a < n_src; ++a) {
    const std::size_t base = a * pts_per_src;
    subtotal[a] = block_unit(sx + base, sy + base, c, lut, pts_per_src);
  }
}

void sweep_weighted_neon(const double* sx, const double* sy, double px,
                         double py, double front, double back, double inv_step,
                         double cap, const double* lut, const double* w,
                         std::size_t pts_per_src, std::size_t n_src,
                         double* subtotal) {
  const SweepConsts c = make_consts(px, py, front, back, inv_step, cap);
  for (std::size_t a = 0; a < n_src; ++a) {
    const std::size_t base = a * pts_per_src;
    subtotal[a] = block_weighted(sx + base, sy + base, c, lut, w, pts_per_src);
  }
}

void sweep_raw_neon(const double* sx, const double* sy, double px, double py,
                    double front, double back, double inv_step, double cap,
                    const double* lut, std::size_t pts_per_src,
                    std::size_t n_src, double* subtotal) {
  const SweepConsts c = make_consts(px, py, front, back, inv_step, cap);
  for (std::size_t a = 0; a < n_src; ++a) {
    const std::size_t base = a * pts_per_src;
    subtotal[a] = block_raw(sx + base, sy + base, c, lut, pts_per_src);
  }
}

// Pair-row drivers: the transpose of the sweeps — fresh probe constants per
// row entry, shared block kernels over the one source block.
void pair_unit_neon(const double* px, const double* py, std::size_t n_probes,
                    const double* sx, const double* sy, std::size_t pts,
                    double front, double back, double inv_step, double cap,
                    const double* lut, double* out) {
  for (std::size_t p = 0; p < n_probes; ++p) {
    const SweepConsts c = make_consts(px[p], py[p], front, back, inv_step, cap);
    out[p] = block_unit(sx, sy, c, lut, pts);
  }
}

void pair_weighted_neon(const double* px, const double* py,
                        std::size_t n_probes, const double* sx,
                        const double* sy, std::size_t pts, double front,
                        double back, double inv_step, double cap,
                        const double* lut, const double* w, double* out) {
  for (std::size_t p = 0; p < n_probes; ++p) {
    const SweepConsts c = make_consts(px[p], py[p], front, back, inv_step, cap);
    out[p] = block_weighted(sx, sy, c, lut, w, pts);
  }
}

void pair_raw_neon(const double* px, const double* py, std::size_t n_probes,
                   const double* sx, const double* sy, std::size_t pts,
                   double front, double back, double inv_step, double cap,
                   const double* lut, double* out) {
  for (std::size_t p = 0; p < n_probes; ++p) {
    const SweepConsts c = make_consts(px[p], py[p], front, back, inv_step, cap);
    out[p] = block_raw(sx, sy, c, lut, pts);
  }
}

constexpr SoaKernelOps kNeonOps{sweep_unit_neon,   sweep_weighted_neon,
                                sweep_raw_neon,    pair_unit_neon,
                                pair_weighted_neon, pair_raw_neon};

}  // namespace

const SoaKernelOps* soa_kernel_ops_neon() { return &kNeonOps; }

}  // namespace rlplan::thermal

#else  // !(__aarch64__ && __ARM_NEON)

namespace rlplan::thermal {
const SoaKernelOps* soa_kernel_ops_neon() { return nullptr; }
}  // namespace rlplan::thermal

#endif
