// Offline characterization of the fast thermal model (Section II-C).
//
// Exactly as the paper characterizes against HotSpot, we characterize against
// GridThermalSolver:
//
//  * Self table — "setting a chiplet's power to a non-zero value and run
//    HotSpot to create a 2D self-thermal resistance table": for every (w, h)
//    on the axis grid, solve a single centered die dissipating a reference
//    power and record peak-rise-per-watt.
//
//  * Mutual table — "characterize the mutual-thermal resistance by a 1D table
//    with respect to the distance between power source and grid location":
//    solve one small reference source at the interposer center, then bin the
//    chiplet-layer temperature field by distance from the source and average
//    rise-per-watt in each bin.
//
// Tables are specific to a (layer stack, interposer size) pair; cache them
// with FastThermalModel::save/load.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "robust/robust.h"
#include "thermal/fast_model.h"
#include "thermal/grid_solver.h"
#include "thermal/layer_stack.h"

namespace rlplan::thermal {

struct CharacterizationConfig {
  GridSolverConfig solver{};
  /// Self-table axes (mm). Empty -> auto: `auto_axis_points` points spanning
  /// [min_die_mm, max_die_mm].
  std::vector<double> widths_mm{};
  std::vector<double> heights_mm{};
  double min_die_mm = 2.0;   ///< auto-axis lower bound
  double max_die_mm = 30.0;  ///< auto-axis upper bound
  std::size_t auto_axis_points = 10;
  /// Geometric (log-spaced) auto axes concentrate samples on small dies,
  /// where R_self(w, h) ~ 1/area is steeply convex and linear interpolation
  /// on a coarse grid badly overestimates.
  bool geometric_axes = true;
  double reference_power_w = 10.0;
  /// Side of the square reference source for the mutual sweep (mm).
  double mutual_source_mm = 2.0;
  /// Distance bin width for the 1D table (mm); 0 -> one grid-cell pitch.
  double mutual_bin_mm = 0.0;
  /// Number of reference-source positions for the mutual sweep: 1 = center
  /// only (a clean free-field kernel, required by the method-of-images
  /// evaluation), 5 = center + 4 quadrant offsets (averages boundary effects
  /// into the table; use with model_config.use_images = false).
  std::size_t mutual_source_positions = 1;
  /// Iterations of image-deconvolution applied to the measured kernel: the
  /// center probe's own boundary reflections contaminate the tail of the
  /// raw table; each iteration subtracts the reflections predicted by the
  /// current kernel estimate. Default 0: measurement (bench/ablation_tables)
  /// shows the raw kernel plus damped floor interacts better with the
  /// annulus-binned near field.
  int kernel_deconvolution_iters = 0;
  /// Position-correction sweep: a reference die is solved at
  /// position_points x position_points centers and the rise ratio to the
  /// centered solve becomes the C(cx, cy) factor table. 0 disables the
  /// correction (paper-minimal tables; several-K errors for edge dies).
  std::size_t position_points = 7;
  double position_ref_die_mm = 8.0;
  FastModelConfig model_config{};
  /// Cooperative stop, polled before every probe solve. A half-built table
  /// set is useless, so characterization has no best-so-far: stopping throws
  /// robust::CancelledError instead.
  robust::RunControl control{};
};

struct CharacterizationReport {
  std::size_t self_solves = 0;
  std::size_t mutual_solves = 0;
  std::size_t position_solves = 0;
  double total_seconds = 0.0;
};

class ThermalCharacterizer {
 public:
  /// `stack` must outlive the characterizer.
  ThermalCharacterizer(const LayerStack& stack,
                       CharacterizationConfig config = {});

  /// Builds a FastThermalModel for the given interposer footprint.
  /// `progress` (optional) is called after each probe solve with
  /// (done, total).
  FastThermalModel characterize(
      double interposer_w_mm, double interposer_h_mm,
      const std::function<void(std::size_t, std::size_t)>& progress = {});

  const CharacterizationReport& report() const { return report_; }

 private:
  SelfResistanceTable build_self_table(
      double iw, double ih, const std::vector<double>& widths,
      const std::vector<double>& heights,
      const std::function<void(std::size_t, std::size_t)>& progress,
      std::size_t total_probes, std::size_t probes_done);
  MutualResistanceTable build_mutual_table(double iw, double ih);
  BilinearTable2D build_position_correction(
      double iw, double ih,
      const std::function<void(std::size_t, std::size_t)>& progress,
      std::size_t total_probes);

  const LayerStack* stack_;
  CharacterizationConfig config_;
  CharacterizationReport report_;
  BilinearTable2D droop_table_;  // built alongside the self table
};

/// Helper: evenly spaced axis of `n` points over [lo, hi].
std::vector<double> linspace(double lo, double hi, std::size_t n);

/// Helper: geometrically spaced axis of `n` points over [lo, hi], lo > 0.
std::vector<double> geomspace(double lo, double hi, std::size_t n);

}  // namespace rlplan::thermal
