// Jacobi-preconditioned conjugate gradient for SPD thermal systems.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "thermal/sparse.h"

namespace rlplan::thermal {

struct CgOptions {
  double tolerance = 1e-8;   ///< relative residual ||r|| / ||b||
  std::size_t max_iterations = 5000;
};

struct CgResult {
  std::size_t iterations = 0;
  double relative_residual = 0.0;
  bool converged = false;
};

/// Solves A x = b for SPD A with Jacobi (diagonal) preconditioning.
/// `x` is both the initial guess (warm start) and the output.
CgResult conjugate_gradient(const SparseMatrix& a, std::span<const double> b,
                            std::span<double> x, const CgOptions& options = {});

}  // namespace rlplan::thermal
