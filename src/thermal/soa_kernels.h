// Explicitly vectorized implementations of the SoA batch kernel's hot loop,
// selected at runtime via util/simd.
//
// Conceptually the kernel is two passes — pass 1 (distance -> capped table
// coordinate -> segment index + fraction) and pass 2 (segment-LUT gather /
// interpolate / accumulate) — and the scalar reference in SoaSnapshot keeps
// them as two separate sweeps because that is what auto-vectorizes best.
// The explicit kernels fuse both passes into ONE sweep per source block: the
// index/fraction intermediates never round-trip through memory (at
// production block sizes of ~18-36 points the store/reload traffic costs as
// much as the arithmetic), and each block reduces straight to its subtotal.
//
// Numerical contract (gated by tests/soa_kernel_test.cpp at the repo-wide
// 1e-9 C bar):
//  * the per-point operations are exactly the scalar kernel's (sqrt,
//    min/max, one multiply, truncate, one fused lerp). sqrt/min/max are
//    correctly rounded in both, so a point can differ from the scalar pass
//    only when FMA contraction of the distance square shifts a coordinate by
//    an ulp across a segment boundary — the interpolant is continuous there,
//    so the value error stays at ulp level.
//  * accumulation keeps the per-SOURCE order of the scalar kernel (one
//    subtotal per source block, blocks combined by the caller in scalar
//    order), so error does not grow with die count. Within a source block
//    the lanes sum in a fixed tree order instead of strictly left-to-right:
//    a few-ulp difference on the block subtotal, identical for every run
//    and thread count.
//
// Each ISA lives in its own translation unit (soa_kernels_avx2.cpp built
// with -mavx2 -mfma on x86-64, soa_kernels_neon.cpp on AArch64); on foreign
// architectures those TUs compile to a stub returning nullptr, so the
// dispatch below degrades to scalar instead of failing to link.
#pragma once

#include <cstddef>

#include "util/simd.h"

namespace rlplan::thermal {

/// Function-pointer table for one SIMD level. Each entry is a fused sweep
/// over `n_src` source blocks of `pts_per_src` points: for every a in
/// [0, n_src), subtotal[a] accumulates the interpolated decay over points
/// [a*pts_per_src, (a+1)*pts_per_src) of sx/sy. One indirect call covers a
/// whole probe — per-(probe, source) calls would be dominated by call and
/// constant-setup cost at production block sizes. All lengths are in points;
/// buffers may be unaligned (the snapshot's std::vector storage).
///
/// Shared per-point math: d = sqrt((sx[k]-px)^2 + (sy[k]-py)^2);
/// x = min((clamp(d, front, back) - front) * inv_step, cap);
/// (base, diff) = lut[2*trunc(x)], lut[2*trunc(x)+1]; v = base +
/// (x - trunc(x)) * diff.
struct SoaKernelOps {
  /// Images with unit weights: subtotal[a] = sum of max(v, 0).
  void (*sweep_unit)(const double* sx, const double* sy, double px, double py,
                     double front, double back, double inv_step, double cap,
                     const double* lut, std::size_t pts_per_src,
                     std::size_t n_src, double* subtotal);
  /// Images with per-point weights: subtotal[a] = sum of w[t]*max(v, 0),
  /// where w holds ONE block's weights (pts_per_src entries) reused for
  /// every source block.
  void (*sweep_weighted)(const double* sx, const double* sy, double px,
                         double py, double front, double back, double inv_step,
                         double cap, const double* lut, const double* w,
                         std::size_t pts_per_src, std::size_t n_src,
                         double* subtotal);
  /// No images: subtotal[a] = sum of v (no floor, no clamp to zero).
  void (*sweep_raw)(const double* sx, const double* sy, double px, double py,
                    double front, double back, double inv_step, double cap,
                    const double* lut, std::size_t pts_per_src,
                    std::size_t n_src, double* subtotal);

  // Pair-row forms: one (receiver, source) coupling row — the transpose of
  // the sweep forms (one source block against MANY probes instead of one
  // probe against many source blocks). For every p in [0, n_probes), out[p]
  // accumulates over the single `pts`-point block in sx/sy, with the same
  // per-point math and the same fixed-tree block reduction as the sweeps —
  // out[p] is bit-identical to the subtotal the matching sweep form produces
  // for that (probe, block). One indirect call covers the whole row, which
  // is the granularity the incremental single-move path recomputes at.

  /// Images with unit weights: out[p] = sum of max(v, 0) over the block.
  void (*pair_unit)(const double* px, const double* py, std::size_t n_probes,
                    const double* sx, const double* sy, std::size_t pts,
                    double front, double back, double inv_step, double cap,
                    const double* lut, double* out);
  /// Images with per-point weights (w holds `pts` entries): out[p] = sum of
  /// w[k]*max(v, 0) over the block.
  void (*pair_weighted)(const double* px, const double* py,
                        std::size_t n_probes, const double* sx,
                        const double* sy, std::size_t pts, double front,
                        double back, double inv_step, double cap,
                        const double* lut, const double* w, double* out);
  /// No images: out[p] = sum of v over the block.
  void (*pair_raw)(const double* px, const double* py, std::size_t n_probes,
                   const double* sx, const double* sy, std::size_t pts,
                   double front, double back, double inv_step, double cap,
                   const double* lut, double* out);
};

/// Ops for `level`, or nullptr when the level is kScalar or its kernels are
/// not compiled in / not supported by this build's architecture. Callers
/// fall back to their scalar reference path on nullptr.
const SoaKernelOps* soa_kernel_ops(util::SimdLevel level);

/// The level soa_kernel_ops() would actually serve for util::active_simd_level()
/// — i.e. the process-wide dispatch choice with unavailable levels collapsed
/// to kScalar. This is the value benches publish.
util::SimdLevel soa_dispatch_level();

// Per-ISA tables (defined in their own TUs; nullptr when unavailable).
const SoaKernelOps* soa_kernel_ops_avx2();
const SoaKernelOps* soa_kernel_ops_neon();

}  // namespace rlplan::thermal
