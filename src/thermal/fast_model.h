// Fast thermal evaluation (the paper's core thermal contribution).
//
// Treats the package thermal network as linear and time-invariant: the
// temperature of chiplet i superposes its own heating (self-thermal
// resistance, a 2D table over die footprint) and the heating caused by every
// other die (mutual-thermal resistance, a 1D table over center-to-center
// distance):
//
//   T_i = T_ambient + R_self(w_i, h_i) * P_i + sum_{j != i} R_mutual(d_ij) * P_j
//
// Evaluation is a handful of table lookups per chiplet — this is where the
// paper's 127x speed-up over full HotSpot solves comes from. The model is
// approximate because the real network is *not* exactly LTI in placement:
// chiplet-layer conductivity depends on where every die sits, and dies near
// interposer edges spread heat worse than the center-characterized tables
// assume. Table II quantifies exactly this error.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "core/chiplet.h"
#include "core/floorplan.h"
#include "thermal/resistance_table.h"

namespace rlplan::parallel {
class ThreadPool;
}

namespace rlplan::thermal {

class SoaSnapshot;

/// Source-to-probe distance used by every fast-model evaluation path (scalar
/// evaluate(), the incremental engine, and the SoA batch kernel). The
/// sqrt-form is ~3x cheaper than std::hypot and auto-vectorizes; it may
/// differ from hypot by 1 ulp, far below the thermal model's accuracy, and
/// because all paths share this one definition they stay bit-identical to
/// each other.
inline double kernel_distance(double dx, double dy) {
  return std::sqrt(dx * dx + dy * dy);
}

struct FastModelConfig {
  /// Sub-sample each source die as n x n point sources for the mutual term
  /// (1 = paper-faithful single center source; >1 trades speed for accuracy
  /// on physically large dies). Swept by bench/ablation_tables.
  int source_subsamples = 2;
  /// Evaluate the receiver's temperature at an n x n grid of probe points
  /// inside its footprint and take the maximum ("distance between power
  /// source and grid location" per the paper). With 1, only the die center
  /// is probed, which underestimates dies whose hottest cell is the edge
  /// facing a hot neighbour.
  int receiver_probes = 3;
  /// Also scale the mutual term by sqrt(C(src) * C(dst)) when a position-
  /// correction table is installed. Off by default: measurement shows the
  /// far-field coupling is a package-level effect already captured by the
  /// distance table, and this correction overcompensates (see
  /// bench/ablation_tables).
  bool correct_mutual = false;
  /// Method-of-images boundary handling: decompose the characterized kernel
  /// into a uniform package-level floor plus a decaying free-field part, and
  /// superpose first-order mirror sources across the four package edges (and
  /// corner double-mirrors). Captures the boundary reflections a plain 1D
  /// distance table smears away. Applies to the mutual term and, through
  /// self-images, to off-center self heating.
  bool use_images = true;
  /// Mirror-source weight. The grid model's package rim is adiabatic, so
  /// full-strength reflections (1.0) are physically correct; lower values
  /// model convectively-cooled rims. Swept by bench/ablation_tables.
  double image_reflectivity = 1.0;
};

struct FastThermalResult {
  double max_temp_c = 0.0;
  std::vector<double> chiplet_temp_c;
  double eval_seconds = 0.0;
};

class FastThermalModel {
 public:
  FastThermalModel() = default;
  FastThermalModel(SelfResistanceTable self_table,
                   MutualResistanceTable mutual_table, double ambient_c,
                   FastModelConfig config = {});

  bool empty() const { return self_table_.empty() || mutual_table_.empty(); }
  double ambient_c() const { return ambient_c_; }
  const SelfResistanceTable& self_table() const { return self_table_; }
  const MutualResistanceTable& mutual_table() const { return mutual_table_; }
  const FastModelConfig& config() const { return config_; }

  /// Installs the optional position-correction factor table C(cx, cy):
  /// the self term becomes R_self(w, h) * C(center). An empty table (the
  /// default) means no correction — the paper-minimal configuration.
  void set_position_correction(BilinearTable2D table) {
    position_correction_ = std::move(table);
  }
  const BilinearTable2D& position_correction() const {
    return position_correction_;
  }
  bool has_position_correction() const {
    return !position_correction_.empty();
  }

  /// Installs the optional within-die droop table d(w, h) = corner rise /
  /// peak rise of an isolated die, used to attenuate the self term at
  /// off-center receiver probes. Empty (default) = no attenuation.
  void set_self_droop(BilinearTable2D table) {
    self_droop_ = std::move(table);
  }
  const BilinearTable2D& self_droop() const { return self_droop_; }

  /// Method-of-images geometry/floor (required when config.use_images):
  /// package extent in mm and the uniform rise floor in K/W that the
  /// decaying kernel sits on.
  void set_image_params(double package_w_mm, double package_h_mm,
                        double uniform_floor_k_per_w) {
    package_w_mm_ = package_w_mm;
    package_h_mm_ = package_h_mm;
    uniform_floor_ = uniform_floor_k_per_w;
  }
  double uniform_floor() const { return uniform_floor_; }
  double package_w_mm() const { return package_w_mm_; }
  double package_h_mm() const { return package_h_mm_; }

  /// Evaluates all placed chiplets' temperatures; unplaced chiplets read
  /// ambient and contribute no mutual heating.
  ///
  /// NOT safe for concurrent calls on the same instance (reuses internal
  /// scratch buffers); clone the model per thread, as parallel::VecEnv does
  /// through ThermalEvaluator::clone().
  FastThermalResult evaluate(const ChipletSystem& system,
                             const Floorplan& floorplan) const;

  /// Batched whole-floorplan evaluation: all candidates of `floorplans` (each
  /// over `system`) through the SoA kernel (thermal/soa_snapshot.h), with the
  /// snapshot geometry, table views, and scratch amortized across candidates.
  /// When `pool` is given, candidate chunks fan out over its workers —
  /// results are index-aligned and independent of the thread count.
  /// Temperatures agree with a plain evaluate() of each candidate to within
  /// 1e-9 C (observed ~1e-13 C: the SoA kernel interpolates uniform mutual
  /// tables in fraction form — see soa_snapshot.h for the full numerical
  /// contract); do NOT compare the two paths with exact equality.
  ///
  /// Unlike evaluate(), this is safe for concurrent calls on a shared
  /// instance: all mutable state lives in per-lane snapshots.
  std::vector<FastThermalResult> evaluate_batch(
      const ChipletSystem& system, std::span<const Floorplan> floorplans,
      parallel::ThreadPool* pool = nullptr) const;

  /// Temperature of a single chiplet: one row of evaluate(), computed
  /// without touching the other receivers. Unplaced chiplets read ambient.
  double chiplet_temperature(const ChipletSystem& system,
                             const Floorplan& floorplan,
                             std::size_t chiplet) const;

  // --- Evaluation building blocks -----------------------------------------
  // Shared between evaluate() and the incremental engine
  // (thermal/incremental.h) so both produce identical numbers: a cached
  // pairwise contribution is the very double evaluate() would have summed.

  /// Receiver probe points inside `footprint` (probe_count() entries,
  /// row-major over the probe grid) and the per-probe self-heating shape
  /// factor (center = 1, drooping toward corners per the droop table).
  void receiver_probes(const Rect& footprint, std::vector<Point>& probes,
                       std::vector<double>& shapes) const;
  /// Number of receiver probe points per die (receiver_probes squared).
  int probe_count() const;
  /// Sub-source point grid of a source footprint (source_subsamples squared
  /// entries).
  void source_points(const Rect& footprint, std::vector<Point>& out) const;
  /// Self term in K: R_self * power with the configured boundary treatment
  /// (mirror images or the measured position correction).
  double self_rise(const Chiplet& chip, const Rect& footprint) const;
  /// Position-correction factor at a die center (1 when no table installed).
  double center_correction(const Point& center) const;
  /// Mutual pair scale sqrt(C_src * C_dst) under config().correct_mutual;
  /// exactly 1.0 otherwise.
  double pair_correction(double src_corr, double dst_corr) const;
  /// Temperature rise at `probe` caused by one source die: kernel summed
  /// over its sub-sources, scaled by power and the pair correction.
  double source_contribution(std::span<const Point> subsources,
                             double power_w, const Point& probe,
                             double correction) const;

  void save(const std::string& path) const;
  static FastThermalModel load(const std::string& path);

 private:
  /// Decaying kernel: table value minus the uniform floor, clamped >= 0.
  double decay_kernel(double distance_mm) const;
  /// Kernel evaluated source -> probe including first-order mirror images.
  double image_kernel(const Point& src, const Point& probe) const;
  /// Fills the per-source scratch (sub-source points, correction factors)
  /// for every placed, powered die in `rects`.
  void gather_sources(const ChipletSystem& system,
                      const std::vector<std::optional<Rect>>& rects) const;
  /// Peak rise of receiver `i` over its probe grid, using gather_sources()
  /// scratch for the mutual term.
  double receiver_peak_rise(const ChipletSystem& system,
                            const std::vector<std::optional<Rect>>& rects,
                            std::size_t i) const;

  SelfResistanceTable self_table_;
  MutualResistanceTable mutual_table_;
  BilinearTable2D position_correction_;  // empty = disabled
  BilinearTable2D self_droop_;           // empty = disabled
  double ambient_c_ = 45.0;
  double package_w_mm_ = 0.0;
  double package_h_mm_ = 0.0;
  double uniform_floor_ = 0.0;  // K/W
  FastModelConfig config_{};

  // Scratch reused across evaluate() calls (why evaluate() is const but not
  // concurrency-safe on a shared instance). Sub-source points are stored
  // flat, source_subsamples^2 per die.
  mutable std::vector<std::optional<Rect>> rects_scratch_;
  mutable std::vector<Point> subs_scratch_;
  mutable std::vector<double> corr_scratch_;
  mutable std::vector<Point> probes_scratch_;
  mutable std::vector<double> shapes_scratch_;
};

}  // namespace rlplan::thermal
