// AVX2 + FMA implementation of the fused SoA kernel sweep (see soa_kernels.h
// for the dispatch scheme and numerical contract).
//
// This TU is compiled with -mavx2 -mfma on x86-64 (per-file flags in
// CMakeLists.txt) and must stay the only place AVX2 instructions can appear:
// everything here runs strictly behind the runtime cpuid check in
// util::detected_simd_level(). On other architectures it compiles to a stub.
//
// Layout notes:
//  * segment indices come out of _mm256_cvttpd_epi32 as one __m128i of
//    int32 and feed the LUT gathers directly.
//  * the LUT interleaves (base, diff) per segment; the diff gather reuses
//    the doubled index vector against lut+1 instead of computing 2*i+1.
//  * per-block reductions use a fixed lane tree ((l0+l2)+(l1+l3)), so
//    results are identical run to run and thread count to thread count.
#include "thermal/soa_kernels.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

namespace rlplan::thermal {
namespace {

/// Broadcast sweep constants, hoisted once per probe by the sweep drivers so
/// the per-block loops touch registers only.
struct SweepConsts {
  __m256d px, py, front, back, inv, cap;
  double s_px, s_py, s_front, s_back, s_inv, s_cap;
};

inline SweepConsts make_consts(double px, double py, double front, double back,
                               double inv_step, double cap) {
  return {_mm256_set1_pd(px),   _mm256_set1_pd(py),  _mm256_set1_pd(front),
          _mm256_set1_pd(back), _mm256_set1_pd(inv_step),
          _mm256_set1_pd(cap),  px,  py,  front, back, inv_step, cap};
}

/// Fixed-order horizontal sum: (lane0 + lane2) + (lane1 + lane3).
inline double reduce4(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)));
}

/// All-lanes gather of p[i32[k]] (8-byte stride). The masked form with a
/// zeroed source is bit-identical to _mm256_i32gather_pd under a full mask;
/// it is used only because GCC flags the undefined-source variant with a
/// maybe-uninitialized false positive (breaks RLPLANNER_WERROR builds).
inline __m256d gather4(const double* p, __m128i i32) {
  return _mm256_mask_i32gather_pd(
      _mm256_setzero_pd(), p, i32,
      _mm256_castsi256_pd(_mm256_set1_epi64x(-1)), 8);
}

/// Pass-1 math for four points: distance -> capped coordinate -> doubled
/// segment index (for the interleaved LUT) + fraction.
inline void coord4(const double* sx, const double* sy, const SweepConsts& c,
                   __m128i& two, __m256d& fr) {
  const __m256d dx = _mm256_sub_pd(_mm256_loadu_pd(sx), c.px);
  const __m256d dy = _mm256_sub_pd(_mm256_loadu_pd(sy), c.py);
  const __m256d d =
      _mm256_sqrt_pd(_mm256_fmadd_pd(dx, dx, _mm256_mul_pd(dy, dy)));
  const __m256d clamped = _mm256_min_pd(_mm256_max_pd(d, c.front), c.back);
  const __m256d x = _mm256_min_pd(
      _mm256_mul_pd(_mm256_sub_pd(clamped, c.front), c.inv), c.cap);
  const __m128i ii = _mm256_cvttpd_epi32(x);
  fr = _mm256_sub_pd(x, _mm256_cvtepi32_pd(ii));
  two = _mm_slli_epi32(ii, 1);
}

/// Scalar fused tail for one point; mirrors the vector lanes' operations.
inline double point1(const double* sx, const double* sy, const SweepConsts& c,
                     const double* lut, double& fr) {
  const double dx = *sx - c.s_px;
  const double dy = *sy - c.s_py;
  const double d = __builtin_sqrt(__builtin_fma(dx, dx, dy * dy));
  const double clamped =
      d < c.s_front ? c.s_front : (d > c.s_back ? c.s_back : d);
  double x = (clamped - c.s_front) * c.s_inv;
  if (x > c.s_cap) x = c.s_cap;
  const int ii = static_cast<int>(x);
  fr = x - static_cast<double>(ii);
  const double* seg = lut + 2 * ii;
  return seg[0] + fr * seg[1];
}

double block_unit(const double* sx, const double* sy, const SweepConsts& c,
                  const double* lut, std::size_t n) {
  const __m256d zero = _mm256_setzero_pd();
  __m256d acc = zero;
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    __m128i two;
    __m256d fr;
    coord4(sx + k, sy + k, c, two, fr);
    const __m256d base = gather4(lut, two);
    const __m256d diff = gather4(lut + 1, two);
    acc = _mm256_add_pd(acc,
                        _mm256_max_pd(_mm256_fmadd_pd(fr, diff, base), zero));
  }
  double r = reduce4(acc);
  for (; k < n; ++k) {
    double fr;
    const double v = point1(sx + k, sy + k, c, lut, fr);
    r += v > 0.0 ? v : 0.0;
  }
  return r;
}

double block_weighted(const double* sx, const double* sy, const SweepConsts& c,
                      const double* lut, const double* w, std::size_t n) {
  const __m256d zero = _mm256_setzero_pd();
  __m256d acc = zero;
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    __m128i two;
    __m256d fr;
    coord4(sx + k, sy + k, c, two, fr);
    const __m256d base = gather4(lut, two);
    const __m256d diff = gather4(lut + 1, two);
    const __m256d v = _mm256_max_pd(_mm256_fmadd_pd(fr, diff, base), zero);
    acc = _mm256_fmadd_pd(_mm256_loadu_pd(w + k), v, acc);
  }
  double r = reduce4(acc);
  for (; k < n; ++k) {
    double fr;
    const double v = point1(sx + k, sy + k, c, lut, fr);
    r += w[k] * (v > 0.0 ? v : 0.0);
  }
  return r;
}

double block_raw(const double* sx, const double* sy, const SweepConsts& c,
                 const double* lut, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    __m128i two;
    __m256d fr;
    coord4(sx + k, sy + k, c, two, fr);
    const __m256d base = gather4(lut, two);
    const __m256d diff = gather4(lut + 1, two);
    acc = _mm256_add_pd(acc, _mm256_fmadd_pd(fr, diff, base));
  }
  double r = reduce4(acc);
  for (; k < n; ++k) {
    double fr;
    r += point1(sx + k, sy + k, c, lut, fr);
  }
  return r;
}

void sweep_unit_avx2(const double* sx, const double* sy, double px, double py,
                     double front, double back, double inv_step, double cap,
                     const double* lut, std::size_t pts_per_src,
                     std::size_t n_src, double* subtotal) {
  const SweepConsts c = make_consts(px, py, front, back, inv_step, cap);
  for (std::size_t a = 0; a < n_src; ++a) {
    const std::size_t base = a * pts_per_src;
    subtotal[a] = block_unit(sx + base, sy + base, c, lut, pts_per_src);
  }
}

void sweep_weighted_avx2(const double* sx, const double* sy, double px,
                         double py, double front, double back, double inv_step,
                         double cap, const double* lut, const double* w,
                         std::size_t pts_per_src, std::size_t n_src,
                         double* subtotal) {
  const SweepConsts c = make_consts(px, py, front, back, inv_step, cap);
  for (std::size_t a = 0; a < n_src; ++a) {
    const std::size_t base = a * pts_per_src;
    subtotal[a] = block_weighted(sx + base, sy + base, c, lut, w, pts_per_src);
  }
}

void sweep_raw_avx2(const double* sx, const double* sy, double px, double py,
                    double front, double back, double inv_step, double cap,
                    const double* lut, std::size_t pts_per_src,
                    std::size_t n_src, double* subtotal) {
  const SweepConsts c = make_consts(px, py, front, back, inv_step, cap);
  for (std::size_t a = 0; a < n_src; ++a) {
    const std::size_t base = a * pts_per_src;
    subtotal[a] = block_raw(sx + base, sy + base, c, lut, pts_per_src);
  }
}

// Pair-row drivers: the transpose of the sweeps — hoist fresh probe
// constants per row entry and run the shared block kernels over the one
// source block, so out[p] is bit-identical to the sweep subtotal for the
// same (probe, block).
void pair_unit_avx2(const double* px, const double* py, std::size_t n_probes,
                    const double* sx, const double* sy, std::size_t pts,
                    double front, double back, double inv_step, double cap,
                    const double* lut, double* out) {
  for (std::size_t p = 0; p < n_probes; ++p) {
    const SweepConsts c = make_consts(px[p], py[p], front, back, inv_step, cap);
    out[p] = block_unit(sx, sy, c, lut, pts);
  }
}

void pair_weighted_avx2(const double* px, const double* py,
                        std::size_t n_probes, const double* sx,
                        const double* sy, std::size_t pts, double front,
                        double back, double inv_step, double cap,
                        const double* lut, const double* w, double* out) {
  for (std::size_t p = 0; p < n_probes; ++p) {
    const SweepConsts c = make_consts(px[p], py[p], front, back, inv_step, cap);
    out[p] = block_weighted(sx, sy, c, lut, w, pts);
  }
}

void pair_raw_avx2(const double* px, const double* py, std::size_t n_probes,
                   const double* sx, const double* sy, std::size_t pts,
                   double front, double back, double inv_step, double cap,
                   const double* lut, double* out) {
  for (std::size_t p = 0; p < n_probes; ++p) {
    const SweepConsts c = make_consts(px[p], py[p], front, back, inv_step, cap);
    out[p] = block_raw(sx, sy, c, lut, pts);
  }
}

constexpr SoaKernelOps kAvx2Ops{sweep_unit_avx2,   sweep_weighted_avx2,
                                sweep_raw_avx2,    pair_unit_avx2,
                                pair_weighted_avx2, pair_raw_avx2};

}  // namespace

const SoaKernelOps* soa_kernel_ops_avx2() { return &kAvx2Ops; }

}  // namespace rlplan::thermal

#else  // !(__AVX2__ && __FMA__): foreign architecture or flags not applied

namespace rlplan::thermal {
const SoaKernelOps* soa_kernel_ops_avx2() { return nullptr; }
}  // namespace rlplan::thermal

#endif
