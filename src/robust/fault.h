// Deterministic, seed-driven fault injection for chaos testing.
//
// Configuration comes from the environment (or configure(), for tests):
//
//   RLPLANNER_FAULTS=ckpt_write:0.05,solver_diverge:0.02
//   RLPLANNER_FAULT_SEED=42          # default 0
//
// Each named site is a point in the code that asks `fault_point("site")`;
// the k-th hit of a site injects iff a stateless hash of
// (seed, site, k) maps below the configured probability. Because the decision
// depends only on the hit index — not on wall clock, thread ids, or RNG state
// shared with the workload — a given (spec, seed) pair reproduces the exact
// same injection sequence on every run, regardless of thread scheduling
// within a site. Unconfigured runs pay one relaxed atomic load per site hit.
//
// Shipped sites (documented in README "Robustness & fault tolerance"):
//
//   ckpt_write      TrainingSession::save_checkpoint -> TransientIoError
//   artifact_write  util::atomic_write_file (JSON/bench/metrics/trace
//                   artifacts) -> TransientIoError (retried internally)
//   pool_dispatch   ThreadPool::parallel_for degrades to inline execution
//   solver_diverge  GridThermalSolver treats the CG solve as non-converged
//                   and exercises the fallback re-solve
//   ppo_nan         PpoCore::update poisons one gradient with NaN, which the
//                   finiteness guard must catch and roll back
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace rlplan::robust {

class FaultInjector {
 public:
  /// Process-wide injector; first call parses RLPLANNER_FAULTS /
  /// RLPLANNER_FAULT_SEED.
  static FaultInjector& instance();

  /// Any site configured with probability > 0? One relaxed load.
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Records a hit at `site` and returns whether the fault fires. Decision
  /// for the k-th hit is a pure function of (seed, site, k).
  bool should_inject(std::string_view site);

  /// Test / tool hook: replace configuration. Spec syntax as the env var;
  /// throws std::invalid_argument on malformed specs. Resets all counters.
  void configure(const std::string& spec, std::uint64_t seed);
  /// Removes all sites and resets counters (injection fully off).
  void clear();

  std::uint64_t hit_count(std::string_view site) const;
  std::uint64_t injected_count(std::string_view site) const;
  std::uint64_t seed() const;

 private:
  FaultInjector();
  struct Impl;
  Impl* impl_;  // leaked singleton state (survives static teardown)
  std::atomic<bool> enabled_{false};
};

/// Convenience: `FaultInjector::instance().should_inject(site)` with obs
/// accounting ("robust.fault.<site>" counters maintained by the injector).
/// The unconfigured fast path is one relaxed atomic load.
inline bool fault_point(std::string_view site) {
  FaultInjector& inj = FaultInjector::instance();
  if (!inj.enabled()) return false;
  return inj.should_inject(site);
}

}  // namespace rlplan::robust
