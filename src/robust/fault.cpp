#include "robust/fault.h"

#include <cstdlib>
#include <map>
#include <mutex>
#include <stdexcept>

#include "obs/metrics.h"
#include "util/rng.h"

namespace rlplan::robust {

namespace {

// FNV-1a folds the site name into the decision hash so distinct sites with
// the same hit index draw independent streams.
std::uint64_t hash_site(std::string_view site) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Pure decision function: does the `hit`-th arrival at `site` inject?
bool decide(std::uint64_t seed, std::string_view site, std::uint64_t hit,
            double probability) {
  SplitMix64 sm(seed ^ hash_site(site) ^ (hit * 0x9e3779b97f4a7c15ULL));
  const double u = static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
  return u < probability;
}

}  // namespace

struct FaultInjector::Impl {
  struct Site {
    double probability = 0.0;
    std::uint64_t hits = 0;
    std::uint64_t injected = 0;
  };
  mutable std::mutex mutex;
  std::map<std::string, Site, std::less<>> sites;
  std::uint64_t seed = 0;
};

FaultInjector::FaultInjector() : impl_(new Impl) {
  const char* spec = std::getenv("RLPLANNER_FAULTS");
  if (spec == nullptr || *spec == '\0') return;
  std::uint64_t seed = 0;
  if (const char* s = std::getenv("RLPLANNER_FAULT_SEED")) {
    seed = std::strtoull(s, nullptr, 10);
  }
  configure(spec, seed);
}

FaultInjector& FaultInjector::instance() {
  // Leaked: fault points may be hit during static teardown (atexit exports).
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::configure(const std::string& spec, std::uint64_t seed) {
  std::map<std::string, Impl::Site, std::less<>> sites;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;
    const std::size_t colon = entry.find(':');
    if (colon == std::string::npos || colon == 0) {
      throw std::invalid_argument("fault spec entry \"" + entry +
                                  "\" is not site:probability");
    }
    const std::string site = entry.substr(0, colon);
    double p = 0.0;
    try {
      std::size_t parsed = 0;
      p = std::stod(entry.substr(colon + 1), &parsed);
      if (parsed != entry.size() - colon - 1) throw std::invalid_argument("");
    } catch (const std::exception&) {
      throw std::invalid_argument("fault spec entry \"" + entry +
                                  "\" has a malformed probability");
    }
    if (p < 0.0 || p > 1.0) {
      throw std::invalid_argument("fault probability for \"" + site +
                                  "\" must be in [0, 1]");
    }
    if (p > 0.0) sites[site].probability = p;
  }
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->sites = std::move(sites);
  impl_->seed = seed;
  enabled_.store(!impl_->sites.empty(), std::memory_order_relaxed);
}

void FaultInjector::clear() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->sites.clear();
  impl_->seed = 0;
  enabled_.store(false, std::memory_order_relaxed);
}

bool FaultInjector::should_inject(std::string_view site) {
  std::uint64_t hit = 0;
  double probability = 0.0;
  std::uint64_t seed = 0;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    const auto it = impl_->sites.find(site);
    if (it == impl_->sites.end()) return false;
    hit = it->second.hits++;
    probability = it->second.probability;
    seed = impl_->seed;
    if (!decide(seed, site, hit, probability)) return false;
    ++it->second.injected;
  }
  if (site == "ckpt_write") {
    RLPLAN_COUNTER_INC("robust.fault.ckpt_write");
  } else if (site == "artifact_write") {
    RLPLAN_COUNTER_INC("robust.fault.artifact_write");
  } else if (site == "pool_dispatch") {
    RLPLAN_COUNTER_INC("robust.fault.pool_dispatch");
  } else if (site == "solver_diverge") {
    RLPLAN_COUNTER_INC("robust.fault.solver_diverge");
  } else if (site == "ppo_nan") {
    RLPLAN_COUNTER_INC("robust.fault.ppo_nan");
  } else {
    RLPLAN_COUNTER_INC("robust.fault.other");
  }
  return true;
}

std::uint64_t FaultInjector::hit_count(std::string_view site) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->sites.find(site);
  return it == impl_->sites.end() ? 0 : it->second.hits;
}

std::uint64_t FaultInjector::injected_count(std::string_view site) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->sites.find(site);
  return it == impl_->sites.end() ? 0 : it->second.injected;
}

std::uint64_t FaultInjector::seed() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->seed;
}

}  // namespace rlplan::robust
