#include "robust/robust.h"

#include <csignal>
#include <limits>
#include <thread>

#include "obs/metrics.h"

namespace rlplan::robust {

const char* to_string(ErrorClass cls) {
  switch (cls) {
    case ErrorClass::kTransientIo: return "transient_io";
    case ErrorClass::kCorruptArtifact: return "corrupt_artifact";
    case ErrorClass::kSolverDivergence: return "solver_divergence";
    case ErrorClass::kNumericalFault: return "numerical_fault";
    case ErrorClass::kCancelled: return "cancelled";
  }
  return "unknown";
}

const char* to_string(StopReason reason) {
  switch (reason) {
    case StopReason::kNone: return "none";
    case StopReason::kCancelled: return "cancelled";
    case StopReason::kDeadline: return "deadline";
  }
  return "unknown";
}

double Deadline::remaining_seconds() const {
  if (!set_) return std::numeric_limits<double>::infinity();
  const auto left = at_ - std::chrono::steady_clock::now();
  const double s = std::chrono::duration<double>(left).count();
  return s > 0.0 ? s : 0.0;
}

namespace {
// Signal handlers may only touch lock-free atomics, so the handler writes the
// token's raw flag through this pointer (published before the handler is
// installed and never changed afterwards). g_signal_token keeps the flag's
// storage alive for the rest of the process.
std::atomic<std::atomic<bool>*> g_signal_flag{nullptr};
std::atomic<int> g_signal_number{0};
CancelToken g_signal_token;

extern "C" void robust_signal_handler(int signum) {
  g_signal_number.store(signum, std::memory_order_relaxed);
  std::atomic<bool>* flag = g_signal_flag.load(std::memory_order_relaxed);
  if (flag == nullptr || flag->exchange(true, std::memory_order_relaxed)) {
    // Second signal (or no token): restore default disposition and re-raise,
    // so a run stuck past its cooperative poll can still be killed.
    std::signal(signum, SIG_DFL);
    std::raise(signum);
  }
}
}  // namespace

bool install_signal_cancel(const CancelToken& token) {
  if (!token.active()) return false;
  g_signal_token = token;
  g_signal_flag.store(token.raw_flag(), std::memory_order_release);
  std::signal(SIGINT, robust_signal_handler);
  std::signal(SIGTERM, robust_signal_handler);
  return true;
}

int last_cancel_signal() {
  return g_signal_number.load(std::memory_order_relaxed);
}

namespace detail {

void backoff_sleep(double seconds) {
  if (seconds > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }
}

void count_retry(const char* what) {
  (void)what;
  RLPLAN_COUNTER_INC("robust.retries");
}

}  // namespace detail

}  // namespace rlplan::robust
