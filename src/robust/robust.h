// Fault-tolerant execution primitives shared by every long-running pipeline.
//
// Three orthogonal pieces:
//
//  * A typed error taxonomy (RobustError + ErrorClass) so callers can react
//    by class — transient IO gets retried, corrupt artifacts get quarantined,
//    solver/numerical faults trigger a degradation path — instead of string-
//    matching `what()`.
//
//  * Cooperative stop signals: `Deadline` (wall-clock budget) and
//    `CancelToken` (shared flag, settable from another thread or a signal
//    handler), bundled as a cheap-to-copy `RunControl`. Pipelines poll
//    `stop_requested()` at coarse boundaries — SA round, RL epoch, collection
//    batch, characterization probe — and return their best-so-far result
//    tagged with a StopReason rather than running away or throwing mid-work.
//    A default-constructed RunControl is inert and costs one branch per poll,
//    so the layer is invisible when no budget is set.
//
//  * `retry_with_backoff`: bounded exponential-backoff retry for the
//    transient-IO error class (checkpoint/artifact writes).
//
// Determinism contract: stopping is only ever *earlier* termination of the
// same deterministic sequence — a cancelled run's partial result equals the
// prefix of the uncancelled run (tests/robust_test.cpp enforces this for SA).
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

namespace rlplan::robust {

// ------------------------------------------------------------- error taxonomy

enum class ErrorClass {
  kTransientIo,      ///< retryable: interrupted/failed write, busy file
  kCorruptArtifact,  ///< permanent: checkpoint/JSON failed validation
  kSolverDivergence, ///< numerical: CG failed to converge within budget
  kNumericalFault,   ///< numerical: NaN/Inf surfaced in an update
  kCancelled,        ///< cooperative stop honoured where best-so-far is
                     ///< impossible (e.g. mid-characterization)
};

const char* to_string(ErrorClass cls);

class RobustError : public std::runtime_error {
 public:
  RobustError(ErrorClass cls, const std::string& what)
      : std::runtime_error(what), cls_(cls) {}

  ErrorClass error_class() const { return cls_; }
  /// True for the error class retry_with_backoff() is allowed to retry.
  bool transient() const { return cls_ == ErrorClass::kTransientIo; }

 private:
  ErrorClass cls_;
};

class TransientIoError : public RobustError {
 public:
  explicit TransientIoError(const std::string& what)
      : RobustError(ErrorClass::kTransientIo, what) {}
};

class CorruptArtifactError : public RobustError {
 public:
  explicit CorruptArtifactError(const std::string& what)
      : RobustError(ErrorClass::kCorruptArtifact, what) {}
};

class SolverDivergenceError : public RobustError {
 public:
  explicit SolverDivergenceError(const std::string& what)
      : RobustError(ErrorClass::kSolverDivergence, what) {}
};

class NumericalFaultError : public RobustError {
 public:
  explicit NumericalFaultError(const std::string& what)
      : RobustError(ErrorClass::kNumericalFault, what) {}
};

class CancelledError : public RobustError {
 public:
  explicit CancelledError(const std::string& what)
      : RobustError(ErrorClass::kCancelled, what) {}
};

// -------------------------------------------------------- cooperative stopping

/// Why a pipeline stopped early. kNone == ran to natural completion; anything
/// else means the result is best-so-far and should carry a "degraded" tag.
enum class StopReason { kNone, kCancelled, kDeadline };

const char* to_string(StopReason reason);

/// Wall-clock budget. Default-constructed == unlimited (never expires).
class Deadline {
 public:
  Deadline() = default;

  /// Budget of `seconds` starting now. seconds <= 0 is already expired.
  static Deadline after_seconds(double seconds) {
    Deadline d;
    d.set_ = true;
    d.at_ = std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(seconds));
    return d;
  }

  bool unlimited() const { return !set_; }
  bool expired() const {
    return set_ && std::chrono::steady_clock::now() >= at_;
  }
  /// Seconds left; +inf when unlimited, 0 when expired.
  double remaining_seconds() const;

 private:
  std::chrono::steady_clock::time_point at_{};
  bool set_ = false;
};

/// Shared cooperative-cancellation flag. Value semantics: copies observe (and
/// set) the same flag. Default-constructed tokens are inert — never cancelled,
/// cancel() is a no-op — so APIs can take a CancelToken by value at zero cost.
class CancelToken {
 public:
  CancelToken() = default;

  /// A fresh, live token (uncancelled, shared by all copies).
  static CancelToken create() {
    CancelToken t;
    t.flag_ = std::make_shared<std::atomic<bool>>(false);
    return t;
  }

  bool active() const { return flag_ != nullptr; }
  bool cancelled() const {
    return flag_ && flag_->load(std::memory_order_relaxed);
  }
  /// Safe from any thread. (The underlying store is async-signal-safe, but
  /// signal handlers should go through install_signal_cancel() below, which
  /// uses a pre-registered raw atomic.)
  void cancel() const {
    if (flag_) flag_->store(true, std::memory_order_relaxed);
  }

  /// Raw flag pointer for async-signal contexts (install_signal_cancel keeps
  /// a token copy alive so the pointee never dies); nullptr when inert.
  std::atomic<bool>* raw_flag() const { return flag_.get(); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Bundle of stop signals threaded through pipeline entry points. Cheap to
/// copy; the default instance is inert (active() == false) and pipelines
/// short-circuit their polls on that, so an unset control costs one branch.
struct RunControl {
  Deadline deadline{};
  CancelToken cancel{};

  bool active() const { return !deadline.unlimited() || cancel.active(); }
  /// Cancellation wins over deadline when both fire (it is the explicit ask).
  StopReason stop_reason() const {
    if (cancel.cancelled()) return StopReason::kCancelled;
    if (deadline.expired()) return StopReason::kDeadline;
    return StopReason::kNone;
  }
  bool stop_requested() const {
    return active() && stop_reason() != StopReason::kNone;
  }
};

/// Routes SIGINT/SIGTERM to `token` (async-signal-safely: the handler writes
/// one pre-registered atomic). Returns false if the token is inert. A second
/// signal after cancellation restores default disposition, so a stuck process
/// can still be killed with a repeated Ctrl-C.
bool install_signal_cancel(const CancelToken& token);

/// Signal number that triggered cancellation via install_signal_cancel()
/// (0 if none yet).
int last_cancel_signal();

// ----------------------------------------------------------------------- retry

struct RetryOptions {
  int max_attempts = 3;              ///< total attempts, including the first
  double initial_backoff_s = 0.05;   ///< sleep before attempt 2
  double backoff_multiplier = 2.0;   ///< geometric growth per further attempt
  double max_backoff_s = 1.0;
};

namespace detail {
/// Sleep hook behind retry_with_backoff (no-op for non-positive durations).
void backoff_sleep(double seconds);
/// Obs accounting: one retry attempt consumed after an error named `what`.
void count_retry(const char* what);
}  // namespace detail

/// Runs `fn`, retrying on TransientIoError (only — every other exception
/// propagates immediately) with exponential backoff. Rethrows the last
/// transient error once attempts are exhausted. `what` labels obs counters
/// and is not interpreted.
template <typename Fn>
auto retry_with_backoff(Fn&& fn, const RetryOptions& options = {},
                        const char* what = "io") -> decltype(fn()) {
  double backoff = options.initial_backoff_s;
  for (int attempt = 1;; ++attempt) {
    try {
      return fn();
    } catch (const RobustError& e) {
      if (!e.transient() || attempt >= options.max_attempts) throw;
      detail::count_retry(what);
      detail::backoff_sleep(backoff);
      backoff = std::min(backoff * options.backoff_multiplier,
                         options.max_backoff_s);
    }
  }
}

}  // namespace rlplan::robust
