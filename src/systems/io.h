// Text serialization of chiplet systems and floorplans.
//
// A minimal line-oriented format so problem instances and results can move
// between tools (and so the CLI example can consume user systems):
//
//   # comment
//   system <name>
//   interposer <width_mm> <height_mm>
//   chiplet <name> <width_mm> <height_mm> <power_w>
//   net <chiplet_name> <chiplet_name> <wires>
//
// Floorplan files reference chiplets of an existing system by name:
//
//   floorplan <system_name>
//   place <chiplet_name> <x_mm> <y_mm> [rotated]
#pragma once

#include <iosfwd>
#include <string>

#include "core/chiplet.h"
#include "core/floorplan.h"

namespace rlplan::systems {

/// Parses a system description. Throws std::runtime_error with a
/// line-numbered message on malformed input; the returned system is
/// validate()d.
ChipletSystem read_system(std::istream& is);
ChipletSystem read_system_file(const std::string& path);

void write_system(const ChipletSystem& system, std::ostream& os);
void write_system_file(const ChipletSystem& system, const std::string& path);

/// Parses a floorplan for `system` (chiplets referenced by name; all
/// placements optional — absent chiplets stay unplaced).
Floorplan read_floorplan(std::istream& is, const ChipletSystem& system);
Floorplan read_floorplan_file(const std::string& path,
                              const ChipletSystem& system);

void write_floorplan(const Floorplan& floorplan, std::ostream& os);
void write_floorplan_file(const Floorplan& floorplan,
                          const std::string& path);

}  // namespace rlplan::systems
