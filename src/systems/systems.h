// The three open-source benchmark systems of Table I.
//
// The paper references these systems by citation; exact die dimensions, power
// budgets, and link widths are not published in machine-readable form, so the
// definitions below encode the documented *topology* (which die talks to
// which, relative die sizes, power classes) at magnitudes that land wirelength
// and temperature in the paper's reported regime. See DESIGN.md section 1 for
// the substitution rationale.
#pragma once

#include <vector>

#include "core/chiplet.h"

namespace rlplan::systems {

/// Multi-GPU module (TAP-2.5D [Ma et al., DATE'21], after NVIDIA's MCM-GPU):
/// 4 GPU compute dies around a central switch, each GPU paired with an HBM
/// stack. ~347 W on a 52x52 mm interposer.
ChipletSystem make_multi_gpu_system();

/// Disintegrated CPU-DRAM server node (Kannan et al., MICRO'15): 6 core
/// cluster dies + 4 DRAM stacks + an I/O hub, all-to-all core-memory traffic.
/// ~322 W on a 48x48 mm interposer.
ChipletSystem make_cpu_dram_system();

/// Huawei Ascend 910 AI training module: one large compute die (Virtuvian),
/// an I/O die (Nimbus), 4 HBM stacks, 2 thermally/mechanically dummy dies.
/// Powers scaled to the paper's ~77 C operating point on a 45x32 mm
/// interposer.
ChipletSystem make_ascend910_system();

/// All three Table I benchmarks, in table order.
std::vector<ChipletSystem> make_benchmark_systems();

}  // namespace rlplan::systems
