#include "systems/synthetic.h"

#include <algorithm>
#include <stdexcept>

namespace rlplan::systems {

SyntheticSystemGenerator::SyntheticSystemGenerator(SyntheticConfig config)
    : config_(config) {
  if (config_.min_chiplets < 2 ||
      config_.max_chiplets < config_.min_chiplets) {
    throw std::invalid_argument("SyntheticConfig: bad chiplet count range");
  }
  if (config_.min_dim_mm <= 0.0 ||
      config_.max_dim_mm < config_.min_dim_mm) {
    throw std::invalid_argument("SyntheticConfig: bad dimension range");
  }
}

ChipletSystem SyntheticSystemGenerator::generate(
    std::uint64_t seed, const std::string& name) const {
  Rng rng(seed ^ 0x53594e5448ULL);  // namespace the stream: "SYNTH"
  const auto count = static_cast<std::size_t>(rng.uniform_int(
      static_cast<std::int64_t>(config_.min_chiplets),
      static_cast<std::int64_t>(config_.max_chiplets)));

  const double interposer_area =
      config_.interposer_w_mm * config_.interposer_h_mm;
  std::vector<Chiplet> chiplets;
  chiplets.reserve(count);
  double used_area = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    // Redraw dies that would push utilization past the cap so every
    // generated instance is comfortably placeable.
    for (int attempt = 0; attempt < 64; ++attempt) {
      const double w = rng.uniform(config_.min_dim_mm, config_.max_dim_mm);
      const double h = rng.uniform(config_.min_dim_mm, config_.max_dim_mm);
      if ((used_area + w * h) / interposer_area > config_.max_utilization &&
          attempt < 63) {
        continue;
      }
      const double p = rng.uniform(config_.min_power_w, config_.max_power_w);
      chiplets.push_back(
          {"c" + std::to_string(i), w, h, p});
      used_area += w * h;
      break;
    }
  }

  // Connectivity: random spanning tree first, then extra edges.
  std::vector<InterChipletNet> nets;
  for (std::size_t i = 1; i < chiplets.size(); ++i) {
    const auto j = static_cast<std::size_t>(rng.uniform_int(std::uint64_t{i}));
    const int wires = static_cast<int>(rng.uniform_int(
        static_cast<std::int64_t>(config_.min_wires),
        static_cast<std::int64_t>(config_.max_wires)));
    nets.push_back({j, i, wires});
  }
  for (std::size_t i = 0; i < chiplets.size(); ++i) {
    for (std::size_t j = i + 1; j < chiplets.size(); ++j) {
      if (!rng.bernoulli(config_.extra_net_prob)) continue;
      const int wires = static_cast<int>(rng.uniform_int(
          static_cast<std::int64_t>(config_.min_wires),
          static_cast<std::int64_t>(config_.max_wires)));
      nets.push_back({i, j, wires});
    }
  }

  ChipletSystem system(
      name.empty() ? "synthetic-" + std::to_string(seed) : name,
      config_.interposer_w_mm, config_.interposer_h_mm, std::move(chiplets),
      std::move(nets));
  system.validate();
  return system;
}

Floorplan random_legal_floorplan(const ChipletSystem& system, Rng& rng,
                                 int max_tries, double spacing_mm) {
  Floorplan fp(system);
  const double iw = system.interposer_width();
  const double ih = system.interposer_height();
  for (const std::size_t i : system.placement_order_by_area()) {
    const Chiplet& c = system.chiplet(i);
    bool placed = false;
    for (int t = 0; t < max_tries && !placed; ++t) {
      const Point pos{rng.uniform(0.0, std::max(iw - c.width, 0.0)),
                      rng.uniform(0.0, std::max(ih - c.height, 0.0))};
      if (fp.can_place(i, pos, false, spacing_mm)) {
        fp.place(i, pos, false);
        placed = true;
      }
    }
    if (!placed) {
      // Deterministic fallback: fine scan, left-to-right, bottom-to-top.
      constexpr std::size_t kScan = 96;
      for (std::size_t a = 0; a < kScan * kScan && !placed; ++a) {
        const Point pos{
            iw * static_cast<double>(a % kScan) / kScan,
            ih * static_cast<double>(a / kScan) / kScan};
        if (fp.can_place(i, pos, false, spacing_mm)) {
          fp.place(i, pos, false);
          placed = true;
        }
      }
    }
    if (!placed) {
      throw std::runtime_error("random_legal_floorplan: cannot place " +
                               c.name);
    }
  }
  return fp;
}

std::vector<ChipletSystem> make_table3_cases() {
  SyntheticConfig config;
  config.interposer_w_mm = 40.0;
  config.interposer_h_mm = 40.0;
  config.min_chiplets = 4;
  config.max_chiplets = 7;
  config.min_dim_mm = 5.0;
  config.max_dim_mm = 12.0;
  // Power range keeps the 40x40 mm cases in the realistic 75-95 degC window
  // under the default stack (the paper's Table III regime).
  config.min_power_w = 5.0;
  config.max_power_w = 22.0;
  const SyntheticSystemGenerator gen(config);
  std::vector<ChipletSystem> cases;
  for (int i = 1; i <= 5; ++i) {
    cases.push_back(gen.generate(100 + static_cast<std::uint64_t>(i),
                                 "Case" + std::to_string(i)));
  }
  return cases;
}

}  // namespace rlplan::systems
