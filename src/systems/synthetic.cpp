#include "systems/synthetic.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rlplan::systems {

SyntheticSystemGenerator::SyntheticSystemGenerator(SyntheticConfig config)
    : config_(config) {
  if (config_.min_chiplets < 2 ||
      config_.max_chiplets < config_.min_chiplets) {
    throw std::invalid_argument("SyntheticConfig: bad chiplet count range");
  }
  if (config_.min_dim_mm <= 0.0 ||
      config_.max_dim_mm < config_.min_dim_mm) {
    throw std::invalid_argument("SyntheticConfig: bad dimension range");
  }
}

ChipletSystem SyntheticSystemGenerator::generate(
    std::uint64_t seed, const std::string& name) const {
  Rng rng(seed ^ 0x53594e5448ULL);  // namespace the stream: "SYNTH"
  const auto count = static_cast<std::size_t>(rng.uniform_int(
      static_cast<std::int64_t>(config_.min_chiplets),
      static_cast<std::int64_t>(config_.max_chiplets)));

  const double interposer_area =
      config_.interposer_w_mm * config_.interposer_h_mm;
  std::vector<Chiplet> chiplets;
  chiplets.reserve(count);
  double used_area = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    // Redraw dies that would push utilization past the cap so every
    // generated instance is comfortably placeable.
    for (int attempt = 0; attempt < 64; ++attempt) {
      const double w = rng.uniform(config_.min_dim_mm, config_.max_dim_mm);
      const double h = rng.uniform(config_.min_dim_mm, config_.max_dim_mm);
      if ((used_area + w * h) / interposer_area > config_.max_utilization &&
          attempt < 63) {
        continue;
      }
      const double p = rng.uniform(config_.min_power_w, config_.max_power_w);
      chiplets.push_back(
          {"c" + std::to_string(i), w, h, p});
      used_area += w * h;
      break;
    }
  }

  // Connectivity: random spanning tree first, then extra edges.
  std::vector<InterChipletNet> nets;
  for (std::size_t i = 1; i < chiplets.size(); ++i) {
    const auto j = static_cast<std::size_t>(rng.uniform_int(std::uint64_t{i}));
    const int wires = static_cast<int>(rng.uniform_int(
        static_cast<std::int64_t>(config_.min_wires),
        static_cast<std::int64_t>(config_.max_wires)));
    nets.push_back({j, i, wires});
  }
  for (std::size_t i = 0; i < chiplets.size(); ++i) {
    for (std::size_t j = i + 1; j < chiplets.size(); ++j) {
      if (!rng.bernoulli(config_.extra_net_prob)) continue;
      const int wires = static_cast<int>(rng.uniform_int(
          static_cast<std::int64_t>(config_.min_wires),
          static_cast<std::int64_t>(config_.max_wires)));
      nets.push_back({i, j, wires});
    }
  }

  ChipletSystem system(
      name.empty() ? "synthetic-" + std::to_string(seed) : name,
      config_.interposer_w_mm, config_.interposer_h_mm, std::move(chiplets),
      std::move(nets));
  system.validate();
  return system;
}

Floorplan random_legal_floorplan(const ChipletSystem& system, Rng& rng,
                                 int max_tries, double spacing_mm) {
  Floorplan fp(system);
  const double iw = system.interposer_width();
  const double ih = system.interposer_height();
  for (const std::size_t i : system.placement_order_by_area()) {
    const Chiplet& c = system.chiplet(i);
    bool placed = false;
    for (int t = 0; t < max_tries && !placed; ++t) {
      const Point pos{rng.uniform(0.0, std::max(iw - c.width, 0.0)),
                      rng.uniform(0.0, std::max(ih - c.height, 0.0))};
      if (fp.can_place(i, pos, false, spacing_mm)) {
        fp.place(i, pos, false);
        placed = true;
      }
    }
    if (!placed) {
      // Deterministic fallback: fine scan, left-to-right, bottom-to-top.
      constexpr std::size_t kScan = 96;
      for (std::size_t a = 0; a < kScan * kScan && !placed; ++a) {
        const Point pos{
            iw * static_cast<double>(a % kScan) / kScan,
            ih * static_cast<double>(a / kScan) / kScan};
        if (fp.can_place(i, pos, false, spacing_mm)) {
          fp.place(i, pos, false);
          placed = true;
        }
      }
    }
    if (!placed) {
      throw std::runtime_error("random_legal_floorplan: cannot place " +
                               c.name);
    }
  }
  return fp;
}

const char* to_string(NetTopology topology) {
  switch (topology) {
    case NetTopology::kRandom: return "random";
    case NetTopology::kStar: return "star";
    case NetTopology::kChain: return "chain";
    case NetTopology::kRing: return "ring";
    case NetTopology::kMesh: return "mesh";
    case NetTopology::kBipartite: return "bipartite";
  }
  return "?";
}

NetTopology net_topology_from_string(const std::string& name) {
  for (const NetTopology t :
       {NetTopology::kRandom, NetTopology::kStar, NetTopology::kChain,
        NetTopology::kRing, NetTopology::kMesh, NetTopology::kBipartite}) {
    if (name == to_string(t)) return t;
  }
  throw std::invalid_argument("unknown net topology \"" + name + "\"");
}

void validate_family_config(const FamilyConfig& c) {
  const auto fail = [](const std::string& what) {
    throw std::invalid_argument("FamilyConfig: " + what);
  };
  if (c.chiplets < 2) fail("need at least 2 chiplets");
  if (c.interposer_w_mm <= 0.0 || c.interposer_h_mm <= 0.0) {
    fail("non-positive interposer");
  }
  if (c.min_dim_mm <= 0.0 || c.max_dim_mm < c.min_dim_mm) {
    fail("bad die dimension range");
  }
  if (c.max_aspect < 1.0) fail("max_aspect must be >= 1");
  if (c.min_power_w < 0.0 || c.max_power_w < c.min_power_w) {
    fail("bad power range");
  }
  if (c.power_skew < 0.0) fail("power_skew must be >= 0");
  if (c.min_wires < 1 || c.max_wires < c.min_wires) fail("bad wire range");
  if (c.extra_net_prob < 0.0 || c.extra_net_prob > 1.0) {
    fail("extra_net_prob outside [0, 1]");
  }
  if (2 * c.hotspot_pairs > c.chiplets) {
    fail("hotspot pairs exceed the die count");
  }
  if (c.hotspot_power_w < 0.0) fail("negative hotspot power");
  if (c.max_utilization <= 0.0 || c.max_utilization > 1.0) {
    fail("max_utilization outside (0, 1]");
  }
  // The widest legal die must fit the interposer, or generation can never
  // terminate legally.
  const double longest = c.max_dim_mm * std::sqrt(c.max_aspect);
  if (longest > c.interposer_w_mm || longest > c.interposer_h_mm) {
    fail("max_dim_mm at max_aspect exceeds the interposer");
  }
}

namespace {

std::vector<InterChipletNet> family_nets(const FamilyConfig& c, Rng& rng) {
  const std::size_t n = c.chiplets;
  const auto draw_wires = [&] {
    return static_cast<int>(rng.uniform_int(
        static_cast<std::int64_t>(c.min_wires),
        static_cast<std::int64_t>(c.max_wires)));
  };
  std::vector<InterChipletNet> nets;
  switch (c.topology) {
    case NetTopology::kRandom:
      for (std::size_t i = 1; i < n; ++i) {
        const auto j =
            static_cast<std::size_t>(rng.uniform_int(std::uint64_t{i}));
        nets.push_back({j, i, draw_wires()});
      }
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
          if (rng.bernoulli(c.extra_net_prob)) {
            nets.push_back({i, j, draw_wires()});
          }
        }
      }
      break;
    case NetTopology::kStar:
      for (std::size_t i = 1; i < n; ++i) nets.push_back({0, i, draw_wires()});
      break;
    case NetTopology::kChain:
      for (std::size_t i = 1; i < n; ++i) {
        nets.push_back({i - 1, i, draw_wires()});
      }
      break;
    case NetTopology::kRing:
      for (std::size_t i = 1; i < n; ++i) {
        nets.push_back({i - 1, i, draw_wires()});
      }
      if (n > 2) nets.push_back({0, n - 1, draw_wires()});
      break;
    case NetTopology::kMesh: {
      // Near-square logical grid; dies beyond rows*cols never exist because
      // cols is the ceiling, so every index < n maps to a unique cell.
      const auto rows = static_cast<std::size_t>(
          std::max(1.0, std::floor(std::sqrt(static_cast<double>(n)))));
      const std::size_t cols = (n + rows - 1) / rows;
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t r = i / cols;
        const std::size_t col = i % cols;
        if (col + 1 < cols && i + 1 < n) nets.push_back({i, i + 1, draw_wires()});
        if (r + 1 < rows && i + cols < n) {
          nets.push_back({i, i + cols, draw_wires()});
        }
      }
      break;
    }
    case NetTopology::kBipartite: {
      // Halves A = [0, split), B = [split, n). Connectivity guarantee first:
      // pairing B die k with A die k % split touches every die on both sides
      // (split <= n - split always). Then random cross edges.
      const std::size_t split = n / 2;
      const std::size_t nb = n - split;
      for (std::size_t k = 0; k < nb; ++k) {
        nets.push_back({k % split, split + k, draw_wires()});
      }
      for (std::size_t a = 0; a < split; ++a) {
        for (std::size_t b = split; b < n; ++b) {
          if (rng.bernoulli(c.extra_net_prob)) {
            nets.push_back({a, b, draw_wires()});
          }
        }
      }
      break;
    }
  }
  return nets;
}

}  // namespace

ChipletSystem generate_family(const FamilyConfig& config, std::uint64_t seed,
                              const std::string& name) {
  validate_family_config(config);
  Rng rng(seed ^ 0x46414d494cULL);  // namespace the stream: "FAMIL"
  const std::size_t n = config.chiplets;
  const double interposer_area =
      config.interposer_w_mm * config.interposer_h_mm;

  std::vector<Chiplet> chiplets;
  chiplets.reserve(n);
  double used_area = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      const double scale = rng.uniform(config.min_dim_mm, config.max_dim_mm);
      const double log_a = rng.uniform(-std::log(config.max_aspect),
                                       std::log(config.max_aspect));
      const double sqrt_a = std::exp(0.5 * log_a);
      double w = scale * sqrt_a;
      double h = scale / sqrt_a;
      // A sliver draw can exceed the interposer even though the config cap
      // admits it; clamp conservatively rather than rejecting (keeps the
      // draw count seed-stable).
      w = std::min(w, config.interposer_w_mm);
      h = std::min(h, config.interposer_h_mm);
      if ((used_area + w * h) / interposer_area > config.max_utilization &&
          attempt < 63) {
        continue;
      }
      const double u = rng.uniform();
      const double power =
          config.min_power_w +
          (config.max_power_w - config.min_power_w) *
              std::pow(u, 1.0 + config.power_skew);
      chiplets.push_back({"c" + std::to_string(i), w, h, power});
      used_area += w * h;
      break;
    }
  }

  std::vector<InterChipletNet> nets = family_nets(config, rng);

  // Hotspot-adjacent pairs: pin (0,1), (2,3), ... to the hotspot power and
  // wire each pair at full width.
  const double hot_w = config.hotspot_power_w > 0.0 ? config.hotspot_power_w
                                                    : config.max_power_w;
  for (std::size_t p = 0; p < config.hotspot_pairs; ++p) {
    const std::size_t a = 2 * p;
    const std::size_t b = 2 * p + 1;
    chiplets[a].power = hot_w;
    chiplets[b].power = hot_w;
    nets.push_back({a, b, config.max_wires});
  }

  std::string system_name = name;
  if (system_name.empty()) {
    system_name = std::string("family-") + to_string(config.topology) + "-" +
                  std::to_string(n) + "-" + std::to_string(seed);
  }
  ChipletSystem system(system_name, config.interposer_w_mm,
                       config.interposer_h_mm, std::move(chiplets),
                       std::move(nets));
  system.validate();
  return system;
}

std::vector<ChipletSystem> make_table3_cases() {
  SyntheticConfig config;
  config.interposer_w_mm = 40.0;
  config.interposer_h_mm = 40.0;
  config.min_chiplets = 4;
  config.max_chiplets = 7;
  config.min_dim_mm = 5.0;
  config.max_dim_mm = 12.0;
  // Power range keeps the 40x40 mm cases in the realistic 75-95 degC window
  // under the default stack (the paper's Table III regime).
  config.min_power_w = 5.0;
  config.max_power_w = 22.0;
  const SyntheticSystemGenerator gen(config);
  std::vector<ChipletSystem> cases;
  for (int i = 1; i <= 5; ++i) {
    cases.push_back(gen.generate(100 + static_cast<std::uint64_t>(i),
                                 "Case" + std::to_string(i)));
  }
  return cases;
}

}  // namespace rlplan::systems
