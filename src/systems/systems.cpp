#include "systems/systems.h"

namespace rlplan::systems {

ChipletSystem make_multi_gpu_system() {
  std::vector<Chiplet> chiplets = {
      {"gpu0", 12.0, 12.0, 75.0},   // 0
      {"gpu1", 12.0, 12.0, 75.0},   // 1
      {"gpu2", 12.0, 12.0, 75.0},   // 2
      {"gpu3", 12.0, 12.0, 75.0},   // 3
      {"switch", 8.0, 8.0, 15.0},   // 4
      {"hbm0", 7.0, 11.0, 8.0},     // 5
      {"hbm1", 7.0, 11.0, 8.0},     // 6
      {"hbm2", 7.0, 11.0, 8.0},     // 7
      {"hbm3", 7.0, 11.0, 8.0},     // 8
  };
  std::vector<InterChipletNet> nets = {
      // GPU <-> central switch crossbar links.
      {0, 4, 768},
      {1, 4, 768},
      {2, 4, 768},
      {3, 4, 768},
      // GPU <-> paired HBM stack (wide DRAM interfaces).
      {0, 5, 1024},
      {1, 6, 1024},
      {2, 7, 1024},
      {3, 8, 1024},
      // GPU ring for peer-to-peer traffic.
      {0, 1, 256},
      {1, 2, 256},
      {2, 3, 256},
      {3, 0, 256},
  };
  ChipletSystem system("multi-gpu", 52.0, 52.0, std::move(chiplets),
                       std::move(nets));
  system.validate();
  return system;
}

ChipletSystem make_cpu_dram_system() {
  std::vector<Chiplet> chiplets = {
      {"cpu0", 10.0, 10.0, 40.0},  // 0
      {"cpu1", 10.0, 10.0, 40.0},  // 1
      {"cpu2", 10.0, 10.0, 40.0},  // 2
      {"cpu3", 10.0, 10.0, 40.0},  // 3
      {"cpu4", 10.0, 10.0, 40.0},  // 4
      {"cpu5", 10.0, 10.0, 40.0},  // 5
      {"dram0", 8.0, 11.0, 7.0},   // 6
      {"dram1", 8.0, 11.0, 7.0},   // 7
      {"dram2", 8.0, 11.0, 7.0},   // 8
      {"dram3", 8.0, 11.0, 7.0},   // 9
      {"iohub", 6.0, 6.0, 14.0},   // 10
  };
  std::vector<InterChipletNet> nets;
  // Disintegration keeps the all-to-all core-to-memory fabric: every core
  // cluster reaches every DRAM stack through the interposer.
  for (std::size_t cpu = 0; cpu < 6; ++cpu) {
    for (std::size_t dram = 6; dram < 10; ++dram) {
      nets.push_back({cpu, dram, 256});
    }
  }
  // Core-to-core coherence ring.
  for (std::size_t cpu = 0; cpu < 6; ++cpu) {
    nets.push_back({cpu, (cpu + 1) % 6, 128});
  }
  // Every core talks to the I/O hub.
  for (std::size_t cpu = 0; cpu < 6; ++cpu) {
    nets.push_back({cpu, 10, 64});
  }
  ChipletSystem system("cpu-dram", 48.0, 48.0, std::move(chiplets),
                       std::move(nets));
  system.validate();
  return system;
}

ChipletSystem make_ascend910_system() {
  std::vector<Chiplet> chiplets = {
      {"virtuvian", 26.0, 18.0, 96.0},  // 0: AI compute die
      {"nimbus", 14.0, 12.0, 12.0},     // 1: I/O + network die
      {"hbm0", 11.0, 8.0, 5.5},         // 2
      {"hbm1", 11.0, 8.0, 5.5},         // 3
      {"hbm2", 11.0, 8.0, 5.5},         // 4
      {"hbm3", 11.0, 8.0, 5.5},         // 5
      {"dummy0", 6.0, 8.0, 0.0},        // 6: mechanical filler die
      {"dummy1", 6.0, 8.0, 0.0},        // 7
  };
  std::vector<InterChipletNet> nets = {
      // Compute die to each HBM stack (wide interfaces).
      {0, 2, 1024},
      {0, 3, 1024},
      {0, 4, 1024},
      {0, 5, 1024},
      // Compute die to the I/O die.
      {0, 1, 384},
  };
  ChipletSystem system("ascend910", 45.0, 32.0, std::move(chiplets),
                       std::move(nets));
  system.validate();
  return system;
}

std::vector<ChipletSystem> make_benchmark_systems() {
  std::vector<ChipletSystem> systems;
  systems.push_back(make_multi_gpu_system());
  systems.push_back(make_cpu_dram_system());
  systems.push_back(make_ascend910_system());
  return systems;
}

}  // namespace rlplan::systems
