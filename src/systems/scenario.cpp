#include "systems/scenario.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <filesystem>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "systems/systems.h"

namespace rlplan::systems {

namespace {

[[noreturn]] void fail(const std::string& what) { throw ScenarioError(what); }

bool valid_name(const std::string& name) {
  if (name.empty()) return false;
  return std::all_of(name.begin(), name.end(), [](unsigned char c) {
    return std::isalnum(c) || c == '_' || c == '.' || c == '-';
  });
}

/// {"key": [a, b]} -> (a, b); both finite numbers required.
std::pair<double, double> parse_pair(const util::JsonValue& obj,
                                     const std::string& key,
                                     const std::string& where) {
  const util::JsonValue& v = obj.at(key);
  if (!v.is_array() || v.as_array().size() != 2) {
    fail(where + "." + key + " must be a 2-element array");
  }
  return {v.as_array()[0].as_number(), v.as_array()[1].as_number()};
}

/// Exactly-representable doubles stop at 2^53; also the ceiling for seeds.
constexpr long kMaxCount = 1L << 53;

/// Integer member in [lo, hi]; fractional, out-of-range, and wrapping values
/// are schema errors (negative counts must not sneak through an unsigned
/// cast later).
long checked_count(const util::JsonValue& obj, const std::string& key,
                   long fallback, const std::string& where, long lo = 0,
                   long hi = kMaxCount) {
  const double v = obj.number_or(key, static_cast<double>(fallback));
  // Range-check in the double domain BEFORE casting: double -> long on an
  // out-of-range value (e.g. "seed": 1e300) is undefined behaviour and
  // aborts the UBSan CI leg instead of raising the schema error. The
  // negated comparison also rejects NaN.
  if (!(v >= static_cast<double>(lo) && v <= static_cast<double>(hi))) {
    fail(where + "." + key + " must be in [" + std::to_string(lo) + ", " +
         std::to_string(hi) + "]");
  }
  const long n = static_cast<long>(v);
  if (static_cast<double>(n) != v) {
    fail(where + "." + key + " must be an integer");
  }
  return n;
}

/// Strict schema: members outside `allowed` are errors, so a misspelled
/// field cannot silently fall back to its default.
void reject_unknown(const util::JsonValue& obj,
                    std::initializer_list<const char*> allowed,
                    const std::string& where) {
  for (const auto& [key, value] : obj.as_object()) {
    const bool known =
        std::any_of(allowed.begin(), allowed.end(),
                    [&](const char* a) { return key == a; });
    if (!known) fail(where + ": unknown field \"" + key + "\"");
  }
}

FamilyConfig family_from_json(const util::JsonValue& j) {
  const std::string where = "system.family";
  reject_unknown(j,
                 {"topology", "chiplets", "seed", "interposer_mm", "die_mm",
                  "power_w", "max_aspect", "power_skew", "wires",
                  "extra_net_prob", "hotspot_pairs", "hotspot_power_w",
                  "max_utilization"},
                 where);
  FamilyConfig c;
  try {
    c.topology = net_topology_from_string(j.string_or("topology", "random"));
  } catch (const std::invalid_argument& e) {
    fail(where + ": " + e.what());
  }
  c.chiplets = static_cast<std::size_t>(checked_count(
      j, "chiplets", static_cast<long>(c.chiplets), where, 0, 100000));
  if (j.has("interposer_mm")) {
    std::tie(c.interposer_w_mm, c.interposer_h_mm) =
        parse_pair(j, "interposer_mm", where);
  }
  if (j.has("die_mm")) {
    std::tie(c.min_dim_mm, c.max_dim_mm) = parse_pair(j, "die_mm", where);
  }
  if (j.has("power_w")) {
    std::tie(c.min_power_w, c.max_power_w) = parse_pair(j, "power_w", where);
  }
  c.max_aspect = j.number_or("max_aspect", c.max_aspect);
  c.power_skew = j.number_or("power_skew", c.power_skew);
  if (j.has("wires")) {
    const auto [lo, hi] = parse_pair(j, "wires", where);
    if (lo != std::floor(lo) || hi != std::floor(hi)) {
      fail(where + ".wires bounds must be integers");
    }
    c.min_wires = static_cast<int>(lo);
    c.max_wires = static_cast<int>(hi);
  }
  c.extra_net_prob = j.number_or("extra_net_prob", c.extra_net_prob);
  c.hotspot_pairs = static_cast<std::size_t>(checked_count(
      j, "hotspot_pairs", static_cast<long>(c.hotspot_pairs), where, 0,
      100000));
  c.hotspot_power_w = j.number_or("hotspot_power_w", c.hotspot_power_w);
  c.max_utilization = j.number_or("max_utilization", c.max_utilization);
  return c;
}

util::JsonValue family_to_json(const FamilyConfig& c) {
  util::JsonValue j = util::JsonValue::make_object();
  j.set("topology", to_string(c.topology));
  j.set("chiplets", c.chiplets);
  j.set("interposer_mm",
        util::JsonValue::Array{c.interposer_w_mm, c.interposer_h_mm});
  j.set("die_mm", util::JsonValue::Array{c.min_dim_mm, c.max_dim_mm});
  j.set("power_w", util::JsonValue::Array{c.min_power_w, c.max_power_w});
  j.set("max_aspect", c.max_aspect);
  j.set("power_skew", c.power_skew);
  j.set("wires", util::JsonValue::Array{c.min_wires, c.max_wires});
  j.set("extra_net_prob", c.extra_net_prob);
  j.set("hotspot_pairs", c.hotspot_pairs);
  j.set("hotspot_power_w", c.hotspot_power_w);
  j.set("max_utilization", c.max_utilization);
  return j;
}

ChipletSystem inline_system_from_json(const util::JsonValue& sys,
                                      const std::string& scenario_name) {
  reject_unknown(sys, {"name", "interposer_mm", "dies", "nets"}, "system");
  if (!sys.has("interposer_mm")) {
    fail("system.interposer_mm is required for inline systems");
  }
  const auto [iw, ih] = parse_pair(sys, "interposer_mm", "system");

  // Size caps before any per-entry work: a corrupt or hostile scenario file
  // must fail with a clear message, not an OOM or a multi-hour build. Both
  // limits sit far above anything the paper's benchmarks (or the synthetic
  // families) produce.
  constexpr std::size_t kMaxDies = 4096;
  constexpr std::size_t kMaxNets = 65536;
  if (sys.at("dies").as_array().size() > kMaxDies) {
    fail("system.dies: " + std::to_string(sys.at("dies").as_array().size()) +
         " entries exceeds the cap of " + std::to_string(kMaxDies));
  }
  if (const util::JsonValue* jn = sys.find("nets")) {
    if (jn->as_array().size() > kMaxNets) {
      fail("system.nets: " + std::to_string(jn->as_array().size()) +
           " entries exceeds the cap of " + std::to_string(kMaxNets));
    }
  }

  std::vector<Chiplet> dies;
  std::unordered_map<std::string, std::size_t> index_of;
  for (const util::JsonValue& d : sys.at("dies").as_array()) {
    if (!d.is_object()) fail("system.dies entries must be objects");
    reject_unknown(d, {"name", "mm", "power_w"}, "system.dies");
    Chiplet c;
    c.name = d.at("name").as_string();
    std::tie(c.width, c.height) = parse_pair(d, "mm", "system.dies");
    c.power = d.at("power_w").as_number();
    if (c.width <= 0.0 || c.height <= 0.0) {
      fail("system.dies." + c.name + ": die dimensions must be positive");
    }
    if (c.width > iw || c.height > ih) {
      fail("system.dies." + c.name + ": die exceeds the interposer");
    }
    if (c.power < 0.0) {
      fail("system.dies." + c.name + ": negative power");
    }
    if (!index_of.emplace(c.name, dies.size()).second) {
      fail("system.dies: duplicate die name \"" + c.name + "\"");
    }
    dies.push_back(std::move(c));
  }
  if (dies.empty()) fail("system.dies must not be empty");

  std::vector<InterChipletNet> nets;
  if (const util::JsonValue* jnets = sys.find("nets")) {
    for (const util::JsonValue& n : jnets->as_array()) {
      if (!n.is_array() || n.as_array().size() != 3) {
        fail("system.nets entries must be [die_a, die_b, wires]");
      }
      const auto& items = n.as_array();
      InterChipletNet net;
      for (int e = 0; e < 2; ++e) {
        const std::string& die = items[static_cast<std::size_t>(e)].as_string();
        const auto it = index_of.find(die);
        if (it == index_of.end()) {
          fail("system.nets references unknown die \"" + die + "\"");
        }
        (e == 0 ? net.a : net.b) = it->second;
      }
      const double wires = items[2].as_number();
      if (wires != std::floor(wires)) {
        fail("system.nets: wires must be an integer");
      }
      net.wires = static_cast<int>(wires);
      if (net.wires <= 0) fail("system.nets: wires must be positive");
      nets.push_back(net);
    }
  }

  ChipletSystem system(sys.string_or("name", scenario_name), iw, ih,
                       std::move(dies), std::move(nets));
  try {
    system.validate();
  } catch (const std::invalid_argument& e) {
    fail(std::string("system: ") + e.what());
  }
  return system;
}

util::JsonValue inline_system_to_json(const ChipletSystem& s) {
  util::JsonValue j = util::JsonValue::make_object();
  j.set("name", s.name());
  j.set("interposer_mm",
        util::JsonValue::Array{s.interposer_width(), s.interposer_height()});
  util::JsonValue dies = util::JsonValue::make_array();
  for (const Chiplet& c : s.chiplets()) {
    util::JsonValue d = util::JsonValue::make_object();
    d.set("name", c.name);
    d.set("mm", util::JsonValue::Array{c.width, c.height});
    d.set("power_w", c.power);
    dies.push_back(std::move(d));
  }
  j.set("dies", std::move(dies));
  util::JsonValue nets = util::JsonValue::make_array();
  for (const InterChipletNet& n : s.nets()) {
    nets.push_back(util::JsonValue::Array{s.chiplet(n.a).name,
                                          s.chiplet(n.b).name, n.wires});
  }
  j.set("nets", std::move(nets));
  return j;
}

ScenarioBudget budget_from_json(const util::JsonValue* j) {
  ScenarioBudget b;
  if (j == nullptr) return b;
  reject_unknown(*j,
                 {"sa_evaluations", "sa_moves_per_temperature", "sa_cooling",
                  "run_sa", "rl_epochs", "rl_episodes_per_update", "rl_grid",
                  "run_rl"},
                 "budget");
  b.sa_evaluations = checked_count(*j, "sa_evaluations", b.sa_evaluations,
                                   "budget", 0, 1000000000000L);
  b.sa_moves_per_temperature = static_cast<int>(
      checked_count(*j, "sa_moves_per_temperature",
                    b.sa_moves_per_temperature, "budget", 0, 1000000000));
  b.sa_cooling = j->number_or("sa_cooling", b.sa_cooling);
  b.run_sa = j->bool_or("run_sa", b.run_sa);
  b.rl_epochs = static_cast<int>(
      checked_count(*j, "rl_epochs", b.rl_epochs, "budget", 0, 1000000000));
  b.rl_episodes_per_update = static_cast<int>(
      checked_count(*j, "rl_episodes_per_update", b.rl_episodes_per_update,
                    "budget", 0, 1000000000));
  b.rl_grid = static_cast<std::size_t>(checked_count(
      *j, "rl_grid", static_cast<long>(b.rl_grid), "budget", 0, 4096));
  b.run_rl = j->bool_or("run_rl", b.run_rl);
  return b;
}

ScenarioEnvelope envelope_from_json(const util::JsonValue& j) {
  reject_unknown(j,
                 {"max_temp_c", "max_wirelength_mm", "min_sa_evals_per_sec",
                  "min_rl_steps_per_sec"},
                 "envelope");
  ScenarioEnvelope e;
  e.max_temp_c = j.at("max_temp_c").as_number();
  e.max_wirelength_mm = j.at("max_wirelength_mm").as_number();
  e.min_sa_evals_per_sec =
      j.number_or("min_sa_evals_per_sec", e.min_sa_evals_per_sec);
  e.min_rl_steps_per_sec =
      j.number_or("min_rl_steps_per_sec", e.min_rl_steps_per_sec);
  return e;
}

}  // namespace

ChipletSystem make_builtin_system(const std::string& name) {
  if (name == "multi_gpu") return make_multi_gpu_system();
  if (name == "cpu_dram") return make_cpu_dram_system();
  if (name == "ascend910") return make_ascend910_system();
  if (name.rfind("table3/", 0) == 0) {
    const std::string idx = name.substr(7);
    if (idx.size() == 1 && idx[0] >= '1' && idx[0] <= '5') {
      return make_table3_cases()[static_cast<std::size_t>(idx[0] - '1')];
    }
  }
  fail("unknown builtin system \"" + name +
       "\" (expected multi_gpu, cpu_dram, ascend910, or table3/1..5)");
}

void Scenario::validate() const {
  if (!valid_name(name)) {
    fail("scenario name \"" + name +
         "\" must be non-empty [A-Za-z0-9_.-]");
  }
  const int sources = (builtin.empty() ? 0 : 1) + (family ? 1 : 0) +
                      (inline_system ? 1 : 0);
  if (sources != 1) {
    fail(name + ": system must have exactly one of builtin / family / dies");
  }
  if (family) {
    try {
      validate_family_config(*family);
    } catch (const std::invalid_argument& e) {
      fail(name + ": " + e.what());
    }
  }
  if (inline_system) {
    try {
      inline_system->validate();
    } catch (const std::invalid_argument& e) {
      fail(name + ": " + e.what());
    }
  }
  if (!budget.run_sa && !budget.run_rl) {
    fail(name + ": budget disables both SA and RL");
  }
  if (budget.run_sa && budget.sa_evaluations <= 0) {
    fail(name + ": budget.sa_evaluations must be positive");
  }
  if (budget.sa_moves_per_temperature <= 0) {
    fail(name + ": budget.sa_moves_per_temperature must be positive");
  }
  if (budget.sa_cooling <= 0.0 || budget.sa_cooling >= 1.0) {
    fail(name + ": budget.sa_cooling must be in (0, 1)");
  }
  if (budget.run_rl &&
      (budget.rl_epochs <= 0 || budget.rl_episodes_per_update <= 0)) {
    fail(name + ": RL budget must be positive");
  }
  if (budget.run_rl && budget.rl_grid < 4) {
    fail(name + ": budget.rl_grid must be at least 4");
  }
  if (envelope.max_temp_c <= 0.0) {
    fail(name + ": envelope.max_temp_c must be positive");
  }
  if (envelope.max_wirelength_mm <= 0.0) {
    fail(name + ": envelope.max_wirelength_mm must be positive");
  }
  if (envelope.min_sa_evals_per_sec < 0.0 ||
      envelope.min_rl_steps_per_sec < 0.0) {
    fail(name + ": envelope throughput floors must be non-negative");
  }
}

ChipletSystem Scenario::build_system() const {
  validate();
  if (!builtin.empty()) return make_builtin_system(builtin);
  if (family) return generate_family(*family, family_seed, name);
  return *inline_system;
}

Scenario scenario_from_json(const util::JsonValue& json) {
  if (!json.is_object()) fail("scenario document must be a JSON object");
  reject_unknown(json,
                 {"name", "description", "seed", "system", "budget",
                  "envelope"},
                 "scenario");
  Scenario s;
  s.name = json.string_or("name", "");
  s.description = json.string_or("description", "");
  s.seed = static_cast<std::uint64_t>(
      checked_count(json, "seed", static_cast<long>(s.seed), "scenario"));

  const util::JsonValue* sys = json.find("system");
  if (sys == nullptr) fail(s.name + ": missing \"system\"");
  if (!sys->is_object()) fail(s.name + ": \"system\" must be an object");
  const int sources = (sys->has("builtin") ? 1 : 0) +
                      (sys->has("family") ? 1 : 0) +
                      (sys->has("dies") ? 1 : 0);
  if (sources != 1) {
    fail(s.name + ": system must have exactly one of builtin / family / dies");
  }
  if (sys->has("builtin")) {
    reject_unknown(*sys, {"builtin"}, "system");
    s.builtin = sys->at("builtin").as_string();
    make_builtin_system(s.builtin);  // reject unknown names at load time
  } else if (sys->has("family")) {
    reject_unknown(*sys, {"family"}, "system");
    s.family = family_from_json(sys->at("family"));
    s.family_seed = static_cast<std::uint64_t>(checked_count(
        sys->at("family"), "seed", static_cast<long>(s.family_seed),
        "system.family"));
  } else {
    s.inline_system = inline_system_from_json(*sys, s.name);
  }

  s.budget = budget_from_json(json.find("budget"));
  const util::JsonValue* env = json.find("envelope");
  if (env == nullptr) fail(s.name + ": missing \"envelope\"");
  s.envelope = envelope_from_json(*env);

  s.validate();
  return s;
}

util::JsonValue scenario_to_json(const Scenario& scenario) {
  scenario.validate();
  util::JsonValue j = util::JsonValue::make_object();
  j.set("name", scenario.name);
  if (!scenario.description.empty()) {
    j.set("description", scenario.description);
  }
  j.set("seed", scenario.seed);

  util::JsonValue sys = util::JsonValue::make_object();
  if (!scenario.builtin.empty()) {
    sys.set("builtin", scenario.builtin);
  } else if (scenario.family) {
    util::JsonValue fam = family_to_json(*scenario.family);
    fam.set("seed", scenario.family_seed);
    sys.set("family", std::move(fam));
  } else {
    sys = inline_system_to_json(*scenario.inline_system);
  }
  j.set("system", std::move(sys));

  const ScenarioBudget& b = scenario.budget;
  util::JsonValue budget = util::JsonValue::make_object();
  budget.set("sa_evaluations", b.sa_evaluations);
  budget.set("sa_moves_per_temperature", b.sa_moves_per_temperature);
  budget.set("sa_cooling", b.sa_cooling);
  budget.set("run_sa", b.run_sa);
  budget.set("rl_epochs", b.rl_epochs);
  budget.set("rl_episodes_per_update", b.rl_episodes_per_update);
  budget.set("rl_grid", b.rl_grid);
  budget.set("run_rl", b.run_rl);
  j.set("budget", std::move(budget));

  const ScenarioEnvelope& e = scenario.envelope;
  util::JsonValue envelope = util::JsonValue::make_object();
  envelope.set("max_temp_c", e.max_temp_c);
  envelope.set("max_wirelength_mm", e.max_wirelength_mm);
  envelope.set("min_sa_evals_per_sec", e.min_sa_evals_per_sec);
  envelope.set("min_rl_steps_per_sec", e.min_rl_steps_per_sec);
  j.set("envelope", std::move(envelope));
  return j;
}

Scenario load_scenario_file(const std::string& path) {
  util::JsonValue doc;
  try {
    doc = util::parse_json_file(path);
  } catch (const util::JsonError& e) {
    fail(e.what());  // parse_json_file errors already carry the path
  }
  try {
    return scenario_from_json(doc);
  } catch (const ScenarioError& e) {
    fail(path + ": " + e.what());
  } catch (const util::JsonError& e) {
    // Type/missing-member errors raised while reading fields.
    fail(path + ": " + e.what());
  } catch (const std::invalid_argument& e) {
    fail(path + ": " + e.what());
  }
}

void save_scenario_file(const Scenario& scenario, const std::string& path) {
  util::write_json_file(path, scenario_to_json(scenario));
}

std::vector<Scenario> load_scenario_suite(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    fail(dir + ": not a directory");
  }
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".json") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  std::vector<Scenario> suite;
  std::unordered_set<std::string> names;
  for (const std::string& path : paths) {
    suite.push_back(load_scenario_file(path));
    if (!names.insert(suite.back().name).second) {
      fail(dir + ": duplicate scenario name \"" + suite.back().name + "\"");
    }
  }
  return suite;
}

}  // namespace rlplan::systems
