// Declarative benchmark scenarios.
//
// A scenario is one end-to-end regression case for the optimizers: a problem
// instance (inline die/netlist description, a named builtin benchmark, or a
// parameterized generator family + seed), the optimizer budgets to spend on
// it, and the *golden envelope* its results must stay inside (peak
// temperature and wirelength ceilings, optimizer-throughput floors).
// Scenarios live as JSON files under scenarios/; tools/regress.cpp runs the
// whole suite and gates CI on the envelopes, so adding coverage for a new
// workload is dropping in one JSON file.
//
// Schema (all sizes mm, powers W, temperatures degC):
//
//   {
//     "name": "star16",                // required, [A-Za-z0-9_.-]+
//     "description": "...",            // optional
//     "seed": 3,                       // optimizer seed (default 1)
//     "system": {                      // required, exactly ONE of:
//       "builtin": "multi_gpu",        //  1. named builtin (multi_gpu,
//                                      //     cpu_dram, ascend910, table3/1-5)
//       "family": {                    //  2. generator family
//         "topology": "star",          //     random|star|chain|ring|mesh|
//         "chiplets": 16,              //       bipartite
//         "seed": 7,
//         "interposer_mm": [70, 70],
//         "die_mm": [3, 9],
//         "power_w": [4, 18],
//         "max_aspect": 1.5,
//         "power_skew": 0,
//         "wires": [32, 512],
//         "extra_net_prob": 0.35,
//         "hotspot_pairs": 0,
//         "hotspot_power_w": 0,
//         "max_utilization": 0.5
//       },
//       "dies": [                      //  3. inline system (with "nets",
//         {"name": "cpu", "mm": [10, 8], "power_w": 30}, ...
//       ],
//       "nets": [["cpu", "mem0", 256], ...],
//       "interposer_mm": [50, 50]      //     required for inline systems
//     },
//     "budget": {                      // optional, defaults below
//       "sa_evaluations": 4000, "sa_moves_per_temperature": 40,
//       "sa_cooling": 0.95, "run_sa": true,
//       "rl_epochs": 2, "rl_episodes_per_update": 8, "rl_grid": 12,
//       "run_rl": true
//     },
//     "envelope": {                    // required
//       "max_temp_c": 110,             // required ceiling on ground truth
//       "max_wirelength_mm": 26000,    // required ceiling (microbump WL)
//       "min_sa_evals_per_sec": 0,     // optional throughput floors
//       "min_rl_steps_per_sec": 0      // (0 disables)
//     }
//   }
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/chiplet.h"
#include "systems/synthetic.h"
#include "util/json.h"

namespace rlplan::systems {

/// Scenario file problems throw this (loading, schema, or range errors);
/// messages name the offending field.
class ScenarioError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct ScenarioBudget {
  long sa_evaluations = 4000;
  int sa_moves_per_temperature = 40;
  double sa_cooling = 0.95;
  bool run_sa = true;
  int rl_epochs = 2;
  int rl_episodes_per_update = 8;
  std::size_t rl_grid = 12;
  bool run_rl = true;

  bool operator==(const ScenarioBudget& o) const = default;
};

struct ScenarioEnvelope {
  double max_temp_c = 0.0;         ///< required ceiling, ground-truth peak
  double max_wirelength_mm = 0.0;  ///< required ceiling, microbump WL
  double min_sa_evals_per_sec = 0.0;  ///< 0 = no floor
  double min_rl_steps_per_sec = 0.0;  ///< 0 = no floor

  bool operator==(const ScenarioEnvelope& o) const = default;
};

struct Scenario {
  std::string name;
  std::string description;
  std::uint64_t seed = 1;  ///< optimizer seed (not the generator seed)

  // Problem source — exactly one is set (enforced by validate()).
  std::string builtin;                        ///< named builtin, or empty
  std::optional<FamilyConfig> family;         ///< generator family...
  std::uint64_t family_seed = 1;              ///< ...with this seed
  std::optional<ChipletSystem> inline_system; ///< fully explicit instance

  ScenarioBudget budget;
  ScenarioEnvelope envelope;

  /// Schema/range validation (does not build the system). Throws
  /// ScenarioError naming the field.
  void validate() const;

  /// Materializes the problem instance (builtin lookup, family generation,
  /// or a copy of the inline system); the result is validate()d.
  ChipletSystem build_system() const;
};

/// Names accepted by {"system": {"builtin": ...}}: "multi_gpu", "cpu_dram",
/// "ascend910", "table3/1" .. "table3/5".
ChipletSystem make_builtin_system(const std::string& name);

/// JSON <-> Scenario. Parsing validates; serialization of a valid scenario
/// round-trips to an equal scenario (and an identical built system).
Scenario scenario_from_json(const util::JsonValue& json);
util::JsonValue scenario_to_json(const Scenario& scenario);

Scenario load_scenario_file(const std::string& path);
void save_scenario_file(const Scenario& scenario, const std::string& path);

/// Loads every *.json in `dir` (sorted by filename, so suite order is
/// stable), rejecting duplicate scenario names. Throws ScenarioError when
/// the directory is missing or contains an invalid scenario.
std::vector<Scenario> load_scenario_suite(const std::string& dir);

}  // namespace rlplan::systems
