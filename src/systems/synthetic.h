// Seeded synthetic chiplet-system generation.
//
// Two uses in the paper's evaluation:
//  * Table II — "a dataset comprising 2,000 synthetic chiplet systems" for
//    fast-model accuracy/speed statistics (systems + random legal
//    placements, fixed interposer so one characterization covers all).
//  * Table III — five synthetic benchmark cases (Case1..Case5) for
//    optimizer comparison.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/chiplet.h"
#include "core/floorplan.h"
#include "util/rng.h"

namespace rlplan::systems {

struct SyntheticConfig {
  std::size_t min_chiplets = 3;
  std::size_t max_chiplets = 8;
  double min_dim_mm = 4.0;
  double max_dim_mm = 14.0;
  double min_power_w = 5.0;
  double max_power_w = 45.0;
  double interposer_w_mm = 50.0;
  double interposer_h_mm = 50.0;
  /// Reject draws whose utilization exceeds this (keeps instances placeable).
  double max_utilization = 0.55;
  int min_wires = 32;
  int max_wires = 512;
  /// Probability of a net between any chiplet pair beyond the connectivity-
  /// guaranteeing spanning tree.
  double extra_net_prob = 0.35;
};

class SyntheticSystemGenerator {
 public:
  explicit SyntheticSystemGenerator(SyntheticConfig config = {});

  const SyntheticConfig& config() const { return config_; }

  /// Deterministic: the same seed always yields the same system.
  ChipletSystem generate(std::uint64_t seed,
                         const std::string& name = "") const;

 private:
  SyntheticConfig config_;
};

/// Uniform-random legal placement by rejection sampling (up to `max_tries`
/// per chiplet, largest chiplet first); falls back to a left-packed skyline
/// scan when rejection fails. Throws std::runtime_error when even the
/// fallback cannot place a chiplet.
Floorplan random_legal_floorplan(const ChipletSystem& system, Rng& rng,
                                 int max_tries = 200,
                                 double spacing_mm = 0.0);

/// The five Table III benchmark cases (fixed seeds, 40x40 mm interposer).
std::vector<ChipletSystem> make_table3_cases();

// ---------------------------------------------------------------------------
// Parameterized generator families — the scenario subsystem's workload
// vocabulary. Where SyntheticSystemGenerator draws everything uniformly at
// random, a family pins the *structure* (netlist topology, power
// distribution shape, die aspect regime) and randomizes only within it, so a
// single family + seed names a reproducible stress case: die-count sweeps,
// star/mesh/bipartite traffic patterns, skewed power maps, sliver-shaped
// dies, thermally antagonistic hotspot pairs.

/// Netlist shape of a family instance.
enum class NetTopology {
  kRandom,     ///< random spanning tree + extra edges (SyntheticConfig shape)
  kStar,       ///< hub-and-spoke: every die links only to die 0 (the switch)
  kChain,      ///< linear pipeline c0 - c1 - ... - c(n-1)
  kRing,       ///< chain plus the closing c(n-1) - c0 link
  kMesh,       ///< near-square grid, links between row/column neighbours
  kBipartite,  ///< compute/memory halves, cross links only (CPU-DRAM shape)
};

/// Name <-> enum for serialization ("random", "star", ...). Parsing throws
/// std::invalid_argument on unknown names.
const char* to_string(NetTopology topology);
NetTopology net_topology_from_string(const std::string& name);

struct FamilyConfig {
  std::size_t chiplets = 8;
  double interposer_w_mm = 50.0;
  double interposer_h_mm = 50.0;
  /// Die linear scale s is drawn uniformly in [min_dim_mm, max_dim_mm]; the
  /// footprint is then s*sqrt(a) x s/sqrt(a) for an aspect ratio a drawn
  /// log-uniformly in [1/max_aspect, max_aspect]. max_aspect == 1 fixes
  /// square dies; large values produce sliver extremes.
  double min_dim_mm = 4.0;
  double max_dim_mm = 12.0;
  double max_aspect = 1.0;
  /// Per-die power is min + (max - min) * u^(1 + power_skew), u ~ U[0, 1):
  /// skew 0 is uniform; larger values concentrate the budget on a few hot
  /// dies while most run cool (the skewed-power-map family).
  double min_power_w = 5.0;
  double max_power_w = 30.0;
  double power_skew = 0.0;
  NetTopology topology = NetTopology::kRandom;
  int min_wires = 32;
  int max_wires = 512;
  /// kRandom: probability of each beyond-tree edge. kBipartite: probability
  /// of each cross edge beyond the connectivity guarantee. Other topologies
  /// ignore it.
  double extra_net_prob = 0.35;
  /// Thermally antagonistic pairs: the first 2*hotspot_pairs dies are forced
  /// to hotspot_power_w and each pair is tied by a max_wires net, so the
  /// wirelength term pulls together exactly the dies the thermal term must
  /// keep apart.
  std::size_t hotspot_pairs = 0;
  double hotspot_power_w = 0.0;  ///< 0 = max_power_w
  /// Redraw cap on total die area / interposer area (keeps instances
  /// placeable).
  double max_utilization = 0.5;

  bool operator==(const FamilyConfig& o) const = default;
};

/// Range checks on a family config (also run by generate_family). Throws
/// std::invalid_argument naming the problem.
void validate_family_config(const FamilyConfig& config);

/// Deterministic (same config + seed -> same system) family instance.
/// Throws std::invalid_argument on malformed configs (chiplets < 2, bad
/// ranges, hotspot pairs exceeding the die count, interposer too small for
/// max_dim_mm at max_aspect).
ChipletSystem generate_family(const FamilyConfig& config, std::uint64_t seed,
                              const std::string& name = "");

}  // namespace rlplan::systems
