// Seeded synthetic chiplet-system generation.
//
// Two uses in the paper's evaluation:
//  * Table II — "a dataset comprising 2,000 synthetic chiplet systems" for
//    fast-model accuracy/speed statistics (systems + random legal
//    placements, fixed interposer so one characterization covers all).
//  * Table III — five synthetic benchmark cases (Case1..Case5) for
//    optimizer comparison.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/chiplet.h"
#include "core/floorplan.h"
#include "util/rng.h"

namespace rlplan::systems {

struct SyntheticConfig {
  std::size_t min_chiplets = 3;
  std::size_t max_chiplets = 8;
  double min_dim_mm = 4.0;
  double max_dim_mm = 14.0;
  double min_power_w = 5.0;
  double max_power_w = 45.0;
  double interposer_w_mm = 50.0;
  double interposer_h_mm = 50.0;
  /// Reject draws whose utilization exceeds this (keeps instances placeable).
  double max_utilization = 0.55;
  int min_wires = 32;
  int max_wires = 512;
  /// Probability of a net between any chiplet pair beyond the connectivity-
  /// guaranteeing spanning tree.
  double extra_net_prob = 0.35;
};

class SyntheticSystemGenerator {
 public:
  explicit SyntheticSystemGenerator(SyntheticConfig config = {});

  const SyntheticConfig& config() const { return config_; }

  /// Deterministic: the same seed always yields the same system.
  ChipletSystem generate(std::uint64_t seed,
                         const std::string& name = "") const;

 private:
  SyntheticConfig config_;
};

/// Uniform-random legal placement by rejection sampling (up to `max_tries`
/// per chiplet, largest chiplet first); falls back to a left-packed skyline
/// scan when rejection fails. Throws std::runtime_error when even the
/// fallback cannot place a chiplet.
Floorplan random_legal_floorplan(const ChipletSystem& system, Rng& rng,
                                 int max_tries = 200,
                                 double spacing_mm = 0.0);

/// The five Table III benchmark cases (fixed seeds, 40x40 mm interposer).
std::vector<ChipletSystem> make_table3_cases();

}  // namespace rlplan::systems
