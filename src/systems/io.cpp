#include "systems/io.h"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace rlplan::systems {

namespace {

[[noreturn]] void fail(int line, const std::string& message) {
  throw std::runtime_error("line " + std::to_string(line) + ": " + message);
}

/// Splits a line into whitespace-delimited tokens, dropping '#' comments.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) {
    if (tok[0] == '#') break;
    tokens.push_back(tok);
  }
  return tokens;
}

double parse_double(const std::string& tok, int line, const char* what) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(tok, &pos);
    if (pos != tok.size()) throw std::invalid_argument(tok);
    return v;
  } catch (const std::exception&) {
    fail(line, std::string("expected a number for ") + what + ", got '" +
                   tok + "'");
  }
}

}  // namespace

ChipletSystem read_system(std::istream& is) {
  std::string name;
  double iw = 0.0, ih = 0.0;
  std::vector<Chiplet> chiplets;
  std::map<std::string, std::size_t> index_of;
  std::vector<InterChipletNet> nets;

  std::string line;
  int line_no = 0;
  bool saw_system = false;
  while (std::getline(is, line)) {
    ++line_no;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string& kw = tokens[0];
    if (kw == "system") {
      if (tokens.size() != 2) fail(line_no, "usage: system <name>");
      name = tokens[1];
      saw_system = true;
    } else if (kw == "interposer") {
      if (tokens.size() != 3) {
        fail(line_no, "usage: interposer <width_mm> <height_mm>");
      }
      iw = parse_double(tokens[1], line_no, "interposer width");
      ih = parse_double(tokens[2], line_no, "interposer height");
    } else if (kw == "chiplet") {
      if (tokens.size() != 5) {
        fail(line_no, "usage: chiplet <name> <w_mm> <h_mm> <power_w>");
      }
      if (index_of.count(tokens[1]) != 0) {
        fail(line_no, "duplicate chiplet '" + tokens[1] + "'");
      }
      index_of[tokens[1]] = chiplets.size();
      chiplets.push_back({tokens[1],
                          parse_double(tokens[2], line_no, "chiplet width"),
                          parse_double(tokens[3], line_no, "chiplet height"),
                          parse_double(tokens[4], line_no, "chiplet power")});
    } else if (kw == "net") {
      if (tokens.size() != 4) {
        fail(line_no, "usage: net <chiplet> <chiplet> <wires>");
      }
      const auto a = index_of.find(tokens[1]);
      const auto b = index_of.find(tokens[2]);
      if (a == index_of.end()) {
        fail(line_no, "unknown chiplet '" + tokens[1] + "'");
      }
      if (b == index_of.end()) {
        fail(line_no, "unknown chiplet '" + tokens[2] + "'");
      }
      const double wires = parse_double(tokens[3], line_no, "wire count");
      nets.push_back({a->second, b->second, static_cast<int>(wires)});
    } else {
      fail(line_no, "unknown keyword '" + kw + "'");
    }
  }
  if (!saw_system) {
    throw std::runtime_error("system file: missing 'system <name>' line");
  }
  ChipletSystem system(name, iw, ih, std::move(chiplets), std::move(nets));
  system.validate();
  return system;
}

ChipletSystem read_system_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open system file: " + path);
  try {
    return read_system(is);
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

void write_system(const ChipletSystem& system, std::ostream& os) {
  os << "system " << system.name() << "\n";
  os << "interposer " << system.interposer_width() << ' '
     << system.interposer_height() << "\n";
  for (const auto& c : system.chiplets()) {
    os << "chiplet " << c.name << ' ' << c.width << ' ' << c.height << ' '
       << c.power << "\n";
  }
  for (const auto& net : system.nets()) {
    os << "net " << system.chiplet(net.a).name << ' '
       << system.chiplet(net.b).name << ' ' << net.wires << "\n";
  }
}

void write_system_file(const ChipletSystem& system, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for write: " + path);
  write_system(system, os);
}

Floorplan read_floorplan(std::istream& is, const ChipletSystem& system) {
  std::map<std::string, std::size_t> index_of;
  for (std::size_t i = 0; i < system.num_chiplets(); ++i) {
    index_of[system.chiplet(i).name] = i;
  }

  Floorplan fp(system);
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string& kw = tokens[0];
    if (kw == "floorplan") {
      if (tokens.size() != 2) fail(line_no, "usage: floorplan <system>");
      if (tokens[1] != system.name()) {
        fail(line_no, "floorplan is for system '" + tokens[1] +
                          "', expected '" + system.name() + "'");
      }
    } else if (kw == "place") {
      if (tokens.size() != 4 && tokens.size() != 5) {
        fail(line_no, "usage: place <chiplet> <x_mm> <y_mm> [rotated]");
      }
      const auto it = index_of.find(tokens[1]);
      if (it == index_of.end()) {
        fail(line_no, "unknown chiplet '" + tokens[1] + "'");
      }
      bool rotated = false;
      if (tokens.size() == 5) {
        if (tokens[4] != "rotated") {
          fail(line_no, "trailing token must be 'rotated'");
        }
        rotated = true;
      }
      fp.place(it->second,
               {parse_double(tokens[2], line_no, "x"),
                parse_double(tokens[3], line_no, "y")},
               rotated);
    } else {
      fail(line_no, "unknown keyword '" + kw + "'");
    }
  }
  return fp;
}

Floorplan read_floorplan_file(const std::string& path,
                              const ChipletSystem& system) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open floorplan file: " + path);
  try {
    return read_floorplan(is, system);
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

void write_floorplan(const Floorplan& floorplan, std::ostream& os) {
  const ChipletSystem& system = floorplan.system();
  os << "floorplan " << system.name() << "\n";
  for (std::size_t i = 0; i < system.num_chiplets(); ++i) {
    if (!floorplan.is_placed(i)) continue;
    const auto& p = *floorplan.placement(i);
    os << "place " << system.chiplet(i).name << ' ' << p.position.x << ' '
       << p.position.y;
    if (p.rotated) os << " rotated";
    os << "\n";
  }
}

void write_floorplan_file(const Floorplan& floorplan,
                          const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for write: " + path);
  write_floorplan(floorplan, os);
}

}  // namespace rlplan::systems
