// 2D geometry primitives for floorplanning.
//
// All linear dimensions are millimetres; the coordinate origin is the
// lower-left corner of the interposer, x to the right, y up. Rectangles are
// anchored at their lower-left corner (HotSpot floorplan convention).
#pragma once

#include <algorithm>
#include <cmath>

namespace rlplan {

struct Point {
  double x = 0.0;
  double y = 0.0;

  Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
  Point operator*(double s) const { return {x * s, y * s}; }
  bool operator==(const Point& o) const = default;
};

/// Euclidean distance between two points.
inline double euclidean(const Point& a, const Point& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

/// Manhattan (L1) distance — the routing metric on an interposer.
inline double manhattan(const Point& a, const Point& b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

/// Axis-aligned rectangle anchored at lower-left corner (x, y).
struct Rect {
  double x = 0.0;
  double y = 0.0;
  double w = 0.0;
  double h = 0.0;

  double area() const { return w * h; }
  double right() const { return x + w; }
  double top() const { return y + h; }
  Point center() const { return {x + w / 2.0, y + h / 2.0}; }
  Point origin() const { return {x, y}; }

  /// Closed-boundary point containment.
  bool contains(const Point& p) const {
    return p.x >= x && p.x <= right() && p.y >= y && p.y <= top();
  }

  /// True when `inner` lies entirely inside *this (boundaries may touch).
  bool contains(const Rect& inner) const {
    return inner.x >= x && inner.y >= y && inner.right() <= right() &&
           inner.top() <= top();
  }

  /// Strict interior overlap: rectangles that merely share an edge or corner
  /// do NOT overlap (abutting chiplets are legal), and zero-area rectangles
  /// have no interior, so they never overlap anything — overlaps(o) is true
  /// exactly when intersection_area(o) > 0.
  bool overlaps(const Rect& o) const {
    return std::min(right(), o.right()) > std::max(x, o.x) &&
           std::min(top(), o.top()) > std::max(y, o.y);
  }

  /// Area of the intersection (0 when disjoint or merely touching).
  double intersection_area(const Rect& o) const {
    const double ix = std::max(0.0, std::min(right(), o.right()) - std::max(x, o.x));
    const double iy = std::max(0.0, std::min(top(), o.top()) - std::max(y, o.y));
    return ix * iy;
  }

  /// Rectangle expanded by `margin` on every side (negative shrinks).
  Rect inflated(double margin) const {
    return {x - margin, y - margin, w + 2.0 * margin, h + 2.0 * margin};
  }

  bool operator==(const Rect& o) const = default;
};

/// Minimum gap between two rectangles' boundaries along axes; 0 when they
/// touch or overlap. Used for spacing-rule checks.
inline double rect_gap(const Rect& a, const Rect& b) {
  const double dx =
      std::max({a.x - b.right(), b.x - a.right(), 0.0});
  const double dy = std::max({a.y - b.top(), b.y - a.top(), 0.0});
  // Separated along one axis only -> gap is that axis distance; separated
  // diagonally -> Euclidean corner distance.
  if (dx > 0.0 && dy > 0.0) return std::hypot(dx, dy);
  return std::max(dx, dy);
}

/// Center-to-center Euclidean distance between two rectangles.
inline double center_distance(const Rect& a, const Rect& b) {
  return euclidean(a.center(), b.center());
}

}  // namespace rlplan
