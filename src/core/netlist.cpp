#include "core/netlist.h"

#include <queue>

namespace rlplan {

std::vector<std::vector<long>> build_adjacency(
    std::size_t num_chiplets, const std::vector<InterChipletNet>& nets) {
  std::vector<std::vector<long>> adj(num_chiplets,
                                     std::vector<long>(num_chiplets, 0));
  for (const auto& net : nets) {
    if (net.a >= num_chiplets || net.b >= num_chiplets || net.a == net.b) {
      continue;  // malformed nets are rejected by ChipletSystem::validate()
    }
    adj[net.a][net.b] += net.wires;
    adj[net.b][net.a] += net.wires;
  }
  return adj;
}

std::vector<long> wire_degrees(std::size_t num_chiplets,
                               const std::vector<InterChipletNet>& nets) {
  std::vector<long> deg(num_chiplets, 0);
  for (const auto& net : nets) {
    if (net.a >= num_chiplets || net.b >= num_chiplets || net.a == net.b) {
      continue;
    }
    deg[net.a] += net.wires;
    deg[net.b] += net.wires;
  }
  return deg;
}

bool is_connected(std::size_t num_chiplets,
                  const std::vector<InterChipletNet>& nets) {
  if (num_chiplets <= 1) return true;
  std::vector<std::vector<std::size_t>> neighbors(num_chiplets);
  for (const auto& net : nets) {
    if (net.a >= num_chiplets || net.b >= num_chiplets || net.a == net.b) {
      continue;
    }
    neighbors[net.a].push_back(net.b);
    neighbors[net.b].push_back(net.a);
  }
  std::vector<bool> seen(num_chiplets, false);
  std::queue<std::size_t> frontier;
  frontier.push(0);
  seen[0] = true;
  std::size_t visited = 1;
  while (!frontier.empty()) {
    const std::size_t u = frontier.front();
    frontier.pop();
    for (std::size_t v : neighbors[u]) {
      if (!seen[v]) {
        seen[v] = true;
        ++visited;
        frontier.push(v);
      }
    }
  }
  return visited == num_chiplets;
}

}  // namespace rlplan
