// Chiplet and chiplet-system model.
//
// A ChipletSystem is the *problem instance* given to any floorplanner in this
// library: the interposer extent, the set of chiplets (dies) with their
// physical size and power, and the inter-chiplet netlist. It is immutable
// during optimization; a Floorplan (core/floorplan.h) holds the mutable
// placement state.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/geometry.h"
#include "core/netlist.h"

namespace rlplan {

/// One die in a 2.5D system. Dimensions in mm, power in W (uniform density).
struct Chiplet {
  std::string name;
  double width = 0.0;   ///< mm, unrotated
  double height = 0.0;  ///< mm, unrotated
  double power = 0.0;   ///< W, total dissipated power

  double area() const { return width * height; }
  double power_density() const {  ///< W/mm^2
    return area() > 0.0 ? power / area() : 0.0;
  }

  bool operator==(const Chiplet& o) const = default;
};

/// Immutable problem instance: interposer + chiplets + netlist.
class ChipletSystem {
 public:
  ChipletSystem() = default;
  ChipletSystem(std::string name, double interposer_width,
                double interposer_height, std::vector<Chiplet> chiplets,
                std::vector<InterChipletNet> nets);

  const std::string& name() const { return name_; }
  double interposer_width() const { return interposer_width_; }
  double interposer_height() const { return interposer_height_; }
  Rect interposer_rect() const {
    return {0.0, 0.0, interposer_width_, interposer_height_};
  }

  std::size_t num_chiplets() const { return chiplets_.size(); }
  const Chiplet& chiplet(std::size_t i) const { return chiplets_.at(i); }
  const std::vector<Chiplet>& chiplets() const { return chiplets_; }

  const std::vector<InterChipletNet>& nets() const { return nets_; }

  /// Sum of all chiplet powers (W).
  double total_power() const;
  /// Sum of all chiplet areas (mm^2).
  double total_chiplet_area() const;
  /// total_chiplet_area / interposer area — a packing-difficulty measure.
  double utilization() const;
  /// Total number of wires across all inter-chiplet nets.
  long total_wires() const;

  /// Throws std::invalid_argument if the instance is malformed: non-positive
  /// dimensions/interposer, net endpoints out of range or self-loops, any
  /// chiplet larger than the interposer, or utilization > 1.
  void validate() const;

  /// Indices sorted by decreasing area — the canonical RL placement order
  /// (large chiplets first constrains the search usefully).
  std::vector<std::size_t> placement_order_by_area() const;

  /// Exact member-wise equality (name, interposer, chiplets, nets) — the
  /// serialization round-trip identity check.
  bool operator==(const ChipletSystem& o) const = default;

 private:
  std::string name_;
  double interposer_width_ = 0.0;
  double interposer_height_ = 0.0;
  std::vector<Chiplet> chiplets_;
  std::vector<InterChipletNet> nets_;
};

}  // namespace rlplan
