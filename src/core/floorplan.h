// Mutable placement state over a ChipletSystem.
//
// A Floorplan assigns each chiplet an (x, y) lower-left position and an
// optional 90-degree rotation. Chiplets may be unplaced (during sequential RL
// placement); geometric queries treat unplaced chiplets as absent.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "core/chiplet.h"
#include "core/geometry.h"

namespace rlplan {

/// Position + orientation of one placed chiplet.
struct Placement {
  Point position;         ///< lower-left corner, mm
  bool rotated = false;   ///< true: width/height swapped (90 deg rotation)

  bool operator==(const Placement& o) const = default;
};

class Floorplan {
 public:
  /// `system` must outlive the floorplan *at a stable address* (the
  /// floorplan stores a pointer): do not keep floorplans across reallocation
  /// of a container that owns their systems.
  explicit Floorplan(const ChipletSystem& system);

  const ChipletSystem& system() const { return *system_; }

  std::size_t num_chiplets() const { return placements_.size(); }
  bool is_placed(std::size_t i) const { return placements_.at(i).has_value(); }
  std::size_t num_placed() const;
  bool is_complete() const { return num_placed() == num_chiplets(); }

  /// Places (or re-places) chiplet i. No legality check — see can_place().
  void place(std::size_t i, Point lower_left, bool rotated = false);
  void unplace(std::size_t i);
  void clear();

  const std::optional<Placement>& placement(std::size_t i) const {
    return placements_.at(i);
  }

  /// Effective footprint of chiplet i given its rotation flag.
  /// Precondition: is_placed(i).
  Rect rect_of(std::size_t i) const;

  /// Footprint chiplet i WOULD occupy at the given placement.
  Rect rect_for(std::size_t i, Point lower_left, bool rotated) const;

  /// Legality: inside the interposer and no interior overlap (with at least
  /// `spacing` mm of clearance) against every *other placed* chiplet.
  bool can_place(std::size_t i, Point lower_left, bool rotated,
                 double spacing = 0.0) const;

  /// True when the complete floorplan is legal under `spacing`.
  bool is_legal(double spacing = 0.0) const;

  /// Total pairwise interior overlap area over placed chiplets (0 if legal).
  double total_overlap_area() const;

  /// Sum over nets of wires * Manhattan(center_a, center_b) — the quick
  /// wirelength proxy used inside optimization loops before microbump
  /// assignment refines it. Unplaced endpoints contribute 0.
  double center_wirelength() const;

  /// Bounding box of all placed chiplets (zero rect when none placed).
  Rect bounding_box() const;

  /// Rects of all currently placed chiplets, indexed like the system.
  /// Unplaced entries are std::nullopt.
  std::vector<std::optional<Rect>> placed_rects() const;

 private:
  const ChipletSystem* system_;
  std::vector<std::optional<Placement>> placements_;
};

}  // namespace rlplan
