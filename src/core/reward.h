// Thermally-aware floorplanning reward (RLPlanner, Section II-C).
//
//   R = -lambda * W  -  mu * max(T - T0, 0)^alpha / (1 + exp(-(T - T0)))
//
// W: total microbump wirelength (mm); T: peak chiplet temperature (deg C);
// T0: thermal limit; alpha: smoothness exponent avoiding a gradient kink at
// T == T0; lambda, mu: objective weights. The same function (negated) is the
// SA baseline's cost, so every method in Tables I/III optimizes an identical
// objective.
//
// The paper does not publish per-benchmark weights; defaults below put the
// wirelength and thermal terms on comparable scales for the bundled
// benchmarks and are overridable everywhere.
#pragma once

namespace rlplan {

struct RewardParams {
  double lambda = 2.0e-4;  ///< per-mm wirelength weight
  double mu = 1.0;         ///< thermal overshoot weight
  double t0_celsius = 85.0;  ///< thermal limit T0
  double alpha = 1.0;        ///< overshoot exponent (>= 1)
};

class RewardCalculator {
 public:
  explicit RewardCalculator(RewardParams params = {});

  const RewardParams& params() const { return params_; }

  /// Reward (higher is better; always <= 0 for W, T >= 0 inputs).
  double reward(double wirelength_mm, double temperature_c) const;

  /// Positive cost for minimizers (== -reward).
  double cost(double wirelength_mm, double temperature_c) const {
    return -reward(wirelength_mm, temperature_c);
  }

  /// The thermal penalty term alone (the mu-weighted smoothed overshoot).
  double thermal_penalty(double temperature_c) const;

 private:
  RewardParams params_;
};

}  // namespace rlplan
