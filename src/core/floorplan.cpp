#include "core/floorplan.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace rlplan {

Floorplan::Floorplan(const ChipletSystem& system)
    : system_(&system), placements_(system.num_chiplets()) {}

std::size_t Floorplan::num_placed() const {
  return static_cast<std::size_t>(
      std::count_if(placements_.begin(), placements_.end(),
                    [](const auto& p) { return p.has_value(); }));
}

void Floorplan::place(std::size_t i, Point lower_left, bool rotated) {
  placements_.at(i) = Placement{lower_left, rotated};
}

void Floorplan::unplace(std::size_t i) { placements_.at(i).reset(); }

void Floorplan::clear() {
  for (auto& p : placements_) p.reset();
}

Rect Floorplan::rect_of(std::size_t i) const {
  const auto& p = placements_.at(i);
  if (!p) {
    throw std::logic_error("rect_of: chiplet " + std::to_string(i) +
                           " is not placed");
  }
  return rect_for(i, p->position, p->rotated);
}

Rect Floorplan::rect_for(std::size_t i, Point lower_left, bool rotated) const {
  const Chiplet& c = system_->chiplet(i);
  const double w = rotated ? c.height : c.width;
  const double h = rotated ? c.width : c.height;
  return {lower_left.x, lower_left.y, w, h};
}

bool Floorplan::can_place(std::size_t i, Point lower_left, bool rotated,
                          double spacing) const {
  const Rect r = rect_for(i, lower_left, rotated);
  if (!system_->interposer_rect().contains(r)) return false;
  const Rect grown = spacing > 0.0 ? r.inflated(spacing) : r;
  for (std::size_t j = 0; j < placements_.size(); ++j) {
    if (j == i || !placements_[j]) continue;
    if (grown.overlaps(rect_of(j))) return false;
  }
  return true;
}

bool Floorplan::is_legal(double spacing) const {
  for (std::size_t i = 0; i < placements_.size(); ++i) {
    if (!placements_[i]) return false;
    if (!can_place(i, placements_[i]->position, placements_[i]->rotated,
                   spacing)) {
      return false;
    }
  }
  return true;
}

double Floorplan::total_overlap_area() const {
  double total = 0.0;
  for (std::size_t i = 0; i < placements_.size(); ++i) {
    if (!placements_[i]) continue;
    const Rect ri = rect_of(i);
    for (std::size_t j = i + 1; j < placements_.size(); ++j) {
      if (!placements_[j]) continue;
      total += ri.intersection_area(rect_of(j));
    }
  }
  return total;
}

double Floorplan::center_wirelength() const {
  double wl = 0.0;
  for (const auto& net : system_->nets()) {
    if (!placements_[net.a] || !placements_[net.b]) continue;
    wl += static_cast<double>(net.wires) *
          manhattan(rect_of(net.a).center(), rect_of(net.b).center());
  }
  return wl;
}

Rect Floorplan::bounding_box() const {
  bool any = false;
  double x0 = 0.0, y0 = 0.0, x1 = 0.0, y1 = 0.0;
  for (std::size_t i = 0; i < placements_.size(); ++i) {
    if (!placements_[i]) continue;
    const Rect r = rect_of(i);
    if (!any) {
      x0 = r.x;
      y0 = r.y;
      x1 = r.right();
      y1 = r.top();
      any = true;
    } else {
      x0 = std::min(x0, r.x);
      y0 = std::min(y0, r.y);
      x1 = std::max(x1, r.right());
      y1 = std::max(y1, r.top());
    }
  }
  if (!any) return {};
  return {x0, y0, x1 - x0, y1 - y0};
}

std::vector<std::optional<Rect>> Floorplan::placed_rects() const {
  std::vector<std::optional<Rect>> rects(placements_.size());
  for (std::size_t i = 0; i < placements_.size(); ++i) {
    if (placements_[i]) rects[i] = rect_of(i);
  }
  return rects;
}

}  // namespace rlplan
