// Inter-chiplet connectivity.
//
// In a 2.5D system, chiplets communicate through interposer wires terminated
// by microbumps on each die. A net here is a (chiplet, chiplet, wire-count)
// triple: `wires` parallel point-to-point connections (e.g. a 768-bit
// GPU-to-switch link). Microbump assignment (src/bump) later decides *where*
// on each die boundary those wires land.
#pragma once

#include <cstddef>
#include <vector>

namespace rlplan {

/// A bundle of parallel wires between two chiplets.
struct InterChipletNet {
  std::size_t a = 0;  ///< endpoint chiplet index
  std::size_t b = 0;  ///< endpoint chiplet index (must differ from a)
  int wires = 1;      ///< number of parallel wires in the bundle

  bool operator==(const InterChipletNet& o) const = default;
};

/// Symmetric adjacency: total wire count between every chiplet pair.
/// adjacency[i][j] == adjacency[j][i]; diagonal is zero.
std::vector<std::vector<long>> build_adjacency(
    std::size_t num_chiplets, const std::vector<InterChipletNet>& nets);

/// Per-chiplet total connected wires (degree weighted by wire count).
std::vector<long> wire_degrees(std::size_t num_chiplets,
                               const std::vector<InterChipletNet>& nets);

/// True when every chiplet is reachable from chiplet 0 through nets.
/// (Disconnected systems are legal but often indicate a malformed instance.)
bool is_connected(std::size_t num_chiplets,
                  const std::vector<InterChipletNet>& nets);

}  // namespace rlplan
