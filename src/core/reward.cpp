#include "core/reward.h"

#include <cmath>
#include <stdexcept>

namespace rlplan {

RewardCalculator::RewardCalculator(RewardParams params) : params_(params) {
  if (params_.lambda < 0.0 || params_.mu < 0.0) {
    throw std::invalid_argument("RewardParams: weights must be non-negative");
  }
  if (params_.alpha < 1.0) {
    throw std::invalid_argument(
        "RewardParams: alpha must be >= 1 for a smooth penalty at T0");
  }
}

double RewardCalculator::thermal_penalty(double temperature_c) const {
  const double dt = temperature_c - params_.t0_celsius;
  const double overshoot = std::max(dt, 0.0);
  if (overshoot == 0.0 && dt < -30.0) {
    return 0.0;  // sigmoid underflow guard; exact value is ~0 anyway
  }
  const double sigmoid_denom = 1.0 + std::exp(-dt);
  return params_.mu * std::pow(overshoot, params_.alpha) / sigmoid_denom;
}

double RewardCalculator::reward(double wirelength_mm,
                                double temperature_c) const {
  return -params_.lambda * wirelength_mm - thermal_penalty(temperature_c);
}

}  // namespace rlplan
