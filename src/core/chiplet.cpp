#include "core/chiplet.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace rlplan {

ChipletSystem::ChipletSystem(std::string name, double interposer_width,
                             double interposer_height,
                             std::vector<Chiplet> chiplets,
                             std::vector<InterChipletNet> nets)
    : name_(std::move(name)),
      interposer_width_(interposer_width),
      interposer_height_(interposer_height),
      chiplets_(std::move(chiplets)),
      nets_(std::move(nets)) {}

double ChipletSystem::total_power() const {
  double p = 0.0;
  for (const auto& c : chiplets_) p += c.power;
  return p;
}

double ChipletSystem::total_chiplet_area() const {
  double a = 0.0;
  for (const auto& c : chiplets_) a += c.area();
  return a;
}

double ChipletSystem::utilization() const {
  const double interposer_area = interposer_width_ * interposer_height_;
  return interposer_area > 0.0 ? total_chiplet_area() / interposer_area : 0.0;
}

long ChipletSystem::total_wires() const {
  long w = 0;
  for (const auto& net : nets_) w += net.wires;
  return w;
}

void ChipletSystem::validate() const {
  if (interposer_width_ <= 0.0 || interposer_height_ <= 0.0) {
    throw std::invalid_argument("ChipletSystem '" + name_ +
                                "': interposer dimensions must be positive");
  }
  if (chiplets_.empty()) {
    throw std::invalid_argument("ChipletSystem '" + name_ +
                                "': no chiplets");
  }
  for (const auto& c : chiplets_) {
    if (c.width <= 0.0 || c.height <= 0.0) {
      throw std::invalid_argument("Chiplet '" + c.name +
                                  "': dimensions must be positive");
    }
    if (c.power < 0.0) {
      throw std::invalid_argument("Chiplet '" + c.name +
                                  "': power must be non-negative");
    }
    const double long_side = std::max(c.width, c.height);
    const double short_side = std::min(c.width, c.height);
    if (long_side > std::max(interposer_width_, interposer_height_) ||
        short_side > std::min(interposer_width_, interposer_height_)) {
      throw std::invalid_argument("Chiplet '" + c.name +
                                  "' does not fit on the interposer");
    }
  }
  for (const auto& net : nets_) {
    if (net.a >= chiplets_.size() || net.b >= chiplets_.size()) {
      throw std::invalid_argument("Net endpoint out of range in system '" +
                                  name_ + "'");
    }
    if (net.a == net.b) {
      throw std::invalid_argument("Self-loop net on chiplet " +
                                  chiplets_[net.a].name);
    }
    if (net.wires <= 0) {
      throw std::invalid_argument("Net with non-positive wire count");
    }
  }
  if (utilization() > 1.0) {
    throw std::invalid_argument("ChipletSystem '" + name_ +
                                "': chiplet area exceeds interposer area");
  }
}

std::vector<std::size_t> ChipletSystem::placement_order_by_area() const {
  std::vector<std::size_t> order(chiplets_.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t i, std::size_t j) {
                     return chiplets_[i].area() > chiplets_[j].area();
                   });
  return order;
}

}  // namespace rlplan
