// Shared-trunk policy/value network (paper Section II-B).
//
// "The policy network and the value network share the same feature encoding
// CNN layers and two separate fully connected layers are used to get the
// probability matrix and expected reward."
//
// Architecture (G = action grid, C = observation channels):
//   conv1 CxGxG -> c1 x G   x G    (3x3, stride 1, pad 1) + ReLU
//   conv2      -> c2 x G/2 x G/2   (3x3, stride 2, pad 1) + ReLU
//   conv3      -> c3 x G/4 x G/4   (3x3, stride 2, pad 1) + ReLU
//   flatten -> fc (shared) + ReLU
//   policy head: Linear(fc, G*G)   (logits over placement cells)
//   value  head: Linear(fc, 1)
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "nn/layers.h"
#include "nn/tensor.h"
#include "util/rng.h"

namespace rlplan::rl {

struct PolicyNetConfig {
  std::size_t channels_in = 6;
  std::size_t grid = 32;  ///< must be a multiple of 4
  std::size_t conv1 = 8;
  std::size_t conv2 = 16;
  std::size_t conv3 = 16;
  std::size_t fc = 128;
};

class PolicyValueNet {
 public:
  PolicyValueNet(PolicyNetConfig config, Rng& rng);

  struct Output {
    nn::Tensor logits;  ///< [batch, G*G]
    nn::Tensor value;   ///< [batch, 1]
  };

  /// states: [batch, C, G, G].
  Output forward(const nn::Tensor& states);

  /// Backpropagates both heads through the shared trunk, accumulating
  /// parameter gradients. Must follow a forward() with the same batch.
  void backward(const nn::Tensor& grad_logits, const nn::Tensor& grad_value);

  std::vector<nn::Parameter*> parameters();
  void zero_grad();

  const PolicyNetConfig& config() const { return config_; }
  std::size_t num_actions() const { return config_.grid * config_.grid; }

  void save(const std::string& path);
  void load(const std::string& path);

 private:
  PolicyNetConfig config_;
  nn::Sequential trunk_;
  nn::Linear policy_head_;
  nn::Linear value_head_;
};

}  // namespace rlplan::rl
