// TrainingSession — the resumable, scenario-driven training engine.
//
// Owns the full RL training lifecycle that used to be scattered across
// RlPlanner, PpoTrainer, and ad-hoc scripts: experience collection over one
// or many problem instances, PPO updates (through a PpoCore), versioned
// full-state checkpointing, and multi-scenario curriculum training. Both
// RlPlanner and tools/regress.cpp are thin shells over this class;
// tools/train.cpp exposes it directly (train/resume/eval subcommands, JSONL
// metrics).
//
// ## Lifecycle
//
//   tasks (name + system + thermal evaluator prototype)
//        |
//        v            num_envs==1: FloorplanEnv + replica-0 action stream
//   TrainingSession --+
//        |            num_envs >1: VecEnv (cloned evaluators, per-replica
//        |                         streams) + shared ThreadPool
//        v
//   train_epoch():  pick scenario (round-robin / sampled curriculum)
//                   -> parallel::collect_episodes (THE one pipeline)
//                   -> PpoCore::update (clipped-surrogate PPO + RND)
//                   -> per-scenario best-floorplan tracking
//        |
//        v
//   save_checkpoint() / load_checkpoint() at any epoch boundary
//
// ## Checkpoint format (RLPNNv2)
//
// A typed record stream (nn/serialize.h StateWriter). Sections, in order:
//
//   section    | records
//   -----------+------------------------------------------------------------
//   header     | version, grid, channels, num_envs, curriculum mode,
//              | trajectory-affecting PPO hyperparameters (validated on
//              | resume), num_tasks, per-task scenario names
//   net        | policy/value weights ("net.*"; warm-start readers stop here)
//   core       | update-RNG state, Adam moments + step count, reward-
//              | normalizer Welford state, intrinsic scale, RND block
//              | (target/predictor weights, predictor Adam, error Welford)
//   session    | epoch + env-step counters, curriculum RNG, per-task action
//              | RNG streams (serial or per replica), per-task best
//              | floorplan + metrics
//   end        | terminal marker (turns tail truncation into an error)
//
// Every float/double is stored as raw IEEE-754 bits and every RNG as its raw
// state, so `train(N)` and `train(k); save; load; train(N-k)` produce
// bit-identical parameters, statistics, and best floorplans — for serial and
// parallel collection alike (tests/session_test.cpp asserts exactly this).
// load_checkpoint() also reads v1 (RLPNNv1, weight-only) files: weights are
// restored, optimizer/normalizer/RNG state starts fresh.
//
// ## Curriculum
//
// With multiple tasks, one policy trains across all of them: kRoundRobin
// cycles scenarios epoch by epoch, kSampled draws the scenario per epoch
// from a dedicated curriculum RNG stream (util/rng.h seed contract). Every
// TrainStats is tagged with the scenario it trained on so mixed-scenario
// reward scales are never averaged together. Sequential warm-start
// fine-tuning onto a held-out scenario = a fresh single-task session +
// load_checkpoint(path, /*warm_start=*/true).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bump/bump_grid.h"
#include "core/chiplet.h"
#include "core/floorplan.h"
#include "core/reward.h"
#include "rl/env.h"
#include "rl/ppo.h"
#include "thermal/evaluator.h"
#include "util/rng.h"

namespace rlplan::parallel {
class ThreadPool;
class VecEnv;
}  // namespace rlplan::parallel

namespace rlplan::rl {

/// Scenario-selection policy when a session trains over multiple tasks.
enum class CurriculumMode {
  kRoundRobin,  ///< epoch e trains task e % num_tasks
  kSampled,     ///< task drawn per epoch from the curriculum RNG stream
};

/// One problem instance a session trains on.
struct SessionTask {
  std::string name;
  /// Must outlive the session at a stable address (floorplans returned by
  /// the session reference it).
  const ChipletSystem* system = nullptr;
  /// Evaluator prototype. Used directly when num_envs == 1; cloned per
  /// replica by VecEnv when num_envs > 1 (must support clone() then).
  std::unique_ptr<thermal::ThermalEvaluator> evaluator;
};

struct TrainingSessionConfig {
  EnvConfig env{};
  PolicyNetConfig net{};
  PpoConfig ppo{};
  RewardParams reward{};
  bump::BumpGridConfig bump{};
  /// Environment replicas per task; 1 = serial collection through the same
  /// unified pipeline. See RlPlannerConfig for the full semantics.
  std::size_t num_envs = 1;
  std::size_t num_threads = 0;  ///< 0 = min(num_envs, hardware)
  CurriculumMode curriculum = CurriculumMode::kRoundRobin;
  /// THE authoritative seed: every stream (net init, update shuffles, action
  /// sampling, RND, curriculum picks) derives from it — see util/rng.h.
  /// Overrides ppo.seed.
  std::uint64_t seed = 1;
  bool verbose = false;
  /// Cooperative deadline/cancellation, polled at epoch and collection-batch
  /// granularity. A stopped train_epoch() returns immediately with its stats
  /// tagged (stop_reason != kNone); completed state — weights, counters,
  /// bests — is whatever the finished epochs produced, and a checkpoint
  /// saved then resumes bit-exactly. Inert by default.
  robust::RunControl control{};
};

class TrainingSession {
 public:
  /// Builds envs/replicas for every task. Throws std::invalid_argument on an
  /// empty task list, a null system/evaluator, or (num_envs > 1) an
  /// evaluator that cannot be cloned.
  TrainingSession(TrainingSessionConfig config,
                  std::vector<SessionTask> tasks);
  ~TrainingSession();

  TrainingSession(const TrainingSession&) = delete;
  TrainingSession& operator=(const TrainingSession&) = delete;

  /// One collect + update cycle on the scenario the curriculum picks.
  /// The returned stats carry that scenario's name.
  TrainStats train_epoch();

  int epochs_completed() const { return epochs_completed_; }
  long total_env_steps() const { return total_env_steps_; }
  PpoCore& core() { return core_; }
  const TrainingSessionConfig& config() const { return config_; }

  std::size_t num_tasks() const { return tasks_.size(); }
  const SessionTask& task(std::size_t i) const { return tasks_.at(i); }

  /// Best complete (non-dead-end) floorplan sampled on task `i` so far.
  bool has_best(std::size_t i) const;
  const Floorplan& best_floorplan(std::size_t i) const;
  const EpisodeMetrics& best_metrics(std::size_t i) const;

  /// One greedy (argmax) episode on task `i`; updates that task's best when
  /// the greedy result improves on it. Consumes no RNG.
  EpisodeMetrics greedy_episode(std::size_t i);

  /// Scores an external complete floorplan with task `i`'s reward pipeline.
  EpisodeMetrics evaluate_floorplan(std::size_t i, const Floorplan& fp);

  /// Full-state RLPNNv2 checkpoint (format documented above). Deterministic
  /// content: no timestamps, so identical training histories produce
  /// byte-identical files.
  void save_checkpoint(const std::string& path) const;

  /// Restores a checkpoint. Default (resume) mode requires the session to
  /// match the checkpoint exactly — grid, channels, num_envs, task count
  /// and names, RND configuration — and restores every stream so training
  /// continues bit-exactly. With warm_start only the net weights are read
  /// (fine-tuning path: fresh optimizer/normalizer/RNG over new scenarios).
  /// v1 weight-only files load with warm_start only — they cannot satisfy a
  /// full resume, and resume mode rejects them rather than silently
  /// restarting optimizer/RNG state. Throws std::runtime_error on mismatch
  /// or corruption.
  void load_checkpoint(const std::string& path, bool warm_start = false);

  /// Updates config().control for an already-built session (deadline/cancel
  /// wiring from tools that construct the session before parsing budgets).
  void set_control(const robust::RunControl& control);

 private:
  struct TaskRuntime;

  std::size_t pick_task();
  FloorplanEnv& primary_env(std::size_t i);
  void consider_best(TaskRuntime& rt, const EpisodeMetrics& metrics,
                     const Floorplan& fp);

  TrainingSessionConfig config_;
  std::vector<SessionTask> tasks_;
  std::unique_ptr<parallel::ThreadPool> pool_;  ///< shared, num_envs > 1
  std::vector<std::unique_ptr<TaskRuntime>> runtimes_;
  PpoCore core_;
  RolloutBuffer buffer_;
  Rng curriculum_rng_;
  int epochs_completed_ = 0;
  long total_env_steps_ = 0;
};

/// Corrupt-checkpoint auto-resume: tries each candidate in order (callers
/// list newest first) until one passes full validation and loads, and
/// returns that path. Candidates that fail to load are counted
/// ("robust.ckpt_quarantined") and — when `quarantine` is set — renamed to
/// "<path>.corrupt" so later scans skip them. Missing files are skipped
/// silently (rotation histories have gaps). Throws
/// robust::CorruptArtifactError when no candidate loads.
std::string load_newest_valid_checkpoint(
    TrainingSession& session, const std::vector<std::string>& candidates,
    bool warm_start = false, bool quarantine = true);

}  // namespace rlplan::rl
