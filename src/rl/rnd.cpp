#include "rl/rnd.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <stdexcept>

namespace rlplan::rl {

nn::Sequential make_rnd_encoder(std::size_t channels_in, std::size_t grid,
                                const RndConfig& config, Rng& rng,
                                const std::string& name) {
  if (grid % 4 != 0) {
    throw std::invalid_argument("RND encoder: grid must be a multiple of 4");
  }
  const std::size_t g4 = grid / 4;
  nn::Sequential net;
  net.add(std::make_unique<nn::Conv2d>(channels_in, config.conv1, 3, 2, 1,
                                       rng, name + ".conv1"));
  net.add(std::make_unique<nn::ReLU>());
  net.add(std::make_unique<nn::Conv2d>(config.conv1, config.conv2, 3, 2, 1,
                                       rng, name + ".conv2"));
  net.add(std::make_unique<nn::ReLU>());
  net.add(std::make_unique<nn::Flatten>());
  net.add(std::make_unique<nn::Linear>(config.conv2 * g4 * g4,
                                       config.embed_dim, rng,
                                       name + ".proj"));
  return net;
}

RndBonus::RndBonus(std::size_t channels_in, std::size_t grid, RndConfig config,
                   Rng& rng)
    : config_(config),
      target_(make_rnd_encoder(channels_in, grid, config, rng, "rnd_target")),
      predictor_(
          make_rnd_encoder(channels_in, grid, config, rng, "rnd_pred")),
      optimizer_(predictor_.parameters(),
                 nn::AdamConfig{.lr = config.predictor_lr}) {}

nn::Tensor RndBonus::embed_target(const nn::Tensor& batch) {
  // The target is frozen: forward only, gradients never consumed.
  return target_.forward(batch);
}

double RndBonus::raw_error(const nn::Tensor& state) {
  nn::Tensor batch = state;
  batch.reshape({1, state.dim(0), state.dim(1), state.dim(2)});
  const nn::Tensor t = embed_target(batch);
  const nn::Tensor p = predictor_.forward(batch);
  double err = 0.0;
  for (std::size_t i = 0; i < t.numel(); ++i) {
    const double d = static_cast<double>(p[i]) - t[i];
    err += d * d;
  }
  return err / static_cast<double>(t.numel());
}

float RndBonus::bonus(const nn::Tensor& state) {
  const double err = raw_error(state);

  ++err_n_;
  const double delta = err - err_mean_;
  err_mean_ += delta / static_cast<double>(err_n_);
  err_m2_ += delta * (err - err_mean_);
  const double var =
      err_n_ > 1 ? err_m2_ / static_cast<double>(err_n_ - 1) : 0.0;
  const double stddev = std::sqrt(var);

  const double normalized = stddev > 1e-12 ? err / stddev : 0.0;
  return static_cast<float>(
      std::min(normalized, static_cast<double>(config_.bonus_clip)));
}

void RndBonus::save_state(nn::StateWriter& w,
                          const std::string& prefix) const {
  // const_cast: parameters() is non-const by Module convention but save only
  // reads the tensors.
  auto& self = const_cast<RndBonus&>(*this);
  nn::write_parameter_tensors(w, prefix + ".target",
                              self.target_.parameters());
  nn::write_parameter_tensors(w, prefix + ".predictor",
                              self.predictor_.parameters());
  optimizer_.save_state(w, prefix + ".adam");
  w.f64(prefix + ".err_mean", err_mean_);
  w.f64(prefix + ".err_m2", err_m2_);
  w.u64(prefix + ".err_n", err_n_);
}

void RndBonus::load_state(nn::StateReader& r, const std::string& prefix) {
  nn::read_parameter_tensors(r, prefix + ".target", target_.parameters());
  nn::read_parameter_tensors(r, prefix + ".predictor",
                             predictor_.parameters());
  optimizer_.load_state(r, prefix + ".adam");
  err_mean_ = r.f64(prefix + ".err_mean");
  err_m2_ = r.f64(prefix + ".err_m2");
  err_n_ = r.u64(prefix + ".err_n");
}

double RndBonus::train(const std::vector<const nn::Tensor*>& states,
                       Rng& rng) {
  if (states.empty()) return 0.0;
  const std::size_t c = states[0]->dim(0);
  const std::size_t g = states[0]->dim(1);

  std::vector<std::size_t> order(states.size());
  std::iota(order.begin(), order.end(), 0u);
  // Fisher-Yates with the caller's RNG for determinism.
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.uniform_int(std::uint64_t{i})]);
  }

  double total_err = 0.0;
  std::size_t total_elems = 0;
  for (std::size_t start = 0; start < order.size();
       start += config_.train_batch) {
    const std::size_t count =
        std::min(config_.train_batch, order.size() - start);
    nn::Tensor batch({count, c, g, g});
    for (std::size_t b = 0; b < count; ++b) {
      const nn::Tensor& s = *states[order[start + b]];
      std::copy(s.data().begin(), s.data().end(),
                batch.data().begin() +
                    static_cast<std::ptrdiff_t>(b * s.numel()));
    }
    const nn::Tensor t = embed_target(batch);
    const nn::Tensor p = predictor_.forward(batch);

    // MSE loss; d(loss)/dp = 2 (p - t) / numel.
    nn::Tensor grad(p.shape());
    const float scale = 2.0f / static_cast<float>(p.numel());
    for (std::size_t i = 0; i < p.numel(); ++i) {
      const float d = p[i] - t[i];
      grad[i] = scale * d;
      total_err += static_cast<double>(d) * d;
    }
    total_elems += p.numel();

    optimizer_.zero_grad();
    predictor_.backward(grad);
    optimizer_.step();
  }
  return total_elems > 0 ? total_err / static_cast<double>(total_elems) : 0.0;
}

}  // namespace rlplan::rl
