// RlPlanner — the top-level public API of the library.
//
// Wires together everything the paper's Fig. 1 shows: the placement
// environment, the PPO(+RND) agent, and the thermal-aware reward calculator
// (microbump assignment + injected thermal model), then trains for a given
// number of epochs or wall-clock budget and returns the best floorplan found.
// Training itself runs through the resumable TrainingSession engine
// (rl/session.h) — the planner is a convenience shell that adds thermal
// characterization, the epoch/time-budget loop, and ground-truth final
// scoring on top of a single-scenario session.
//
// The thermal backend is selectable: kFastModel (the paper's configuration —
// characterize once, evaluate cheaply every episode) or kGridSolver (ground
// truth in the loop, for ablations). Regardless of backend, the final best
// floorplan is re-evaluated with the ground-truth grid solver so reported
// temperatures are comparable across methods, as in Table I.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "bump/bump_grid.h"
#include "core/chiplet.h"
#include "core/floorplan.h"
#include "core/reward.h"
#include "rl/env.h"
#include "rl/ppo.h"
#include "thermal/characterize.h"
#include "thermal/evaluator.h"
#include "thermal/layer_stack.h"

namespace rlplan::rl {

enum class ThermalBackend {
  kFastModel,   ///< characterized LTI surrogate in the training loop
  kGridSolver,  ///< full grid solve per episode (slow; ablation only)
};

struct RlPlannerConfig {
  EnvConfig env{};
  PolicyNetConfig net{};
  PpoConfig ppo{};
  RewardParams reward{};
  bump::BumpGridConfig bump{};
  thermal::GridSolverConfig solver{};
  thermal::CharacterizationConfig characterization{};
  ThermalBackend backend = ThermalBackend::kFastModel;
  /// Parallel rollout collection (src/parallel/). With num_envs == 1 (the
  /// default) training runs the legacy single-environment loop, bit-for-bit
  /// identical to releases before the parallel subsystem existed. With
  /// num_envs > 1, experience is collected from that many environment
  /// replicas: one batched policy forward per step over all live replicas,
  /// environment stepping (including the episode-end thermal + microbump
  /// reward evaluation) fanned out over a thread pool, and per-replica
  /// action-RNG streams derived from `seed` so results are reproducible and
  /// independent of num_threads.
  std::size_t num_envs = 1;
  /// Worker threads for env stepping and batched forwards when
  /// num_envs > 1. 0 = min(num_envs, hardware threads). Changing
  /// num_threads never changes the result, only the wall clock.
  std::size_t num_threads = 0;
  int epochs = 100;            ///< training epochs (collect+update cycles)
  double time_budget_s = 0.0;  ///< stop early when exceeded (0 = none)
  int greedy_eval_every = 10;  ///< greedy-decode cadence (0 = never)
  /// THE authoritative seed: every stream the training engine consumes (net
  /// init, PPO update shuffles, per-replica action sampling, RND) derives
  /// from it — see the derivation table in util/rng.h. `ppo.seed` is
  /// overridden with this value.
  std::uint64_t seed = 1;
  bool verbose = false;
};

struct PlannerResult {
  std::optional<Floorplan> best;     ///< best placement found
  EpisodeMetrics best_metrics{};     ///< metrics under the training evaluator
  double final_wirelength_mm = 0.0;  ///< microbump wirelength of `best`
  double final_temperature_c = 0.0;  ///< ground-truth (grid solver) peak temp
  double final_reward = 0.0;         ///< reward at ground-truth temperature
  double characterization_s = 0.0;
  double train_s = 0.0;
  int epochs_run = 0;
  long env_steps = 0;
  std::vector<TrainStats> history;

  /// Environment-step throughput of training — the number the regression
  /// suite's `min_rl_steps_per_sec` floors gate on.
  double steps_per_second() const {
    return train_s > 0.0 ? static_cast<double>(env_steps) / train_s : 0.0;
  }
};

class RlPlanner {
 public:
  explicit RlPlanner(RlPlannerConfig config = {});

  const RlPlannerConfig& config() const { return config_; }

  /// Trains on `system` over `stack`, characterizing a fast model first when
  /// the backend requires one.
  PlannerResult plan(const ChipletSystem& system,
                     const thermal::LayerStack& stack);

  /// As plan(), but reuses a pre-characterized fast model (Table I workflow:
  /// one characterization shared across methods).
  PlannerResult plan_with_model(const ChipletSystem& system,
                                const thermal::LayerStack& stack,
                                thermal::FastThermalModel model);

 private:
  PlannerResult run(const ChipletSystem& system,
                    const thermal::LayerStack& stack,
                    std::unique_ptr<thermal::ThermalEvaluator> evaluator,
                    double characterization_s);

  RlPlannerConfig config_;
};

/// Deterministic first-fit placement (row-major scan of the action grid).
/// Fallback baseline and smoke-test utility; throws if a chiplet cannot be
/// placed.
Floorplan first_fit_floorplan(const ChipletSystem& system,
                              const EnvConfig& config);

}  // namespace rlplan::rl
