#include "rl/policy_net.h"

#include <memory>
#include <stdexcept>

#include "nn/serialize.h"

namespace rlplan::rl {

PolicyValueNet::PolicyValueNet(PolicyNetConfig config, Rng& rng)
    : config_(config),
      policy_head_(config.fc, config.grid * config.grid, rng, "policy_head"),
      value_head_(config.fc, 1, rng, "value_head") {
  if (config_.grid % 4 != 0) {
    throw std::invalid_argument(
        "PolicyNetConfig: grid must be a multiple of 4 (two stride-2 convs)");
  }
  const std::size_t g4 = config_.grid / 4;
  trunk_.add(std::make_unique<nn::Conv2d>(config_.channels_in, config_.conv1,
                                          3, 1, 1, rng, "conv1"));
  trunk_.add(std::make_unique<nn::ReLU>());
  trunk_.add(std::make_unique<nn::Conv2d>(config_.conv1, config_.conv2, 3, 2,
                                          1, rng, "conv2"));
  trunk_.add(std::make_unique<nn::ReLU>());
  trunk_.add(std::make_unique<nn::Conv2d>(config_.conv2, config_.conv3, 3, 2,
                                          1, rng, "conv3"));
  trunk_.add(std::make_unique<nn::ReLU>());
  trunk_.add(std::make_unique<nn::Flatten>());
  trunk_.add(std::make_unique<nn::Linear>(config_.conv3 * g4 * g4, config_.fc,
                                          rng, "fc_shared"));
  trunk_.add(std::make_unique<nn::ReLU>());
}

PolicyValueNet::Output PolicyValueNet::forward(const nn::Tensor& states) {
  if (states.rank() != 4 || states.dim(1) != config_.channels_in ||
      states.dim(2) != config_.grid || states.dim(3) != config_.grid) {
    throw std::invalid_argument("PolicyValueNet::forward: bad state shape");
  }
  const nn::Tensor features = trunk_.forward(states);
  Output out;
  out.logits = policy_head_.forward(features);
  out.value = value_head_.forward(features);
  return out;
}

void PolicyValueNet::backward(const nn::Tensor& grad_logits,
                              const nn::Tensor& grad_value) {
  nn::Tensor d_features = policy_head_.backward(grad_logits);
  d_features.add_(value_head_.backward(grad_value));
  trunk_.backward(d_features);
}

std::vector<nn::Parameter*> PolicyValueNet::parameters() {
  std::vector<nn::Parameter*> params = trunk_.parameters();
  for (nn::Parameter* p : policy_head_.parameters()) params.push_back(p);
  for (nn::Parameter* p : value_head_.parameters()) params.push_back(p);
  return params;
}

void PolicyValueNet::zero_grad() {
  for (nn::Parameter* p : parameters()) p->grad.fill(0.0f);
}

void PolicyValueNet::save(const std::string& path) {
  nn::save_parameters(parameters(), path);
}

void PolicyValueNet::load(const std::string& path) {
  nn::load_parameters(parameters(), path);
}

}  // namespace rlplan::rl
