#include "rl/distribution.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rlplan::rl {

namespace {
constexpr float kNegInf = -1e30f;
}

MaskedCategorical::MaskedCategorical(std::span<const float> logits,
                                     std::span<const std::uint8_t> mask) {
  if (logits.size() != mask.size() || logits.empty()) {
    throw std::invalid_argument("MaskedCategorical: size mismatch");
  }
  probs_.assign(logits.size(), 0.0f);
  log_probs_.assign(logits.size(), kNegInf);

  float max_logit = kNegInf;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    if (mask[i] != 0) max_logit = std::max(max_logit, logits[i]);
  }
  if (max_logit == kNegInf) {
    throw std::invalid_argument("MaskedCategorical: no feasible action");
  }

  double z = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    if (mask[i] == 0) continue;
    const double e = std::exp(static_cast<double>(logits[i] - max_logit));
    probs_[i] = static_cast<float>(e);
    z += e;
  }
  const auto log_z = static_cast<float>(std::log(z));
  for (std::size_t i = 0; i < logits.size(); ++i) {
    if (mask[i] == 0) continue;
    probs_[i] = static_cast<float>(probs_[i] / z);
    log_probs_[i] = logits[i] - max_logit - log_z;
  }
}

float MaskedCategorical::log_prob(std::size_t action) const {
  return log_probs_.at(action);
}

float MaskedCategorical::entropy() const {
  double h = 0.0;
  for (std::size_t i = 0; i < probs_.size(); ++i) {
    if (probs_[i] > 0.0f) {
      h -= static_cast<double>(probs_[i]) * log_probs_[i];
    }
  }
  return static_cast<float>(h);
}

std::size_t MaskedCategorical::sample(Rng& rng) const {
  const double u = rng.uniform();
  double cdf = 0.0;
  std::size_t last_feasible = 0;
  bool any = false;
  for (std::size_t i = 0; i < probs_.size(); ++i) {
    if (probs_[i] <= 0.0f) continue;
    last_feasible = i;
    any = true;
    cdf += probs_[i];
    if (u < cdf) return i;
  }
  (void)any;
  return last_feasible;  // floating-point tail: return final feasible action
}

std::size_t MaskedCategorical::argmax() const {
  return static_cast<std::size_t>(
      std::max_element(probs_.begin(), probs_.end()) - probs_.begin());
}

}  // namespace rlplan::rl
