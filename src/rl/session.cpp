#include "rl/session.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "nn/serialize.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/collector.h"
#include "parallel/thread_pool.h"
#include "parallel/vec_env.h"
#include "robust/fault.h"
#include "util/log.h"

namespace rlplan::rl {

namespace {

std::uint64_t f64_bits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double bits_f64(std::uint64_t bits) {
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string task_tag(std::size_t i) {
  return "task." + std::to_string(i);
}

}  // namespace

/// Per-task mutable training state: the replica(s), their action streams,
/// and the best floorplan sampled so far.
struct TrainingSession::TaskRuntime {
  std::optional<FloorplanEnv> env;  ///< num_envs == 1
  Rng action_rng{0};                ///< serial action stream (replica 0)
  std::optional<parallel::VecEnv> venv;  ///< num_envs > 1
  std::optional<Floorplan> best;
  EpisodeMetrics best_metrics{};
};

TrainingSession::TrainingSession(TrainingSessionConfig config,
                                 std::vector<SessionTask> tasks)
    : config_([&] {
        // One authoritative seed: ppo.seed is overridden so PpoCore's
        // net-init/update stream derives from the session seed, exactly as
        // documented in util/rng.h.
        config.ppo.seed = config.seed;
        config.net.grid = config.env.grid;
        config.net.channels_in = FloorplanEnv::kChannels;
        return config;
      }()),
      tasks_(std::move(tasks)),
      core_(config_.net, config_.ppo),
      curriculum_rng_(
          derive_named_stream_seed(config_.seed, substream::kCurriculum)) {
  if (tasks_.empty()) {
    throw std::invalid_argument("TrainingSession: no tasks");
  }
  if (config_.num_envs == 0) {
    throw std::invalid_argument("TrainingSession: num_envs must be >= 1");
  }
  for (const SessionTask& t : tasks_) {
    if (t.system == nullptr || t.evaluator == nullptr) {
      throw std::invalid_argument(
          "TrainingSession: task '" + t.name +
          "' is missing its system or evaluator");
    }
  }

  if (config_.num_envs > 1) {
    const std::size_t threads =
        config_.num_threads > 0
            ? config_.num_threads
            : std::min(config_.num_envs,
                       parallel::ThreadPool::hardware_threads());
    pool_ = std::make_unique<parallel::ThreadPool>(threads);
  }

  runtimes_.reserve(tasks_.size());
  for (std::size_t ti = 0; ti < tasks_.size(); ++ti) {
    SessionTask& t = tasks_[ti];
    // Per-task base seed (util/rng.h): task 0 uses the master seed directly
    // (single-scenario sessions match RlPlanner / standalone PpoTrainer
    // streams); later tasks derive independent bases so curriculum tasks
    // never replay each other's action sequences.
    const std::uint64_t task_seed =
        ti == 0 ? config_.seed
                : derive_named_stream_seed(config_.seed,
                                           substream::kTaskBase + ti);
    auto rt = std::make_unique<TaskRuntime>();
    if (config_.num_envs == 1) {
      rt->env.emplace(*t.system, *t.evaluator,
                      RewardCalculator(config_.reward),
                      bump::BumpAssigner(config_.bump), config_.env);
      rt->action_rng = Rng(derive_substream_seed(task_seed, 0));
    } else {
      rt->venv.emplace(*t.system, *t.evaluator,
                       RewardCalculator(config_.reward),
                       bump::BumpAssigner(config_.bump), config_.env,
                       config_.num_envs, task_seed);
    }
    runtimes_.push_back(std::move(rt));
  }
}

TrainingSession::~TrainingSession() = default;

FloorplanEnv& TrainingSession::primary_env(std::size_t i) {
  TaskRuntime& rt = *runtimes_.at(i);
  return rt.env ? *rt.env : rt.venv->env(0);
}

std::size_t TrainingSession::pick_task() {
  if (tasks_.size() == 1) return 0;
  if (config_.curriculum == CurriculumMode::kSampled) {
    return curriculum_rng_.uniform_int(
        static_cast<std::uint64_t>(tasks_.size()));
  }
  return static_cast<std::size_t>(epochs_completed_) % tasks_.size();
}

void TrainingSession::consider_best(TaskRuntime& rt,
                                    const EpisodeMetrics& metrics,
                                    const Floorplan& fp) {
  if (!metrics.valid) return;
  if (!rt.best || metrics.reward > rt.best_metrics.reward) {
    rt.best = fp;
    rt.best_metrics = metrics;
  }
}

TrainStats TrainingSession::train_epoch() {
  // Epoch-granularity stop: return before consuming any stream (curriculum
  // pick included), so a stopped session checkpoints exactly the state of
  // its last completed epoch.
  if (config_.control.active() && config_.control.stop_requested()) {
    TrainStats stats;
    stats.stop_reason = config_.control.stop_reason();
    RLPLAN_COUNTER_INC("robust.degraded");
    return stats;
  }
  // The span tag is the absolute epoch index so curriculum phases line up
  // in the trace timeline; per-scenario attribution rides on the counter.
  RLPLAN_TRACE_SPAN("rl.epoch", static_cast<std::int64_t>(epochs_completed_));
  // Snapshot every checkpointed stream this epoch consumes. A cancel lands
  // mid-collection, and the abandoned partial epoch must not leak into the
  // checkpoint: rewinding these makes the stopped state identical to the
  // last completed epoch, so resume replays the interrupted epoch bit-exactly
  // against an uninterrupted run. (Best-so-far is deliberately NOT rewound —
  // it is a monotone max over the same replayed episode stream, so keeping
  // partial-epoch discoveries is both safe and what "best-so-far" means.)
  const auto curriculum_state = curriculum_rng_.state();
  const std::size_t ti = pick_task();
  TaskRuntime& rt = *runtimes_[ti];
  const auto action_rng_state = rt.action_rng.state();
  std::vector<std::array<std::uint64_t, 4>> venv_rng_states;
  if (rt.venv) {
    venv_rng_states.reserve(config_.num_envs);
    for (std::size_t j = 0; j < config_.num_envs; ++j) {
      venv_rng_states.push_back(rt.venv->rng(j).state());
    }
  }
  const long steps_before = total_env_steps_;
  const PpoCore::RewardNormState rew_before = core_.reward_norm_state();

  // The scoped collector also installs the pool as the nn batch executor, so
  // the PPO minibatch forwards inside run_ppo_epoch fan over the workers
  // too; construction per epoch keeps executor install/restore strictly
  // LIFO across tasks.
  std::optional<parallel::ParallelRolloutCollector> collector;
  if (rt.venv) collector.emplace(*rt.venv, *pool_);

  TrainStats stats = run_ppo_epoch(
      core_, collector ? &*collector : nullptr, rt.env ? &*rt.env : nullptr,
      &rt.action_rng, buffer_, total_env_steps_,
      [&](std::size_t env_index, const StepOutcome& outcome) {
        if (!outcome.dead_end) {
          FloorplanEnv& env = rt.env ? *rt.env : rt.venv->env(env_index);
          consider_best(rt, env.last_metrics(), env.floorplan());
        }
      },
      config_.control);
  stats.scenario = tasks_[ti].name;
  // A cancelled epoch did no update (run_ppo_epoch skips it) — it is a
  // partial epoch on the way out, not a completed one. Rewind the streams it
  // consumed so the checkpoint is the last-completed-epoch state.
  if (stats.stop_reason == robust::StopReason::kCancelled) {
    curriculum_rng_.set_state(curriculum_state);
    rt.action_rng.set_state(action_rng_state);
    for (std::size_t j = 0; j < venv_rng_states.size(); ++j) {
      rt.venv->rng(j).set_state(venv_rng_states[j]);
    }
    total_env_steps_ = steps_before;
    core_.restore_reward_norm(rew_before);
    return stats;
  }
  if (obs::metrics_enabled()) {
    // Dynamic name => registered through the registry, not the static-cache
    // macro (one mutex-guarded lookup per epoch, far off the hot path).
    obs::MetricsRegistry::instance()
        .counter("rl.epochs." + stats.scenario)
        .add(1);
  }
  ++epochs_completed_;

  if (config_.verbose) {
    RLPLAN_INFO << "epoch " << (epochs_completed_ - 1) << " ["
                << stats.scenario << "]: mean_reward=" << stats.mean_reward
                << " best=" << stats.best_reward
                << " entropy=" << stats.entropy
                << " dead_ends=" << stats.dead_ends;
  }
  return stats;
}

bool TrainingSession::has_best(std::size_t i) const {
  return runtimes_.at(i)->best.has_value();
}

const Floorplan& TrainingSession::best_floorplan(std::size_t i) const {
  const TaskRuntime& rt = *runtimes_.at(i);
  if (!rt.best) {
    throw std::logic_error("TrainingSession: no complete episode on task '" +
                           tasks_[i].name + "' yet");
  }
  return *rt.best;
}

const EpisodeMetrics& TrainingSession::best_metrics(std::size_t i) const {
  return runtimes_.at(i)->best_metrics;
}

EpisodeMetrics TrainingSession::greedy_episode(std::size_t i) {
  FloorplanEnv& env = primary_env(i);
  const EpisodeMetrics metrics = run_greedy_episode(env, core_.net());
  if (metrics.valid) {
    consider_best(*runtimes_[i], metrics, env.floorplan());
  }
  return metrics;
}

EpisodeMetrics TrainingSession::evaluate_floorplan(std::size_t i,
                                                   const Floorplan& fp) {
  return primary_env(i).evaluate_floorplan(fp);
}

void TrainingSession::set_control(const robust::RunControl& control) {
  config_.control = control;
}

// --- Checkpointing -----------------------------------------------------------

void TrainingSession::save_checkpoint(const std::string& path) const {
  // Write-then-rename: a crash mid-save must never destroy the previous
  // checkpoint (rename over the target is atomic on POSIX), especially when
  // the target is the very file this session resumed from.
  // Failures throw robust::TransientIoError (callers may retry; the "ckpt_write"
  // chaos site injects exactly that class before any byte is written).
  if (robust::fault_point("ckpt_write")) {
    throw robust::TransientIoError(path + ": injected ckpt_write fault");
  }
  const std::string tmp_path = path + ".tmp";
  std::ofstream os(tmp_path, std::ios::binary | std::ios::trunc);
  if (!os) {
    throw robust::TransientIoError("TrainingSession: cannot open " + tmp_path);
  }
  nn::StateWriter w(os);

  // Header.
  w.u64("version", 2);
  w.u64("grid", config_.net.grid);
  w.u64("channels", config_.net.channels_in);
  w.u64("num_envs", config_.num_envs);
  w.u64("curriculum_mode", static_cast<std::uint64_t>(config_.curriculum));
  // Trajectory-affecting PPO hyperparameters: a resume with different
  // values would silently diverge from the advertised bit-exact
  // continuation, so load_checkpoint validates them (warm start does not).
  {
    const PpoConfig& p = config_.ppo;
    w.u64("ppo.episodes_per_update", static_cast<std::uint64_t>(
                                         static_cast<std::int64_t>(
                                             p.episodes_per_update)));
    w.u64("ppo.update_epochs", static_cast<std::uint64_t>(
                                   static_cast<std::int64_t>(
                                       p.update_epochs)));
    w.u64("ppo.minibatch", p.minibatch);
    w.f32("ppo.clip", p.clip);
    w.f32("ppo.vf_coef", p.vf_coef);
    w.f32("ppo.ent_coef", p.ent_coef);
    w.f32("ppo.max_grad_norm", p.max_grad_norm);
    w.f32("ppo.gamma", p.gae.gamma);
    w.f32("ppo.lam", p.gae.lam);
    w.f32("ppo.lr", p.adam.lr);
    w.f32("ppo.beta1", p.adam.beta1);
    w.f32("ppo.beta2", p.adam.beta2);
    w.f32("ppo.eps", p.adam.eps);
    w.f32("ppo.weight_decay", p.adam.weight_decay);
    w.f32("ppo.intrinsic_coef", p.intrinsic_coef);
    w.f32("ppo.intrinsic_decay", p.intrinsic_decay);
    w.u64("ppo.normalize_rewards", p.normalize_rewards ? 1 : 0);
    w.f32("ppo.rnd_predictor_lr", p.rnd.predictor_lr);
    w.f32("ppo.rnd_bonus_clip", p.rnd.bonus_clip);
    w.u64("ppo.rnd_train_batch", p.rnd.train_batch);
  }
  w.u64("num_tasks", tasks_.size());
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    w.str(task_tag(i) + ".name", tasks_[i].name);
  }

  // Net weights + full core state.
  core_.save_state(w);

  // Session state.
  w.u64("session.epochs_completed",
        static_cast<std::uint64_t>(epochs_completed_));
  w.u64("session.total_env_steps",
        static_cast<std::uint64_t>(total_env_steps_));
  w.u64vec("session.curriculum_rng", curriculum_rng_.state());
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    const TaskRuntime& rt = *runtimes_[i];
    const std::string tag = task_tag(i);
    if (rt.env) {
      w.u64vec(tag + ".action_rng", rt.action_rng.state());
    } else {
      for (std::size_t j = 0; j < config_.num_envs; ++j) {
        w.u64vec(tag + ".rng." + std::to_string(j), rt.venv->rng(j).state());
      }
    }
    w.u64(tag + ".best_present", rt.best ? 1 : 0);
    if (rt.best) {
      // Placements flattened as [placed, x bits, y bits, rotated] per
      // chiplet; doubles as raw IEEE bits for exact round-trip.
      std::vector<std::uint64_t> flat;
      flat.reserve(rt.best->num_chiplets() * 4);
      for (std::size_t k = 0; k < rt.best->num_chiplets(); ++k) {
        const auto& p = rt.best->placement(k);
        flat.push_back(p.has_value() ? 1 : 0);
        flat.push_back(p ? f64_bits(p->position.x) : 0);
        flat.push_back(p ? f64_bits(p->position.y) : 0);
        flat.push_back(p && p->rotated ? 1 : 0);
      }
      w.u64vec(tag + ".best_placements", flat);
      w.f64(tag + ".best_wirelength_mm", rt.best_metrics.wirelength_mm);
      w.f64(tag + ".best_temperature_c", rt.best_metrics.temperature_c);
      w.f64(tag + ".best_reward", rt.best_metrics.reward);
    }
  }
  w.finish();
  os.close();
  if (!os) {
    std::remove(tmp_path.c_str());
    throw robust::TransientIoError("TrainingSession: write failed: " +
                                   tmp_path);
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    throw robust::TransientIoError("TrainingSession: cannot rename " +
                                   tmp_path + " to " + path);
  }
}

void TrainingSession::load_checkpoint(const std::string& path,
                                      bool warm_start) {
  // v1 files carry weights only, so they can never satisfy a full resume;
  // requiring warm_start makes the API fail-safe instead of silently
  // restarting optimizer/normalizer/RNG state under a resume banner.
  if (nn::checkpoint_file_version(path) == 1) {
    if (!warm_start) {
      throw std::runtime_error(
          "checkpoint: " + path + " is a v1 weight-only file; full-state "
          "resume is impossible — load it with warm_start=true to restore "
          "the weights only");
    }
    nn::load_parameters(core_.net().parameters(), path);
    return;
  }

  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw std::runtime_error("TrainingSession: cannot open " + path);
  }
  nn::StateReader r(is);

  // Header. Architecture must match in every mode (the weights below are
  // meaningless otherwise); session shape only for full resume.
  const std::uint64_t version = r.u64("version");
  if (version != 2) {
    throw std::runtime_error("checkpoint: unsupported version " +
                             std::to_string(version));
  }
  const std::uint64_t grid = r.u64("grid");
  const std::uint64_t channels = r.u64("channels");
  if (grid != config_.net.grid || channels != config_.net.channels_in) {
    throw std::runtime_error(
        "checkpoint: network architecture mismatch (grid/channels)");
  }
  const std::uint64_t num_envs = r.u64("num_envs");
  const std::uint64_t curriculum_mode = r.u64("curriculum_mode");
  // PPO hyperparameters: always read (the record stream is sequential),
  // validated only on full resume.
  std::vector<std::string> ppo_mismatches;
  const auto check_u64 = [&](const char* name, std::uint64_t expect) {
    if (r.u64(name) != expect && !warm_start) {
      ppo_mismatches.emplace_back(name);
    }
  };
  const auto check_f32 = [&](const char* name, float expect) {
    if (r.f32(name) != expect && !warm_start) {
      ppo_mismatches.emplace_back(name);
    }
  };
  {
    const PpoConfig& p = config_.ppo;
    check_u64("ppo.episodes_per_update",
              static_cast<std::uint64_t>(
                  static_cast<std::int64_t>(p.episodes_per_update)));
    check_u64("ppo.update_epochs",
              static_cast<std::uint64_t>(
                  static_cast<std::int64_t>(p.update_epochs)));
    check_u64("ppo.minibatch", p.minibatch);
    check_f32("ppo.clip", p.clip);
    check_f32("ppo.vf_coef", p.vf_coef);
    check_f32("ppo.ent_coef", p.ent_coef);
    check_f32("ppo.max_grad_norm", p.max_grad_norm);
    check_f32("ppo.gamma", p.gae.gamma);
    check_f32("ppo.lam", p.gae.lam);
    check_f32("ppo.lr", p.adam.lr);
    check_f32("ppo.beta1", p.adam.beta1);
    check_f32("ppo.beta2", p.adam.beta2);
    check_f32("ppo.eps", p.adam.eps);
    check_f32("ppo.weight_decay", p.adam.weight_decay);
    check_f32("ppo.intrinsic_coef", p.intrinsic_coef);
    check_f32("ppo.intrinsic_decay", p.intrinsic_decay);
    check_u64("ppo.normalize_rewards", p.normalize_rewards ? 1 : 0);
    check_f32("ppo.rnd_predictor_lr", p.rnd.predictor_lr);
    check_f32("ppo.rnd_bonus_clip", p.rnd.bonus_clip);
    check_u64("ppo.rnd_train_batch", p.rnd.train_batch);
  }
  if (!ppo_mismatches.empty()) {
    std::string joined;
    for (const std::string& m : ppo_mismatches) {
      if (!joined.empty()) joined += ", ";
      joined += m;
    }
    throw std::runtime_error(
        "checkpoint: PPO hyperparameter mismatch on resume (" + joined +
        "); pass the same training configuration, or load with "
        "warm_start=true");
  }
  const std::uint64_t num_tasks = r.u64("num_tasks");
  // Cap before allocating (like the serialize.cpp readers): corruption must
  // surface as the documented runtime_error, not bad_alloc.
  if (num_tasks > parallel::VecEnv::kMaxEnvs) {
    throw std::runtime_error("checkpoint: corrupt task count");
  }
  std::vector<std::string> names(num_tasks);
  for (std::size_t i = 0; i < num_tasks; ++i) {
    names[i] = r.str(task_tag(i) + ".name");
  }

  if (warm_start) {
    // Weights only; the remaining record stream is intentionally unread.
    core_.load_net_only(r);
    return;
  }

  if (num_envs != config_.num_envs) {
    throw std::runtime_error("checkpoint: num_envs mismatch (checkpoint " +
                             std::to_string(num_envs) + ", session " +
                             std::to_string(config_.num_envs) + ")");
  }
  if (curriculum_mode != static_cast<std::uint64_t>(config_.curriculum)) {
    throw std::runtime_error("checkpoint: curriculum mode mismatch");
  }
  if (num_tasks != tasks_.size()) {
    throw std::runtime_error("checkpoint: task count mismatch");
  }
  for (std::size_t i = 0; i < num_tasks; ++i) {
    if (names[i] != tasks_[i].name) {
      throw std::runtime_error("checkpoint: task " + std::to_string(i) +
                               " is '" + names[i] + "', session has '" +
                               tasks_[i].name + "'");
    }
  }

  core_.load_state(r);

  epochs_completed_ = static_cast<int>(r.u64("session.epochs_completed"));
  total_env_steps_ = static_cast<long>(r.u64("session.total_env_steps"));
  const auto cur_state = r.u64vec("session.curriculum_rng");
  if (cur_state.size() != 4) {
    throw std::runtime_error("checkpoint: bad curriculum RNG state");
  }
  curriculum_rng_.set_state(
      {cur_state[0], cur_state[1], cur_state[2], cur_state[3]});

  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    TaskRuntime& rt = *runtimes_[i];
    const std::string tag = task_tag(i);
    const auto restore_rng = [&](Rng& rng, const std::string& name) {
      const auto s = r.u64vec(name);
      if (s.size() != 4) {
        throw std::runtime_error("checkpoint: bad RNG state in '" + name +
                                 "'");
      }
      rng.set_state({s[0], s[1], s[2], s[3]});
    };
    if (rt.env) {
      restore_rng(rt.action_rng, tag + ".action_rng");
    } else {
      for (std::size_t j = 0; j < config_.num_envs; ++j) {
        restore_rng(rt.venv->rng(j), tag + ".rng." + std::to_string(j));
      }
    }
    if (r.u64(tag + ".best_present") != 0) {
      const auto flat = r.u64vec(tag + ".best_placements");
      const std::size_t n = tasks_[i].system->num_chiplets();
      if (flat.size() != n * 4) {
        throw std::runtime_error("checkpoint: best-floorplan size mismatch "
                                 "for task '" + tasks_[i].name + "'");
      }
      Floorplan fp(*tasks_[i].system);
      for (std::size_t k = 0; k < n; ++k) {
        if (flat[k * 4] != 0) {
          fp.place(k, {bits_f64(flat[k * 4 + 1]), bits_f64(flat[k * 4 + 2])},
                   flat[k * 4 + 3] != 0);
        }
      }
      rt.best = std::move(fp);
      rt.best_metrics.valid = true;
      rt.best_metrics.wirelength_mm = r.f64(tag + ".best_wirelength_mm");
      rt.best_metrics.temperature_c = r.f64(tag + ".best_temperature_c");
      rt.best_metrics.reward = r.f64(tag + ".best_reward");
    } else {
      rt.best.reset();
      rt.best_metrics = {};
    }
  }
  r.finish();
}

std::string load_newest_valid_checkpoint(
    TrainingSession& session, const std::vector<std::string>& candidates,
    bool warm_start, bool quarantine) {
  std::vector<std::string> quarantined;
  for (const std::string& path : candidates) {
    {
      // Missing candidates are normal (rotation histories have gaps);
      // only files that exist but fail to load count as corruption.
      std::ifstream probe(path, std::ios::binary);
      if (!probe) continue;
    }
    try {
      session.load_checkpoint(path, warm_start);
      return path;
    } catch (const std::exception& e) {
      RLPLAN_COUNTER_INC("robust.ckpt_quarantined");
      RLPLAN_WARN << "checkpoint " << path
                  << " failed to load, trying next candidate: " << e.what();
      quarantined.push_back(path);
      if (quarantine) {
        const std::string bad = path + ".corrupt";
        if (std::rename(path.c_str(), bad.c_str()) != 0) {
          RLPLAN_WARN << "could not quarantine " << path << " to " << bad;
        }
      }
    }
  }
  std::string msg = "no valid checkpoint among " +
                    std::to_string(candidates.size()) + " candidate(s)";
  if (!quarantined.empty()) {
    msg += "; failed:";
    for (const std::string& q : quarantined) msg += " " + q;
  }
  throw robust::CorruptArtifactError(msg);
}

}  // namespace rlplan::rl
