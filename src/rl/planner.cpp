#include "rl/planner.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "rl/session.h"
#include "thermal/incremental.h"
#include "util/log.h"
#include "util/timer.h"

namespace rlplan::rl {

RlPlanner::RlPlanner(RlPlannerConfig config) : config_(std::move(config)) {}

PlannerResult RlPlanner::plan(const ChipletSystem& system,
                              const thermal::LayerStack& stack) {
  if (config_.backend == ThermalBackend::kGridSolver) {
    return run(system, stack,
               std::make_unique<thermal::GridSolverEvaluator>(stack,
                                                              config_.solver),
               0.0);
  }
  const Timer timer;
  thermal::ThermalCharacterizer characterizer(stack,
                                              config_.characterization);
  thermal::FastThermalModel model = characterizer.characterize(
      system.interposer_width(), system.interposer_height());
  const double charac_s = timer.seconds();
  // The incremental evaluator caches pairwise couplings as the env places
  // dies step by step; it produces the same temperatures as the batch
  // FastModelEvaluator.
  return run(system, stack,
             std::make_unique<thermal::IncrementalFastModelEvaluator>(
                 std::move(model)),
             charac_s);
}

PlannerResult RlPlanner::plan_with_model(const ChipletSystem& system,
                                         const thermal::LayerStack& stack,
                                         thermal::FastThermalModel model) {
  return run(system, stack,
             std::make_unique<thermal::IncrementalFastModelEvaluator>(
                 std::move(model)),
             0.0);
}

PlannerResult RlPlanner::run(const ChipletSystem& system,
                             const thermal::LayerStack& stack,
                             std::unique_ptr<thermal::ThermalEvaluator>
                                 evaluator,
                             double characterization_s) {
  PlannerResult result;
  result.characterization_s = characterization_s;

  // Single-scenario session over the caller's system; num_envs == 1 runs
  // the same unified collection pipeline serially, > 1 fans replicas over
  // the session's thread pool (each replica gets a cloned evaluator).
  TrainingSessionConfig sc;
  sc.env = config_.env;
  sc.net = config_.net;
  sc.ppo = config_.ppo;
  sc.reward = config_.reward;
  sc.bump = config_.bump;
  sc.num_envs = config_.num_envs;
  sc.num_threads = config_.num_threads;
  sc.seed = config_.seed;
  sc.verbose = config_.verbose;

  std::vector<SessionTask> tasks;
  tasks.push_back({system.name(), &system, std::move(evaluator)});
  TrainingSession session(sc, std::move(tasks));
  if (config_.verbose && config_.num_envs > 1) {
    RLPLAN_INFO << "parallel rollouts: " << config_.num_envs << " envs";
  }

  const Timer timer;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    if (config_.time_budget_s > 0.0 &&
        timer.seconds() >= config_.time_budget_s) {
      break;
    }
    TrainStats stats = session.train_epoch();
    ++result.epochs_run;
    if (config_.greedy_eval_every > 0 &&
        (epoch + 1) % config_.greedy_eval_every == 0) {
      session.greedy_episode(0);
    }
    result.history.push_back(std::move(stats));
  }
  // Final greedy decode often beats the best stochastic sample.
  session.greedy_episode(0);
  result.train_s = timer.seconds();
  result.env_steps = session.total_env_steps();

  if (!session.has_best(0)) {
    RLPLAN_WARN << "no complete episode sampled; falling back to first-fit";
    result.best = first_fit_floorplan(system, config_.env);
    result.best_metrics = session.evaluate_floorplan(0, *result.best);
  } else {
    result.best = session.best_floorplan(0);
    result.best_metrics = session.best_metrics(0);
  }

  // Ground-truth final evaluation (comparable across methods, as Table I
  // reports HotSpot temperatures for every configuration).
  thermal::GridThermalSolver truth(stack, config_.solver);
  result.final_temperature_c = truth.solve(system, *result.best).max_temp_c;
  result.final_wirelength_mm =
      bump::BumpAssigner(config_.bump).assign(system, *result.best).total_mm;
  result.final_reward = RewardCalculator(config_.reward)
                            .reward(result.final_wirelength_mm,
                                    result.final_temperature_c);
  return result;
}

Floorplan first_fit_floorplan(const ChipletSystem& system,
                              const EnvConfig& config) {
  Floorplan fp(system);
  const std::size_t g = config.grid;
  const auto order = config.order.empty() ? system.placement_order_by_area()
                                          : config.order;
  for (const std::size_t chiplet : order) {
    bool placed = false;
    for (std::size_t a = 0; a < g * g && !placed; ++a) {
      const std::size_t row = a / g;
      const std::size_t col = a % g;
      const Point p{system.interposer_width() * static_cast<double>(col) /
                        static_cast<double>(g),
                    system.interposer_height() * static_cast<double>(row) /
                        static_cast<double>(g)};
      if (fp.can_place(chiplet, p, false, config.spacing_mm)) {
        fp.place(chiplet, p, false);
        placed = true;
      }
    }
    if (!placed) {
      throw std::runtime_error("first_fit_floorplan: chiplet " +
                               system.chiplet(chiplet).name +
                               " does not fit");
    }
  }
  return fp;
}

}  // namespace rlplan::rl
