#include "rl/planner.h"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "parallel/collector.h"
#include "parallel/thread_pool.h"
#include "parallel/vec_env.h"
#include "thermal/incremental.h"
#include "util/log.h"
#include "util/timer.h"

namespace rlplan::rl {

RlPlanner::RlPlanner(RlPlannerConfig config) : config_(std::move(config)) {}

PlannerResult RlPlanner::plan(const ChipletSystem& system,
                              const thermal::LayerStack& stack) {
  if (config_.backend == ThermalBackend::kGridSolver) {
    thermal::GridSolverEvaluator evaluator(stack, config_.solver);
    return run(system, stack, evaluator, 0.0);
  }
  const Timer timer;
  thermal::ThermalCharacterizer characterizer(stack,
                                              config_.characterization);
  thermal::FastThermalModel model = characterizer.characterize(
      system.interposer_width(), system.interposer_height());
  const double charac_s = timer.seconds();
  // The incremental evaluator caches pairwise couplings as the env places
  // dies step by step; it produces the same temperatures as the batch
  // FastModelEvaluator.
  thermal::IncrementalFastModelEvaluator evaluator(std::move(model));
  return run(system, stack, evaluator, charac_s);
}

PlannerResult RlPlanner::plan_with_model(const ChipletSystem& system,
                                         const thermal::LayerStack& stack,
                                         thermal::FastThermalModel model) {
  thermal::IncrementalFastModelEvaluator evaluator(std::move(model));
  return run(system, stack, evaluator, 0.0);
}

PlannerResult RlPlanner::run(const ChipletSystem& system,
                             const thermal::LayerStack& stack,
                             thermal::ThermalEvaluator& evaluator,
                             double characterization_s) {
  PlannerResult result;
  result.characterization_s = characterization_s;

  FloorplanEnv env(system, evaluator, RewardCalculator(config_.reward),
                   bump::BumpAssigner(config_.bump), config_.env);

  // num_envs == 1 keeps the legacy single-env loop; > 1 trains through the
  // parallel rollout subsystem (each replica gets a cloned evaluator).
  std::optional<parallel::ThreadPool> pool;
  std::optional<parallel::VecEnv> venv;
  std::optional<parallel::ParallelRolloutCollector> collector;
  std::optional<PpoTrainer> trainer_storage;
  if (config_.num_envs > 1) {
    const std::size_t threads =
        config_.num_threads > 0
            ? config_.num_threads
            : std::min(config_.num_envs,
                       parallel::ThreadPool::hardware_threads());
    pool.emplace(threads);
    venv.emplace(system, evaluator, RewardCalculator(config_.reward),
                 bump::BumpAssigner(config_.bump), config_.env,
                 config_.num_envs, config_.seed);
    collector.emplace(*venv, *pool);
    trainer_storage.emplace(*collector, config_.net, config_.ppo);
    if (config_.verbose) {
      RLPLAN_INFO << "parallel rollouts: " << config_.num_envs << " envs, "
                  << threads << " threads";
    }
  } else {
    trainer_storage.emplace(env, config_.net, config_.ppo);
  }
  PpoTrainer& trainer = *trainer_storage;

  const Timer timer;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    if (config_.time_budget_s > 0.0 &&
        timer.seconds() >= config_.time_budget_s) {
      break;
    }
    TrainStats stats = trainer.train_epoch();
    ++result.epochs_run;
    if (config_.greedy_eval_every > 0 &&
        (epoch + 1) % config_.greedy_eval_every == 0) {
      trainer.greedy_episode();
    }
    if (config_.verbose) {
      RLPLAN_INFO << "epoch " << epoch << ": mean_reward="
                  << stats.mean_reward << " best=" << stats.best_reward
                  << " entropy=" << stats.entropy
                  << " dead_ends=" << stats.dead_ends;
    }
    result.history.push_back(stats);
  }
  // Final greedy decode often beats the best stochastic sample.
  trainer.greedy_episode();
  result.train_s = timer.seconds();
  result.env_steps = trainer.total_env_steps();

  if (!trainer.has_best()) {
    RLPLAN_WARN << "no complete episode sampled; falling back to first-fit";
    result.best = first_fit_floorplan(system, config_.env);
    result.best_metrics = env.evaluate_floorplan(*result.best);
  } else {
    result.best = trainer.best_floorplan();
    result.best_metrics = trainer.best_metrics();
  }

  // Ground-truth final evaluation (comparable across methods, as Table I
  // reports HotSpot temperatures for every configuration).
  thermal::GridThermalSolver truth(stack, config_.solver);
  result.final_temperature_c = truth.solve(system, *result.best).max_temp_c;
  result.final_wirelength_mm =
      bump::BumpAssigner(config_.bump).assign(system, *result.best).total_mm;
  result.final_reward = RewardCalculator(config_.reward)
                            .reward(result.final_wirelength_mm,
                                    result.final_temperature_c);
  return result;
}

Floorplan first_fit_floorplan(const ChipletSystem& system,
                              const EnvConfig& config) {
  Floorplan fp(system);
  const std::size_t g = config.grid;
  const auto order = config.order.empty() ? system.placement_order_by_area()
                                          : config.order;
  for (const std::size_t chiplet : order) {
    bool placed = false;
    for (std::size_t a = 0; a < g * g && !placed; ++a) {
      const std::size_t row = a / g;
      const std::size_t col = a % g;
      const Point p{system.interposer_width() * static_cast<double>(col) /
                        static_cast<double>(g),
                    system.interposer_height() * static_cast<double>(row) /
                        static_cast<double>(g)};
      if (fp.can_place(chiplet, p, false, config.spacing_mm)) {
        fp.place(chiplet, p, false);
        placed = true;
      }
    }
    if (!placed) {
      throw std::runtime_error("first_fit_floorplan: chiplet " +
                               system.chiplet(chiplet).name +
                               " does not fit");
    }
  }
  return fp;
}

}  // namespace rlplan::rl
