#include "rl/ppo.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/collector.h"
#include "rl/distribution.h"
#include "robust/fault.h"
#include "util/log.h"

namespace rlplan::rl {

// --- PpoCore -----------------------------------------------------------------

PpoCore::PpoCore(PolicyNetConfig net_config, PpoConfig config)
    : config_(config),
      rng_(config.seed),
      net_(net_config, rng_),
      optimizer_({}, config.adam) {
  optimizer_ = nn::Adam(net_.parameters(), config_.adam);
  if (config_.use_rnd) {
    rnd_.emplace(net_config.channels_in, net_config.grid, config_.rnd, rng_);
  }
}

void PpoCore::record_episode_reward(double reward) {
  // Welford running mean/M2 for reward normalization in update().
  ++rew_n_;
  const double delta = reward - rew_mean_;
  rew_mean_ += delta / static_cast<double>(rew_n_);
  rew_m2_ += delta * (reward - rew_mean_);
}

void PpoCore::fill_intrinsic(RolloutBuffer& buffer) {
  if (!rnd_) return;
  for (auto& tr : buffer.mutable_steps()) {
    tr.reward_int = rnd_->bonus(tr.state);
  }
}

void PpoCore::update(RolloutBuffer& buffer, TrainStats& stats) {
  // NaN-guard snapshot: last-good weights + optimizer state, restored
  // bit-exactly if this update goes non-finite. Always on — real numerical
  // blow-ups do not wait for chaos runs — and cheap next to the minibatch
  // passes (one copy of the parameters vs update_epochs forward/backwards).
  std::vector<nn::Tensor> last_good_params;
  last_good_params.reserve(net_.parameters().size());
  for (const nn::Parameter* p : net_.parameters()) {
    last_good_params.push_back(p->value);
  }
  const nn::Adam::Snapshot last_good_opt = optimizer_.snapshot();

  // Reward normalization: divide by the running std of episode rewards so
  // value targets are O(1) regardless of the objective's physical scale.
  if (config_.normalize_rewards && rew_n_ >= 2) {
    const double var = rew_m2_ / static_cast<double>(rew_n_ - 1);
    const double stddev = std::sqrt(var);
    const auto scale = static_cast<float>(
        1.0 / std::clamp(stddev, 1e-3, 1e9));
    for (auto& tr : buffer.mutable_steps()) {
      tr.reward_ext *= scale;
    }
  }

  GaeConfig gae = config_.gae;
  gae.intrinsic_coef = config_.intrinsic_coef * intrinsic_scale_;
  buffer.compute_advantages(gae);

  const std::size_t n = buffer.size();
  const std::size_t c = net_.config().channels_in;
  const std::size_t g = net_.config().grid;
  const std::size_t num_actions = net_.num_actions();

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);

  double policy_loss_sum = 0.0, value_loss_sum = 0.0, entropy_sum = 0.0;
  double kl_sum = 0.0, grad_norm_sum = 0.0;
  std::size_t sample_count = 0, batch_count = 0;

  // Chaos site "ppo_nan": one decision per update; when it fires, the first
  // minibatch's gradient is poisoned so the guard below must catch the
  // resulting non-finite weights and roll the whole update back.
  bool inject_nan = robust::fault_point("ppo_nan");

  // Non-finite weights do not always survive to the post-loop scan: NaN
  // logits make the masked softmax throw ("no feasible action") on the very
  // next minibatch. A throw mid-update is therefore treated exactly like a
  // failed finiteness scan — roll the whole update back.
  bool update_threw = false;
  try {
    for (int epoch = 0; epoch < config_.update_epochs; ++epoch) {
      // Deterministic Fisher-Yates shuffle per epoch.
      for (std::size_t i = order.size(); i > 1; --i) {
        std::swap(order[i - 1], order[rng_.uniform_int(std::uint64_t{i})]);
      }
      for (std::size_t start = 0; start < n; start += config_.minibatch) {
        const std::size_t count = std::min(config_.minibatch, n - start);

        nn::Tensor batch({count, c, g, g});
        for (std::size_t b = 0; b < count; ++b) {
          const Transition& tr = buffer.step(order[start + b]);
          std::copy(tr.state.data().begin(), tr.state.data().end(),
                    batch.data().begin() +
                        static_cast<std::ptrdiff_t>(b * tr.state.numel()));
        }

        PolicyValueNet::Output out = net_.forward(batch);
        nn::Tensor grad_logits({count, num_actions});
        nn::Tensor grad_value({count, std::size_t{1}});
        const float inv_count = 1.0f / static_cast<float>(count);

        for (std::size_t b = 0; b < count; ++b) {
          const Transition& tr = buffer.step(order[start + b]);
          const float adv = buffer.advantages()[order[start + b]];
          const float ret = buffer.returns()[order[start + b]];

          const std::span<const float> logits_row(
              out.logits.data().data() + b * num_actions, num_actions);
          const MaskedCategorical dist(logits_row, tr.mask);
          const float logp_new = dist.log_prob(tr.action);
          const float ratio = std::exp(logp_new - tr.log_prob);
          const float entropy = dist.entropy();

          // Clipped surrogate: L = -min(ratio*A, clip(ratio)*A).
          const float unclipped = ratio * adv;
          const float clipped =
              std::clamp(ratio, 1.0f - config_.clip, 1.0f + config_.clip) * adv;
          policy_loss_sum += -std::min(unclipped, clipped);
          kl_sum += tr.log_prob - logp_new;
          entropy_sum += entropy;

          // d(-min)/dlogp_new: zero when the clipped branch is active.
          float dl_dlogp = 0.0f;
          const bool clip_active =
              (adv >= 0.0f && ratio > 1.0f + config_.clip) ||
              (adv < 0.0f && ratio < 1.0f - config_.clip);
          if (!clip_active) dl_dlogp = -adv * ratio;
          dl_dlogp *= inv_count;

          // dlogp_a/dlogit_k = delta_ak - p_k (restricted to the mask support);
          // entropy term: dH/dlogit_k = -p_k (log p_k + H).
          const auto& probs = dist.probs();
          for (std::size_t k = 0; k < num_actions; ++k) {
            const float p = probs[k];
            float grad = 0.0f;
            if (p > 0.0f) {
              const float delta_ak = (k == tr.action) ? 1.0f : 0.0f;
              grad += dl_dlogp * (delta_ak - p);
              const float logp_k = std::log(p);
              grad += config_.ent_coef * inv_count * p * (logp_k + entropy);
            }
            grad_logits.at(b, k) = grad;
          }

          // Value head: vf_coef * (v - ret)^2, mean over batch.
          const float v = out.value.at(b, 0);
          value_loss_sum += static_cast<double>(v - ret) * (v - ret);
          grad_value.at(b, 0) =
              config_.vf_coef * 2.0f * (v - ret) * inv_count;
        }

        net_.zero_grad();
        net_.backward(grad_logits, grad_value);
        if (inject_nan) {
          inject_nan = false;
          const auto params = net_.parameters();
          if (!params.empty() && !params.front()->grad.data().empty()) {
            params.front()->grad.data()[0] =
                std::numeric_limits<float>::quiet_NaN();
          }
        }
        grad_norm_sum +=
            nn::clip_grad_norm(net_.parameters(), config_.max_grad_norm);
        optimizer_.step();

        sample_count += count;
        ++batch_count;
      }
    }
  } catch (const std::exception& e) {
    update_threw = true;
    RLPLAN_WARN << "PPO update threw mid-minibatch (" << e.what()
                << "); treating as a numerical fault";
  }

  if (sample_count > 0) {
    stats.policy_loss = policy_loss_sum / static_cast<double>(sample_count);
    stats.value_loss = value_loss_sum / static_cast<double>(sample_count);
    stats.entropy = entropy_sum / static_cast<double>(sample_count);
    stats.approx_kl = kl_sum / static_cast<double>(sample_count);
  }
  if (batch_count > 0) {
    stats.grad_norm = grad_norm_sum / static_cast<double>(batch_count);
  }

  // NaN guard: a non-finite weight anywhere (or a mid-update throw) means
  // this update diverged — numerically or via the chaos site. Restore the
  // last-good snapshot bit-exactly, skip the RND pass, and tag the epoch
  // instead of training on from a poisoned network. The update RNG keeps the
  // shuffles it consumed, so the guarded sequence stays deterministic.
  bool finite = !update_threw;
  for (const nn::Parameter* p : net_.parameters()) {
    if (!finite) break;
    for (const float x : p->value.data()) {
      if (!std::isfinite(x)) {
        finite = false;
        break;
      }
    }
  }
  if (!finite) {
    const auto params = net_.parameters();
    for (std::size_t i = 0; i < params.size(); ++i) {
      params[i]->value = last_good_params[i];
    }
    optimizer_.restore(last_good_opt);
    ++nan_skips_;
    stats.update_skipped = true;
    stats.policy_loss = stats.value_loss = stats.entropy = 0.0;
    stats.approx_kl = stats.grad_norm = 0.0;
    RLPLAN_COUNTER_INC("rl.nan_skips");
    RLPLAN_COUNTER_INC("robust.degraded");
    RLPLAN_WARN << "PPO update produced non-finite weights; rolled back to "
                << "the last-good state (skip #" << nan_skips_ << ")";
    return;
  }

  // RND predictor catches up on the freshly visited states, then the bonus
  // anneals so late training focuses on the extrinsic objective.
  if (rnd_) {
    std::vector<const nn::Tensor*> states;
    states.reserve(buffer.size());
    for (const auto& tr : buffer.steps()) states.push_back(&tr.state);
    stats.rnd_error = rnd_->train(states, rng_);
    intrinsic_scale_ *= config_.intrinsic_decay;
  }
}

void PpoCore::save_state(nn::StateWriter& w) const {
  auto& self = const_cast<PpoCore&>(*this);
  // Net weights first: warm-start readers stop after this block.
  nn::write_parameter_tensors(w, "net", self.net_.parameters());

  const auto rng_state = rng_.state();
  w.u64vec("core.update_rng", rng_state);
  self.optimizer_.save_state(w, "core.adam");
  w.f64("core.rew_mean", rew_mean_);
  w.f64("core.rew_m2", rew_m2_);
  w.u64("core.rew_n", static_cast<std::uint64_t>(rew_n_));
  w.f32("core.intrinsic_scale", intrinsic_scale_);
  w.u64("core.rnd_present", rnd_ ? 1 : 0);
  if (rnd_) rnd_->save_state(w, "core.rnd");
}

void PpoCore::load_net_only(nn::StateReader& r) {
  nn::read_parameter_tensors(r, "net", net_.parameters());
}

void PpoCore::load_state(nn::StateReader& r) {
  load_net_only(r);

  const auto rng_state = r.u64vec("core.update_rng");
  if (rng_state.size() != 4) {
    throw std::runtime_error("checkpoint: bad update RNG state size");
  }
  rng_.set_state({rng_state[0], rng_state[1], rng_state[2], rng_state[3]});
  optimizer_.load_state(r, "core.adam");
  rew_mean_ = r.f64("core.rew_mean");
  rew_m2_ = r.f64("core.rew_m2");
  rew_n_ = static_cast<long>(r.u64("core.rew_n"));
  intrinsic_scale_ = r.f32("core.intrinsic_scale");
  const bool rnd_present = r.u64("core.rnd_present") != 0;
  if (rnd_present != rnd_.has_value()) {
    throw std::runtime_error(
        "checkpoint: RND configuration mismatch (use_rnd differs from the "
        "checkpointed trainer)");
  }
  if (rnd_) rnd_->load_state(r, "core.rnd");
}

// --- PpoTrainer --------------------------------------------------------------

PpoTrainer::PpoTrainer(FloorplanEnv& env, PolicyNetConfig net_config,
                       PpoConfig config)
    : env_(&env),
      core_(
          [&] {
            net_config.grid = env.grid();
            net_config.channels_in = FloorplanEnv::kChannels;
            return net_config;
          }(),
          config),
      action_rng_(derive_substream_seed(config.seed, 0)) {}

PpoTrainer::PpoTrainer(parallel::ParallelRolloutCollector& collector,
                       PolicyNetConfig net_config, PpoConfig config)
    : PpoTrainer(collector.venv().env(0), net_config, config) {
  collector_ = &collector;
}

const Floorplan& PpoTrainer::best_floorplan() const {
  if (!best_floorplan_) {
    throw std::logic_error("PpoTrainer: no complete episode seen yet");
  }
  return *best_floorplan_;
}

void PpoTrainer::consider_best(const EpisodeMetrics& metrics,
                               const Floorplan& fp) {
  if (!metrics.valid) return;
  if (!best_floorplan_ || metrics.reward > best_metrics_.reward) {
    best_floorplan_ = fp;
    best_metrics_ = metrics;
  }
}

TrainStats PpoTrainer::train_epoch() {
  return run_ppo_epoch(
      core_, collector_, env_, &action_rng_, buffer_, total_env_steps_,
      [&](std::size_t env_index, const StepOutcome& outcome) {
        if (!outcome.dead_end) {
          FloorplanEnv& env =
              collector_ ? collector_->venv().env(env_index) : *env_;
          consider_best(env.last_metrics(), env.floorplan());
        }
      });
}

TrainStats run_ppo_epoch(PpoCore& core,
                         parallel::ParallelRolloutCollector* collector,
                         FloorplanEnv* serial_env, Rng* serial_rng,
                         RolloutBuffer& buffer, long& total_env_steps,
                         const EpisodeEndFn& on_episode_end,
                         const robust::RunControl& control) {
  TrainStats stats;
  buffer.clear();

  const auto on_end = [&](std::size_t env_index, const StepOutcome& outcome) {
    if (on_episode_end) on_episode_end(env_index, outcome);
    core.record_episode_reward(outcome.reward);
  };

  // Clamp before the size_t conversion: a (mis)configured negative episode
  // count must mean "collect nothing", not 2^64.
  const auto episodes = static_cast<std::size_t>(
      std::max(core.config().episodes_per_update, 0));
  parallel::CollectorStats cstats;
  {
    RLPLAN_TRACE_SPAN("rl.collect", static_cast<std::int64_t>(episodes));
    if (collector != nullptr) {
      cstats = collector->collect(core.net(), episodes, buffer, on_end,
                                  control);
    } else {
      const parallel::EnvSlot slot{serial_env, serial_rng};
      cstats = parallel::collect_episodes({&slot, 1}, core.net(), episodes,
                                          buffer, nullptr, on_end, control);
    }
  }
  stats.stop_reason = cstats.stop_reason;
  RLPLAN_COUNTER_ADD("rl.env_steps", cstats.steps);
  RLPLAN_COUNTER_ADD("rl.episodes", cstats.episodes);
  total_env_steps += static_cast<long>(cstats.steps);
  core.fill_intrinsic(buffer);

  stats.steps = cstats.steps;
  stats.episodes = cstats.episodes;
  stats.dead_ends = cstats.dead_ends;
  stats.mean_reward =
      cstats.episodes > 0
          ? cstats.reward_sum / static_cast<double>(cstats.episodes)
          : 0.0;
  stats.best_reward = cstats.episodes > 0 ? cstats.reward_best : 0.0;

  // A cancelled epoch skips the update (the caller wants out now, e.g. a
  // SIGINT on its way to a final checkpoint); a deadline-stopped epoch still
  // updates on the full episodes it managed to collect (best-so-far).
  if (!buffer.empty() && stats.stop_reason != robust::StopReason::kCancelled) {
    RLPLAN_TRACE_SPAN("rl.update",
                      static_cast<std::int64_t>(buffer.steps().size()));
    core.update(buffer, stats);
  }
  return stats;
}

EpisodeMetrics PpoTrainer::greedy_episode() {
  const EpisodeMetrics metrics = run_greedy_episode(*env_, core_.net());
  if (metrics.valid) consider_best(metrics, env_->floorplan());
  return metrics;
}

EpisodeMetrics run_greedy_episode(FloorplanEnv& env, PolicyValueNet& net) {
  nn::Tensor obs = env.reset();
  bool done = false;
  bool dead_end = false;
  while (!done) {
    nn::Tensor batch = obs;
    batch.reshape({1, obs.dim(0), obs.dim(1), obs.dim(2)});
    PolicyValueNet::Output out = net.forward(batch);
    const MaskedCategorical dist(out.logits.data(), env.action_mask());
    const StepOutcome outcome = env.step(dist.argmax());
    done = outcome.done;
    dead_end = outcome.dead_end;
    if (!done) obs = env.observation();
  }
  if (dead_end) return {};
  return env.last_metrics();
}

}  // namespace rlplan::rl
