#include "rl/ppo.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "parallel/collector.h"
#include "rl/distribution.h"
#include "util/log.h"

namespace rlplan::rl {

PpoTrainer::PpoTrainer(FloorplanEnv& env, PolicyNetConfig net_config,
                       PpoConfig config)
    : env_(&env),
      config_(config),
      rng_(config.seed),
      net_([&] {
        net_config.grid = env.grid();
        net_config.channels_in = FloorplanEnv::kChannels;
        return net_config;
      }(), rng_),
      optimizer_({}, config.adam) {
  optimizer_ = nn::Adam(net_.parameters(), config_.adam);
  if (config_.use_rnd) {
    rnd_.emplace(FloorplanEnv::kChannels, env.grid(), config_.rnd, rng_);
  }
  intrinsic_scale_ = 1.0f;
}

PpoTrainer::PpoTrainer(parallel::ParallelRolloutCollector& collector,
                       PolicyNetConfig net_config, PpoConfig config)
    : PpoTrainer(collector.venv().env(0), net_config, config) {
  collector_ = &collector;
}

const Floorplan& PpoTrainer::best_floorplan() const {
  if (!best_floorplan_) {
    throw std::logic_error("PpoTrainer: no complete episode seen yet");
  }
  return *best_floorplan_;
}

void PpoTrainer::consider_best(const EpisodeMetrics& metrics,
                               const Floorplan& fp) {
  if (!metrics.valid) return;
  if (!best_floorplan_ || metrics.reward > best_metrics_.reward) {
    best_floorplan_ = fp;
    best_metrics_ = metrics;
  }
}

void PpoTrainer::record_episode_reward(double reward) {
  // Welford running mean/M2 for reward normalization in update().
  ++rew_n_;
  const double delta = reward - rew_mean_;
  rew_mean_ += delta / static_cast<double>(rew_n_);
  rew_m2_ += delta * (reward - rew_mean_);
}

void PpoTrainer::collect(TrainStats& stats) {
  buffer_.clear();
  if (collector_) {
    collect_parallel(stats);
    return;
  }
  double reward_sum = 0.0;
  double reward_best = -1e300;

  for (int ep = 0; ep < config_.episodes_per_update; ++ep) {
    nn::Tensor obs = env_->reset();
    bool done = false;
    while (!done) {
      // Batch-1 forward for action selection.
      nn::Tensor batch = obs;
      batch.reshape({1, obs.dim(0), obs.dim(1), obs.dim(2)});
      PolicyValueNet::Output out = net_.forward(batch);

      const std::vector<std::uint8_t> mask = env_->action_mask();
      const MaskedCategorical dist(out.logits.data(), mask);
      const std::size_t action = dist.sample(rng_);

      Transition tr;
      tr.state = obs;
      tr.mask = mask;
      tr.action = action;
      tr.log_prob = dist.log_prob(action);
      tr.value = out.value[0];
      if (rnd_) tr.reward_int = rnd_->bonus(obs);

      const StepOutcome outcome = env_->step(action);
      ++total_env_steps_;
      tr.reward_ext = static_cast<float>(outcome.reward);
      tr.episode_end = outcome.done;
      done = outcome.done;
      if (!done) obs = env_->observation();

      buffer_.push(std::move(tr));

      if (outcome.done) {
        ++stats.episodes;
        if (outcome.dead_end) {
          ++stats.dead_ends;
        } else {
          consider_best(env_->last_metrics(), env_->floorplan());
        }
        reward_sum += outcome.reward;
        reward_best = std::max(reward_best, outcome.reward);
        record_episode_reward(outcome.reward);
      }
    }
  }
  stats.steps = buffer_.size();
  stats.mean_reward =
      stats.episodes > 0 ? reward_sum / static_cast<double>(stats.episodes)
                         : 0.0;
  stats.best_reward = stats.episodes > 0 ? reward_best : 0.0;
}

void PpoTrainer::collect_parallel(TrainStats& stats) {
  parallel::VecEnv& venv = collector_->venv();
  // Clamp before the size_t conversion: a (mis)configured negative episode
  // count must mean "collect nothing", as on the legacy path, not 2^64.
  const auto episodes =
      static_cast<std::size_t>(std::max(config_.episodes_per_update, 0));
  const parallel::CollectorStats cstats = collector_->collect(
      net_, episodes, buffer_,
      [&](std::size_t env_index, const StepOutcome& outcome) {
        if (!outcome.dead_end) {
          FloorplanEnv& env = venv.env(env_index);
          consider_best(env.last_metrics(), env.floorplan());
        }
        record_episode_reward(outcome.reward);
      });
  total_env_steps_ += static_cast<long>(cstats.steps);

  // Fill RND bonuses after collection, in buffer (episode-contiguous) order.
  // bonus() also folds each raw error into its running normalization stats,
  // so this order is part of the deterministic contract — do not reorder or
  // parallelize this loop.
  if (rnd_) {
    for (auto& tr : buffer_.mutable_steps()) {
      tr.reward_int = rnd_->bonus(tr.state);
    }
  }

  stats.steps = cstats.steps;
  stats.episodes = cstats.episodes;
  stats.dead_ends = cstats.dead_ends;
  stats.mean_reward =
      cstats.episodes > 0
          ? cstats.reward_sum / static_cast<double>(cstats.episodes)
          : 0.0;
  stats.best_reward = cstats.reward_best;
}

void PpoTrainer::update(TrainStats& stats) {
  // Reward normalization: divide by the running std of episode rewards so
  // value targets are O(1) regardless of the objective's physical scale.
  if (config_.normalize_rewards && rew_n_ >= 2) {
    const double var = rew_m2_ / static_cast<double>(rew_n_ - 1);
    const double stddev = std::sqrt(var);
    const auto scale = static_cast<float>(
        1.0 / std::clamp(stddev, 1e-3, 1e9));
    for (auto& tr : buffer_.mutable_steps()) {
      tr.reward_ext *= scale;
    }
  }

  GaeConfig gae = config_.gae;
  gae.intrinsic_coef = config_.intrinsic_coef * intrinsic_scale_;
  buffer_.compute_advantages(gae);

  const std::size_t n = buffer_.size();
  const std::size_t c = FloorplanEnv::kChannels;
  const std::size_t g = env_->grid();
  const std::size_t num_actions = env_->num_actions();

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);

  double policy_loss_sum = 0.0, value_loss_sum = 0.0, entropy_sum = 0.0;
  double kl_sum = 0.0, grad_norm_sum = 0.0;
  std::size_t sample_count = 0, batch_count = 0;

  for (int epoch = 0; epoch < config_.update_epochs; ++epoch) {
    // Deterministic Fisher-Yates shuffle per epoch.
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng_.uniform_int(std::uint64_t{i})]);
    }
    for (std::size_t start = 0; start < n; start += config_.minibatch) {
      const std::size_t count = std::min(config_.minibatch, n - start);

      nn::Tensor batch({count, c, g, g});
      for (std::size_t b = 0; b < count; ++b) {
        const Transition& tr = buffer_.step(order[start + b]);
        std::copy(tr.state.data().begin(), tr.state.data().end(),
                  batch.data().begin() +
                      static_cast<std::ptrdiff_t>(b * tr.state.numel()));
      }

      PolicyValueNet::Output out = net_.forward(batch);
      nn::Tensor grad_logits({count, num_actions});
      nn::Tensor grad_value({count, std::size_t{1}});
      const float inv_count = 1.0f / static_cast<float>(count);

      for (std::size_t b = 0; b < count; ++b) {
        const Transition& tr = buffer_.step(order[start + b]);
        const float adv = buffer_.advantages()[order[start + b]];
        const float ret = buffer_.returns()[order[start + b]];

        const std::span<const float> logits_row(
            out.logits.data().data() + b * num_actions, num_actions);
        const MaskedCategorical dist(logits_row, tr.mask);
        const float logp_new = dist.log_prob(tr.action);
        const float ratio = std::exp(logp_new - tr.log_prob);
        const float entropy = dist.entropy();

        // Clipped surrogate: L = -min(ratio*A, clip(ratio)*A).
        const float unclipped = ratio * adv;
        const float clipped =
            std::clamp(ratio, 1.0f - config_.clip, 1.0f + config_.clip) * adv;
        policy_loss_sum += -std::min(unclipped, clipped);
        kl_sum += tr.log_prob - logp_new;
        entropy_sum += entropy;

        // d(-min)/dlogp_new: zero when the clipped branch is active.
        float dl_dlogp = 0.0f;
        const bool clip_active =
            (adv >= 0.0f && ratio > 1.0f + config_.clip) ||
            (adv < 0.0f && ratio < 1.0f - config_.clip);
        if (!clip_active) dl_dlogp = -adv * ratio;
        dl_dlogp *= inv_count;

        // dlogp_a/dlogit_k = delta_ak - p_k (restricted to the mask support);
        // entropy term: dH/dlogit_k = -p_k (log p_k + H).
        const auto& probs = dist.probs();
        for (std::size_t k = 0; k < num_actions; ++k) {
          const float p = probs[k];
          float grad = 0.0f;
          if (p > 0.0f) {
            const float delta_ak = (k == tr.action) ? 1.0f : 0.0f;
            grad += dl_dlogp * (delta_ak - p);
            const float logp_k = std::log(p);
            grad += config_.ent_coef * inv_count * p * (logp_k + entropy);
          }
          grad_logits.at(b, k) = grad;
        }

        // Value head: vf_coef * (v - ret)^2, mean over batch.
        const float v = out.value.at(b, 0);
        value_loss_sum += static_cast<double>(v - ret) * (v - ret);
        grad_value.at(b, 0) =
            config_.vf_coef * 2.0f * (v - ret) * inv_count;
      }

      net_.zero_grad();
      net_.backward(grad_logits, grad_value);
      grad_norm_sum +=
          nn::clip_grad_norm(net_.parameters(), config_.max_grad_norm);
      optimizer_.step();

      sample_count += count;
      ++batch_count;
    }
  }

  if (sample_count > 0) {
    stats.policy_loss = policy_loss_sum / static_cast<double>(sample_count);
    stats.value_loss = value_loss_sum / static_cast<double>(sample_count);
    stats.entropy = entropy_sum / static_cast<double>(sample_count);
    stats.approx_kl = kl_sum / static_cast<double>(sample_count);
  }
  if (batch_count > 0) {
    stats.grad_norm = grad_norm_sum / static_cast<double>(batch_count);
  }

  // RND predictor catches up on the freshly visited states, then the bonus
  // anneals so late training focuses on the extrinsic objective.
  if (rnd_) {
    std::vector<const nn::Tensor*> states;
    states.reserve(buffer_.size());
    for (const auto& tr : buffer_.steps()) states.push_back(&tr.state);
    stats.rnd_error = rnd_->train(states, rng_);
    intrinsic_scale_ *= config_.intrinsic_decay;
  }
}

TrainStats PpoTrainer::train_epoch() {
  TrainStats stats;
  collect(stats);
  if (!buffer_.empty()) update(stats);
  return stats;
}

EpisodeMetrics PpoTrainer::greedy_episode() {
  nn::Tensor obs = env_->reset();
  bool done = false;
  bool dead_end = false;
  while (!done) {
    nn::Tensor batch = obs;
    batch.reshape({1, obs.dim(0), obs.dim(1), obs.dim(2)});
    PolicyValueNet::Output out = net_.forward(batch);
    const MaskedCategorical dist(out.logits.data(), env_->action_mask());
    const StepOutcome outcome = env_->step(dist.argmax());
    done = outcome.done;
    dead_end = outcome.dead_end;
    if (!done) obs = env_->observation();
  }
  if (dead_end) return {};
  const EpisodeMetrics metrics = env_->last_metrics();
  consider_best(metrics, env_->floorplan());
  return metrics;
}

}  // namespace rlplan::rl
