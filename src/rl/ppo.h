// Proximal Policy Optimization (Schulman et al., 2017; paper Section II-B)
// with optional RND intrinsic bonus, split into
//
//   PpoCore    — the pure update core: policy/value net, Adam, optional RND,
//                reward normalizer, intrinsic annealing, and the update RNG.
//                Knows nothing about environments or how experience is
//                collected; its entire mutable state is checkpointable
//                (save_state/load_state, consumed by rl/session.h).
//   PpoTrainer — a thin collection front end over one FloorplanEnv or a
//                parallel rollout collector. Both configurations run the ONE
//                unified pipeline (parallel::collect_episodes): the serial
//                loop is simply the one-slot, no-pool case, sampling from
//                the replica-0 action stream (util/rng.h seed contract).
//
// One train_epoch() = collect `episodes_per_update` complete placement
// episodes under the current policy, then run `update_epochs` passes of
// clipped-surrogate minibatch SGD (Adam) over the rollout. Policy gradients
// flow through the masked softmax analytically (see PpoCore::update()), so
// masked actions receive exactly zero gradient.
//
// Multi-scenario curriculum training, full-state checkpointing, and resume
// live one layer up in TrainingSession (rl/session.h), which drives a
// PpoCore directly.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/floorplan.h"
#include "nn/optim.h"
#include "nn/serialize.h"
#include "rl/env.h"
#include "rl/policy_net.h"
#include "rl/rnd.h"
#include "rl/rollout.h"
#include "robust/robust.h"
#include "util/rng.h"

namespace rlplan::parallel {
class ParallelRolloutCollector;
struct CollectorStats;
}  // namespace rlplan::parallel

namespace rlplan::rl {

struct PpoConfig {
  int episodes_per_update = 16;
  int update_epochs = 4;
  std::size_t minibatch = 64;
  float clip = 0.2f;
  float vf_coef = 0.5f;
  float ent_coef = 0.01f;
  float max_grad_norm = 0.5f;
  GaeConfig gae{};
  nn::AdamConfig adam{};
  /// Enables random network distillation exploration bonus.
  bool use_rnd = false;
  RndConfig rnd{};
  /// Initial weight of the intrinsic reward (annealed multiplicatively by
  /// `intrinsic_decay` every update so late training optimizes the true
  /// objective).
  float intrinsic_coef = 0.3f;
  float intrinsic_decay = 0.99f;
  /// Normalize extrinsic rewards by the running std of episode rewards
  /// before GAE, so the value-loss gradient scale is independent of the
  /// objective's physical units (wirelength in mm produces rewards of
  /// wildly different magnitudes across benchmarks).
  bool normalize_rewards = true;
  /// Master seed when the trainer is built standalone. RlPlanner and
  /// TrainingSession overwrite this with their own authoritative seed — see
  /// the derivation table in util/rng.h.
  std::uint64_t seed = 1;
};

struct TrainStats {
  /// Scenario the epoch trained on (curriculum tag; empty for
  /// single-scenario trainers). Keeps mixed-scenario reward scales from
  /// being averaged into one meaningless mean downstream.
  std::string scenario;
  double mean_reward = 0.0;  ///< mean terminal extrinsic reward this epoch
  double best_reward = 0.0;  ///< best terminal reward this epoch
  double policy_loss = 0.0;
  double value_loss = 0.0;
  double entropy = 0.0;
  double approx_kl = 0.0;
  double grad_norm = 0.0;
  double rnd_error = 0.0;
  std::size_t steps = 0;
  std::size_t episodes = 0;
  std::size_t dead_ends = 0;
  /// True when the epoch's network update was rolled back by the NaN guard
  /// (weights and optimizer state restored to their pre-update values; see
  /// PpoCore::nan_skips()).
  bool update_skipped = false;
  /// kNone for a full epoch; kCancelled/kDeadline when a RunControl stopped
  /// collection early (the update then runs over the partial buffer only if
  /// the stop was a deadline with data already collected — see
  /// run_ppo_epoch).
  robust::StopReason stop_reason = robust::StopReason::kNone;

  bool degraded() const {
    return update_skipped || stop_reason != robust::StopReason::kNone;
  }
};

/// Pure PPO update core over a fixed network architecture. Contains no
/// environment or collection logic; everything it mutates is covered by
/// save_state()/load_state(), which is what makes training resumable.
class PpoCore {
 public:
  /// `net_config.grid` and `net_config.channels_in` must be final — they fix
  /// the observation/action space the core updates over.
  PpoCore(PolicyNetConfig net_config, PpoConfig config);

  PolicyValueNet& net() { return net_; }
  const PpoConfig& config() const { return config_; }
  bool has_rnd() const { return rnd_.has_value(); }
  long optimizer_steps() const { return optimizer_.step_count(); }

  /// Folds one terminal episode reward into the running normalizer
  /// (Welford). Called by the collection front end, once per episode, in
  /// collection order — the order is part of the deterministic contract.
  void record_episode_reward(double reward);

  /// Fills Transition::reward_int for every buffered step, in buffer
  /// (episode-contiguous) order. bonus() also folds each raw error into the
  /// RND normalization stats, so this order is part of the deterministic
  /// contract — do not reorder or parallelize. No-op without RND.
  void fill_intrinsic(RolloutBuffer& buffer);

  /// One PPO update pass (reward normalization, GAE, `update_epochs` x
  /// minibatch clipped-surrogate SGD, RND predictor training + intrinsic
  /// annealing) over the collected buffer. Fills the loss/entropy/grad
  /// fields of `stats`.
  ///
  /// NaN guard: weights and optimizer state are snapshotted on entry; if any
  /// parameter is non-finite after the minibatch passes (real numerical
  /// blow-up or the "ppo_nan" chaos site), or a minibatch throws mid-update
  /// (NaN logits surface as "no feasible action" from the masked softmax
  /// before the scan can run), the whole update is rolled back
  /// bit-exactly, stats.update_skipped is set, and nan_skips() increments.
  /// The update RNG is NOT rewound — the skipped epoch still consumed its
  /// shuffles — so the guarded run remains fully deterministic.
  void update(RolloutBuffer& buffer, TrainStats& stats);

  /// Number of updates rolled back by the NaN guard this process (not
  /// checkpointed; also counted in the "rl.nan_skips" obs metric).
  long nan_skips() const { return nan_skips_; }

  /// Welford reward-normalizer state, exposed so a cancelled (mid-epoch)
  /// collection can be rewound: the partial epoch's episode rewards must not
  /// survive into the checkpoint, or resume-and-replay double-counts them.
  struct RewardNormState {
    double mean = 0.0;
    double m2 = 0.0;
    long n = 0;
  };
  RewardNormState reward_norm_state() const {
    return {rew_mean_, rew_m2_, rew_n_};
  }
  void restore_reward_norm(const RewardNormState& s) {
    rew_mean_ = s.mean;
    rew_m2_ = s.m2;
    rew_n_ = s.n;
  }

  /// Serializes, in order: net weights, then the full update state (update
  /// RNG, Adam moments + step count, reward normalizer, intrinsic scale, RND
  /// block). Net weights lead so weight-only (warm-start) readers can stop
  /// after them.
  void save_state(nn::StateWriter& w) const;
  void load_state(nn::StateReader& r);
  /// Reads only the leading net-weights block of a v2 core state (the
  /// warm-start path: fine-tune from a checkpoint with fresh optimizer,
  /// normalizer, and RNG state).
  void load_net_only(nn::StateReader& r);

 private:
  PpoConfig config_;
  Rng rng_;  ///< net init, then minibatch + RND shuffling (seed contract)
  PolicyValueNet net_;
  std::optional<RndBonus> rnd_;
  nn::Adam optimizer_;
  float intrinsic_scale_ = 1.0f;
  // Running std of episode rewards for reward normalization (Welford).
  double rew_mean_ = 0.0;
  double rew_m2_ = 0.0;
  long rew_n_ = 0;
  long nan_skips_ = 0;  ///< updates rolled back by the NaN guard
};

/// Single-scenario trainer: one env (or one VecEnv collector) + a PpoCore.
class PpoTrainer {
 public:
  /// `env` must outlive the trainer. Experience is collected through the
  /// unified pipeline with one slot; actions sample from the replica-0
  /// stream derived from `config.seed`.
  PpoTrainer(FloorplanEnv& env, PolicyNetConfig net_config, PpoConfig config);

  /// Collects experience through a parallel rollout collector: batched
  /// policy forwards over all live replicas, env steps fanned out over the
  /// collector's thread pool, per-replica RNG streams (see src/parallel/).
  /// Greedy evaluation and best-floorplan tracking use the collector's
  /// replicas. `collector` must outlive the trainer.
  PpoTrainer(parallel::ParallelRolloutCollector& collector,
             PolicyNetConfig net_config, PpoConfig config);

  /// One collect + update cycle. Returns statistics of the epoch.
  TrainStats train_epoch();

  /// Best complete (non-dead-end) floorplan seen in any sampled episode.
  bool has_best() const { return best_floorplan_.has_value(); }
  const Floorplan& best_floorplan() const;
  const EpisodeMetrics& best_metrics() const { return best_metrics_; }

  /// Runs one greedy (argmax) episode and returns its metrics; also updates
  /// the best floorplan if the greedy result improves on it.
  EpisodeMetrics greedy_episode();

  PpoCore& core() { return core_; }
  PolicyValueNet& net() { return core_.net(); }
  const PpoConfig& config() const { return core_.config(); }
  long total_env_steps() const { return total_env_steps_; }

 private:
  void consider_best(const EpisodeMetrics& metrics, const Floorplan& fp);

  FloorplanEnv* env_;
  parallel::ParallelRolloutCollector* collector_ = nullptr;
  PpoCore core_;
  Rng action_rng_;  ///< serial action stream (= replica 0's derivation)
  RolloutBuffer buffer_;
  long total_env_steps_ = 0;

  std::optional<Floorplan> best_floorplan_;
  EpisodeMetrics best_metrics_{};
};

/// One greedy (argmax) episode on `env` under `net`. Returns the terminal
/// metrics, or a default-constructed (invalid) result on a dead end.
/// Consumes no RNG. Shared by PpoTrainer and TrainingSession.
EpisodeMetrics run_greedy_episode(FloorplanEnv& env, PolicyValueNet& net);

/// Episode-end hook, invoked in deterministic collection order with the env
/// index that finished (same contract as the collection pipeline's
/// callback; the terminal env still holds its floorplan/metrics).
using EpisodeEndFn =
    std::function<void(std::size_t env_index, const StepOutcome& outcome)>;

/// THE collect -> stats -> update epoch pipeline shared by PpoTrainer and
/// TrainingSession: clears `buffer`, collects `core.config()`'s
/// episodes_per_update episodes (through `collector` when non-null,
/// otherwise serially from `serial_env` sampling with `serial_rng`), fills
/// RND intrinsic bonuses, folds collection statistics, advances
/// `total_env_steps`, and runs the PPO update over the buffer.
/// `control` (optional) stops collection at batch granularity; a stopped
/// epoch tags its stats with the stop reason. A cancelled epoch skips the
/// update entirely (the caller wants out now); a deadline-stopped epoch still
/// updates on whatever full episodes were collected (best-so-far semantics).
TrainStats run_ppo_epoch(PpoCore& core,
                         parallel::ParallelRolloutCollector* collector,
                         FloorplanEnv* serial_env, Rng* serial_rng,
                         RolloutBuffer& buffer, long& total_env_steps,
                         const EpisodeEndFn& on_episode_end,
                         const robust::RunControl& control = {});

}  // namespace rlplan::rl
