// Proximal Policy Optimization trainer (Schulman et al., 2017; paper
// Section II-B) with optional RND intrinsic bonus.
//
// One train_epoch() = collect `episodes_per_update` complete placement
// episodes under the current policy, then run `update_epochs` passes of
// clipped-surrogate minibatch SGD (Adam) over the rollout. Policy gradients
// flow through the masked softmax analytically (see update()), so masked
// actions receive exactly zero gradient.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/floorplan.h"
#include "nn/optim.h"
#include "rl/env.h"
#include "rl/policy_net.h"
#include "rl/rnd.h"
#include "rl/rollout.h"
#include "util/rng.h"

namespace rlplan::parallel {
class ParallelRolloutCollector;
}  // namespace rlplan::parallel

namespace rlplan::rl {

struct PpoConfig {
  int episodes_per_update = 16;
  int update_epochs = 4;
  std::size_t minibatch = 64;
  float clip = 0.2f;
  float vf_coef = 0.5f;
  float ent_coef = 0.01f;
  float max_grad_norm = 0.5f;
  GaeConfig gae{};
  nn::AdamConfig adam{};
  /// Enables random network distillation exploration bonus.
  bool use_rnd = false;
  RndConfig rnd{};
  /// Initial weight of the intrinsic reward (annealed multiplicatively by
  /// `intrinsic_decay` every update so late training optimizes the true
  /// objective).
  float intrinsic_coef = 0.3f;
  float intrinsic_decay = 0.99f;
  /// Normalize extrinsic rewards by the running std of episode rewards
  /// before GAE, so the value-loss gradient scale is independent of the
  /// objective's physical units (wirelength in mm produces rewards of
  /// wildly different magnitudes across benchmarks).
  bool normalize_rewards = true;
  std::uint64_t seed = 1;
};

struct TrainStats {
  double mean_reward = 0.0;  ///< mean terminal extrinsic reward this epoch
  double best_reward = 0.0;  ///< best terminal reward this epoch
  double policy_loss = 0.0;
  double value_loss = 0.0;
  double entropy = 0.0;
  double approx_kl = 0.0;
  double grad_norm = 0.0;
  double rnd_error = 0.0;
  std::size_t steps = 0;
  std::size_t episodes = 0;
  std::size_t dead_ends = 0;
};

class PpoTrainer {
 public:
  /// `env` must outlive the trainer.
  PpoTrainer(FloorplanEnv& env, PolicyNetConfig net_config, PpoConfig config);

  /// Collects experience through a parallel rollout collector instead of the
  /// single-env loop: batched policy forwards over all live replicas, env
  /// steps fanned out over the collector's thread pool, per-replica RNG
  /// streams (see src/parallel/). Greedy evaluation and best-floorplan
  /// tracking use the collector's replicas. `collector` must outlive the
  /// trainer.
  PpoTrainer(parallel::ParallelRolloutCollector& collector,
             PolicyNetConfig net_config, PpoConfig config);

  /// One collect + update cycle. Returns statistics of the epoch.
  TrainStats train_epoch();

  /// Best complete (non-dead-end) floorplan seen in any sampled episode.
  bool has_best() const { return best_floorplan_.has_value(); }
  const Floorplan& best_floorplan() const;
  const EpisodeMetrics& best_metrics() const { return best_metrics_; }

  /// Runs one greedy (argmax) episode and returns its metrics; also updates
  /// the best floorplan if the greedy result improves on it.
  EpisodeMetrics greedy_episode();

  PolicyValueNet& net() { return net_; }
  const PpoConfig& config() const { return config_; }
  long total_env_steps() const { return total_env_steps_; }

 private:
  void collect(TrainStats& stats);
  void collect_parallel(TrainStats& stats);
  void update(TrainStats& stats);
  void consider_best(const EpisodeMetrics& metrics, const Floorplan& fp);
  void record_episode_reward(double reward);

  FloorplanEnv* env_;
  parallel::ParallelRolloutCollector* collector_ = nullptr;
  PpoConfig config_;
  Rng rng_;
  PolicyValueNet net_;
  std::optional<RndBonus> rnd_;
  nn::Adam optimizer_;
  RolloutBuffer buffer_;
  float intrinsic_scale_ = 1.0f;
  long total_env_steps_ = 0;
  // Running std of episode rewards for reward normalization (Welford).
  double rew_mean_ = 0.0;
  double rew_m2_ = 0.0;
  long rew_n_ = 0;

  std::optional<Floorplan> best_floorplan_;
  EpisodeMetrics best_metrics_{};
};

}  // namespace rlplan::rl
