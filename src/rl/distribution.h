// Masked categorical action distribution.
//
// Implements the paper's action-masking step: "the probability of infeasible
// actions will [be] set to '0' based on M_t". Numerically this is a softmax
// over valid logits only; masked entries carry zero probability and do not
// receive gradient.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.h"

namespace rlplan::rl {

class MaskedCategorical {
 public:
  /// Builds the distribution from raw logits and a feasibility mask
  /// (mask[i] != 0 => action i allowed). At least one action must be
  /// feasible; throws std::invalid_argument otherwise.
  MaskedCategorical(std::span<const float> logits,
                    std::span<const std::uint8_t> mask);

  std::size_t num_actions() const { return probs_.size(); }
  const std::vector<float>& probs() const { return probs_; }

  /// log pi(a); -inf-like sentinel (-1e30) for masked actions.
  float log_prob(std::size_t action) const;

  /// Shannon entropy over the feasible support.
  float entropy() const;

  /// Samples an action via inverse-CDF on the masked probabilities.
  std::size_t sample(Rng& rng) const;

  /// Highest-probability feasible action (greedy decode).
  std::size_t argmax() const;

 private:
  std::vector<float> probs_;
  std::vector<float> log_probs_;  // masked entries = -1e30
};

}  // namespace rlplan::rl
