// Random Network Distillation exploration bonus (Burda et al., 2018; paper
// Section II-B).
//
// A fixed, randomly initialized *target* network embeds each visited state;
// a *predictor* network of identical architecture is trained to match the
// target's output. States the predictor has not yet learned (novel states)
// produce a large prediction error, which is used as an intrinsic reward.
// Errors are normalized by their running standard deviation so the bonus
// scale is stationary across training.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/layers.h"
#include "nn/optim.h"
#include "nn/serialize.h"
#include "nn/tensor.h"
#include "util/rng.h"

namespace rlplan::rl {

struct RndConfig {
  std::size_t conv1 = 8;
  std::size_t conv2 = 8;
  std::size_t embed_dim = 32;
  float predictor_lr = 1e-3f;
  /// Clip for the normalized bonus (keeps outliers from dominating GAE).
  float bonus_clip = 5.0f;
  /// Minibatch size for predictor training.
  std::size_t train_batch = 32;
};

class RndBonus {
 public:
  RndBonus(std::size_t channels_in, std::size_t grid, RndConfig config,
           Rng& rng);

  /// Intrinsic bonus for one state [C, G, G]: normalized prediction error.
  /// Also folds the raw error into the running normalization statistics.
  float bonus(const nn::Tensor& state);

  /// One predictor training pass over the given states (shuffled minibatch
  /// MSE steps). Returns the mean pre-update prediction error.
  double train(const std::vector<const nn::Tensor*>& states, Rng& rng);

  std::size_t embed_dim() const { return config_.embed_dim; }

  /// Raw (unnormalized) prediction error for diagnostics/tests.
  double raw_error(const nn::Tensor& state);

  /// Full RND state — target and predictor weights, the predictor's Adam
  /// moments, and the running error-normalization statistics — as v2
  /// checkpoint records under `prefix`, so a resumed trainer produces
  /// bit-identical bonuses. Load requires an identically-configured RndBonus.
  void save_state(nn::StateWriter& w, const std::string& prefix) const;
  void load_state(nn::StateReader& r, const std::string& prefix);

 private:
  nn::Tensor embed_target(const nn::Tensor& batch);

  RndConfig config_;
  nn::Sequential target_;
  nn::Sequential predictor_;
  nn::Adam optimizer_;
  // Running normalization of raw errors (Welford).
  double err_mean_ = 0.0;
  double err_m2_ = 0.0;
  std::size_t err_n_ = 0;
};

/// Builds the shared RND conv-encoder architecture. Exposed for tests.
nn::Sequential make_rnd_encoder(std::size_t channels_in, std::size_t grid,
                                const RndConfig& config, Rng& rng,
                                const std::string& name);

}  // namespace rlplan::rl
