// Sequential chiplet-placement MDP (the paper's "floorplanning environment").
//
// One episode places all chiplets, one per step, in a fixed order (largest
// area first by default). The action space is a G x G grid of candidate
// lower-left positions; the environment maintains the action mask M_t that
// zeroes infeasible cells (overlap / out of bounds), exactly as Fig. 1 of the
// paper describes. After the final placement, the reward calculator performs
// microbump assignment for the wirelength term and queries the injected
// thermal evaluator for the temperature term. Each placement is mirrored to
// the evaluator through the incremental protocol (notify_place), so an
// incremental evaluator (thermal/incremental.h) has every pairwise thermal
// coupling cached by the time the episode-end reward is computed; plain
// evaluators ignore the notifications and evaluate in one batch.
//
// Observation: a [C, G, G] tensor with C = 6 channels:
//   0  occupancy (fractional cell coverage of placed dies)
//   1  power-density map of placed dies (normalized)
//   2  feasibility mask of the chiplet being placed now
//   3  next-die width  / interposer width  (constant plane)
//   4  next-die height / interposer height (constant plane)
//   5  placement progress t / N             (constant plane)
#pragma once

#include <cstdint>
#include <vector>

#include "bump/assigner.h"
#include "core/chiplet.h"
#include "core/floorplan.h"
#include "core/reward.h"
#include "nn/tensor.h"
#include "thermal/evaluator.h"

namespace rlplan::rl {

struct EnvConfig {
  std::size_t grid = 32;    ///< G: action/state resolution per axis
  double spacing_mm = 0.0;  ///< minimum clearance between dies
  /// Placement order (chiplet indices); empty = by descending area.
  std::vector<std::size_t> order{};
  /// Extrinsic reward when the agent reaches a state with no feasible action
  /// (drives the policy away from dead-end packings).
  double dead_end_reward = -100.0;
};

struct StepOutcome {
  bool done = false;
  bool dead_end = false;
  double reward = 0.0;  ///< extrinsic; nonzero only at episode end
};

/// Terminal metrics of the last completed episode.
struct EpisodeMetrics {
  bool valid = false;
  double wirelength_mm = 0.0;
  double temperature_c = 0.0;
  double reward = 0.0;
};

class FloorplanEnv {
 public:
  /// `system` and `evaluator` must outlive the environment.
  FloorplanEnv(const ChipletSystem& system,
               thermal::ThermalEvaluator& evaluator,
               RewardCalculator reward_calc = RewardCalculator{},
               bump::BumpAssigner assigner = bump::BumpAssigner{},
               EnvConfig config = {});

  const ChipletSystem& system() const { return *system_; }
  const EnvConfig& config() const { return config_; }
  std::size_t grid() const { return config_.grid; }
  std::size_t num_actions() const { return config_.grid * config_.grid; }
  static constexpr std::size_t kChannels = 6;

  /// Starts a new episode; returns the initial observation.
  const nn::Tensor& reset();

  /// Current observation [kChannels, G, G] (valid after reset()).
  const nn::Tensor& observation() const { return observation_; }

  /// Feasibility of each action for the chiplet being placed now
  /// (1 = feasible). All-zero iff the episode is in a dead end.
  const std::vector<std::uint8_t>& action_mask() const { return mask_; }
  bool has_feasible_action() const;

  /// Applies an action (grid cell index). Infeasible actions throw
  /// std::invalid_argument — the agent must sample under the mask.
  StepOutcome step(std::size_t action);

  bool done() const { return done_; }
  std::size_t current_step() const { return t_; }
  /// Chiplet index being placed at the current step.
  std::size_t current_chiplet() const;

  const Floorplan& floorplan() const { return floorplan_; }
  const EpisodeMetrics& last_metrics() const { return metrics_; }
  const RewardCalculator& reward_calculator() const { return reward_calc_; }

  /// Grid-cell lower-left position in mm for an action index.
  Point action_position(std::size_t action) const;

  /// Evaluates a *complete external* floorplan with this env's reward
  /// pipeline (bump assignment + thermal evaluator). Used to score SA
  /// baselines under the identical objective.
  EpisodeMetrics evaluate_floorplan(const Floorplan& fp);

 private:
  void rebuild_mask();
  void rebuild_observation();
  double finish_episode();
  /// Shared metrics assembly; the flag picks the temperature query style
  /// (incremental for the internal episode end, batch for external scoring).
  EpisodeMetrics score_floorplan(const Floorplan& fp, bool use_incremental);

  const ChipletSystem* system_;
  thermal::ThermalEvaluator* evaluator_;
  RewardCalculator reward_calc_;
  bump::BumpAssigner assigner_;
  EnvConfig config_;

  std::vector<std::size_t> order_;
  Floorplan floorplan_;
  nn::Tensor observation_;
  std::vector<std::uint8_t> mask_;
  std::size_t t_ = 0;
  bool done_ = true;
  EpisodeMetrics metrics_{};
  double max_power_density_ = 0.0;
};

}  // namespace rlplan::rl
