// Experience storage and generalized advantage estimation.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/tensor.h"

namespace rlplan::rl {

/// One environment transition.
struct Transition {
  nn::Tensor state;                 ///< [C, G, G]
  std::vector<std::uint8_t> mask;   ///< feasibility mask at this state
  std::size_t action = 0;
  float log_prob = 0.0f;            ///< log pi_old(a|s)
  float value = 0.0f;               ///< V_old(s)
  float reward_ext = 0.0f;          ///< extrinsic (terminal-only in this MDP)
  float reward_int = 0.0f;          ///< RND intrinsic bonus (0 when disabled)
  bool episode_end = false;
};

struct GaeConfig {
  float gamma = 0.99f;
  float lam = 0.95f;
  float intrinsic_coef = 1.0f;  ///< weight on reward_int when summing
};

class RolloutBuffer {
 public:
  void clear();
  void push(Transition t);

  std::size_t size() const { return steps_.size(); }
  bool empty() const { return steps_.empty(); }
  const Transition& step(std::size_t i) const { return steps_.at(i); }
  const std::vector<Transition>& steps() const { return steps_; }
  /// Mutable access for in-place reward normalization before GAE.
  std::vector<Transition>& mutable_steps() { return steps_; }

  /// Computes GAE advantages and returns for every stored step. Episodes are
  /// delimited by episode_end; terminal bootstrap value is 0 (episodes are
  /// finite placements). Advantages are then normalized to zero mean / unit
  /// std over the buffer (standard PPO practice).
  void compute_advantages(const GaeConfig& config);

  const std::vector<float>& advantages() const { return advantages_; }
  const std::vector<float>& returns() const { return returns_; }

  /// Mean terminal extrinsic reward over completed episodes in the buffer.
  double mean_episode_reward() const;
  std::size_t num_episodes() const;

 private:
  std::vector<Transition> steps_;
  std::vector<float> advantages_;
  std::vector<float> returns_;
};

}  // namespace rlplan::rl
