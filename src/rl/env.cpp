#include "rl/env.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rlplan::rl {

FloorplanEnv::FloorplanEnv(const ChipletSystem& system,
                           thermal::ThermalEvaluator& evaluator,
                           RewardCalculator reward_calc,
                           bump::BumpAssigner assigner, EnvConfig config)
    : system_(&system),
      evaluator_(&evaluator),
      reward_calc_(reward_calc),
      assigner_(std::move(assigner)),
      config_(std::move(config)),
      floorplan_(system),
      observation_({kChannels, config_.grid, config_.grid}),
      mask_(config_.grid * config_.grid, 0) {
  if (config_.grid < 4) {
    throw std::invalid_argument("EnvConfig: grid must be >= 4");
  }
  system.validate();
  order_ = config_.order.empty() ? system.placement_order_by_area()
                                 : config_.order;
  if (order_.size() != system.num_chiplets()) {
    throw std::invalid_argument(
        "EnvConfig: order must list every chiplet exactly once");
  }
  std::vector<bool> seen(system.num_chiplets(), false);
  for (std::size_t i : order_) {
    if (i >= system.num_chiplets() || seen[i]) {
      throw std::invalid_argument("EnvConfig: invalid placement order");
    }
    seen[i] = true;
  }
  for (const auto& c : system.chiplets()) {
    max_power_density_ = std::max(max_power_density_, c.power_density());
  }
  if (max_power_density_ <= 0.0) max_power_density_ = 1.0;
}

const nn::Tensor& FloorplanEnv::reset() {
  floorplan_.clear();
  evaluator_->notify_reset(*system_);
  t_ = 0;
  done_ = false;
  metrics_ = {};
  rebuild_mask();
  rebuild_observation();
  return observation_;
}

std::size_t FloorplanEnv::current_chiplet() const {
  if (done_) throw std::logic_error("current_chiplet: episode is done");
  return order_.at(t_);
}

Point FloorplanEnv::action_position(std::size_t action) const {
  const std::size_t g = config_.grid;
  if (action >= g * g) {
    throw std::invalid_argument("action index out of range");
  }
  const std::size_t row = action / g;
  const std::size_t col = action % g;
  const double px = system_->interposer_width() * static_cast<double>(col) /
                    static_cast<double>(g);
  const double py = system_->interposer_height() * static_cast<double>(row) /
                    static_cast<double>(g);
  return {px, py};
}

bool FloorplanEnv::has_feasible_action() const {
  return std::any_of(mask_.begin(), mask_.end(),
                     [](std::uint8_t m) { return m != 0; });
}

StepOutcome FloorplanEnv::step(std::size_t action) {
  if (done_) throw std::logic_error("step: episode is done; call reset()");
  if (action >= mask_.size() || mask_[action] == 0) {
    throw std::invalid_argument(
        "step: infeasible action (the agent must respect the mask)");
  }
  const std::size_t chiplet = current_chiplet();
  const Point position = action_position(action);
  floorplan_.place(chiplet, position, /*rotated=*/false);
  // Keep an incremental evaluator in sync as the episode builds up, so the
  // episode-end temperature query finds every pairwise coupling already
  // cached (a no-op for evaluators without incremental support).
  evaluator_->notify_place(*system_, chiplet, {position, /*rotated=*/false});
  ++t_;

  StepOutcome out;
  if (t_ == order_.size()) {
    done_ = true;
    out.done = true;
    out.reward = finish_episode();
    return out;
  }

  rebuild_mask();
  if (!has_feasible_action()) {
    done_ = true;
    out.done = true;
    out.dead_end = true;
    out.reward = config_.dead_end_reward;
    metrics_ = {};  // no valid terminal metrics for dead ends
    return out;
  }
  rebuild_observation();
  return out;
}

double FloorplanEnv::finish_episode() {
  // The incremental path reads the state built up by the per-step
  // notify_place() calls; the default protocol falls back to a full batch
  // evaluation, so both produce the same temperature.
  metrics_ = score_floorplan(floorplan_, /*use_incremental=*/true);
  evaluator_->commit();
  return metrics_.reward;
}

EpisodeMetrics FloorplanEnv::evaluate_floorplan(const Floorplan& fp) {
  if (!fp.is_complete()) {
    throw std::logic_error("evaluate_floorplan: incomplete floorplan");
  }
  return score_floorplan(fp, /*use_incremental=*/false);
}

EpisodeMetrics FloorplanEnv::score_floorplan(const Floorplan& fp,
                                             bool use_incremental) {
  EpisodeMetrics m;
  m.valid = true;
  m.wirelength_mm = assigner_.assign(*system_, fp).total_mm;
  m.temperature_c =
      use_incremental ? evaluator_->incremental_max_temperature(*system_, fp)
                      : evaluator_->max_temperature(*system_, fp);
  m.reward = reward_calc_.reward(m.wirelength_mm, m.temperature_c);
  return m;
}

void FloorplanEnv::rebuild_mask() {
  const std::size_t g = config_.grid;
  std::fill(mask_.begin(), mask_.end(), 0);
  if (t_ >= order_.size()) return;
  const std::size_t chiplet = order_[t_];
  for (std::size_t a = 0; a < g * g; ++a) {
    if (floorplan_.can_place(chiplet, action_position(a), /*rotated=*/false,
                             config_.spacing_mm)) {
      mask_[a] = 1;
    }
  }
}

void FloorplanEnv::rebuild_observation() {
  const std::size_t g = config_.grid;
  observation_.fill(0.0f);
  const double cw = system_->interposer_width() / static_cast<double>(g);
  const double ch = system_->interposer_height() / static_cast<double>(g);

  // Channels 0/1: occupancy and normalized power density of placed dies.
  for (std::size_t i = 0; i < system_->num_chiplets(); ++i) {
    if (!floorplan_.is_placed(i)) continue;
    const Rect r = floorplan_.rect_of(i);
    const double density =
        system_->chiplet(i).power_density() / max_power_density_;
    const auto c0 = static_cast<std::size_t>(
        std::clamp(std::floor(r.x / cw), 0.0, static_cast<double>(g - 1)));
    const auto c1 = static_cast<std::size_t>(
        std::clamp(std::ceil(r.right() / cw), 0.0, static_cast<double>(g)));
    const auto r0 = static_cast<std::size_t>(
        std::clamp(std::floor(r.y / ch), 0.0, static_cast<double>(g - 1)));
    const auto r1 = static_cast<std::size_t>(
        std::clamp(std::ceil(r.top() / ch), 0.0, static_cast<double>(g)));
    for (std::size_t row = r0; row < r1; ++row) {
      for (std::size_t col = c0; col < c1; ++col) {
        const Rect cell{static_cast<double>(col) * cw,
                        static_cast<double>(row) * ch, cw, ch};
        const auto f = static_cast<float>(
            cell.intersection_area(r) / cell.area());
        if (f <= 0.0f) continue;
        observation_.at(0, row, col) =
            std::min(1.0f, observation_.at(0, row, col) + f);
        observation_.at(1, row, col) = std::min(
            1.0f, observation_.at(1, row, col) +
                      f * static_cast<float>(density));
      }
    }
  }

  // Channel 2: feasibility of the current chiplet. Channels 3-5: scalars.
  float w_next = 0.0f;
  float h_next = 0.0f;
  if (t_ < order_.size()) {
    const Chiplet& next = system_->chiplet(order_[t_]);
    w_next = static_cast<float>(next.width / system_->interposer_width());
    h_next = static_cast<float>(next.height / system_->interposer_height());
  }
  const auto progress = static_cast<float>(
      static_cast<double>(t_) / static_cast<double>(order_.size()));
  for (std::size_t row = 0; row < g; ++row) {
    for (std::size_t col = 0; col < g; ++col) {
      observation_.at(2, row, col) =
          mask_[row * g + col] != 0 ? 1.0f : 0.0f;
      observation_.at(3, row, col) = w_next;
      observation_.at(4, row, col) = h_next;
      observation_.at(5, row, col) = progress;
    }
  }
}

}  // namespace rlplan::rl
