#include "rl/rollout.h"

#include <cmath>
#include <stdexcept>

namespace rlplan::rl {

void RolloutBuffer::clear() {
  steps_.clear();
  advantages_.clear();
  returns_.clear();
}

void RolloutBuffer::push(Transition t) { steps_.push_back(std::move(t)); }

void RolloutBuffer::compute_advantages(const GaeConfig& config) {
  const std::size_t n = steps_.size();
  advantages_.assign(n, 0.0f);
  returns_.assign(n, 0.0f);
  if (n == 0) return;
  if (!steps_.back().episode_end) {
    throw std::logic_error(
        "compute_advantages: buffer must end on an episode boundary");
  }

  // Backward GAE sweep; delta_t = r_t + gamma V(s_{t+1}) - V(s_t).
  float gae = 0.0f;
  for (std::size_t idx = n; idx-- > 0;) {
    const Transition& t = steps_[idx];
    const float next_value =
        t.episode_end ? 0.0f : steps_[idx + 1].value;
    const float reward =
        t.reward_ext + config.intrinsic_coef * t.reward_int;
    const float delta =
        reward + config.gamma * next_value - t.value;
    gae = t.episode_end
              ? delta
              : delta + config.gamma * config.lam * gae;
    advantages_[idx] = gae;
    returns_[idx] = gae + t.value;
  }

  // Normalize advantages.
  double mean = 0.0;
  for (float a : advantages_) mean += a;
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (float a : advantages_) {
    const double d = a - mean;
    var += d * d;
  }
  var /= static_cast<double>(n);
  const double stddev = std::sqrt(var);
  const double denom = stddev > 1e-8 ? stddev : 1.0;
  for (float& a : advantages_) {
    a = static_cast<float>((a - mean) / denom);
  }
}

double RolloutBuffer::mean_episode_reward() const {
  double sum = 0.0;
  std::size_t count = 0;
  for (const auto& t : steps_) {
    if (t.episode_end) {
      sum += t.reward_ext;
      ++count;
    }
  }
  return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

std::size_t RolloutBuffer::num_episodes() const {
  std::size_t count = 0;
  for (const auto& t : steps_) {
    if (t.episode_end) ++count;
  }
  return count;
}

}  // namespace rlplan::rl
