// Ablation: how much work does action masking do?
//
// The paper's Fig. 1 highlights the action mask M_t that zeroes infeasible
// placements. This bench quantifies the mask's effect: the feasible-action
// fraction as placement progresses, and the dead-end rate of a random
// (mask-respecting) policy — i.e. how often even masked random placement
// paints itself into a corner, which is what the RL policy must learn to
// avoid beyond the mask.
//
// Flags: --episodes=N (default 2000) --grid=G (default 16)
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "systems/synthetic.h"
#include "rl/env.h"
#include "util/stats.h"

using namespace rlplan;

namespace {

// Geometric stand-in evaluator: this bench only studies masking, so thermal
// fidelity is irrelevant and characterization would be wasted time.
class NullEvaluator final : public thermal::ThermalEvaluator {
 public:
  double max_temperature(const ChipletSystem&, const Floorplan&) override {
    ++count_;
    return 45.0;
  }
  long num_evaluations() const override { return count_; }
  std::string name() const override { return "null"; }

 private:
  long count_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const long episodes = bench::flag_int(argc, argv, "episodes", 2000);
  const auto grid =
      static_cast<std::size_t>(bench::flag_int(argc, argv, "grid", 16));

  std::printf("ABLATION: action-mask pruning and dead-end statistics "
              "(%ld random episodes, grid %zu)\n\n", episodes, grid);
  std::printf("%-10s %10s %18s %14s %12s\n", "system", "util", "mean feasible",
              "final feasible", "dead-end");

  systems::SyntheticConfig sc;
  sc.interposer_w_mm = 40.0;
  sc.interposer_h_mm = 40.0;
  const systems::SyntheticSystemGenerator gen(sc);

  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto sys = gen.generate(seed * 17 + 3);
    NullEvaluator eval;
    rl::FloorplanEnv env(sys, eval, RewardCalculator{}, bump::BumpAssigner{},
                         {.grid = grid});
    Rng rng(seed);
    RunningStats feasible_frac, final_step_frac;
    long dead_ends = 0;
    for (long ep = 0; ep < episodes; ++ep) {
      env.reset();
      bool dead = false;
      while (!env.done()) {
        const auto& mask = env.action_mask();
        long feasible = 0;
        for (const auto m : mask) feasible += m;
        const double frac =
            static_cast<double>(feasible) / static_cast<double>(mask.size());
        feasible_frac.add(frac);
        if (env.current_step() + 1 == sys.num_chiplets()) {
          final_step_frac.add(frac);
        }
        // Uniform random choice among feasible actions.
        std::vector<std::size_t> options;
        for (std::size_t a = 0; a < mask.size(); ++a) {
          if (mask[a] != 0) options.push_back(a);
        }
        const auto pick = options[rng.uniform_int(
            static_cast<std::uint64_t>(options.size()))];
        const auto out = env.step(pick);
        if (out.dead_end) dead = true;
      }
      if (dead) ++dead_ends;
    }
    std::printf("%-10s %10.2f %17.1f%% %13.1f%% %11.2f%%\n",
                sys.name().c_str(), sys.utilization(),
                100.0 * feasible_frac.mean(), 100.0 * final_step_frac.mean(),
                100.0 * static_cast<double>(dead_ends) /
                    static_cast<double>(episodes));
  }
  std::printf("\nInterpretation: masking removes the (1 - feasible%%) of the "
              "action space that a penalty-only agent would waste samples "
              "on; residual dead-ends are what the policy itself must avoid "
              "(the env's dead_end_reward drives this).\n");
  return 0;
}
