// load_serve — concurrent-client load bench for the serve daemon.
//
// Measures the daemon's reason to exist: aggregate throughput when N clients
// submit jobs concurrently against ONE resident engine (characterization
// paid once, shared), versus the cold baseline of running the same jobs
// sequentially through fresh single-use runners (characterization paid per
// job — what N cold CLI invocations would do).
//
// The served path is end-to-end real: an in-process ServeEngine behind a
// JsonlServer on an ephemeral loopback port, driven by real client threads
// over real TCP sockets speaking the JSONL protocol. Per-job latency is
// measured client-side (submit -> result line).
//
//   load_serve [--clients=8] [--jobs=8] [--sa-evals=1500]
//              [--scenario=scenarios/inline_tiny_trio.json]
//              [--smoke]              tiny budgets for CI
//              [--json=BENCH_serve.json]
//              [--min-jobs-per-sec=X] gate: served throughput floor,
//                                     scaled by --perf-scale (0 disables)
//              [--min-speedup=X]      gate: served/cold ratio floor
//                                     (skipped when --perf-scale=0)
//              [--perf-scale=X]
//
// Both paths use the runner's default characterization config — exactly what
// the daemon pays in production — so the measured speedup is the real
// amortization win, not a resolution trick in either direction.
#include <algorithm>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "serve/engine.h"
#include "serve/client.h"
#include "serve/server.h"
#include "systems/scenario.h"
#include "thermal/layer_stack.h"
#include "util/json.h"
#include "util/stats.h"
#include "util/timer.h"

using namespace rlplan;

namespace {

/// The job list: one base scenario (the smallest in-repo suite entry),
/// SA-only, with a distinct name and seed per job — same footprint, so the
/// resident engine characterizes once and every later job hits the cache.
std::vector<systems::Scenario> make_jobs(const std::string& scenario_path,
                                         std::size_t count, long sa_evals) {
  systems::Scenario base = systems::load_scenario_file(scenario_path);
  base.budget.run_rl = false;
  base.budget.sa_evaluations = sa_evals;
  std::vector<systems::Scenario> jobs;
  jobs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    systems::Scenario s = base;
    s.name = "load-" + std::to_string(i);
    s.seed = base.seed + static_cast<unsigned>(i);
    jobs.push_back(std::move(s));
  }
  return jobs;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t clients =
      static_cast<std::size_t>(bench::flag_int(argc, argv, "clients", 8));
  std::size_t jobs_n =
      static_cast<std::size_t>(bench::flag_int(argc, argv, "jobs", 8));
  long sa_evals = bench::flag_int(argc, argv, "sa-evals", 1500);
  if (bench::flag_present(argc, argv, "smoke")) {
    clients = 8;
    jobs_n = 8;
    sa_evals = 400;
  }
  clients = std::max<std::size_t>(1, std::min(clients, jobs_n));
  const std::string json_path =
      bench::flag_str(argc, argv, "json", "BENCH_serve.json");
  const std::string scenario_path = bench::flag_str(
      argc, argv, "scenario", "scenarios/inline_tiny_trio.json");
  const double perf_scale = bench::flag_double(argc, argv, "perf-scale", 1.0);
  const double min_jobs_per_sec =
      bench::flag_double(argc, argv, "min-jobs-per-sec", 0.0);
  const double min_speedup =
      bench::flag_double(argc, argv, "min-speedup", 0.0);

  const thermal::LayerStack stack = thermal::LayerStack::default_2p5d();
  std::vector<systems::Scenario> jobs;
  try {
    jobs = make_jobs(scenario_path, jobs_n, sa_evals);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[load_serve] %s\n", e.what());
    return 2;
  }

  // Default RunnerConfig: the same coarse characterization the daemon and
  // regress use, so cold-vs-served measures what operators actually see.
  const serve::RunnerConfig runner_config;

  // ---- served: N concurrent clients over real TCP against one engine ----
  double served_s = 0.0;
  std::vector<double> latencies_ms(jobs_n, 0.0);
  serve::CharacterizationCacheStats cache_stats;
  {
    serve::ServeEngineConfig config;
    config.workers = clients;
    config.runner = runner_config;
    serve::ServeEngine engine(stack, config);
    serve::JsonlServer server(engine, {});
    server.start();
    const std::uint16_t port = server.port();

    std::mutex error_mutex;
    std::string first_error;
    const Timer timer;
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        try {
          serve::Client client;
          client.connect("127.0.0.1", port);
          for (std::size_t i = c; i < jobs_n; i += clients) {
            const Timer job_timer;
            const std::uint64_t id =
                client.submit(systems::scenario_to_json(jobs[i]));
            const util::JsonValue response = client.wait_result(id);
            latencies_ms[i] = job_timer.seconds() * 1e3;
            if (!response.bool_or("ok", false) ||
                response.at("job").string_or("state", "") != "done") {
              throw std::runtime_error("job " + jobs[i].name + " failed: " +
                                       response.dump());
            }
          }
        } catch (const std::exception& e) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (first_error.empty()) first_error = e.what();
        }
      });
    }
    for (std::thread& t : threads) t.join();
    served_s = timer.seconds();
    cache_stats = engine.stats().cache;
    server.stop();
    engine.shutdown();
    if (!first_error.empty()) {
      std::fprintf(stderr, "[load_serve] served run failed: %s\n",
                   first_error.c_str());
      return 2;
    }
  }

  // ---- cold baseline: sequential fresh runners (CLI-invocation model) ----
  const Timer cold_timer;
  for (const systems::Scenario& job : jobs) {
    serve::ScenarioRunner runner(stack, runner_config);
    const serve::ScenarioRunResult r = runner.run(job);
    if (!r.error.empty()) {
      std::fprintf(stderr, "[load_serve] cold run of %s failed: %s\n",
                   job.name.c_str(), r.error.c_str());
      return 2;
    }
  }
  const double cold_s = cold_timer.seconds();

  const double jobs_per_sec =
      served_s > 0.0 ? static_cast<double>(jobs_n) / served_s : 0.0;
  const double cold_jobs_per_sec =
      cold_s > 0.0 ? static_cast<double>(jobs_n) / cold_s : 0.0;
  const double speedup =
      cold_jobs_per_sec > 0.0 ? jobs_per_sec / cold_jobs_per_sec : 0.0;
  const double p50_ms = quantile(latencies_ms, 0.5);
  const double p99_ms = quantile(latencies_ms, 0.99);

  std::printf("[load_serve] %zu jobs, %zu clients: served %.2f jobs/s "
              "(p50 %.0f ms, p99 %.0f ms), cold %.2f jobs/s, speedup %.2fx, "
              "cache hit rate %.2f\n",
              jobs_n, clients, jobs_per_sec, p50_ms, p99_ms,
              cold_jobs_per_sec, speedup, cache_stats.hit_rate());

  util::JsonValue j = util::JsonValue::make_object();
  j.set("bench", "load_serve");
  j.set("clients", clients);
  j.set("jobs", jobs_n);
  j.set("sa_evals", sa_evals);
  j.set("perf_scale", perf_scale);
  j.set("jobs_per_sec", jobs_per_sec);
  j.set("cold_jobs_per_sec", cold_jobs_per_sec);
  j.set("speedup", speedup);
  j.set("latency_p50_ms", p50_ms);
  j.set("latency_p99_ms", p99_ms);
  j.set("cache_hits", cache_stats.hits);
  j.set("cache_misses", cache_stats.misses);
  j.set("cache_hit_rate", cache_stats.hit_rate());
  try {
    util::write_json_file(json_path, j);
    std::fprintf(stderr, "[load_serve] wrote %s\n", json_path.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[load_serve] %s\n", e.what());
    return 2;
  }

  int rc = 0;
  const double floor = min_jobs_per_sec * perf_scale;
  if (floor > 0.0 && jobs_per_sec < floor) {
    std::fprintf(stderr, "[load_serve] FAIL: %.2f jobs/s below floor %.2f\n",
                 jobs_per_sec, floor);
    rc = 1;
  }
  // The speedup gate is a ratio (timer-noise sensitive, not machine-speed
  // sensitive), but sanitizer builds distort the two paths unevenly — skip
  // it with the same switch that disables the absolute floors.
  if (min_speedup > 0.0 && perf_scale > 0.0 && speedup < min_speedup) {
    std::fprintf(stderr, "[load_serve] FAIL: speedup %.2fx below floor "
                 "%.2fx\n", speedup, min_speedup);
    rc = 1;
  }
  return rc;
}
