// Regenerates TABLE II: accuracy and speed of the fast thermal model vs the
// ground-truth grid solver ("HotSpot") over a dataset of synthetic chiplet
// systems.
//
//   Paper: MSE 0.1732 K^2 | RMSE 0.4162 K | MAE 0.2523 K | MAPE 0.0726 %
//          fast 0.1012 s/eval vs HotSpot 12.8976 s/eval  (127x)
//
// Flags: --samples=N (default 800; paper used 2000) --grid=G (default 48)
//        --seed=S
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "systems/synthetic.h"
#include "thermal/characterize.h"
#include "util/stats.h"
#include "util/timer.h"

using namespace rlplan;

int main(int argc, char** argv) {
  const long samples = bench::flag_int(argc, argv, "samples", 800);
  const long grid = bench::flag_int(argc, argv, "grid", 48);
  const auto seed =
      static_cast<std::uint64_t>(bench::flag_int(argc, argv, "seed", 1));

  const auto stack = thermal::LayerStack::default_2p5d();
  systems::SyntheticConfig sc;  // 50x50 mm dataset interposer
  const systems::SyntheticSystemGenerator gen(sc);

  const thermal::GridDims dims{static_cast<std::size_t>(grid),
                               static_cast<std::size_t>(grid)};
  thermal::CharacterizationConfig cc;
  cc.solver.dims = dims;
  thermal::ThermalCharacterizer charac(stack, cc);
  Timer t_char;
  const auto model =
      charac.characterize(sc.interposer_w_mm, sc.interposer_h_mm);
  std::fprintf(stderr, "[table2] characterization: %.1f s (%zu probe solves)\n",
               t_char.seconds(),
               charac.report().self_solves + charac.report().mutual_solves +
                   charac.report().position_solves);

  thermal::GridThermalSolver solver(stack, {.dims = dims});
  std::vector<double> pred, ref;
  pred.reserve(static_cast<std::size_t>(samples));
  ref.reserve(static_cast<std::size_t>(samples));
  double truth_s = 0.0;
  double fast_s = 0.0;
  for (long i = 0; i < samples; ++i) {
    const auto sys = gen.generate(seed * 1000003 + static_cast<std::uint64_t>(i));
    Rng rng(seed * 7919 + static_cast<std::uint64_t>(i));
    const auto fp = systems::random_legal_floorplan(sys, rng);
    Timer t1;
    ref.push_back(solver.solve(sys, fp).max_temp_c);
    truth_s += t1.seconds();
    Timer t2;
    pred.push_back(model.evaluate(sys, fp).max_temp_c);
    fast_s += t2.seconds();
  }

  const auto m = ErrorMetrics::compute(pred, ref);
  const double n = static_cast<double>(samples);
  const double speedup = truth_s / fast_s;

  std::printf("TABLE II: ACCURACY AND SPEED COMPARISON DURING THERMAL EVALUATION\n");
  std::printf("(%ld synthetic chiplet systems, %ldx%ld solver grid)\n\n",
              samples, grid, grid);
  std::printf("%-18s %-22s %-14s\n", "Metric", "Fast Thermal Model",
              "GridSolver (ref)");
  std::printf("%-18s %-22.4f %-14s\n", "MSE (K^2)", m.mse, "ground truth");
  std::printf("%-18s %-22.4f %-14s\n", "RMSE (K)", m.rmse, "ground truth");
  std::printf("%-18s %-22.4f %-14s\n", "MAE (K)", m.mae, "ground truth");
  std::printf("%-18s %-22.4f %-14s\n", "MAPE (%)", m.mape, "ground truth");
  std::printf("%-18s %.6f s (%.0fx)     %.4f s\n", "Inference speed",
              fast_s / n, speedup, truth_s / n);
  std::printf("\nPaper reference:   MSE 0.1732 | RMSE 0.4162 | MAE 0.2523 | "
              "MAPE 0.0726%% | 0.1012 s (127x) vs 12.8976 s\n");
  std::printf("Shape check:       MAE %s 1.5 K, speedup %s 120x\n",
              m.mae < 1.5 ? "<" : ">=", speedup > 120.0 ? ">" : "<=");
  return 0;
}
