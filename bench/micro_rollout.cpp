// Rollout-collection throughput: steps/sec of the parallel rollout
// subsystem at 1/2/4/8 environment replicas.
//
// Measures the full experience-collection pipeline — batched policy
// forwards, masked sampling, environment stepping, and the episode-end
// reward evaluation (microbump assignment + fast thermal model) — exactly as
// PpoTrainer consumes it. The 1-env row with 1 thread is the legacy
// single-environment baseline; the speedup column is relative to it.
//
// Flags:
//   --grid=N         action-grid resolution (default 32, the paper's G)
//   --chiplets=N     chiplets per synthetic system (default 8)
//   --episodes=N     episodes per timed measurement (default 48)
//   --threads=N      worker threads (default: = num_envs)
//   --max-envs=N     largest replica count, doubled from 1 (default 8)
#include <cinttypes>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "parallel/collector.h"
#include "parallel/thread_pool.h"
#include "parallel/vec_env.h"
#include "rl/policy_net.h"
#include "rl/rollout.h"
#include "systems/synthetic.h"
#include "thermal/characterize.h"
#include "thermal/evaluator.h"
#include "thermal/incremental.h"
#include "thermal/layer_stack.h"
#include "util/timer.h"

namespace {

struct Row {
  std::size_t num_envs = 0;
  std::size_t threads = 0;
  std::size_t steps = 0;
  double seconds = 0.0;
  double steps_per_sec = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace rlplan;

  const auto grid = static_cast<std::size_t>(
      bench::flag_int(argc, argv, "grid", 32));
  const auto chiplets = static_cast<std::size_t>(
      bench::flag_int(argc, argv, "chiplets", 8));
  const auto episodes = static_cast<std::size_t>(
      bench::flag_int(argc, argv, "episodes", 48));
  const long threads_flag = bench::flag_int(argc, argv, "threads", 0);
  const auto max_envs = static_cast<std::size_t>(
      bench::flag_int(argc, argv, "max-envs", 8));

  systems::SyntheticConfig sc;
  sc.interposer_w_mm = 45.0;
  sc.interposer_h_mm = 45.0;
  sc.min_chiplets = chiplets;
  sc.max_chiplets = chiplets;
  const ChipletSystem system =
      systems::SyntheticSystemGenerator(sc).generate(7, "micro-rollout");

  // The paper's training configuration: a characterized fast thermal model
  // answers the episode-end temperature query.
  const thermal::LayerStack stack = thermal::LayerStack::default_2p5d();
  thermal::CharacterizationConfig cc;
  cc.solver.dims = {24, 24};
  cc.auto_axis_points = 3;
  thermal::ThermalCharacterizer charac(stack, cc);
  const thermal::FastThermalModel model = charac.characterize(
      system.interposer_width(), system.interposer_height());
  std::fprintf(stderr, "[micro_rollout] characterization: %.1f s\n",
               charac.report().total_seconds);
  const thermal::IncrementalFastModelEvaluator prototype(model);

  rl::PolicyNetConfig net_config;
  net_config.channels_in = rl::FloorplanEnv::kChannels;
  net_config.grid = grid;

  rl::EnvConfig env_config;
  env_config.grid = grid;

  std::printf("%8s %8s %10s %10s %12s %9s\n", "envs", "threads", "steps",
              "seconds", "steps/sec", "speedup");

  std::vector<Row> rows;
  for (std::size_t num_envs = 1; num_envs <= max_envs; num_envs *= 2) {
    const std::size_t threads =
        threads_flag > 0 ? static_cast<std::size_t>(threads_flag) : num_envs;

    parallel::ThreadPool pool(threads);
    parallel::VecEnv venv(system, prototype, RewardCalculator{},
                          bump::BumpAssigner{}, env_config, num_envs,
                          /*seed=*/17);
    parallel::ParallelRolloutCollector collector(venv, pool);
    Rng net_rng(3);
    rl::PolicyValueNet net(net_config, net_rng);

    rl::RolloutBuffer warmup;
    collector.collect(net, num_envs, warmup);

    rl::RolloutBuffer buffer;
    const Timer timer;
    const parallel::CollectorStats stats =
        collector.collect(net, episodes, buffer);
    const double seconds = timer.seconds();

    Row row;
    row.num_envs = num_envs;
    row.threads = threads;
    row.steps = stats.steps;
    row.seconds = seconds;
    row.steps_per_sec = seconds > 0.0
                            ? static_cast<double>(stats.steps) / seconds
                            : 0.0;
    rows.push_back(row);

    const double speedup = rows.front().steps_per_sec > 0.0
                               ? row.steps_per_sec / rows.front().steps_per_sec
                               : 0.0;
    std::printf("%8zu %8zu %10zu %10.3f %12.0f %8.2fx\n", row.num_envs,
                row.threads, row.steps, row.seconds, row.steps_per_sec,
                speedup);
  }
  return 0;
}
