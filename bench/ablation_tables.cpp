// Ablation: which fast-thermal-model ingredients buy the accuracy?
//
// Sweeps the surrogate's design knobs (DESIGN.md section 5.2) against the
// ground-truth solver on a fixed synthetic dataset:
//   * paper-minimal: center-characterized tables only, center probes
//   * + geometric self-table axes
//   * + method-of-images boundary handling (the default configuration)
//   * + measured position-correction table instead of images
//   * source subsampling / receiver probing variants
//
// Flags: --samples=N (default 60) --grid=G (default 48)
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "systems/synthetic.h"
#include "thermal/characterize.h"
#include "util/stats.h"

using namespace rlplan;

namespace {

struct Variant {
  std::string name;
  thermal::CharacterizationConfig config;
};

}  // namespace

int main(int argc, char** argv) {
  const long samples = bench::flag_int(argc, argv, "samples", 60);
  const long grid = bench::flag_int(argc, argv, "grid", 48);

  const auto stack = thermal::LayerStack::default_2p5d();
  systems::SyntheticConfig sc;
  const systems::SyntheticSystemGenerator gen(sc);
  const thermal::GridDims dims{static_cast<std::size_t>(grid),
                               static_cast<std::size_t>(grid)};

  std::vector<Variant> variants;
  {
    Variant v;
    v.name = "paper-minimal (linear axes, no boundary model)";
    v.config.solver.dims = dims;
    v.config.geometric_axes = false;
    v.config.position_points = 0;
    v.config.model_config.use_images = false;
    v.config.model_config.source_subsamples = 1;
    v.config.model_config.receiver_probes = 1;
    variants.push_back(v);
  }
  {
    Variant v;
    v.name = "+ geometric self-table axes";
    v.config.solver.dims = dims;
    v.config.position_points = 0;
    v.config.model_config.use_images = false;
    v.config.model_config.source_subsamples = 1;
    v.config.model_config.receiver_probes = 1;
    variants.push_back(v);
  }
  {
    Variant v;
    v.name = "+ measured position correction";
    v.config.solver.dims = dims;
    v.config.model_config.use_images = false;
    v.config.model_config.source_subsamples = 1;
    v.config.model_config.receiver_probes = 1;
    variants.push_back(v);
  }
  {
    Variant v;
    v.name = "+ method-of-images boundaries";
    v.config.solver.dims = dims;
    v.config.model_config.source_subsamples = 1;
    v.config.model_config.receiver_probes = 1;
    variants.push_back(v);
  }
  {
    Variant v;
    v.name = "+ 2x2 source subsampling";
    v.config.solver.dims = dims;
    v.config.model_config.source_subsamples = 2;
    v.config.model_config.receiver_probes = 1;
    variants.push_back(v);
  }
  {
    Variant v;
    v.name = "+ 3x3 receiver probes (default)";
    v.config.solver.dims = dims;
    variants.push_back(v);  // all defaults
  }
  {
    Variant v;
    v.name = "default + kernel deconvolution";
    v.config.solver.dims = dims;
    v.config.kernel_deconvolution_iters = 3;
    variants.push_back(v);
  }
  {
    Variant v;
    v.name = "default + damped reflections (0.85)";
    v.config.solver.dims = dims;
    v.config.model_config.image_reflectivity = 0.85;
    variants.push_back(v);
  }

  // Shared ground-truth references. Floorplans hold pointers into
  // systems_list, so its capacity must be fixed before any floorplan is
  // created (reallocation would dangle them).
  thermal::GridThermalSolver solver(stack, {.dims = dims});
  std::vector<ChipletSystem> systems_list;
  std::vector<Floorplan> floorplans;
  std::vector<double> ref;
  systems_list.reserve(static_cast<std::size_t>(samples));
  floorplans.reserve(static_cast<std::size_t>(samples));
  ref.reserve(static_cast<std::size_t>(samples));
  for (long i = 0; i < samples; ++i) {
    systems_list.push_back(gen.generate(4000 + static_cast<std::uint64_t>(i)));
    Rng rng(5000 + static_cast<std::uint64_t>(i));
    floorplans.push_back(
        systems::random_legal_floorplan(systems_list.back(), rng));
    ref.push_back(
        solver.solve(systems_list.back(), floorplans.back()).max_temp_c);
  }

  std::printf("ABLATION: fast-thermal-model ingredients (%ld systems, "
              "%ldx%ld grid)\n\n", samples, grid, grid);
  std::printf("%-48s %9s %9s %9s\n", "Variant", "MAE(K)", "RMSE(K)",
              "char(s)");
  std::fflush(stdout);
  for (const auto& variant : variants) {
    try {
      thermal::ThermalCharacterizer charac(stack, variant.config);
      const auto model =
          charac.characterize(sc.interposer_w_mm, sc.interposer_h_mm);
      std::vector<double> pred;
      pred.reserve(ref.size());
      for (std::size_t i = 0; i < ref.size(); ++i) {
        pred.push_back(
            model.evaluate(systems_list[i], floorplans[i]).max_temp_c);
      }
      const auto m = ErrorMetrics::compute(pred, ref);
      std::printf("%-48s %9.4f %9.4f %9.1f\n", variant.name.c_str(), m.mae,
                  m.rmse, charac.report().total_seconds);
    } catch (const std::exception& e) {
      std::printf("%-48s FAILED: %s\n", variant.name.c_str(), e.what());
    }
    std::fflush(stdout);
  }
  return 0;
}
