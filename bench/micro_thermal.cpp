// Micro-benchmarks of the thermal substrate.
//
// Three parts:
//  1. A hand-rolled incremental-vs-batch comparison of single-die moves on
//     the fast model at 4/8/16/32 chiplets (the reward hot path both
//     optimizers sit on), printed as a table and emitted as machine-readable
//     BENCH_thermal.json so later PRs can track the perf trajectory.
//     Flags: --moves=N, --json=PATH, --smoke (tiny move counts, skip the
//     google-benchmark suite — the CI smoke step uses this).
//  2. A whole-floorplan batch comparison: K candidate floorplans scored with
//     one FastThermalModel::evaluate_batch() call (the SoA kernel, fanned
//     over a ThreadPool when --batch-threads > 1) versus K repeated single
//     evaluate() calls. Flags: --batch=K (64), --batch-repeats=N,
//     --batch-threads=N (default: hardware), --min-batch-speedup=X (gate).
//  3. The google-benchmark suite covering the cost model behind Table II's
//     speed column: full grid solves at several resolutions, matrix assembly
//     alone, fast-model evaluation, and microbump assignment.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <span>
#include <vector>

#include "bench/bench_util.h"
#include "bump/assigner.h"
#include "parallel/thread_pool.h"
#include "systems/synthetic.h"
#include "systems/systems.h"
#include "thermal/characterize.h"
#include "thermal/grid_solver.h"
#include "thermal/incremental.h"
#include "thermal/soa_snapshot.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace rlplan;

namespace {

const ChipletSystem& test_system() {
  static const ChipletSystem sys = [] {
    systems::SyntheticConfig sc;
    sc.min_chiplets = 6;
    sc.max_chiplets = 6;
    return systems::SyntheticSystemGenerator(sc).generate(42, "bench6");
  }();
  return sys;
}

const Floorplan& test_floorplan() {
  static const Floorplan fp = [] {
    Rng rng(7);
    return systems::random_legal_floorplan(test_system(), rng);
  }();
  return fp;
}

const thermal::LayerStack& stack() {
  static const thermal::LayerStack s = thermal::LayerStack::default_2p5d();
  return s;
}

void BM_GridSolve(benchmark::State& state) {
  const auto g = static_cast<std::size_t>(state.range(0));
  thermal::GridSolverConfig config{.dims = {g, g}};
  config.warm_start = false;
  thermal::GridThermalSolver solver(stack(), config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solver.solve(test_system(), test_floorplan()).max_temp_c);
  }
  state.SetLabel(std::to_string(g) + "x" + std::to_string(g) + " grid");
}
BENCHMARK(BM_GridSolve)->Arg(24)->Arg(32)->Arg(48)->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_GridSolveWarmStart(benchmark::State& state) {
  thermal::GridThermalSolver solver(stack(), {.dims = {48, 48}});
  solver.solve(test_system(), test_floorplan());  // prime the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solver.solve(test_system(), test_floorplan()).max_temp_c);
  }
}
BENCHMARK(BM_GridSolveWarmStart)->Unit(benchmark::kMillisecond);

void BM_MatrixAssembly(benchmark::State& state) {
  const auto g = static_cast<std::size_t>(state.range(0));
  thermal::ThermalGridModel model(stack(), test_system(), {g, g});
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.build_conductance(test_floorplan()).nnz());
  }
}
BENCHMARK(BM_MatrixAssembly)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_FastModelEvaluate(benchmark::State& state) {
  static const thermal::FastThermalModel model = [] {
    thermal::CharacterizationConfig cc;
    cc.solver.dims = {32, 32};
    cc.auto_axis_points = 6;
    thermal::ThermalCharacterizer charac(stack(), cc);
    return charac.characterize(50.0, 50.0);
  }();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.evaluate(test_system(), test_floorplan()).max_temp_c);
  }
}
BENCHMARK(BM_FastModelEvaluate)->Unit(benchmark::kMicrosecond);

void BM_BumpAssignment(benchmark::State& state) {
  const bump::BumpAssigner assigner;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        assigner.assign(test_system(), test_floorplan()).total_mm);
  }
}
BENCHMARK(BM_BumpAssignment)->Unit(benchmark::kMicrosecond);

void BM_BumpAssignmentMultiGpu(benchmark::State& state) {
  static const ChipletSystem sys = systems::make_multi_gpu_system();
  static const Floorplan fp = [] {
    Rng rng(3);
    return systems::random_legal_floorplan(sys, rng);
  }();
  const bump::BumpAssigner assigner;
  for (auto _ : state) {
    benchmark::DoNotOptimize(assigner.assign(sys, fp).total_mm);
  }
}
BENCHMARK(BM_BumpAssignmentMultiGpu)->Unit(benchmark::kMillisecond);

// ------------------------------------------------ incremental vs batch ----

constexpr double kBenchInterposer = 80.0;

/// Characterization-free synthetic model (smooth analytic tables) so the
/// incremental comparison — and the CI smoke run — starts instantly.
thermal::FastThermalModel synthetic_model() {
  std::vector<double> dims;
  for (double d = 2.0; d <= 22.0; d += 4.0) dims.push_back(d);
  std::vector<std::vector<double>> self_vals(dims.size(),
                                             std::vector<double>(dims.size()));
  std::vector<std::vector<double>> droop_vals(
      dims.size(), std::vector<double>(dims.size()));
  for (std::size_t i = 0; i < dims.size(); ++i) {
    for (std::size_t j = 0; j < dims.size(); ++j) {
      self_vals[i][j] = 3.0 / (1.0 + 0.04 * dims[i] * dims[j]);
      droop_vals[i][j] = 0.6;
    }
  }
  const double floor = 0.02;
  std::vector<double> distances, mutual_vals;
  for (double d = 0.0; d <= 120.0; d += 1.5) {
    distances.push_back(d);
    mutual_vals.push_back(floor + 0.8 * std::exp(-d / 10.0));
  }
  thermal::FastThermalModel model(
      thermal::SelfResistanceTable(dims, dims, self_vals),
      thermal::MutualResistanceTable(distances, mutual_vals), 45.0, {});
  model.set_image_params(kBenchInterposer, kBenchInterposer, floor);
  model.set_self_droop(thermal::BilinearTable2D(dims, dims, droop_vals));
  return model;
}

struct MoveRow {
  std::size_t chiplets = 0;
  double batch_evals_per_sec = 0.0;
  double incr_evals_per_sec = 0.0;         // dispatched pair-row kernels
  double scalar_incr_evals_per_sec = 0.0;  // forced-scalar incremental
  double speedup = 0.0;       // dispatched incremental vs batch
  double move_speedup = 0.0;  // dispatched vs forced-scalar incremental
  double move_ns = 0.0;         // ns per dispatched incremental move+query
  double scalar_move_ns = 0.0;  // ns per forced-scalar move+query
  double max_abs_diff_c = 0.0;     // dispatched incremental vs batch
  double max_scalar_diff_c = 0.0;  // forced-scalar incremental vs batch
};

MoveRow run_move_comparison(const thermal::FastThermalModel& model,
                            std::size_t n, long moves) {
  systems::SyntheticConfig sc;
  sc.min_chiplets = n;
  sc.max_chiplets = n;
  sc.interposer_w_mm = kBenchInterposer;
  sc.interposer_h_mm = kBenchInterposer;
  sc.max_utilization = 0.45;
  const ChipletSystem sys =
      systems::SyntheticSystemGenerator(sc).generate(1234 + n, "bench-incr");
  Rng rng(99 + n);
  const Floorplan initial = systems::random_legal_floorplan(sys, rng);

  // One shared single-die move tape so both engines do identical work.
  struct Move {
    std::size_t die;
    Point pos;
  };
  std::vector<Move> tape;
  tape.reserve(static_cast<std::size_t>(moves));
  for (long t = 0; t < moves; ++t) {
    const auto die = static_cast<std::size_t>(t) % n;
    const Rect r = initial.rect_of(die);
    tape.push_back({die,
                    {rng.uniform(0.0, kBenchInterposer - r.w),
                     rng.uniform(0.0, kBenchInterposer - r.h)}});
  }

  MoveRow row;
  row.chiplets = n;
  std::vector<double> batch_temps;
  batch_temps.reserve(tape.size());
  {
    thermal::FastModelEvaluator eval(model);
    Floorplan fp = initial;
    eval.max_temperature(sys, fp);  // prime (matches the incremental sync)
    const Timer timer;
    for (const Move& m : tape) {
      fp.place(m.die, m.pos, false);
      batch_temps.push_back(eval.max_temperature(sys, fp));
    }
    row.batch_evals_per_sec = static_cast<double>(moves) / timer.seconds();
  }
  // Both incremental tiers over the identical tape: forced scalar (the
  // bit-exact reference) and the runtime-dispatched pair-row kernels.
  const auto run_incremental = [&](util::SimdLevel level, double& evals_per_sec,
                                   double& max_diff) {
    thermal::IncrementalFastModelEvaluator eval(model);
    eval.set_simd_level(level);
    Floorplan fp = initial;
    eval.incremental_max_temperature(sys, fp);  // build the coupling cache
    eval.commit();
    const Timer timer;
    std::size_t t = 0;
    for (const Move& m : tape) {
      fp.place(m.die, m.pos, false);
      const double temp = eval.incremental_max_temperature(sys, fp);
      eval.commit();
      max_diff = std::max(max_diff, std::abs(temp - batch_temps[t++]));
    }
    evals_per_sec = static_cast<double>(moves) / timer.seconds();
  };
  run_incremental(util::SimdLevel::kScalar, row.scalar_incr_evals_per_sec,
                  row.max_scalar_diff_c);
  run_incremental(thermal::IncrementalThermalState::dispatch_level(),
                  row.incr_evals_per_sec, row.max_abs_diff_c);
  row.speedup = row.incr_evals_per_sec / row.batch_evals_per_sec;
  row.move_speedup = row.incr_evals_per_sec / row.scalar_incr_evals_per_sec;
  row.move_ns = 1e9 / row.incr_evals_per_sec;
  row.scalar_move_ns = 1e9 / row.scalar_incr_evals_per_sec;
  return row;
}

// ---------------------------------------------------- batch vs single ----

struct BatchRow {
  std::size_t chiplets = 0;
  std::size_t batch = 0;
  double single_evals_per_sec = 0.0;
  double batch_evals_per_sec = 0.0;
  double speedup = 0.0;
  double max_abs_diff_c = 0.0;
};

/// K random legal candidate floorplans scored via repeated evaluate() versus
/// one evaluate_batch() call per repeat — the SA-population / PPO-batch
/// query shape. Also cross-checks the SoA results against the scalar path
/// (documented tolerance: 1e-9 C).
BatchRow run_batch_comparison(const thermal::FastThermalModel& model,
                              std::size_t n, std::size_t batch, long repeats,
                              std::size_t threads) {
  systems::SyntheticConfig sc;
  sc.min_chiplets = n;
  sc.max_chiplets = n;
  sc.interposer_w_mm = kBenchInterposer;
  sc.interposer_h_mm = kBenchInterposer;
  sc.max_utilization = 0.45;
  const ChipletSystem sys =
      systems::SyntheticSystemGenerator(sc).generate(4321 + n, "bench-batch");
  Rng rng(55 + n);
  std::vector<Floorplan> candidates;
  candidates.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    candidates.push_back(systems::random_legal_floorplan(sys, rng));
  }

  BatchRow row;
  row.chiplets = n;
  row.batch = batch;

  std::vector<double> single_temps(batch);
  {
    const Timer timer;
    for (long r = 0; r < repeats; ++r) {
      for (std::size_t i = 0; i < batch; ++i) {
        single_temps[i] = model.evaluate(sys, candidates[i]).max_temp_c;
      }
    }
    row.single_evals_per_sec =
        static_cast<double>(repeats * static_cast<long>(batch)) /
        timer.seconds();
  }
  {
    parallel::ThreadPool pool(threads);
    parallel::ThreadPool* pool_ptr = pool.size() > 0 ? &pool : nullptr;
    std::vector<thermal::FastThermalResult> results;
    const Timer timer;
    for (long r = 0; r < repeats; ++r) {
      results = model.evaluate_batch(
          sys, std::span<const Floorplan>(candidates), pool_ptr);
    }
    row.batch_evals_per_sec =
        static_cast<double>(repeats * static_cast<long>(batch)) /
        timer.seconds();
    for (std::size_t i = 0; i < batch; ++i) {
      row.max_abs_diff_c =
          std::max(row.max_abs_diff_c,
                   std::abs(results[i].max_temp_c - single_temps[i]));
    }
  }
  row.speedup = row.batch_evals_per_sec / row.single_evals_per_sec;
  return row;
}

void write_json(const std::string& path, const std::vector<MoveRow>& rows,
                const std::vector<BatchRow>& batch_rows, long moves,
                std::size_t batch_threads, bool smoke) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "[micro_thermal] cannot write %s\n", path.c_str());
    return;
  }
  os << "{\n  \"bench\": \"micro_thermal_incremental\",\n"
     << "  \"moves_per_size\": " << moves << ",\n"
     << "  \"batch_threads\": " << batch_threads << ",\n"
     // Which kernel flavour the SoA batch numbers were produced with
     // (avx2/neon/scalar) — the runtime dispatch choice, after any
     // RLPLANNER_SIMD override; CI publishes it with the speedup trend.
     << "  \"simd\": \""
     << util::simd_level_name(thermal::SoaSnapshot::dispatch_level())
     << "\",\n"
     // Kernel level of the incremental pair-row path (same dispatch logic;
     // published separately so the move-speedup trend is self-describing).
     << "  \"incr_simd\": \""
     << util::simd_level_name(thermal::IncrementalThermalState::dispatch_level())
     << "\",\n"
     << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
     << "  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const MoveRow& r = rows[i];
    char buf[768];
    std::snprintf(buf, sizeof(buf),
                  "    {\"chiplets\": %zu, \"batch_evals_per_sec\": %.1f, "
                  "\"incremental_evals_per_sec\": %.1f, "
                  "\"scalar_incremental_evals_per_sec\": %.1f, "
                  "\"speedup\": %.2f, \"move_speedup\": %.2f, "
                  "\"move_ns\": %.1f, \"scalar_move_ns\": %.1f, "
                  "\"max_abs_diff_c\": %.3e, "
                  "\"max_scalar_diff_c\": %.3e}%s\n",
                  r.chiplets, r.batch_evals_per_sec, r.incr_evals_per_sec,
                  r.scalar_incr_evals_per_sec, r.speedup, r.move_speedup,
                  r.move_ns, r.scalar_move_ns, r.max_abs_diff_c,
                  r.max_scalar_diff_c, i + 1 < rows.size() ? "," : "");
    os << buf;
  }
  os << "  ],\n  \"batch_results\": [\n";
  for (std::size_t i = 0; i < batch_rows.size(); ++i) {
    const BatchRow& r = batch_rows[i];
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\"chiplets\": %zu, \"batch_size\": %zu, "
                  "\"single_evals_per_sec\": %.1f, "
                  "\"batch_evals_per_sec\": %.1f, \"speedup\": %.2f, "
                  "\"max_abs_diff_c\": %.3e}%s\n",
                  r.chiplets, r.batch, r.single_evals_per_sec,
                  r.batch_evals_per_sec, r.speedup, r.max_abs_diff_c,
                  i + 1 < batch_rows.size() ? "," : "");
    os << buf;
  }
  os << "  ]\n}\n";
  std::fprintf(stderr, "[micro_thermal] wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = rlplan::bench::flag_present(argc, argv, "smoke");
  const long moves =
      rlplan::bench::flag_int(argc, argv, "moves", smoke ? 32 : 2000);
  const std::string json_path = rlplan::bench::flag_str(
      argc, argv, "json", "BENCH_thermal.json");
  const auto batch = static_cast<std::size_t>(
      rlplan::bench::flag_int(argc, argv, "batch", 64));
  const long batch_repeats = rlplan::bench::flag_int(
      argc, argv, "batch-repeats", smoke ? 3 : 30);
  const auto batch_threads = static_cast<std::size_t>(rlplan::bench::flag_int(
      argc, argv, "batch-threads",
      static_cast<long>(parallel::ThreadPool::hardware_threads())));

  const thermal::FastThermalModel model = synthetic_model();
  std::printf("single-die moves, incremental vs batch (default config, %ld "
              "moves per size, incr simd=%s)\n",
              moves,
              util::simd_level_name(
                  thermal::IncrementalThermalState::dispatch_level()));
  std::printf("%9s %15s %15s %15s %8s %9s %9s %12s\n", "chiplets",
              "batch evals/s", "scalar incr/s", "simd incr/s", "vs batch",
              "move spd", "move ns", "max |diff| C");
  std::vector<MoveRow> rows;
  for (const std::size_t n : {4u, 8u, 16u, 32u}) {
    rows.push_back(run_move_comparison(model, n, moves));
    const MoveRow& r = rows.back();
    std::printf("%9zu %15.1f %15.1f %15.1f %7.2fx %8.2fx %9.0f %12.3e\n",
                r.chiplets, r.batch_evals_per_sec, r.scalar_incr_evals_per_sec,
                r.incr_evals_per_sec, r.speedup, r.move_speedup, r.move_ns,
                r.max_abs_diff_c);
  }

  std::printf("\nwhole-floorplan candidates, evaluate_batch (SoA kernel, "
              "simd=%s, %zu threads) vs repeated evaluate() (batch %zu, %ld "
              "repeats)\n",
              util::simd_level_name(thermal::SoaSnapshot::dispatch_level()),
              batch_threads, batch, batch_repeats);
  std::printf("%9s %7s %18s %18s %9s %14s\n", "chiplets", "batch",
              "single evals/s", "batch evals/s", "speedup", "max |diff| C");
  std::vector<BatchRow> batch_rows;
  for (const std::size_t n : {8u, 16u, 32u}) {
    batch_rows.push_back(
        run_batch_comparison(model, n, batch, batch_repeats, batch_threads));
    const BatchRow& r = batch_rows.back();
    std::printf("%9zu %7zu %18.1f %18.1f %8.2fx %14.3e\n", r.chiplets,
                r.batch, r.single_evals_per_sec, r.batch_evals_per_sec,
                r.speedup, r.max_abs_diff_c);
  }

  write_json(json_path, rows, batch_rows, moves, batch_threads, smoke);
  for (const MoveRow& r : rows) {
    if (r.max_abs_diff_c > 1e-9) {
      std::fprintf(stderr,
                   "[micro_thermal] FAIL: incremental diverged from batch "
                   "(%zu chiplets, %.3e C)\n",
                   r.chiplets, r.max_abs_diff_c);
      return 1;
    }
    // The forced-scalar tier's contract is bit-exactness against batch
    // (thermal/incremental.h); any nonzero diff is a broken invariant.
    if (r.max_scalar_diff_c != 0.0) {
      std::fprintf(stderr,
                   "[micro_thermal] FAIL: forced-scalar incremental not "
                   "bit-exact vs batch (%zu chiplets, %.3e C)\n",
                   r.chiplets, r.max_scalar_diff_c);
      return 1;
    }
  }
  // Move-speedup floor (the CI bench gate for the dispatched pair-row
  // kernels): dispatched vs forced-scalar incremental, applied at the sizes
  // where the kernel dominates the move cost (>= 16 dies). Only meaningful
  // when dispatch actually selects a SIMD level — the forced-scalar CI leg
  // must not pass this flag.
  const double min_move_speedup =
      rlplan::bench::flag_double(argc, argv, "min-move-speedup", 0.0);
  if (min_move_speedup > 0.0) {
    for (const MoveRow& r : rows) {
      if (r.chiplets >= 16 && r.move_speedup < min_move_speedup) {
        std::fprintf(stderr,
                     "[micro_thermal] FAIL: incremental move speedup %.2fx at "
                     "%zu chiplets below floor %.2fx\n",
                     r.move_speedup, r.chiplets, min_move_speedup);
        return 1;
      }
    }
  }
  for (const BatchRow& r : batch_rows) {
    // The SoA kernel's documented equivalence bar (soa_snapshot.h).
    if (r.max_abs_diff_c > 1e-9) {
      std::fprintf(stderr,
                   "[micro_thermal] FAIL: SoA batch diverged from single "
                   "evaluate (%zu chiplets, %.3e C)\n",
                   r.chiplets, r.max_abs_diff_c);
      return 1;
    }
  }
  // Batch-throughput floor (the CI bench gate): applied at the largest size,
  // where the kernel matters most.
  const double min_batch_speedup =
      rlplan::bench::flag_double(argc, argv, "min-batch-speedup", 0.0);
  if (min_batch_speedup > 0.0 && !batch_rows.empty() &&
      batch_rows.back().speedup < min_batch_speedup) {
    std::fprintf(stderr,
                 "[micro_thermal] FAIL: batch speedup %.2fx at %zu chiplets "
                 "below floor %.2fx\n",
                 batch_rows.back().speedup, batch_rows.back().chiplets,
                 min_batch_speedup);
    return 1;
  }
  // Throughput floor on the reward hot path (the CI bench-smoke gate). Set
  // far below healthy numbers so it only trips on an order-of-magnitude
  // regression, not on runner jitter.
  const double floor =
      rlplan::bench::flag_double(argc, argv, "min-evals-per-sec", 0.0);
  for (const MoveRow& r : rows) {
    if (floor > 0.0 && r.incr_evals_per_sec < floor) {
      std::fprintf(stderr,
                   "[micro_thermal] FAIL: %zu-chiplet incremental throughput "
                   "%.1f evals/s below floor %.1f\n",
                   r.chiplets, r.incr_evals_per_sec, floor);
      return 1;
    }
  }

  if (smoke) return 0;  // tiny-count CI mode: skip the google-benchmark suite
  // Note: our own --moves/--json flags are left in argv; google-benchmark
  // ignores flags it does not recognize unless asked to report them.
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
