// Micro-benchmarks of the thermal substrate (google-benchmark).
//
// Covers the cost model behind Table II's speed column: full grid solves at
// several resolutions, matrix assembly alone, fast-model evaluation, and
// microbump assignment.
#include <benchmark/benchmark.h>

#include "bump/assigner.h"
#include "systems/synthetic.h"
#include "systems/systems.h"
#include "thermal/characterize.h"
#include "thermal/grid_solver.h"

using namespace rlplan;

namespace {

const ChipletSystem& test_system() {
  static const ChipletSystem sys = [] {
    systems::SyntheticConfig sc;
    sc.min_chiplets = 6;
    sc.max_chiplets = 6;
    return systems::SyntheticSystemGenerator(sc).generate(42, "bench6");
  }();
  return sys;
}

const Floorplan& test_floorplan() {
  static const Floorplan fp = [] {
    Rng rng(7);
    return systems::random_legal_floorplan(test_system(), rng);
  }();
  return fp;
}

const thermal::LayerStack& stack() {
  static const thermal::LayerStack s = thermal::LayerStack::default_2p5d();
  return s;
}

void BM_GridSolve(benchmark::State& state) {
  const auto g = static_cast<std::size_t>(state.range(0));
  thermal::GridSolverConfig config{.dims = {g, g}};
  config.warm_start = false;
  thermal::GridThermalSolver solver(stack(), config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solver.solve(test_system(), test_floorplan()).max_temp_c);
  }
  state.SetLabel(std::to_string(g) + "x" + std::to_string(g) + " grid");
}
BENCHMARK(BM_GridSolve)->Arg(24)->Arg(32)->Arg(48)->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_GridSolveWarmStart(benchmark::State& state) {
  thermal::GridThermalSolver solver(stack(), {.dims = {48, 48}});
  solver.solve(test_system(), test_floorplan());  // prime the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solver.solve(test_system(), test_floorplan()).max_temp_c);
  }
}
BENCHMARK(BM_GridSolveWarmStart)->Unit(benchmark::kMillisecond);

void BM_MatrixAssembly(benchmark::State& state) {
  const auto g = static_cast<std::size_t>(state.range(0));
  thermal::ThermalGridModel model(stack(), test_system(), {g, g});
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.build_conductance(test_floorplan()).nnz());
  }
}
BENCHMARK(BM_MatrixAssembly)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_FastModelEvaluate(benchmark::State& state) {
  static const thermal::FastThermalModel model = [] {
    thermal::CharacterizationConfig cc;
    cc.solver.dims = {32, 32};
    cc.auto_axis_points = 6;
    thermal::ThermalCharacterizer charac(stack(), cc);
    return charac.characterize(50.0, 50.0);
  }();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.evaluate(test_system(), test_floorplan()).max_temp_c);
  }
}
BENCHMARK(BM_FastModelEvaluate)->Unit(benchmark::kMicrosecond);

void BM_BumpAssignment(benchmark::State& state) {
  const bump::BumpAssigner assigner;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        assigner.assign(test_system(), test_floorplan()).total_mm);
  }
}
BENCHMARK(BM_BumpAssignment)->Unit(benchmark::kMicrosecond);

void BM_BumpAssignmentMultiGpu(benchmark::State& state) {
  static const ChipletSystem sys = systems::make_multi_gpu_system();
  static const Floorplan fp = [] {
    Rng rng(3);
    return systems::random_legal_floorplan(sys, rng);
  }();
  const bump::BumpAssigner assigner;
  for (auto _ : state) {
    benchmark::DoNotOptimize(assigner.assign(sys, fp).total_mm);
  }
}
BENCHMARK(BM_BumpAssignmentMultiGpu)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
