// Shared helpers for the table-regeneration harnesses: minimal flag parsing
// and the method-comparison runner used by Table I and Table III.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bump/assigner.h"
#include "core/reward.h"
#include "rl/planner.h"
#include "sa/tap25d.h"
#include "thermal/characterize.h"
#include "thermal/evaluator.h"
#include "thermal/grid_solver.h"
#include "thermal/incremental.h"
#include "util/timer.h"

namespace rlplan::bench {

/// --name=value integer flag (returns fallback when absent).
inline long flag_int(int argc, char** argv, const char* name, long fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atol(argv[i] + prefix.size());
    }
  }
  return fallback;
}

inline double flag_double(int argc, char** argv, const char* name,
                          double fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atof(argv[i] + prefix.size());
    }
  }
  return fallback;
}

/// --name=value string flag (returns fallback when absent).
inline std::string flag_str(int argc, char** argv, const char* name,
                            const std::string& fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

inline bool flag_present(int argc, char** argv, const char* name) {
  const std::string flag = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

/// One method's result row, scored on the ground-truth solver.
struct MethodRow {
  std::string method;
  double reward = 0.0;
  double wirelength_mm = 0.0;
  double temperature_c = 0.0;
  double runtime_s = 0.0;
};

struct CompareConfig {
  std::size_t rl_grid = 20;
  int rl_epochs = 30;
  int rl_episodes_per_update = 16;
  float rl_lr = 1e-3f;
  thermal::GridDims solver_dims{48, 48};
  std::uint64_t seed = 1;
};

/// Runs the paper's four method configurations on one system:
/// RLPlanner, RLPlanner(RND), TAP-2.5D(grid solver), TAP-2.5D(fast model).
/// SA budgets are wall-clock matched to the RLPlanner training time, as in
/// Table I's footnote. All rows are scored with the ground-truth solver.
inline std::vector<MethodRow> compare_methods(
    const ChipletSystem& system, const thermal::LayerStack& stack,
    const CompareConfig& config) {
  std::vector<MethodRow> rows;

  // Shared characterization (cost reported once; excluded from per-method
  // runtimes, matching the paper's offline-characterization accounting).
  thermal::CharacterizationConfig cc;
  cc.solver.dims = config.solver_dims;
  thermal::ThermalCharacterizer charac(stack, cc);
  const thermal::FastThermalModel model = charac.characterize(
      system.interposer_width(), system.interposer_height());
  std::fprintf(stderr, "[bench] %s: characterization %.1f s\n",
               system.name().c_str(), charac.report().total_seconds);

  thermal::GridThermalSolver truth(stack, {.dims = config.solver_dims});
  const bump::BumpAssigner assigner;
  const RewardCalculator rc;
  const auto score = [&](const std::string& name, const Floorplan& fp,
                         double seconds) {
    MethodRow row;
    row.method = name;
    row.wirelength_mm = assigner.assign(system, fp).total_mm;
    row.temperature_c = truth.solve(system, fp).max_temp_c;
    row.reward = rc.reward(row.wirelength_mm, row.temperature_c);
    row.runtime_s = seconds;
    return row;
  };

  double rl_seconds = 0.0;
  for (const bool use_rnd : {false, true}) {
    rl::RlPlannerConfig pc;
    pc.env.grid = config.rl_grid;
    pc.net.grid = config.rl_grid;
    pc.epochs = config.rl_epochs;
    pc.ppo.episodes_per_update = config.rl_episodes_per_update;
    pc.ppo.adam.lr = config.rl_lr;
    pc.ppo.use_rnd = use_rnd;
    pc.solver.dims = config.solver_dims;
    pc.seed = config.seed + (use_rnd ? 1 : 0);
    rl::RlPlanner planner(pc);
    Timer t;
    const auto result = planner.plan_with_model(system, stack, model);
    const double secs = t.seconds();
    if (!use_rnd) rl_seconds = secs;
    rows.push_back(score(use_rnd ? "RLPlanner(RND)" : "RLPlanner",
                         *result.best, secs));
  }

  // SA baselines, wall-clock matched to RLPlanner training time.
  for (const bool fast : {false, true}) {
    sa::Tap25dConfig tc;
    tc.anneal.time_budget_s = rl_seconds;
    tc.anneal.max_evaluations = 100000000;
    tc.anneal.cooling = 0.97;
    tc.anneal.t_final = 1e-5;
    tc.seed = config.seed + 10;
    sa::Tap25dPlanner planner(tc);
    Timer t;
    if (fast) {
      thermal::IncrementalFastModelEvaluator eval(model);
      const auto result = planner.plan(system, eval, rc, assigner);
      rows.push_back(
          score("TAP-2.5D*(Fast Thermal Model)", result.best, t.seconds()));
    } else {
      thermal::GridSolverEvaluator eval(stack, {.dims = config.solver_dims});
      const auto result = planner.plan(system, eval, rc, assigner);
      rows.push_back(
          score("TAP-2.5D(GridSolver)", result.best, t.seconds()));
    }
  }
  return rows;
}

inline void print_rows(const std::string& system_name,
                       const std::vector<MethodRow>& rows) {
  std::printf("\n%s\n", system_name.c_str());
  std::printf("%-30s %10s %15s %16s %11s\n", "Method", "Reward",
              "Wirelength(mm)", "Temperature(C)", "Runtime(s)");
  for (const auto& r : rows) {
    std::printf("%-30s %10.4f %15.0f %16.2f %11.1f\n", r.method.c_str(),
                r.reward, r.wirelength_mm, r.temperature_c, r.runtime_s);
  }
}

}  // namespace rlplan::bench
