// Micro-benchmark of the observability layer itself — the numbers behind the
// "<2% enabled, unmeasurable disabled" claim in README's Observability
// section.
//
// Three parts, printed as a table and emitted as BENCH_obs.json:
//  1. Primitive cost: ns per counter add and ns per span enter/exit, measured
//     with telemetry disabled (the single relaxed-atomic check) and enabled.
//  2. Hot-path overhead: FastThermalModel::evaluate() in a tight loop with
//     telemetry off, then on, in the same process; the enabled/disabled
//     throughput ratio is the real-world overhead the instrumentation adds to
//     the thermal reward path.
//  3. Optional CI gates: --max-counter-ns / --max-span-ns / --max-overhead-pct
//     (0 disables each); exit 1 on breach. --smoke shrinks the loop counts.
//
// No google-benchmark dependency — timing loops are long enough (and repeated
// enough) that a plain steady_clock Timer resolves them.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "systems/synthetic.h"
#include "systems/systems.h"
#include "thermal/fast_model.h"
#include "thermal/resistance_table.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace rlplan;

namespace {

constexpr double kInterposer = 80.0;

/// Same characterization-free synthetic model micro_thermal uses, so the
/// overhead percentage is measured on the exact hot path CI already tracks.
thermal::FastThermalModel synthetic_model() {
  std::vector<double> dims;
  for (double d = 2.0; d <= 22.0; d += 4.0) dims.push_back(d);
  std::vector<std::vector<double>> self_vals(dims.size(),
                                             std::vector<double>(dims.size()));
  std::vector<std::vector<double>> droop_vals(
      dims.size(), std::vector<double>(dims.size()));
  for (std::size_t i = 0; i < dims.size(); ++i) {
    for (std::size_t j = 0; j < dims.size(); ++j) {
      self_vals[i][j] = 3.0 / (1.0 + 0.04 * dims[i] * dims[j]);
      droop_vals[i][j] = 0.6;
    }
  }
  const double floor = 0.02;
  std::vector<double> distances, mutual_vals;
  for (double d = 0.0; d <= 120.0; d += 1.5) {
    distances.push_back(d);
    mutual_vals.push_back(floor + 0.8 * std::exp(-d / 10.0));
  }
  thermal::FastThermalModel model(
      thermal::SelfResistanceTable(dims, dims, self_vals),
      thermal::MutualResistanceTable(distances, mutual_vals), 45.0, {});
  model.set_image_params(kInterposer, kInterposer, floor);
  model.set_self_droop(thermal::BilinearTable2D(dims, dims, droop_vals));
  return model;
}

void reset_telemetry() {
  obs::MetricsRegistry::instance().reset();
  obs::reset_trace();
}

/// ns per RLPLAN_COUNTER_ADD in a tight loop. `iters` is large enough that
/// loop overhead amortizes away; the best of `reps` runs rejects scheduler
/// noise.
double counter_ns_per_op(long iters, int reps) {
  double best = 1e18;
  for (int r = 0; r < reps; ++r) {
    const Timer timer;
    for (long i = 0; i < iters; ++i) {
      RLPLAN_COUNTER_ADD("obs.bench.counter", 1);
    }
    best = std::min(best, timer.seconds());
  }
  return best * 1e9 / static_cast<double>(iters);
}

/// ns per span enter+exit (the full RAII constructor/destructor pair).
double span_ns_per_op(long iters, int reps) {
  double best = 1e18;
  for (int r = 0; r < reps; ++r) {
    const Timer timer;
    for (long i = 0; i < iters; ++i) {
      RLPLAN_TRACE_SPAN("obs.bench.span");
    }
    best = std::min(best, timer.seconds());
  }
  return best * 1e9 / static_cast<double>(iters);
}

/// evaluate() throughput on the synthetic model; telemetry state is whatever
/// the caller set. Returns evals/sec (best of reps).
double thermal_evals_per_sec(const thermal::FastThermalModel& model,
                             const ChipletSystem& sys, const Floorplan& fp,
                             long iters, int reps) {
  double best = 0.0;
  double sink = 0.0;
  for (int r = 0; r < reps; ++r) {
    const Timer timer;
    for (long i = 0; i < iters; ++i) {
      sink += model.evaluate(sys, fp).max_temp_c;
    }
    best = std::max(best, static_cast<double>(iters) / timer.seconds());
  }
  if (sink == 12345.0) std::printf("anti-dce %f\n", sink);
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = rlplan::bench::flag_present(argc, argv, "smoke");
  const long prim_iters =
      rlplan::bench::flag_int(argc, argv, "iters", smoke ? 200000 : 2000000);
  const long eval_iters =
      rlplan::bench::flag_int(argc, argv, "eval-iters", smoke ? 2000 : 20000);
  const int reps = smoke ? 3 : 5;
  const std::string json_path =
      rlplan::bench::flag_str(argc, argv, "json", "BENCH_obs.json");
  const double max_counter_ns =
      rlplan::bench::flag_double(argc, argv, "max-counter-ns", 0.0);
  const double max_span_ns =
      rlplan::bench::flag_double(argc, argv, "max-span-ns", 0.0);
  const double max_overhead_pct =
      rlplan::bench::flag_double(argc, argv, "max-overhead-pct", 0.0);

  // ---- primitive costs -------------------------------------------------
  obs::set_enabled(false);
  const double counter_off_ns = counter_ns_per_op(prim_iters, reps);
  const double span_off_ns = span_ns_per_op(prim_iters, reps);
  obs::set_enabled(true);
  reset_telemetry();
  const double counter_on_ns = counter_ns_per_op(prim_iters, reps);
  const double span_on_ns = span_ns_per_op(prim_iters, reps);
  obs::set_enabled(false);

  std::printf("primitive costs (%ld iters, best of %d)\n", prim_iters, reps);
  std::printf("%-24s %12s %12s\n", "primitive", "disabled ns", "enabled ns");
  std::printf("%-24s %12.2f %12.2f\n", "counter add", counter_off_ns,
              counter_on_ns);
  std::printf("%-24s %12.2f %12.2f\n", "span enter+exit", span_off_ns,
              span_on_ns);

  // ---- thermal hot-path overhead --------------------------------------
  const thermal::FastThermalModel model = synthetic_model();
  systems::SyntheticConfig sc;
  sc.min_chiplets = 8;
  sc.max_chiplets = 8;
  sc.interposer_w_mm = kInterposer;
  sc.interposer_h_mm = kInterposer;
  sc.max_utilization = 0.45;
  const ChipletSystem sys =
      systems::SyntheticSystemGenerator(sc).generate(777, "bench-obs");
  Rng rng(11);
  const Floorplan fp = systems::random_legal_floorplan(sys, rng);

  // Warm up once so characterisation-free table setup, page faults, etc. hit
  // neither timed leg.
  (void)model.evaluate(sys, fp);
  const double off_eps =
      thermal_evals_per_sec(model, sys, fp, eval_iters, reps);
  obs::set_enabled(true);
  reset_telemetry();
  const double on_eps = thermal_evals_per_sec(model, sys, fp, eval_iters, reps);
  obs::set_enabled(false);
  const double overhead_pct = 100.0 * (off_eps / on_eps - 1.0);

  std::printf("\nthermal evaluate() hot path (8 chiplets, %ld evals, best of "
              "%d)\n",
              eval_iters, reps);
  std::printf("  disabled: %12.1f evals/s\n", off_eps);
  std::printf("  enabled:  %12.1f evals/s\n", on_eps);
  std::printf("  overhead: %+.2f%%\n", overhead_pct);

  // ---- JSON ------------------------------------------------------------
  {
    std::ofstream os(json_path);
    if (!os) {
      std::fprintf(stderr, "[micro_obs] cannot write %s\n", json_path.c_str());
    } else {
      char buf[768];
      std::snprintf(
          buf, sizeof(buf),
          "{\n  \"bench\": \"micro_obs\",\n  \"smoke\": %s,\n"
          "  \"counter_disabled_ns\": %.3f,\n  \"counter_enabled_ns\": %.3f,\n"
          "  \"span_disabled_ns\": %.3f,\n  \"span_enabled_ns\": %.3f,\n"
          "  \"thermal_disabled_evals_per_sec\": %.1f,\n"
          "  \"thermal_enabled_evals_per_sec\": %.1f,\n"
          "  \"thermal_overhead_pct\": %.3f\n}\n",
          smoke ? "true" : "false", counter_off_ns, counter_on_ns, span_off_ns,
          span_on_ns, off_eps, on_eps, overhead_pct);
      os << buf;
      std::fprintf(stderr, "[micro_obs] wrote %s\n", json_path.c_str());
    }
  }

  // ---- gates -----------------------------------------------------------
  int rc = 0;
  if (max_counter_ns > 0.0 && counter_on_ns > max_counter_ns) {
    std::fprintf(stderr,
                 "[micro_obs] FAIL: enabled counter add %.2f ns exceeds gate "
                 "%.2f ns\n",
                 counter_on_ns, max_counter_ns);
    rc = 1;
  }
  if (max_span_ns > 0.0 && span_on_ns > max_span_ns) {
    std::fprintf(stderr,
                 "[micro_obs] FAIL: enabled span %.2f ns exceeds gate %.2f "
                 "ns\n",
                 span_on_ns, max_span_ns);
    rc = 1;
  }
  if (max_overhead_pct > 0.0 && overhead_pct > max_overhead_pct) {
    std::fprintf(stderr,
                 "[micro_obs] FAIL: thermal overhead %.2f%% exceeds gate "
                 "%.2f%%\n",
                 overhead_pct, max_overhead_pct);
    rc = 1;
  }
  return rc;
}
