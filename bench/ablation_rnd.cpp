// Ablation: effect of the RND exploration bonus on training progress.
//
// Trains PPO with and without RND (and across bonus weights) on one
// synthetic case and prints per-epoch best-so-far reward curves.
//
// Flags: --epochs=N (default 25) --grid=G (default 16) --seed=S
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "systems/synthetic.h"

using namespace rlplan;

int main(int argc, char** argv) {
  const int epochs = static_cast<int>(bench::flag_int(argc, argv, "epochs", 25));
  const auto grid =
      static_cast<std::size_t>(bench::flag_int(argc, argv, "grid", 16));
  const auto seed =
      static_cast<std::uint64_t>(bench::flag_int(argc, argv, "seed", 3));

  const auto stack = thermal::LayerStack::default_2p5d();
  const auto cases = systems::make_table3_cases();
  const ChipletSystem& sys = cases[1];  // Case2

  thermal::CharacterizationConfig cc;
  cc.solver.dims = {40, 40};
  thermal::ThermalCharacterizer charac(stack, cc);
  const auto model =
      charac.characterize(sys.interposer_width(), sys.interposer_height());

  struct Curve {
    std::string name;
    std::vector<double> best;
  };
  std::vector<Curve> curves;

  struct Setting {
    const char* name;
    bool use_rnd;
    float coef;
  };
  for (const Setting& s :
       {Setting{"no-RND", false, 0.0f}, Setting{"RND coef 0.1", true, 0.1f},
        Setting{"RND coef 0.3", true, 0.3f},
        Setting{"RND coef 1.0", true, 1.0f}}) {
    rl::RlPlannerConfig pc;
    pc.env.grid = grid;
    pc.net.grid = grid;
    pc.epochs = epochs;
    pc.ppo.adam.lr = 1e-3f;
    pc.ppo.use_rnd = s.use_rnd;
    pc.ppo.intrinsic_coef = s.coef;
    pc.solver.dims = {40, 40};
    pc.seed = seed;
    rl::RlPlanner planner(pc);
    const auto result = planner.plan_with_model(sys, stack, model);
    Curve curve;
    curve.name = s.name;
    double best = -1e300;
    for (const auto& st : result.history) {
      best = std::max(best, st.best_reward);
      curve.best.push_back(best);
    }
    curves.push_back(std::move(curve));
  }

  std::printf("ABLATION: RND bonus on %s (%d epochs, grid %zu)\n\n",
              sys.name().c_str(), epochs, grid);
  std::printf("%-8s", "epoch");
  for (const auto& c : curves) std::printf(" %14s", c.name.c_str());
  std::printf("\n");
  for (int e = 0; e < epochs; e += std::max(1, epochs / 12)) {
    std::printf("%-8d", e);
    for (const auto& c : curves) {
      std::printf(" %14.4f",
                  e < static_cast<int>(c.best.size()) ? c.best[e] : 0.0);
    }
    std::printf("\n");
  }
  std::printf("\n(best-so-far sampled episode reward; higher is better)\n");
  return 0;
}
