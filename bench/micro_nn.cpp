// Micro-benchmarks of the NN/RL substrate (google-benchmark): policy net
// forward/backward at the bench grid sizes, environment stepping, and one
// full PPO epoch at miniature scale.
#include <benchmark/benchmark.h>

#include "rl/env.h"
#include "rl/policy_net.h"
#include "rl/ppo.h"
#include "systems/synthetic.h"
#include "thermal/evaluator.h"

using namespace rlplan;

namespace {

class NullEvaluator final : public thermal::ThermalEvaluator {
 public:
  double max_temperature(const ChipletSystem&, const Floorplan&) override {
    return 60.0;
  }
  long num_evaluations() const override { return 0; }
  std::string name() const override { return "null"; }
};

const ChipletSystem& test_system() {
  static const ChipletSystem sys = [] {
    systems::SyntheticConfig sc;
    sc.interposer_w_mm = 40.0;
    sc.interposer_h_mm = 40.0;
    sc.min_chiplets = 6;
    sc.max_chiplets = 6;
    return systems::SyntheticSystemGenerator(sc).generate(9, "nnbench");
  }();
  return sys;
}

void BM_PolicyForward(benchmark::State& state) {
  const auto grid = static_cast<std::size_t>(state.range(0));
  const auto batch = static_cast<std::size_t>(state.range(1));
  Rng rng(1);
  rl::PolicyNetConfig config;
  config.grid = grid;
  rl::PolicyValueNet net(config, rng);
  nn::Tensor x({batch, config.channels_in, grid, grid});
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.forward(x).value[0]);
  }
  state.SetLabel("grid " + std::to_string(grid) + " batch " +
                 std::to_string(batch));
}
BENCHMARK(BM_PolicyForward)
    ->Args({16, 1})
    ->Args({16, 64})
    ->Args({24, 1})
    ->Args({24, 64})
    ->Unit(benchmark::kMillisecond);

void BM_PolicyBackward(benchmark::State& state) {
  const auto grid = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  rl::PolicyNetConfig config;
  config.grid = grid;
  rl::PolicyValueNet net(config, rng);
  nn::Tensor x({32, config.channels_in, grid, grid});
  nn::Tensor dlogits({32, grid * grid});
  nn::Tensor dvalue({32, std::size_t{1}});
  dlogits.fill(0.01f);
  dvalue.fill(0.1f);
  for (auto _ : state) {
    net.forward(x);
    net.zero_grad();
    net.backward(dlogits, dvalue);
  }
  state.SetLabel("grid " + std::to_string(grid) + " batch 32 fwd+bwd");
}
BENCHMARK(BM_PolicyBackward)->Arg(16)->Arg(24)->Unit(benchmark::kMillisecond);

void BM_EnvEpisode(benchmark::State& state) {
  NullEvaluator eval;
  rl::FloorplanEnv env(test_system(), eval, RewardCalculator{},
                       bump::BumpAssigner{}, {.grid = 16});
  Rng rng(3);
  for (auto _ : state) {
    env.reset();
    while (!env.done()) {
      const auto& mask = env.action_mask();
      std::size_t pick = 0;
      for (std::size_t tries = 0; tries < 1000; ++tries) {
        const auto a = rng.uniform_int(std::uint64_t{mask.size()});
        if (mask[a] != 0) {
          pick = a;
          break;
        }
      }
      env.step(pick);
    }
  }
}
BENCHMARK(BM_EnvEpisode)->Unit(benchmark::kMicrosecond);

void BM_PpoTrainEpoch(benchmark::State& state) {
  NullEvaluator eval;
  rl::FloorplanEnv env(test_system(), eval, RewardCalculator{},
                       bump::BumpAssigner{}, {.grid = 16});
  rl::PpoConfig config;
  config.episodes_per_update = 8;
  config.seed = 5;
  rl::PolicyNetConfig net_config;
  rl::PpoTrainer trainer(env, net_config, config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trainer.train_epoch().steps);
  }
}
BENCHMARK(BM_PpoTrainEpoch)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
