// Micro-benchmarks of the NN/RL substrate (google-benchmark): policy net
// forward/backward at the bench grid sizes, environment stepping, and one
// full PPO epoch at miniature scale.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "nn/layers.h"
#include "rl/env.h"
#include "rl/policy_net.h"
#include "rl/ppo.h"
#include "systems/synthetic.h"
#include "thermal/evaluator.h"

using namespace rlplan;

namespace {

class NullEvaluator final : public thermal::ThermalEvaluator {
 public:
  double max_temperature(const ChipletSystem&, const Floorplan&) override {
    return 60.0;
  }
  long num_evaluations() const override { return 0; }
  std::string name() const override { return "null"; }
};

const ChipletSystem& test_system() {
  static const ChipletSystem sys = [] {
    systems::SyntheticConfig sc;
    sc.interposer_w_mm = 40.0;
    sc.interposer_h_mm = 40.0;
    sc.min_chiplets = 6;
    sc.max_chiplets = 6;
    return systems::SyntheticSystemGenerator(sc).generate(9, "nnbench");
  }();
  return sys;
}

// The raw Linear matmuls behind the policy trunk's fc layer — at the PPO
// shapes the register-blocked kernels were tiled for: flatten->fc
// (16*6*6 = 576 -> 128 at grid 24) and the policy head (128 -> G*G).
void BM_LinearForward(benchmark::State& state) {
  const auto in = static_cast<std::size_t>(state.range(0));
  const auto out = static_cast<std::size_t>(state.range(1));
  const auto batch = static_cast<std::size_t>(state.range(2));
  Rng rng(6);
  nn::Linear layer(in, out, rng);
  nn::Tensor x({batch, in});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(layer.forward(x).data().data());
  }
  state.SetLabel(std::to_string(in) + "->" + std::to_string(out) + " batch " +
                 std::to_string(batch));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch * in * out));
}
BENCHMARK(BM_LinearForward)
    ->Args({576, 128, 64})
    ->Args({128, 576, 64})
    ->Args({128, 1, 64})
    ->Unit(benchmark::kMicrosecond);

void BM_LinearBackward(benchmark::State& state) {
  const auto in = static_cast<std::size_t>(state.range(0));
  const auto out = static_cast<std::size_t>(state.range(1));
  const auto batch = static_cast<std::size_t>(state.range(2));
  Rng rng(7);
  nn::Linear layer(in, out, rng);
  nn::Tensor x({batch, in});
  nn::Tensor g({batch, out});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  for (std::size_t i = 0; i < g.numel(); ++i) {
    g[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  layer.forward(x);
  for (auto _ : state) {
    layer.zero_grad();
    benchmark::DoNotOptimize(layer.backward(g).data().data());
  }
  state.SetLabel(std::to_string(in) + "->" + std::to_string(out) + " batch " +
                 std::to_string(batch));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch * in * out));
}
BENCHMARK(BM_LinearBackward)
    ->Args({576, 128, 64})
    ->Args({128, 576, 64})
    ->Unit(benchmark::kMicrosecond);

void BM_PolicyForward(benchmark::State& state) {
  const auto grid = static_cast<std::size_t>(state.range(0));
  const auto batch = static_cast<std::size_t>(state.range(1));
  Rng rng(1);
  rl::PolicyNetConfig config;
  config.grid = grid;
  rl::PolicyValueNet net(config, rng);
  nn::Tensor x({batch, config.channels_in, grid, grid});
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.forward(x).value[0]);
  }
  state.SetLabel("grid " + std::to_string(grid) + " batch " +
                 std::to_string(batch));
}
BENCHMARK(BM_PolicyForward)
    ->Args({16, 1})
    ->Args({16, 64})
    ->Args({24, 1})
    ->Args({24, 64})
    ->Unit(benchmark::kMillisecond);

void BM_PolicyBackward(benchmark::State& state) {
  const auto grid = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  rl::PolicyNetConfig config;
  config.grid = grid;
  rl::PolicyValueNet net(config, rng);
  nn::Tensor x({32, config.channels_in, grid, grid});
  nn::Tensor dlogits({32, grid * grid});
  nn::Tensor dvalue({32, std::size_t{1}});
  dlogits.fill(0.01f);
  dvalue.fill(0.1f);
  for (auto _ : state) {
    net.forward(x);
    net.zero_grad();
    net.backward(dlogits, dvalue);
  }
  state.SetLabel("grid " + std::to_string(grid) + " batch 32 fwd+bwd");
}
BENCHMARK(BM_PolicyBackward)->Arg(16)->Arg(24)->Unit(benchmark::kMillisecond);

void BM_EnvEpisode(benchmark::State& state) {
  NullEvaluator eval;
  rl::FloorplanEnv env(test_system(), eval, RewardCalculator{},
                       bump::BumpAssigner{}, {.grid = 16});
  Rng rng(3);
  for (auto _ : state) {
    env.reset();
    while (!env.done()) {
      const auto& mask = env.action_mask();
      std::size_t pick = 0;
      for (std::size_t tries = 0; tries < 1000; ++tries) {
        const auto a = rng.uniform_int(std::uint64_t{mask.size()});
        if (mask[a] != 0) {
          pick = a;
          break;
        }
      }
      env.step(pick);
    }
  }
}
BENCHMARK(BM_EnvEpisode)->Unit(benchmark::kMicrosecond);

void BM_PpoTrainEpoch(benchmark::State& state) {
  NullEvaluator eval;
  rl::FloorplanEnv env(test_system(), eval, RewardCalculator{},
                       bump::BumpAssigner{}, {.grid = 16});
  rl::PpoConfig config;
  config.episodes_per_update = 8;
  config.seed = 5;
  rl::PolicyNetConfig net_config;
  rl::PpoTrainer trainer(env, net_config, config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trainer.train_epoch().steps);
  }
}
BENCHMARK(BM_PpoTrainEpoch)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
