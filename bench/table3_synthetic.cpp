// Regenerates TABLE III: reward comparison of the four methods on the five
// synthetic systems (Case1..Case5).
//
// Flags: --epochs=N (default 40) --grid=G (default 16) --case=K (1..5, 0=all)
//        --seed=S
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "systems/synthetic.h"

using namespace rlplan;

int main(int argc, char** argv) {
  bench::CompareConfig config;
  config.rl_epochs =
      static_cast<int>(bench::flag_int(argc, argv, "epochs", 30));
  config.rl_grid =
      static_cast<std::size_t>(bench::flag_int(argc, argv, "grid", 16));
  config.solver_dims = {40, 40};
  config.seed =
      static_cast<std::uint64_t>(bench::flag_int(argc, argv, "seed", 1));
  const long which = bench::flag_int(argc, argv, "case", 0);

  std::printf("TABLE III: COMPARISONS OF REWARD ON 5 SYNTHETIC SYSTEMS\n");
  std::printf("(RL: %d epochs, %zux%zu action grid; SA wall-clock matched)\n",
              config.rl_epochs, config.rl_grid, config.rl_grid);

  const auto stack = thermal::LayerStack::default_2p5d();
  const auto cases = systems::make_table3_cases();

  std::vector<std::vector<bench::MethodRow>> all_rows;
  std::vector<std::string> names;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    if (which != 0 && static_cast<long>(i + 1) != which) continue;
    auto rows = bench::compare_methods(cases[i], stack, config);
    bench::print_rows(cases[i].name(), rows);
    all_rows.push_back(std::move(rows));
    names.push_back(cases[i].name());
  }

  // Condensed reward matrix, formatted like the paper's Table III.
  if (!all_rows.empty()) {
    std::printf("\nReward matrix:\n%-30s", "Method");
    for (const auto& name : names) std::printf(" %9s", name.c_str());
    std::printf("\n");
    for (std::size_t m = 0; m < all_rows[0].size(); ++m) {
      std::printf("%-30s", all_rows[0][m].method.c_str());
      for (const auto& rows : all_rows) std::printf(" %9.4f", rows[m].reward);
      std::printf("\n");
    }
    double rl_rnd_sum = 0.0, sa_solver_sum = 0.0, sa_fast_sum = 0.0;
    for (const auto& rows : all_rows) {
      rl_rnd_sum += rows[1].reward;
      sa_solver_sum += rows[2].reward;
      sa_fast_sum += rows[3].reward;
    }
    std::printf("\nSummary (objective improvement of RLPlanner(RND)):\n");
    std::printf("  vs TAP-2.5D(GridSolver): %+.2f%%\n",
                100.0 * (1.0 - rl_rnd_sum / sa_solver_sum));
    std::printf("  vs TAP-2.5D(fast):       %+.2f%%\n",
                100.0 * (1.0 - rl_rnd_sum / sa_fast_sum));
  }

  std::printf("\nPaper reference (Table III rewards):\n");
  std::printf("  Case1..5 RLPlanner:      -5.83  -6.32 -10.01  -8.41  -8.62\n");
  std::printf("  Case1..5 RLPlanner(RND): -5.11  -6.78  -9.93  -8.39  -8.20\n");
  std::printf("  Case1..5 TAP(HotSpot):   -6.64  -8.98 -12.39 -10.55 -10.70\n");
  std::printf("  Case1..5 TAP(fast):      -6.36  -7.13 -10.72  -9.83  -8.52\n");
  return 0;
}
