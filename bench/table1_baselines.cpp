// Regenerates TABLE I: comparisons against baselines on the three benchmark
// systems (Multi-GPU, CPU-DRAM, Ascend 910).
//
// Methods (as in the paper):
//   RLPlanner                       PPO, fast thermal model in the loop
//   RLPlanner(RND)                  + random network distillation bonus
//   TAP-2.5D(GridSolver)            SA with the ground-truth solver ("HotSpot")
//   TAP-2.5D*(Fast Thermal Model)   SA with the fast model, wall-clock matched
//
// All methods are scored post-hoc with the ground-truth solver. SA budgets
// are wall-clock matched to RLPlanner training time (the paper's footnote:
// "* takes a similar amount of time as training RLPlanner for 600 epochs").
// Absolute runtimes are hardware-bound; the reproduction targets are the
// method ordering and relative objective gaps.
//
// Flags: --epochs=N (default 15; the paper trained 600) --grid=G (default
//        20) --system=NAME (multi-gpu | cpu-dram | ascend910 | all) --seed=S
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "systems/systems.h"

using namespace rlplan;

int main(int argc, char** argv) {
  bench::CompareConfig config;
  config.rl_epochs =
      static_cast<int>(bench::flag_int(argc, argv, "epochs", 15));
  config.rl_grid =
      static_cast<std::size_t>(bench::flag_int(argc, argv, "grid", 20));
  config.seed =
      static_cast<std::uint64_t>(bench::flag_int(argc, argv, "seed", 1));

  std::string which = "all";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--system=", 0) == 0) which = arg.substr(9);
  }

  std::printf("TABLE I: COMPARISONS AGAINST BASELINES ON BENCHMARK SYSTEMS\n");
  std::printf("(RL: %d epochs, %zux%zu action grid; SA wall-clock matched)\n",
              config.rl_epochs, config.rl_grid, config.rl_grid);

  const auto stack = thermal::LayerStack::default_2p5d();
  double rl_rnd_sum = 0.0, sa_solver_sum = 0.0, sa_fast_sum = 0.0;
  int cases = 0;

  for (const auto& system : systems::make_benchmark_systems()) {
    if (which != "all" && system.name() != which) continue;
    const auto rows = bench::compare_methods(system, stack, config);
    bench::print_rows(system.name(), rows);
    rl_rnd_sum += rows[1].reward;
    sa_solver_sum += rows[2].reward;
    sa_fast_sum += rows[3].reward;
    ++cases;
  }

  if (cases > 0) {
    // The paper's headline: RLPlanner(RND) improves the objective by 20.28%
    // vs TAP-2.5D(HotSpot) and 9.25% vs TAP-2.5D(fast) across all 8 cases
    // (Tables I + III combined); print this table's share.
    const double vs_solver =
        100.0 * (1.0 - rl_rnd_sum / sa_solver_sum);
    const double vs_fast = 100.0 * (1.0 - rl_rnd_sum / sa_fast_sum);
    std::printf("\nSummary over %d systems (objective improvement of "
                "RLPlanner(RND), positive = better):\n", cases);
    std::printf("  vs TAP-2.5D(GridSolver): %+.2f%%   (paper: +20.28%% over "
                "all 8 cases)\n", vs_solver);
    std::printf("  vs TAP-2.5D(fast):       %+.2f%%   (paper:  +9.25%% over "
                "all 8 cases)\n", vs_fast);
  }

  std::printf("\nPaper reference (Table I):\n");
  std::printf("  Multi-GPU:  RLPlanner -37.13 | RND -40.28 | TAP(HotSpot) "
              "-42.46 | TAP(fast) -41.34\n");
  std::printf("  CPU-DRAM:   RLPlanner -44.95 | RND -41.75 | TAP(HotSpot) "
              "-60.36 | TAP(fast) -50.20\n");
  std::printf("  Ascend 910: RLPlanner  -7.41 | RND  -7.44 | TAP(HotSpot) "
              " -8.77 | TAP(fast)  -7.79\n");
  return 0;
}
