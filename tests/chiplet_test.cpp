#include "core/chiplet.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rlplan {
namespace {

ChipletSystem make_valid_system() {
  return ChipletSystem("test", 20.0, 20.0,
                       {{"a", 5.0, 4.0, 10.0}, {"b", 3.0, 3.0, 5.0}},
                       {{0, 1, 64}});
}

TEST(Chiplet, DerivedQuantities) {
  const Chiplet c{"x", 4.0, 5.0, 10.0};
  EXPECT_DOUBLE_EQ(c.area(), 20.0);
  EXPECT_DOUBLE_EQ(c.power_density(), 0.5);
}

TEST(Chiplet, ZeroAreaPowerDensity) {
  const Chiplet c{"x", 0.0, 5.0, 10.0};
  EXPECT_DOUBLE_EQ(c.power_density(), 0.0);
}

TEST(ChipletSystem, Aggregates) {
  const auto sys = make_valid_system();
  EXPECT_EQ(sys.num_chiplets(), 2u);
  EXPECT_DOUBLE_EQ(sys.total_power(), 15.0);
  EXPECT_DOUBLE_EQ(sys.total_chiplet_area(), 29.0);
  EXPECT_DOUBLE_EQ(sys.utilization(), 29.0 / 400.0);
  EXPECT_EQ(sys.total_wires(), 64);
}

TEST(ChipletSystem, ValidatesOk) {
  EXPECT_NO_THROW(make_valid_system().validate());
}

TEST(ChipletSystem, RejectsBadInterposer) {
  const ChipletSystem sys("bad", 0.0, 20.0, {{"a", 5.0, 4.0, 10.0}}, {});
  EXPECT_THROW(sys.validate(), std::invalid_argument);
}

TEST(ChipletSystem, RejectsEmptyChiplets) {
  const ChipletSystem sys("bad", 20.0, 20.0, {}, {});
  EXPECT_THROW(sys.validate(), std::invalid_argument);
}

TEST(ChipletSystem, RejectsNonPositiveDimensions) {
  const ChipletSystem sys("bad", 20.0, 20.0, {{"a", -1.0, 4.0, 10.0}}, {});
  EXPECT_THROW(sys.validate(), std::invalid_argument);
}

TEST(ChipletSystem, RejectsNegativePower) {
  const ChipletSystem sys("bad", 20.0, 20.0, {{"a", 5.0, 4.0, -1.0}}, {});
  EXPECT_THROW(sys.validate(), std::invalid_argument);
}

TEST(ChipletSystem, RejectsOversizedChiplet) {
  const ChipletSystem sys("bad", 20.0, 20.0, {{"a", 25.0, 4.0, 1.0}}, {});
  EXPECT_THROW(sys.validate(), std::invalid_argument);
}

TEST(ChipletSystem, AcceptsRotatableFit) {
  // 25x4 does not fit a 20x30 interposer unrotated along x, but fits
  // rotated; validate() accepts because the long side fits the long axis.
  const ChipletSystem sys("ok", 20.0, 30.0, {{"a", 25.0, 4.0, 1.0}}, {});
  EXPECT_NO_THROW(sys.validate());
}

TEST(ChipletSystem, RejectsSelfLoopNet) {
  const ChipletSystem sys("bad", 20.0, 20.0,
                          {{"a", 5.0, 4.0, 1.0}, {"b", 3.0, 3.0, 1.0}},
                          {{0, 0, 8}});
  EXPECT_THROW(sys.validate(), std::invalid_argument);
}

TEST(ChipletSystem, RejectsNetEndpointOutOfRange) {
  const ChipletSystem sys("bad", 20.0, 20.0, {{"a", 5.0, 4.0, 1.0}},
                          {{0, 3, 8}});
  EXPECT_THROW(sys.validate(), std::invalid_argument);
}

TEST(ChipletSystem, RejectsNonPositiveWires) {
  const ChipletSystem sys("bad", 20.0, 20.0,
                          {{"a", 5.0, 4.0, 1.0}, {"b", 3.0, 3.0, 1.0}},
                          {{0, 1, 0}});
  EXPECT_THROW(sys.validate(), std::invalid_argument);
}

TEST(ChipletSystem, RejectsOverUtilization) {
  const ChipletSystem sys("bad", 10.0, 10.0,
                          {{"a", 8.0, 8.0, 1.0}, {"b", 8.0, 8.0, 1.0}}, {});
  EXPECT_THROW(sys.validate(), std::invalid_argument);
}

TEST(ChipletSystem, PlacementOrderByAreaIsDescendingAndComplete) {
  const ChipletSystem sys(
      "order", 40.0, 40.0,
      {{"small", 2.0, 2.0, 1.0}, {"big", 10.0, 10.0, 1.0},
       {"mid", 5.0, 5.0, 1.0}},
      {});
  const auto order = sys.placement_order_by_area();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(order[2], 0u);
}

TEST(ChipletSystem, PlacementOrderStableForTies) {
  const ChipletSystem sys(
      "ties", 40.0, 40.0,
      {{"a", 4.0, 4.0, 1.0}, {"b", 4.0, 4.0, 1.0}, {"c", 2.0, 8.0, 1.0}},
      {});
  const auto order = sys.placement_order_by_area();
  // All areas equal: stable sort preserves index order.
  EXPECT_EQ(order[0], 0u);
  EXPECT_EQ(order[1], 1u);
  EXPECT_EQ(order[2], 2u);
}

TEST(Netlist, BuildAdjacencySymmetric) {
  const auto adj = build_adjacency(3, {{0, 1, 16}, {1, 2, 8}, {0, 1, 4}});
  EXPECT_EQ(adj[0][1], 20);
  EXPECT_EQ(adj[1][0], 20);
  EXPECT_EQ(adj[1][2], 8);
  EXPECT_EQ(adj[2][1], 8);
  EXPECT_EQ(adj[0][2], 0);
  EXPECT_EQ(adj[0][0], 0);
}

TEST(Netlist, WireDegrees) {
  const auto deg = wire_degrees(3, {{0, 1, 16}, {1, 2, 8}});
  EXPECT_EQ(deg[0], 16);
  EXPECT_EQ(deg[1], 24);
  EXPECT_EQ(deg[2], 8);
}

TEST(Netlist, ConnectivityDetection) {
  EXPECT_TRUE(is_connected(3, {{0, 1, 1}, {1, 2, 1}}));
  EXPECT_FALSE(is_connected(3, {{0, 1, 1}}));
  EXPECT_TRUE(is_connected(1, {}));
  EXPECT_TRUE(is_connected(0, {}));
  EXPECT_FALSE(is_connected(2, {}));
}

TEST(Netlist, MalformedNetsIgnoredByHelpers) {
  // Helpers skip malformed entries; validate() is the rejection point.
  const auto adj = build_adjacency(2, {{0, 0, 5}, {0, 7, 5}, {0, 1, 3}});
  EXPECT_EQ(adj[0][1], 3);
}

}  // namespace
}  // namespace rlplan
