#include "rl/distribution.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace rlplan::rl {
namespace {

TEST(MaskedCategorical, ProbabilitiesSumToOneOverSupport) {
  const std::vector<float> logits{1.0f, 2.0f, 3.0f, 4.0f};
  const std::vector<std::uint8_t> mask{1, 0, 1, 1};
  const MaskedCategorical dist(logits, mask);
  double sum = 0.0;
  for (float p : dist.probs()) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-6);
  EXPECT_EQ(dist.probs()[1], 0.0f);
}

TEST(MaskedCategorical, MaskedActionsHaveZeroProbability) {
  const std::vector<float> logits{10.0f, 0.0f};
  const std::vector<std::uint8_t> mask{0, 1};
  const MaskedCategorical dist(logits, mask);
  EXPECT_EQ(dist.probs()[0], 0.0f);
  EXPECT_NEAR(dist.probs()[1], 1.0f, 1e-6);
  EXPECT_LT(dist.log_prob(0), -1e20f);
}

TEST(MaskedCategorical, MatchesSoftmaxOnFullSupport) {
  const std::vector<float> logits{0.5f, 1.5f, -0.5f};
  const std::vector<std::uint8_t> mask{1, 1, 1};
  const MaskedCategorical dist(logits, mask);
  double z = 0.0;
  for (float l : logits) z += std::exp(l);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(dist.probs()[i], std::exp(logits[i]) / z, 1e-6);
    EXPECT_NEAR(dist.log_prob(i), std::log(std::exp(logits[i]) / z), 1e-5);
  }
}

TEST(MaskedCategorical, NumericallyStableForLargeLogits) {
  const std::vector<float> logits{1000.0f, 999.0f};
  const std::vector<std::uint8_t> mask{1, 1};
  const MaskedCategorical dist(logits, mask);
  EXPECT_NEAR(dist.probs()[0] + dist.probs()[1], 1.0, 1e-6);
  EXPECT_GT(dist.probs()[0], dist.probs()[1]);
  EXPECT_TRUE(std::isfinite(dist.entropy()));
}

TEST(MaskedCategorical, EntropyUniformIsLogN) {
  const std::vector<float> logits{1.0f, 1.0f, 1.0f, 1.0f};
  const std::vector<std::uint8_t> mask{1, 1, 1, 1};
  const MaskedCategorical dist(logits, mask);
  EXPECT_NEAR(dist.entropy(), std::log(4.0f), 1e-5);
}

TEST(MaskedCategorical, EntropyDegenerateIsZero) {
  const std::vector<float> logits{5.0f, 5.0f};
  const std::vector<std::uint8_t> mask{1, 0};
  const MaskedCategorical dist(logits, mask);
  EXPECT_NEAR(dist.entropy(), 0.0f, 1e-6);
}

TEST(MaskedCategorical, EntropyMaskingReducesSupport) {
  const std::vector<float> logits{1.0f, 1.0f, 1.0f, 1.0f};
  const std::vector<std::uint8_t> full{1, 1, 1, 1};
  const std::vector<std::uint8_t> half{1, 1, 0, 0};
  EXPECT_GT(MaskedCategorical(logits, full).entropy(),
            MaskedCategorical(logits, half).entropy());
}

TEST(MaskedCategorical, ThrowsWhenNoFeasibleAction) {
  const std::vector<float> logits{1.0f, 2.0f};
  const std::vector<std::uint8_t> mask{0, 0};
  EXPECT_THROW(MaskedCategorical(logits, mask), std::invalid_argument);
}

TEST(MaskedCategorical, ThrowsOnSizeMismatch) {
  const std::vector<float> logits{1.0f, 2.0f};
  const std::vector<std::uint8_t> mask{1};
  EXPECT_THROW(MaskedCategorical(logits, mask), std::invalid_argument);
}

TEST(MaskedCategorical, SampleRespectsMask) {
  const std::vector<float> logits{0.0f, 0.0f, 0.0f, 0.0f};
  const std::vector<std::uint8_t> mask{0, 1, 0, 1};
  const MaskedCategorical dist(logits, mask);
  Rng rng(77);
  for (int i = 0; i < 1000; ++i) {
    const std::size_t a = dist.sample(rng);
    EXPECT_TRUE(a == 1 || a == 3);
  }
}

TEST(MaskedCategorical, SampleFrequenciesTrackProbabilities) {
  const std::vector<float> logits{std::log(1.0f), std::log(3.0f)};
  const std::vector<std::uint8_t> mask{1, 1};
  const MaskedCategorical dist(logits, mask);
  Rng rng(123);
  int count1 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (dist.sample(rng) == 1) ++count1;
  }
  EXPECT_NEAR(static_cast<double>(count1) / n, 0.75, 0.02);
}

TEST(MaskedCategorical, ArgmaxPicksHighestFeasible) {
  const std::vector<float> logits{9.0f, 2.0f, 5.0f};
  const std::vector<std::uint8_t> mask{0, 1, 1};
  const MaskedCategorical dist(logits, mask);
  EXPECT_EQ(dist.argmax(), 2u);
}

}  // namespace
}  // namespace rlplan::rl
