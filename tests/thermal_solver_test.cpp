#include "thermal/grid_solver.h"

#include <gtest/gtest.h>

#include <cmath>

#include "thermal/grid_model.h"
#include "thermal/layer_stack.h"
#include "util/rng.h"

namespace rlplan::thermal {
namespace {

ChipletSystem one_die_system(double die = 10.0, double power = 20.0) {
  return ChipletSystem("t", 40.0, 40.0, {{"die", die, die, power}}, {});
}

Floorplan centered(const ChipletSystem& sys) {
  Floorplan fp(sys);
  const Chiplet& c = sys.chiplet(0);
  fp.place(0, {(sys.interposer_width() - c.width) / 2.0,
               (sys.interposer_height() - c.height) / 2.0});
  return fp;
}

TEST(LayerStack, DefaultValidates) {
  EXPECT_NO_THROW(LayerStack::default_2p5d().validate());
}

TEST(LayerStack, RejectsMalformedStacks) {
  LayerStack empty;
  EXPECT_THROW(empty.validate(), std::invalid_argument);

  std::vector<Layer> no_chiplet = {{"a", 1e-4, silicon(), false}};
  EXPECT_THROW(
      LayerStack(no_chiplet, underfill(), 1000, 0, 45).validate(),
      std::invalid_argument);

  std::vector<Layer> two_chiplet = {{"a", 1e-4, silicon(), true},
                                    {"b", 1e-4, silicon(), true}};
  EXPECT_THROW(
      LayerStack(two_chiplet, underfill(), 1000, 0, 45).validate(),
      std::invalid_argument);

  std::vector<Layer> ok = {{"a", 1e-4, silicon(), true}};
  EXPECT_THROW(LayerStack(ok, underfill(), 0.0, 0, 45).validate(),
               std::invalid_argument);  // no top convection
  EXPECT_NO_THROW(LayerStack(ok, underfill(), 1000, 0, 45).validate());
}

TEST(ThermalGridModel, ConductanceMatrixIsSymmetricLaplacianPlusGround) {
  const auto stack = LayerStack::default_2p5d();
  const auto sys = one_die_system();
  const auto fp = centered(sys);
  ThermalGridModel model(stack, sys, {12, 12});
  const SparseMatrix g = model.build_conductance(fp);
  EXPECT_EQ(g.rows(), model.num_nodes());
  EXPECT_LT(g.symmetry_error(), 1e-12);
  // Diagonal dominance (strict at boundary rows).
  const auto diag = g.diagonal();
  for (std::size_t i = 0; i < g.rows(); ++i) EXPECT_GT(diag[i], 0.0);
}

TEST(ThermalGridModel, PowerConservation) {
  const auto stack = LayerStack::default_2p5d();
  const auto sys = one_die_system(7.3, 33.0);  // not grid-aligned
  const auto fp = centered(sys);
  ThermalGridModel model(stack, sys, {24, 24});
  const auto p = model.build_power(fp);
  double total = 0.0;
  for (double v : p) total += v;
  EXPECT_NEAR(total, 33.0, 1e-9);
}

TEST(ThermalGridModel, PowerConservationWithMultipleDies) {
  const auto stack = LayerStack::default_2p5d();
  const ChipletSystem sys("m", 40.0, 40.0,
                          {{"a", 9.7, 6.1, 17.0}, {"b", 5.3, 8.9, 11.5}},
                          {});
  Floorplan fp(sys);
  fp.place(0, {2.1, 3.3});
  fp.place(1, {20.9, 24.7});
  ThermalGridModel model(stack, sys, {20, 20});
  const auto p = model.build_power(fp);
  double total = 0.0;
  for (double v : p) total += v;
  EXPECT_NEAR(total, 28.5, 1e-9);
}

TEST(ThermalGridModel, UnplacedChipletsContributeNothing) {
  const auto stack = LayerStack::default_2p5d();
  const auto sys = one_die_system();
  const Floorplan fp(sys);  // nothing placed
  ThermalGridModel model(stack, sys, {12, 12});
  const auto p = model.build_power(fp);
  for (double v : p) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(ThermalGridModel, ChipletLayerConductivityBlends) {
  const auto stack = LayerStack::default_2p5d();
  const auto sys = one_die_system(20.0, 10.0);
  const auto fp = centered(sys);
  ThermalGridModel model(stack, sys, {16, 16});
  const auto k = model.chiplet_layer_conductivity(fp);
  const double k_die = stack.layer(stack.chiplet_layer_index())
                           .material.conductivity;
  const double k_fill = stack.fill_material().conductivity;
  // Center cells fully covered -> die conductivity; corners -> fill.
  EXPECT_NEAR(k[8 * 16 + 8], k_die, 1e-9);
  EXPECT_NEAR(k[0], k_fill, 1e-9);
}

TEST(GridThermalSolver, HotterWithMorePower) {
  const auto stack = LayerStack::default_2p5d();
  GridThermalSolver solver(stack, {.dims = {24, 24}});
  const auto sys_lo = one_die_system(10.0, 10.0);
  const auto sys_hi = one_die_system(10.0, 30.0);
  const double t_lo = solver.solve(sys_lo, centered(sys_lo)).max_temp_c;
  solver.reset_warm_start();
  const double t_hi = solver.solve(sys_hi, centered(sys_hi)).max_temp_c;
  EXPECT_GT(t_hi, t_lo);
  EXPECT_GT(t_lo, stack.ambient_c());
}

TEST(GridThermalSolver, LinearityInPower) {
  // Same geometry, power scaled by k -> rise scales by k (LTI check of the
  // ground truth itself).
  const auto stack = LayerStack::default_2p5d();
  GridSolverConfig config{.dims = {24, 24}};
  config.warm_start = false;
  GridThermalSolver solver(stack, config);
  const auto sys1 = one_die_system(10.0, 10.0);
  const auto sys3 = one_die_system(10.0, 30.0);
  const double rise1 =
      solver.solve(sys1, centered(sys1)).max_temp_c - stack.ambient_c();
  const double rise3 =
      solver.solve(sys3, centered(sys3)).max_temp_c - stack.ambient_c();
  EXPECT_NEAR(rise3 / rise1, 3.0, 0.01);
}

TEST(GridThermalSolver, SuperpositionExactForFixedConductivity) {
  // With chiplet-layer conductivity fixed by the SAME placement, the
  // temperature field of two sources equals the sum of single-source fields.
  const auto stack = LayerStack::default_2p5d();
  const ChipletSystem both("b", 40.0, 40.0,
                           {{"a", 8.0, 8.0, 20.0}, {"b", 8.0, 8.0, 10.0}},
                           {});
  const ChipletSystem only_a("a", 40.0, 40.0,
                             {{"a", 8.0, 8.0, 20.0}, {"b", 8.0, 8.0, 0.0}},
                             {});
  const ChipletSystem only_b("c", 40.0, 40.0,
                             {{"a", 8.0, 8.0, 0.0}, {"b", 8.0, 8.0, 10.0}},
                             {});
  const auto place = [](const ChipletSystem& s) {
    Floorplan fp(s);
    fp.place(0, {4.0, 16.0});
    fp.place(1, {28.0, 16.0});
    return fp;
  };
  GridSolverConfig config{.dims = {24, 24}};
  config.cg.tolerance = 1e-11;
  config.warm_start = false;

  ThermalField f_both, f_a, f_b;
  GridThermalSolver solver(stack, config);
  solver.solve_with_field(both, place(both), f_both);
  solver.solve_with_field(only_a, place(only_a), f_a);
  solver.solve_with_field(only_b, place(only_b), f_b);

  const double amb = stack.ambient_c();
  for (std::size_t i = 0; i < f_both.raw().size(); i += 37) {
    const double sum =
        (f_a.raw()[i] - amb) + (f_b.raw()[i] - amb);
    EXPECT_NEAR(f_both.raw()[i] - amb, sum, 1e-4);
  }
}

TEST(GridThermalSolver, SymmetricPlacementGivesSymmetricTemps) {
  const auto stack = LayerStack::default_2p5d();
  const ChipletSystem sys("s", 40.0, 40.0,
                          {{"a", 8.0, 8.0, 15.0}, {"b", 8.0, 8.0, 15.0}},
                          {});
  Floorplan fp(sys);
  fp.place(0, {6.0, 16.0});   // mirror of (26, 16) about x = 20
  fp.place(1, {26.0, 16.0});
  GridSolverConfig config{.dims = {32, 32}};
  config.cg.tolerance = 1e-11;
  GridThermalSolver solver(stack, config);
  const auto result = solver.solve(sys, fp);
  EXPECT_NEAR(result.chiplet_temp_c[0], result.chiplet_temp_c[1], 0.05);
}

TEST(GridThermalSolver, RefinementConvergence) {
  // Peak temperature should converge as the grid refines.
  const auto stack = LayerStack::default_2p5d();
  const auto sys = one_die_system(12.0, 25.0);
  double prev_diff = 1e9;
  double t32 = 0.0, t48 = 0.0, t64 = 0.0;
  {
    GridThermalSolver s(stack, {.dims = {32, 32}});
    t32 = s.solve(sys, centered(sys)).max_temp_c;
  }
  {
    GridThermalSolver s(stack, {.dims = {48, 48}});
    t48 = s.solve(sys, centered(sys)).max_temp_c;
  }
  {
    GridThermalSolver s(stack, {.dims = {64, 64}});
    t64 = s.solve(sys, centered(sys)).max_temp_c;
  }
  prev_diff = std::abs(t48 - t32);
  EXPECT_LT(std::abs(t64 - t48), prev_diff + 0.05);
  // All within a sane band of each other.
  EXPECT_NEAR(t32, t64, 2.0);
}

TEST(GridThermalSolver, EdgePlacementHotterThanCenter) {
  // Physical sanity: restricted spreading near the rim runs hotter.
  const auto stack = LayerStack::default_2p5d();
  const auto sys = one_die_system(8.0, 25.0);
  Floorplan corner(sys);
  corner.place(0, {0.0, 0.0});
  GridSolverConfig config{.dims = {32, 32}};
  config.warm_start = false;
  GridThermalSolver solver(stack, config);
  const double t_corner = solver.solve(sys, corner).max_temp_c;
  const double t_center = solver.solve(sys, centered(sys)).max_temp_c;
  EXPECT_GT(t_corner, t_center + 1.0);
}

TEST(GridThermalSolver, WarmStartMatchesColdSolve) {
  const auto stack = LayerStack::default_2p5d();
  const auto sys = one_die_system(9.0, 22.0);
  GridSolverConfig warm{.dims = {24, 24}};
  warm.cg.tolerance = 1e-10;
  GridSolverConfig cold = warm;
  cold.warm_start = false;
  GridThermalSolver s_warm(stack, warm);
  GridThermalSolver s_cold(stack, cold);
  // Two successive solves with slightly different placements.
  Floorplan fp1 = centered(sys);
  Floorplan fp2(sys);
  fp2.place(0, {14.0, 15.0});
  const double a1 = s_warm.solve(sys, fp1).max_temp_c;
  const double a2 = s_warm.solve(sys, fp2).max_temp_c;
  const double b1 = s_cold.solve(sys, fp1).max_temp_c;
  const double b2 = s_cold.solve(sys, fp2).max_temp_c;
  EXPECT_NEAR(a1, b1, 1e-4);
  EXPECT_NEAR(a2, b2, 1e-4);
}

TEST(GridThermalSolver, PerChipletTempsAmbientWhenUnplaced) {
  const auto stack = LayerStack::default_2p5d();
  const ChipletSystem sys("u", 40.0, 40.0,
                          {{"a", 8.0, 8.0, 15.0}, {"b", 8.0, 8.0, 15.0}},
                          {});
  Floorplan fp(sys);
  fp.place(0, {16.0, 16.0});
  GridThermalSolver solver(stack, {.dims = {24, 24}});
  const auto result = solver.solve(sys, fp);
  // Unplaced chiplet reads a baseline far below the placed one.
  EXPECT_GT(result.chiplet_temp_c[0], result.chiplet_temp_c[1] + 3.0);
}

}  // namespace
}  // namespace rlplan::thermal
