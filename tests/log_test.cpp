// util/log thread-safety and formatting tests.
//
// The serve daemon logs from its accept thread, connection threads, and
// every worker lane while tools toggle the prefix/level globals — so the
// logging globals being lock-free atomics and log_line() being line-granular
// under concurrency are load-bearing contracts, pinned here and exercised
// under the sanitizer CI leg.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "util/log.h"

namespace {

using rlplan::LogLevel;

/// Restores the logging globals so tests cannot leak state into each other.
class LogTest : public testing::Test {
 protected:
  void TearDown() override {
    rlplan::set_log_level(LogLevel::kWarn);
    rlplan::set_log_prefix(false);
  }
};

TEST_F(LogTest, LevelThresholdFilters) {
  rlplan::set_log_level(LogLevel::kWarn);
  testing::internal::CaptureStderr();
  rlplan::log_line(LogLevel::kInfo, "dropped");
  rlplan::log_line(LogLevel::kError, "kept");
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_EQ(out.find("dropped"), std::string::npos);
  EXPECT_NE(out.find("kept"), std::string::npos);
  EXPECT_NE(out.find("ERROR"), std::string::npos);

  rlplan::set_log_level(LogLevel::kOff);
  testing::internal::CaptureStderr();
  rlplan::log_line(LogLevel::kError, "silenced");
  EXPECT_TRUE(testing::internal::GetCapturedStderr().empty());
}

TEST_F(LogTest, MacroEvaluatesBodyOnlyWhenEnabled) {
  rlplan::set_log_level(LogLevel::kWarn);
  int evaluations = 0;
  const auto count = [&] {
    ++evaluations;
    return "x";
  };
  testing::internal::CaptureStderr();
  RLPLAN_DEBUG << count();  // below threshold: body must not run
  RLPLAN_ERROR << count();
  testing::internal::GetCapturedStderr();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LogTest, PrefixCarriesLevelTimestampAndThreadId) {
  rlplan::set_log_level(LogLevel::kWarn);
  rlplan::set_log_prefix(true);
  EXPECT_TRUE(rlplan::log_prefix_enabled());
  testing::internal::CaptureStderr();
  rlplan::log_line(LogLevel::kError, "prefixed");
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_EQ(out.find("[rlplan ERROR "), 0u);
  EXPECT_NE(out.find(" t"), std::string::npos);  // thread-id column
  EXPECT_NE(out.find("prefixed"), std::string::npos);

  rlplan::set_log_prefix(false);
  EXPECT_FALSE(rlplan::log_prefix_enabled());
  testing::internal::CaptureStderr();
  rlplan::log_line(LogLevel::kError, "plain");
  EXPECT_EQ(testing::internal::GetCapturedStderr().find("[rlplan ERROR] "),
            0u);
}

TEST_F(LogTest, ConcurrentPrefixTogglingAndLoggingIsLineAtomic) {
  // The daemon scenario: many threads logging while the prefix flag flips
  // underneath them. Sanitizers verify the globals are race-free; the line
  // count + per-line shape verify log_line's line-granular locking (no lost,
  // duplicated, or interleaved lines).
  rlplan::set_log_level(LogLevel::kWarn);
  constexpr int kThreads = 4;
  constexpr int kLines = 200;
  testing::internal::CaptureStderr();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kLines; ++i) {
        rlplan::set_log_prefix((t + i) % 2 == 0);
        rlplan::log_line(LogLevel::kError,
                         "t" + std::to_string(t) + "i" + std::to_string(i));
        static_cast<void>(rlplan::log_prefix_enabled());
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const std::string out = testing::internal::GetCapturedStderr();

  std::size_t lines = 0;
  std::size_t start = 0;
  while (true) {
    const std::size_t nl = out.find('\n', start);
    if (nl == std::string::npos) break;
    const std::string line = out.substr(start, nl - start);
    start = nl + 1;
    ++lines;
    // Whatever the flag said for this line, it must be one complete record.
    EXPECT_EQ(line.rfind("[rlplan ERROR", 0), 0u) << line;
    EXPECT_NE(line.find("] t"), std::string::npos) << line;
  }
  EXPECT_EQ(lines, static_cast<std::size_t>(kThreads * kLines));
}

}  // namespace
