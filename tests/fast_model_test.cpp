#include "thermal/fast_model.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "systems/synthetic.h"
#include "thermal/characterize.h"
#include "thermal/grid_solver.h"
#include "util/stats.h"
#include "util/timer.h"

namespace rlplan::thermal {
namespace {

// Shared small-grid characterization for the whole test suite (expensive).
class FastModelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    stack_ = new LayerStack(LayerStack::default_2p5d());
    CharacterizationConfig cc;
    cc.solver.dims = {32, 32};
    cc.auto_axis_points = 6;
    ThermalCharacterizer charac(*stack_, cc);
    model_ = new FastThermalModel(charac.characterize(40.0, 40.0));
  }
  static void TearDownTestSuite() {
    delete model_;
    delete stack_;
    model_ = nullptr;
    stack_ = nullptr;
  }
  static LayerStack* stack_;
  static FastThermalModel* model_;
};

LayerStack* FastModelTest::stack_ = nullptr;
FastThermalModel* FastModelTest::model_ = nullptr;

ChipletSystem two_die_system(double p0, double p1) {
  return ChipletSystem(
      "t", 40.0, 40.0,
      {{"a", 8.0, 8.0, p0}, {"b", 8.0, 8.0, p1}}, {});
}

TEST_F(FastModelTest, TablesAreNonEmpty) {
  EXPECT_FALSE(model_->empty());
  EXPECT_FALSE(model_->self_table().empty());
  EXPECT_FALSE(model_->mutual_table().empty());
  EXPECT_FALSE(model_->self_droop().empty());
}

TEST_F(FastModelTest, SelfResistanceDecreasesWithDieArea) {
  // Larger dies spread the same power over more area -> lower R_self.
  const auto& t = model_->self_table();
  EXPECT_GT(t.lookup(3.0, 3.0), t.lookup(10.0, 10.0));
  EXPECT_GT(t.lookup(10.0, 10.0), t.lookup(20.0, 20.0));
}

TEST_F(FastModelTest, MutualResistanceDecreasesWithDistance) {
  const auto& t = model_->mutual_table();
  EXPECT_GT(t.lookup(2.0), t.lookup(10.0));
  EXPECT_GT(t.lookup(10.0), t.lookup(25.0));
  EXPECT_GT(t.lookup(25.0), 0.0);  // package floor keeps it positive
}

TEST_F(FastModelTest, ZeroPowerGivesAmbient) {
  const auto sys = two_die_system(0.0, 0.0);
  Floorplan fp(sys);
  fp.place(0, {4.0, 16.0});
  fp.place(1, {28.0, 16.0});
  const auto r = model_->evaluate(sys, fp);
  EXPECT_NEAR(r.max_temp_c, model_->ambient_c(), 1e-9);
}

TEST_F(FastModelTest, HotterNeighborRaisesTemperature) {
  // Keep the receiver away from package corners in both configurations so
  // boundary self-heating does not mask the neighbour-coupling difference.
  const auto sys = two_die_system(30.0, 10.0);
  Floorplan near_fp(sys);
  near_fp.place(0, {4.0, 16.0});
  near_fp.place(1, {13.0, 16.0});  // centers 9 mm apart
  Floorplan far_fp(sys);
  far_fp.place(0, {4.0, 16.0});
  far_fp.place(1, {26.0, 16.0});  // centers 22 mm apart
  const double t_near = model_->evaluate(sys, near_fp).chiplet_temp_c[1];
  const double t_far = model_->evaluate(sys, far_fp).chiplet_temp_c[1];
  EXPECT_GT(t_near, t_far + 0.5);
}

TEST_F(FastModelTest, LinearInPower) {
  const auto sys1 = two_die_system(10.0, 0.0);
  const auto sys2 = two_die_system(20.0, 0.0);
  Floorplan fp1(sys1);
  fp1.place(0, {16.0, 16.0});
  fp1.place(1, {0.0, 0.0});
  Floorplan fp2(sys2);
  fp2.place(0, {16.0, 16.0});
  fp2.place(1, {0.0, 0.0});
  const double rise1 =
      model_->evaluate(sys1, fp1).chiplet_temp_c[0] - model_->ambient_c();
  const double rise2 =
      model_->evaluate(sys2, fp2).chiplet_temp_c[0] - model_->ambient_c();
  EXPECT_NEAR(rise2, 2.0 * rise1, 1e-6);
}

TEST_F(FastModelTest, ChipletTemperatureMatchesEvaluateRow) {
  // chiplet_temperature computes a single receiver row without evaluating
  // the whole system; it must agree with the corresponding evaluate() entry.
  const auto sys = two_die_system(25.0, 12.0);
  Floorplan fp(sys);
  fp.place(0, {6.0, 14.0});
  fp.place(1, {22.0, 18.0});
  const auto batch = model_->evaluate(sys, fp);
  for (std::size_t i = 0; i < sys.num_chiplets(); ++i) {
    EXPECT_NEAR(model_->chiplet_temperature(sys, fp, i),
                batch.chiplet_temp_c[i], 1e-12);
  }
  Floorplan partial(sys);
  partial.place(0, {6.0, 14.0});
  EXPECT_DOUBLE_EQ(model_->chiplet_temperature(sys, partial, 1),
                   model_->ambient_c());
  EXPECT_THROW(model_->chiplet_temperature(sys, fp, 99), std::out_of_range);
}

TEST_F(FastModelTest, UnplacedChipletsReadAmbient) {
  const auto sys = two_die_system(30.0, 10.0);
  Floorplan fp(sys);
  fp.place(0, {16.0, 16.0});
  const auto r = model_->evaluate(sys, fp);
  EXPECT_DOUBLE_EQ(r.chiplet_temp_c[1], model_->ambient_c());
  EXPECT_GT(r.chiplet_temp_c[0], model_->ambient_c());
}

TEST_F(FastModelTest, AgreesWithGroundTruthOnRandomSystems) {
  // The headline Table II property at small scale: MAE within a few K.
  systems::SyntheticConfig sc;
  sc.interposer_w_mm = 40.0;
  sc.interposer_h_mm = 40.0;
  sc.min_power_w = 4.0;
  sc.max_power_w = 25.0;
  const systems::SyntheticSystemGenerator gen(sc);
  GridThermalSolver solver(*stack_, {.dims = {32, 32}});
  std::vector<double> pred, ref;
  for (int i = 0; i < 6; ++i) {
    const auto sys = gen.generate(500 + i);
    Rng rng(900 + i);
    const auto fp = systems::random_legal_floorplan(sys, rng);
    ref.push_back(solver.solve(sys, fp).max_temp_c);
    pred.push_back(model_->evaluate(sys, fp).max_temp_c);
  }
  const auto m = ErrorMetrics::compute(pred, ref);
  EXPECT_LT(m.mae, 3.0) << "fast model diverged from ground truth";
}

TEST_F(FastModelTest, FasterThanGroundTruth) {
  const auto sys = two_die_system(20.0, 15.0);
  Floorplan fp(sys);
  fp.place(0, {4.0, 16.0});
  fp.place(1, {28.0, 16.0});
  GridThermalSolver solver(*stack_, {.dims = {32, 32}});
  Timer t1;
  solver.solve(sys, fp);
  const double slow = t1.seconds();
  Timer t2;
  for (int i = 0; i < 10; ++i) model_->evaluate(sys, fp);
  const double fast = t2.seconds() / 10.0;
  EXPECT_GT(slow / fast, 20.0) << "expected a large speedup";
}

TEST_F(FastModelTest, SaveLoadRoundtrip) {
  const auto path =
      (std::filesystem::temp_directory_path() / "rlplan_fast_model.txt")
          .string();
  model_->save(path);
  const auto loaded = FastThermalModel::load(path);
  const auto sys = two_die_system(22.0, 13.0);
  Floorplan fp(sys);
  fp.place(0, {5.0, 7.0});
  fp.place(1, {25.0, 20.0});
  const auto a = model_->evaluate(sys, fp);
  const auto b = loaded.evaluate(sys, fp);
  ASSERT_EQ(a.chiplet_temp_c.size(), b.chiplet_temp_c.size());
  for (std::size_t i = 0; i < a.chiplet_temp_c.size(); ++i) {
    EXPECT_NEAR(a.chiplet_temp_c[i], b.chiplet_temp_c[i], 1e-9);
  }
  std::filesystem::remove(path);
}

TEST_F(FastModelTest, EmptyModelThrows) {
  const FastThermalModel empty;
  const auto sys = two_die_system(1.0, 1.0);
  Floorplan fp(sys);
  fp.place(0, {0.0, 0.0});
  fp.place(1, {20.0, 20.0});
  EXPECT_THROW(empty.evaluate(sys, fp), std::logic_error);
}

TEST(FastModelConfig, RejectsBadSubsamples) {
  SelfResistanceTable self({1.0, 2.0}, {1.0, 2.0}, {{1.0, 1.0}, {1.0, 1.0}});
  MutualResistanceTable mutual({0.0, 1.0}, {1.0, 0.5});
  FastModelConfig config;
  config.source_subsamples = 0;
  EXPECT_THROW(FastThermalModel(self, mutual, 45.0, config),
               std::invalid_argument);
}

TEST(Characterizer, LinspaceAndGeomspace) {
  const auto lin = linspace(0.0, 10.0, 5);
  ASSERT_EQ(lin.size(), 5u);
  EXPECT_DOUBLE_EQ(lin[0], 0.0);
  EXPECT_DOUBLE_EQ(lin[2], 5.0);
  EXPECT_DOUBLE_EQ(lin[4], 10.0);

  const auto geo = geomspace(1.0, 16.0, 5);
  ASSERT_EQ(geo.size(), 5u);
  EXPECT_DOUBLE_EQ(geo[0], 1.0);
  EXPECT_NEAR(geo[2], 4.0, 1e-9);
  EXPECT_DOUBLE_EQ(geo[4], 16.0);

  EXPECT_THROW(linspace(5.0, 1.0, 3), std::invalid_argument);
  EXPECT_THROW(geomspace(0.0, 1.0, 3), std::invalid_argument);
  EXPECT_THROW(linspace(0.0, 1.0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace rlplan::thermal
