// Unit coverage for the observability layer (src/obs): metrics registry
// merge semantics, trace span recording + Chrome export, and the determinism
// contract (telemetry on/off never changes computed results).
//
// Note: the registry and trace state are process singletons, so every test
// uses its own metric names and resets buffered values up front.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "thermal/fast_model.h"
#include "thermal/resistance_table.h"
#include "util/json.h"

namespace rlplan::obs {
namespace {

const MetricValue* find_metric(const std::vector<MetricValue>& snap,
                               const std::string& name) {
  for (const MetricValue& m : snap) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    MetricsRegistry::instance().reset();
    reset_trace();
  }
  void TearDown() override { set_enabled(false); }
};

TEST_F(ObsTest, CounterMergesThreadShardsExactly) {
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 10000;
  const Counter c = MetricsRegistry::instance().counter("test.merge.counter");
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add(1);
    });
  }
  for (auto& t : threads) t.join();

  const auto snap = MetricsRegistry::instance().snapshot();
  const MetricValue* m = find_metric(snap, "test.merge.counter");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, MetricKind::kCounter);
  EXPECT_EQ(m->count, kThreads * kPerThread);
}

TEST_F(ObsTest, MacroCounterCountsAndDisabledMacroDoesNot) {
  for (int i = 0; i < 5; ++i) RLPLAN_COUNTER_INC("test.macro.counter");
  set_metrics_enabled(false);
  for (int i = 0; i < 100; ++i) RLPLAN_COUNTER_INC("test.macro.counter");
  set_metrics_enabled(true);
  const auto snap = MetricsRegistry::instance().snapshot();
  const MetricValue* m = find_metric(snap, "test.macro.counter");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->count, 5u);
}

TEST_F(ObsTest, GaugeTracksLastValueAndPeak) {
  const Gauge g = MetricsRegistry::instance().gauge("test.gauge");
  g.set(10);
  g.set(42);
  g.set(7);
  const auto snap = MetricsRegistry::instance().snapshot();
  const MetricValue* m = find_metric(snap, "test.gauge");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, MetricKind::kGauge);
  EXPECT_EQ(m->value, 7);
  EXPECT_EQ(m->peak, 42);
}

TEST_F(ObsTest, HistogramBucketsAndQuantiles) {
  const std::array<double, 3> bounds = {1.0, 2.0, 4.0};
  const HistogramMetric h =
      MetricsRegistry::instance().histogram("test.hist", bounds);
  h.observe(0.5);   // bucket 0
  h.observe(1.5);   // bucket 1
  h.observe(3.0);   // bucket 2
  h.observe(100.0); // overflow
  const auto snap = MetricsRegistry::instance().snapshot();
  const MetricValue* m = find_metric(snap, "test.hist");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, MetricKind::kHistogram);
  EXPECT_EQ(m->samples, 4u);
  EXPECT_DOUBLE_EQ(m->sum, 105.0);
  EXPECT_DOUBLE_EQ(m->min, 0.5);
  EXPECT_DOUBLE_EQ(m->max, 100.0);
  ASSERT_EQ(m->buckets.size(), 4u);
  EXPECT_EQ(m->buckets[0], 1u);
  EXPECT_EQ(m->buckets[1], 1u);
  EXPECT_EQ(m->buckets[2], 1u);
  EXPECT_EQ(m->buckets[3], 1u);
  // Quantile estimates stay within the bucket layout.
  EXPECT_GE(m->p50, 1.0);
  EXPECT_LE(m->p50, 2.0);
  EXPECT_DOUBLE_EQ(m->p99, 4.0);  // overflow mass clamps to the last bound
}

TEST_F(ObsTest, RegistrationIsIdempotentButKindConflictThrows) {
  const Counter a = MetricsRegistry::instance().counter("test.kind");
  const Counter b = MetricsRegistry::instance().counter("test.kind");
  a.add(1);
  b.add(1);
  const auto snap = MetricsRegistry::instance().snapshot();
  const MetricValue* m = find_metric(snap, "test.kind");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->count, 2u);  // same slot, not two metrics
  EXPECT_THROW((void)MetricsRegistry::instance().gauge("test.kind"),
               std::exception);
  EXPECT_THROW((void)MetricsRegistry::instance().histogram("test.kind"),
               std::exception);
}

TEST_F(ObsTest, ResetZerosValuesButKeepsDefinitions) {
  const Counter c = MetricsRegistry::instance().counter("test.reset");
  c.add(5);
  MetricsRegistry::instance().reset();
  const auto snap = MetricsRegistry::instance().snapshot();
  const MetricValue* m = find_metric(snap, "test.reset");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->count, 0u);
}

TEST_F(ObsTest, SnapshotJsonRoundTrips) {
  MetricsRegistry::instance().counter("test.json.counter").add(3);
  const util::JsonValue json = MetricsRegistry::instance().snapshot_json();
  ASSERT_TRUE(json.is_array());
  bool found = false;
  for (const util::JsonValue& row : json.as_array()) {
    if (row.string_or("name", "") == "test.json.counter") {
      found = true;
      EXPECT_DOUBLE_EQ(row.number_or("count", -1.0), 3.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ObsTest, SpansRecordNestAndExport) {
  {
    RLPLAN_TRACE_SPAN("test.outer", 7);
    {
      RLPLAN_TRACE_SPAN("test.inner");
    }
  }
  const TraceStats stats = trace_stats();
  EXPECT_EQ(stats.recorded, 2u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_GE(stats.threads, 1u);

  const util::JsonValue trace = chrome_trace_json();
  const util::JsonValue* events = trace.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  const util::JsonValue* outer = nullptr;
  const util::JsonValue* inner = nullptr;
  for (const util::JsonValue& e : events->as_array()) {
    if (e.string_or("name", "") == "test.outer") outer = &e;
    if (e.string_or("name", "") == "test.inner") inner = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->string_or("ph", ""), "X");
  EXPECT_EQ(outer->string_or("cat", ""), "test");
  // The arg tag is exported as args.v.
  const util::JsonValue* args = outer->find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_DOUBLE_EQ(args->number_or("v", -1.0), 7.0);
  // Nesting: inner starts no earlier and ends no later than outer.
  const double o_ts = outer->number_or("ts", -1.0);
  const double o_end = o_ts + outer->number_or("dur", 0.0);
  const double i_ts = inner->number_or("ts", -1.0);
  const double i_end = i_ts + inner->number_or("dur", 0.0);
  EXPECT_GE(i_ts, o_ts);
  EXPECT_LE(i_end, o_end);
}

TEST_F(ObsTest, DisabledSpanRecordsNothing) {
  set_trace_enabled(false);
  {
    RLPLAN_TRACE_SPAN("test.should_not_appear");
  }
  set_trace_enabled(true);
  EXPECT_EQ(trace_stats().recorded, 0u);
}

TEST_F(ObsTest, ResetTraceDropsBufferedEvents) {
  {
    RLPLAN_TRACE_SPAN("test.reset_me");
  }
  EXPECT_EQ(trace_stats().recorded, 1u);
  reset_trace();
  EXPECT_EQ(trace_stats().recorded, 0u);
}

TEST_F(ObsTest, TraceSummaryAggregatesPerName) {
  for (int i = 0; i < 3; ++i) {
    RLPLAN_TRACE_SPAN("test.summary");
  }
  const util::JsonValue summary = trace_summary_json();
  ASSERT_TRUE(summary.is_array());
  bool found = false;
  for (const util::JsonValue& row : summary.as_array()) {
    if (row.string_or("name", "") == "test.summary") {
      found = true;
      EXPECT_DOUBLE_EQ(row.number_or("count", -1.0), 3.0);
      EXPECT_GE(row.number_or("total_ms", -1.0), 0.0);
    }
  }
  EXPECT_TRUE(found);
}

// The determinism contract: running the instrumented thermal hot path with
// telemetry enabled must produce bit-identical results to running it
// disabled.
TEST_F(ObsTest, TelemetryNeverChangesThermalResults) {
  std::vector<double> dims = {2.0, 10.0, 20.0};
  std::vector<std::vector<double>> self_vals(3, std::vector<double>(3));
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      self_vals[i][j] = 3.0 / (1.0 + 0.04 * dims[i] * dims[j]);
    }
  }
  std::vector<double> distances, mutual_vals;
  for (double d = 0.0; d <= 80.0; d += 2.0) {
    distances.push_back(d);
    mutual_vals.push_back(0.02 + 0.8 * std::exp(-d / 10.0));
  }
  const thermal::FastThermalModel model(
      thermal::SelfResistanceTable(dims, dims, self_vals),
      thermal::MutualResistanceTable(distances, mutual_vals), 45.0, {});
  const ChipletSystem sys(
      "obs", 60.0, 60.0,
      {{"a", 8.0, 8.0, 5.0}, {"b", 10.0, 10.0, 8.0}, {"c", 6.0, 6.0, 3.0}},
      {});
  Floorplan fp(sys);
  fp.place(0, {5.0, 5.0}, false);
  fp.place(1, {30.0, 10.0}, false);
  fp.place(2, {15.0, 40.0}, false);

  set_enabled(false);
  const thermal::FastThermalResult off = model.evaluate(sys, fp);
  set_enabled(true);
  const thermal::FastThermalResult on = model.evaluate(sys, fp);
  set_enabled(false);

  EXPECT_EQ(off.max_temp_c, on.max_temp_c);  // bit-exact, not approximate
  ASSERT_EQ(off.chiplet_temp_c.size(), on.chiplet_temp_c.size());
  for (std::size_t i = 0; i < off.chiplet_temp_c.size(); ++i) {
    EXPECT_EQ(off.chiplet_temp_c[i], on.chiplet_temp_c[i]);
  }
}

}  // namespace
}  // namespace rlplan::obs
