// ThreadPool lifetime-stats coverage: the counters are exact by construction
// (every index of every parallel_for runs exactly once), so the assertions
// here are equalities, not tolerances.
#include "parallel/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <vector>

namespace rlplan::parallel {
namespace {

TEST(ThreadPoolStats, ExactCountsAcrossBurstOfJobs) {
  ThreadPool pool(4);
  const std::vector<std::size_t> burst = {1, 8, 3, 64, 0, 17, 128};
  std::atomic<std::uint64_t> touched{0};
  std::uint64_t expected_tasks = 0;
  std::uint64_t expected_calls = 0;
  std::size_t expected_peak = 0;
  for (const std::size_t n : burst) {
    pool.parallel_for(n, [&touched](std::size_t) {
      touched.fetch_add(1, std::memory_order_relaxed);
    });
    expected_tasks += n;
    if (n > 0) ++expected_calls;  // n = 0 is a counted-out no-op
    expected_peak = std::max(expected_peak, n);
  }

  const ThreadPoolStats stats = pool.stats();
  EXPECT_EQ(stats.parallel_for_calls, expected_calls);
  EXPECT_EQ(stats.tasks_executed, expected_tasks);
  EXPECT_EQ(stats.tasks_executed, touched.load());
  EXPECT_EQ(stats.peak_queue_depth, expected_peak);
  EXPECT_GT(stats.busy_seconds, 0.0);
  EXPECT_GE(stats.idle_seconds, 0.0);
}

TEST(ThreadPoolStats, InlinePoolCountsTheSameWay) {
  // Size 0 and 1 run everything on the caller thread — the stats contract
  // must not depend on whether workers exist.
  for (const std::size_t size : {0u, 1u}) {
    ThreadPool pool(size);
    ASSERT_EQ(pool.size(), 0u);
    std::uint64_t sum = 0;
    pool.parallel_for(10, [&sum](std::size_t i) { sum += i; });
    pool.parallel_for(5, [&sum](std::size_t i) { sum += i; });
    EXPECT_EQ(sum, 45u + 10u);

    const ThreadPoolStats stats = pool.stats();
    EXPECT_EQ(stats.parallel_for_calls, 2u);
    EXPECT_EQ(stats.tasks_executed, 15u);
    EXPECT_EQ(stats.peak_queue_depth, 10u);
    EXPECT_EQ(stats.idle_seconds, 0.0);  // no workers, nobody sleeps
  }
}

TEST(ThreadPoolStats, FreshPoolIsZeroed) {
  ThreadPool pool(2);
  const ThreadPoolStats stats = pool.stats();
  EXPECT_EQ(stats.parallel_for_calls, 0u);
  EXPECT_EQ(stats.tasks_executed, 0u);
  EXPECT_EQ(stats.peak_queue_depth, 0u);
  EXPECT_EQ(stats.busy_seconds, 0.0);
}

TEST(ThreadPoolStats, EmptyCallIsANoOp) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "fn ran for n = 0"; });
  const ThreadPoolStats stats = pool.stats();
  EXPECT_EQ(stats.parallel_for_calls, 0u);
  EXPECT_EQ(stats.tasks_executed, 0u);
}

TEST(ThreadPoolStats, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 500;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&hits](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
  EXPECT_EQ(pool.stats().tasks_executed, kN);
}

}  // namespace
}  // namespace rlplan::parallel
