// End-to-end integration: characterization -> RL training -> SA baseline ->
// ground-truth scoring, at miniature scale.
#include <gtest/gtest.h>

#include "rl/planner.h"
#include "sa/tap25d.h"
#include "systems/synthetic.h"
#include "systems/systems.h"
#include "thermal/characterize.h"
#include "thermal/evaluator.h"

namespace rlplan {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    stack_ = new thermal::LayerStack(thermal::LayerStack::default_2p5d());
    systems::SyntheticConfig sc;
    sc.interposer_w_mm = 32.0;
    sc.interposer_h_mm = 32.0;
    sc.min_chiplets = 4;
    sc.max_chiplets = 4;
    sc.min_dim_mm = 5.0;
    sc.max_dim_mm = 9.0;
    sc.min_power_w = 5.0;
    sc.max_power_w = 20.0;
    system_ = new ChipletSystem(
        systems::SyntheticSystemGenerator(sc).generate(77, "integration"));

    thermal::CharacterizationConfig cc;
    cc.solver.dims = {24, 24};
    cc.auto_axis_points = 4;
    thermal::ThermalCharacterizer charac(*stack_, cc);
    model_ = new thermal::FastThermalModel(charac.characterize(32.0, 32.0));
  }
  static void TearDownTestSuite() {
    delete model_;
    delete system_;
    delete stack_;
    model_ = nullptr;
    system_ = nullptr;
    stack_ = nullptr;
  }

  static thermal::LayerStack* stack_;
  static ChipletSystem* system_;
  static thermal::FastThermalModel* model_;
};

thermal::LayerStack* IntegrationTest::stack_ = nullptr;
ChipletSystem* IntegrationTest::system_ = nullptr;
thermal::FastThermalModel* IntegrationTest::model_ = nullptr;

TEST_F(IntegrationTest, RlPlannerEndToEnd) {
  rl::RlPlannerConfig config;
  config.env.grid = 12;
  config.net.grid = 12;
  config.net.conv1 = 4;
  config.net.conv2 = 4;
  config.net.conv3 = 4;
  config.net.fc = 32;
  config.epochs = 3;
  config.ppo.episodes_per_update = 4;
  config.solver.dims = {24, 24};
  config.seed = 5;
  rl::RlPlanner planner(config);
  const auto result = planner.plan_with_model(*system_, *stack_, *model_);

  ASSERT_TRUE(result.best.has_value());
  EXPECT_TRUE(result.best->is_complete());
  EXPECT_TRUE(result.best->is_legal());
  EXPECT_EQ(result.epochs_run, 3);
  EXPECT_EQ(result.history.size(), 3u);
  EXPECT_GT(result.final_wirelength_mm, 0.0);
  EXPECT_GT(result.final_temperature_c, stack_->ambient_c());
  EXPECT_LT(result.final_temperature_c, 150.0);
  EXPECT_LT(result.final_reward, 0.0);
  // Fast-model metrics and ground truth agree within a sane band.
  EXPECT_NEAR(result.best_metrics.temperature_c, result.final_temperature_c,
              8.0);
}

TEST_F(IntegrationTest, RlPlannerWithRndEndToEnd) {
  rl::RlPlannerConfig config;
  config.env.grid = 12;
  config.net.grid = 12;
  config.net.conv1 = 4;
  config.net.conv2 = 4;
  config.net.conv3 = 4;
  config.net.fc = 32;
  config.epochs = 2;
  config.ppo.episodes_per_update = 4;
  config.ppo.use_rnd = true;
  config.solver.dims = {24, 24};
  config.seed = 6;
  rl::RlPlanner planner(config);
  const auto result = planner.plan_with_model(*system_, *stack_, *model_);
  ASSERT_TRUE(result.best.has_value());
  EXPECT_TRUE(result.best->is_legal());
}

TEST_F(IntegrationTest, SaBothEvaluatorConfigurations) {
  sa::Tap25dConfig config;
  config.anneal.max_evaluations = 300;
  config.anneal.t_final = 1e-2;
  config.seed = 7;

  thermal::FastModelEvaluator fast_eval(*model_);
  sa::Tap25dPlanner planner(config);
  const auto fast_result = planner.plan(*system_, fast_eval);
  EXPECT_TRUE(fast_result.best.is_legal());

  thermal::GridSolverEvaluator truth_eval(*stack_, {.dims = {24, 24}});
  sa::Tap25dConfig slow_config = config;
  slow_config.anneal.max_evaluations = 60;  // solver evals are expensive
  sa::Tap25dPlanner slow_planner(slow_config);
  const auto slow_result = slow_planner.plan(*system_, truth_eval);
  EXPECT_TRUE(slow_result.best.is_legal());

  // Both must land in a physically sensible temperature range.
  EXPECT_GT(fast_result.temperature_c, stack_->ambient_c());
  EXPECT_GT(slow_result.temperature_c, stack_->ambient_c());
}

TEST_F(IntegrationTest, OptimizedBeatsRandomPlacement) {
  // Any optimizer output should beat the average random legal placement
  // under the identical ground-truth objective.
  thermal::GridThermalSolver truth(*stack_, {.dims = {24, 24}});
  const bump::BumpAssigner assigner;
  const RewardCalculator rc;
  const auto score = [&](const Floorplan& fp) {
    return rc.reward(assigner.assign(*system_, fp).total_mm,
                     truth.solve(*system_, fp).max_temp_c);
  };

  double random_sum = 0.0;
  for (int i = 0; i < 5; ++i) {
    Rng rng(1000 + i);
    random_sum += score(systems::random_legal_floorplan(*system_, rng));
  }
  const double random_avg = random_sum / 5.0;

  sa::Tap25dConfig config;
  config.anneal.max_evaluations = 400;
  config.seed = 9;
  thermal::FastModelEvaluator fast_eval(*model_);
  sa::Tap25dPlanner planner(config);
  const auto sa_result = planner.plan(*system_, fast_eval);
  EXPECT_GT(score(sa_result.best), random_avg)
      << "SA under the fast model failed to beat random placement on the "
         "ground-truth objective";
}

TEST_F(IntegrationTest, FirstFitFallbackWorksOnBenchmarks) {
  for (const auto& sys : systems::make_benchmark_systems()) {
    rl::EnvConfig config;
    config.grid = 48;
    const Floorplan fp = rl::first_fit_floorplan(sys, config);
    EXPECT_TRUE(fp.is_complete()) << sys.name();
    EXPECT_TRUE(fp.is_legal()) << sys.name();
  }
}

TEST_F(IntegrationTest, BenchmarkSystemsLandInPaperTemperatureRegime) {
  // First-fit placements of the Table I systems should produce peak
  // temperatures in a plausible operating window (the paper reports 75-98C;
  // unoptimized placements may run somewhat hotter).
  thermal::GridThermalSolver truth(*stack_, {.dims = {32, 32}});
  for (const auto& sys : systems::make_benchmark_systems()) {
    rl::EnvConfig config;
    config.grid = 48;
    const Floorplan fp = rl::first_fit_floorplan(sys, config);
    const double t = truth.solve(sys, fp).max_temp_c;
    EXPECT_GT(t, 60.0) << sys.name();
    // First-fit corner-packs the dies, which is thermally pathological;
    // optimized placements land 30-50 K cooler (see bench/table1_baselines).
    EXPECT_LT(t, 145.0) << sys.name();
  }
}

}  // namespace
}  // namespace rlplan
