#include "rl/ppo.h"

#include <gtest/gtest.h>

#include "thermal/evaluator.h"

namespace rlplan::rl {
namespace {

// Cheap geometric evaluator (compactness ~ heat) so PPO tests avoid
// characterization entirely.
class ProxyEvaluator final : public thermal::ThermalEvaluator {
 public:
  double max_temperature(const ChipletSystem& system,
                         const Floorplan& floorplan) override {
    ++count_;
    double worst = 45.0;
    const auto rects = floorplan.placed_rects();
    for (std::size_t i = 0; i < rects.size(); ++i) {
      if (!rects[i]) continue;
      double t = 45.0 + 1.2 * system.chiplet(i).power;
      for (std::size_t j = 0; j < rects.size(); ++j) {
        if (j == i || !rects[j]) continue;
        const double d = center_distance(*rects[i], *rects[j]);
        t += system.chiplet(j).power / (1.0 + 0.3 * d);
      }
      worst = std::max(worst, t);
    }
    return worst;
  }
  long num_evaluations() const override { return count_; }
  std::string name() const override { return "proxy"; }

 private:
  long count_ = 0;
};

ChipletSystem tiny_system() {
  return ChipletSystem("ppo", 24.0, 24.0,
                       {{"a", 8.0, 8.0, 25.0},
                        {"b", 6.0, 6.0, 12.0},
                        {"c", 5.0, 5.0, 8.0}},
                       {{0, 1, 64}, {1, 2, 32}, {0, 2, 16}});
}

PpoConfig small_ppo(std::uint64_t seed) {
  PpoConfig config;
  config.episodes_per_update = 6;
  config.minibatch = 16;
  config.seed = seed;
  return config;
}

PolicyNetConfig tiny_net() {
  PolicyNetConfig config;
  config.conv1 = 4;
  config.conv2 = 4;
  config.conv3 = 4;
  config.fc = 32;
  return config;
}

TEST(PpoTrainer, TrainEpochProducesStats) {
  const auto sys = tiny_system();
  ProxyEvaluator eval;
  FloorplanEnv env(sys, eval, RewardCalculator{}, bump::BumpAssigner{},
                   {.grid = 12});
  PpoTrainer trainer(env, tiny_net(), small_ppo(3));
  const TrainStats stats = trainer.train_epoch();
  EXPECT_EQ(stats.episodes, 6u);
  EXPECT_EQ(stats.steps, 18u);  // 3 placements per episode
  EXPECT_LT(stats.mean_reward, 0.0);
  EXPECT_GT(stats.entropy, 0.0);
  EXPECT_GT(trainer.total_env_steps(), 0);
}

TEST(PpoTrainer, TracksBestFloorplan) {
  const auto sys = tiny_system();
  ProxyEvaluator eval;
  FloorplanEnv env(sys, eval, RewardCalculator{}, bump::BumpAssigner{},
                   {.grid = 12});
  PpoTrainer trainer(env, tiny_net(), small_ppo(4));
  EXPECT_FALSE(trainer.has_best());
  EXPECT_THROW(trainer.best_floorplan(), std::logic_error);
  trainer.train_epoch();
  ASSERT_TRUE(trainer.has_best());
  EXPECT_TRUE(trainer.best_floorplan().is_complete());
  EXPECT_TRUE(trainer.best_metrics().valid);
  // Best must be at least as good as any epoch's mean.
  const TrainStats s2 = trainer.train_epoch();
  EXPECT_GE(trainer.best_metrics().reward, s2.mean_reward - 1e-9);
}

TEST(PpoTrainer, DeterministicGivenSeed) {
  const auto sys = tiny_system();
  auto run = [&](std::uint64_t seed) {
    ProxyEvaluator eval;
    FloorplanEnv env(sys, eval, RewardCalculator{}, bump::BumpAssigner{},
                     {.grid = 12});
    PpoTrainer trainer(env, tiny_net(), small_ppo(seed));
    return trainer.train_epoch().mean_reward;
  };
  EXPECT_DOUBLE_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(PpoTrainer, LearnsOnTinyProblem) {
  // Mean reward over late epochs should beat the first epoch meaningfully.
  const auto sys = tiny_system();
  ProxyEvaluator eval;
  FloorplanEnv env(sys, eval, RewardCalculator{}, bump::BumpAssigner{},
                   {.grid = 12});
  PpoConfig config = small_ppo(5);
  config.episodes_per_update = 10;
  config.adam.lr = 1e-3f;
  PpoTrainer trainer(env, tiny_net(), config);
  const double first = trainer.train_epoch().mean_reward;
  double late = 0.0;
  const int total = 12;
  double best_mean = first;
  for (int i = 1; i < total; ++i) {
    late = trainer.train_epoch().mean_reward;
    best_mean = std::max(best_mean, late);
  }
  EXPECT_GT(best_mean, first) << "PPO never improved over its first epoch";
}

TEST(PpoTrainer, GreedyEpisodeReturnsValidMetrics) {
  const auto sys = tiny_system();
  ProxyEvaluator eval;
  FloorplanEnv env(sys, eval, RewardCalculator{}, bump::BumpAssigner{},
                   {.grid = 12});
  PpoTrainer trainer(env, tiny_net(), small_ppo(6));
  trainer.train_epoch();
  const EpisodeMetrics m = trainer.greedy_episode();
  EXPECT_TRUE(m.valid);
  EXPECT_LT(m.reward, 0.0);
  EXPECT_GT(m.wirelength_mm, 0.0);
}

TEST(PpoTrainer, RndVariantRuns) {
  const auto sys = tiny_system();
  ProxyEvaluator eval;
  FloorplanEnv env(sys, eval, RewardCalculator{}, bump::BumpAssigner{},
                   {.grid = 12});
  PpoConfig config = small_ppo(9);
  config.use_rnd = true;
  PpoTrainer trainer(env, tiny_net(), config);
  const TrainStats stats = trainer.train_epoch();
  EXPECT_GT(stats.rnd_error, 0.0) << "RND predictor error should be nonzero";
  // Intrinsic rewards must have been recorded.
  const TrainStats stats2 = trainer.train_epoch();
  EXPECT_GE(stats2.episodes, 1u);
}

TEST(PpoTrainer, RewardNormalizationToggleBothRun) {
  const auto sys = tiny_system();
  for (bool normalize : {true, false}) {
    ProxyEvaluator eval;
    FloorplanEnv env(sys, eval, RewardCalculator{}, bump::BumpAssigner{},
                     {.grid = 12});
    PpoConfig config = small_ppo(10);
    config.normalize_rewards = normalize;
    PpoTrainer trainer(env, tiny_net(), config);
    EXPECT_NO_THROW(trainer.train_epoch());
  }
}

}  // namespace
}  // namespace rlplan::rl
