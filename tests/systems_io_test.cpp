#include "systems/io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "systems/systems.h"

namespace rlplan::systems {
namespace {

constexpr const char* kValid = R"(
# a demo system
system demo
interposer 30 30
chiplet cpu 9 9 30
chiplet gpu 10 8 35   # inline comment
net cpu gpu 256
)";

TEST(SystemIo, ParsesValidFile) {
  std::istringstream is(kValid);
  const ChipletSystem sys = read_system(is);
  EXPECT_EQ(sys.name(), "demo");
  EXPECT_DOUBLE_EQ(sys.interposer_width(), 30.0);
  ASSERT_EQ(sys.num_chiplets(), 2u);
  EXPECT_EQ(sys.chiplet(0).name, "cpu");
  EXPECT_DOUBLE_EQ(sys.chiplet(1).power, 35.0);
  ASSERT_EQ(sys.nets().size(), 1u);
  EXPECT_EQ(sys.nets()[0].wires, 256);
}

TEST(SystemIo, RoundtripPreservesEverything) {
  const ChipletSystem original = make_multi_gpu_system();
  std::stringstream ss;
  write_system(original, ss);
  const ChipletSystem parsed = read_system(ss);
  EXPECT_EQ(parsed.name(), original.name());
  ASSERT_EQ(parsed.num_chiplets(), original.num_chiplets());
  for (std::size_t i = 0; i < original.num_chiplets(); ++i) {
    EXPECT_EQ(parsed.chiplet(i).name, original.chiplet(i).name);
    EXPECT_DOUBLE_EQ(parsed.chiplet(i).width, original.chiplet(i).width);
    EXPECT_DOUBLE_EQ(parsed.chiplet(i).power, original.chiplet(i).power);
  }
  ASSERT_EQ(parsed.nets().size(), original.nets().size());
  for (std::size_t i = 0; i < original.nets().size(); ++i) {
    EXPECT_EQ(parsed.nets()[i], original.nets()[i]);
  }
}

TEST(SystemIo, RejectsUnknownKeyword) {
  std::istringstream is("system x\ninterposer 10 10\nfrobnicate 1 2\n");
  EXPECT_THROW(read_system(is), std::runtime_error);
}

TEST(SystemIo, RejectsUnknownNetEndpoint) {
  std::istringstream is(
      "system x\ninterposer 10 10\nchiplet a 2 2 1\nnet a ghost 8\n");
  try {
    read_system(is);
    FAIL() << "expected parse failure";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("ghost"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos);
  }
}

TEST(SystemIo, RejectsDuplicateChiplet) {
  std::istringstream is(
      "system x\ninterposer 10 10\nchiplet a 2 2 1\nchiplet a 3 3 1\n");
  EXPECT_THROW(read_system(is), std::runtime_error);
}

TEST(SystemIo, RejectsNonNumericField) {
  std::istringstream is("system x\ninterposer ten 10\n");
  EXPECT_THROW(read_system(is), std::runtime_error);
}

TEST(SystemIo, RejectsMissingSystemLine) {
  std::istringstream is("interposer 10 10\nchiplet a 2 2 1\n");
  EXPECT_THROW(read_system(is), std::runtime_error);
}

TEST(SystemIo, ParsedSystemIsValidated) {
  // Oversized chiplet: parser must surface validate()'s rejection.
  std::istringstream is("system x\ninterposer 10 10\nchiplet a 20 2 1\n");
  EXPECT_THROW(read_system(is), std::exception);
}

TEST(FloorplanIo, RoundtripWithRotation) {
  std::istringstream sys_is(kValid);
  const ChipletSystem sys = read_system(sys_is);
  Floorplan fp(sys);
  fp.place(0, {1.5, 2.25});
  fp.place(1, {15.0, 10.0}, /*rotated=*/true);

  std::stringstream ss;
  write_floorplan(fp, ss);
  const Floorplan parsed = read_floorplan(ss, sys);
  ASSERT_TRUE(parsed.is_placed(0));
  ASSERT_TRUE(parsed.is_placed(1));
  EXPECT_EQ(parsed.placement(0)->position, (Point{1.5, 2.25}));
  EXPECT_FALSE(parsed.placement(0)->rotated);
  EXPECT_TRUE(parsed.placement(1)->rotated);
}

TEST(FloorplanIo, PartialFloorplanSupported) {
  std::istringstream sys_is(kValid);
  const ChipletSystem sys = read_system(sys_is);
  std::istringstream is("floorplan demo\nplace cpu 1 1\n");
  const Floorplan fp = read_floorplan(is, sys);
  EXPECT_TRUE(fp.is_placed(0));
  EXPECT_FALSE(fp.is_placed(1));
}

TEST(FloorplanIo, RejectsWrongSystemName) {
  std::istringstream sys_is(kValid);
  const ChipletSystem sys = read_system(sys_is);
  std::istringstream is("floorplan other\n");
  EXPECT_THROW(read_floorplan(is, sys), std::runtime_error);
}

TEST(FloorplanIo, RejectsUnknownChiplet) {
  std::istringstream sys_is(kValid);
  const ChipletSystem sys = read_system(sys_is);
  std::istringstream is("floorplan demo\nplace npu 1 1\n");
  EXPECT_THROW(read_floorplan(is, sys), std::runtime_error);
}

TEST(FloorplanIo, RejectsBadRotationToken) {
  std::istringstream sys_is(kValid);
  const ChipletSystem sys = read_system(sys_is);
  std::istringstream is("floorplan demo\nplace cpu 1 1 sideways\n");
  EXPECT_THROW(read_floorplan(is, sys), std::runtime_error);
}

}  // namespace
}  // namespace rlplan::systems
