// Fault-tolerance layer: deadlines, cooperative cancellation, deterministic
// fault injection, retry, and the degradation paths wired through SA, the
// thread pool, the grid solver, and PPO.
//
// The two contracts this file exists to pin down:
//   * Stopping is prefix-deterministic — a cancelled run's partial result
//     equals the same-length prefix of the uncancelled run.
//   * Fault injection is a pure function of (spec, seed, site, hit index) —
//     a given configuration reproduces the exact same injection sequence.
#include "robust/robust.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "parallel/thread_pool.h"
#include "rl/ppo.h"
#include "robust/fault.h"
#include "sa/annealer.h"
#include "thermal/evaluator.h"
#include "thermal/grid_solver.h"
#include "thermal/layer_stack.h"
#include "util/fs.h"

namespace rlplan {
namespace {

/// Every test that configures the process-wide injector must leave it off.
class FaultGuard {
 public:
  FaultGuard(const std::string& spec, std::uint64_t seed) {
    robust::FaultInjector::instance().configure(spec, seed);
  }
  ~FaultGuard() { robust::FaultInjector::instance().clear(); }
};

// --------------------------------------------------------------- primitives

TEST(Deadline, DefaultIsUnlimited) {
  const robust::Deadline d;
  EXPECT_TRUE(d.unlimited());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_seconds(), 1e9);
}

TEST(Deadline, ZeroBudgetIsAlreadyExpired) {
  const auto d = robust::Deadline::after_seconds(0.0);
  EXPECT_FALSE(d.unlimited());
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining_seconds(), 0.0);
}

TEST(Deadline, GenerousBudgetIsNotExpired) {
  const auto d = robust::Deadline::after_seconds(3600.0);
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_seconds(), 3000.0);
}

TEST(CancelToken, DefaultIsInert) {
  const robust::CancelToken t;
  EXPECT_FALSE(t.active());
  EXPECT_FALSE(t.cancelled());
  t.cancel();  // no-op, must not crash
  EXPECT_FALSE(t.cancelled());
}

TEST(CancelToken, CopiesShareTheFlag) {
  const auto t = robust::CancelToken::create();
  const robust::CancelToken copy = t;
  EXPECT_TRUE(copy.active());
  EXPECT_FALSE(copy.cancelled());
  t.cancel();
  EXPECT_TRUE(copy.cancelled());
}

TEST(RunControl, DefaultIsInactiveAndFree) {
  const robust::RunControl c;
  EXPECT_FALSE(c.active());
  EXPECT_FALSE(c.stop_requested());
  EXPECT_EQ(c.stop_reason(), robust::StopReason::kNone);
}

TEST(RunControl, CancelWinsOverDeadline) {
  robust::RunControl c;
  c.deadline = robust::Deadline::after_seconds(0.0);
  c.cancel = robust::CancelToken::create();
  EXPECT_EQ(c.stop_reason(), robust::StopReason::kDeadline);
  c.cancel.cancel();
  EXPECT_EQ(c.stop_reason(), robust::StopReason::kCancelled);
  EXPECT_TRUE(c.stop_requested());
}

TEST(StopReason, ToStringNames) {
  EXPECT_STREQ(robust::to_string(robust::StopReason::kNone), "none");
  EXPECT_STREQ(robust::to_string(robust::StopReason::kCancelled),
               "cancelled");
  EXPECT_STREQ(robust::to_string(robust::StopReason::kDeadline), "deadline");
}

// ------------------------------------------------------------------- retry

TEST(Retry, SucceedsAfterTransientFailures) {
  int calls = 0;
  robust::RetryOptions opts;
  opts.max_attempts = 3;
  opts.initial_backoff_s = 0.0;  // no sleeping in unit tests
  const int result = robust::retry_with_backoff(
      [&] {
        if (++calls < 3) throw robust::TransientIoError("flaky");
        return 42;
      },
      opts);
  EXPECT_EQ(result, 42);
  EXPECT_EQ(calls, 3);
}

TEST(Retry, ExhaustsAttemptsAndRethrows) {
  int calls = 0;
  robust::RetryOptions opts;
  opts.max_attempts = 3;
  opts.initial_backoff_s = 0.0;
  EXPECT_THROW(robust::retry_with_backoff(
                   [&]() -> int {
                     ++calls;
                     throw robust::TransientIoError("always");
                   },
                   opts),
               robust::TransientIoError);
  EXPECT_EQ(calls, 3);
}

TEST(Retry, NonTransientErrorsAreNotRetried) {
  int calls = 0;
  robust::RetryOptions opts;
  opts.max_attempts = 5;
  opts.initial_backoff_s = 0.0;
  EXPECT_THROW(robust::retry_with_backoff(
                   [&]() -> int {
                     ++calls;
                     throw robust::CorruptArtifactError("permanent");
                   },
                   opts),
               robust::CorruptArtifactError);
  EXPECT_EQ(calls, 1);
}

// --------------------------------------------------------- fault injection

TEST(FaultInjector, SameSpecAndSeedReproduceTheSequence) {
  auto& inj = robust::FaultInjector::instance();
  const auto record = [&] {
    inj.configure("flip:0.4", 123);
    std::vector<bool> seq;
    for (int i = 0; i < 200; ++i) seq.push_back(inj.should_inject("flip"));
    return seq;
  };
  const auto a = record();
  const auto b = record();
  inj.clear();
  EXPECT_EQ(a, b);
  // A 0.4 coin must actually land on both sides over 200 hits.
  int fired = 0;
  for (const bool v : a) fired += v ? 1 : 0;
  EXPECT_GT(fired, 20);
  EXPECT_LT(fired, 180);
}

TEST(FaultInjector, DifferentSeedsProduceDifferentSequences) {
  auto& inj = robust::FaultInjector::instance();
  const auto record = [&](std::uint64_t seed) {
    inj.configure("flip:0.5", seed);
    std::vector<bool> seq;
    for (int i = 0; i < 100; ++i) seq.push_back(inj.should_inject("flip"));
    return seq;
  };
  const auto a = record(1);
  const auto b = record(2);
  inj.clear();
  EXPECT_NE(a, b);
}

TEST(FaultInjector, CountsHitsAndInjections) {
  const FaultGuard guard("always:1.0,never:0.0001", 9);
  auto& inj = robust::FaultInjector::instance();
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(robust::fault_point("always"));
  }
  EXPECT_EQ(inj.hit_count("always"), 10u);
  EXPECT_EQ(inj.injected_count("always"), 10u);
  EXPECT_EQ(inj.hit_count("unconfigured"), 0u);
  EXPECT_FALSE(robust::fault_point("unconfigured"));  // never fires
}

TEST(FaultInjector, DisabledFastPathInjectsNothing) {
  robust::FaultInjector::instance().clear();
  EXPECT_FALSE(robust::FaultInjector::instance().enabled());
  EXPECT_FALSE(robust::fault_point("anything"));
}

TEST(FaultInjector, RejectsMalformedSpecs) {
  auto& inj = robust::FaultInjector::instance();
  EXPECT_THROW(inj.configure("noprob", 1), std::invalid_argument);
  EXPECT_THROW(inj.configure("site:1.5", 1), std::invalid_argument);
  EXPECT_THROW(inj.configure("site:-0.1", 1), std::invalid_argument);
  EXPECT_THROW(inj.configure(":0.5", 1), std::invalid_argument);
  EXPECT_THROW(inj.configure("site:abc", 1), std::invalid_argument);
  inj.clear();
}

// ----------------------------------------------- SA: prefix-deterministic stop

TEST(AnnealControl, CancelAfterKEvalsEqualsEvalBudgetK) {
  // The cancel poll sits at the same loop position as the max_evaluations
  // check, so cancelling after the K-th cost call must reproduce the
  // max_evaluations=K run exactly: same best state, same statistics.
  const auto quadratic = [](const double& x) { return (x - 3.0) * (x - 3.0); };
  const auto step = [](const double& x, Rng& r) -> std::optional<double> {
    return x + r.normal(0.0, 0.5);
  };
  const long kBudget = 40;

  sa::AnnealOptions budgeted;
  budgeted.t_initial = 1.0;  // fixed T0: calibration consumes no evals
  budgeted.t_final = 1e-9;
  budgeted.cooling = 0.95;
  budgeted.moves_per_temperature = 10;
  budgeted.max_evaluations = kBudget;
  Rng rng_a(17);
  sa::AnnealStats stats_a;
  const double best_a = sa::anneal<double>(10.0, quadratic, step, budgeted,
                                           rng_a, stats_a);
  EXPECT_EQ(stats_a.stop_reason, robust::StopReason::kNone);

  sa::AnnealOptions cancelled = budgeted;
  cancelled.max_evaluations = 1000000;  // cancel is the only stop
  const auto token = robust::CancelToken::create();
  cancelled.control.cancel = token;
  long evals = 0;
  const auto counting_cost = [&](const double& x) {
    if (++evals >= kBudget) token.cancel();
    return quadratic(x);
  };
  Rng rng_b(17);
  sa::AnnealStats stats_b;
  const double best_b = sa::anneal<double>(10.0, counting_cost, step,
                                           cancelled, rng_b, stats_b);

  EXPECT_EQ(stats_b.stop_reason, robust::StopReason::kCancelled);
  EXPECT_TRUE(stats_b.degraded());
  EXPECT_EQ(best_a, best_b);
  EXPECT_EQ(stats_a.evaluations, stats_b.evaluations);
  EXPECT_EQ(stats_a.proposals, stats_b.proposals);
  EXPECT_EQ(stats_a.accepted, stats_b.accepted);
  EXPECT_EQ(stats_a.best_cost_history, stats_b.best_cost_history);
}

TEST(AnnealControl, PreCancelledRunReturnsInitialState) {
  sa::AnnealOptions options;
  options.t_initial = 1.0;
  const auto token = robust::CancelToken::create();
  token.cancel();
  options.control.cancel = token;
  Rng rng(5);
  sa::AnnealStats stats;
  const double best = sa::anneal<double>(
      7.0, [](const double& x) { return x * x; },
      [](const double& x, Rng& r) -> std::optional<double> {
        return x + r.normal();
      },
      options, rng, stats);
  EXPECT_EQ(best, 7.0);
  EXPECT_EQ(stats.evaluations, 1);  // only the initial evaluation
  EXPECT_EQ(stats.stop_reason, robust::StopReason::kCancelled);
}

// ------------------------------------------- thread pool: dispatch degradation

TEST(ThreadPoolFaults, DispatchFaultDegradesToIdenticalInlineRun) {
  std::vector<int> expected(64, 0);
  {
    parallel::ThreadPool pool(3);
    pool.parallel_for(expected.size(),
                      [&](std::size_t i) { expected[i] = static_cast<int>(i) * 3; });
  }
  const FaultGuard guard("pool_dispatch:1.0", 4);
  std::vector<int> degraded(64, 0);
  parallel::ThreadPool pool(3);
  pool.parallel_for(degraded.size(),
                    [&](std::size_t i) { degraded[i] = static_cast<int>(i) * 3; });
  EXPECT_EQ(expected, degraded);
  EXPECT_GE(robust::FaultInjector::instance().injected_count("pool_dispatch"),
            1u);
}

// ------------------------------------------------ grid solver: CG degradation

TEST(GridSolverFaults, SolverDivergeTriggersConvergedFallback) {
  const auto stack = thermal::LayerStack::default_2p5d();
  const ChipletSystem sys("t", 40.0, 40.0, {{"die", 10.0, 10.0, 20.0}}, {});
  Floorplan fp(sys);
  fp.place(0, {15.0, 15.0});

  thermal::GridSolverConfig gc;
  gc.dims = {16, 16};
  thermal::GridThermalSolver clean_solver(stack, gc);
  const thermal::ThermalResult clean = clean_solver.solve(sys, fp);
  ASSERT_TRUE(clean.cg.converged);
  EXPECT_EQ(clean.fallback_resolves, 0u);
  EXPECT_FALSE(clean.degraded);

  const FaultGuard guard("solver_diverge:1.0", 3);
  thermal::GridThermalSolver faulty_solver(stack, gc);
  const thermal::ThermalResult faulty = faulty_solver.solve(sys, fp);
  // The injected "divergence" only flips the verdict; the cold 4x-budget
  // fallback must re-derive a genuinely converged solution.
  EXPECT_TRUE(faulty.cg.converged);
  EXPECT_EQ(faulty.fallback_resolves, 1u);
  EXPECT_FALSE(faulty.degraded);
  EXPECT_NEAR(faulty.max_temp_c, clean.max_temp_c,
              1e-6 * std::abs(clean.max_temp_c));
}

// --------------------------------------------------------- PPO: NaN rollback

class ProxyEvaluator final : public thermal::ThermalEvaluator {
 public:
  double max_temperature(const ChipletSystem& system,
                         const Floorplan& floorplan) override {
    double worst = 45.0;
    const auto rects = floorplan.placed_rects();
    for (std::size_t i = 0; i < rects.size(); ++i) {
      if (!rects[i]) continue;
      double t = 45.0 + 1.2 * system.chiplet(i).power;
      for (std::size_t j = 0; j < rects.size(); ++j) {
        if (j == i || !rects[j]) continue;
        t += system.chiplet(j).power /
             (1.0 + 0.3 * center_distance(*rects[i], *rects[j]));
      }
      worst = std::max(worst, t);
    }
    return worst;
  }
  long num_evaluations() const override { return 0; }
  std::string name() const override { return "proxy"; }
};

ChipletSystem tiny_system() {
  return ChipletSystem("robust", 24.0, 24.0,
                       {{"a", 8.0, 8.0, 25.0},
                        {"b", 6.0, 6.0, 12.0},
                        {"c", 5.0, 5.0, 8.0}},
                       {{0, 1, 64}, {1, 2, 32}, {0, 2, 16}});
}

rl::PolicyNetConfig tiny_net() {
  rl::PolicyNetConfig config;
  config.conv1 = 4;
  config.conv2 = 4;
  config.conv3 = 4;
  config.fc = 32;
  return config;
}

TEST(PpoFaults, NanGuardRollsBackBitExactly) {
  const auto sys = tiny_system();
  ProxyEvaluator eval;
  rl::FloorplanEnv env(sys, eval, RewardCalculator{}, bump::BumpAssigner{},
                       {.grid = 12});
  rl::PpoConfig pc;
  pc.episodes_per_update = 4;
  pc.minibatch = 16;
  pc.seed = 21;
  rl::PpoTrainer trainer(env, tiny_net(), pc);

  // Snapshot the weights the poisoned update starts from.
  std::vector<std::vector<float>> before;
  for (const nn::Parameter* p : trainer.net().parameters()) {
    before.emplace_back(p->value.data().begin(), p->value.data().end());
  }

  const FaultGuard guard("ppo_nan:1.0", 6);
  const rl::TrainStats stats = trainer.train_epoch();
  EXPECT_TRUE(stats.update_skipped);
  EXPECT_TRUE(stats.degraded());
  EXPECT_EQ(trainer.core().nan_skips(), 1);

  const auto params = trainer.net().parameters();
  ASSERT_EQ(params.size(), before.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    ASSERT_EQ(params[i]->value.numel(), before[i].size());
    for (std::size_t k = 0; k < before[i].size(); ++k) {
      ASSERT_EQ(params[i]->value[k], before[i][k])
          << "param " << params[i]->name << " not restored at element " << k;
    }
  }
}

TEST(PpoFaults, CleanEpochAfterRollbackStillTrains) {
  const auto sys = tiny_system();
  ProxyEvaluator eval;
  rl::FloorplanEnv env(sys, eval, RewardCalculator{}, bump::BumpAssigner{},
                       {.grid = 12});
  rl::PpoConfig pc;
  pc.episodes_per_update = 4;
  pc.minibatch = 16;
  pc.seed = 22;
  rl::PpoTrainer trainer(env, tiny_net(), pc);
  {
    const FaultGuard guard("ppo_nan:1.0", 6);
    EXPECT_TRUE(trainer.train_epoch().update_skipped);
  }
  const rl::TrainStats clean = trainer.train_epoch();
  EXPECT_FALSE(clean.update_skipped);
  EXPECT_EQ(trainer.core().nan_skips(), 1);
  EXPECT_NE(clean.grad_norm, 0.0);
}

// -------------------------------------------------- atomic artifact writes

TEST(AtomicWrite, WritesContentAndLeavesNoTempFile) {
  const std::string path = ::testing::TempDir() + "robust_atomic.json";
  util::atomic_write_file(path, "{\"ok\":true}\n");
  std::ifstream is(path);
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line, "{\"ok\":true}");
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  std::remove(path.c_str());
}

TEST(AtomicWrite, InjectedFaultExhaustsRetriesAsTransientIo) {
  const FaultGuard guard("artifact_write:1.0", 2);
  const std::string path = ::testing::TempDir() + "robust_atomic_fault.json";
  EXPECT_THROW(util::atomic_write_file(path, "x"), robust::TransientIoError);
  // The injection fires before any byte lands: no artifact, no temp file.
  EXPECT_FALSE(std::ifstream(path).good());
  // Three attempts (the default budget) were all consumed by the injector.
  EXPECT_EQ(robust::FaultInjector::instance().hit_count("artifact_write"),
            3u);
}

}  // namespace
}  // namespace rlplan
