#include "nn/tensor.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rlplan::nn {
namespace {

TEST(Tensor, DefaultIsEmpty) {
  const Tensor t;
  EXPECT_EQ(t.rank(), 0u);
  EXPECT_EQ(t.numel(), 0u);  // no storage until a shape is given
}

TEST(Tensor, ZerosConstruction) {
  const Tensor t({2, 3});
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.numel(), 6u);
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FullConstruction) {
  const Tensor t = Tensor::full({4}, 2.5f);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(t[i], 2.5f);
}

TEST(Tensor, DataShapeMismatchThrows) {
  EXPECT_THROW(Tensor({2, 2}, {1.0f, 2.0f}), std::invalid_argument);
}

TEST(Tensor, At2D) {
  Tensor t({2, 3});
  t.at(1, 2) = 7.0f;
  EXPECT_EQ(t[1 * 3 + 2], 7.0f);
  EXPECT_EQ(std::as_const(t).at(1, 2), 7.0f);
}

TEST(Tensor, At4DRowMajorLayout) {
  Tensor t({2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 9.0f;
  EXPECT_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 9.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3});
  for (std::size_t i = 0; i < 6; ++i) t[i] = static_cast<float>(i);
  t.reshape({3, 2});
  EXPECT_EQ(t.dim(0), 3u);
  EXPECT_EQ(t.at(2, 1), 5.0f);
}

TEST(Tensor, ReshapeBadCountThrows) {
  Tensor t({2, 3});
  EXPECT_THROW(t.reshape({4, 2}), std::invalid_argument);
}

TEST(Tensor, AddInPlace) {
  Tensor a = Tensor::full({3}, 1.0f);
  const Tensor b = Tensor::full({3}, 2.0f);
  a.add_(b);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(a[i], 3.0f);
}

TEST(Tensor, AddShapeMismatchThrows) {
  Tensor a({2});
  const Tensor b({3});
  EXPECT_THROW(a.add_(b), std::invalid_argument);
}

TEST(Tensor, ScaleSumNorm) {
  Tensor t({2, 2}, {1.0f, 2.0f, 3.0f, 4.0f});
  t.scale_(2.0f);
  EXPECT_DOUBLE_EQ(t.sum(), 20.0);
  EXPECT_DOUBLE_EQ(t.squared_norm(), 4.0 + 16.0 + 36.0 + 64.0);
}

TEST(Tensor, SameShape) {
  const Tensor a({2, 3});
  const Tensor b({2, 3});
  const Tensor c({3, 2});
  EXPECT_TRUE(a.same_shape(b));
  EXPECT_FALSE(a.same_shape(c));
}

TEST(ShapeNumel, EdgeCases) {
  EXPECT_EQ(shape_numel({}), 1u);
  EXPECT_EQ(shape_numel({0}), 0u);
  EXPECT_EQ(shape_numel({2, 3, 4}), 24u);
}

}  // namespace
}  // namespace rlplan::nn
