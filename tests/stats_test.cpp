// Unit coverage for the quantile/summary helpers in util/stats.h (the
// obs-layer snapshot math rides on these).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "util/stats.h"

namespace rlplan {
namespace {

TEST(Quantile, ExactSmallN) {
  // R-7 (numpy default): h = q * (n - 1), linear interpolation.
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 1.75);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 0.9), 3.7);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 4.0);
}

TEST(Quantile, InputOrderIrrelevant) {
  const std::vector<double> shuffled = {3.0, 1.0, 4.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(shuffled, 0.5), 2.5);
}

TEST(Quantile, SingleElement) {
  const std::vector<double> v = {42.0};
  for (const double q : {0.0, 0.1, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(quantile(v, q), 42.0);
  }
}

TEST(Quantile, RejectsBadInput) {
  const std::vector<double> empty;
  EXPECT_THROW(quantile(empty, 0.5), std::invalid_argument);

  const std::vector<double> with_nan = {
      1.0, std::numeric_limits<double>::quiet_NaN()};
  EXPECT_THROW(quantile(with_nan, 0.5), std::invalid_argument);

  const std::vector<double> v = {1.0, 2.0};
  EXPECT_THROW(quantile(v, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile(v, 1.1), std::invalid_argument);
  EXPECT_THROW(quantile(v, std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
}

TEST(Summarize, Fields) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0, 5.0};
  const Summary s = summarize(v);
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
  EXPECT_DOUBLE_EQ(s.p90, 4.6);
}

TEST(Summarize, ValidatesLikeQuantile) {
  const std::vector<double> empty;
  EXPECT_THROW(summarize(empty), std::invalid_argument);
}

TEST(HistogramQuantile, InterpolatesWithinBucket) {
  // Buckets: (0,1], (1,2], (2,4], (4,inf) with one sample each (no overflow).
  const std::vector<double> bounds = {1.0, 2.0, 4.0};
  const std::vector<std::uint64_t> counts = {1, 1, 1, 0};
  // rank = 1.5 of 3 lands mid-way through the (1,2] bucket.
  EXPECT_DOUBLE_EQ(histogram_quantile(bounds, counts, 0.5), 1.5);
  // q=1 is the very end of the last occupied bucket.
  EXPECT_DOUBLE_EQ(histogram_quantile(bounds, counts, 1.0), 4.0);
}

TEST(HistogramQuantile, FirstBucketStartsAtZero) {
  const std::vector<double> bounds = {1.0, 2.0, 4.0};
  const std::vector<std::uint64_t> counts = {2, 0, 0, 0};
  // rank = 1 of 2: half-way through (0,1].
  EXPECT_DOUBLE_EQ(histogram_quantile(bounds, counts, 0.5), 0.5);
}

TEST(HistogramQuantile, OverflowClampsToLastBound) {
  const std::vector<double> bounds = {1.0, 2.0, 4.0};
  const std::vector<std::uint64_t> counts = {0, 0, 0, 5};
  // All mass beyond the last bound: the estimate saturates at that bound.
  EXPECT_DOUBLE_EQ(histogram_quantile(bounds, counts, 0.5), 4.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(bounds, counts, 0.99), 4.0);
}

TEST(HistogramQuantile, EmptyHistogramIsZero) {
  const std::vector<double> bounds = {1.0, 2.0};
  const std::vector<std::uint64_t> counts = {0, 0, 0};
  EXPECT_DOUBLE_EQ(histogram_quantile(bounds, counts, 0.5), 0.0);
}

TEST(HistogramQuantile, RejectsBadShapes) {
  const std::vector<double> bounds = {1.0, 2.0};
  const std::vector<std::uint64_t> ok = {1, 1, 1};
  EXPECT_THROW(histogram_quantile(bounds, ok, -0.5), std::invalid_argument);
  const std::vector<std::uint64_t> short_counts = {1, 1};
  EXPECT_THROW(histogram_quantile(bounds, short_counts, 0.5),
               std::invalid_argument);
  const std::vector<double> no_bounds;
  const std::vector<std::uint64_t> one = {1};
  EXPECT_THROW(histogram_quantile(no_bounds, one, 0.5), std::invalid_argument);
}

}  // namespace
}  // namespace rlplan
