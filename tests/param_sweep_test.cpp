// Parameterized property sweeps (TEST_P) across the substrate's key
// configuration axes: thermal grid resolution, environment grid size,
// reward hyper-parameters, and policy-net topology.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/reward.h"
#include "rl/env.h"
#include "rl/policy_net.h"
#include "systems/synthetic.h"
#include "thermal/evaluator.h"
#include "thermal/grid_solver.h"

namespace rlplan {
namespace {

// ---------------------------------------------------------------------
// Thermal solver invariants across grid resolutions.
class SolverGridSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SolverGridSweep, PhysicalInvariantsHold) {
  const std::size_t g = GetParam();
  const auto stack = thermal::LayerStack::default_2p5d();
  const ChipletSystem sys("sweep", 40.0, 40.0,
                          {{"a", 10.0, 8.0, 25.0}, {"b", 6.0, 6.0, 12.0}},
                          {});
  Floorplan fp(sys);
  fp.place(0, {6.0, 16.0});
  fp.place(1, {26.0, 16.0});

  thermal::GridSolverConfig config{.dims = {g, g}};
  config.warm_start = false;
  thermal::GridThermalSolver solver(stack, config);
  const auto result = solver.solve(sys, fp);

  EXPECT_TRUE(result.cg.converged) << "grid " << g;
  // Everything is warmer than ambient and below a sane ceiling.
  EXPECT_GT(result.chiplet_temp_c[0], stack.ambient_c());
  EXPECT_GT(result.chiplet_temp_c[1], stack.ambient_c());
  EXPECT_LT(result.max_temp_c, 150.0);
  // The 25 W die runs hotter than the 12 W die (similar sizes).
  EXPECT_GT(result.chiplet_temp_c[0], result.chiplet_temp_c[1]);
  // Peak equals the max per-chiplet temperature.
  EXPECT_DOUBLE_EQ(
      result.max_temp_c,
      std::max(result.chiplet_temp_c[0], result.chiplet_temp_c[1]));
}

INSTANTIATE_TEST_SUITE_P(Resolutions, SolverGridSweep,
                         ::testing::Values(16, 24, 32, 48, 60));

// ---------------------------------------------------------------------
// Environment invariants across action-grid sizes and spacing rules.
class NullEvaluator final : public thermal::ThermalEvaluator {
 public:
  double max_temperature(const ChipletSystem&, const Floorplan&) override {
    return 50.0;
  }
  long num_evaluations() const override { return 0; }
  std::string name() const override { return "null"; }
};

class EnvGridSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(EnvGridSweep, RandomEpisodesStayLegal) {
  const auto [grid, spacing] = GetParam();
  systems::SyntheticConfig sc;
  sc.interposer_w_mm = 36.0;
  sc.interposer_h_mm = 36.0;
  const auto sys = systems::SyntheticSystemGenerator(sc).generate(11);
  NullEvaluator eval;
  rl::FloorplanEnv env(sys, eval, RewardCalculator{}, bump::BumpAssigner{},
                       {.grid = grid, .spacing_mm = spacing});
  Rng rng(grid * 1000 + static_cast<std::uint64_t>(spacing * 10));
  for (int ep = 0; ep < 20; ++ep) {
    env.reset();
    while (!env.done()) {
      const auto& mask = env.action_mask();
      std::size_t pick = mask.size();
      // Random feasible action.
      for (int tries = 0; tries < 2000; ++tries) {
        const auto a = rng.uniform_int(std::uint64_t{mask.size()});
        if (mask[a] != 0) {
          pick = a;
          break;
        }
      }
      ASSERT_LT(pick, mask.size());
      const auto out = env.step(pick);
      if (out.dead_end) break;
      // Invariant: every placed prefix is legal under the spacing rule.
      for (std::size_t i = 0; i < sys.num_chiplets(); ++i) {
        if (!env.floorplan().is_placed(i)) continue;
        const auto& p = *env.floorplan().placement(i);
        EXPECT_TRUE(
            env.floorplan().can_place(i, p.position, p.rotated, spacing))
            << "grid " << grid << " spacing " << spacing;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    GridsAndSpacing, EnvGridSweep,
    ::testing::Combine(::testing::Values<std::size_t>(8, 12, 16, 24),
                       ::testing::Values(0.0, 0.5, 1.0)));

// ---------------------------------------------------------------------
// Reward function properties across hyper-parameters.
class RewardSweep
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(RewardSweep, MonotoneAndContinuous) {
  const auto [lambda, mu, alpha] = GetParam();
  RewardParams params;
  params.lambda = lambda;
  params.mu = mu;
  params.alpha = alpha;
  params.t0_celsius = 85.0;
  const RewardCalculator rc(params);

  // Monotone decreasing in wirelength.
  double prev = rc.reward(0.0, 70.0);
  for (double wl = 1000.0; wl <= 5000.0; wl += 1000.0) {
    const double r = rc.reward(wl, 70.0);
    if (lambda > 0.0) {
      EXPECT_LT(r, prev);
    } else {
      EXPECT_DOUBLE_EQ(r, prev);
    }
    prev = r;
  }
  // Monotone non-increasing in temperature.
  prev = rc.reward(1000.0, 60.0);
  for (double t = 70.0; t <= 110.0; t += 5.0) {
    const double r = rc.reward(1000.0, t);
    EXPECT_LE(r, prev + 1e-12);
    prev = r;
  }
  // Continuity at the threshold.
  EXPECT_NEAR(rc.reward(1000.0, 85.0 - 1e-7), rc.reward(1000.0, 85.0 + 1e-7),
              1e-4);
  // Always non-positive.
  EXPECT_LE(rc.reward(123.0, 95.0), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Hyperparams, RewardSweep,
    ::testing::Combine(::testing::Values(0.0, 1e-4, 1e-3),
                       ::testing::Values(0.5, 1.0, 2.0),
                       ::testing::Values(1.0, 1.5, 2.0)));

// ---------------------------------------------------------------------
// Policy net shape correctness across grid/channel configurations.
class PolicyNetSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(PolicyNetSweep, ShapesAndFiniteOutputs) {
  const auto [grid, fc] = GetParam();
  Rng rng(99);
  rl::PolicyNetConfig config;
  config.grid = grid;
  config.fc = fc;
  config.conv1 = 4;
  config.conv2 = 4;
  config.conv3 = 4;
  rl::PolicyValueNet net(config, rng);
  nn::Tensor x({2, config.channels_in, grid, grid});
  Rng xr(7);
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(xr.uniform(-1.0, 1.0));
  }
  const auto out = net.forward(x);
  ASSERT_EQ(out.logits.shape(), (std::vector<std::size_t>{2, grid * grid}));
  ASSERT_EQ(out.value.shape(), (std::vector<std::size_t>{2, 1}));
  for (std::size_t i = 0; i < out.logits.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(out.logits[i]));
  }
  EXPECT_TRUE(std::isfinite(out.value[0]));
  // Parameter count grows with fc width.
  EXPECT_GE(net.parameters().size(), 10u);
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, PolicyNetSweep,
    ::testing::Combine(::testing::Values<std::size_t>(8, 16, 24),
                       ::testing::Values<std::size_t>(16, 64)));

// ---------------------------------------------------------------------
// Synthetic generator sanity across seed ranges (batch property test).
class SyntheticSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SyntheticSeedSweep, ValidConnectedPlaceable) {
  const std::uint64_t base = GetParam();
  const systems::SyntheticSystemGenerator gen;
  for (std::uint64_t s = base; s < base + 10; ++s) {
    const auto sys = gen.generate(s);
    EXPECT_NO_THROW(sys.validate());
    EXPECT_TRUE(is_connected(sys.num_chiplets(), sys.nets()));
    Rng rng(s + 1);
    const auto fp = systems::random_legal_floorplan(sys, rng);
    EXPECT_TRUE(fp.is_legal());
  }
}

INSTANTIATE_TEST_SUITE_P(SeedBlocks, SyntheticSeedSweep,
                         ::testing::Values(0, 100, 10000, 123456789));

}  // namespace
}  // namespace rlplan
