#include "core/floorplan.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/rng.h"

namespace rlplan {
namespace {

ChipletSystem make_system() {
  return ChipletSystem("fp", 30.0, 20.0,
                       {{"a", 6.0, 4.0, 10.0},
                        {"b", 5.0, 5.0, 8.0},
                        {"c", 3.0, 8.0, 4.0}},
                       {{0, 1, 32}, {1, 2, 16}});
}

TEST(Floorplan, StartsEmpty) {
  const auto sys = make_system();
  const Floorplan fp(sys);
  EXPECT_EQ(fp.num_chiplets(), 3u);
  EXPECT_EQ(fp.num_placed(), 0u);
  EXPECT_FALSE(fp.is_complete());
  EXPECT_FALSE(fp.is_placed(0));
}

TEST(Floorplan, PlaceUnplaceRoundtrip) {
  const auto sys = make_system();
  Floorplan fp(sys);
  fp.place(0, {1.0, 2.0});
  EXPECT_TRUE(fp.is_placed(0));
  EXPECT_EQ(fp.num_placed(), 1u);
  EXPECT_EQ(fp.rect_of(0), (Rect{1.0, 2.0, 6.0, 4.0}));
  fp.unplace(0);
  EXPECT_FALSE(fp.is_placed(0));
  EXPECT_EQ(fp.num_placed(), 0u);
}

TEST(Floorplan, RotationSwapsDimensions) {
  const auto sys = make_system();
  Floorplan fp(sys);
  fp.place(0, {0.0, 0.0}, /*rotated=*/true);
  EXPECT_EQ(fp.rect_of(0), (Rect{0.0, 0.0, 4.0, 6.0}));
}

TEST(Floorplan, RectOfUnplacedThrows) {
  const auto sys = make_system();
  const Floorplan fp(sys);
  EXPECT_THROW(fp.rect_of(0), std::logic_error);
}

TEST(Floorplan, CanPlaceRespectsBounds) {
  const auto sys = make_system();
  const Floorplan fp(sys);
  EXPECT_TRUE(fp.can_place(0, {0.0, 0.0}, false));
  EXPECT_TRUE(fp.can_place(0, {24.0, 16.0}, false));  // exactly in the corner
  EXPECT_FALSE(fp.can_place(0, {24.1, 16.0}, false));
  EXPECT_FALSE(fp.can_place(0, {-0.1, 0.0}, false));
}

TEST(Floorplan, CanPlaceRespectsOverlap) {
  const auto sys = make_system();
  Floorplan fp(sys);
  fp.place(0, {0.0, 0.0});  // occupies [0,6]x[0,4]
  EXPECT_FALSE(fp.can_place(1, {5.0, 3.0}, false));
  EXPECT_TRUE(fp.can_place(1, {6.0, 0.0}, false));  // abutting is legal
  EXPECT_TRUE(fp.can_place(1, {0.0, 4.0}, false));
}

TEST(Floorplan, CanPlaceRespectsSpacing) {
  const auto sys = make_system();
  Floorplan fp(sys);
  fp.place(0, {0.0, 0.0});
  EXPECT_FALSE(fp.can_place(1, {6.0, 0.0}, false, 0.5));
  EXPECT_FALSE(fp.can_place(1, {6.4, 0.0}, false, 0.5));
  EXPECT_TRUE(fp.can_place(1, {6.5, 0.0}, false, 0.5));
}

TEST(Floorplan, ReplacingSelfIgnoresOwnFootprint) {
  const auto sys = make_system();
  Floorplan fp(sys);
  fp.place(0, {0.0, 0.0});
  // Moving chiplet 0 onto its own current location must be legal.
  EXPECT_TRUE(fp.can_place(0, {0.0, 0.0}, false));
  EXPECT_TRUE(fp.can_place(0, {1.0, 1.0}, false));
}

TEST(Floorplan, IsLegalRequiresCompleteness) {
  const auto sys = make_system();
  Floorplan fp(sys);
  fp.place(0, {0.0, 0.0});
  EXPECT_FALSE(fp.is_legal());
  fp.place(1, {10.0, 0.0});
  fp.place(2, {20.0, 0.0});
  EXPECT_TRUE(fp.is_legal());
}

TEST(Floorplan, IsLegalDetectsOverlap) {
  const auto sys = make_system();
  Floorplan fp(sys);
  fp.place(0, {0.0, 0.0});
  fp.place(1, {3.0, 2.0});  // overlaps chiplet 0
  fp.place(2, {20.0, 0.0});
  EXPECT_FALSE(fp.is_legal());
  EXPECT_GT(fp.total_overlap_area(), 0.0);
}

TEST(Floorplan, TotalOverlapAreaExact) {
  const auto sys = make_system();
  Floorplan fp(sys);
  fp.place(0, {0.0, 0.0});   // [0,6]x[0,4]
  fp.place(1, {4.0, 2.0});   // [4,9]x[2,7]: overlap 2x2 = 4
  EXPECT_DOUBLE_EQ(fp.total_overlap_area(), 4.0);
}

TEST(Floorplan, CenterWirelengthMatchesManualComputation) {
  const auto sys = make_system();
  Floorplan fp(sys);
  fp.place(0, {0.0, 0.0});    // center (3, 2)
  fp.place(1, {10.0, 0.0});   // center (12.5, 2.5)
  // net 0-1: 32 wires * (|12.5-3| + |2.5-2|) = 32 * 10 = 320
  EXPECT_DOUBLE_EQ(fp.center_wirelength(), 320.0);
  fp.place(2, {20.0, 10.0});  // center (21.5, 14)
  // net 1-2: 16 * (9 + 11.5) = 328 -> total 648
  EXPECT_DOUBLE_EQ(fp.center_wirelength(), 648.0);
}

TEST(Floorplan, CenterWirelengthIgnoresUnplacedEndpoints) {
  const auto sys = make_system();
  Floorplan fp(sys);
  fp.place(0, {0.0, 0.0});
  EXPECT_DOUBLE_EQ(fp.center_wirelength(), 0.0);
}

TEST(Floorplan, BoundingBox) {
  const auto sys = make_system();
  Floorplan fp(sys);
  EXPECT_EQ(fp.bounding_box(), (Rect{}));
  fp.place(0, {1.0, 1.0});
  fp.place(2, {20.0, 10.0});
  const Rect bb = fp.bounding_box();
  EXPECT_DOUBLE_EQ(bb.x, 1.0);
  EXPECT_DOUBLE_EQ(bb.y, 1.0);
  EXPECT_DOUBLE_EQ(bb.right(), 23.0);
  EXPECT_DOUBLE_EQ(bb.top(), 18.0);
}

TEST(Floorplan, PlacedRects) {
  const auto sys = make_system();
  Floorplan fp(sys);
  fp.place(1, {2.0, 3.0});
  const auto rects = fp.placed_rects();
  ASSERT_EQ(rects.size(), 3u);
  EXPECT_FALSE(rects[0].has_value());
  ASSERT_TRUE(rects[1].has_value());
  EXPECT_EQ(*rects[1], (Rect{2.0, 3.0, 5.0, 5.0}));
}

TEST(Floorplan, ClearResetsEverything) {
  const auto sys = make_system();
  Floorplan fp(sys);
  fp.place(0, {0.0, 0.0});
  fp.place(1, {10.0, 0.0});
  fp.clear();
  EXPECT_EQ(fp.num_placed(), 0u);
}

// Property: can_place is consistent with is_legal after placement.
TEST(FloorplanProperty, CanPlaceImpliesLegalPairwise) {
  const auto sys = make_system();
  Rng rng(99);
  for (int trial = 0; trial < 300; ++trial) {
    Floorplan fp(sys);
    bool all_ok = true;
    for (std::size_t i = 0; i < sys.num_chiplets(); ++i) {
      const Point p{rng.uniform(0.0, 25.0), rng.uniform(0.0, 16.0)};
      const bool rot = rng.bernoulli(0.5);
      if (fp.can_place(i, p, rot)) {
        fp.place(i, p, rot);
      } else {
        all_ok = false;
      }
    }
    if (all_ok) {
      EXPECT_TRUE(fp.is_legal()) << "trial " << trial;
      EXPECT_DOUBLE_EQ(fp.total_overlap_area(), 0.0);
    }
  }
}

}  // namespace
}  // namespace rlplan
