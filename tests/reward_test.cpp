#include "core/reward.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace rlplan {
namespace {

TEST(Reward, PureWirelengthBelowThermalLimit) {
  RewardParams p;
  p.lambda = 1e-3;
  p.mu = 1.0;
  p.t0_celsius = 85.0;
  const RewardCalculator calc(p);
  // Far below T0 the thermal term vanishes.
  EXPECT_NEAR(calc.reward(1000.0, 40.0), -1.0, 1e-9);
  EXPECT_NEAR(calc.reward(0.0, 40.0), 0.0, 1e-9);
}

TEST(Reward, ThermalPenaltyZeroAtAndBelowLimit) {
  const RewardCalculator calc;
  EXPECT_DOUBLE_EQ(calc.thermal_penalty(85.0), 0.0);
  EXPECT_DOUBLE_EQ(calc.thermal_penalty(60.0), 0.0);
}

TEST(Reward, ThermalPenaltyMatchesFormula) {
  RewardParams p;
  p.mu = 2.0;
  p.t0_celsius = 85.0;
  p.alpha = 1.0;
  const RewardCalculator calc(p);
  const double t = 90.0;
  const double dt = t - 85.0;
  const double expected = 2.0 * dt / (1.0 + std::exp(-dt));
  EXPECT_NEAR(calc.thermal_penalty(t), expected, 1e-12);
}

TEST(Reward, AlphaExponentApplied) {
  RewardParams p;
  p.mu = 1.0;
  p.alpha = 2.0;
  p.t0_celsius = 80.0;
  const RewardCalculator calc(p);
  const double dt = 4.0;
  const double expected = dt * dt / (1.0 + std::exp(-dt));
  EXPECT_NEAR(calc.thermal_penalty(84.0), expected, 1e-12);
}

TEST(Reward, MonotoneDecreasingInWirelength) {
  const RewardCalculator calc;
  EXPECT_GT(calc.reward(1000.0, 70.0), calc.reward(2000.0, 70.0));
}

TEST(Reward, MonotoneDecreasingInTemperatureAboveLimit) {
  const RewardCalculator calc;
  double prev = calc.reward(1000.0, 85.0);
  for (double t = 86.0; t < 110.0; t += 1.0) {
    const double r = calc.reward(1000.0, t);
    EXPECT_LT(r, prev) << "at T=" << t;
    prev = r;
  }
}

TEST(Reward, ContinuousAcrossLimit) {
  // The smoothed overshoot must not jump at T = T0.
  const RewardCalculator calc;
  const double below = calc.reward(1000.0, 84.9999);
  const double at = calc.reward(1000.0, 85.0);
  const double above = calc.reward(1000.0, 85.0001);
  EXPECT_NEAR(below, at, 1e-3);
  EXPECT_NEAR(above, at, 1e-3);
}

TEST(Reward, CostIsNegatedReward) {
  const RewardCalculator calc;
  EXPECT_DOUBLE_EQ(calc.cost(1234.0, 92.0), -calc.reward(1234.0, 92.0));
}

TEST(Reward, RejectsNegativeWeights) {
  RewardParams p;
  p.lambda = -1.0;
  EXPECT_THROW(RewardCalculator{p}, std::invalid_argument);
  p.lambda = 1.0;
  p.mu = -0.5;
  EXPECT_THROW(RewardCalculator{p}, std::invalid_argument);
}

TEST(Reward, RejectsAlphaBelowOne) {
  RewardParams p;
  p.alpha = 0.5;
  EXPECT_THROW(RewardCalculator{p}, std::invalid_argument);
}

TEST(Reward, AlwaysNonPositive) {
  const RewardCalculator calc;
  for (double wl : {0.0, 10.0, 1e5}) {
    for (double t : {20.0, 85.0, 120.0}) {
      EXPECT_LE(calc.reward(wl, t), 0.0);
    }
  }
}

TEST(Reward, DeepUnderflowGuard) {
  const RewardCalculator calc;
  // Very cold temperatures must not produce NaN from sigmoid underflow.
  const double r = calc.reward(100.0, -200.0);
  EXPECT_TRUE(std::isfinite(r));
}

}  // namespace
}  // namespace rlplan
