// Shared plumbing for the differential fuzz suites (soa_kernel_test,
// incremental_thermal_test) and CI's nightly long-fuzz job:
//
//  * RLPLANNER_FUZZ_SCALE multiplies iteration counts (the schedule job runs
//    20x under ASan/UBSan);
//  * RLPLANNER_FUZZ_FAILURE_FILE collects one reproduction-seed line per
//    failing case, uploaded as a CI artifact so a red night replays locally
//    at any scale from just that line.
//
// Keep the env-var names and the one-line seed format in sync with
// .github/workflows/ci.yml's nightly-long-fuzz job.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

namespace rlplan::testing {

/// Iteration multiplier from RLPLANNER_FUZZ_SCALE (default 1 — the regular
/// suites already clear their case-count bars at scale 1).
inline int fuzz_scale() {
  const char* s = std::getenv("RLPLANNER_FUZZ_SCALE");
  if (s == nullptr) return 1;
  const int v = std::atoi(s);
  return v > 0 ? v : 1;
}

/// Appends a one-line reproduction seed to the nightly failure artifact (and
/// stderr, tagged with the suite name).
inline void report_failure_seed(const char* suite,
                                const std::string& context) {
  std::fprintf(stderr, "[%s] FAILING CASE: %s\n", suite, context.c_str());
  if (const char* path = std::getenv("RLPLANNER_FUZZ_FAILURE_FILE")) {
    std::ofstream os(path, std::ios::app);
    os << context << '\n';
  }
}

}  // namespace rlplan::testing
