#include "bump/assigner.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "bump/bump_grid.h"

namespace rlplan::bump {
namespace {

TEST(BumpGrid, GeneratesPeripheralSites) {
  const Rect die{10.0, 10.0, 8.0, 6.0};
  BumpGridConfig config;
  config.pitch_mm = 1.0;
  config.rings = 1;
  config.edge_margin_mm = 0.5;
  const auto sites = make_peripheral_sites(die, config);
  EXPECT_GT(sites.size(), 10u);
  // All sites inside the die, within the margin band.
  for (const auto& s : sites) {
    EXPECT_TRUE(die.contains(s.position));
    EXPECT_FALSE(die.inflated(-1.6).contains(s.position))
        << "site deep inside the die core";
    EXPECT_EQ(s.capacity, config.wires_per_site);
  }
}

TEST(BumpGrid, MoreRingsMoreSites) {
  const Rect die{0.0, 0.0, 10.0, 10.0};
  BumpGridConfig one;
  one.rings = 1;
  BumpGridConfig three;
  three.rings = 3;
  EXPECT_GT(make_peripheral_sites(die, three).size(),
            make_peripheral_sites(die, one).size());
}

TEST(BumpGrid, TinyDieFallsBackToCenterSite) {
  const Rect die{0.0, 0.0, 0.3, 0.3};
  BumpGridConfig config;
  config.edge_margin_mm = 0.25;
  const auto sites = make_peripheral_sites(die, config);
  ASSERT_EQ(sites.size(), 1u);
  EXPECT_EQ(sites[0].position, die.center());
}

TEST(BumpGrid, DeterministicOrder) {
  const Rect die{2.0, 3.0, 9.0, 7.0};
  const auto a = make_peripheral_sites(die, {});
  const auto b = make_peripheral_sites(die, {});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].position, b[i].position);
  }
}

TEST(BumpGrid, RejectsBadConfig) {
  const Rect die{0.0, 0.0, 5.0, 5.0};
  BumpGridConfig bad;
  bad.pitch_mm = 0.0;
  EXPECT_THROW(make_peripheral_sites(die, bad), std::invalid_argument);
  bad = {};
  bad.rings = 0;
  EXPECT_THROW(make_peripheral_sites(die, bad), std::invalid_argument);
  bad = {};
  bad.wires_per_site = 0;
  EXPECT_THROW(make_peripheral_sites(die, bad), std::invalid_argument);
}

ChipletSystem simple_pair(int wires) {
  return ChipletSystem("p", 40.0, 20.0,
                       {{"a", 8.0, 8.0, 10.0}, {"b", 8.0, 8.0, 10.0}},
                       {{0, 1, wires}});
}

TEST(BumpAssigner, AssignsAllWires) {
  const auto sys = simple_pair(100);
  Floorplan fp(sys);
  fp.place(0, {2.0, 6.0});
  fp.place(1, {30.0, 6.0});
  const BumpAssigner assigner;
  const auto report = assigner.assign(sys, fp);
  EXPECT_EQ(report.wires_assigned, 100);
  EXPECT_GT(report.total_mm, 0.0);
  EXPECT_EQ(report.per_net_mm.size(), 1u);
  EXPECT_DOUBLE_EQ(report.per_net_mm[0], report.total_mm);
}

TEST(BumpAssigner, WirelengthScalesWithDistance) {
  const auto sys = simple_pair(64);
  Floorplan near_fp(sys);
  near_fp.place(0, {2.0, 6.0});
  near_fp.place(1, {12.0, 6.0});
  Floorplan far_fp(sys);
  far_fp.place(0, {2.0, 6.0});
  far_fp.place(1, {30.0, 6.0});
  const BumpAssigner assigner;
  EXPECT_LT(assigner.assign(sys, near_fp).total_mm,
            assigner.assign(sys, far_fp).total_mm);
}

TEST(BumpAssigner, WirelengthLowerBoundedByGapTimesWires) {
  // Each wire spans at least the inter-die gap along x.
  const auto sys = simple_pair(32);
  Floorplan fp(sys);
  fp.place(0, {0.0, 6.0});   // right edge at 8
  fp.place(1, {30.0, 6.0});  // left edge at 30 -> gap 22
  const BumpAssigner assigner;
  const auto report = assigner.assign(sys, fp);
  EXPECT_GE(report.total_mm, 32 * (30.0 - 8.0) * 0.9);
}

TEST(BumpAssigner, BetterThanWorstCaseCenterEstimate) {
  // Facing-edge bumps beat center-to-center distance for adjacent dies.
  const auto sys = simple_pair(16);
  Floorplan fp(sys);
  fp.place(0, {2.0, 6.0});
  fp.place(1, {20.0, 6.0});
  const BumpAssigner assigner;
  const auto report = assigner.assign(sys, fp);
  const double center_wl = fp.center_wirelength();
  EXPECT_LT(report.total_mm, center_wl);
}

TEST(BumpAssigner, CapacityOverflowsReported) {
  // A die with tiny perimeter capacity but a huge bus must overflow.
  BumpGridConfig config;
  config.pitch_mm = 4.0;
  config.rings = 1;
  config.wires_per_site = 1;
  const auto sys = simple_pair(500);
  Floorplan fp(sys);
  fp.place(0, {2.0, 6.0});
  fp.place(1, {30.0, 6.0});
  const BumpAssigner assigner(config);
  const auto report = assigner.assign(sys, fp);
  EXPECT_EQ(report.wires_assigned, 500);
  EXPECT_GT(report.capacity_overflows, 0);
}

TEST(BumpAssigner, NoOverflowWithAmpleCapacity) {
  const auto sys = simple_pair(32);
  Floorplan fp(sys);
  fp.place(0, {2.0, 6.0});
  fp.place(1, {30.0, 6.0});
  const BumpAssigner assigner;  // default: 16 wires x many sites
  EXPECT_EQ(assigner.assign(sys, fp).capacity_overflows, 0);
}

TEST(BumpAssigner, ThrowsOnUnplacedEndpoint) {
  const auto sys = simple_pair(8);
  Floorplan fp(sys);
  fp.place(0, {2.0, 6.0});
  const BumpAssigner assigner;
  EXPECT_THROW(assigner.assign(sys, fp), std::logic_error);
}

TEST(BumpAssigner, RoutesMatchReport) {
  const auto sys = simple_pair(24);
  Floorplan fp(sys);
  fp.place(0, {2.0, 6.0});
  fp.place(1, {28.0, 6.0});
  const BumpAssigner assigner;
  std::vector<WireRoute> routes;
  const auto report = assigner.assign_with_routes(sys, fp, routes);
  ASSERT_EQ(routes.size(), 24u);
  double total = 0.0;
  const Rect ra = fp.rect_of(0);
  const Rect rb = fp.rect_of(1);
  for (const auto& r : routes) {
    EXPECT_EQ(r.net_index, 0u);
    EXPECT_TRUE(ra.contains(r.from));
    EXPECT_TRUE(rb.contains(r.to));
    EXPECT_DOUBLE_EQ(r.length_mm, manhattan(r.from, r.to));
    total += r.length_mm;
  }
  EXPECT_NEAR(total, report.total_mm, 1e-9);
}

TEST(BumpAssigner, MultiNetCompetitionConsumesCapacity) {
  // A hub die connected to two partners: the second net must use sites
  // farther from its partner because the first consumed the best ones.
  const ChipletSystem sys("hub", 60.0, 20.0,
                          {{"hub", 8.0, 8.0, 10.0},
                           {"l", 8.0, 8.0, 10.0},
                           {"r", 8.0, 8.0, 10.0}},
                          {{0, 1, 200}, {0, 2, 200}});
  Floorplan fp(sys);
  fp.place(0, {26.0, 6.0});
  fp.place(1, {2.0, 6.0});
  fp.place(2, {50.0, 6.0});
  const BumpAssigner assigner;
  const auto report = assigner.assign(sys, fp);
  EXPECT_EQ(report.wires_assigned, 400);
  // Both nets should have similar lengths by symmetry.
  EXPECT_NEAR(report.per_net_mm[0], report.per_net_mm[1],
              report.per_net_mm[0] * 0.2);
}

TEST(BumpGrid, TotalCapacity) {
  std::vector<BumpSite> sites{{{0, 0}, 4}, {{1, 0}, 4}, {{2, 0}, 8}};
  EXPECT_EQ(total_capacity(sites), 16);
}

}  // namespace
}  // namespace rlplan::bump
