#include "sa/tap25d.h"

#include <gtest/gtest.h>

#include <cmath>

#include "rl/planner.h"
#include "thermal/evaluator.h"
#include "thermal/incremental.h"

namespace rlplan::sa {
namespace {

// Geometric proxy evaluator: compact packings run hotter.
class ProxyEvaluator final : public thermal::ThermalEvaluator {
 public:
  double max_temperature(const ChipletSystem& system,
                         const Floorplan& floorplan) override {
    ++count_;
    double worst = 45.0;
    const auto rects = floorplan.placed_rects();
    for (std::size_t i = 0; i < rects.size(); ++i) {
      if (!rects[i]) continue;
      double t = 45.0 + system.chiplet(i).power;
      for (std::size_t j = 0; j < rects.size(); ++j) {
        if (j == i || !rects[j]) continue;
        t += system.chiplet(j).power /
             (1.0 + 0.5 * center_distance(*rects[i], *rects[j]));
      }
      worst = std::max(worst, t);
    }
    return worst;
  }
  long num_evaluations() const override { return count_; }
  std::string name() const override { return "proxy"; }

 private:
  long count_ = 0;
};

ChipletSystem sa_system() {
  return ChipletSystem("sa", 30.0, 30.0,
                       {{"a", 9.0, 7.0, 30.0},
                        {"b", 7.0, 7.0, 15.0},
                        {"c", 5.0, 9.0, 10.0},
                        {"d", 4.0, 4.0, 5.0}},
                       {{0, 1, 128}, {1, 2, 64}, {2, 3, 32}, {0, 3, 16}});
}

Tap25dConfig quick_config(std::uint64_t seed) {
  Tap25dConfig config;
  config.anneal.max_evaluations = 600;
  config.anneal.t_final = 1e-3;
  config.anneal.cooling = 0.9;
  config.seed = seed;
  return config;
}

TEST(Tap25d, ProducesLegalFloorplan) {
  const auto sys = sa_system();
  ProxyEvaluator eval;
  Tap25dPlanner planner(quick_config(1));
  const auto result = planner.plan(sys, eval);
  EXPECT_TRUE(result.best.is_complete());
  EXPECT_TRUE(result.best.is_legal());
  EXPECT_GT(result.wirelength_mm, 0.0);
  EXPECT_LT(result.reward, 0.0);
}

TEST(Tap25d, ImprovesOverInitialPlacement) {
  const auto sys = sa_system();
  ProxyEvaluator eval;
  const RewardCalculator rc;
  const bump::BumpAssigner ba;

  // Reconstruct the planner's initial state (first-fit, grid 64).
  rl::EnvConfig ff;
  ff.grid = 64;
  const Floorplan initial = rl::first_fit_floorplan(sys, ff);
  ProxyEvaluator eval_init;
  const double initial_reward =
      rc.reward(ba.assign(sys, initial).total_mm,
                eval_init.max_temperature(sys, initial));

  Tap25dPlanner planner(quick_config(2));
  const auto result = planner.plan(sys, eval);
  EXPECT_GE(result.reward, initial_reward)
      << "SA must not end worse than its starting point";
}

TEST(Tap25d, DeterministicGivenSeed) {
  const auto sys = sa_system();
  auto run = [&](std::uint64_t seed) {
    ProxyEvaluator eval;
    Tap25dPlanner planner(quick_config(seed));
    return planner.plan(sys, eval).reward;
  };
  EXPECT_DOUBLE_EQ(run(3), run(3));
}

TEST(Tap25d, RespectsEvaluationBudget) {
  const auto sys = sa_system();
  ProxyEvaluator eval;
  Tap25dConfig config = quick_config(4);
  config.anneal.max_evaluations = 100;
  Tap25dPlanner planner(config);
  planner.plan(sys, eval);
  // +2: final reporting re-evaluates wirelength and temperature once.
  EXPECT_LE(eval.num_evaluations(), 102);
}

TEST(Tap25d, SpacingConstraintHolds) {
  const auto sys = sa_system();
  ProxyEvaluator eval;
  Tap25dConfig config = quick_config(5);
  config.spacing_mm = 1.0;
  Tap25dPlanner planner(config);
  const auto result = planner.plan(sys, eval);
  EXPECT_TRUE(result.best.is_legal(1.0));
}

TEST(Tap25d, RotationMovesProduceRotatedDies) {
  // With rotate-heavy move mix, at least some accepted state should carry a
  // rotation for non-square dies.
  const auto sys = sa_system();
  ProxyEvaluator eval;
  Tap25dConfig config = quick_config(6);
  config.p_displace = 0.2;
  config.p_swap = 0.0;
  config.p_rotate = 0.8;
  config.anneal.max_evaluations = 400;
  Tap25dPlanner planner(config);
  const auto result = planner.plan(sys, eval);
  EXPECT_TRUE(result.best.is_legal());
}

TEST(Tap25d, RejectsDegenerateMoveMix) {
  Tap25dConfig config;
  config.p_displace = 0.0;
  config.p_swap = 0.0;
  config.p_rotate = 0.0;
  EXPECT_THROW(Tap25dPlanner{config}, std::invalid_argument);
}

TEST(Tap25d, EvaluatorInjectionIsObservable) {
  const auto sys = sa_system();
  ProxyEvaluator eval;
  Tap25dPlanner planner(quick_config(7));
  planner.plan(sys, eval);
  EXPECT_GT(eval.num_evaluations(), 10);
}

TEST(Tap25d, IncrementalEvaluatorMatchesBatchTrajectory) {
  // The incremental evaluator returns the exact batch temperatures, so the
  // whole anneal — every Metropolis accept/reject, driven through the
  // commit/rollback hooks — must follow the identical trajectory and land on
  // the identical floorplan.
  std::vector<double> dims{2.0, 6.0, 10.0};
  std::vector<std::vector<double>> self_vals(3, std::vector<double>(3));
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      self_vals[i][j] = 2.5 / (1.0 + 0.05 * dims[i] * dims[j]);
    }
  }
  std::vector<double> distances, mutual_vals;
  for (double d = 0.0; d <= 45.0; d += 1.5) {
    distances.push_back(d);
    mutual_vals.push_back(0.03 + 0.7 * std::exp(-d / 7.0));
  }
  thermal::FastThermalModel model(
      thermal::SelfResistanceTable(dims, dims, self_vals),
      thermal::MutualResistanceTable(distances, mutual_vals), 45.0, {});
  model.set_image_params(30.0, 30.0, 0.03);

  const auto sys = sa_system();
  thermal::FastModelEvaluator batch(model);
  thermal::IncrementalFastModelEvaluator incr(model);
  Tap25dPlanner planner(quick_config(3));
  const auto r_batch = planner.plan(sys, batch);
  const auto r_incr = planner.plan(sys, incr);

  EXPECT_EQ(r_batch.stats.accepted, r_incr.stats.accepted);
  EXPECT_EQ(r_batch.stats.evaluations, r_incr.stats.evaluations);
  EXPECT_NEAR(r_batch.temperature_c, r_incr.temperature_c, 1e-9);
  EXPECT_NEAR(r_batch.reward, r_incr.reward, 1e-9);
  for (std::size_t i = 0; i < sys.num_chiplets(); ++i) {
    ASSERT_TRUE(r_incr.best.is_placed(i));
    EXPECT_EQ(r_batch.best.placement(i), r_incr.best.placement(i))
        << "chiplet " << i;
  }
}

// ------------------------------------------------------- population mode ----

thermal::FastThermalModel population_model() {
  std::vector<double> dims{2.0, 6.0, 10.0};
  std::vector<std::vector<double>> self_vals(3, std::vector<double>(3));
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      self_vals[i][j] = 2.5 / (1.0 + 0.05 * dims[i] * dims[j]);
    }
  }
  std::vector<double> distances, mutual_vals;
  for (double d = 0.0; d <= 45.0; d += 1.5) {
    distances.push_back(d);
    mutual_vals.push_back(0.03 + 0.7 * std::exp(-d / 7.0));
  }
  thermal::FastThermalModel model(
      thermal::SelfResistanceTable(dims, dims, self_vals),
      thermal::MutualResistanceTable(distances, mutual_vals), 45.0, {});
  model.set_image_params(30.0, 30.0, 0.03);
  return model;
}

TEST(Tap25dPopulation, ProducesLegalFloorplanAndRespectsBudget) {
  const auto sys = sa_system();
  ProxyEvaluator eval;  // exercises the default max_temperature_batch
  Tap25dConfig config = quick_config(11);
  config.population = 4;
  config.anneal.max_evaluations = 300;
  Tap25dPlanner planner(config);
  const auto result = planner.plan(sys, eval);
  EXPECT_TRUE(result.best.is_complete());
  EXPECT_TRUE(result.best.is_legal());
  EXPECT_GT(result.stats.evaluations, 0);
  // The round in flight when the budget trips may finish scoring its K
  // candidates; +2 for the final reporting evaluations.
  EXPECT_LE(eval.num_evaluations(),
            300 + static_cast<long>(config.population) + 2);
}

TEST(Tap25dPopulation, DeterministicGivenSeedAndThreadCountIndependent) {
  const auto sys = sa_system();
  const auto model = population_model();
  const auto run = [&](std::size_t threads) {
    thermal::FastModelEvaluator eval(model);
    Tap25dConfig config = quick_config(12);
    config.population = 5;
    config.batch_threads = threads;
    Tap25dPlanner planner(config);
    return planner.plan(sys, eval);
  };
  const auto serial = run(0);
  const auto threaded = run(3);
  EXPECT_DOUBLE_EQ(serial.reward, threaded.reward);
  EXPECT_EQ(serial.stats.evaluations, threaded.stats.evaluations);
  EXPECT_EQ(serial.stats.accepted, threaded.stats.accepted);
  for (std::size_t i = 0; i < sys.num_chiplets(); ++i) {
    EXPECT_EQ(serial.best.placement(i), threaded.best.placement(i));
  }
}

TEST(Tap25dPopulation, NoWorseThanInitialPlacement) {
  const auto sys = sa_system();
  const auto model = population_model();
  const RewardCalculator rc;
  const bump::BumpAssigner ba;
  rl::EnvConfig ff;
  ff.grid = 64;
  const Floorplan initial = rl::first_fit_floorplan(sys, ff);
  thermal::FastModelEvaluator eval_init(model);
  const double initial_reward =
      rc.reward(ba.assign(sys, initial).total_mm,
                eval_init.max_temperature(sys, initial));

  thermal::FastModelEvaluator eval(model);
  Tap25dConfig config = quick_config(13);
  config.population = 4;
  Tap25dPlanner planner(config);
  const auto result = planner.plan(sys, eval);
  EXPECT_GE(result.reward, initial_reward);
}

TEST(Tap25dPopulation, RejectsZeroPopulation) {
  Tap25dConfig config;
  config.population = 0;
  EXPECT_THROW(Tap25dPlanner{config}, std::invalid_argument);
}

}  // namespace
}  // namespace rlplan::sa
