#include "rl/rnd.h"

#include <gtest/gtest.h>

#include <vector>

namespace rlplan::rl {
namespace {

nn::Tensor random_state(Rng& rng, std::size_t c = 3, std::size_t g = 8) {
  nn::Tensor t({c, g, g});
  for (std::size_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.uniform(0.0, 1.0));
  }
  return t;
}

TEST(Rnd, PredictionErrorPositiveForFreshStates) {
  Rng rng(1);
  RndBonus rnd(3, 8, {}, rng);
  Rng sr(2);
  const auto s = random_state(sr);
  EXPECT_GT(rnd.raw_error(s), 0.0);
}

TEST(Rnd, TrainingReducesErrorOnSeenStates) {
  Rng rng(3);
  RndConfig config;
  config.predictor_lr = 3e-3f;
  RndBonus rnd(3, 8, config, rng);
  Rng sr(4);
  std::vector<nn::Tensor> states;
  for (int i = 0; i < 12; ++i) states.push_back(random_state(sr));
  std::vector<const nn::Tensor*> ptrs;
  for (const auto& s : states) ptrs.push_back(&s);

  const double before = rnd.raw_error(states[0]);
  Rng tr(5);
  for (int epoch = 0; epoch < 30; ++epoch) rnd.train(ptrs, tr);
  const double after = rnd.raw_error(states[0]);
  EXPECT_LT(after, before * 0.8)
      << "predictor failed to distill the target on seen states";
}

TEST(Rnd, NovelStatesScoreHigherThanTrainedStates) {
  Rng rng(6);
  RndConfig config;
  config.predictor_lr = 3e-3f;
  RndBonus rnd(3, 8, config, rng);
  Rng sr(7);
  std::vector<nn::Tensor> seen;
  for (int i = 0; i < 10; ++i) seen.push_back(random_state(sr));
  std::vector<const nn::Tensor*> ptrs;
  for (const auto& s : seen) ptrs.push_back(&s);
  Rng tr(8);
  for (int epoch = 0; epoch < 40; ++epoch) rnd.train(ptrs, tr);

  double seen_err = 0.0;
  for (const auto& s : seen) seen_err += rnd.raw_error(s);
  seen_err /= static_cast<double>(seen.size());

  // Novel states drawn from a shifted distribution.
  Rng nr(1234);
  double novel_err = 0.0;
  for (int i = 0; i < 10; ++i) {
    auto s = random_state(nr);
    s.scale_(-1.0f);  // outside the seen distribution
    novel_err += rnd.raw_error(s);
  }
  novel_err /= 10.0;
  EXPECT_GT(novel_err, seen_err);
}

TEST(Rnd, BonusIsNormalizedAndClipped) {
  Rng rng(9);
  RndConfig config;
  config.bonus_clip = 2.0f;
  RndBonus rnd(3, 8, config, rng);
  Rng sr(10);
  for (int i = 0; i < 50; ++i) {
    const float b = rnd.bonus(random_state(sr));
    EXPECT_GE(b, 0.0f);
    EXPECT_LE(b, 2.0f);
  }
}

TEST(Rnd, TargetNetworkIsFrozen) {
  Rng rng(11);
  RndBonus rnd(3, 8, {}, rng);
  Rng sr(12);
  const auto s = random_state(sr);
  // Training must change the predictor error but the target embedding is
  // fixed: repeated raw_error calls without training are identical.
  const double e1 = rnd.raw_error(s);
  const double e2 = rnd.raw_error(s);
  EXPECT_DOUBLE_EQ(e1, e2);
}

TEST(Rnd, EmptyTrainBatchIsSafe) {
  Rng rng(13);
  RndBonus rnd(3, 8, {}, rng);
  Rng tr(14);
  EXPECT_DOUBLE_EQ(rnd.train({}, tr), 0.0);
}

TEST(Rnd, EncoderRejectsBadGrid) {
  Rng rng(15);
  EXPECT_THROW(make_rnd_encoder(3, 10, {}, rng, "x"), std::invalid_argument);
}

}  // namespace
}  // namespace rlplan::rl
