#include "nn/layers.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <memory>
#include <stdexcept>

#include "nn/serialize.h"

namespace rlplan::nn {
namespace {

TEST(Linear, ForwardKnownValues) {
  Rng rng(1);
  Linear lin(2, 2, rng);
  // Overwrite weights deterministically: y = [x0 + 2 x1 + 0.5, 3 x0 - 1].
  lin.weight().value.at(0, 0) = 1.0f;
  lin.weight().value.at(0, 1) = 2.0f;
  lin.weight().value.at(1, 0) = 3.0f;
  lin.weight().value.at(1, 1) = 0.0f;
  lin.bias().value[0] = 0.5f;
  lin.bias().value[1] = -1.0f;
  const Tensor x({1, 2}, {2.0f, 3.0f});
  const Tensor y = lin.forward(x);
  EXPECT_FLOAT_EQ(y.at(0, 0), 8.5f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 5.0f);
}

TEST(Linear, BatchForward) {
  Rng rng(2);
  Linear lin(3, 4, rng);
  const Tensor x({5, 3});
  const Tensor y = lin.forward(x);
  EXPECT_EQ(y.dim(0), 5u);
  EXPECT_EQ(y.dim(1), 4u);
}

TEST(Linear, ForwardRejectsBadShape) {
  Rng rng(3);
  Linear lin(3, 4, rng);
  EXPECT_THROW(lin.forward(Tensor({5, 2})), std::invalid_argument);
  EXPECT_THROW(lin.forward(Tensor({3})), std::invalid_argument);
}

TEST(Linear, BackwardShapes) {
  Rng rng(4);
  Linear lin(3, 4, rng);
  lin.forward(Tensor({2, 3}));
  const Tensor dx = lin.backward(Tensor({2, 4}));
  EXPECT_EQ(dx.dim(0), 2u);
  EXPECT_EQ(dx.dim(1), 3u);
}

// Empty batches are legal throughout the layer stack: forward produces the
// 0-row output shape, backward produces a 0-row input grad and accumulates
// nothing. (PPO minibatch slicing can legitimately produce an empty tail.)
TEST(Linear, ZeroBatchForwardBackwardAreNoOps) {
  Rng rng(14);
  Linear lin(3, 4, rng);
  const Tensor y = lin.forward(Tensor({0, 3}));
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{0, 4}));
  const Tensor dx = lin.backward(Tensor({0, 4}));
  EXPECT_EQ(dx.shape(), (std::vector<std::size_t>{0, 3}));
  for (Parameter* p : lin.parameters()) {
    for (std::size_t i = 0; i < p->grad.numel(); ++i) {
      EXPECT_EQ(p->grad[i], 0.0f) << p->name;
    }
  }
}

TEST(Conv2d, ZeroBatchForwardBackwardAreNoOps) {
  Rng rng(15);
  Conv2d conv(2, 3, 3, 1, 1, rng);
  const Tensor y = conv.forward(Tensor({0, 2, 6, 6}));
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{0, 3, 6, 6}));
  const Tensor dx = conv.backward(Tensor({0, 3, 6, 6}));
  EXPECT_EQ(dx.shape(), (std::vector<std::size_t>{0, 2, 6, 6}));
  for (Parameter* p : conv.parameters()) {
    for (std::size_t i = 0; i < p->grad.numel(); ++i) {
      EXPECT_EQ(p->grad[i], 0.0f) << p->name;
    }
  }
}

// Regression: Flatten::forward derived the inner size as numel() / dim(0),
// which divides by zero on an empty batch. It is now the product of the
// non-batch dims.
TEST(Flatten, ZeroBatchRoundTrip) {
  Flatten flat;
  const Tensor y = flat.forward(Tensor({0, 3, 4, 4}));
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{0, 48}));
  const Tensor back = flat.backward(y);
  EXPECT_EQ(back.shape(), (std::vector<std::size_t>{0, 3, 4, 4}));
}

TEST(Conv2d, OutputShapeStride1) {
  Rng rng(5);
  Conv2d conv(2, 4, 3, 1, 1, rng);
  const Tensor y = conv.forward(Tensor({1, 2, 8, 8}));
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{1, 4, 8, 8}));
}

TEST(Conv2d, OutputShapeStride2) {
  Rng rng(6);
  Conv2d conv(3, 8, 3, 2, 1, rng);
  const Tensor y = conv.forward(Tensor({2, 3, 16, 16}));
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{2, 8, 8, 8}));
}

TEST(Conv2d, IdentityKernelReproducesInput) {
  Rng rng(7);
  Conv2d conv(1, 1, 3, 1, 1, rng);
  conv.parameters()[0]->value.fill(0.0f);
  conv.parameters()[1]->value.fill(0.0f);
  // Center tap = 1 -> identity.
  Tensor& w = conv.parameters()[0]->value;
  w.at(0, 0, 1, 1) = 1.0f;
  Tensor x({1, 1, 4, 4});
  for (std::size_t i = 0; i < x.numel(); ++i) x[i] = static_cast<float>(i);
  const Tensor y = conv.forward(x);
  for (std::size_t i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Conv2d, PaddingZerosAtBorder) {
  Rng rng(8);
  Conv2d conv(1, 1, 3, 1, 1, rng);
  conv.parameters()[0]->value.fill(1.0f);  // sum of 3x3 neighbourhood
  conv.parameters()[1]->value.fill(0.0f);
  Tensor x = Tensor::full({1, 1, 3, 3}, 1.0f);
  const Tensor y = conv.forward(x);
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 1), 9.0f);  // full neighbourhood
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 4.0f);  // corner: 2x2 valid
}

TEST(ReLU, ForwardBackward) {
  ReLU relu;
  const Tensor x({1, 4}, {-1.0f, 0.0f, 2.0f, -3.0f});
  const Tensor y = relu.forward(x);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);
  const Tensor dy = Tensor::full({1, 4}, 1.0f);
  const Tensor dx = relu.backward(dy);
  EXPECT_FLOAT_EQ(dx[0], 0.0f);  // blocked: input < 0
  EXPECT_FLOAT_EQ(dx[1], 0.0f);  // blocked at exactly 0
  EXPECT_FLOAT_EQ(dx[2], 1.0f);
}

TEST(Tanh, ForwardBackward) {
  Tanh tanh_layer;
  const Tensor x({1, 2}, {0.0f, 100.0f});
  const Tensor y = tanh_layer.forward(x);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_NEAR(y[1], 1.0f, 1e-6);
  const Tensor dx = tanh_layer.backward(Tensor::full({1, 2}, 1.0f));
  EXPECT_FLOAT_EQ(dx[0], 1.0f);        // 1 - tanh(0)^2
  EXPECT_NEAR(dx[1], 0.0f, 1e-6);      // saturated
}

TEST(Flatten, RoundTrip) {
  Flatten flat;
  Tensor x({2, 3, 4, 4});
  const Tensor y = flat.forward(x);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{2, 48}));
  const Tensor back = flat.backward(y);
  EXPECT_EQ(back.shape(), x.shape());
}

TEST(Sequential, ChainsAndCollectsParameters) {
  Rng rng(9);
  Sequential seq;
  seq.add(std::make_unique<Linear>(4, 8, rng));
  seq.add(std::make_unique<ReLU>());
  seq.add(std::make_unique<Linear>(8, 2, rng));
  EXPECT_EQ(seq.size(), 3u);
  EXPECT_EQ(seq.parameters().size(), 4u);  // two weights + two biases
  const Tensor y = seq.forward(Tensor({3, 4}));
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{3, 2}));
  const Tensor dx = seq.backward(Tensor({3, 2}));
  EXPECT_EQ(dx.shape(), (std::vector<std::size_t>{3, 4}));
}

TEST(Module, ZeroGradClearsAccumulations) {
  Rng rng(10);
  Linear lin(2, 2, rng);
  lin.forward(Tensor::full({1, 2}, 1.0f));
  lin.backward(Tensor::full({1, 2}, 1.0f));
  bool any_nonzero = false;
  for (const Parameter* p : lin.parameters()) {
    for (std::size_t i = 0; i < p->grad.numel(); ++i) {
      if (p->grad[i] != 0.0f) any_nonzero = true;
    }
  }
  EXPECT_TRUE(any_nonzero);
  lin.zero_grad();
  for (Parameter* p : lin.parameters()) {
    for (std::size_t i = 0; i < p->grad.numel(); ++i) {
      EXPECT_EQ(p->grad[i], 0.0f);
    }
  }
}

TEST(Initialization, DeterministicGivenSeed) {
  Rng rng1(42), rng2(42);
  Linear a(8, 8, rng1), b(8, 8, rng2);
  for (std::size_t i = 0; i < a.weight().value.numel(); ++i) {
    EXPECT_EQ(a.weight().value[i], b.weight().value[i]);
  }
}

TEST(Initialization, KaimingBoundScalesWithFanIn) {
  EXPECT_GT(kaiming_bound(4), kaiming_bound(64));
  EXPECT_FLOAT_EQ(kaiming_bound(6), 1.0f);
}

TEST(Serialize, RoundtripPreservesValues) {
  Rng rng(11);
  Sequential seq;
  seq.add(std::make_unique<Linear>(3, 5, rng, "l1"));
  seq.add(std::make_unique<Linear>(5, 2, rng, "l2"));
  const auto path =
      (std::filesystem::temp_directory_path() / "rlplan_nn_test.bin")
          .string();
  save_parameters(seq.parameters(), path);

  Rng rng2(99);  // different init
  Sequential seq2;
  seq2.add(std::make_unique<Linear>(3, 5, rng2, "l1"));
  seq2.add(std::make_unique<Linear>(5, 2, rng2, "l2"));
  load_parameters(seq2.parameters(), path);

  const auto pa = seq.parameters();
  const auto pb = seq2.parameters();
  for (std::size_t k = 0; k < pa.size(); ++k) {
    for (std::size_t i = 0; i < pa[k]->value.numel(); ++i) {
      EXPECT_EQ(pa[k]->value[i], pb[k]->value[i]);
    }
  }
  std::filesystem::remove(path);
}

TEST(Serialize, RejectsNameMismatch) {
  Rng rng(12);
  Linear a(2, 2, rng, "alpha");
  const auto path =
      (std::filesystem::temp_directory_path() / "rlplan_nn_test2.bin")
          .string();
  save_parameters(a.parameters(), path);
  Linear b(2, 2, rng, "beta");
  EXPECT_THROW(load_parameters(b.parameters(), path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Serialize, RejectsShapeMismatch) {
  Rng rng(13);
  Linear a(2, 2, rng, "same");
  const auto path =
      (std::filesystem::temp_directory_path() / "rlplan_nn_test3.bin")
          .string();
  save_parameters(a.parameters(), path);
  Linear b(2, 3, rng, "same");
  EXPECT_THROW(load_parameters(b.parameters(), path), std::runtime_error);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace rlplan::nn
